GO ?= go

.PHONY: help ci vet verify-static build test smoke explore-smoke paper \
	race-equivalence bench bench-full bench-baseline docs-verify docs \
	daemon-smoke crash-smoke

# help lists every target with its one-line purpose (the `##` comment on
# the target line). Run `make help` when lost.
help:
	@grep -E '^[a-z][a-z-]*:.*##' $(MAKEFILE_LIST) | \
		awk -F':.*## ' '{printf "  %-16s %s\n", $$1, $$2}'

# ci is the gate: static checks, full build, full test suite, the chaos
# smoke (fault injection + verification on a representative cell), a
# bounded schedule-exploration smoke (adversarial scheduler + oracle),
# the IR-level static verification of every workload, the engine
# differential suite (cooperative vs reference, byte-identical, -race),
# the race-mode parallel-sweep equivalence suite, the daemon lifecycle
# smoke, the crash-recovery harness, and the generated-docs drift check.
ci: vet build test smoke explore-smoke verify-static conflict-verify equivalence race-equivalence daemon-smoke crash-smoke docs-verify ## full CI gate (all of the below)

# vet layers three static gates: formatting, the standard go vet, and
# the repo's own staggervet analyzers (determinism, ntstore, siteattr,
# errshadow, fsyncpath, ctxdone), self-hosted over the whole tree and
# checked against the committed findings baseline. Any unbaselined
# diagnostic — or a stale baseline entry — exits nonzero and fails the
# build.
vet: ## gofmt + go vet + staggervet analyzers (baseline-checked)
	@fmt_out=$$(gofmt -l .); if [ -n "$$fmt_out" ]; then \
		echo "gofmt needed on:"; echo "$$fmt_out"; exit 1; fi
	$(GO) vet ./...
	$(GO) run ./cmd/staggervet -baseline cmd/staggervet/baseline.txt

# verify-static proves the four IR invariants (anchor scope, lock
# order, coverage, static/dynamic conformance) on all ten workloads.
verify-static: ## IR invariants: anchor scope, lock order, coverage, conformance
	$(GO) run ./cmd/staggersim -verify-static

# conflict-verify is the static conflict-prediction gate: for every
# workload it builds the may-conflict matrix, proves advisory-lock
# sufficiency and precision, and cross-validates the matrix against the
# conflicting site pairs observed dynamically across three seeds.
conflict-verify: ## may-conflict matrix: sufficiency, precision, dynamic containment
	$(GO) run ./cmd/staggersim -verify-conflicts

build: ## go build ./...
	$(GO) build ./...

test: ## go test ./...
	$(GO) test ./...

smoke: ## chaos smoke: fault injection + verification, one cell
	$(GO) test ./internal/harness -run TestChaosSmoke -count=1

# daemon-smoke boots the real staggerd on a kernel-assigned port with a
# throwaway store, drives one paper-table job through the HTTP lifecycle
# with staggerctl, proves a resubmission is served byte-identically from
# the durable store, then SIGTERM-drains and requires a clean exit.
daemon-smoke: ## staggerd lifecycle: submit over HTTP, store hit, SIGTERM drain
	GO=$(GO) sh scripts/daemon_smoke.sh

# crash-smoke is the crash-recovery harness: the Go half SIGKILLs the
# real daemon (and crashes it via deterministic disk failpoints) under
# -race, the shell half drives the same scenarios the way a supervisor
# would, including a staggerctl -reconnect waiter riding through a
# restart. Both assert every accepted job reaches a terminal state with
# byte-identical results and that damaged journal tails are quarantined.
# Failure artifacts (journal, store, daemon logs) land in $CRASH_ARTIFACTS.
crash-smoke: ## crash harness: SIGKILL + failpoint recovery, byte-identical results
	$(GO) test -race ./cmd/staggerd -count=1
	GO=$(GO) sh scripts/crash_smoke.sh

# explore-smoke runs 25 PCT(d=3) schedules per workload through the
# serializability oracle on two representative cells; any violation fails.
explore-smoke: ## 25 adversarial schedules per cell through the oracle
	$(GO) run ./cmd/staggersim -bench list-hi,kmeans -mode staggered -threads 4 \
		-ops 160 -explore -explore-runs 25 -sched pct:3

# race-equivalence runs the determinism-equivalence suite (same results
# and bytes at workers=1 and workers=4) under the race detector, so the
# parallel sweep runner is checked for data races on every CI run. The
# service lifecycle and recovery tests (drain under a live chaos job,
# cancellation, crash-restart durability, journal replay, resumed
# sweeps) run here too, as do the journal, store, and fault-injection
# filesystem packages: their goroutine-leak, shutdown, and concurrent
# append/put assertions are exactly the kind -race strengthens.
# equivalence is the engine differential gate: every workload × seed ×
# {plain, staggered, hardened, chaos, PCT} cell runs on the cooperative
# engine and the reference engine and must be byte-identical in traces,
# metrics JSON, statistics, oracle verdicts, and workload verification —
# under -race, so the coroutine handoff protocol is checked at the same
# time. Record/replay cross-engine determinism and the fuzz seed corpus
# run in the same package. On a mismatch the suite writes both traces
# and the first-divergence index under EQUIVALENCE_ARTIFACTS (default
# ./equivalence-artifacts), which CI uploads.
equivalence: ## cooperative-vs-reference engine differential suite under -race
	$(GO) test -race ./internal/htm/equivalence -count=1

race-equivalence: ## determinism-equivalence + service lifecycle under -race
	$(GO) test -race ./internal/harness -count=1 \
		-run 'TestDeterminism|TestTableOutputIdentical|TestChaosSweepIdentical|TestExploreIdentical|TestCacheShared|TestRunAllOrdering|TestRunCtxCancel|TestRunAllCancel|TestRunAllContained'
	$(GO) test -race ./internal/service -count=1 \
		-run 'TestDrain|TestCancel|TestCrashRestart|TestBoot|TestResumed|TestIdempotency|TestSubmitRejected|TestCleanShutdown|TestMetricsExposeJournal'
	$(GO) test -race ./internal/journal ./internal/vfs ./internal/chaos ./internal/store -count=1

# docs-verify regenerates the generated documentation sections — the
# EXPERIMENTS.md abort-attribution appendix, its cross-backend arena
# table, and the README.md repo map — and fails if the committed text
# disagrees with the source tree. Run `make docs` after changing the
# simulator, a backend, or package doc comments.
docs-verify: ## fail if generated docs sections drifted from the source
	$(GO) run ./cmd/staggerreport -appendix -backends -repomap -check

docs: ## regenerate the generated docs sections in place
	$(GO) run ./cmd/staggerreport -appendix -backends -repomap -write

# bench is the performance regression gate: the quick matrix plus the
# paper table set, compared against the committed baseline; any timed
# metric more than 25% slower (or allocs/event more than 10% higher)
# fails. bench-full runs the full matrix without a gate; bench-baseline
# re-records the committed baseline (do this deliberately, on a quiet
# machine, when the simulation itself changes).
bench: ## perf regression gate vs bench_baseline.json (quick matrix)
	$(GO) run ./cmd/staggerbench -quick -baseline bench_baseline.json

bench-full: ## full benchmark matrix, no gate
	$(GO) run ./cmd/staggerbench

bench-baseline: ## re-record the committed benchmark baseline
	$(GO) run ./cmd/staggerbench -quick -out bench_baseline.json

paper: ## regenerate every table and figure of the paper
	$(GO) run ./cmd/paper
