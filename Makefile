GO ?= go

.PHONY: ci vet build test smoke explore-smoke paper

# ci is the gate: static checks, full build, full test suite, the chaos
# smoke (fault injection + verification on a representative cell), and a
# bounded schedule-exploration smoke (adversarial scheduler + oracle).
ci: vet build test smoke explore-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

smoke:
	$(GO) test ./internal/harness -run TestChaosSmoke -count=1

# explore-smoke runs 25 PCT(d=3) schedules per workload through the
# serializability oracle on two representative cells; any violation fails.
explore-smoke:
	$(GO) run ./cmd/staggersim -bench list-hi,kmeans -mode staggered -threads 4 \
		-ops 160 -explore -explore-runs 25 -sched pct:3

paper:
	$(GO) run ./cmd/paper
