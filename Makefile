GO ?= go

.PHONY: ci vet verify-static build test smoke explore-smoke paper

# ci is the gate: static checks, full build, full test suite, the chaos
# smoke (fault injection + verification on a representative cell), a
# bounded schedule-exploration smoke (adversarial scheduler + oracle),
# and the IR-level static verification of every workload.
ci: vet build test smoke explore-smoke verify-static

# vet layers three static gates: formatting, the standard go vet, and
# the repo's own staggervet analyzers (determinism, ntstore, siteattr).
# Any staggervet diagnostic exits nonzero and fails the build.
vet:
	@fmt_out=$$(gofmt -l .); if [ -n "$$fmt_out" ]; then \
		echo "gofmt needed on:"; echo "$$fmt_out"; exit 1; fi
	$(GO) vet ./...
	$(GO) run ./cmd/staggervet

# verify-static proves the four IR invariants (anchor scope, lock
# order, coverage, static/dynamic conformance) on all ten workloads.
verify-static:
	$(GO) run ./cmd/staggersim -verify-static

build:
	$(GO) build ./...

test:
	$(GO) test ./...

smoke:
	$(GO) test ./internal/harness -run TestChaosSmoke -count=1

# explore-smoke runs 25 PCT(d=3) schedules per workload through the
# serializability oracle on two representative cells; any violation fails.
explore-smoke:
	$(GO) run ./cmd/staggersim -bench list-hi,kmeans -mode staggered -threads 4 \
		-ops 160 -explore -explore-runs 25 -sched pct:3

paper:
	$(GO) run ./cmd/paper
