GO ?= go

.PHONY: ci vet build test smoke paper

# ci is the gate: static checks, full build, full test suite, then the
# chaos smoke (fault injection + verification on a representative cell).
ci: vet build test smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

smoke:
	$(GO) test ./internal/harness -run TestChaosSmoke -count=1

paper:
	$(GO) run ./cmd/paper
