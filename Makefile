GO ?= go

.PHONY: ci vet verify-static build test smoke explore-smoke paper \
	race-equivalence bench bench-full bench-baseline

# ci is the gate: static checks, full build, full test suite, the chaos
# smoke (fault injection + verification on a representative cell), a
# bounded schedule-exploration smoke (adversarial scheduler + oracle),
# the IR-level static verification of every workload, and the race-mode
# parallel-sweep equivalence suite.
ci: vet build test smoke explore-smoke verify-static race-equivalence

# vet layers three static gates: formatting, the standard go vet, and
# the repo's own staggervet analyzers (determinism, ntstore, siteattr).
# Any staggervet diagnostic exits nonzero and fails the build.
vet:
	@fmt_out=$$(gofmt -l .); if [ -n "$$fmt_out" ]; then \
		echo "gofmt needed on:"; echo "$$fmt_out"; exit 1; fi
	$(GO) vet ./...
	$(GO) run ./cmd/staggervet

# verify-static proves the four IR invariants (anchor scope, lock
# order, coverage, static/dynamic conformance) on all ten workloads.
verify-static:
	$(GO) run ./cmd/staggersim -verify-static

build:
	$(GO) build ./...

test:
	$(GO) test ./...

smoke:
	$(GO) test ./internal/harness -run TestChaosSmoke -count=1

# explore-smoke runs 25 PCT(d=3) schedules per workload through the
# serializability oracle on two representative cells; any violation fails.
explore-smoke:
	$(GO) run ./cmd/staggersim -bench list-hi,kmeans -mode staggered -threads 4 \
		-ops 160 -explore -explore-runs 25 -sched pct:3

# race-equivalence runs the determinism-equivalence suite (same results
# and bytes at workers=1 and workers=4) under the race detector, so the
# parallel sweep runner is checked for data races on every CI run.
race-equivalence:
	$(GO) test -race ./internal/harness -count=1 \
		-run 'TestDeterminism|TestTableOutputIdentical|TestChaosSweepIdentical|TestExploreIdentical|TestCacheShared|TestRunAllOrdering'

# bench is the performance regression gate: the quick matrix plus the
# paper table set, compared against the committed baseline; any timed
# metric more than 25% slower (or allocs/event more than 10% higher)
# fails. bench-full runs the full matrix without a gate; bench-baseline
# re-records the committed baseline (do this deliberately, on a quiet
# machine, when the simulation itself changes).
bench:
	$(GO) run ./cmd/staggerbench -quick -baseline bench_baseline.json

bench-full:
	$(GO) run ./cmd/staggerbench

bench-baseline:
	$(GO) run ./cmd/staggerbench -quick -out bench_baseline.json

paper:
	$(GO) run ./cmd/paper
