// Benchmark harness: one testing.B target per table and figure of the
// paper's evaluation (Section 6), plus ablations over the design choices
// DESIGN.md calls out. Each benchmark drives full deterministic
// simulations and reports the headline numbers as custom metrics, so
//
//	go test -bench=Figure7 -benchmem
//
// regenerates (and times) the corresponding experiment. Results repeat
// bit-identically across runs; see EXPERIMENTS.md for the reference
// values and their comparison against the paper.
package main

import (
	"testing"

	"repro/internal/harness"
	"repro/internal/stagger"
	"repro/internal/workloads"
)

const benchSeed = 42

// BenchmarkTable1 regenerates the contention characterization.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := harness.Table1(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(r.S, r.Bench+"_speedup")
				b.ReportMetric(r.WU, r.Bench+"_W/U")
			}
		}
	}
}

// BenchmarkTable3 regenerates the instrumentation statistics.
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := harness.Table3(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(r.Accuracy*100, r.Bench+"_accuracy_%")
				b.ReportMetric(r.ExecTimeInc*100, r.Bench+"_overhead_%")
			}
		}
	}
}

// BenchmarkTable4 regenerates the benchmark characteristics.
func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := harness.Table4(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(r.S, r.Bench+"_speedup")
				b.ReportMetric(r.AbtsPerC, r.Bench+"_abts/commit")
			}
		}
	}
}

// BenchmarkFigure7 regenerates the four-system performance comparison;
// each sub-benchmark reports one application's bars.
func BenchmarkFigure7(b *testing.B) {
	for _, bench := range workloads.Names() {
		b.Run(bench, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				base, err := harness.RunCached(harness.RunConfig{
					Benchmark: bench, Mode: stagger.ModeHTM,
					Threads: harness.PaperThreads, Seed: benchSeed,
				})
				if err != nil {
					b.Fatal(err)
				}
				stag, err := harness.RunCached(harness.RunConfig{
					Benchmark: bench, Mode: stagger.ModeStaggeredHW,
					Threads: harness.PaperThreads, Seed: benchSeed,
				})
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(float64(base.Makespan())/float64(stag.Makespan()), "norm_speedup")
				}
			}
		})
	}
}

// BenchmarkFigure8 regenerates the abort and wasted-cycle comparison.
func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := harness.Figure8(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(r.HTMAbortsPerCommit, r.Bench+"_htm_abts")
				b.ReportMetric(r.StagAbortsPerCommit, r.Bench+"_stag_abts")
			}
		}
	}
}

// BenchmarkAblationInstrumentation compares DSA-guided anchor selection
// against naive every-load/store instrumentation (Section 6.1): the
// single-thread execution-time increase of each.
func BenchmarkAblationInstrumentation(b *testing.B) {
	for _, bench := range []string{"list-hi", "tsp", "memcached", "vacation"} {
		b.Run(bench, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				base, err := harness.RunCached(harness.RunConfig{
					Benchmark: bench, Mode: stagger.ModeHTM, Threads: 1, Seed: benchSeed,
				})
				if err != nil {
					b.Fatal(err)
				}
				dsa, err := harness.RunCached(harness.RunConfig{
					Benchmark: bench, Mode: stagger.ModeStaggeredHW, Threads: 1, Seed: benchSeed,
				})
				if err != nil {
					b.Fatal(err)
				}
				naive, err := harness.RunCached(harness.RunConfig{
					Benchmark: bench, Mode: stagger.ModeStaggeredHW, Threads: 1, Seed: benchSeed,
					Naive: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					d := float64(dsa.Makespan())/float64(base.Makespan()) - 1
					n := float64(naive.Makespan())/float64(base.Makespan()) - 1
					b.ReportMetric(d*100, "dsa_overhead_%")
					b.ReportMetric(n*100, "naive_overhead_%")
				}
			}
		})
	}
}

// BenchmarkAblationPolicyModes disables policy modes selectively on
// list-hi, whose conflicts need coarse-grain locking and promotion:
// precise-only should barely help, the full policy should win.
func BenchmarkAblationPolicyModes(b *testing.B) {
	variants := []struct {
		name   string
		mutate func(*stagger.Config)
	}{
		{"full", func(c *stagger.Config) {}},
		{"no-promotion", func(c *stagger.Config) { c.PromThr = 1 << 30 }},
		{"precise-only", func(c *stagger.Config) {
			// An address must recur more often than the window can hold:
			// coarse mode (p && !a) still fires, so instead force the
			// history to never call anything "address-varying" coarse by
			// promoting never and sizing PromThr out of reach; precise
			// stays available.
			c.PromThr = 1 << 30
			c.AddrThr = 0 // address patterns recur trivially: precise favored
		}},
		{"short-history", func(c *stagger.Config) { c.HistLen = 2 }},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := stagger.DefaultConfig(stagger.ModeStaggeredHW)
				v.mutate(&cfg)
				res, err := harness.Run(harness.RunConfig{
					Benchmark: "list-hi", Mode: stagger.ModeStaggeredHW,
					Threads: harness.PaperThreads, Seed: benchSeed, Stagger: &cfg,
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.VerifyErr != nil {
					b.Fatal(res.VerifyErr)
				}
				if i == 0 {
					b.ReportMetric(float64(res.Makespan()), "makespan_cycles")
					b.ReportMetric(res.AbortsPerCommit(), "abts/commit")
				}
			}
		})
	}
}

// BenchmarkAblationLockTable sweeps the advisory lock table size on
// memcached: too few locks alias unrelated structures, too many is free.
func BenchmarkAblationLockTable(b *testing.B) {
	for _, locks := range []int{4, 16, 64, 256} {
		b.Run("locks_"+itoa(locks), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := stagger.DefaultConfig(stagger.ModeStaggeredHW)
				cfg.NumLocks = locks
				res, err := harness.Run(harness.RunConfig{
					Benchmark: "memcached", Mode: stagger.ModeStaggeredHW,
					Threads: harness.PaperThreads, Seed: benchSeed, Stagger: &cfg,
				})
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(float64(res.Makespan()), "makespan_cycles")
				}
			}
		})
	}
}

// BenchmarkAblationThresholds sweeps PC_THR/ADDR_THR on memcached.
func BenchmarkAblationThresholds(b *testing.B) {
	for _, thr := range []int{1, 2, 4, 6} {
		b.Run("thr_"+itoa(thr), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := stagger.DefaultConfig(stagger.ModeStaggeredHW)
				cfg.PCThr, cfg.AddrThr = thr, thr
				res, err := harness.Run(harness.RunConfig{
					Benchmark: "memcached", Mode: stagger.ModeStaggeredHW,
					Threads: harness.PaperThreads, Seed: benchSeed, Stagger: &cfg,
				})
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(float64(res.Makespan()), "makespan_cycles")
					b.ReportMetric(res.AbortsPerCommit(), "abts/commit")
				}
			}
		})
	}
}

// BenchmarkSimulatorThroughput measures raw simulator speed: simulated
// cycles per wall-clock second on a 16-core contended run.
func BenchmarkSimulatorThroughput(b *testing.B) {
	var cycles uint64
	for i := 0; i < b.N; i++ {
		res, err := harness.Run(harness.RunConfig{
			Benchmark: "memcached", Mode: stagger.ModeStaggeredHW,
			Threads: harness.PaperThreads, Seed: int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		cycles += res.Makespan()
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "sim_cycles/s")
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// BenchmarkLazyTM runs the lazy-TM extension experiment (the paper's
// proposed future work): staggered transactions on commit-time
// committer-wins conflict resolution.
func BenchmarkLazyTM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := harness.FigureLazy(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(r.LazyStagg, r.Bench+"_stag_on_lazy")
			}
		}
	}
}

// BenchmarkAblationMultiLock sweeps the per-transaction advisory lock
// budget (the paper uses exactly one) on genome, whose chunked inserts
// touch several hash chains per transaction.
func BenchmarkAblationMultiLock(b *testing.B) {
	for _, max := range []int{1, 2, 4} {
		b.Run("locks_"+itoa(max), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := stagger.DefaultConfig(stagger.ModeStaggeredHW)
				cfg.MaxLocksPerTx = max
				res, err := harness.Run(harness.RunConfig{
					Benchmark: "genome", Mode: stagger.ModeStaggeredHW,
					Threads: harness.PaperThreads, Seed: benchSeed, Stagger: &cfg,
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.VerifyErr != nil {
					b.Fatal(res.VerifyErr)
				}
				if i == 0 {
					b.ReportMetric(float64(res.Makespan()), "makespan_cycles")
					b.ReportMetric(res.AbortsPerCommit(), "abts/commit")
				}
			}
		})
	}
}
