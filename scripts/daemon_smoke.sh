#!/bin/sh
# daemon_smoke.sh: end-to-end lifecycle check of staggerd + staggerctl
# (the service analogue of the chaos smoke). Boots the daemon on a
# kernel-assigned port with a throwaway durable store, pushes one
# paper-table cell through the full HTTP lifecycle — submit, wait,
# result, metrics — proves a resubmission is served from the store, then
# SIGTERM-drains and requires a clean exit.
set -eu

GO=${GO:-go}
tmp=$(mktemp -d)
pid=""
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

"$GO" build -o "$tmp/staggerd" ./cmd/staggerd
"$GO" build -o "$tmp/staggerctl" ./cmd/staggerctl

"$tmp/staggerd" -addr 127.0.0.1:0 -addr-file "$tmp/addr" \
    -store "$tmp/store" -grace 10s >"$tmp/daemon.log" 2>&1 &
pid=$!

# Wait for the daemon to publish its bound address.
i=0
while [ ! -s "$tmp/addr" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "daemon-smoke: daemon never published its address" >&2
        cat "$tmp/daemon.log" >&2
        exit 1
    fi
    sleep 0.1
done
addr=$(cat "$tmp/addr")
ctl() { "$tmp/staggerctl" -addr "$addr" "$@"; }

ctl health >/dev/null

# One paper-table cell: list-hi under full staggered transactions.
spec='{"cells":[{"bench":"list-hi","mode":"staggered","threads":4,"ops":2000}]}'
job=$(ctl submit "$spec")
ctl wait "$job" >/dev/null
ctl result "$job" | grep -q '"benchmark": "list-hi"'
ctl metrics | grep -q '"done": 1'

# Resubmission must be served from the durable store, byte-identically
# (the status advertises the store hit; result bytes are compared too).
job2=$(ctl submit "$spec")
ctl wait "$job2" | grep -q '"from_store": 1'
ctl result "$job" >"$tmp/r1"
ctl result "$job2" >"$tmp/r2"
cmp -s "$tmp/r1" "$tmp/r2" || {
    echo "daemon-smoke: resubmitted result bytes differ" >&2
    exit 1
}

# Graceful drain: SIGTERM must flip readiness and exit cleanly.
kill -TERM "$pid"
if ! wait "$pid"; then
    echo "daemon-smoke: daemon exited nonzero after SIGTERM" >&2
    cat "$tmp/daemon.log" >&2
    exit 1
fi
pid=""
grep -q "drained clean" "$tmp/daemon.log"

echo "daemon-smoke: OK ($addr, job $job + store-hit rerun)"
