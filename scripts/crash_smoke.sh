#!/bin/sh
# crash_smoke.sh: the crash-recovery harness, driven from the shell the
# way a supervisor would drive the real daemon. Four scenarios, each
# against a real staggerd process killed for real:
#
#   1. SIGKILL mid-sweep, restart over the same store: the journal
#      replays the accepted job, the sweep resumes from the durable
#      cells, and the result is byte-identical to an uninterrupted
#      reference run — while a staggerctl -reconnect waiter rides
#      through the restart window without failing.
#   2. Deterministic failpoint crash (exit 137) the instant the accepted
#      record's fsync completes: accepted means durable, so the restart
#      runs the job the client never even heard back about.
#   3. Short-write failpoint tears the journal frame in half: the submit
#      is refused (503), and the restart quarantines the torn tail into
#      a sidecar instead of trusting it.
#   4. ENOSPC on every store write: jobs still complete from memory, and
#      a healthy restart recomputes identical bytes.
#
# On failure the journal, store, and daemon logs are preserved under
# $CRASH_ARTIFACTS (default: a fresh mktemp dir, path printed) so CI can
# upload them.
set -eu

GO=${GO:-go}
tmp=$(mktemp -d)
pid=""

fail() {
    dest=${CRASH_ARTIFACTS:-$(mktemp -d /tmp/crash-artifacts-XXXXXX)}
    mkdir -p "$dest"
    cp -r "$tmp"/store* "$tmp"/*.log "$dest"/ 2>/dev/null || true
    echo "crash-smoke: FAIL: $1 (artifacts: $dest)" >&2
    exit 1
}
cleanup() {
    [ -n "$pid" ] && kill -9 "$pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

"$GO" build -o "$tmp/staggerd" ./cmd/staggerd
"$GO" build -o "$tmp/staggerctl" ./cmd/staggerctl

# boot STORE [extra staggerd flags...]: start the daemon, wait for the
# bound address in $addr, leave the pid in $pid.
boot() {
    store=$1
    shift
    rm -f "$tmp/addr"
    "$tmp/staggerd" -addr "${fixed_addr:-127.0.0.1:0}" -addr-file "$tmp/addr" \
        -store "$store" -grace 5s "$@" >>"$tmp/daemon.log" 2>&1 &
    pid=$!
    i=0
    while [ ! -s "$tmp/addr" ]; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            cat "$tmp/daemon.log" >&2
            fail "daemon never published its address"
        fi
        sleep 0.1
    done
    addr=$(cat "$tmp/addr")
}
ctl() { "$tmp/staggerctl" -addr "$addr" "$@"; }

sweep='{"cells":[
  {"bench":"list-hi","threads":2,"seed":1,"ops":25000},
  {"bench":"list-hi","threads":2,"seed":2,"ops":25000},
  {"bench":"list-hi","threads":2,"seed":3,"ops":25000}]}'
tiny='{"cells":[{"bench":"list-hi","threads":2,"seed":9,"ops":300}]}'

# --- Reference run: the sweep, never interrupted. ---------------------
fixed_addr=""
boot "$tmp/store-ref"
job=$(ctl submit "$sweep")
ctl wait "$job" >/dev/null
ctl result "$job" >"$tmp/ref.json"
kill -9 "$pid" && wait "$pid" 2>/dev/null || true
pid=""

# --- 1: SIGKILL mid-sweep; the restart resumes and finishes. ----------
boot "$tmp/store-kill"
fixed_addr=$addr # restart on the same port so the waiter can ride through
job=$(ctl submit "$sweep")
# A polling client started before the crash must survive the restart.
ctl -reconnect 30s -timeout 120s wait "$job" >"$tmp/wait.json" &
waiter=$!
# Kill the daemon the moment the sweep is running.
i=0
until ctl status "$job" | grep -q '"state": "running"'; do
    i=$((i + 1))
    [ "$i" -gt 200 ] && fail "scenario 1: job never started running"
    sleep 0.05
done
kill -9 "$pid" && wait "$pid" 2>/dev/null || true
pid=""
boot "$tmp/store-kill"
fixed_addr=""
ctl metrics | grep -q '"requeued_jobs": 1' ||
    fail "scenario 1: restart did not requeue the crashed job"
wait "$waiter" || fail "scenario 1: reconnecting waiter did not ride through the restart"
grep -q '"state": "done"' "$tmp/wait.json" ||
    fail "scenario 1: recovered job did not finish done"
ctl result "$job" >"$tmp/got.json"
cmp -s "$tmp/ref.json" "$tmp/got.json" ||
    fail "scenario 1: recovered result differs from the uninterrupted reference"
# The resumed portion is visible in the metrics.
ctl metrics | grep -q '"resumed_cells"' ||
    fail "scenario 1: no resumed_cells counter in /metrics"
kill -9 "$pid" && wait "$pid" 2>/dev/null || true
pid=""

# --- 2: failpoint crash right after the accepted record is durable. ---
# Journal sync hit 1 is the boot magic; hit 2 is the first submit's
# accepted record. The daemon dies with exit 137 before answering.
boot "$tmp/store-fp" -failpoints 'sync:jobs.wal=crash@2'
ctl submit "$tiny" >/dev/null 2>&1 || true
wait "$pid" 2>/dev/null && rc=0 || rc=$?
[ "$rc" -eq 137 ] || fail "scenario 2: failpoint crash exited $rc, want 137"
pid=""
boot "$tmp/store-fp"
ctl metrics | grep -q '"requeued_jobs": 1' ||
    fail "scenario 2: accepted-but-unanswered job was not requeued"
ctl wait job-000001 >/dev/null ||
    fail "scenario 2: recovered job job-000001 did not finish"
kill -9 "$pid" && wait "$pid" 2>/dev/null || true
pid=""

# --- 3: short write tears the journal; boot quarantines the tail. -----
boot "$tmp/store-torn" -failpoints 'write:jobs.wal=short@2'
if ctl submit "$tiny" >/dev/null 2>&1; then
    fail "scenario 3: submit onto a failing journal was accepted"
fi
kill -9 "$pid" && wait "$pid" 2>/dev/null || true
pid=""
boot "$tmp/store-torn"
ctl metrics | grep -q '"quarantined_tail_bytes": 0' &&
    fail "scenario 3: torn tail was not quarantined"
ls "$tmp/store-torn/journal/"*.quarantine.* >/dev/null 2>&1 ||
    fail "scenario 3: no quarantine sidecar on disk"
job=$(ctl submit "$tiny") || fail "scenario 3: repaired journal refused work"
ctl wait "$job" >/dev/null
kill -9 "$pid" && wait "$pid" 2>/dev/null || true
pid=""

# --- 4: ENOSPC on the store degrades to memory, never corrupts. -------
boot "$tmp/store-full" -failpoints 'write:objects=enospc%1'
job=$(ctl submit "$tiny")
ctl wait "$job" >/dev/null || fail "scenario 4: job failed under ENOSPC"
ctl result "$job" >"$tmp/full1.json"
kill -9 "$pid" && wait "$pid" 2>/dev/null || true
pid=""
boot "$tmp/store-full"
job2=$(ctl submit "$tiny")
ctl wait "$job2" | grep -q '"from_store": 0' ||
    fail "scenario 4: restart claims store hits after a full-disk life"
ctl result "$job2" >"$tmp/full2.json"
cmp -s "$tmp/full1.json" "$tmp/full2.json" ||
    fail "scenario 4: recomputed bytes differ from the memory-served run"
kill -9 "$pid" && wait "$pid" 2>/dev/null || true
pid=""

echo "crash-smoke: OK (4 crash scenarios recovered byte-identically)"
