// Command staggerbench measures the simulator's host-side performance on
// a fixed workload matrix and writes the results as JSON, so engine and
// harness optimizations are gated by numbers instead of folklore.
//
// Three metric families:
//
//   - per-cell simulation cost: wall ns/run, simulated memory events per
//     host second, and host allocations per simulated event;
//   - sweep throughput: wall-clock for the paper's table/figure set run
//     strictly sequentially (-workers 1) and with the parallel sweep
//     runner, plus the resulting speedup;
//   - a regression gate: -baseline compares against a committed report
//     and exits nonzero past the tolerances.
//
// Usage:
//
//	staggerbench                           # full matrix -> BENCH_paper.json
//	staggerbench -quick                    # CI smoke matrix (seconds, not minutes)
//	staggerbench -quick -baseline bench_baseline.json
//
// Host timing is intentionally nondeterministic; every simulated number
// in the report (events, stats) is still exactly reproducible.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/harness"
	"repro/internal/stagger"
)

// Cell is one benchmark configuration's measured cost.
type Cell struct {
	Name           string  `json:"name"`
	Runs           int     `json:"runs"`
	Events         uint64  `json:"events"`
	NsPerRun       float64 `json:"ns_per_run"`
	EventsPerSec   float64 `json:"events_per_sec"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
}

// TableSet reports the paper table/figure sweep, sequential vs parallel.
type TableSet struct {
	Workers      int     `json:"workers"`
	SequentialNs float64 `json:"sequential_ns"`
	ParallelNs   float64 `json:"parallel_ns"`
	Speedup      float64 `json:"speedup"`
}

// Report is the BENCH_paper.json schema.
type Report struct {
	Quick      bool      `json:"quick"`
	GoMaxProcs int       `json:"go_max_procs"`
	Cells      []Cell    `json:"cells"`
	Tables     *TableSet `json:"tables,omitempty"`
}

type cellSpec struct {
	bench   string
	mode    stagger.Mode
	threads int
	ops     int
}

func (s cellSpec) name() string {
	return fmt.Sprintf("%s/%s/t%d/ops%d", s.bench, s.mode, s.threads, s.ops)
}

// matrix returns the fixed workload matrix. The full matrix covers the
// paper's six representative benchmarks on both the baseline HTM and the
// full staggered system at 1 and 16 threads; -quick keeps two benchmarks
// at 4 threads so the CI smoke job finishes in seconds.
func matrix(quick bool) []cellSpec {
	if quick {
		var cells []cellSpec
		for _, b := range []string{"list-hi", "kmeans"} {
			for _, m := range []stagger.Mode{stagger.ModeHTM, stagger.ModeStaggeredHW} {
				cells = append(cells, cellSpec{b, m, 4, 400})
			}
		}
		return cells
	}
	var cells []cellSpec
	for _, b := range []string{"list-hi", "tsp", "memcached", "intruder", "kmeans", "vacation"} {
		for _, m := range []stagger.Mode{stagger.ModeHTM, stagger.ModeStaggeredHW} {
			for _, th := range []int{1, 16} {
				cells = append(cells, cellSpec{b, m, th, 2000})
			}
		}
	}
	return cells
}

// events counts the simulated memory events of one run — the unit the
// engine hot path pays for.
func events(res *harness.Result) uint64 {
	s := res.Stats
	return s.Loads + s.Stores + s.NTLoads + s.NTStores
}

// measureCell runs one cell reps times (plus an untimed warmup) and
// reports the fastest wall time and the fewest host allocations observed;
// minima are the standard noise filter for both.
func measureCell(spec cellSpec, seed int64, reps int) (Cell, error) {
	rc := harness.RunConfig{
		Benchmark: spec.bench, Mode: spec.mode, Threads: spec.threads,
		Seed: seed, TotalOps: spec.ops,
	}
	if _, err := harness.Run(rc); err != nil { // warmup, untimed
		return Cell{}, err
	}
	var ev uint64
	bestNs := float64(0)
	bestAllocs := float64(0)
	var ms0, ms1 runtime.MemStats
	for r := 0; r < reps; r++ {
		runtime.ReadMemStats(&ms0)
		//staggervet:allow determinism host-side benchmark timing, not simulation state
		t0 := time.Now()
		res, err := harness.Run(rc)
		//staggervet:allow determinism host-side benchmark timing, not simulation state
		ns := float64(time.Since(t0).Nanoseconds())
		runtime.ReadMemStats(&ms1)
		if err != nil {
			return Cell{}, err
		}
		ev = events(res)
		allocs := float64(ms1.Mallocs - ms0.Mallocs)
		if r == 0 || ns < bestNs {
			bestNs = ns
		}
		if r == 0 || allocs < bestAllocs {
			bestAllocs = allocs
		}
	}
	c := Cell{Name: spec.name(), Runs: reps, Events: ev, NsPerRun: bestNs}
	if ev > 0 {
		c.EventsPerSec = float64(ev) / (bestNs / 1e9)
		c.AllocsPerEvent = bestAllocs / float64(ev)
	}
	return c, nil
}

// paperTables regenerates the table/figure set cmd/paper prints by
// default (-quick: Table 1 only) and returns the wall time.
func paperTables(seed int64, quick bool) (float64, error) {
	harness.ClearCache()
	//staggervet:allow determinism host-side benchmark timing, not simulation state
	t0 := time.Now()
	if _, err := harness.Table1(seed); err != nil {
		return 0, err
	}
	if !quick {
		if _, err := harness.Table3(seed); err != nil {
			return 0, err
		}
		if _, err := harness.Table4(seed); err != nil {
			return 0, err
		}
		if _, err := harness.Figure7(seed); err != nil {
			return 0, err
		}
		if _, err := harness.Figure8(seed); err != nil {
			return 0, err
		}
		if _, err := harness.Claims(seed); err != nil {
			return 0, err
		}
	}
	//staggervet:allow determinism host-side benchmark timing, not simulation state
	return float64(time.Since(t0).Nanoseconds()), nil
}

// compare gates the fresh report against a baseline: timed metrics may
// regress by at most tol (fractional), allocations per event by at most
// allocTol plus a small absolute epsilon (so a 0-alloc baseline doesn't
// demand exactly 0 forever). Cells are matched by name; cells missing
// from either side are skipped, so quick and full reports only gate
// their intersection.
func compare(fresh, base *Report, tol, allocTol float64) []string {
	var fails []string
	baseCells := make(map[string]Cell, len(base.Cells))
	for _, c := range base.Cells {
		baseCells[c.Name] = c
	}
	for _, c := range fresh.Cells {
		b, ok := baseCells[c.Name]
		if !ok {
			continue
		}
		if b.Events != 0 && c.Events != b.Events {
			fails = append(fails, fmt.Sprintf(
				"%s: simulated events changed %d -> %d (the simulation itself changed, re-baseline deliberately)",
				c.Name, b.Events, c.Events))
		}
		if b.NsPerRun > 0 && c.NsPerRun > b.NsPerRun*(1+tol) {
			fails = append(fails, fmt.Sprintf("%s: ns/run %.0f -> %.0f (+%.0f%%, limit +%.0f%%)",
				c.Name, b.NsPerRun, c.NsPerRun, (c.NsPerRun/b.NsPerRun-1)*100, tol*100))
		}
		if c.AllocsPerEvent > b.AllocsPerEvent*(1+allocTol)+0.01 {
			fails = append(fails, fmt.Sprintf("%s: allocs/event %.4f -> %.4f (limit +%.0f%%)",
				c.Name, b.AllocsPerEvent, c.AllocsPerEvent, allocTol*100))
		}
	}
	if fresh.Tables != nil && base.Tables != nil && base.Tables.ParallelNs > 0 {
		if fresh.Tables.ParallelNs > base.Tables.ParallelNs*(1+tol) {
			fails = append(fails, fmt.Sprintf("tables: parallel wall %.2fs -> %.2fs (limit +%.0f%%)",
				base.Tables.ParallelNs/1e9, fresh.Tables.ParallelNs/1e9, tol*100))
		}
	}
	return fails
}

func main() {
	out := flag.String("out", "BENCH_paper.json", "write the report to this file")
	quick := flag.Bool("quick", false, "CI smoke matrix: fewer cells, one timed rep, Table 1 only")
	baseline := flag.String("baseline", "", "compare against this report and exit 1 past the tolerances")
	tol := flag.Float64("tolerance", 0.25, "allowed fractional slowdown in timed metrics vs -baseline")
	allocTol := flag.Float64("alloc-tolerance", 0.10, "allowed fractional increase in allocs/event vs -baseline")
	workers := flag.Int("workers", runtime.NumCPU(), "parallel sweep width for the table-set measurement")
	seed := flag.Int64("seed", 42, "experiment seed")
	tables := flag.Bool("tables", true, "also time the paper table set sequential vs parallel")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "staggerbench:", err)
		os.Exit(1)
	}

	rep := &Report{Quick: *quick, GoMaxProcs: runtime.GOMAXPROCS(0)}
	reps := 3
	if *quick {
		reps = 1
	}
	for _, spec := range matrix(*quick) {
		c, err := measureCell(spec, *seed, reps)
		if err != nil {
			fail(err)
		}
		rep.Cells = append(rep.Cells, c)
		fmt.Printf("%-34s %10.2f ms  %12.0f events/s  %8.4f allocs/event\n",
			c.Name, c.NsPerRun/1e6, c.EventsPerSec, c.AllocsPerEvent)
	}

	if *tables {
		prev := harness.SetWorkers(1)
		seqNs, err := paperTables(*seed, *quick)
		if err != nil {
			fail(err)
		}
		harness.SetWorkers(*workers)
		parNs, err := paperTables(*seed, *quick)
		harness.SetWorkers(prev)
		harness.ClearCache()
		if err != nil {
			fail(err)
		}
		rep.Tables = &TableSet{
			Workers:      *workers,
			SequentialNs: seqNs,
			ParallelNs:   parNs,
			Speedup:      seqNs / parNs,
		}
		fmt.Printf("paper tables: sequential %.2fs, parallel(%d) %.2fs, speedup %.2fx\n",
			seqNs/1e9, *workers, parNs/1e9, seqNs/parNs)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fail(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fail(err)
	}
	fmt.Printf("wrote %s\n", *out)

	if *baseline != "" {
		raw, err := os.ReadFile(*baseline)
		if err != nil {
			fail(err)
		}
		var base Report
		if err := json.Unmarshal(raw, &base); err != nil {
			fail(fmt.Errorf("parse %s: %w", *baseline, err))
		}
		if fails := compare(rep, &base, *tol, *allocTol); len(fails) > 0 {
			fmt.Fprintf(os.Stderr, "staggerbench: %d regression(s) vs %s:\n", len(fails), *baseline)
			for _, f := range fails {
				fmt.Fprintln(os.Stderr, "  -", f)
			}
			os.Exit(1)
		}
		fmt.Printf("within tolerance of %s (+%.0f%% time, +%.0f%% allocs)\n",
			*baseline, *tol*100, *allocTol*100)
	}
}
