// Command staggerbench measures the simulator's host-side performance on
// a fixed workload matrix and writes the results as JSON, so engine and
// harness optimizations are gated by numbers instead of folklore.
//
// Three metric families:
//
//   - per-cell simulation cost: wall ns/run, simulated memory events per
//     host second, and host allocations per simulated event;
//   - sweep throughput: wall-clock for the paper's table/figure set run
//     strictly sequentially (-workers 1) and with the parallel sweep
//     runner, plus the resulting speedup;
//   - a regression gate: -baseline compares against a committed report
//     and exits nonzero past the tolerances. The primary gate is the
//     cooperative engine's speedup over the in-process reference engine
//     (host-speed invariant); absolute wall time is a loose backstop.
//
// Usage:
//
//	staggerbench                           # full matrix -> BENCH_paper.json
//	staggerbench -quick                    # CI smoke matrix (seconds, not minutes)
//	staggerbench -quick -baseline bench_baseline.json
//
// Host timing is intentionally nondeterministic; every simulated number
// in the report (events, stats) is still exactly reproducible.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"repro/internal/backend"
	"repro/internal/harness"
	"repro/internal/htm"
	"repro/internal/stagger"
)

// Cell is one benchmark configuration's measured cost. Every cell is
// measured twice — on the default cooperative engine and on the
// retained reference engine (htm.Config.RefEngine) — because the ref
// engine is the only host-speed-invariant yardstick this machine has:
// wall-clock on a shared box swings by 2x with neighbor load, but both
// engines swing together, so the speedup ratio is stable and the
// regression gate can hold a tight tolerance on it.
type Cell struct {
	Name           string  `json:"name"`
	Runs           int     `json:"runs"`
	Events         uint64  `json:"events"`
	NsPerRun       float64 `json:"ns_per_run"`
	EventsPerSec   float64 `json:"events_per_sec"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
	// RefNsPerRun and RefEventsPerSec are the same cell on the reference
	// engine; Speedup is their ratio to the cooperative engine.
	RefNsPerRun     float64 `json:"ref_ns_per_run"`
	RefEventsPerSec float64 `json:"ref_events_per_sec"`
	Speedup         float64 `json:"speedup"`
}

// TableSet reports the paper table/figure sweep, sequential vs parallel.
type TableSet struct {
	Workers      int     `json:"workers"`
	SequentialNs float64 `json:"sequential_ns"`
	ParallelNs   float64 `json:"parallel_ns"`
	Speedup      float64 `json:"speedup"`
}

// Report is the BENCH_paper.json schema.
type Report struct {
	Quick      bool      `json:"quick"`
	GoMaxProcs int       `json:"go_max_procs"`
	Cells      []Cell    `json:"cells"`
	Tables     *TableSet `json:"tables,omitempty"`
}

type cellSpec struct {
	bench   string
	mode    stagger.Mode
	backend string
	threads int
	ops     int
}

func (s cellSpec) name() string {
	sys := s.mode.String()
	if s.backend != "" {
		sys = s.backend
	}
	return fmt.Sprintf("%s/%s/t%d/ops%d", s.bench, sys, s.threads, s.ops)
}

// matrix returns the fixed workload matrix. The full matrix covers the
// paper's six representative benchmarks on both the baseline HTM and the
// full staggered system at 1 and 16 threads; -quick keeps two benchmarks
// at 1 and 4 threads so the CI smoke job finishes in seconds. The
// single-thread cells isolate the engine's sequential event throughput
// (no token handoffs), which is what the cooperative engine's ≥10x gate
// is measured on; the 4-thread cells additionally price the handoff path
// under contention.
//
// A non-empty backendName re-measures the same benchmark/thread grid
// under that arena backend instead of the two legacy modes (the backend
// itself defines the system, so the mode axis collapses); cell names
// then carry the backend name and never collide with the legacy
// baseline's.
func matrix(quick bool, backendName string) []cellSpec {
	benches := []string{"list-hi", "tsp", "memcached", "intruder", "kmeans", "vacation"}
	threads := []int{1, 16}
	ops := 2000
	if quick {
		benches = []string{"list-hi", "kmeans"}
		threads = []int{1, 4}
		ops = 400
	}
	modes := []stagger.Mode{stagger.ModeHTM, stagger.ModeStaggeredHW}
	if backendName != "" {
		// The backend resolves its own effective mode from ModeStaggeredHW
		// (software backends force HTM; "staggered" keeps it).
		modes = []stagger.Mode{stagger.ModeStaggeredHW}
	}
	var cells []cellSpec
	for _, b := range benches {
		for _, m := range modes {
			for _, th := range threads {
				cells = append(cells, cellSpec{b, m, backendName, th, ops})
			}
		}
	}
	return cells
}

// events counts the simulated memory events of one run — the unit the
// engine hot path pays for.
func events(res *harness.Result) uint64 {
	s := res.Stats
	return s.Loads + s.Stores + s.NTLoads + s.NTStores
}

// timedRun runs rc once and returns its wall time and host allocations.
func timedRun(rc harness.RunConfig) (ns, allocs float64, ev uint64, err error) {
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	//staggervet:allow determinism host-side benchmark timing, not simulation state
	t0 := time.Now()
	res, err := harness.Run(rc)
	//staggervet:allow determinism host-side benchmark timing, not simulation state
	ns = float64(time.Since(t0).Nanoseconds())
	runtime.ReadMemStats(&ms1)
	if err != nil {
		return 0, 0, 0, err
	}
	return ns, float64(ms1.Mallocs - ms0.Mallocs), events(res), nil
}

// measureCell measures one cell on the cooperative engine and on the
// reference engine (the host-speed yardstick; see Cell). The two
// engines' reps are interleaved — coop, ref, coop, ref, ... — so a
// host-speed phase change mid-cell hits both engines alike and both
// minima come from the same (fastest) phase; block measurement here
// was observed to report a skewed speedup when the host shifted
// between the blocks. Minima over reps are the standard noise filter.
func measureCell(spec cellSpec, seed int64, reps int) (Cell, error) {
	rc := harness.RunConfig{
		Benchmark: spec.bench, Mode: spec.mode, Backend: spec.backend,
		Threads: spec.threads, Seed: seed, TotalOps: spec.ops,
	}
	mc := htm.DefaultConfig()
	mc.RefEngine = true
	refRC := rc
	refRC.Machine = &mc
	if _, err := harness.Run(rc); err != nil { // warmup, untimed
		return Cell{}, err
	}
	if _, err := harness.Run(refRC); err != nil {
		return Cell{}, err
	}
	// Sub-millisecond cells need more pairs than long ones for the
	// ratio median to settle, so sampling continues past `reps` until
	// the cell has accumulated ~60ms of timed work (hard-capped so a
	// pathological cell cannot stall the matrix).
	const minSampleNs = 60e6
	const maxPairs = 40
	var bestNs, bestAllocs, refNs, sampledNs float64
	var ev, refEv uint64
	ratios := make([]float64, 0, maxPairs)
	for r := 0; r < maxPairs && (r < reps || sampledNs < minSampleNs); r++ {
		ns, allocs, e, err := timedRun(rc)
		if err != nil {
			return Cell{}, err
		}
		ev = e
		if r == 0 || ns < bestNs {
			bestNs = ns
		}
		if r == 0 || allocs < bestAllocs {
			bestAllocs = allocs
		}
		rns, _, re, err := timedRun(refRC)
		if err != nil {
			return Cell{}, err
		}
		refEv = re
		if r == 0 || rns < refNs {
			refNs = rns
		}
		sampledNs += ns + rns
		if ns > 0 {
			ratios = append(ratios, rns/ns)
		}
	}
	if refEv != ev {
		return Cell{}, fmt.Errorf("%s: engines disagree on simulated events (%d vs %d); run the equivalence suite",
			spec.name(), ev, refEv)
	}
	c := Cell{Name: spec.name(), Runs: len(ratios), Events: ev, NsPerRun: bestNs, RefNsPerRun: refNs}
	if ev > 0 {
		c.EventsPerSec = float64(ev) / (bestNs / 1e9)
		c.AllocsPerEvent = bestAllocs / float64(ev)
		c.RefEventsPerSec = float64(ev) / (refNs / 1e9)
	}
	// The speedup is the median of the per-rep pairwise ratios, not the
	// ratio of the two minima: each interleaved pair shares its host
	// phase, and the median shrugs off a single outlier rep, so the
	// recorded baseline ratio is a stable target rather than a lucky
	// draw the gate then holds every future run to.
	c.Speedup = median(ratios)
	return c, nil
}

// median returns the middle value of xs (mean of the middle two for
// even lengths), or 0 for an empty slice. xs is sorted in place.
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sort.Float64s(xs)
	if n := len(xs); n%2 == 1 {
		return xs[n/2]
	} else {
		return (xs[n/2-1] + xs[n/2]) / 2
	}
}

// paperTables regenerates the table/figure set cmd/paper prints by
// default (-quick: Table 1 only) and returns the wall time.
func paperTables(seed int64, quick bool) (float64, error) {
	harness.ClearCache()
	//staggervet:allow determinism host-side benchmark timing, not simulation state
	t0 := time.Now()
	if _, err := harness.Table1(seed); err != nil {
		return 0, err
	}
	if !quick {
		if _, err := harness.Table3(seed); err != nil {
			return 0, err
		}
		if _, err := harness.Table4(seed); err != nil {
			return 0, err
		}
		if _, err := harness.Figure7(seed); err != nil {
			return 0, err
		}
		if _, err := harness.Figure8(seed); err != nil {
			return 0, err
		}
		if _, err := harness.Claims(seed); err != nil {
			return 0, err
		}
	}
	//staggervet:allow determinism host-side benchmark timing, not simulation state
	return float64(time.Since(t0).Nanoseconds()), nil
}

// compare gates the fresh report against a baseline. Three gates per
// cell, matched by name (cells missing from either side are skipped, so
// quick and full reports only gate their intersection):
//
//   - simulated events must match exactly — any drift means the
//     simulation itself changed and the baseline must be re-recorded
//     deliberately;
//   - the cooperative engine's speedup over the reference engine may
//     regress by at most tol (fractional). Both engines are timed in the
//     same process seconds apart, so host-speed swings cancel and this
//     ratio holds a tight tolerance even on a shared box — it is the
//     primary events/s regression gate;
//   - absolute wall time may regress by at most hostTol, a deliberately
//     loose backstop (host phases of 2x have been observed here with the
//     machine otherwise idle) that still catches regressions on the
//     paths both engines share — flat tables, workload bodies — which
//     the ratio gate cannot see.
//
// Allocations per event are host-deterministic, so they keep the tight
// allocTol (plus a small absolute epsilon so a 0-alloc baseline doesn't
// demand exactly 0 forever).
func compare(fresh, base *Report, tol, allocTol, hostTol float64) []string {
	var fails []string
	baseCells := make(map[string]Cell, len(base.Cells))
	for _, c := range base.Cells {
		baseCells[c.Name] = c
	}
	for _, c := range fresh.Cells {
		b, ok := baseCells[c.Name]
		if !ok {
			continue
		}
		if b.Events != 0 && c.Events != b.Events {
			fails = append(fails, fmt.Sprintf(
				"%s: simulated events changed %d -> %d (the simulation itself changed, re-baseline deliberately)",
				c.Name, b.Events, c.Events))
		}
		if b.Speedup > 0 && c.Speedup > 0 && c.Speedup < b.Speedup/(1+tol) {
			fails = append(fails, fmt.Sprintf(
				"%s: speedup over the reference engine %.2fx -> %.2fx (-%.0f%%, limit -%.0f%%)",
				c.Name, b.Speedup, c.Speedup, (1-c.Speedup/b.Speedup)*100, tol/(1+tol)*100))
		}
		if b.NsPerRun > 0 && c.NsPerRun > b.NsPerRun*(1+hostTol) {
			fails = append(fails, fmt.Sprintf("%s: ns/run %.0f -> %.0f (+%.0f%%, limit +%.0f%%)",
				c.Name, b.NsPerRun, c.NsPerRun, (c.NsPerRun/b.NsPerRun-1)*100, hostTol*100))
		}
		if c.AllocsPerEvent > b.AllocsPerEvent*(1+allocTol)+0.01 {
			fails = append(fails, fmt.Sprintf("%s: allocs/event %.4f -> %.4f (limit +%.0f%%)",
				c.Name, b.AllocsPerEvent, c.AllocsPerEvent, allocTol*100))
		}
	}
	if fresh.Tables != nil && base.Tables != nil && base.Tables.ParallelNs > 0 {
		if fresh.Tables.ParallelNs > base.Tables.ParallelNs*(1+hostTol) {
			fails = append(fails, fmt.Sprintf("tables: parallel wall %.2fs -> %.2fs (limit +%.0f%%)",
				base.Tables.ParallelNs/1e9, fresh.Tables.ParallelNs/1e9, hostTol*100))
		}
	}
	return fails
}

func main() {
	out := flag.String("out", "BENCH_paper.json", "write the report to this file")
	quick := flag.Bool("quick", false, "CI smoke matrix: fewer cells, one timed rep, Table 1 only")
	baseline := flag.String("baseline", "", "compare against this report and exit 1 past the tolerances")
	tol := flag.Float64("tolerance", 0.25, "allowed fractional regression of the speedup-over-reference ratio vs -baseline")
	allocTol := flag.Float64("alloc-tolerance", 0.10, "allowed fractional increase in allocs/event vs -baseline")
	hostTol := flag.Float64("host-tolerance", 1.5, "allowed fractional absolute wall-time slowdown vs -baseline (loose: absorbs shared-host speed phases)")
	workers := flag.Int("workers", runtime.NumCPU(), "parallel sweep width for the table-set measurement")
	seed := flag.Int64("seed", 42, "experiment seed")
	tables := flag.Bool("tables", true, "also time the paper table set sequential vs parallel")
	backendName := ""
	flag.Func("backend", "measure an arena backend ("+strings.Join(backend.Names(), " | ")+
		") instead of the legacy mode pair", func(s string) error {
		if _, err := backend.Get(s); err != nil {
			return err
		}
		backendName = s
		return nil
	})
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "staggerbench:", err)
		os.Exit(1)
	}

	rep := &Report{Quick: *quick, GoMaxProcs: runtime.GOMAXPROCS(0)}
	// The cooperative engine runs the quick cells in single-digit
	// milliseconds, so quick mode can afford best-of-5: minima over five
	// reps keep the CI gate's noise floor well under its 25% tolerance.
	reps := 3
	if *quick {
		reps = 5
	}
	for _, spec := range matrix(*quick, backendName) {
		c, err := measureCell(spec, *seed, reps)
		if err != nil {
			fail(err)
		}
		rep.Cells = append(rep.Cells, c)
		fmt.Printf("%-34s %10.2f ms  %12.0f events/s  %8.4f allocs/event  %6.2fx vs ref\n",
			c.Name, c.NsPerRun/1e6, c.EventsPerSec, c.AllocsPerEvent, c.Speedup)
	}

	if *tables {
		prev := harness.SetWorkers(1)
		seqNs, err := paperTables(*seed, *quick)
		if err != nil {
			fail(err)
		}
		harness.SetWorkers(*workers)
		parNs, err := paperTables(*seed, *quick)
		harness.SetWorkers(prev)
		harness.ClearCache()
		if err != nil {
			fail(err)
		}
		rep.Tables = &TableSet{
			Workers:      *workers,
			SequentialNs: seqNs,
			ParallelNs:   parNs,
			Speedup:      seqNs / parNs,
		}
		fmt.Printf("paper tables: sequential %.2fs, parallel(%d) %.2fs, speedup %.2fx\n",
			seqNs/1e9, *workers, parNs/1e9, seqNs/parNs)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fail(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fail(err)
	}
	fmt.Printf("wrote %s\n", *out)

	if *baseline != "" {
		raw, err := os.ReadFile(*baseline)
		if err != nil {
			fail(err)
		}
		var base Report
		if err := json.Unmarshal(raw, &base); err != nil {
			fail(fmt.Errorf("parse %s: %w", *baseline, err))
		}
		if fails := compare(rep, &base, *tol, *allocTol, *hostTol); len(fails) > 0 {
			fmt.Fprintf(os.Stderr, "staggerbench: %d regression(s) vs %s:\n", len(fails), *baseline)
			for _, f := range fails {
				fmt.Fprintln(os.Stderr, "  -", f)
			}
			os.Exit(1)
		}
		fmt.Printf("within tolerance of %s (-%.0f%% speedup, +%.0f%% allocs, +%.0f%% wall backstop)\n",
			*baseline, *tol*100, *allocTol*100, *hostTol*100)
	}
}
