package main

import (
	"encoding/json"
	"os"
	"testing"
)

// TestCompareGatesRegressions pins the gate logic itself: changed
// simulated event counts, speedup-ratio regressions past the tolerance,
// absolute slowdowns past the host backstop, and allocation growth must
// each produce a failure line, while matching cells within tolerance
// pass silently.
func TestCompareGatesRegressions(t *testing.T) {
	base := &Report{Cells: []Cell{
		{Name: "a", Events: 100, NsPerRun: 1000, Speedup: 10, AllocsPerEvent: 0},
		{Name: "b", Events: 200, NsPerRun: 1000, Speedup: 10, AllocsPerEvent: 0.5},
	}}
	fresh := &Report{Cells: []Cell{
		// a: 2x wall (within the loose backstop) but the ratio collapsed.
		{Name: "a", Events: 100, NsPerRun: 2000, Speedup: 6, AllocsPerEvent: 0},
		// b: events drifted, wall past the backstop, allocs up 20%.
		{Name: "b", Events: 201, NsPerRun: 2600, Speedup: 10, AllocsPerEvent: 0.6},
	}}
	fails := compare(fresh, base, 0.25, 0.10, 1.5)
	if len(fails) != 4 {
		t.Fatalf("want 4 failures (ratio collapse, events changed, wall backstop, allocs), got %d: %v",
			len(fails), fails)
	}
	if fails := compare(base, base, 0.25, 0.10, 1.5); len(fails) != 0 {
		t.Fatalf("baseline vs itself must pass, got %v", fails)
	}
	// A uniform 2x host-speed phase (both engines slower, ratio intact)
	// must pass: that is the whole point of the ratio gate.
	phase := &Report{Cells: []Cell{
		{Name: "a", Events: 100, NsPerRun: 2300, Speedup: 10, AllocsPerEvent: 0},
		{Name: "b", Events: 200, NsPerRun: 2300, Speedup: 10, AllocsPerEvent: 0.5},
	}}
	if fails := compare(phase, base, 0.25, 0.10, 1.5); len(fails) != 0 {
		t.Fatalf("host-speed phase within backstop must pass, got %v", fails)
	}
}

// TestEventsPerSecNoRegression is the benchmark-driven regression test
// of ISSUE 9: it re-measures the quick matrix with the same protocol as
// `make bench` (best-of-5 minima, both engines in-process) and fails if
// any cell's events/s — normalized by the reference engine, so shared-
// host speed phases cancel — regresses more than 25% below the
// committed bench_baseline.json. The baseline was raised to the
// cooperative engine's throughput, so a revert to channel-era
// performance cannot land silently.
func TestEventsPerSecNoRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive gate; run without -short (CI also runs it via make bench)")
	}
	raw, err := os.ReadFile("../../bench_baseline.json")
	if err != nil {
		t.Fatalf("committed baseline missing: %v", err)
	}
	var base Report
	if err := json.Unmarshal(raw, &base); err != nil {
		t.Fatal(err)
	}
	fresh := &Report{Quick: true}
	for _, spec := range matrix(true, "") {
		c, err := measureCell(spec, 42, 5)
		if err != nil {
			t.Fatal(err)
		}
		fresh.Cells = append(fresh.Cells, c)
		t.Logf("%s: %.0f events/s, %.2fx vs ref", c.Name, c.EventsPerSec, c.Speedup)
	}
	if fails := compare(fresh, &base, 0.25, 0.10, 1.5); len(fails) > 0 {
		for _, f := range fails {
			t.Errorf("regression vs bench_baseline.json: %s", f)
		}
	}
}
