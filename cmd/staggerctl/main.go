// Command staggerctl is the client for staggerd: submit jobs, poll
// them, and fetch results, metrics, and traces over the daemon's
// HTTP+JSON API.
//
//	staggerctl -addr HOST:PORT submit SPEC-JSON|@file|-   # -> job id
//	staggerctl -addr HOST:PORT status JOB
//	staggerctl -addr HOST:PORT wait JOB                   # poll until terminal
//	staggerctl -addr HOST:PORT result JOB
//	staggerctl -addr HOST:PORT cell JOB N                 # one cell, exact stored bytes
//	staggerctl -addr HOST:PORT trace JOB N                # Perfetto timeline JSON
//	staggerctl -addr HOST:PORT cancel JOB
//	staggerctl -addr HOST:PORT jobs | metrics | health | drain
//
// The spec is staggerd's JobSpec JSON, passed through verbatim. Cells
// pick a concurrency-control backend with the "backend" field and
// sweeps cross a "backends" axis; both are validated at submit time:
//
//	staggerctl -addr :8080 submit '{"cells":[{"bench":"kmeans","backend":"occ","oracle":true}]}'
//	staggerctl -addr :8080 submit '{"benchmarks":["intruder"],"backends":["htm","occ","limited"]}'
//
// The exit code is 0 on success, 1 on any HTTP or job-level failure
// (wait exits 1 if the job ends failed or canceled), so shell scripts
// and the daemon-smoke CI target can chain verbs with && safely.
//
// Read-only verbs (status, wait, result, cell, trace, jobs, metrics,
// health) retry connection-level failures — refused dials, connections
// severed by a dying daemon — with capped exponential backoff for
// -reconnect: a daemon that crashed and is being restarted by its
// supervisor recovers its journal and answers again, so a polling
// client should ride through the restart window instead of failing the
// pipeline. Mutating verbs never auto-retry.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"os"
	"strings"
	"time"
)

func main() {
	addr := flag.String("addr", os.Getenv("STAGGERD_ADDR"), "daemon address host:port (or $STAGGERD_ADDR)")
	interval := flag.Duration("poll", 200*time.Millisecond, "wait: polling interval")
	timeout := flag.Duration("timeout", 10*time.Minute, "wait: give up after this long")
	reconnect := flag.Duration("reconnect", 15*time.Second, "read verbs: keep retrying refused connections this long (0 = fail fast)")
	flag.Parse()
	if *addr == "" || flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: staggerctl -addr HOST:PORT VERB [ARGS] (see package doc)")
		os.Exit(2)
	}
	c := client{base: "http://" + *addr, reconnect: *reconnect}

	verb, args := flag.Arg(0), flag.Args()[1:]
	var err error
	switch verb {
	case "submit":
		err = c.submit(args)
	case "status":
		err = c.getJSON("/jobs/"+one(args, "job id"), os.Stdout)
	case "wait":
		err = c.wait(one(args, "job id"), *interval, *timeout)
	case "result":
		err = c.getJSON("/jobs/"+one(args, "job id")+"/result", os.Stdout)
	case "cell":
		if len(args) != 2 {
			fail("cell needs JOB and N")
		}
		err = c.getJSON("/jobs/"+args[0]+"/cells/"+args[1], os.Stdout)
	case "trace":
		if len(args) != 2 {
			fail("trace needs JOB and N")
		}
		err = c.getJSON("/jobs/"+args[0]+"/trace?cell="+args[1], os.Stdout)
	case "cancel":
		err = c.do("DELETE", "/jobs/"+one(args, "job id"), nil, io.Discard)
	case "jobs":
		err = c.getJSON("/jobs", os.Stdout)
	case "metrics":
		err = c.getJSON("/metrics", os.Stdout)
	case "health":
		err = c.getJSON("/healthz", os.Stdout)
	case "drain":
		err = c.do("POST", "/drain", nil, os.Stdout)
	default:
		fail("unknown verb " + verb)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "staggerctl:", err)
		os.Exit(1)
	}
}

func one(args []string, what string) string {
	if len(args) != 1 {
		fail("need exactly one " + what)
	}
	return args[0]
}

func fail(msg string) {
	fmt.Fprintln(os.Stderr, "staggerctl:", msg)
	os.Exit(2)
}

type client struct {
	base      string
	reconnect time.Duration
}

// do performs one request and copies the body to out; non-2xx answers
// become errors carrying the server's JSON error message.
func (c client) do(method, path string, body io.Reader, out io.Writer) error {
	req, err := http.NewRequest(method, c.base+path, body)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("%s %s: %s: %s", method, path, resp.Status, strings.TrimSpace(string(b)))
	}
	_, err = io.Copy(out, resp.Body)
	return err
}

// retryable reports whether err is a connection-level failure from
// before any response bytes arrived — a refused dial, or a connection
// the daemon's death severed mid-request (reset, unexpected EOF). Those
// all surface as *url.Error from Client.Do, so nothing has been copied
// to out yet and a retry cannot duplicate output; errors while reading
// a response body arrive unwrapped and are never retried. HTTP-level
// answers (any status code) are never retried either.
func retryable(err error) bool {
	var ue *url.Error
	if !errors.As(err, &ue) {
		return false
	}
	var oe *net.OpError
	return errors.As(err, &oe) ||
		errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF)
}

// getJSON is the read path: side-effect-free GETs, so retrying across a
// daemon restart is always safe. Connection failures back off
// exponentially (100ms doubling to a 2s cap) until the -reconnect
// budget runs out; nothing has been written to out when one happens, so
// a retry never duplicates output.
func (c client) getJSON(path string, out io.Writer) error {
	const backoffCap = 2 * time.Second
	delay := 100 * time.Millisecond
	deadline := time.Now().Add(c.reconnect)
	for {
		err := c.do("GET", path, nil, out)
		if err == nil || !retryable(err) || !time.Now().Before(deadline) {
			return err
		}
		fmt.Fprintf(os.Stderr, "staggerctl: %v; retrying in %v\n", err, delay)
		time.Sleep(delay)
		if delay *= 2; delay > backoffCap {
			delay = backoffCap
		}
	}
}

// submit reads the job spec from the argument ('-' or @file for
// indirection), posts it, prints the accepted job's id on stdout.
func (c client) submit(args []string) error {
	raw := one(args, "job spec (JSON, @file, or -)")
	var spec []byte
	var err error
	switch {
	case raw == "-":
		spec, err = io.ReadAll(os.Stdin)
	case strings.HasPrefix(raw, "@"):
		spec, err = os.ReadFile(raw[1:])
	default:
		spec = []byte(raw)
	}
	if err != nil {
		return err
	}
	var buf strings.Builder
	if err := c.do("POST", "/jobs", strings.NewReader(string(spec)), &buf); err != nil {
		return err
	}
	var st struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal([]byte(buf.String()), &st); err != nil {
		return fmt.Errorf("bad submit response: %w", err)
	}
	fmt.Println(st.ID)
	return nil
}

// wait polls the job until it reaches a terminal state, printing the
// final status JSON; failed or canceled jobs exit nonzero via error.
func (c client) wait(id string, interval, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		var buf strings.Builder
		if err := c.getJSON("/jobs/"+id, &buf); err != nil {
			return err
		}
		var st struct {
			State string `json:"state"`
			Error string `json:"error"`
		}
		if err := json.Unmarshal([]byte(buf.String()), &st); err != nil {
			return fmt.Errorf("bad status: %w", err)
		}
		switch st.State {
		case "done":
			fmt.Print(buf.String())
			return nil
		case "failed", "canceled":
			fmt.Print(buf.String())
			return fmt.Errorf("job %s %s: %s", id, st.State, st.Error)
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("job %s still %s after %v", id, st.State, timeout)
		}
		time.Sleep(interval)
	}
}
