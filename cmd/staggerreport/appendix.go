package main

import (
	"bytes"
	"context"
	"fmt"

	"repro/internal/anchor"
	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/stagger"
	"repro/internal/staticcheck"
	"repro/internal/workloads"
)

// table1Benchmarks are the cells of EXPERIMENTS.md Table 1: baseline
// HTM at 16 threads, default operation counts, seed 42. The appendix
// regenerates from exactly these runs so its attribution matches the
// table it annotates.
var table1Benchmarks = []string{"list-hi", "tsp", "memcached", "intruder", "kmeans", "vacation"}

// generateAppendix simulates the Table 1 cells and renders the
// abort-attribution appendix: a per-workload cycle-breakdown table and
// the top-N conflicting anchors per workload.
func generateAppendix(topN int) ([]byte, error) {
	cfgs := make([]harness.RunConfig, len(table1Benchmarks))
	for i, b := range table1Benchmarks {
		cfgs[i] = harness.RunConfig{Benchmark: b, Mode: stagger.ModeHTM, Threads: 16}
	}
	reps := make([]*obs.Report, len(cfgs))
	for i, o := range harness.RunAll(context.Background(), cfgs, 0) {
		if o.Err != nil {
			return nil, fmt.Errorf("%s: %w", cfgs[i].Benchmark, o.Err)
		}
		reps[i] = obs.Snapshot(o.Res)
	}

	var b bytes.Buffer
	fmt.Fprintf(&b, "\nEvery number in this appendix regenerates deterministically from the\n")
	fmt.Fprintf(&b, "Table 1 cells (baseline HTM, 16 threads, seed 42) via\n")
	fmt.Fprintf(&b, "`go run ./cmd/staggerreport -appendix`; `make docs-verify` fails CI when\n")
	fmt.Fprintf(&b, "this text and the simulator disagree. The same data for any single run\n")
	fmt.Fprintf(&b, "is available as JSON from `staggersim -metrics`.\n\n")

	fmt.Fprintf(&b, "### Cycle breakdown per workload\n\n")
	fmt.Fprintf(&b, "Cycles across all 16 cores; percentages are of summed per-core final\n")
	fmt.Fprintf(&b, "clocks. NT-overhead (advisory-lock traffic inside attempts) is zero\n")
	fmt.Fprintf(&b, "here because baseline HTM takes no advisory locks — compare the same\n")
	fmt.Fprintf(&b, "cells under `-mode staggered` to see it appear.\n\n")
	fmt.Fprintf(&b, "| Benchmark | useful | wasted | lock-wait | backoff | global-wait | NT-ovh | W/U |\n")
	fmt.Fprintf(&b, "|---|---:|---:|---:|---:|---:|---:|---:|\n")
	for i, rep := range reps {
		var total uint64
		for _, pc := range rep.PerCore {
			total += pc.FinalClock
		}
		pct := func(v uint64) string {
			if total == 0 {
				return "-"
			}
			return fmt.Sprintf("%d (%.0f%%)", v, 100*float64(v)/float64(total))
		}
		c := rep.Cycles
		fmt.Fprintf(&b, "| %s | %s | %s | %s | %s | %s | %d | %.2f |\n",
			table1Benchmarks[i], pct(c.Useful), pct(c.Wasted), pct(c.LockWait),
			pct(c.Backoff), pct(c.GlobalWait), c.NTOverhead, rep.WastedOverUseful)
	}

	if err := conflictMatrixSection(&b); err != nil {
		return nil, err
	}

	fmt.Fprintf(&b, "\n### Top-%d conflicting anchors per workload\n\n", topN)
	fmt.Fprintf(&b, "The static sites whose cache lines killed the most transactions — the\n")
	fmt.Fprintf(&b, "`conflicting_anchors` histogram behind Table 1's LP column (an LP of Y\n")
	fmt.Fprintf(&b, "means one of these dominates its workload's conflicts).\n\n")
	fmt.Fprintf(&b, "| Benchmark | anchor | where | conflict aborts |\n")
	fmt.Fprintf(&b, "|---|---|---|---:|\n")
	for i, rep := range reps {
		pcs := rep.ConfPCs
		if len(pcs) > topN {
			pcs = pcs[:topN]
		}
		if len(pcs) == 0 {
			fmt.Fprintf(&b, "| %s | — | no conflict aborts | 0 |\n", table1Benchmarks[i])
			continue
		}
		for j, p := range pcs {
			name := table1Benchmarks[i]
			if j > 0 {
				name = ""
			}
			fmt.Fprintf(&b, "| %s | %s | %s | %d |\n", name, p.PC, p.Where, p.Aborts)
		}
	}
	return b.Bytes(), nil
}

// conflictMatrixSection renders the static conflict-prediction summary
// for every workload: conflict classes, may-conflict atomic-block pairs,
// and the advisory-lock sufficiency/precision verdicts that
// `staggersim -verify-conflicts` (the conflict-verify CI gate) proves,
// including its dynamic containment cross-validation.
func conflictMatrixSection(b *bytes.Buffer) error {
	fmt.Fprintf(b, "\n### Static conflict prediction per workload\n\n")
	fmt.Fprintf(b, "The may-conflict matrix built by `internal/staticcheck` over each\n")
	fmt.Fprintf(b, "workload's IR: DSA conflict classes unified across atomic blocks, the\n")
	fmt.Fprintf(b, "block pairs that can conflict at all, and the advisory-lock checks —\n")
	fmt.Fprintf(b, "sufficiency (every may-conflicting pair has an armable lock on all\n")
	fmt.Fprintf(b, "paths) and precision (no lock serializes a provably read-only class,\n")
	fmt.Fprintf(b, "modulo the waivers listed). `staggersim -verify-conflicts` additionally\n")
	fmt.Fprintf(b, "proves containment: every conflicting site pair observed dynamically\n")
	fmt.Fprintf(b, "falls inside this matrix.\n\n")
	fmt.Fprintf(b, "| Benchmark | atomic blocks | conflict classes | written | may-conflict pairs | waived sites |\n")
	fmt.Fprintf(b, "|---|---:|---:|---:|---:|---:|\n")
	for _, name := range workloads.Names() {
		w, err := workloads.Get(name)
		if err != nil {
			return err
		}
		comp := anchor.Compile(w.Mod, anchor.DefaultOptions())
		mc, viols := staticcheck.VerifyConflicts(comp, workloads.ConflictWaivers(name))
		if len(viols) > 0 {
			return fmt.Errorf("%s: %d conflict-prediction violation(s); run `staggersim -verify-conflicts -bench %s`", name, len(viols), name)
		}
		written := 0
		for _, root := range mc.Classes() {
			if mc.WrittenByAny(root) {
				written++
			}
		}
		pairs := 0
		ids := make([]int, 0, len(w.Mod.Atomics))
		for _, ab := range w.Mod.Atomics {
			ids = append(ids, ab.ID)
		}
		for i, a := range ids {
			for _, bb := range ids[i:] {
				if mc.MayConflictPair(a, bb) {
					pairs++
				}
			}
		}
		fmt.Fprintf(b, "| %s | %d | %d | %d | %d | %d |\n",
			name, len(w.Mod.Atomics), len(mc.Classes()), written, pairs, len(workloads.ConflictWaivers(name)))
	}
	return nil
}
