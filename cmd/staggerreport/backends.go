package main

import (
	"bytes"
	"context"
	"fmt"

	"repro/internal/backend"
	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/workloads"
)

// generateBackendArena simulates every registered concurrency-control
// backend over every workload (4 threads, default operation counts,
// seed 42, serializability oracle on) and renders the cross-backend
// comparison: throughput, abort rate, and wasted cycles per cell. One
// table per workload keeps backends adjacent, which is the comparison
// the arena exists for.
func generateBackendArena() ([]byte, error) {
	names := backend.Names()
	benches := workloads.Names()
	cfgs := make([]harness.RunConfig, 0, len(names)*len(benches))
	for _, bench := range benches {
		for _, bk := range names {
			cfgs = append(cfgs, harness.RunConfig{
				Benchmark: bench, Backend: bk, Threads: 4, Oracle: true,
			})
		}
	}
	reps := make([]*obs.Report, len(cfgs))
	for i, o := range harness.RunAll(context.Background(), cfgs, 0) {
		if o.Err != nil {
			return nil, fmt.Errorf("%s/%s: %w", cfgs[i].Benchmark, cfgs[i].Backend, o.Err)
		}
		if o.Res.VerifyErr != nil {
			return nil, fmt.Errorf("%s/%s: verify: %w", cfgs[i].Benchmark, cfgs[i].Backend, o.Res.VerifyErr)
		}
		if o.Res.OracleErr != nil {
			return nil, fmt.Errorf("%s/%s: oracle: %w", cfgs[i].Benchmark, cfgs[i].Backend, o.Res.OracleErr)
		}
		reps[i] = obs.Snapshot(o.Res)
	}

	var b bytes.Buffer
	fmt.Fprintf(&b, "\nEvery registered backend, every workload: 4 threads, default\n")
	fmt.Fprintf(&b, "operation counts, seed 42, serializability oracle on (a cell only\n")
	fmt.Fprintf(&b, "renders if its history serializes and the workload invariants hold).\n")
	fmt.Fprintf(&b, "Regenerate with `go run ./cmd/staggerreport -backends`; `make\n")
	fmt.Fprintf(&b, "docs-verify` fails CI when this text and the simulator disagree.\n")
	fmt.Fprintf(&b, "Throughput is commits per million simulated cycles — comparable\n")
	fmt.Fprintf(&b, "across backends because every backend runs the same workload IR on\n")
	fmt.Fprintf(&b, "the same simulated machine. The registered backends:\n\n")
	for _, line := range backend.Summaries() {
		fmt.Fprintf(&b, "- %s\n", line)
	}

	for bi, bench := range benches {
		fmt.Fprintf(&b, "\n#### %s\n\n", bench)
		fmt.Fprintf(&b, "| Backend | makespan | commits/Mcycle | aborts/commit | wasted cycles | W/U |\n")
		fmt.Fprintf(&b, "|---|---:|---:|---:|---:|---:|\n")
		for ni := range names {
			rep := reps[bi*len(names)+ni]
			tput := 0.0
			if rep.Makespan > 0 {
				tput = float64(rep.Commits) / (float64(rep.Makespan) / 1e6)
			}
			fmt.Fprintf(&b, "| %s | %d | %.1f | %.2f | %d | %.2f |\n",
				names[ni], rep.Makespan, tput, rep.AbortsPerCommit,
				rep.Cycles.Wasted, rep.WastedOverUseful)
		}
	}
	return b.Bytes(), nil
}
