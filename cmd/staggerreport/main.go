// Command staggerreport renders observability artifacts as markdown and
// keeps the repository's generated documentation sections in sync with
// the source tree.
//
// Render a metrics report (from `staggersim -metrics`) as tables:
//
//	staggersim -bench list-hi -metrics > run.json
//	staggerreport run.json
//
// Regenerate the generated documentation sections — the abort-attribution
// appendix and the cross-backend arena table in EXPERIMENTS.md (both
// simulated) and the repository map in README.md (from package doc
// comments):
//
//	staggerreport -appendix -write     # update EXPERIMENTS.md in place
//	staggerreport -backends -write     # update the backend-arena table
//	staggerreport -repomap -write      # update README.md in place
//	staggerreport -appendix -backends -repomap -check   # CI: fail if out of date
//
// Generated sections live between HTML comment markers
// (`<!-- BEGIN GENERATED: <name> -->` / `<!-- END GENERATED: <name> -->`);
// everything outside the markers is hand-written and never touched.
// Both generators are deterministic (fixed seed, stable sort orders), so
// `-check` is a meaningful CI gate: a diff means source and docs drifted.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/harness"
	"repro/internal/obs"
)

func main() {
	appendix := flag.Bool("appendix", false, "regenerate the EXPERIMENTS.md abort-attribution appendix")
	backends := flag.Bool("backends", false, "regenerate the EXPERIMENTS.md cross-backend arena table")
	repomap := flag.Bool("repomap", false, "regenerate the README.md repository map from package docs")
	check := flag.Bool("check", false, "verify generated sections are up to date (exit 1 on drift) instead of printing")
	write := flag.Bool("write", false, "rewrite the target file's generated section in place")
	experiments := flag.String("experiments", "EXPERIMENTS.md", "path to EXPERIMENTS.md for -appendix")
	readme := flag.String("readme", "README.md", "path to README.md for -repomap")
	topN := flag.Int("top", 3, "conflicting anchors per workload in the appendix")
	workers := flag.Int("workers", runtime.NumCPU(), "max concurrent simulation runs for -appendix")
	flag.Parse()
	harness.SetWorkers(*workers)

	if !*appendix && !*backends && !*repomap {
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "usage: staggerreport <metrics.json> | -appendix|-backends|-repomap [-check|-write]")
			os.Exit(2)
		}
		if err := renderMetrics(flag.Arg(0)); err != nil {
			fmt.Fprintln(os.Stderr, "staggerreport:", err)
			os.Exit(1)
		}
		return
	}

	failed := false
	if *appendix {
		body, err := generateAppendix(*topN)
		if err == nil {
			err = applySection(*experiments, "abort-appendix", body, *check, *write)
		}
		failed = reportOutcome("appendix", *experiments, err) || failed
	}
	if *backends {
		body, err := generateBackendArena()
		if err == nil {
			err = applySection(*experiments, "backend-arena", body, *check, *write)
		}
		failed = reportOutcome("backends", *experiments, err) || failed
	}
	if *repomap {
		body, err := generateRepoMap(".")
		if err == nil {
			err = applySection(*readme, "repo-map", body, *check, *write)
		}
		failed = reportOutcome("repo map", *readme, err) || failed
	}
	if failed {
		os.Exit(1)
	}
}

// renderMetrics reads a metrics JSON file and prints it as markdown.
func renderMetrics(path string) error {
	rep, err := readReport(path)
	if err != nil {
		return err
	}
	return obs.WriteMarkdown(os.Stdout, rep)
}

// reportOutcome prints one generator's result, returning true on failure.
func reportOutcome(what, path string, err error) bool {
	if err != nil {
		fmt.Fprintf(os.Stderr, "staggerreport: %s: %v\n", what, err)
		return true
	}
	fmt.Printf("%-9s %s OK\n", what, path)
	return false
}

// applySection routes a generated body to the requested action: verify
// (check), rewrite (write), or print to stdout (neither).
func applySection(path, name string, body []byte, check, write bool) error {
	switch {
	case check:
		current, err := extractSection(path, name)
		if err != nil {
			return err
		}
		if !bytes.Equal(current, body) {
			return fmt.Errorf("generated section %q in %s is out of date (run staggerreport -%s -write)",
				name, path, map[string]string{
					"abort-appendix": "appendix",
					"backend-arena":  "backends",
					"repo-map":       "repomap",
				}[name])
		}
		return nil
	case write:
		return replaceSection(path, name, body)
	default:
		_, err := os.Stdout.Write(body)
		return err
	}
}
