package main

import (
	"bytes"
	"fmt"
	"go/doc"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// generateRepoMap builds the README's repository-map table from package
// doc comments: every package under internal/ and cmd/ — nested
// packages included — gets one row whose purpose is the first sentence
// of its package comment. A package without a doc comment produces an
// error, so the table doubles as a "every package is documented" gate.
func generateRepoMap(root string) ([]byte, error) {
	var rows [][2]string
	for _, top := range []string{"internal", "cmd"} {
		var rels []string
		err := filepath.WalkDir(filepath.Join(root, top), func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			if d.Name() == "testdata" {
				return filepath.SkipDir
			}
			ents, err := os.ReadDir(path)
			if err != nil {
				return err
			}
			for _, e := range ents {
				if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
					rel, err := filepath.Rel(root, path)
					if err != nil {
						return err
					}
					rels = append(rels, filepath.ToSlash(rel))
					break
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		sort.Strings(rels)
		for _, rel := range rels {
			syn, err := packageSynopsis(filepath.Join(root, filepath.FromSlash(rel)))
			if err != nil {
				return nil, fmt.Errorf("%s: %w", rel, err)
			}
			rows = append(rows, [2]string{rel, syn})
		}
	}
	var b bytes.Buffer
	fmt.Fprintf(&b, "\n| Path | Purpose |\n|---|---|\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "| `%s` | %s |\n", r[0], r[1])
	}
	return b.Bytes(), nil
}

// packageSynopsis extracts the one-line purpose from a directory's
// package doc comment, stripping the conventional "Package x ..." /
// "Command x ..." prefix so it reads as a table cell. Long synopses are
// cut at their first colon: the clause before it is the purpose, the
// rest is detail that belongs in godoc, not a table.
func packageSynopsis(dir string) (string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments|parser.PackageClauseOnly)
	if err != nil {
		return "", err
	}
	base := filepath.Base(dir)
	for _, pkg := range pkgs {
		// Deterministic file order: map iteration would race the doc
		// comment's location when (incorrectly) several files carry one.
		files := make([]string, 0, len(pkg.Files))
		for name := range pkg.Files {
			files = append(files, name)
		}
		sort.Strings(files)
		for _, name := range files {
			f := pkg.Files[name]
			if f.Doc == nil {
				continue
			}
			syn := doc.Synopsis(f.Doc.Text())
			for _, prefix := range []string{"Package " + pkg.Name + " ", "Command " + base + " ", "Package " + base + " "} {
				if rest, ok := strings.CutPrefix(syn, prefix); ok {
					syn = rest
					break
				}
			}
			if head, _, cut := strings.Cut(syn, ":"); cut {
				syn = head
			}
			return strings.TrimSuffix(syn, "."), nil
		}
	}
	return "", fmt.Errorf("no package doc comment found")
}
