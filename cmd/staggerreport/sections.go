package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/obs"
)

// Generated documentation sections are delimited by HTML comment markers
// so markdown renderers hide them and hand-written prose around them is
// never touched. The body between markers is replaced wholesale.

func beginMarker(name string) []byte {
	return []byte(fmt.Sprintf("<!-- BEGIN GENERATED: %s (staggerreport; do not edit by hand) -->\n", name))
}

func endMarker(name string) []byte {
	return []byte(fmt.Sprintf("<!-- END GENERATED: %s -->\n", name))
}

// findSection locates the body between a section's markers, returning
// the byte ranges [bodyStart, bodyEnd) of the current body.
func findSection(content []byte, name string) (bodyStart, bodyEnd int, err error) {
	begin, end := beginMarker(name), endMarker(name)
	i := bytes.Index(content, begin)
	if i < 0 {
		return 0, 0, fmt.Errorf("marker %q not found", string(bytes.TrimSpace(begin)))
	}
	bodyStart = i + len(begin)
	j := bytes.Index(content[bodyStart:], end)
	if j < 0 {
		return 0, 0, fmt.Errorf("marker %q not found", string(bytes.TrimSpace(end)))
	}
	return bodyStart, bodyStart + j, nil
}

// extractSection returns the current generated body of a file's section.
func extractSection(path, name string) ([]byte, error) {
	content, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s, e, err := findSection(content, name)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return content[s:e], nil
}

// replaceSection rewrites the file with a new generated body.
func replaceSection(path, name string, body []byte) error {
	content, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	s, e, err := findSection(content, name)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	var out bytes.Buffer
	out.Write(content[:s])
	out.Write(body)
	out.Write(content[e:])
	return os.WriteFile(path, out.Bytes(), 0o644)
}

// readReport loads a metrics JSON file written by `staggersim -metrics`.
func readReport(path string) (*obs.Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep obs.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}
