package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSectionRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "doc.md")
	orig := "# Title\n\nprose before\n\n" +
		string(beginMarker("x")) + "old body\n" + string(endMarker("x")) +
		"\nprose after\n"
	if err := os.WriteFile(path, []byte(orig), 0o644); err != nil {
		t.Fatal(err)
	}

	got, err := extractSection(path, "x")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "old body\n" {
		t.Fatalf("extract = %q, want %q", got, "old body\n")
	}

	if err := replaceSection(path, "x", []byte("new body\nline 2\n")); err != nil {
		t.Fatal(err)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// The surrounding prose must survive a rewrite untouched.
	if !bytes.HasPrefix(after, []byte("# Title\n\nprose before\n")) ||
		!bytes.HasSuffix(after, []byte("\nprose after\n")) {
		t.Fatalf("prose around the section was disturbed:\n%s", after)
	}
	got, err = extractSection(path, "x")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "new body\nline 2\n" {
		t.Fatalf("after replace, extract = %q", got)
	}

	// Replacing twice with the same body is idempotent.
	if err := replaceSection(path, "x", []byte("new body\nline 2\n")); err != nil {
		t.Fatal(err)
	}
	again, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(after, again) {
		t.Fatal("replaceSection is not idempotent")
	}
}

func TestFindSectionMissingMarkers(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "doc.md")
	if err := os.WriteFile(path, []byte("no markers here\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := extractSection(path, "x"); err == nil {
		t.Fatal("expected an error for a file without markers")
	}
	// BEGIN without END is also an error, not a silent match to EOF.
	if err := os.WriteFile(path, append([]byte("a\n"), beginMarker("x")...), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := extractSection(path, "x"); err == nil {
		t.Fatal("expected an error for a BEGIN marker without END")
	}
}

func TestPackageSynopsis(t *testing.T) {
	dir := t.TempDir()
	src := `// Package widget frobs the grommets: with great speed.
package widget
`
	if err := os.WriteFile(filepath.Join(dir, "widget.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	// A doc-comment-free file added later must not shadow the real one.
	if err := os.WriteFile(filepath.Join(dir, "aux.go"), []byte("package widget\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	syn, err := packageSynopsis(dir)
	if err != nil {
		t.Fatal(err)
	}
	if syn != "frobs the grommets" {
		t.Fatalf("synopsis = %q, want %q", syn, "frobs the grommets")
	}

	undoc := t.TempDir()
	if err := os.WriteFile(filepath.Join(undoc, "a.go"), []byte("package nodoc\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := packageSynopsis(undoc); err == nil {
		t.Fatal("expected an error for an undocumented package")
	}
}

// TestRepoMapMatchesTree regenerates the repo map from the source tree
// and checks it against what README.md has committed — the same gate
// `make docs-verify` applies in CI, runnable as a plain test.
func TestRepoMapMatchesTree(t *testing.T) {
	root := "../.."
	body, err := generateRepoMap(root)
	if err != nil {
		t.Fatal(err)
	}
	committed, err := extractSection(filepath.Join(root, "README.md"), "repo-map")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, committed) {
		t.Fatalf("README repo-map is stale; run `go run ./cmd/staggerreport -repomap -write`\n--- generated ---\n%s\n--- committed ---\n%s",
			body, committed)
	}
	// Every package row must carry a real synopsis, not a placeholder.
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, "| `") && strings.Count(line, "|") == 3 {
			cells := strings.Split(line, "|")
			if strings.TrimSpace(cells[2]) == "" {
				t.Errorf("empty purpose cell in row %q", line)
			}
		}
	}
}
