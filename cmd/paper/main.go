// Command paper regenerates every table and figure of the paper's
// evaluation (Section 6) on the simulated machine.
//
// Usage:
//
//	paper                  # everything
//	paper -table 3         # one table (1, 2, 3, 4)
//	paper -figure 7        # one figure (7, 8)
//	paper -claims          # headline claim summary
//	paper -seed 7          # change the experiment seed
//	paper -workers 1       # strictly sequential runs (same output bytes)
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/harness"
)

func main() {
	table := flag.Int("table", 0, "regenerate one table (1-4)")
	figure := flag.Int("figure", 0, "regenerate one figure (7-8)")
	claims := flag.Bool("claims", false, "print headline claim summary")
	lazy := flag.Bool("lazy", false, "run the lazy-TM extension experiment")
	scaling := flag.String("scaling", "", "thread-scaling curve for one benchmark")
	csvDir := flag.String("csv", "", "write all experiments as CSV files into this directory")
	seed := flag.Int64("seed", 42, "experiment seed")
	workers := flag.Int("workers", runtime.NumCPU(),
		"max concurrent simulation runs (1 = sequential; output is identical either way)")
	flag.Parse()
	harness.SetWorkers(*workers)

	all := *table == 0 && *figure == 0 && !*claims && !*lazy && *scaling == "" && *csvDir == ""
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "paper:", err)
		os.Exit(1)
	}

	if all || *table == 1 {
		rows, err := harness.Table1(*seed)
		if err != nil {
			fail(err)
		}
		fmt.Println(harness.FormatTable1(rows))
	}
	if all || *table == 2 {
		fmt.Println(harness.Table2())
	}
	if all || *table == 3 {
		rows, err := harness.Table3(*seed)
		if err != nil {
			fail(err)
		}
		fmt.Println(harness.FormatTable3(rows))
	}
	if all || *table == 4 {
		rows, err := harness.Table4(*seed)
		if err != nil {
			fail(err)
		}
		fmt.Println(harness.FormatTable4(rows))
	}
	if all || *figure == 7 {
		rows, err := harness.Figure7(*seed)
		if err != nil {
			fail(err)
		}
		fmt.Println(harness.FormatFigure7(rows))
	}
	if all || *figure == 8 {
		rows, err := harness.Figure8(*seed)
		if err != nil {
			fail(err)
		}
		fmt.Println(harness.FormatFigure8(rows))
	}
	if all || *claims {
		cs, err := harness.Claims(*seed)
		if err != nil {
			fail(err)
		}
		fmt.Println(harness.FormatClaims(cs))
	}
	if *lazy {
		rows, err := harness.FigureLazy(*seed)
		if err != nil {
			fail(err)
		}
		fmt.Println(harness.FormatFigureLazy(rows))
	}
	if *scaling != "" {
		rows, err := harness.Scaling(*scaling, *seed)
		if err != nil {
			fail(err)
		}
		fmt.Println(harness.FormatScaling(*scaling, rows))
	}
	if *csvDir != "" {
		if err := harness.WriteCSV(*csvDir, *seed); err != nil {
			fail(err)
		}
		fmt.Printf("wrote experiment CSVs to %s\n", *csvDir)
	}
}
