package main

// The crash harness: these tests build the real staggerd binary, kill it
// for real (SIGKILL, or a failpoint-triggered os.Exit(137)), restart it
// over the same store directory, and assert the recovery contract end to
// end: every accepted job reaches a terminal state with byte-identical
// results, and damaged journal tails are quarantined, never trusted.
// Failpoint schedules are deterministic (counted hits), so every
// scenario is exactly reproducible.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var daemonBin string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "staggerd-crash-*")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	daemonBin = filepath.Join(dir, "staggerd")
	if out, err := exec.Command("go", "build", "-o", daemonBin, ".").CombinedOutput(); err != nil {
		fmt.Fprintf(os.Stderr, "building staggerd: %v\n%s", err, out)
		os.RemoveAll(dir)
		os.Exit(1)
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

// daemon is one running staggerd process under test.
type daemon struct {
	t       *testing.T
	cmd     *exec.Cmd
	addr    string
	logPath string
}

// startDaemon boots staggerd on a kernel-assigned port over store and
// waits for it to publish its address.
func startDaemon(t *testing.T, store string, extra ...string) *daemon {
	t.Helper()
	scratch := t.TempDir()
	addrFile := filepath.Join(scratch, "addr")
	logPath := filepath.Join(scratch, "daemon.log")
	logf, err := os.Create(logPath)
	if err != nil {
		t.Fatal(err)
	}
	args := append([]string{
		"-addr", "127.0.0.1:0", "-addr-file", addrFile,
		"-store", store, "-grace", "5s",
	}, extra...)
	cmd := exec.Command(daemonBin, args...)
	cmd.Stdout, cmd.Stderr = logf, logf
	if err := cmd.Start(); err != nil {
		logf.Close()
		t.Fatal(err)
	}
	logf.Close() // the child holds its own descriptor
	d := &daemon{t: t, cmd: cmd, logPath: logPath}
	t.Cleanup(func() {
		if d.cmd.ProcessState == nil {
			d.cmd.Process.Kill()
			d.cmd.Wait()
		}
	})
	deadline := time.Now().Add(10 * time.Second)
	for {
		if b, err := os.ReadFile(addrFile); err == nil && len(b) > 0 {
			d.addr = strings.TrimSpace(string(b))
			return d
		}
		if d.cmd.ProcessState != nil || time.Now().After(deadline) {
			log, _ := os.ReadFile(logPath)
			t.Fatalf("daemon never published its address:\n%s", log)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// kill SIGKILLs the daemon and reaps it — the crash, not a drain.
func (d *daemon) kill() {
	d.t.Helper()
	if err := d.cmd.Process.Kill(); err != nil {
		d.t.Fatal(err)
	}
	d.cmd.Wait()
}

// waitExit reaps the process and returns its exit code.
func (d *daemon) waitExit() int {
	d.cmd.Wait()
	return d.cmd.ProcessState.ExitCode()
}

func (d *daemon) get(path string) (int, []byte) {
	d.t.Helper()
	resp, err := http.Get("http://" + d.addr + path)
	if err != nil {
		d.t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, b
}

// submit posts spec and returns (httpStatus, jobID).
func (d *daemon) submit(spec string) (int, string) {
	d.t.Helper()
	resp, err := http.Post("http://"+d.addr+"/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		d.t.Fatalf("POST /jobs: %v", err)
	}
	defer resp.Body.Close()
	var st struct {
		ID string `json:"id"`
	}
	json.NewDecoder(resp.Body).Decode(&st)
	return resp.StatusCode, st.ID
}

// jobState polls one job's state ("" if the job is unknown).
func (d *daemon) jobState(id string) string {
	d.t.Helper()
	code, b := d.get("/jobs/" + id)
	if code != 200 {
		return ""
	}
	var st struct {
		State string `json:"state"`
	}
	json.Unmarshal(b, &st)
	return st.State
}

// waitDone polls until the job is done (fatal on failed/canceled).
func (d *daemon) waitDone(id string) {
	d.t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for {
		switch st := d.jobState(id); st {
		case "done":
			return
		case "failed", "canceled":
			_, b := d.get("/jobs/" + id)
			log, _ := os.ReadFile(d.logPath)
			d.t.Fatalf("job %s ended %s: %s\n%s", id, st, b, log)
		}
		if time.Now().After(deadline) {
			log, _ := os.ReadFile(d.logPath)
			d.t.Fatalf("job %s never finished\n%s", id, log)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

func (d *daemon) result(id string) []byte {
	d.t.Helper()
	code, b := d.get("/jobs/" + id + "/result")
	if code != 200 {
		d.t.Fatalf("result %s: HTTP %d: %s", id, code, b)
	}
	return b
}

func (d *daemon) recoveryMetrics() map[string]float64 {
	d.t.Helper()
	_, b := d.get("/metrics")
	var m struct {
		Recovery map[string]float64 `json:"recovery"`
	}
	if err := json.Unmarshal(b, &m); err != nil {
		d.t.Fatalf("metrics: %v: %s", err, b)
	}
	return m.Recovery
}

// The sweep used across crash scenarios: big enough to be mid-flight
// when the SIGKILL lands, and identical everywhere so results can be
// compared byte-for-byte against an uninterrupted reference run.
const crashSweep = `{"cells":[
  {"bench":"list-hi","threads":2,"seed":1,"ops":25000},
  {"bench":"list-hi","threads":2,"seed":2,"ops":25000},
  {"bench":"list-hi","threads":2,"seed":3,"ops":25000}]}`

const tinyJob = `{"cells":[{"bench":"list-hi","threads":2,"seed":9,"ops":300}]}`

// TestKillMidSweepRecoversByteIdentical is the harness's headline
// invariant: SIGKILL the daemon while a sweep is executing, restart it
// over the same store, and the job completes under its original ID with
// results byte-identical to an uninterrupted run.
func TestKillMidSweepRecoversByteIdentical(t *testing.T) {
	// Reference: the same sweep, never interrupted, in a separate store.
	ref := startDaemon(t, t.TempDir())
	code, refID := ref.submit(crashSweep)
	if code != 202 {
		t.Fatalf("reference submit: HTTP %d", code)
	}
	ref.waitDone(refID)
	want := ref.result(refID)
	ref.kill()

	store := t.TempDir()
	d1 := startDaemon(t, store)
	code, id := d1.submit(crashSweep)
	if code != 202 {
		t.Fatalf("submit: HTTP %d", code)
	}
	// The crash lands while the sweep is running (any instant works —
	// the store resumes whatever subset had been persisted).
	deadline := time.Now().Add(30 * time.Second)
	for d1.jobState(id) != "running" {
		if time.Now().After(deadline) {
			t.Fatalf("job %s never started", id)
		}
		time.Sleep(5 * time.Millisecond)
	}
	d1.kill()

	d2 := startDaemon(t, store)
	rec := d2.recoveryMetrics()
	if rec["requeued_jobs"] != 1 {
		t.Fatalf("recovery metrics after crash: %v, want requeued_jobs=1", rec)
	}
	if st := d2.jobState(id); st == "" {
		t.Fatalf("job %s lost across the crash", id)
	}
	d2.waitDone(id)
	if got := d2.result(id); !bytes.Equal(got, want) {
		t.Errorf("recovered result differs from the uninterrupted reference run (%d vs %d bytes)",
			len(got), len(want))
	}
	// Resubmitting the identical sweep is served wholly from the store.
	code, id2 := d2.submit(crashSweep)
	if code != 202 {
		t.Fatalf("resubmit: HTTP %d", code)
	}
	d2.waitDone(id2)
	_, b := d2.get("/jobs/" + id2)
	var st struct {
		FromStore int `json:"from_store"`
	}
	json.Unmarshal(b, &st)
	if st.FromStore != 3 {
		t.Errorf("resubmission from_store = %d, want 3", st.FromStore)
	}
}

// TestFailpointCrashAfterAcceptRecovers pins the submit-path guarantee:
// the daemon dies by deterministic failpoint the instant the accepted
// record's fsync completes — before the client hears anything — and the
// restarted daemon still runs the job to done. Accepted means durable.
func TestFailpointCrashAfterAcceptRecovers(t *testing.T) {
	store := t.TempDir()
	// Journal sync hit 1 is the boot magic; hit 2 is the first submit's
	// accepted record. The crash completes the fsync, then exits 137.
	d1 := startDaemon(t, store, "-failpoints", "sync:jobs.wal=crash@2")
	resp, err := http.Post("http://"+d1.addr+"/jobs", "application/json", strings.NewReader(tinyJob))
	if err == nil {
		resp.Body.Close()
	}
	if code := d1.waitExit(); code != 137 {
		log, _ := os.ReadFile(d1.logPath)
		t.Fatalf("failpoint crash exited %d, want 137\n%s", code, log)
	}

	d2 := startDaemon(t, store)
	rec := d2.recoveryMetrics()
	if rec["requeued_jobs"] != 1 {
		t.Fatalf("recovery metrics = %v, want requeued_jobs=1", rec)
	}
	// The job the client never heard about completes under its own ID.
	d2.waitDone("job-000001")
	if b := d2.result("job-000001"); !bytes.Contains(b, []byte("list-hi")) {
		t.Fatalf("recovered result looks wrong: %.200s", b)
	}
}

// TestTornJournalTailQuarantinedOnBoot injects a short write into the
// journal append (half the accepted frame lands), kills the daemon, and
// asserts the restart quarantines the torn tail into a sidecar file,
// counts it in /metrics, and keeps accepting work.
func TestTornJournalTailQuarantinedOnBoot(t *testing.T) {
	store := t.TempDir()
	// Journal write hit 1 is the boot magic; hit 2 is the first submit's
	// frame, torn in half. The submit must be refused — its record is
	// not durable — and the journal wedges until restart.
	d1 := startDaemon(t, store, "-failpoints", "write:jobs.wal=short@2")
	code, _ := d1.submit(tinyJob)
	if code != 503 {
		t.Fatalf("submit onto failing journal: HTTP %d, want 503", code)
	}
	code, _ = d1.submit(tinyJob)
	if code != 503 {
		t.Fatalf("submit onto wedged journal: HTTP %d, want 503", code)
	}
	d1.kill()

	d2 := startDaemon(t, store)
	rec := d2.recoveryMetrics()
	if rec["quarantined_tail_bytes"] == 0 || rec["requeued_jobs"] != 0 {
		t.Fatalf("recovery metrics = %v, want quarantined tail bytes and no requeues", rec)
	}
	ents, err := os.ReadDir(filepath.Join(store, "journal"))
	if err != nil {
		t.Fatal(err)
	}
	var sidecar bool
	for _, e := range ents {
		if strings.Contains(e.Name(), ".quarantine.") {
			sidecar = true
		}
	}
	if !sidecar {
		t.Fatalf("no quarantine sidecar in %s/journal: %v", store, ents)
	}
	// The repaired journal accepts and completes work.
	code, id := d2.submit(tinyJob)
	if code != 202 {
		t.Fatalf("submit after repair: HTTP %d", code)
	}
	d2.waitDone(id)
}

// TestStoreENOSPCDegradesNotCorrupts floods every store write with
// ENOSPC: jobs still complete (served from memory), nothing corrupt
// lands on disk, and a healthy restart recomputes the same bytes from
// scratch. The terminal job itself is not resurrected — its done record
// was journaled, so boot replay rightly drops it — which is exactly the
// degradation contract: lost durability costs recompute, never bytes.
func TestStoreENOSPCDegradesNotCorrupts(t *testing.T) {
	store := t.TempDir()
	d1 := startDaemon(t, store, "-failpoints", "write:objects=enospc%1")
	code, id := d1.submit(tinyJob)
	if code != 202 {
		t.Fatalf("submit: HTTP %d", code)
	}
	d1.waitDone(id)
	first := d1.result(id)
	d1.kill() // die without drain: the store holds nothing for this job

	d2 := startDaemon(t, store)
	rec := d2.recoveryMetrics()
	if rec["requeued_jobs"] != 0 {
		t.Fatalf("recovery metrics = %v, want no requeues (job was terminal)", rec)
	}
	// An identical resubmission finds an empty store and recomputes every
	// cell to the same bytes the memory-served first life produced.
	code, id2 := d2.submit(tinyJob)
	if code != 202 {
		t.Fatalf("resubmit: HTTP %d", code)
	}
	d2.waitDone(id2)
	if got := d2.result(id2); !bytes.Equal(got, first) {
		t.Errorf("recomputed result differs from the memory-served one")
	}
	_, b := d2.get("/jobs/" + id2)
	var st struct {
		FromStore int `json:"from_store"`
	}
	json.Unmarshal(b, &st)
	if st.FromStore != 0 {
		t.Errorf("from_store = %d after a full-disk first life, want 0", st.FromStore)
	}
}
