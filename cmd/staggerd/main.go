// Command staggerd is the simulation daemon: the HTTP+JSON service of
// internal/service behind a listener, signals, and flags. It accepts
// run/sweep/chaos/explore jobs, executes them on a bounded worker pool,
// persists every cell result in a crash-safe store, and drains
// gracefully on SIGTERM/SIGINT: readiness flips immediately, in-flight
// jobs get -grace to finish, then they are cancelled and the process
// exits cleanly.
//
// Typical use:
//
//	staggerd -addr 127.0.0.1:8423 -store /var/lib/staggerd &
//	staggerctl -addr 127.0.0.1:8423 submit '{"cells":[{"bench":"list-hi"}]}'
//
// With -addr ending in :0 the kernel picks a free port; -addr-file
// publishes the bound address for scripts (the daemon-smoke target uses
// this to avoid port races).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/chaos"
	"repro/internal/harness"
	"repro/internal/service"
	"repro/internal/vfs"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:8423", "listen address (port 0 = kernel-assigned)")
		addrFile   = flag.String("addr-file", "", "write the bound address to this file once listening")
		storeDir   = flag.String("store", "", "durable result store directory (empty = memory-only)")
		queueDepth = flag.Int("queue", 8, "admission queue depth (full queue sheds with 429)")
		jobWorkers = flag.Int("jobs", 2, "concurrently executing jobs")
		runWorkers = flag.Int("run-workers", 0, "per-job sweep parallelism (0 = all cores)")
		jobTimeout = flag.Duration("job-timeout", 5*time.Minute, "per-job wall-clock deadline")
		grace      = flag.Duration("grace", 10*time.Second, "drain grace before in-flight jobs are cancelled")
		retries    = flag.Int("retries", 2, "max retries of transiently failing jobs")
		maxCells   = flag.Int("max-cells", 512, "largest allowed job expansion")
		journalAt  = flag.String("journal", "", "write-ahead job journal path (empty = <store>/journal/jobs.wal when -store is set)")
		storeGC    = flag.Bool("store-gc", true, "evict old-schema store entries at boot")
		failpoints = flag.String("failpoints", "", "disk failpoint spec, e.g. 'sync:jobs.wal=crash@2' (crash-harness use only)")
		fpSeed     = flag.Int64("failpoint-seed", 1, "seed for probabilistic failpoints")
	)
	flag.Parse()
	log.SetFlags(log.LstdFlags | log.Lmsgprefix)
	log.SetPrefix("staggerd: ")

	if *runWorkers > 0 {
		harness.SetWorkers(*runWorkers)
	}
	// The disk-fault harness: failpoints wrap the store and journal
	// filesystem, and a crash failpoint kills the process for real —
	// exit 137, the same as SIGKILL — so recovery is exercised against a
	// genuinely dead daemon, not a simulated one.
	var fsys vfs.FS
	if *failpoints != "" {
		fp, err := chaos.ParseFailpoints(*failpoints, *fpSeed)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("failpoints armed: %s (seed %d)", *failpoints, *fpSeed)
		fsys = &vfs.FaultFS{Base: vfs.OS, FP: fp, OnCrash: func() {
			log.Printf("failpoint crash: dying now")
			os.Exit(137)
		}}
	}
	srv, err := service.New(service.Config{
		JobWorkers:     *jobWorkers,
		QueueDepth:     *queueDepth,
		RunWorkers:     *runWorkers,
		JobTimeout:     *jobTimeout,
		Grace:          *grace,
		MaxRetries:     *retries,
		MaxCells:       *maxCells,
		StoreDir:       *storeDir,
		JournalPath:    *journalAt,
		DisableStoreGC: !*storeGC,
		FS:             fsys,
		Logf:           log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	if *storeDir == "" {
		log.Printf("no -store: results are memory-only and die with the process")
	}
	log.Printf("listening on %s", bound)

	httpSrv := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case s := <-sig:
		log.Printf("%v: draining", s)
	case err := <-serveErr:
		log.Fatalf("serve: %v", err)
	}

	// Drain order matters: flip readiness and stop admission first, keep
	// serving HTTP so clients can poll their jobs to completion, then
	// close the listener once the pool has stopped.
	srv.BeginDrain()
	<-srv.Drained()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	m := srv.Metrics()
	fmt.Printf("staggerd: drained clean: %d done, %d failed, %d canceled, %d shed\n",
		m.Done, m.Failed, m.Canceled, m.ShedFull+m.ShedDraining)
}
