// Command anchordump runs the staggered-transactions compiler pass over a
// benchmark's static program and prints, for each atomic block, the
// unified anchor table in the style of the paper's Figure 3: every
// load/store site with its DSNode, anchor/non-anchor classification,
// parent and pioneer links, and whether an ALPoint was inserted.
//
// Usage:
//
//	anchordump -bench genome
//	anchordump -bench list-hi -naive
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/anchor"
	"repro/internal/workloads"
)

func main() {
	bench := flag.String("bench", "", "benchmark name (empty: list them)")
	naive := flag.Bool("naive", false, "instrument every load/store")
	pcbits := flag.Int("pcbits", 12, "conflicting-PC tag width")
	flag.Parse()

	if *bench == "" {
		fmt.Println("available benchmarks:")
		for _, n := range workloads.Names() {
			fmt.Printf("  %s\n", n)
		}
		return
	}
	w, err := workloads.Get(*bench)
	if err != nil {
		fmt.Fprintln(os.Stderr, "anchordump:", err)
		os.Exit(1)
	}
	opts := anchor.Options{PCBits: *pcbits, Naive: *naive}
	c := anchor.Compile(w.Mod, opts)
	fmt.Printf("module %q: %d load/store sites analyzed, %d anchors (%.0f%% instrumented)\n\n",
		w.Mod.Name, c.StaticAccesses, c.StaticAnchors, 100*c.InstrumentedFraction())
	for _, ab := range w.Mod.Atomics {
		fmt.Print(c.Dump(ab))
		fmt.Println()
	}
}
