package main

import (
	"go/ast"
	"go/token"
	"go/types"
)

// errshadow flags an error value that is assigned again before anything
// reads it: the first error is silently dropped. The journal once
// swallowed fsync failures through exactly this shape —
//
//	_, err = f.Write(frame)
//	err = f.Sync()          // Write's error is gone
//	if err != nil { ... }
//
// — which turns a torn write into a clean return. The analyzer tracks
// straight-line code only: an assignment reached through a branch, loop
// back-edge, or closure may be checked on another path, so anything a
// nested statement touches is conservatively treated as read. That keeps
// the check free of false positives at the cost of missing interleaved
// shapes; the linear overwrite is the one that ships real bugs.
var errshadowAnalyzer = &Analyzer{
	Name: "errshadow",
	Doc:  "flags error values overwritten before they are checked",
	Run:  runErrShadow,
}

var errorType = types.Universe.Lookup("error").Type()

func isErrorVar(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	return ok && types.Identical(v.Type(), errorType)
}

func runErrShadow(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			// Each function body starts its own linear scan; nested
			// function literals are opaque to the enclosing scan (their
			// reads still count as checks) and get their own visit here.
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					scanErrList(pass, n.Body.List, make(map[types.Object]token.Pos))
				}
			case *ast.FuncLit:
				scanErrList(pass, n.Body.List, make(map[types.Object]token.Pos))
			}
			return true
		})
	}
}

// scanErrList walks one straight-line statement list. pending maps each
// error variable to its last unchecked assignment.
func scanErrList(pass *Pass, list []ast.Stmt, pending map[types.Object]token.Pos) {
	for _, st := range list {
		scanErrStmt(pass, st, pending)
	}
}

func scanErrStmt(pass *Pass, st ast.Stmt, pending map[types.Object]token.Pos) {
	switch s := st.(type) {
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			clearErrReads(pass, r, pending)
		}
		for _, l := range s.Lhs {
			id, ok := l.(*ast.Ident)
			if !ok {
				clearErrReads(pass, l, pending) // a[i] = ..., p.f = ...: index/base reads
				continue
			}
			obj := pass.Info.Defs[id]
			if obj == nil {
				obj = pass.Info.Uses[id]
			}
			if obj == nil || !isErrorVar(obj) {
				continue
			}
			if prev, ok := pending[obj]; ok {
				pass.Reportf(id.Pos(), "error in %q is overwritten before it is checked (previous assignment at line %d)",
					id.Name, pass.Fset.Position(prev).Line)
			}
			if len(s.Rhs) == 1 && isNilExpr(pass, s.Rhs[0]) {
				delete(pending, obj) // err = nil is an explicit discard
			} else {
				pending[obj] = id.Pos()
			}
		}
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, v := range vs.Values {
				clearErrReads(pass, v, pending)
			}
			if len(vs.Values) == 0 {
				continue // var err error: a zero value carries nothing to lose
			}
			for _, id := range vs.Names {
				if obj := pass.Info.Defs[id]; obj != nil && isErrorVar(obj) {
					pending[obj] = id.Pos()
				}
			}
		}
	case *ast.BlockStmt:
		scanErrList(pass, s.List, pending) // bare block: still straight-line
	default:
		// Branching statements: each nested list is its own linear
		// segment (fresh tracking catches overwrites wholly inside it);
		// for the enclosing segment, anything the statement reads OR
		// assigns on some path counts as settled.
		scanErrNested(pass, st)
		clearErrTouched(pass, st, pending)
	}
}

// scanErrNested scans the statement lists nested inside a branching
// statement, each as an independent segment.
func scanErrNested(pass *Pass, st ast.Stmt) {
	fresh := func(list []ast.Stmt) {
		scanErrList(pass, list, make(map[types.Object]token.Pos))
	}
	switch s := st.(type) {
	case *ast.IfStmt:
		fresh(s.Body.List)
		if s.Else != nil {
			scanErrNested(pass, s.Else)
			if eb, ok := s.Else.(*ast.BlockStmt); ok {
				fresh(eb.List)
			}
		}
	case *ast.ForStmt:
		fresh(s.Body.List)
	case *ast.RangeStmt:
		fresh(s.Body.List)
	case *ast.SwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				fresh(cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				fresh(cc.Body)
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				fresh(cc.Body)
			}
		}
	case *ast.LabeledStmt:
		scanErrNested(pass, s.Stmt)
	}
}

// clearErrReads removes from pending every error variable the expression
// reads.
func clearErrReads(pass *Pass, e ast.Expr, pending map[types.Object]token.Pos) {
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.Info.Uses[id]; obj != nil {
				delete(pending, obj)
			}
		}
		return true
	})
}

// clearErrTouched removes every variable the statement mentions at all —
// read or assigned — on any nested path.
func clearErrTouched(pass *Pass, st ast.Stmt, pending map[types.Object]token.Pos) {
	ast.Inspect(st, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.Info.Uses[id]; obj != nil {
				delete(pending, obj)
			}
			if obj := pass.Info.Defs[id]; obj != nil {
				delete(pending, obj)
			}
		}
		return true
	})
}

func isNilExpr(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	return ok && tv.IsNil()
}
