package main

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// determinism flags constructs that make a simulation run depend on
// anything but its configuration and seed:
//
//   - wall-clock reads (time.Now / time.Since / time.Until) anywhere in
//     the scanned tree except the service layer (wallClockExempt) — the
//     simulator has its own virtual clock;
//   - the global math/rand source (rand.Intn, rand.Seed, ...) anywhere —
//     all randomness must flow from an engine-seeded *rand.Rand;
//   - ranging over a map inside the deterministic core (internal/htm,
//     internal/sched, internal/oracle, internal/dsa), where iteration
//     order leaks into victim selection, node numbering, or report
//     emission. Order-insensitive loops carry a //staggervet:allow
//     determinism comment stating why.
var determinismAnalyzer = &Analyzer{
	Name: "determinism",
	Doc:  "flags wall-clock reads, the global math/rand source, and map iteration in the deterministic core",
	Run:  runDeterminism,
}

// mapRangeScope is the deterministic core: packages where map iteration
// order can change simulation results or emitted reports.
var mapRangeScope = map[string]bool{
	"internal/htm":    true,
	"internal/sched":  true,
	"internal/oracle": true,
	"internal/dsa":    true,
}

// wallClockExempt is the service layer: the only packages permitted to
// read the wall clock. Deadlines, retry backoff, drain grace, and client
// polling are operational concerns of the daemon and its tools, and they
// time the host, not the simulation. Everything below this boundary —
// including the harness the daemon calls into — measures time only on
// the simulator's virtual clock, so the waiver is deliberately a scoped
// allow-list, not a per-call escape hatch.
var wallClockExempt = map[string]bool{
	"internal/service": true,
	"cmd/staggerd":     true,
	"cmd/staggerctl":   true,
}

// seededRandFuncs are the math/rand package-level functions that build
// explicitly seeded generators rather than using the global source.
var seededRandFuncs = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

func runDeterminism(pass *Pass) {
	rel := pkgRel(pass.PkgPath)
	inScope := mapRangeScope[rel]
	wallOK := wallClockExempt[rel]
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Ident:
				// Every qualified use (rand.Intn, time.Now) resolves
				// through its selector identifier, so inspecting idents
				// covers aliased and dot-imported uses alike.
				if obj := pass.Info.Uses[n]; obj != nil {
					checkDetObject(pass, n.Pos(), obj, wallOK)
				}
			case *ast.RangeStmt:
				if !inScope {
					return true
				}
				if tv, ok := pass.Info.Types[n.X]; ok {
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
						pass.Reportf(n.Pos(),
							"map iteration order is nondeterministic; sort the keys or annotate why order cannot matter")
					}
				}
			}
			return true
		})
	}
}

func checkDetObject(pass *Pass, pos token.Pos, obj types.Object, wallOK bool) {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return // methods (e.g. (*rand.Rand).Intn) are fine
	}
	switch fn.Pkg().Path() {
	case "time":
		if wallOK {
			return // service layer: wall-clock deadlines are its job
		}
		switch fn.Name() {
		case "Now", "Since", "Until":
			pass.Reportf(pos,
				"wall-clock read time.%s in the simulator; use the engine's virtual clock", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		if !seededRandFuncs[fn.Name()] {
			pass.Reportf(pos,
				"global math/rand source (rand.%s) is not replay-safe; draw from an engine-seeded *rand.Rand", fn.Name())
		}
	}
}

// pkgRel strips the module prefix from an import path so scope tables
// can name packages module-independently ("internal/htm").
func pkgRel(path string) string {
	for _, marker := range []string{"internal/", "cmd/"} {
		if strings.HasPrefix(path, marker) {
			return path
		}
		if i := strings.Index(path, "/"+marker); i >= 0 {
			return path[i+1:]
		}
	}
	return path
}
