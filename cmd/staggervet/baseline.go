package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// The baseline pins intentionally accepted findings. Self-hosting the
// analyzers over their own driver and the service layer surfaces
// findings that are judged and kept rather than fixed; listing them in a
// committed file makes that judgment reviewable, keeps `make vet` green,
// and still fails the build in both directions — a NEW finding is not in
// the baseline, and a FIXED finding leaves a stale entry behind. Entries
// deliberately omit line numbers so unrelated edits do not churn them:
//
//	relative/path.go [analyzer] message text
//
// Lines starting with # and blank lines are ignored.

// baselineKey renders one diagnostic in baseline form.
func baselineKey(root string, d Diagnostic) string {
	file := d.Pos.Filename
	if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
		file = filepath.ToSlash(rel)
	}
	return fmt.Sprintf("%s [%s] %s", file, d.Analyzer, d.Msg)
}

// readBaseline loads the baseline as a multiset of keys.
func readBaseline(path string) (map[string]int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	set := make(map[string]int)
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		set[line]++
	}
	return set, nil
}

// applyBaseline filters diags through the baseline: matched findings are
// suppressed, unmatched findings stay, and baseline entries matching no
// finding come back as stale-entry diagnostics so the file cannot rot.
func applyBaseline(path, root string, diags []Diagnostic) ([]Diagnostic, error) {
	set, err := readBaseline(path)
	if err != nil {
		return nil, err
	}
	var kept []Diagnostic
	for _, d := range diags {
		key := baselineKey(root, d)
		if set[key] > 0 {
			set[key]--
			continue
		}
		kept = append(kept, d)
	}
	var stale []string
	for key, n := range set {
		for ; n > 0; n-- {
			stale = append(stale, key)
		}
	}
	sort.Strings(stale)
	for _, key := range stale {
		kept = append(kept, Diagnostic{Analyzer: "baseline",
			Msg: fmt.Sprintf("stale baseline entry (%s): the finding no longer exists — remove it from %s", key, filepath.Base(path))})
	}
	return kept, nil
}

// writeBaseline rewrites the baseline file to the current findings.
func writeBaseline(path, root string, diags []Diagnostic) error {
	keys := make([]string, 0, len(diags))
	for _, d := range diags {
		keys = append(keys, baselineKey(root, d))
	}
	sort.Strings(keys)
	var sb strings.Builder
	sb.WriteString("# staggervet findings baseline: accepted findings, one per line as\n")
	sb.WriteString("#   relative/path.go [analyzer] message\n")
	sb.WriteString("# Regenerate with: go run ./cmd/staggervet -baseline <this file> -update-baseline\n")
	for _, k := range keys {
		sb.WriteString(k)
		sb.WriteByte('\n')
	}
	return os.WriteFile(path, []byte(sb.String()), 0o644)
}

// jsonFinding is one diagnostic in the -json report.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line,omitempty"`
	Col      int    `json:"col,omitempty"`
	Analyzer string `json:"analyzer"`
	Msg      string `json:"msg"`
}

// emitDiagsJSON prints the machine-readable report, stable-sorted by
// (file, line, analyzer, msg) so identical inputs produce identical
// bytes — the same contract as staggersim's verify reports.
func emitDiagsJSON(out io.Writer, root string, diags []Diagnostic) error {
	fs := make([]jsonFinding, 0, len(diags))
	for _, d := range diags {
		file := d.Pos.Filename
		if file != "" {
			if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
				file = filepath.ToSlash(rel)
			}
		}
		fs = append(fs, jsonFinding{File: file, Line: d.Pos.Line, Col: d.Pos.Column, Analyzer: d.Analyzer, Msg: d.Msg})
	}
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Msg < b.Msg
	})
	rep := struct {
		Tool     string        `json:"tool"`
		Mode     string        `json:"mode"`
		OK       bool          `json:"ok"`
		Findings []jsonFinding `json:"findings"`
	}{Tool: "staggervet", Mode: "vet", OK: len(fs) == 0, Findings: fs}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
