package main

import (
	"go/ast"
	"go/constant"
)

// siteattr enforces site attribution on simulated memory accesses: every
// transactional load and store must name the static site it implements,
// or the anchor tables, the conflicting-PC mechanism, and the
// static/dynamic conformance checker all go blind.
//
//   - (*stagger.TxCtx).Load/Store with a nil site panics at runtime in
//     the best case and silently skips ALPoints in the worst; it is
//     flagged everywhere.
//   - (*htm.Core).Load/Store with the literal site ID 0 is an
//     unattributed access; outside internal/htm (whose global-lock
//     fallback legitimately reads runtime-owned words) every caller
//     must pass a real site, normally by going through TxCtx.
var siteattrAnalyzer = &Analyzer{
	Name: "siteattr",
	Doc:  "requires simulated transactional accesses to carry a static site attribution",
	Run:  runSiteAttr,
}

func runSiteAttr(pass *Pass) {
	inHTM := pkgRel(pass.PkgPath) == "internal/htm"
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			name := sel.Sel.Name
			if name != "Load" && name != "Store" {
				return true
			}
			switch {
			case methodOn(pass, sel, "internal/stagger", "TxCtx") != nil:
				if len(call.Args) >= 1 && isNil(pass, call.Args[0]) {
					pass.Reportf(call.Pos(),
						"TxCtx.%s with a nil site: the access cannot be attributed to the anchor tables", name)
				}
			case !inHTM && methodOn(pass, sel, "internal/htm", "Core") != nil:
				if len(call.Args) >= 2 && isZero(pass, call.Args[1]) {
					pass.Reportf(call.Pos(),
						"Core.%s with site 0 bypasses site attribution; go through TxCtx or pass the real site ID", name)
				}
			}
			return true
		})
	}
}

func isNil(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	return ok && tv.IsNil()
}

func isZero(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	v, exact := constant.Uint64Val(tv.Value)
	return exact && v == 0
}
