package main

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ctxdone requires looping goroutines in the service and harness layers
// to observe cancellation. A `go` statement whose body spins in an
// unconditional `for { ... }` with no select, no channel receive, and no
// ctx.Done()/ctx.Err() consultation can never be stopped: drain hangs on
// workers.Wait, tests leak the goroutine, and SIGTERM turns into SIGKILL
// at the supervisor's patience. One-shot goroutines (no unconditional
// loop) are exempt — they end on their own — as are loops whose exit is
// a data-driven condition (`for !done.Load()`, `for i < n`) or a range
// (a ranged channel ends when its sender closes it; a ranged slice is
// finite).
var ctxdoneAnalyzer = &Analyzer{
	Name: "ctxdone",
	Doc:  "requires looping goroutines in service and harness code to observe cancellation",
	Run:  runCtxDone,
}

// ctxdonePkgs spawn goroutines that must outlive a request but not the
// process: the drain and shutdown paths have to be able to stop them.
var ctxdonePkgs = map[string]bool{
	"internal/service": true,
	"internal/harness": true,
	"cmd/staggerd":     true,
}

func runCtxDone(pass *Pass) {
	if !ctxdonePkgs[pkgRel(pass.PkgPath)] {
		return
	}
	// Bodies of same-package functions, so `go s.worker()` is checked
	// through the declaration it invokes, not just literal closures.
	bodies := make(map[types.Object]*ast.BlockStmt)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj := pass.Info.Defs[fd.Name]; obj != nil {
					bodies[obj] = fd.Body
				}
			}
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			var body *ast.BlockStmt
			switch fun := g.Call.Fun.(type) {
			case *ast.FuncLit:
				body = fun.Body
			case *ast.Ident:
				if obj := pass.Info.Uses[fun]; obj != nil {
					body = bodies[obj]
				}
			case *ast.SelectorExpr:
				if s, ok := pass.Info.Selections[fun]; ok {
					body = bodies[s.Obj()]
				}
			}
			if body == nil {
				return true // callee outside the package: out of scope
			}
			for _, loop := range unconditionalLoops(body) {
				if !observesCancellation(pass, loop) {
					pass.Reportf(loop.Pos(),
						"goroutine loops forever without observing cancellation; select on ctx.Done() or receive from a close-signalled channel so drain can stop it")
				}
			}
			return true
		})
	}
}

// unconditionalLoops returns every `for { ... }` (no condition) in the
// body, excluding ones nested in further function literals (those are
// checked at their own go statement, if any).
func unconditionalLoops(body *ast.BlockStmt) []*ast.ForStmt {
	var out []*ast.ForStmt
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt:
			if n.Cond == nil {
				out = append(out, n)
			}
		}
		return true
	})
	return out
}

// observesCancellation reports whether the loop consults a cancellation
// signal: a select statement, a channel receive, or a Done/Err call on a
// context.Context.
func observesCancellation(pass *Pass, loop *ast.ForStmt) bool {
	found := false
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && isContextSignal(pass, sel) {
				found = true
			}
		}
		return !found
	})
	return found
}

// isContextSignal matches Done() and Err() on a context.Context value.
func isContextSignal(pass *Pass, sel *ast.SelectorExpr) bool {
	if sel.Sel.Name != "Done" && sel.Sel.Name != "Err" {
		return false
	}
	tv, ok := pass.Info.Types[sel.X]
	if !ok {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}
