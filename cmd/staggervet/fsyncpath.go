package main

import (
	"go/ast"
	"go/types"
)

// fsyncpath guards the durability contract of the durable layers
// (internal/store, internal/journal) with two rules:
//
//   - no direct os file calls: every filesystem operation must go
//     through the internal/vfs seam, or the disk-fault harness
//     (vfs.FaultFS + chaos failpoints) cannot reach it and the crash
//     tests silently stop covering the path;
//   - temp → fsync → rename: a function that creates a file through the
//     seam and renames one into place must Sync between the two, or a
//     crash after the rename can surface a live name holding torn bytes
//     — rename is atomic about names, never about content.
//
// A rename alone is not a publish: moving an existing file (the store's
// quarantine path) re-homes bytes that were already durable, so only
// functions that also create a file are held to the fsync rule.
var fsyncpathAnalyzer = &Analyzer{
	Name: "fsyncpath",
	Doc:  "enforces the vfs seam and the temp→fsync→rename discipline in the durable layers",
	Run:  runFsyncPath,
}

// durablePkgs are the layers whose writes must survive crashes.
var durablePkgs = map[string]bool{
	"internal/store":   true,
	"internal/journal": true,
}

// osFileFuncs are the package-level os functions the vfs seam mirrors.
var osFileFuncs = map[string]bool{
	"Create": true, "CreateTemp": true, "Open": true, "OpenFile": true,
	"ReadFile": true, "WriteFile": true, "Rename": true, "Remove": true,
	"RemoveAll": true, "Truncate": true, "Mkdir": true, "MkdirAll": true,
	"ReadDir": true,
}

func runFsyncPath(pass *Pass) {
	if !durablePkgs[pkgRel(pass.PkgPath)] {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			fn, ok := pass.Info.Uses[id].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "os" {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true
			}
			if osFileFuncs[fn.Name()] {
				pass.Reportf(id.Pos(),
					"direct os.%s bypasses the vfs seam; route durable-layer I/O through vfs.FS so the disk-fault harness can inject under it", fn.Name())
			}
			return true
		})
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkFsyncOrder(pass, fd)
			}
		}
	}
}

// checkFsyncOrder scans one function in source order: once it has
// created a file through the seam, a Rename before any Sync publishes
// bytes that were never forced to disk.
func checkFsyncOrder(pass *Pass, fd *ast.FuncDecl) {
	created, synced := false, false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch sel.Sel.Name {
		case "Create", "CreateTemp", "OpenAppend":
			if methodOn(pass, sel, "internal/vfs", "FS") != nil {
				created = true
			}
		case "Sync":
			if methodOn(pass, sel, "internal/vfs", "File") != nil {
				synced = true
			}
		case "Rename":
			if methodOn(pass, sel, "internal/vfs", "FS") != nil && created && !synced {
				pass.Reportf(call.Pos(),
					"Rename publishes a file this function wrote without an fsync; write temp → Sync → Rename so a crash cannot expose torn bytes under a live name")
			}
		}
		return true
	})
}
