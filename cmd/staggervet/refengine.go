package main

import (
	"go/ast"
	"go/types"
)

// refengine guards the differential oracle of the htm package: the
// cooperative engine and the retained reference engine may only be
// constructed through the newEngine factory, and the factory may only
// be asked for an engine with the Config.RefEngine flag itself. If any
// code path could build a coopEngine directly, an experiment claiming
// "verified against the reference engine" might silently run the new
// engine on both sides; this analyzer makes that bypass a vet failure.
//
// Concretely, inside internal/htm (the only package that can name the
// unexported types):
//
//   - a coopEngine or refEngine composite literal is legal only in its
//     own constructor (newCoopEngine / newRefEngine);
//   - calling a constructor is legal only inside newEngine;
//   - calling newEngine is legal only with a RefEngine config field as
//     the engine-selection argument, so the choice always traces back
//     to Config.RefEngine rather than a hard-coded bool.
var refengineAnalyzer = &Analyzer{
	Name: "refengine",
	Doc:  "forces all htm engine construction through the newEngine factory honoring Config.RefEngine",
	Run:  runRefEngine,
}

// refengineCtors maps each engine type to the sole function allowed to
// build it.
var refengineCtors = map[string]string{
	"coopEngine": "newCoopEngine",
	"refEngine":  "newRefEngine",
}

func runRefEngine(pass *Pass) {
	if pkgRel(pass.PkgPath) != "internal/htm" {
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkEngineConstruction(pass, fn)
		}
	}
}

// checkEngineConstruction walks one function body for engine literals,
// constructor calls, and factory calls, applying the placement rules.
func checkEngineConstruction(pass *Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CompositeLit:
			name := htmNamedType(pass, n)
			ctor, guarded := refengineCtors[name]
			if guarded && fn.Name.Name != ctor {
				pass.Reportf(n.Pos(),
					"%s constructed outside %s; all engine construction must go through the newEngine factory", name, ctor)
			}
		case *ast.CallExpr:
			callee := htmFuncCallee(pass, n)
			switch callee {
			case "newCoopEngine", "newRefEngine":
				if fn.Name.Name != "newEngine" {
					pass.Reportf(n.Pos(),
						"%s called outside the newEngine factory; the Config.RefEngine oracle switch would be bypassed", callee)
				}
			case "newEngine":
				if len(n.Args) != 3 || !isRefEngineSelector(n.Args[2]) {
					pass.Reportf(n.Pos(),
						"newEngine must select the engine with a RefEngine config field, not a computed or literal bool")
				}
			}
		}
		return true
	})
}

// htmNamedType returns the bare name of lit's type when it is a named
// type defined in the package under analysis, else "".
func htmNamedType(pass *Pass, lit *ast.CompositeLit) string {
	tv, ok := pass.Info.Types[ast.Expr(lit)]
	if !ok {
		return ""
	}
	named, ok := tv.Type.(*types.Named)
	if !ok || named.Obj().Pkg() != pass.Pkg {
		return ""
	}
	return named.Obj().Name()
}

// htmFuncCallee resolves a call's callee to a package-level function of
// the package under analysis and returns its name, else "".
func htmFuncCallee(pass *Pass, call *ast.CallExpr) string {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return ""
	}
	obj, ok := pass.Info.Uses[id]
	if !ok || obj.Pkg() != pass.Pkg {
		return ""
	}
	if _, isFunc := obj.(*types.Func); !isFunc {
		return ""
	}
	return obj.Name()
}

// isRefEngineSelector reports whether e reads a field or method named
// RefEngine (e.g. m.cfg.RefEngine), the only sanctioned way to choose
// between the cooperative and reference engines.
func isRefEngineSelector(e ast.Expr) bool {
	sel, ok := e.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "RefEngine"
}
