package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// The staggervet mini-framework. golang.org/x/tools is not vendored, so
// this is a stdlib-only reimplementation of the slice of analysis.Pass
// the three analyzers need: typed ASTs in, position-tagged diagnostics
// out, with //staggervet:allow suppression comments honored.

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	Name string // suppression key and diagnostic tag
	Doc  string
	Run  func(*Pass)
}

// Pass hands one package's typed syntax to an analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	PkgPath  string
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Msg:      fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, printed as file:line:col: [name] msg.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Msg      string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Msg)
}

// allowDirective is one parsed //staggervet:allow comment. A directive
// names exactly one analyzer and suppresses that analyzer's diagnostics
// on its own line and the line directly below (so it can sit above the
// flagged statement). A directive that suppresses nothing is itself a
// finding — waivers must not outlive the code they excuse.
type allowDirective struct {
	pos  token.Position
	name string // analyzer the waiver anchors to
	bad  string // non-empty: malformed/unknown, with the reason
	used bool
}

const allowMarker = "staggervet:allow"

// collectAllows parses a file's //staggervet:allow directives. The
// marker must be followed by whitespace and a known analyzer name:
// run-on forms like //staggervet:allowdeterminism and bare or unknown
// names are reported instead of silently (mis)matching.
func collectAllows(fset *token.FileSet, f *ast.File, known map[string]bool, into []*allowDirective) []*allowDirective {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			if !strings.HasPrefix(text, allowMarker) {
				continue
			}
			d := &allowDirective{pos: fset.Position(c.Pos())}
			rest := text[len(allowMarker):]
			switch fields := strings.Fields(rest); {
			case rest != "" && rest[0] != ' ' && rest[0] != '\t':
				d.bad = fmt.Sprintf("malformed directive %q: the analyzer name must be separated from %s by a space", "//"+text, allowMarker)
			case len(fields) == 0:
				d.bad = fmt.Sprintf("%s needs an analyzer name: blanket waivers are not allowed", allowMarker)
			case !known[fields[0]]:
				d.bad = fmt.Sprintf("%s names unknown analyzer %q", allowMarker, fields[0])
			default:
				d.name = fields[0]
			}
			into = append(into, d)
		}
	}
	return into
}

// suppressedBy marks and returns the directive covering d, if any.
func suppressedBy(allows []*allowDirective, d Diagnostic) *allowDirective {
	for _, a := range allows {
		if a.bad != "" || a.name != d.Analyzer || a.pos.Filename != d.Pos.Filename {
			continue
		}
		if d.Pos.Line == a.pos.Line || d.Pos.Line == a.pos.Line+1 {
			a.used = true
			return a
		}
	}
	return nil
}

// waiverAnalyzerName tags diagnostics about the waivers themselves:
// malformed directives and waivers that no longer suppress anything.
const waiverAnalyzerName = "waiver"

// runAnalyzers applies every analyzer to one loaded package and returns
// the unsuppressed diagnostics, plus a diagnostic for every waiver that
// is malformed or matched nothing.
func runAnalyzers(analyzers []*Analyzer, p *pkgInfo) []Diagnostic {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var allows []*allowDirective
	for _, f := range p.files {
		allows = collectAllows(p.fset, f, known, allows)
	}
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     p.fset,
			Files:    p.files,
			PkgPath:  p.path,
			Pkg:      p.pkg,
			Info:     p.info,
			diags:    &diags,
		}
		a.Run(pass)
	}
	kept := diags[:0]
	for _, d := range diags {
		if suppressedBy(allows, d) == nil {
			kept = append(kept, d)
		}
	}
	for _, a := range allows {
		switch {
		case a.bad != "":
			kept = append(kept, Diagnostic{Pos: a.pos, Analyzer: waiverAnalyzerName, Msg: a.bad})
		case !a.used:
			kept = append(kept, Diagnostic{Pos: a.pos, Analyzer: waiverAnalyzerName,
				Msg: fmt.Sprintf("unused %s %s waiver: no %s finding on this or the next line — remove it", allowMarker, a.name, a.name)})
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return kept
}
