package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// The staggervet mini-framework. golang.org/x/tools is not vendored, so
// this is a stdlib-only reimplementation of the slice of analysis.Pass
// the three analyzers need: typed ASTs in, position-tagged diagnostics
// out, with //staggervet:allow suppression comments honored.

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	Name string // suppression key and diagnostic tag
	Doc  string
	Run  func(*Pass)
}

// Pass hands one package's typed syntax to an analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	PkgPath  string
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Msg:      fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, printed as file:line:col: [name] msg.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Msg      string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Msg)
}

// allowKey marks "file:line suppresses analyzer name" ("*" = all).
type allowKey struct {
	file string
	line int
	name string
}

// collectAllows scans a file's comments for //staggervet:allow <name>
// directives. A directive suppresses matching diagnostics on its own
// line and on the line directly below it (so it can sit above the
// flagged statement).
func collectAllows(fset *token.FileSet, f *ast.File, into map[allowKey]bool) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			if !strings.HasPrefix(text, "staggervet:allow") {
				continue
			}
			rest := strings.TrimSpace(strings.TrimPrefix(text, "staggervet:allow"))
			name := "*"
			if fields := strings.Fields(rest); len(fields) > 0 {
				name = fields[0]
			}
			pos := fset.Position(c.Pos())
			into[allowKey{pos.Filename, pos.Line, name}] = true
			into[allowKey{pos.Filename, pos.Line + 1, name}] = true
		}
	}
}

func suppressed(allows map[allowKey]bool, d Diagnostic) bool {
	return allows[allowKey{d.Pos.Filename, d.Pos.Line, d.Analyzer}] ||
		allows[allowKey{d.Pos.Filename, d.Pos.Line, "*"}]
}

// runAnalyzers applies every analyzer to one loaded package and returns
// the unsuppressed diagnostics.
func runAnalyzers(analyzers []*Analyzer, p *pkgInfo) []Diagnostic {
	allows := make(map[allowKey]bool)
	for _, f := range p.files {
		collectAllows(p.fset, f, allows)
	}
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     p.fset,
			Files:    p.files,
			PkgPath:  p.path,
			Pkg:      p.pkg,
			Info:     p.info,
			diags:    &diags,
		}
		a.Run(pass)
	}
	kept := diags[:0]
	for _, d := range diags {
		if !suppressed(allows, d) {
			kept = append(kept, d)
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return kept
}
