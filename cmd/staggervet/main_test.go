package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTree materializes a throwaway module from path→source pairs and
// returns its root.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	files["go.mod"] = "module repro\n\ngo 1.22\n"
	for p, src := range files {
		full := filepath.Join(root, filepath.FromSlash(p))
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// vet runs the full staggervet driver over a fixture module and returns
// (exit code, output).
func vet(t *testing.T, files map[string]string) (int, string) {
	t.Helper()
	root := writeTree(t, files)
	var sb strings.Builder
	code := run(root, nil, &sb)
	return code, sb.String()
}

// The acceptance scenario: an injected time.Now in internal/htm must
// fail the build with a file:line diagnostic.
func TestDeterminismFlagsInjectedTimeNow(t *testing.T) {
	code, out := vet(t, map[string]string{
		"internal/htm/clock.go": `package htm

import "time"

func Stamp() int64 { return time.Now().UnixNano() }
`,
	})
	if code != 1 {
		t.Fatalf("exit = %d, want 1; output:\n%s", code, out)
	}
	if !strings.Contains(out, "clock.go:5:") || !strings.Contains(out, "[determinism]") ||
		!strings.Contains(out, "time.Now") {
		t.Fatalf("missing file:line time.Now diagnostic:\n%s", out)
	}
}

func TestDeterminismFlagsGlobalRandAndMapRange(t *testing.T) {
	code, out := vet(t, map[string]string{
		"internal/sched/pick.go": `package sched

import "math/rand"

func Pick(m map[int]int) int {
	for k := range m { // result-affecting package: flagged
		if k > 10 {
			return k
		}
	}
	return rand.Intn(8)
}

func Seeded(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
`,
		"internal/harness/ok.go": `package harness

// Map iteration outside the deterministic core is not flagged.
func Sum(m map[int]int) (s int) {
	for _, v := range m {
		s += v
	}
	return s
}
`,
	})
	if code != 1 {
		t.Fatalf("exit = %d, want 1; output:\n%s", code, out)
	}
	if !strings.Contains(out, "rand.Intn") || !strings.Contains(out, "map iteration order") {
		t.Fatalf("missing rand/map diagnostics:\n%s", out)
	}
	if strings.Contains(out, "ok.go") || strings.Contains(out, "rand.New") {
		t.Fatalf("false positive on seeded rand or out-of-scope map range:\n%s", out)
	}
	if got := strings.Count(out, "[determinism]"); got != 2 {
		t.Fatalf("want exactly 2 determinism findings, got %d:\n%s", got, out)
	}
}

// fakeHTM is a miniature internal/htm with the nontransactional API
// shape the ntstore and siteattr analyzers match on.
const fakeHTM = `package htm

type Core struct{ mem map[uint64]uint64 }

func (c *Core) Load(pc uint64, site uint32, a uint64) uint64 { return c.mem[a] }
func (c *Core) Store(pc uint64, site uint32, a uint64, v uint64) { c.mem[a] = v }
func (c *Core) NTLoad(a uint64) uint64                 { return c.mem[a] }
func (c *Core) NTStore(a uint64, v uint64)             { c.mem[a] = v }
func (c *Core) NTCas(a, old, new uint64) bool          { return true }
`

func TestNTStoreRestrictedToLockWordAPI(t *testing.T) {
	code, out := vet(t, map[string]string{
		"internal/htm/core.go": fakeHTM,
		"internal/stagger/locks.go": `package stagger

import "repro/internal/htm"

// The lock-word API may write nontransactionally.
func Release(c *htm.Core, lock uint64) { c.NTStore(lock, 0) }
`,
		"internal/chaos/inject.go": `package chaos

import "repro/internal/htm"

func Corrupt(c *htm.Core, a uint64) {
	c.NTStore(a, 0xdead) // outside the API: flagged
	if !c.NTCas(a, 0xdead, 0) { // flagged
		_ = c.NTLoad(a) // reads are fine
	}
}
`,
	})
	if code != 1 {
		t.Fatalf("exit = %d, want 1; output:\n%s", code, out)
	}
	if !strings.Contains(out, "inject.go:6:") || !strings.Contains(out, "[ntstore]") {
		t.Fatalf("missing NTStore diagnostic:\n%s", out)
	}
	if !strings.Contains(out, "inject.go:7:") {
		t.Fatalf("missing NTCas diagnostic:\n%s", out)
	}
	if strings.Contains(out, "locks.go") || strings.Contains(out, "NTLoad") {
		t.Fatalf("false positive on lock-word API or NTLoad:\n%s", out)
	}
}

func TestSiteAttrFlagsUnattributedAccesses(t *testing.T) {
	code, out := vet(t, map[string]string{
		"internal/htm/core.go": fakeHTM,
		"internal/stagger/txctx.go": `package stagger

import "repro/internal/htm"

type Site struct{ ID uint32 }

type TxCtx struct{ c *htm.Core }

func (t *TxCtx) Load(s *Site, a uint64) uint64  { return t.c.Load(0, s.ID, a) }
func (t *TxCtx) Store(s *Site, a uint64, v uint64) { t.c.Store(0, s.ID, a, v) }
`,
		"internal/workloads/body.go": `package workloads

import (
	"repro/internal/htm"
	"repro/internal/stagger"
)

func Body(tc *stagger.TxCtx, c *htm.Core, a uint64) {
	tc.Load(nil, a)     // nil site: flagged
	c.Store(0, 0, a, 1) // site 0 outside htm: flagged
	tc.Store(&stagger.Site{ID: 3}, a, 1)
	c.Load(0, 7, a)
}
`,
	})
	if code != 1 {
		t.Fatalf("exit = %d, want 1; output:\n%s", code, out)
	}
	if !strings.Contains(out, "body.go:9:") || !strings.Contains(out, "nil site") {
		t.Fatalf("missing nil-site diagnostic:\n%s", out)
	}
	if !strings.Contains(out, "body.go:10:") || !strings.Contains(out, "site 0") {
		t.Fatalf("missing site-0 diagnostic:\n%s", out)
	}
	if got := strings.Count(out, "[siteattr]"); got != 2 {
		t.Fatalf("want exactly 2 siteattr findings, got %d:\n%s", got, out)
	}
}

func TestAllowCommentSuppresses(t *testing.T) {
	code, out := vet(t, map[string]string{
		"internal/oracle/emit.go": `package oracle

func Apply(m map[uint64]uint64, store func(uint64, uint64)) {
	//staggervet:allow determinism distinct words; order-independent
	for k, v := range m {
		store(k, v)
	}
}

func Bad(m map[uint64]uint64) (s uint64) {
	for _, v := range m {
		s ^= s<<1 + v // order-sensitive, unannotated
	}
	return s
}
`,
	})
	if code != 1 {
		t.Fatalf("exit = %d, want 1; output:\n%s", code, out)
	}
	if strings.Contains(out, "emit.go:5:") {
		t.Fatalf("allow comment did not suppress:\n%s", out)
	}
	if !strings.Contains(out, "emit.go:11:") {
		t.Fatalf("unannotated map range not flagged:\n%s", out)
	}
}

// TestWallClockWaiverScopedToServiceLayer pins the waiver boundary:
// the same time.Now call is legal in the service layer (deadlines and
// drain grace are operational, not simulated) and still flagged one
// package below it — and the waiver does not leak to math/rand.
func TestWallClockWaiverScopedToServiceLayer(t *testing.T) {
	code, out := vet(t, map[string]string{
		"internal/service/deadline.go": `package service

import "time"

func Deadline(grace time.Duration) time.Time { return time.Now().Add(grace) }
`,
		"internal/harness/stamp.go": `package harness

import "time"

func Stamp() int64 { return time.Now().UnixNano() }
`,
	})
	if code != 1 {
		t.Fatalf("exit = %d, want 1; output:\n%s", code, out)
	}
	if strings.Contains(out, "deadline.go") {
		t.Fatalf("wall clock flagged inside the exempt service layer:\n%s", out)
	}
	if !strings.Contains(out, "stamp.go:5:") {
		t.Fatalf("wall clock below the service layer not flagged:\n%s", out)
	}

	code, out = vet(t, map[string]string{
		"internal/service/pick.go": `package service

import "math/rand"

func Pick() int { return rand.Intn(4) }
`,
	})
	if code != 1 || !strings.Contains(out, "rand.Intn") {
		t.Fatalf("global math/rand must stay banned in the service layer (exit %d):\n%s", code, out)
	}
}

// TestRepoIsVetClean runs the real analyzers over the real repository:
// the tree must stay free of determinism, ntstore, and siteattr
// violations (this is `make vet` in test form).
func TestRepoIsVetClean(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if code := run(root, nil, &sb); code != 0 {
		t.Fatalf("staggervet on the repo exited %d:\n%s", code, sb.String())
	}
}
