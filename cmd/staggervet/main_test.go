package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTree materializes a throwaway module from path→source pairs and
// returns its root.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	files["go.mod"] = "module repro\n\ngo 1.22\n"
	for p, src := range files {
		full := filepath.Join(root, filepath.FromSlash(p))
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// vet runs the full staggervet driver over a fixture module and returns
// (exit code, output).
func vet(t *testing.T, files map[string]string) (int, string) {
	t.Helper()
	root := writeTree(t, files)
	var sb strings.Builder
	code := run(root, nil, &sb)
	return code, sb.String()
}

// The acceptance scenario: an injected time.Now in internal/htm must
// fail the build with a file:line diagnostic.
func TestDeterminismFlagsInjectedTimeNow(t *testing.T) {
	code, out := vet(t, map[string]string{
		"internal/htm/clock.go": `package htm

import "time"

func Stamp() int64 { return time.Now().UnixNano() }
`,
	})
	if code != 1 {
		t.Fatalf("exit = %d, want 1; output:\n%s", code, out)
	}
	if !strings.Contains(out, "clock.go:5:") || !strings.Contains(out, "[determinism]") ||
		!strings.Contains(out, "time.Now") {
		t.Fatalf("missing file:line time.Now diagnostic:\n%s", out)
	}
}

func TestDeterminismFlagsGlobalRandAndMapRange(t *testing.T) {
	code, out := vet(t, map[string]string{
		"internal/sched/pick.go": `package sched

import "math/rand"

func Pick(m map[int]int) int {
	for k := range m { // result-affecting package: flagged
		if k > 10 {
			return k
		}
	}
	return rand.Intn(8)
}

func Seeded(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
`,
		"internal/harness/ok.go": `package harness

// Map iteration outside the deterministic core is not flagged.
func Sum(m map[int]int) (s int) {
	for _, v := range m {
		s += v
	}
	return s
}
`,
	})
	if code != 1 {
		t.Fatalf("exit = %d, want 1; output:\n%s", code, out)
	}
	if !strings.Contains(out, "rand.Intn") || !strings.Contains(out, "map iteration order") {
		t.Fatalf("missing rand/map diagnostics:\n%s", out)
	}
	if strings.Contains(out, "ok.go") || strings.Contains(out, "rand.New") {
		t.Fatalf("false positive on seeded rand or out-of-scope map range:\n%s", out)
	}
	if got := strings.Count(out, "[determinism]"); got != 2 {
		t.Fatalf("want exactly 2 determinism findings, got %d:\n%s", got, out)
	}
}

// fakeHTM is a miniature internal/htm with the nontransactional API
// shape the ntstore and siteattr analyzers match on.
const fakeHTM = `package htm

type Core struct{ mem map[uint64]uint64 }

func (c *Core) Load(pc uint64, site uint32, a uint64) uint64 { return c.mem[a] }
func (c *Core) Store(pc uint64, site uint32, a uint64, v uint64) { c.mem[a] = v }
func (c *Core) NTLoad(a uint64) uint64                 { return c.mem[a] }
func (c *Core) NTStore(a uint64, v uint64)             { c.mem[a] = v }
func (c *Core) NTCas(a, old, new uint64) bool          { return true }
`

func TestNTStoreRestrictedToLockWordAPI(t *testing.T) {
	code, out := vet(t, map[string]string{
		"internal/htm/core.go": fakeHTM,
		"internal/stagger/locks.go": `package stagger

import "repro/internal/htm"

// The lock-word API may write nontransactionally.
func Release(c *htm.Core, lock uint64) { c.NTStore(lock, 0) }
`,
		"internal/chaos/inject.go": `package chaos

import "repro/internal/htm"

func Corrupt(c *htm.Core, a uint64) {
	c.NTStore(a, 0xdead) // outside the API: flagged
	if !c.NTCas(a, 0xdead, 0) { // flagged
		_ = c.NTLoad(a) // reads are fine
	}
}
`,
	})
	if code != 1 {
		t.Fatalf("exit = %d, want 1; output:\n%s", code, out)
	}
	if !strings.Contains(out, "inject.go:6:") || !strings.Contains(out, "[ntstore]") {
		t.Fatalf("missing NTStore diagnostic:\n%s", out)
	}
	if !strings.Contains(out, "inject.go:7:") {
		t.Fatalf("missing NTCas diagnostic:\n%s", out)
	}
	if strings.Contains(out, "locks.go") || strings.Contains(out, "NTLoad") {
		t.Fatalf("false positive on lock-word API or NTLoad:\n%s", out)
	}
}

func TestSiteAttrFlagsUnattributedAccesses(t *testing.T) {
	code, out := vet(t, map[string]string{
		"internal/htm/core.go": fakeHTM,
		"internal/stagger/txctx.go": `package stagger

import "repro/internal/htm"

type Site struct{ ID uint32 }

type TxCtx struct{ c *htm.Core }

func (t *TxCtx) Load(s *Site, a uint64) uint64  { return t.c.Load(0, s.ID, a) }
func (t *TxCtx) Store(s *Site, a uint64, v uint64) { t.c.Store(0, s.ID, a, v) }
`,
		"internal/workloads/body.go": `package workloads

import (
	"repro/internal/htm"
	"repro/internal/stagger"
)

func Body(tc *stagger.TxCtx, c *htm.Core, a uint64) {
	tc.Load(nil, a)     // nil site: flagged
	c.Store(0, 0, a, 1) // site 0 outside htm: flagged
	tc.Store(&stagger.Site{ID: 3}, a, 1)
	c.Load(0, 7, a)
}
`,
	})
	if code != 1 {
		t.Fatalf("exit = %d, want 1; output:\n%s", code, out)
	}
	if !strings.Contains(out, "body.go:9:") || !strings.Contains(out, "nil site") {
		t.Fatalf("missing nil-site diagnostic:\n%s", out)
	}
	if !strings.Contains(out, "body.go:10:") || !strings.Contains(out, "site 0") {
		t.Fatalf("missing site-0 diagnostic:\n%s", out)
	}
	if got := strings.Count(out, "[siteattr]"); got != 2 {
		t.Fatalf("want exactly 2 siteattr findings, got %d:\n%s", got, out)
	}
}

func TestAllowCommentSuppresses(t *testing.T) {
	code, out := vet(t, map[string]string{
		"internal/oracle/emit.go": `package oracle

func Apply(m map[uint64]uint64, store func(uint64, uint64)) {
	//staggervet:allow determinism distinct words; order-independent
	for k, v := range m {
		store(k, v)
	}
}

func Bad(m map[uint64]uint64) (s uint64) {
	for _, v := range m {
		s ^= s<<1 + v // order-sensitive, unannotated
	}
	return s
}
`,
	})
	if code != 1 {
		t.Fatalf("exit = %d, want 1; output:\n%s", code, out)
	}
	if strings.Contains(out, "emit.go:5:") {
		t.Fatalf("allow comment did not suppress:\n%s", out)
	}
	if !strings.Contains(out, "emit.go:11:") {
		t.Fatalf("unannotated map range not flagged:\n%s", out)
	}
}

// TestWallClockWaiverScopedToServiceLayer pins the waiver boundary:
// the same time.Now call is legal in the service layer (deadlines and
// drain grace are operational, not simulated) and still flagged one
// package below it — and the waiver does not leak to math/rand.
func TestWallClockWaiverScopedToServiceLayer(t *testing.T) {
	code, out := vet(t, map[string]string{
		"internal/service/deadline.go": `package service

import "time"

func Deadline(grace time.Duration) time.Time { return time.Now().Add(grace) }
`,
		"internal/harness/stamp.go": `package harness

import "time"

func Stamp() int64 { return time.Now().UnixNano() }
`,
	})
	if code != 1 {
		t.Fatalf("exit = %d, want 1; output:\n%s", code, out)
	}
	if strings.Contains(out, "deadline.go") {
		t.Fatalf("wall clock flagged inside the exempt service layer:\n%s", out)
	}
	if !strings.Contains(out, "stamp.go:5:") {
		t.Fatalf("wall clock below the service layer not flagged:\n%s", out)
	}

	code, out = vet(t, map[string]string{
		"internal/service/pick.go": `package service

import "math/rand"

func Pick() int { return rand.Intn(4) }
`,
	})
	if code != 1 || !strings.Contains(out, "rand.Intn") {
		t.Fatalf("global math/rand must stay banned in the service layer (exit %d):\n%s", code, out)
	}
}

// TestRepoIsVetClean runs the real analyzers over the real repository:
// the tree must stay free of determinism, ntstore, and siteattr
// violations (this is `make vet` in test form).
func TestRepoIsVetClean(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if code := run(root, nil, &sb); code != 0 {
		t.Fatalf("staggervet on the repo exited %d:\n%s", code, sb.String())
	}
}

// TestErrShadowReproducesJournalFsyncBug is the regression fixture for
// the err-shadowing bug the journal PR fixed: a Write error overwritten
// by the Sync assignment before anything checks it, silently swallowing
// the torn write. The fixed shape (check between the two) must stay
// clean.
func TestErrShadowReproducesJournalFsyncBug(t *testing.T) {
	code, out := vet(t, map[string]string{
		"internal/journal/append.go": `package journal

type file interface {
	Write([]byte) (int, error)
	Sync() error
	Close() error
}

func initEmpty(f file) error {
	_, err := f.Write([]byte("hdr"))
	err = f.Sync() // overwrites the unchecked Write error
	if err != nil {
		return err
	}
	return f.Close()
}

func initEmptyFixed(f file) error {
	_, err := f.Write([]byte("hdr"))
	if err == nil {
		err = f.Sync()
	}
	if err != nil {
		return err
	}
	return f.Close()
}
`,
	})
	if code != 1 {
		t.Fatalf("exit = %d, want 1; output:\n%s", code, out)
	}
	if !strings.Contains(out, "append.go:11:") || !strings.Contains(out, "[errshadow]") ||
		!strings.Contains(out, "overwritten before it is checked") {
		t.Fatalf("missing errshadow diagnostic at the Sync overwrite:\n%s", out)
	}
	if got := strings.Count(out, "[errshadow]"); got != 1 {
		t.Fatalf("want exactly 1 errshadow finding (the fixed shape must stay clean), got %d:\n%s", got, out)
	}
}

// fakeVFS is a miniature internal/vfs with the seam surface fsyncpath
// matches on.
const fakeVFS = `package vfs

type File interface {
	Write([]byte) (int, error)
	Sync() error
	Close() error
	Name() string
}

type FS interface {
	CreateTemp(dir, pattern string) (File, error)
	Rename(oldpath, newpath string) error
}
`

func TestFsyncPathSeamAndOrdering(t *testing.T) {
	code, out := vet(t, map[string]string{
		"internal/vfs/vfs.go": fakeVFS,
		"internal/store/put.go": `package store

import (
	"os"

	"repro/internal/vfs"
)

func PutTorn(fs vfs.FS, dir, dst string) error {
	tmp, err := fs.CreateTemp(dir, "put-*.tmp")
	if err != nil {
		return err
	}
	if _, err := tmp.Write([]byte("x")); err != nil {
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return fs.Rename(tmp.Name(), dst) // published without Sync: flagged
}

func PutGood(fs vfs.FS, dir, dst string) error {
	tmp, err := fs.CreateTemp(dir, "put-*.tmp")
	if err != nil {
		return err
	}
	if err := tmp.Sync(); err != nil {
		return err
	}
	return fs.Rename(tmp.Name(), dst)
}

// quarantine-style move of already-durable bytes: no create, not flagged.
func Sideline(fs vfs.FS, path, dst string) error {
	return fs.Rename(path, dst)
}

func Sweep(dir string) { os.Remove(dir) } // bypasses the seam: flagged
`,
	})
	if code != 1 {
		t.Fatalf("exit = %d, want 1; output:\n%s", code, out)
	}
	if !strings.Contains(out, "put.go:20:") || !strings.Contains(out, "without an fsync") {
		t.Fatalf("missing rename-without-sync diagnostic:\n%s", out)
	}
	if !strings.Contains(out, "os.Remove") || !strings.Contains(out, "vfs seam") {
		t.Fatalf("missing os-bypass diagnostic:\n%s", out)
	}
	if got := strings.Count(out, "[fsyncpath]"); got != 2 {
		t.Fatalf("want exactly 2 fsyncpath findings (PutGood and Sideline must stay clean), got %d:\n%s", got, out)
	}
}

func TestCtxDoneFlagsUnstoppableLoops(t *testing.T) {
	code, out := vet(t, map[string]string{
		"internal/service/spin.go": `package service

import "context"

func Spin(ctx context.Context, work func()) {
	go func() {
		for { // never observes cancellation: flagged
			work()
		}
	}()
	go func() { // one-shot: exempt
		work()
	}()
	go func() {
		for { // consults ctx.Err: fine
			if ctx.Err() != nil {
				return
			}
			work()
		}
	}()
}

func Pump(ch chan int, work func(int)) {
	go pump(ch, work)
}

func pump(ch chan int, work func(int)) {
	for v := range ch { // ends when the sender closes ch: exempt
		work(v)
	}
}
`,
	})
	if code != 1 {
		t.Fatalf("exit = %d, want 1; output:\n%s", code, out)
	}
	if !strings.Contains(out, "spin.go:7:") || !strings.Contains(out, "[ctxdone]") {
		t.Fatalf("missing ctxdone diagnostic on the unstoppable loop:\n%s", out)
	}
	if got := strings.Count(out, "[ctxdone]"); got != 1 {
		t.Fatalf("want exactly 1 ctxdone finding, got %d:\n%s", got, out)
	}
}

// TestAllowDirectiveAnchorsOnAnalyzerName pins the waiver matcher fix:
// a run-on directive must not suppress anything, unknown analyzer names
// are reported, and a waiver matching no finding is itself a finding.
func TestAllowDirectiveAnchorsOnAnalyzerName(t *testing.T) {
	code, out := vet(t, map[string]string{
		"internal/htm/a.go": `package htm

func A(m map[int]int) (s int) {
	//staggervet:allowdeterminism smashed against the marker
	for _, v := range m {
		s += v
	}
	return s
}
`,
		"internal/htm/b.go": `package htm

//staggervet:allow nosuchcheck it never existed
func B() {}
`,
		"internal/htm/c.go": `package htm

func C() int {
	//staggervet:allow determinism nothing to suppress here
	return 1
}
`,
	})
	if code != 1 {
		t.Fatalf("exit = %d, want 1; output:\n%s", code, out)
	}
	if !strings.Contains(out, "a.go:5:") || !strings.Contains(out, "map iteration order") {
		t.Fatalf("run-on directive suppressed the finding it should not reach:\n%s", out)
	}
	if !strings.Contains(out, "a.go:4:") || !strings.Contains(out, "malformed directive") {
		t.Fatalf("run-on directive not reported as malformed:\n%s", out)
	}
	if !strings.Contains(out, `unknown analyzer "nosuchcheck"`) {
		t.Fatalf("unknown analyzer name not reported:\n%s", out)
	}
	if !strings.Contains(out, "c.go:4:") || !strings.Contains(out, "unused staggervet:allow determinism waiver") {
		t.Fatalf("stale waiver not reported:\n%s", out)
	}
	if got := strings.Count(out, "[waiver]"); got != 3 {
		t.Fatalf("want exactly 3 waiver findings, got %d:\n%s", got, out)
	}
}

// TestBaselineUpdateAndCheck drives the -baseline lifecycle: update
// captures the current findings, check suppresses exactly those, and a
// baseline entry whose finding was fixed fails as stale.
func TestBaselineUpdateAndCheck(t *testing.T) {
	tree := map[string]string{
		"internal/htm/clock.go": `package htm

import "time"

func Stamp() int64 { return time.Now().UnixNano() }
`,
	}
	root := writeTree(t, tree)
	baseline := filepath.Join(root, "baseline.txt")

	var sb strings.Builder
	if code := runOpts(root, nil, &sb, baseline, true, false); code != 0 {
		t.Fatalf("-update-baseline exited %d:\n%s", code, sb.String())
	}
	data, err := os.ReadFile(baseline)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "internal/htm/clock.go [determinism]") {
		t.Fatalf("baseline missing the captured finding:\n%s", data)
	}

	sb.Reset()
	if code := runOpts(root, nil, &sb, baseline, false, false); code != 0 {
		t.Fatalf("baselined finding still fails (exit %d):\n%s", code, sb.String())
	}

	// Fix the finding; the baseline entry is now stale and must fail.
	if err := os.WriteFile(filepath.Join(root, "internal/htm/clock.go"),
		[]byte("package htm\n\nfunc Stamp() int64 { return 0 }\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	if code := runOpts(root, nil, &sb, baseline, false, false); code != 1 {
		t.Fatalf("stale baseline entry accepted (exit %d):\n%s", code, sb.String())
	}
	if !strings.Contains(sb.String(), "stale baseline entry") {
		t.Fatalf("missing stale-entry diagnostic:\n%s", sb.String())
	}
}

// TestJSONReport checks the -json contract: stable fields, repo-relative
// paths, ok mirroring the exit code.
func TestJSONReport(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/htm/clock.go": `package htm

import "time"

func Stamp() int64 { return time.Now().UnixNano() }
`,
	})
	var sb strings.Builder
	code := runOpts(root, nil, &sb, "", false, true)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; output:\n%s", code, sb.String())
	}
	var rep struct {
		Tool     string `json:"tool"`
		Mode     string `json:"mode"`
		OK       bool   `json:"ok"`
		Findings []struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Analyzer string `json:"analyzer"`
			Msg      string `json:"msg"`
		} `json:"findings"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &rep); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, sb.String())
	}
	if rep.Tool != "staggervet" || rep.OK || len(rep.Findings) != 1 {
		t.Fatalf("unexpected report: %+v", rep)
	}
	f := rep.Findings[0]
	if f.File != "internal/htm/clock.go" || f.Line != 5 || f.Analyzer != "determinism" {
		t.Fatalf("unexpected finding: %+v", f)
	}
}

// TestRefEngineForcesFactory pins the oracle-bypass guard: building a
// coopEngine outside its constructor, calling a constructor outside
// newEngine, or calling newEngine with a hard-coded bool are each a
// finding, while the sanctioned constructor→factory→Config.RefEngine
// chain is clean.
func TestRefEngineForcesFactory(t *testing.T) {
	sanctioned := `package htm

type Scheduler interface{}

type Config struct{ RefEngine bool }

type engine interface{ run() }

type coopEngine struct{ n int }

func (e *coopEngine) run() {}

type refEngine struct{ n int }

func (e *refEngine) run() {}

func newCoopEngine(n int, sched Scheduler) *coopEngine { return &coopEngine{n: n} }

func newRefEngine(n int, sched Scheduler) *refEngine { return &refEngine{n: n} }

func newEngine(n int, sched Scheduler, ref bool) engine {
	if ref {
		return newRefEngine(n, sched)
	}
	return newCoopEngine(n, sched)
}

type Machine struct{ cfg Config }

func (m *Machine) start(n int) engine { return newEngine(n, nil, m.cfg.RefEngine) }
`
	code, out := vet(t, map[string]string{"internal/htm/engine.go": sanctioned})
	if code != 0 {
		t.Fatalf("sanctioned factory chain flagged:\n%s", out)
	}

	code, out = vet(t, map[string]string{
		"internal/htm/engine.go": sanctioned,
		"internal/htm/bypass.go": `package htm

func sneakCoop(n int) engine { return &coopEngine{n: n} }

func sneakCtor(n int) engine { return newCoopEngine(n, nil) }

func sneakBool(n int) engine { return newEngine(n, nil, false) }
`,
	})
	if code != 1 {
		t.Fatalf("exit = %d, want 1; output:\n%s", code, out)
	}
	for _, want := range []string{
		"bypass.go:3:", "coopEngine constructed outside newCoopEngine",
		"bypass.go:5:", "newCoopEngine called outside the newEngine factory",
		"bypass.go:7:", "RefEngine config field",
		"[refengine]",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in refengine diagnostics:\n%s", want, out)
		}
	}
}
