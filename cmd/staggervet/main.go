// Command staggervet runs the repo's Go-source analyzers: the static
// companions to the IR-level checks in internal/staticcheck. It
// type-checks every package under internal/ and cmd/ using only the
// standard library (no external analysis framework) and reports
//
//	determinism — wall-clock reads, the global math/rand source, and
//	              map iteration in the deterministic core
//	ntstore     — nontransactional stores outside the htm simulator
//	              and the stagger lock-word API
//	siteattr    — simulated accesses without a static site attribution
//
// Diagnostics print as file:line:col: [analyzer] message, and any
// finding makes the process exit nonzero, so `make vet` and CI fail on
// the first violation. A finding that is provably order- or
// clock-insensitive can be waived in place with a
// //staggervet:allow <analyzer> comment on or directly above the line.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

var analyzers = []*Analyzer{determinismAnalyzer, ntstoreAnalyzer, siteattrAnalyzer}

func main() {
	root := flag.String("root", "", "module root (default: nearest go.mod at or above the working directory)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: staggervet [-root dir] [package-dir ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	os.Exit(run(*root, flag.Args(), os.Stdout))
}

// run loads the requested packages (default: all of internal/ and cmd/)
// and applies every analyzer, returning the process exit code.
func run(root string, dirs []string, out io.Writer) int {
	var err error
	if root == "" {
		root, err = findRoot()
		if err != nil {
			fmt.Fprintln(os.Stderr, "staggervet:", err)
			return 2
		}
	}
	l, err := newLoader(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "staggervet:", err)
		return 2
	}
	paths := make([]string, 0, len(dirs))
	if len(dirs) == 0 {
		paths, err = l.modulePackages("internal", "cmd")
		if err != nil {
			fmt.Fprintln(os.Stderr, "staggervet:", err)
			return 2
		}
	} else {
		for _, d := range dirs {
			rel, err := filepath.Rel(root, absOrDie(d))
			if err != nil || filepath.IsAbs(rel) || rel == ".." {
				fmt.Fprintf(os.Stderr, "staggervet: %s is outside module root %s\n", d, root)
				return 2
			}
			paths = append(paths, l.modPath+"/"+filepath.ToSlash(rel))
		}
	}
	bad := 0
	for _, path := range paths {
		p, err := l.load(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "staggervet:", err)
			return 2
		}
		for _, d := range runAnalyzers(analyzers, p) {
			fmt.Fprintln(out, d)
			bad++
		}
	}
	if bad > 0 {
		fmt.Fprintf(out, "staggervet: %d violation(s)\n", bad)
		return 1
	}
	return 0
}

// findRoot walks up from the working directory to the nearest go.mod.
func findRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod at or above the working directory")
		}
		dir = parent
	}
}

func absOrDie(p string) string {
	a, err := filepath.Abs(p)
	if err != nil {
		fmt.Fprintln(os.Stderr, "staggervet:", err)
		os.Exit(2)
	}
	return a
}
