// Command staggervet runs the repo's Go-source analyzers: the static
// companions to the IR-level checks in internal/staticcheck. It
// type-checks every package under internal/ and cmd/ using only the
// standard library (no external analysis framework) and reports
//
//	determinism — wall-clock reads, the global math/rand source, and
//	              map iteration in the deterministic core
//	ntstore     — nontransactional stores outside the htm simulator
//	              and the stagger lock-word API
//	siteattr    — simulated accesses without a static site attribution
//	errshadow   — error values overwritten before they are checked
//	fsyncpath   — durable-layer I/O outside the vfs seam, or renames
//	              publishing bytes that were never fsynced
//	ctxdone     — looping goroutines in service/harness code that never
//	              observe cancellation
//	refengine   — htm engine construction that bypasses the newEngine
//	              factory (and its Config.RefEngine oracle switch)
//
// Diagnostics print as file:line:col: [analyzer] message, and any
// finding makes the process exit nonzero, so `make vet` and CI fail on
// the first violation. A finding that is provably order- or
// clock-insensitive can be waived in place with a
// //staggervet:allow <analyzer> comment on or directly above the line;
// waivers that go stale are themselves findings. -json emits the
// findings as a stable-sorted machine-readable report; -baseline checks
// findings against a committed baseline file (and -update-baseline
// rewrites it), so intentionally accepted findings are pinned instead of
// silently ignored.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

var analyzers = []*Analyzer{
	determinismAnalyzer, ntstoreAnalyzer, siteattrAnalyzer,
	errshadowAnalyzer, fsyncpathAnalyzer, ctxdoneAnalyzer,
	refengineAnalyzer,
}

func main() {
	root := flag.String("root", "", "module root (default: nearest go.mod at or above the working directory)")
	baseline := flag.String("baseline", "", "baseline file of accepted findings; unlisted findings and stale entries fail")
	update := flag.Bool("update-baseline", false, "rewrite the -baseline file to the current findings and exit")
	asJSON := flag.Bool("json", false, "emit findings as a machine-readable JSON report")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: staggervet [-root dir] [-baseline file [-update-baseline]] [-json] [package-dir ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	os.Exit(runOpts(*root, flag.Args(), os.Stdout, *baseline, *update, *asJSON))
}

// run is the plain-text entry point (kept for the tests' convenience).
func run(root string, dirs []string, out io.Writer) int {
	return runOpts(root, dirs, out, "", false, false)
}

// runOpts loads the requested packages (default: all of internal/ and
// cmd/), applies every analyzer, filters through the baseline, and emits
// text or JSON, returning the process exit code.
func runOpts(root string, dirs []string, out io.Writer, baseline string, update, asJSON bool) int {
	var err error
	if root == "" {
		root, err = findRoot()
		if err != nil {
			fmt.Fprintln(os.Stderr, "staggervet:", err)
			return 2
		}
	}
	l, err := newLoader(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "staggervet:", err)
		return 2
	}
	paths := make([]string, 0, len(dirs))
	if len(dirs) == 0 {
		paths, err = l.modulePackages("internal", "cmd")
		if err != nil {
			fmt.Fprintln(os.Stderr, "staggervet:", err)
			return 2
		}
	} else {
		for _, d := range dirs {
			rel, err := filepath.Rel(root, absOrDie(d))
			if err != nil || filepath.IsAbs(rel) || rel == ".." {
				fmt.Fprintf(os.Stderr, "staggervet: %s is outside module root %s\n", d, root)
				return 2
			}
			paths = append(paths, l.modPath+"/"+filepath.ToSlash(rel))
		}
	}
	var diags []Diagnostic
	for _, path := range paths {
		p, err := l.load(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "staggervet:", err)
			return 2
		}
		diags = append(diags, runAnalyzers(analyzers, p)...)
	}
	if update {
		if baseline == "" {
			fmt.Fprintln(os.Stderr, "staggervet: -update-baseline needs -baseline")
			return 2
		}
		if err := writeBaseline(baseline, root, diags); err != nil {
			fmt.Fprintln(os.Stderr, "staggervet:", err)
			return 2
		}
		fmt.Fprintf(out, "staggervet: baseline %s updated (%d finding(s))\n", baseline, len(diags))
		return 0
	}
	if baseline != "" {
		diags, err = applyBaseline(baseline, root, diags)
		if err != nil {
			fmt.Fprintln(os.Stderr, "staggervet:", err)
			return 2
		}
	}
	if asJSON {
		if err := emitDiagsJSON(out, root, diags); err != nil {
			fmt.Fprintln(os.Stderr, "staggervet:", err)
			return 2
		}
		if len(diags) > 0 {
			return 1
		}
		return 0
	}
	for _, d := range diags {
		fmt.Fprintln(out, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(out, "staggervet: %d violation(s)\n", len(diags))
		return 1
	}
	return 0
}

// findRoot walks up from the working directory to the nearest go.mod.
func findRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod at or above the working directory")
		}
		dir = parent
	}
}

func absOrDie(p string) string {
	a, err := filepath.Abs(p)
	if err != nil {
		fmt.Fprintln(os.Stderr, "staggervet:", err)
		os.Exit(2)
	}
	return a
}
