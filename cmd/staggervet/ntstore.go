package main

import (
	"go/ast"
	"go/types"
)

// ntstore enforces the paper's nontransactional-store discipline:
// NTStore/NTCas bypass conflict detection, so the only production code
// allowed to issue them is the simulator itself (internal/htm), the
// stagger runtime's advisory lock-word and software-map API
// (internal/stagger), and the software-OCC backend's commit-lock and
// publication protocol (internal/backend/occ). A workload or scheduler
// mutating memory
// nontransactionally would corrupt the serializability oracle's shadow
// without tripping any hardware check — exactly the bug class this
// analyzer makes impossible. NTLoad is unrestricted: reads cannot lose
// updates.
var ntstoreAnalyzer = &Analyzer{
	Name: "ntstore",
	Doc:  "restricts nontransactional stores to the htm simulator and the stagger lock-word API",
	Run:  runNTStore,
}

var ntstoreAllowedPkgs = map[string]bool{
	"internal/htm":         true,
	"internal/stagger":     true,
	"internal/backend/occ": true,
}

func runNTStore(pass *Pass) {
	if ntstoreAllowedPkgs[pkgRel(pass.PkgPath)] {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			name := sel.Sel.Name
			if name != "NTStore" && name != "NTCas" {
				return true
			}
			if m := methodOn(pass, sel, "internal/htm", "Core"); m != nil {
				pass.Reportf(sel.Sel.Pos(),
					"nontransactional %s outside the stagger lock-word API; route the write through a transaction or the runtime", name)
			}
			return true
		})
	}
}

// methodOn resolves sel as a method of the named type pkgRel.typeName
// (value or pointer receiver) and returns the method object, else nil.
func methodOn(pass *Pass, sel *ast.SelectorExpr, pkg, typeName string) types.Object {
	s, ok := pass.Info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal && s.Kind() != types.MethodExpr {
		return nil
	}
	obj := s.Obj()
	if obj.Pkg() == nil || pkgRel(obj.Pkg().Path()) != pkg {
		return nil
	}
	recv := s.Recv()
	if p, isPtr := recv.(*types.Pointer); isPtr {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Name() != typeName {
		return nil
	}
	return obj
}
