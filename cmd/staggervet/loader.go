package main

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// loader type-checks repo packages with the standard library only.
// golang.org/x/tools/go/packages is not available in this module, so the
// loader is its own types.Importer: import paths under the module path
// resolve to repo directories (parsed and checked recursively, memoized),
// everything else is delegated to the compiler's source importer.
type loader struct {
	fset    *token.FileSet
	root    string // module root (directory holding go.mod)
	modPath string // module path from go.mod, e.g. "repro"
	std     types.Importer
	pkgs    map[string]*pkgInfo
}

type pkgInfo struct {
	path  string
	dir   string
	fset  *token.FileSet
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
}

func newLoader(root string) (*loader, error) {
	modPath, err := readModulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &loader{
		fset:    fset,
		root:    root,
		modPath: modPath,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*pkgInfo),
	}, nil
}

func readModulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("%s: no module directive", gomod)
}

// Import implements types.Importer.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.pkg, nil
	}
	return l.std.Import(path)
}

// load parses and type-checks one module-local package (memoized).
func (l *loader) load(path string) (*pkgInfo, error) {
	if p, ok := l.pkgs[path]; ok {
		if p == nil {
			return nil, fmt.Errorf("import cycle through %s", path)
		}
		return p, nil
	}
	l.pkgs[path] = nil // cycle guard
	dir := filepath.Join(l.root, filepath.FromSlash(strings.TrimPrefix(path, l.modPath+"/")))
	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	p, err := l.check(path, dir, files)
	if err != nil {
		return nil, err
	}
	l.pkgs[path] = p
	return p, nil
}

// parseDir parses every non-test .go file of a directory. Test files are
// deliberately excluded: the analyzers verify the simulator, not its
// tests (which legitimately poke nontransactional state).
func (l *loader) parseDir(dir string) ([]*ast.File, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("%s: no Go files", dir)
	}
	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, n), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// check type-checks a parsed package under this loader's importer.
func (l *loader) check(path, dir string, files []*ast.File) (*pkgInfo, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	cfg := &types.Config{Importer: l}
	pkg, err := cfg.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", path, err)
	}
	return &pkgInfo{path: path, dir: dir, fset: l.fset, files: files, pkg: pkg, info: info}, nil
}

// modulePackages returns the import paths of every package under the
// given module-relative roots (e.g. "internal", "cmd"), sorted.
func (l *loader) modulePackages(rels ...string) ([]string, error) {
	var out []string
	for _, rel := range rels {
		base := filepath.Join(l.root, rel)
		if _, err := os.Stat(base); os.IsNotExist(err) {
			continue
		}
		err := filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			if strings.HasPrefix(d.Name(), ".") || d.Name() == "testdata" {
				return filepath.SkipDir
			}
			ents, err := os.ReadDir(p)
			if err != nil {
				return err
			}
			for _, e := range ents {
				n := e.Name()
				if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
					relp, err := filepath.Rel(l.root, p)
					if err != nil {
						return err
					}
					out = append(out, l.modPath+"/"+filepath.ToSlash(relp))
					break
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(out)
	return out, nil
}
