package main

import (
	"bytes"
	"flag"
	"io"
	"strings"
	"testing"

	"repro/internal/backend"
)

// TestUsageCoversEveryFlag pins the -h text to the actual flag surface:
// every defined flag must appear in exactly one usage group, and every
// group entry must name a real flag. This is what keeps the usage text
// from drifting as campaign flags accumulate.
func TestUsageCoversEveryFlag(t *testing.T) {
	fs := flag.NewFlagSet("staggersim", flag.ContinueOnError)
	defineFlags(fs)

	grouped := map[string]string{}
	for _, g := range flagGroups {
		for _, name := range g.names {
			if prev, dup := grouped[name]; dup {
				t.Errorf("flag -%s listed in both %q and %q", name, prev, g.title)
			}
			grouped[name] = g.title
			if fs.Lookup(name) == nil {
				t.Errorf("usage group %q lists -%s, which is not a defined flag", g.title, name)
			}
		}
	}
	fs.VisitAll(func(f *flag.Flag) {
		if _, ok := grouped[f.Name]; !ok {
			t.Errorf("flag -%s is defined but missing from every usage group (add it to flagGroups)", f.Name)
		}
	})
}

// TestBackendFlagValidatesAtParseTime pins the -backend contract: a
// typo dies at flag parsing — before any simulation — with an error
// listing every registered backend, and each registered name parses.
func TestBackendFlagValidatesAtParseTime(t *testing.T) {
	parse := func(args ...string) (*opts, error) {
		fs := flag.NewFlagSet("staggersim", flag.ContinueOnError)
		fs.SetOutput(io.Discard)
		o := defineFlags(fs)
		return o, fs.Parse(args)
	}
	_, err := parse("-backend", "bogus")
	if err == nil {
		t.Fatal("unknown -backend accepted at parse time")
	}
	for _, name := range backend.Names() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("parse error %q does not list registered backend %q", err, name)
		}
	}
	for _, name := range backend.Names() {
		o, err := parse("-backend", name)
		if err != nil {
			t.Fatalf("-backend %s rejected: %v", name, err)
		}
		if *o.backendName != name {
			t.Fatalf("-backend %s parsed as %q", name, *o.backendName)
		}
	}
}

// TestGroupedUsageOutput checks the rendered help mentions each group
// title and each flag name once.
func TestGroupedUsageOutput(t *testing.T) {
	fs := flag.NewFlagSet("staggersim", flag.ContinueOnError)
	defineFlags(fs)
	var buf bytes.Buffer
	fs.SetOutput(&buf)
	groupedUsage(fs)
	help := buf.String()
	for _, g := range flagGroups {
		if !strings.Contains(help, g.title+":") {
			t.Errorf("usage output missing group %q", g.title)
		}
		for _, name := range g.names {
			if !strings.Contains(help, "-"+name) {
				t.Errorf("usage output missing flag -%s", name)
			}
		}
	}
}
