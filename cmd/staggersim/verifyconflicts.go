package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/anchor"
	"repro/internal/harness"
	"repro/internal/stagger"
	"repro/internal/staticcheck"
	"repro/internal/workloads"
)

// finding is one verification violation in machine-readable form; the
// -json output of the verify modes is a stable-sorted array of these, so
// CI can diff artifacts across runs.
type finding struct {
	Bench string   `json:"bench"`
	Check string   `json:"check"`
	AB    int      `json:"ab,omitempty"`
	Site  uint32   `json:"site,omitempty"`
	Msg   string   `json:"msg"`
	Path  []string `json:"path,omitempty"`
}

// findingsOf converts a benchmark's violations to findings.
func findingsOf(bench string, vs []staticcheck.Violation) []finding {
	out := make([]finding, 0, len(vs))
	for _, v := range vs {
		out = append(out, finding{Bench: bench, Check: v.Check, AB: v.AB, Site: v.Site, Msg: v.Msg, Path: v.Path})
	}
	return out
}

// emitFindingsJSON prints the machine-readable verification report:
// mode, pass/fail, and the findings sorted by (bench, check, ab, site,
// msg) so output is byte-stable for identical inputs.
func emitFindingsJSON(mode string, fs []finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Bench != b.Bench {
			return a.Bench < b.Bench
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		if a.AB != b.AB {
			return a.AB < b.AB
		}
		if a.Site != b.Site {
			return a.Site < b.Site
		}
		return a.Msg < b.Msg
	})
	if fs == nil {
		fs = []finding{}
	}
	rep := struct {
		Tool     string    `json:"tool"`
		Mode     string    `json:"mode"`
		OK       bool      `json:"ok"`
		Findings []finding `json:"findings"`
	}{Tool: "staggersim", Mode: mode, OK: len(fs) == 0, Findings: fs}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "staggersim:", err)
		os.Exit(1)
	}
}

// parseSeeds parses the -conflict-seeds list.
func parseSeeds(list string) []int64 {
	var out []int64
	for _, f := range strings.Split(list, ",") {
		s, err := strconv.ParseInt(strings.TrimSpace(f), 10, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "staggersim: bad -conflict-seeds entry %q: %v\n", f, err)
			os.Exit(2)
		}
		out = append(out, s)
	}
	return out
}

// runVerifyConflicts is the -verify-conflicts phase: for every selected
// benchmark it builds the static may-conflict matrix, proves lock
// sufficiency (every may-conflicting block pair has an armable advisory
// lock on all paths) and lock precision (no ALP serializes a provably
// read-only class, modulo the workload's waiver table), then
// cross-validates the matrix dynamically — instrumented runs across the
// -conflict-seeds list must observe only conflicting site pairs the
// matrix contains. The seeded -inject-underlock / -inject-overlock
// mutations demonstrate that the first two checks fail loudly.
func runVerifyConflicts(benchList string, m stagger.Mode, threads, ops int,
	seedList string, naive, underlock, overlock, asJSON bool) {
	names := workloads.Names()
	if benchList != "" {
		names = strings.Split(benchList, ",")
	}
	seeds := parseSeeds(seedList)
	var all []finding
	for _, name := range names {
		name = strings.TrimSpace(name)
		w, err := workloads.Get(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "staggersim:", err)
			os.Exit(2)
		}
		opts := anchor.DefaultOptions()
		opts.Naive = naive
		comp := anchor.Compile(w.Mod, opts)
		// An injection that finds no effective candidate would make the
		// subsequent OK line meaningless, so it is an error: pick a
		// benchmark whose matrix has the class shape the mutation needs
		// (any written class for -inject-underlock, a read-only class
		// with uninstrumented sites for -inject-overlock).
		if underlock {
			site, ok := staticcheck.InjectUnderLock(comp)
			if !ok {
				fmt.Fprintf(os.Stderr, "staggersim: inject-underlock %s: no ALP whose removal uncovers a conflict\n", name)
				os.Exit(2)
			}
			fmt.Fprintf(os.Stderr, "inject-underlock %s: cleared ALP at site %d\n", name, site)
		}
		if overlock {
			site, ok := staticcheck.InjectOverLock(comp)
			if !ok {
				fmt.Fprintf(os.Stderr, "staggersim: inject-overlock %s: no read-only class with an uninstrumented site\n", name)
				os.Exit(2)
			}
			fmt.Fprintf(os.Stderr, "inject-overlock %s: spurious ALP at site %d\n", name, site)
		}
		mc, viols := staticcheck.VerifyConflicts(comp, workloads.ConflictWaivers(name))

		// Dynamic cross-validation: aggregate the conflicting-pair
		// histograms of one short run per seed and check containment once
		// over the deduplicated union.
		runOps := ops
		if runOps == 0 {
			// Enough operations to generate real contention in every
			// block; the full benchmark default would only repeat pairs.
			runOps = 400
		}
		pairSet := make(map[staticcheck.DynPair]bool)
		for _, seed := range seeds {
			res, err := harness.Run(harness.RunConfig{
				Benchmark: name, Mode: m, Threads: threads,
				Seed: seed, TotalOps: runOps, Naive: naive,
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, "staggersim:", err)
				os.Exit(1)
			}
			for p := range res.ConfPairs {
				pairSet[staticcheck.DynPair{VictimAB: p.VictimAB, VictimSite: p.VictimSite,
					KillerAB: p.KillerAB, KillerSite: p.KillerSite}] = true
			}
		}
		pairs := make([]staticcheck.DynPair, 0, len(pairSet))
		for p := range pairSet {
			pairs = append(pairs, p)
		}
		viols = append(viols, staticcheck.CheckConflictPairs(mc, pairs)...)

		if asJSON {
			all = append(all, findingsOf(name, viols)...)
			continue
		}
		if len(viols) == 0 {
			mayPairs := countMayConflictPairs(mc, w)
			fmt.Printf("verify-conflicts %-10s OK: sufficiency, precision, containment (%d classes, %d may-conflict block pairs, %d dynamic pairs over %d seeds)\n",
				name, len(mc.Classes()), mayPairs, len(pairs), len(seeds))
			continue
		}
		for _, v := range viols {
			all = append(all, findingsOf(name, []staticcheck.Violation{v})...)
			fmt.Printf("verify-conflicts %s: %s\n", name, v)
		}
	}
	if asJSON {
		emitFindingsJSON("verify-conflicts", all)
		if len(all) > 0 {
			os.Exit(1)
		}
		return
	}
	if len(all) > 0 {
		fmt.Printf("verify-conflicts: %d violation(s)\n", len(all))
		os.Exit(1)
	}
}

// countMayConflictPairs counts unordered atomic-block pairs (including
// self-pairs: two threads in the same block) the matrix marks as
// possibly conflicting.
func countMayConflictPairs(mc *staticcheck.MayConflict, w *workloads.Workload) int {
	ids := make([]int, 0, len(w.Mod.Atomics))
	for _, ab := range w.Mod.Atomics {
		ids = append(ids, ab.ID)
	}
	sort.Ints(ids)
	n := 0
	for i, a := range ids {
		for _, b := range ids[i:] {
			if mc.MayConflictPair(a, b) {
				n++
			}
		}
	}
	return n
}
