package main

import (
	"fmt"
	"os"
	"strings"

	"repro/internal/anchor"
	"repro/internal/harness"
	"repro/internal/stagger"
	"repro/internal/staticcheck"
	"repro/internal/workloads"
)

// runVerifyStatic is the -verify-static phase: for every selected
// benchmark it proves the three IR-level invariants (anchor-scope
// well-formedness, global lock-acquisition order, access coverage) on
// the compiled anchor tables, then executes a short instrumented run
// with a site recorder installed and checks static/dynamic conformance
// — every dynamically attributed site must exist in the IR with the
// declared access kind and DSA coverage. Any violation prints with
// block/site identity (and a minimal counterexample path for scope
// violations) and the process exits nonzero.
func runVerifyStatic(benchList string, m stagger.Mode, threads int, seed int64, ops int, naive bool) {
	names := workloads.Names()
	if benchList != "" {
		names = strings.Split(benchList, ",")
	}
	bad := 0
	for _, name := range names {
		name = strings.TrimSpace(name)
		w, err := workloads.Get(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "staggersim:", err)
			os.Exit(2)
		}
		opts := anchor.DefaultOptions()
		opts.Naive = naive
		comp := anchor.Compile(w.Mod, opts)
		static := staticcheck.Verify(comp)

		rec := staticcheck.NewConformance()
		runOps := ops
		if runOps == 0 {
			// A slice of the benchmark is enough to exercise every
			// atomic block; the full default would just repeat sites.
			runOps = 200
		}
		res, err := harness.Run(harness.RunConfig{
			Benchmark:    name,
			Mode:         m,
			Threads:      threads,
			Seed:         seed,
			TotalOps:     runOps,
			Naive:        naive,
			SiteRecorder: rec,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "staggersim:", err)
			os.Exit(1)
		}
		dynamic := rec.Check(res.Compiled)

		if len(static)+len(dynamic) == 0 {
			fmt.Printf("verify-static %-10s OK: anchor-scope, lock-order, coverage, conformance (%d blocks, %d dynamic site obs)\n",
				name, len(w.Mod.Atomics), rec.Observations())
			continue
		}
		for _, v := range append(static, dynamic...) {
			bad++
			fmt.Printf("verify-static %s: %s\n", name, v)
		}
	}
	if bad > 0 {
		fmt.Printf("verify-static: %d violation(s)\n", bad)
		os.Exit(1)
	}
}
