package main

import (
	"fmt"
	"os"
	"strings"

	"repro/internal/anchor"
	"repro/internal/harness"
	"repro/internal/stagger"
	"repro/internal/staticcheck"
	"repro/internal/workloads"
)

// runVerifyStatic is the -verify-static phase: for every selected
// benchmark it proves the three IR-level invariants (anchor-scope
// well-formedness, global lock-acquisition order, access coverage) on
// the compiled anchor tables, then executes a short instrumented run
// with a site recorder installed and checks static/dynamic conformance
// — every dynamically attributed site must exist in the IR with the
// declared access kind and DSA coverage. Any violation prints with
// block/site identity (and a minimal counterexample path for scope
// violations) and the process exits nonzero.
func runVerifyStatic(benchList string, m stagger.Mode, threads int, seed int64, ops int, naive, asJSON bool) {
	names := workloads.Names()
	if benchList != "" {
		names = strings.Split(benchList, ",")
	}
	var all []finding
	for _, name := range names {
		name = strings.TrimSpace(name)
		w, err := workloads.Get(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "staggersim:", err)
			os.Exit(2)
		}
		opts := anchor.DefaultOptions()
		opts.Naive = naive
		comp := anchor.Compile(w.Mod, opts)
		static := staticcheck.Verify(comp)

		rec := staticcheck.NewConformance()
		runOps := ops
		if runOps == 0 {
			// A slice of the benchmark is enough to exercise every
			// atomic block; the full default would just repeat sites.
			runOps = 200
		}
		res, err := harness.Run(harness.RunConfig{
			Benchmark:    name,
			Mode:         m,
			Threads:      threads,
			Seed:         seed,
			TotalOps:     runOps,
			Naive:        naive,
			SiteRecorder: rec,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "staggersim:", err)
			os.Exit(1)
		}
		dynamic := rec.Check(res.Compiled)

		viols := append(static, dynamic...)
		if asJSON {
			all = append(all, findingsOf(name, viols)...)
			continue
		}
		if len(viols) == 0 {
			fmt.Printf("verify-static %-10s OK: anchor-scope, lock-order, coverage, conformance (%d blocks, %d dynamic site obs)\n",
				name, len(w.Mod.Atomics), rec.Observations())
			continue
		}
		for _, v := range viols {
			all = append(all, findingsOf(name, []staticcheck.Violation{v})...)
			fmt.Printf("verify-static %s: %s\n", name, v)
		}
	}
	if asJSON {
		emitFindingsJSON("verify-static", all)
		if len(all) > 0 {
			os.Exit(1)
		}
		return
	}
	if len(all) > 0 {
		fmt.Printf("verify-static: %d violation(s)\n", len(all))
		os.Exit(1)
	}
}
