// Command staggersim runs one benchmark under one system configuration
// and prints detailed statistics: commits, aborts by reason, cycle
// breakdown, locking-policy activations, and instrumentation accuracy.
// Flags are grouped by task in -h; every group below has a matching
// section in the usage text.
//
// Usage:
//
//	staggersim -bench list-hi -mode staggered -threads 16
//	staggersim -bench tsp -mode htm -threads 1 -ops 2000
//
// Observability (metrics JSON and Perfetto timelines, internal/obs):
//
//	staggersim -bench list-hi -metrics > run.json
//	staggersim -bench list-hi -trace-out run-trace.json
//	staggersim -sched replay:fail.trace -trace-out fail-timeline.json
//
// Fault injection (all deterministic in -seed):
//
//	staggersim -bench list-hi -chaos 0.01 -hardened
//	staggersim -chaos-campaign -chaos-rates 0,0.002,0.01,0.05 -ops 240
//
// Schedule exploration (adversarial scheduling + serializability oracle):
//
//	staggersim -bench intruder -explore -explore-runs 100 -sched pct:3 -minimize
//	staggersim -bench list-hi -sched random -sched-seed 7 -oracle -record fail.trace
//	staggersim -sched replay:fail.trace -oracle
//
// Static verification (IR-level invariants + static/dynamic conformance):
//
//	staggersim -verify-static
//	staggersim -verify-static -bench vacation,tsp -naive
//	staggersim -verify-conflicts -json
//	staggersim -verify-conflicts -bench list-hi -inject-underlock
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"

	"repro/internal/backend"
	"repro/internal/chaos"
	"repro/internal/harness"
	"repro/internal/htm"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/stagger"
	"repro/internal/workloads"
)

// flagGroups organizes -h output by task. Every flag defined in main
// must appear in exactly one group (TestUsageCoversEveryFlag enforces
// it, so adding a flag without documenting it fails the build's tests).
var flagGroups = []struct {
	title string
	names []string
}{
	{"Run selection", []string{"bench", "mode", "backend", "capacity", "threads", "seed", "ops", "naive", "lazy", "speedup", "workers"}},
	{"Observability", []string{"metrics", "trace", "trace-out"}},
	{"Fault injection and hardening", []string{"chaos", "chaos-abort", "chaos-ntdelay", "chaos-lockdrop",
		"chaos-jitter", "hardened", "watchdog", "chaos-campaign", "chaos-rates"}},
	{"Scheduling and exploration", []string{"sched", "sched-seed", "oracle", "record", "explore",
		"explore-runs", "minimize", "explore-out", "unsafe-early-release"}},
	{"Static verification", []string{"verify-static", "verify-conflicts", "conflict-seeds", "json",
		"inject-drift", "inject-underlock", "inject-overlock"}},
}

// groupedUsage prints the grouped flag reference.
func groupedUsage(fs *flag.FlagSet) {
	o := fs.Output()
	fmt.Fprintf(o, "Usage: staggersim [flags]\n")
	fmt.Fprintf(o, "Runs one benchmark under one system configuration and prints detailed\n")
	fmt.Fprintf(o, "statistics; campaign flags switch to fault sweeps, schedule exploration,\n")
	fmt.Fprintf(o, "or static verification. Run without -bench to list benchmarks.\n")
	for _, g := range flagGroups {
		fmt.Fprintf(o, "\n%s:\n", g.title)
		for _, name := range g.names {
			f := fs.Lookup(name)
			if f == nil {
				continue
			}
			def := ""
			if f.DefValue != "" && f.DefValue != "false" && f.DefValue != "0" {
				def = fmt.Sprintf(" (default %s)", f.DefValue)
			}
			fmt.Fprintf(o, "  -%-21s %s%s\n", f.Name, f.Usage, def)
		}
	}
}

func parseMode(s string) (stagger.Mode, error) { return stagger.ParseMode(s) }

// opts holds every parsed flag. defineFlags registers all of them on
// one FlagSet, so main (via flag.CommandLine) and the usage-coverage
// test (via a scratch FlagSet) share a single definition of the
// command's surface — a new flag that is not also placed in flagGroups
// fails the test instead of silently missing from -h.
type opts struct {
	bench, mode                                         *string
	backendName                                         *string
	capacity                                            *int
	threads                                             *int
	seed                                                *int64
	ops                                                 *int
	naive, lazy                                         *bool
	trace                                               *int
	metricsOut                                          *bool
	traceOut                                            *string
	speedup                                             *bool
	chaosRate, chaosAbort, chaosNT, chaosDrop, chaosJit *float64
	hardened                                            *bool
	watchdog                                            *uint64
	campaign                                            *bool
	rates, schedSpec                                    *string
	schedSeed                                           *int64
	oracleOn                                            *bool
	record                                              *string
	explore                                             *bool
	exploreRuns                                         *int
	minimize                                            *bool
	exploreOut                                          *string
	unsafeEarly, verifyStatic, injectDrift              *bool
	verifyConflicts                                     *bool
	conflictSeeds                                       *string
	jsonOut                                             *bool
	injectUnder, injectOver                             *bool
	workers                                             *int
}

func defineFlags(fs *flag.FlagSet) *opts {
	o := &opts{
		bench:       fs.String("bench", "", "benchmark name (empty: list them)"),
		mode:        fs.String("mode", "staggered", "system: htm | addronly | sw | staggered"),
		capacity:    fs.Int("capacity", 0, "speculative line capacity for -backend limited (0 = backend default)"),
		threads:     fs.Int("threads", 16, "worker threads"),
		seed:        fs.Int64("seed", 42, "workload seed"),
		ops:         fs.Int("ops", 0, "total operations (0 = benchmark default)"),
		naive:       fs.Bool("naive", false, "instrument every load/store (overhead study)"),
		lazy:        fs.Bool("lazy", false, "lazy (commit-time) conflict detection"),
		trace:       fs.Int("trace", 0, "print the first N transaction events (-1 = record all, print none)"),
		metricsOut:  fs.Bool("metrics", false, "print the run's metrics report as stable-sorted JSON instead of the summary"),
		traceOut:    fs.String("trace-out", "", "write a Chrome trace-event (Perfetto-loadable) timeline to this file; in -explore, a per-failure timeline next to each -explore-out trace"),
		speedup:     fs.Bool("speedup", false, "also run 1-thread baseline and report speedup"),
		chaosRate:   fs.Float64("chaos", 0, "inject every fault class at this rate (0 = off)"),
		chaosAbort:  fs.Float64("chaos-abort", 0, "spurious-abort rate (overrides -chaos)"),
		chaosNT:     fs.Float64("chaos-ntdelay", 0, "NT-store delay rate (overrides -chaos)"),
		chaosDrop:   fs.Float64("chaos-lockdrop", 0, "lost-lock-release rate (overrides -chaos)"),
		chaosJit:    fs.Float64("chaos-jitter", 0, "per-core stall-jitter rate (overrides -chaos)"),
		hardened:    fs.Bool("hardened", false, "run the self-healing runtime config (leases, jitter, exp backoff, livelock escape)"),
		watchdog:    fs.Uint64("watchdog", 0, "fail loudly past this many virtual cycles (0 = none)"),
		campaign:    fs.Bool("chaos-campaign", false, "sweep fault rates across benchmarks and print degradation curves"),
		rates:       fs.String("chaos-rates", "", "comma-separated fault rates for -chaos-campaign"),
		schedSpec:   fs.String("sched", "", "adversarial scheduler: random | pct:<d> | replay:<file> (optionally @<window>)"),
		schedSeed:   fs.Int64("sched-seed", 0, "scheduler seed (0 = workload seed)"),
		oracleOn:    fs.Bool("oracle", false, "check every commit against the serializability oracle"),
		record:      fs.String("record", "", "write the run's schedule trace to this file (needs -sched)"),
		explore:     fs.Bool("explore", false, "run a schedule-exploration campaign (many seeds of -sched, oracle on)"),
		exploreRuns: fs.Int("explore-runs", 100, "schedules per benchmark for -explore"),
		minimize:    fs.Bool("minimize", false, "delta-debug each failing schedule found by -explore"),
		exploreOut:  fs.String("explore-out", "", "directory for failing-schedule trace files (empty: don't write)"),
		unsafeEarly: fs.Bool("unsafe-early-release", false, "enable the test-only broken irrevocable fallback (demo: -explore catches it)"),
		verifyStatic: fs.Bool("verify-static", false,
			"verify anchor-scope, lock-order, coverage, and static/dynamic conformance (all benchmarks unless -bench)"),
		injectDrift: fs.Bool("inject-drift", false, "enable the test-only vacation IR-drift mutation (demo: -verify-static catches it)"),
		verifyConflicts: fs.Bool("verify-conflicts", false,
			"verify lock sufficiency, lock precision, and dynamic conflict-pair containment over the static may-conflict matrix (all benchmarks unless -bench)"),
		conflictSeeds: fs.String("conflict-seeds", "42,43,44",
			"comma-separated workload seeds for the dynamic containment runs of -verify-conflicts"),
		jsonOut: fs.Bool("json", false, "print verify-mode findings as stable-sorted JSON (for -verify-static / -verify-conflicts)"),
		injectUnder: fs.Bool("inject-underlock", false,
			"seed an under-lock mutation: clear one effective ALP (demo: -verify-conflicts sufficiency catches it)"),
		injectOver: fs.Bool("inject-overlock", false,
			"seed an over-lock mutation: add one spurious ALP on a read-only class (demo: -verify-conflicts precision catches it)"),
		workers: fs.Int("workers", runtime.NumCPU(),
			"max concurrent simulation runs in campaigns (1 = sequential; output is identical either way)"),
	}
	// -backend validates at parse time: a typo fails with the registry's
	// name list before any simulation starts.
	o.backendName = new(string)
	fs.Func("backend", "concurrency-control backend: "+strings.Join(backend.Names(), " | ")+
		" (empty: the pre-arena runtime under -mode)", func(s string) error {
		if _, err := backend.Get(s); err != nil {
			return err
		}
		*o.backendName = s
		return nil
	})
	return o
}

func main() {
	o := defineFlags(flag.CommandLine)
	bench, mode, threads, seed, ops := o.bench, o.mode, o.threads, o.seed, o.ops
	naive, lazy, trace, metricsOut, traceOut := o.naive, o.lazy, o.trace, o.metricsOut, o.traceOut
	speedup, hardened, watchdog := o.speedup, o.hardened, o.watchdog
	chaosRate, chaosAbort, chaosNT, chaosDrop, chaosJit := o.chaosRate, o.chaosAbort, o.chaosNT, o.chaosDrop, o.chaosJit
	campaign, rates := o.campaign, o.rates
	schedSpec, schedSeed, oracleOn, record := o.schedSpec, o.schedSeed, o.oracleOn, o.record
	explore, exploreRuns, minimize, exploreOut := o.explore, o.exploreRuns, o.minimize, o.exploreOut
	unsafeEarly, verifyStatic, injectDrift, workers := o.unsafeEarly, o.verifyStatic, o.injectDrift, o.workers
	flag.Usage = func() { groupedUsage(flag.CommandLine) }
	flag.Parse()
	harness.SetWorkers(*workers)

	workloads.DriftVacationKind = *injectDrift
	if *verifyStatic {
		m, err := parseMode(*mode)
		if err != nil {
			fmt.Fprintln(os.Stderr, "staggersim:", err)
			os.Exit(2)
		}
		runVerifyStatic(*bench, m, *threads, *seed, *ops, *naive, *o.jsonOut)
		return
	}
	if *o.verifyConflicts {
		m, err := parseMode(*mode)
		if err != nil {
			fmt.Fprintln(os.Stderr, "staggersim:", err)
			os.Exit(2)
		}
		runVerifyConflicts(*bench, m, *threads, *ops, *o.conflictSeeds,
			*naive, *o.injectUnder, *o.injectOver, *o.jsonOut)
		return
	}

	if *campaign {
		runCampaign(*bench, *mode, *threads, *seed, *ops, *watchdog, *rates)
		return
	}
	ccfg := chaos.Scaled(*chaosRate, *seed)
	if *chaosAbort > 0 {
		ccfg.AbortRate = *chaosAbort
	}
	if *chaosNT > 0 {
		ccfg.NTDelayRate = *chaosNT
	}
	if *chaosDrop > 0 {
		ccfg.LockDropRate = *chaosDrop
	}
	if *chaosJit > 0 {
		ccfg.JitterRate = *chaosJit
	}
	var cp *chaos.Config
	if ccfg.Enabled() {
		cp = &ccfg
	}

	if *explore {
		runExplore(*bench, *mode, *o.backendName, *o.capacity, *threads, *seed, *ops, *schedSpec,
			*exploreRuns, *minimize, *exploreOut, *traceOut, *unsafeEarly, *hardened, cp)
		return
	}

	// Replaying a trace file reproduces its run: the header supplies the
	// benchmark, mode, thread count, and seeds unless flags override them.
	if spec, err := sched.Parse(*schedSpec); *schedSpec != "" && err == nil && spec.Kind == "replay" {
		if tr, err := sched.ReadTraceFile(spec.File); err == nil {
			set := map[string]bool{}
			flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
			if !set["bench"] {
				*bench = tr.Bench
			}
			if !set["mode"] {
				*mode = tr.Mode
			}
			if !set["threads"] {
				*threads = tr.Threads
			}
			if !set["seed"] {
				*seed = tr.WlSeed
			}
			if !set["ops"] {
				*ops = tr.Ops
			}
		}
	}

	if *bench == "" {
		fmt.Println("available benchmarks:")
		for _, n := range workloads.Names() {
			w, _ := workloads.Get(n)
			fmt.Printf("  %-10s %s\n", n, w.Description)
		}
		fmt.Println("\navailable backends (-backend):")
		for _, line := range backend.Summaries() {
			fmt.Printf("  %s\n", line)
		}
		return
	}
	m, err := parseMode(*mode)
	if err != nil {
		fmt.Fprintln(os.Stderr, "staggersim:", err)
		os.Exit(2)
	}
	rc := harness.RunConfig{
		Benchmark:          *bench,
		Mode:               m,
		Backend:            *o.backendName,
		Capacity:           *o.capacity,
		Threads:            *threads,
		Seed:               *seed,
		TotalOps:           *ops,
		Naive:              *naive,
		Lazy:               *lazy,
		TraceN:             *trace,
		Watchdog:           *watchdog,
		Sched:              *schedSpec,
		SchedSeed:          *schedSeed,
		Record:             *record != "",
		Oracle:             *oracleOn,
		UnsafeEarlyRelease: *unsafeEarly,
	}
	if *record != "" && *schedSpec == "" {
		fmt.Fprintln(os.Stderr, "staggersim: -record needs -sched (there is no schedule to record otherwise)")
		os.Exit(2)
	}
	rc.Chaos = cp
	if *hardened {
		scfg := stagger.HardenedConfig(m)
		rc.Stagger = &scfg
	}
	if *traceOut != "" {
		if rc.TraceN == 0 {
			rc.TraceN = -1 // whole run
		}
		rc.ExtTrace = true
	}
	res, err := harness.Run(rc)
	if err != nil {
		fmt.Fprintln(os.Stderr, "staggersim:", err)
		os.Exit(1)
	}
	if *metricsOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(obs.Snapshot(res)); err != nil {
			fmt.Fprintln(os.Stderr, "staggersim:", err)
			os.Exit(1)
		}
	} else {
		printResult(res)
	}
	if *traceOut != "" {
		meta := obs.TraceMeta{
			Benchmark: rc.Benchmark, Mode: m.String(), Threads: rc.Threads,
			Seed: rc.Seed, Sched: rc.Sched, SchedSeed: rc.SchedSeed,
			Extra: map[string]string{},
		}
		if cp != nil {
			meta.Extra["chaos"] = fmt.Sprintf("abort=%g ntdelay=%g lockdrop=%g jitter=%g",
				cp.AbortRate, cp.NTDelayRate, cp.LockDropRate, cp.JitterRate)
		}
		if err := writeTraceFile(*traceOut, meta, res.Trace); err != nil {
			fmt.Fprintln(os.Stderr, "staggersim:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "trace       %d events -> %s (load in Perfetto or chrome://tracing)\n",
			len(res.Trace), *traceOut)
	}
	if *speedup {
		s, _, err := harness.Speedup(rc)
		if err != nil {
			fmt.Fprintln(os.Stderr, "staggersim:", err)
			os.Exit(1)
		}
		fmt.Printf("\nspeedup over 1-thread sequential: %.2fx\n", s)
	}
	if *trace > 0 && len(res.Trace) > 0 {
		fmt.Printf("\ntrace (first %d events):\n%s", len(res.Trace), htm.FormatTrace(res.Trace))
	}
	if *record != "" {
		spec, _ := sched.Parse(*schedSpec)
		ss := *schedSeed
		if ss == 0 {
			ss = *seed
		}
		tr := &sched.Trace{
			Version: sched.TraceVersion,
			Spec:    *schedSpec,
			Seed:    ss,
			Bench:   *bench,
			Mode:    m.String(),
			Threads: *threads,
			WlSeed:  *seed,
			Ops:     *ops,
			Window:  spec.Window,
			Picks:   res.SchedPicks,
		}
		if err := tr.WriteFile(*record); err != nil {
			fmt.Fprintln(os.Stderr, "staggersim:", err)
			os.Exit(1)
		}
		fmt.Printf("recorded    %d scheduler decisions -> %s\n", len(res.SchedPicks), *record)
	}
	failed := false
	if res.VerifyErr != nil {
		fmt.Fprintln(os.Stderr, "VERIFY FAILED:", res.VerifyErr)
		failed = true
	}
	if res.OracleErr != nil {
		fmt.Fprintln(os.Stderr, "ORACLE FAILED:", res.OracleErr)
		failed = true
	}
	if failed {
		os.Exit(1)
	}
}

// runExplore drives a schedule-exploration campaign over one or more
// benchmarks (comma-separated), printing a per-benchmark summary and
// exiting nonzero if any schedule produced a violation.
func runExplore(benchList, mode, backendName string, capacity, threads int, seed int64, ops int,
	spec string, runs int, minimize bool, outDir, traceOut string, unsafeEarly, hardened bool,
	ccfg *chaos.Config) {
	m, err := parseMode(mode)
	if err != nil {
		fmt.Fprintln(os.Stderr, "staggersim:", err)
		os.Exit(2)
	}
	if benchList == "" {
		fmt.Fprintln(os.Stderr, "staggersim: -explore needs -bench (comma-separated list accepted)")
		os.Exit(2)
	}
	anyFail := false
	for _, bench := range strings.Split(benchList, ",") {
		bench = strings.TrimSpace(bench)
		ec := harness.ExploreConfig{
			Benchmark:          bench,
			Mode:               m,
			Backend:            backendName,
			Capacity:           capacity,
			Threads:            threads,
			Seed:               seed,
			TotalOps:           ops,
			Chaos:              ccfg,
			Spec:               spec,
			Runs:               runs,
			Minimize:           minimize,
			UnsafeEarlyRelease: unsafeEarly,
		}
		if hardened {
			scfg := stagger.HardenedConfig(m)
			ec.Stagger = &scfg
		}
		rep, err := harness.Explore(ec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "staggersim:", err)
			os.Exit(1)
		}
		fmt.Printf("%-10s %s %2d threads: %d schedules, %d commits validated, %d failures\n",
			bench, m, threads, rep.Runs, rep.Commits, len(rep.Failures))
		for i, f := range rep.Failures {
			anyFail = true
			fmt.Printf("  failure %d (sched seed %d, %d decisions", i, f.SchedSeed, len(f.Picks))
			if f.Minimized != nil {
				fmt.Printf(", minimized to %d in %d probes", len(f.Minimized), f.Probes)
			}
			fmt.Printf("): %v\n", f.Err)
			if outDir != "" {
				path := fmt.Sprintf("%s/%s-fail-%d.trace", outDir, bench, i)
				if err := f.Trace(ec).WriteFile(path); err != nil {
					fmt.Fprintln(os.Stderr, "staggersim:", err)
				} else {
					fmt.Printf("    trace -> %s (replay with -sched replay:%s)\n", path, path)
				}
			}
			if traceOut != "" {
				path := fmt.Sprintf("%s-%s-fail-%d.json", strings.TrimSuffix(traceOut, ".json"), bench, i)
				if err := exportFailureTimeline(ec, &f, path); err != nil {
					fmt.Fprintln(os.Stderr, "staggersim:", err)
				} else {
					fmt.Printf("    timeline -> %s (load in Perfetto)\n", path)
				}
			}
		}
	}
	if anyFail {
		os.Exit(1)
	}
}

// exportFailureTimeline replays one exploration failure with extended
// tracing and writes its Perfetto timeline. Replay uses the recorded
// decision sequence (the minimized prefix when available), so the
// timeline shows exactly the schedule the minimizer reduced the failure
// to — tagged with the seeds needed to regenerate it from scratch.
func exportFailureTimeline(ec harness.ExploreConfig, f *harness.ExploreFailure, path string) error {
	spec, err := sched.Parse(exploreSpecOf(ec))
	if err != nil {
		return err
	}
	picks := f.Picks
	tag := "full"
	if f.Minimized != nil {
		picks = f.Minimized
		tag = "minimized"
	}
	rc := harness.RunConfig{
		Benchmark:          ec.Benchmark,
		Mode:               ec.Mode,
		Backend:            ec.Backend,
		Capacity:           ec.Capacity,
		Threads:            ec.Threads,
		Seed:               ec.Seed,
		TotalOps:           ec.TotalOps,
		Stagger:            ec.Stagger,
		Chaos:              ec.Chaos,
		Sched:              exploreSpecOf(ec),
		ReplayPicks:        picks,
		UnsafeEarlyRelease: ec.UnsafeEarlyRelease,
		TraceN:             -1,
		ExtTrace:           true,
	}
	res, err := harness.Run(rc)
	if err != nil {
		return err
	}
	meta := obs.TraceMeta{
		Benchmark: ec.Benchmark, Mode: ec.Mode.String(), Threads: ec.Threads,
		Seed: ec.Seed, Sched: exploreSpecOf(ec), SchedSeed: f.SchedSeed,
		Extra: map[string]string{
			"failure":        f.Err.Error(),
			"replay":         tag,
			"decision_count": fmt.Sprint(len(picks)),
			"window":         fmt.Sprint(spec.Window),
		},
	}
	return writeTraceFile(path, meta, res.Trace)
}

// exploreSpecOf mirrors the harness's default scheduler spec for
// exploration campaigns.
func exploreSpecOf(ec harness.ExploreConfig) string {
	if ec.Spec == "" {
		return "pct:3"
	}
	return ec.Spec
}

// writeTraceFile exports events as a Chrome trace-event file.
func writeTraceFile(path string, meta obs.TraceMeta, events []htm.TraceEvent) error {
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.WriteTrace(out, meta, events); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}

// runCampaign sweeps fault rates across benchmarks under the hardened
// runtime and prints graceful-degradation curves.
func runCampaign(bench, mode string, threads int, seed int64, ops int, watchdog uint64, rateList string) {
	m, err := parseMode(mode)
	if err != nil {
		fmt.Fprintln(os.Stderr, "staggersim:", err)
		os.Exit(2)
	}
	cs := harness.ChaosSweep{
		Mode:     m,
		Threads:  threads,
		Seed:     seed,
		TotalOps: ops,
		Watchdog: watchdog,
	}
	if bench != "" {
		cs.Benchmarks = strings.Split(bench, ",")
	}
	if rateList != "" {
		for _, f := range strings.Split(rateList, ",") {
			r, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "staggersim: bad -chaos-rates entry %q: %v\n", f, err)
				os.Exit(2)
			}
			cs.Rates = append(cs.Rates, r)
		}
	}
	cells, err := harness.RunChaosSweep(cs)
	fmt.Print(harness.FormatChaos(cells))
	if err != nil {
		fmt.Fprintln(os.Stderr, "staggersim:", err)
		os.Exit(1)
	}
}

func printResult(r *harness.Result) {
	s := &r.Stats
	sys := r.Config.Mode.String()
	if r.Config.Backend != "" {
		sys = "backend " + r.Config.Backend + ", " + sys
	}
	fmt.Printf("benchmark   %s  (%s, %d threads, seed %d)\n",
		r.Config.Benchmark, sys, r.Config.Threads, r.Config.Seed)
	fmt.Printf("makespan    %d cycles\n", s.Makespan)
	fmt.Printf("commits     %d  (irrevocable %d = %.1f%%)\n",
		s.Commits, s.IrrevocableCommits, 100*s.IrrevocableFraction())
	fmt.Printf("aborts      %d total (%.2f per commit): conflict %d, overflow %d, explicit %d, lock-held %d, spurious %d\n",
		s.TotalAborts(), s.AbortsPerCommit(),
		s.Aborts[htm.AbortConflict], s.Aborts[htm.AbortOverflow],
		s.Aborts[htm.AbortExplicit], s.Aborts[htm.AbortLockHeld],
		s.Aborts[htm.AbortSpurious])
	fmt.Printf("cycles      useful-tx %d, wasted-tx %d (W/U %.2f)\n",
		s.UsefulTxCycles, s.WastedTxCycles, s.WastedOverUseful())
	fmt.Printf("waiting     lock %d, backoff %d, global %d, fault %d\n",
		s.WaitCycles[htm.WaitLock], s.WaitCycles[htm.WaitBackoff],
		s.WaitCycles[htm.WaitGlobal], s.WaitCycles[htm.WaitFault])
	if r.Faults.Total() > 0 {
		fmt.Printf("chaos       injected: aborts %d, nt-delays %d, lock-drops %d, jitters %d\n",
			r.Faults.Aborts, r.Faults.NTDelays, r.Faults.LockDrops, r.Faults.Jitters)
		fmt.Printf("recovery    locks reclaimed %d, lock timeouts %d, livelock escapes %d\n",
			r.Metrics.LocksReclaimed, r.Metrics.LockTimeouts, r.Metrics.LivelockEscapes)
	}
	fmt.Printf("tm fraction %.1f%% of cycles, %.0f tx-uops per txn\n",
		100*r.TMFraction(), r.UopsPerTxn())
	fmt.Printf("memory      L1 %d, L2 %d, L3/transfer %d, DRAM %d\n",
		s.L1Hits, s.L2Hits, s.L3Hits, s.MemAccesses)
	if r.Config.Mode.Instrumented() {
		mt := &r.Metrics
		fmt.Printf("compiler    %d/%d loads+stores instrumented as anchors\n",
			r.StaticAnchors, r.StaticAccesses)
		fmt.Printf("alps        %d visits (%.1f per txn), %d locks acquired, %d timeouts\n",
			mt.ALPVisits, r.AnchorsPerTxn(), mt.LocksAcquired, mt.LockTimeouts)
		fmt.Printf("policy      precise %d, coarse %d, promote %d, training %d\n",
			mt.ActPrecise, mt.ActCoarse, mt.ActPromote, mt.ActTraining)
		fmt.Printf("accuracy    %.1f%% (%d/%d), sw-misses %d\n",
			100*mt.Accuracy(), mt.AccHits, mt.AccTotal, mt.SWMisses)
	}
	fmt.Printf("locality    LA=%v LP=%v\n", r.LA, r.LP)
	ids := make([]int, 0, len(r.PerAB))
	for id := range r.PerAB {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		m := r.PerAB[id]
		fmt.Printf("  ab %-18s commits %5d, conf %5d, deep %4d | precise %4d coarse %4d promote %4d training %4d\n",
			m.Name, m.Commits, m.ConfAborts, m.Deep, m.Precise, m.Coarse, m.Promote, m.Training)
	}
	if r.VerifyErr == nil {
		fmt.Println("verify      OK")
	}
	if r.Config.Oracle && r.OracleErr == nil {
		fmt.Printf("oracle      OK (%d commits serializable)\n", r.OracleCommits)
	}
}
