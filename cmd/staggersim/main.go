// Command staggersim runs one benchmark under one system configuration
// and prints detailed statistics: commits, aborts by reason, cycle
// breakdown, locking-policy activations, and instrumentation accuracy.
//
// Usage:
//
//	staggersim -bench list-hi -mode staggered -threads 16
//	staggersim -bench tsp -mode htm -threads 1 -ops 2000 -v
//
// Fault injection (all deterministic in -seed):
//
//	staggersim -bench list-hi -chaos 0.01 -hardened
//	staggersim -chaos-campaign -chaos-rates 0,0.002,0.01,0.05 -ops 240
//
// Schedule exploration (adversarial scheduling + serializability oracle):
//
//	staggersim -bench intruder -explore -explore-runs 100 -sched pct:3 -minimize
//	staggersim -bench list-hi -sched random -sched-seed 7 -oracle -record fail.trace
//	staggersim -sched replay:fail.trace -oracle
//
// Static verification (IR-level invariants + static/dynamic conformance):
//
//	staggersim -verify-static
//	staggersim -verify-static -bench vacation,tsp -naive
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"

	"repro/internal/chaos"
	"repro/internal/harness"
	"repro/internal/htm"
	"repro/internal/sched"
	"repro/internal/stagger"
	"repro/internal/workloads"
)

func parseMode(s string) (stagger.Mode, error) {
	switch strings.ToLower(s) {
	case "htm":
		return stagger.ModeHTM, nil
	case "addronly":
		return stagger.ModeAddrOnly, nil
	case "staggered+sw", "staggeredsw", "sw":
		return stagger.ModeStaggeredSW, nil
	case "staggered", "staggeredhw", "hw":
		return stagger.ModeStaggeredHW, nil
	default:
		return 0, fmt.Errorf("unknown mode %q (htm, addronly, sw, staggered)", s)
	}
}

func main() {
	bench := flag.String("bench", "", "benchmark name (empty: list them)")
	mode := flag.String("mode", "staggered", "system: htm | addronly | sw | staggered")
	threads := flag.Int("threads", 16, "worker threads")
	seed := flag.Int64("seed", 42, "workload seed")
	ops := flag.Int("ops", 0, "total operations (0 = benchmark default)")
	naive := flag.Bool("naive", false, "instrument every load/store (overhead study)")
	lazy := flag.Bool("lazy", false, "lazy (commit-time) conflict detection")
	trace := flag.Int("trace", 0, "print the first N transaction events")
	speedup := flag.Bool("speedup", false, "also run 1-thread baseline and report speedup")
	chaosRate := flag.Float64("chaos", 0, "inject every fault class at this rate (0 = off)")
	chaosAbort := flag.Float64("chaos-abort", 0, "spurious-abort rate (overrides -chaos)")
	chaosNT := flag.Float64("chaos-ntdelay", 0, "NT-store delay rate (overrides -chaos)")
	chaosDrop := flag.Float64("chaos-lockdrop", 0, "lost-lock-release rate (overrides -chaos)")
	chaosJit := flag.Float64("chaos-jitter", 0, "per-core stall-jitter rate (overrides -chaos)")
	hardened := flag.Bool("hardened", false, "run the self-healing runtime config (leases, jitter, exp backoff, livelock escape)")
	watchdog := flag.Uint64("watchdog", 0, "fail loudly past this many virtual cycles (0 = none)")
	campaign := flag.Bool("chaos-campaign", false, "sweep fault rates across benchmarks and print degradation curves")
	rates := flag.String("chaos-rates", "", "comma-separated fault rates for -chaos-campaign")
	schedSpec := flag.String("sched", "", "adversarial scheduler: random | pct:<d> | replay:<file> (optionally @<window>)")
	schedSeed := flag.Int64("sched-seed", 0, "scheduler seed (0 = workload seed)")
	oracleOn := flag.Bool("oracle", false, "check every commit against the serializability oracle")
	record := flag.String("record", "", "write the run's schedule trace to this file (needs -sched)")
	explore := flag.Bool("explore", false, "run a schedule-exploration campaign (many seeds of -sched, oracle on)")
	exploreRuns := flag.Int("explore-runs", 100, "schedules per benchmark for -explore")
	minimize := flag.Bool("minimize", false, "delta-debug each failing schedule found by -explore")
	exploreOut := flag.String("explore-out", "", "directory for failing-schedule trace files (empty: don't write)")
	unsafeEarly := flag.Bool("unsafe-early-release", false, "enable the test-only broken irrevocable fallback (demo: -explore catches it)")
	verifyStatic := flag.Bool("verify-static", false, "verify anchor-scope, lock-order, coverage, and static/dynamic conformance (all benchmarks unless -bench)")
	injectDrift := flag.Bool("inject-drift", false, "enable the test-only vacation IR-drift mutation (demo: -verify-static catches it)")
	workers := flag.Int("workers", runtime.NumCPU(),
		"max concurrent simulation runs in campaigns (1 = sequential; output is identical either way)")
	flag.Parse()
	harness.SetWorkers(*workers)

	workloads.DriftVacationKind = *injectDrift
	if *verifyStatic {
		m, err := parseMode(*mode)
		if err != nil {
			fmt.Fprintln(os.Stderr, "staggersim:", err)
			os.Exit(2)
		}
		runVerifyStatic(*bench, m, *threads, *seed, *ops, *naive)
		return
	}

	if *campaign {
		runCampaign(*bench, *mode, *threads, *seed, *ops, *watchdog, *rates)
		return
	}
	ccfg := chaos.Scaled(*chaosRate, *seed)
	if *chaosAbort > 0 {
		ccfg.AbortRate = *chaosAbort
	}
	if *chaosNT > 0 {
		ccfg.NTDelayRate = *chaosNT
	}
	if *chaosDrop > 0 {
		ccfg.LockDropRate = *chaosDrop
	}
	if *chaosJit > 0 {
		ccfg.JitterRate = *chaosJit
	}
	var cp *chaos.Config
	if ccfg.Enabled() {
		cp = &ccfg
	}

	if *explore {
		runExplore(*bench, *mode, *threads, *seed, *ops, *schedSpec,
			*exploreRuns, *minimize, *exploreOut, *unsafeEarly, *hardened, cp)
		return
	}

	// Replaying a trace file reproduces its run: the header supplies the
	// benchmark, mode, thread count, and seeds unless flags override them.
	if spec, err := sched.Parse(*schedSpec); *schedSpec != "" && err == nil && spec.Kind == "replay" {
		if tr, err := sched.ReadTraceFile(spec.File); err == nil {
			set := map[string]bool{}
			flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
			if !set["bench"] {
				*bench = tr.Bench
			}
			if !set["mode"] {
				*mode = tr.Mode
			}
			if !set["threads"] {
				*threads = tr.Threads
			}
			if !set["seed"] {
				*seed = tr.WlSeed
			}
			if !set["ops"] {
				*ops = tr.Ops
			}
		}
	}

	if *bench == "" {
		fmt.Println("available benchmarks:")
		for _, n := range workloads.Names() {
			w, _ := workloads.Get(n)
			fmt.Printf("  %-10s %s\n", n, w.Description)
		}
		return
	}
	m, err := parseMode(*mode)
	if err != nil {
		fmt.Fprintln(os.Stderr, "staggersim:", err)
		os.Exit(2)
	}
	rc := harness.RunConfig{
		Benchmark:          *bench,
		Mode:               m,
		Threads:            *threads,
		Seed:               *seed,
		TotalOps:           *ops,
		Naive:              *naive,
		Lazy:               *lazy,
		TraceN:             *trace,
		Watchdog:           *watchdog,
		Sched:              *schedSpec,
		SchedSeed:          *schedSeed,
		Record:             *record != "",
		Oracle:             *oracleOn,
		UnsafeEarlyRelease: *unsafeEarly,
	}
	if *record != "" && *schedSpec == "" {
		fmt.Fprintln(os.Stderr, "staggersim: -record needs -sched (there is no schedule to record otherwise)")
		os.Exit(2)
	}
	rc.Chaos = cp
	if *hardened {
		scfg := stagger.HardenedConfig(m)
		rc.Stagger = &scfg
	}
	res, err := harness.Run(rc)
	if err != nil {
		fmt.Fprintln(os.Stderr, "staggersim:", err)
		os.Exit(1)
	}
	printResult(res)
	if *speedup {
		s, _, err := harness.Speedup(rc)
		if err != nil {
			fmt.Fprintln(os.Stderr, "staggersim:", err)
			os.Exit(1)
		}
		fmt.Printf("\nspeedup over 1-thread sequential: %.2fx\n", s)
	}
	if len(res.Trace) > 0 {
		fmt.Printf("\ntrace (first %d events):\n%s", len(res.Trace), htm.FormatTrace(res.Trace))
	}
	if *record != "" {
		spec, _ := sched.Parse(*schedSpec)
		ss := *schedSeed
		if ss == 0 {
			ss = *seed
		}
		tr := &sched.Trace{
			Version: sched.TraceVersion,
			Spec:    *schedSpec,
			Seed:    ss,
			Bench:   *bench,
			Mode:    m.String(),
			Threads: *threads,
			WlSeed:  *seed,
			Ops:     *ops,
			Window:  spec.Window,
			Picks:   res.SchedPicks,
		}
		if err := tr.WriteFile(*record); err != nil {
			fmt.Fprintln(os.Stderr, "staggersim:", err)
			os.Exit(1)
		}
		fmt.Printf("recorded    %d scheduler decisions -> %s\n", len(res.SchedPicks), *record)
	}
	failed := false
	if res.VerifyErr != nil {
		fmt.Fprintln(os.Stderr, "VERIFY FAILED:", res.VerifyErr)
		failed = true
	}
	if res.OracleErr != nil {
		fmt.Fprintln(os.Stderr, "ORACLE FAILED:", res.OracleErr)
		failed = true
	}
	if failed {
		os.Exit(1)
	}
}

// runExplore drives a schedule-exploration campaign over one or more
// benchmarks (comma-separated), printing a per-benchmark summary and
// exiting nonzero if any schedule produced a violation.
func runExplore(benchList, mode string, threads int, seed int64, ops int,
	spec string, runs int, minimize bool, outDir string, unsafeEarly, hardened bool,
	ccfg *chaos.Config) {
	m, err := parseMode(mode)
	if err != nil {
		fmt.Fprintln(os.Stderr, "staggersim:", err)
		os.Exit(2)
	}
	if benchList == "" {
		fmt.Fprintln(os.Stderr, "staggersim: -explore needs -bench (comma-separated list accepted)")
		os.Exit(2)
	}
	anyFail := false
	for _, bench := range strings.Split(benchList, ",") {
		bench = strings.TrimSpace(bench)
		ec := harness.ExploreConfig{
			Benchmark:          bench,
			Mode:               m,
			Threads:            threads,
			Seed:               seed,
			TotalOps:           ops,
			Chaos:              ccfg,
			Spec:               spec,
			Runs:               runs,
			Minimize:           minimize,
			UnsafeEarlyRelease: unsafeEarly,
		}
		if hardened {
			scfg := stagger.HardenedConfig(m)
			ec.Stagger = &scfg
		}
		rep, err := harness.Explore(ec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "staggersim:", err)
			os.Exit(1)
		}
		fmt.Printf("%-10s %s %2d threads: %d schedules, %d commits validated, %d failures\n",
			bench, m, threads, rep.Runs, rep.Commits, len(rep.Failures))
		for i, f := range rep.Failures {
			anyFail = true
			fmt.Printf("  failure %d (sched seed %d, %d decisions", i, f.SchedSeed, len(f.Picks))
			if f.Minimized != nil {
				fmt.Printf(", minimized to %d in %d probes", len(f.Minimized), f.Probes)
			}
			fmt.Printf("): %v\n", f.Err)
			if outDir != "" {
				path := fmt.Sprintf("%s/%s-fail-%d.trace", outDir, bench, i)
				if err := f.Trace(ec).WriteFile(path); err != nil {
					fmt.Fprintln(os.Stderr, "staggersim:", err)
				} else {
					fmt.Printf("    trace -> %s (replay with -sched replay:%s)\n", path, path)
				}
			}
		}
	}
	if anyFail {
		os.Exit(1)
	}
}

// runCampaign sweeps fault rates across benchmarks under the hardened
// runtime and prints graceful-degradation curves.
func runCampaign(bench, mode string, threads int, seed int64, ops int, watchdog uint64, rateList string) {
	m, err := parseMode(mode)
	if err != nil {
		fmt.Fprintln(os.Stderr, "staggersim:", err)
		os.Exit(2)
	}
	cs := harness.ChaosSweep{
		Mode:     m,
		Threads:  threads,
		Seed:     seed,
		TotalOps: ops,
		Watchdog: watchdog,
	}
	if bench != "" {
		cs.Benchmarks = strings.Split(bench, ",")
	}
	if rateList != "" {
		for _, f := range strings.Split(rateList, ",") {
			r, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "staggersim: bad -chaos-rates entry %q: %v\n", f, err)
				os.Exit(2)
			}
			cs.Rates = append(cs.Rates, r)
		}
	}
	cells, err := harness.RunChaosSweep(cs)
	fmt.Print(harness.FormatChaos(cells))
	if err != nil {
		fmt.Fprintln(os.Stderr, "staggersim:", err)
		os.Exit(1)
	}
}

func printResult(r *harness.Result) {
	s := &r.Stats
	fmt.Printf("benchmark   %s  (%s, %d threads, seed %d)\n",
		r.Config.Benchmark, r.Config.Mode, r.Config.Threads, r.Config.Seed)
	fmt.Printf("makespan    %d cycles\n", s.Makespan)
	fmt.Printf("commits     %d  (irrevocable %d = %.1f%%)\n",
		s.Commits, s.IrrevocableCommits, 100*s.IrrevocableFraction())
	fmt.Printf("aborts      %d total (%.2f per commit): conflict %d, overflow %d, explicit %d, lock-held %d, spurious %d\n",
		s.TotalAborts(), s.AbortsPerCommit(),
		s.Aborts[htm.AbortConflict], s.Aborts[htm.AbortOverflow],
		s.Aborts[htm.AbortExplicit], s.Aborts[htm.AbortLockHeld],
		s.Aborts[htm.AbortSpurious])
	fmt.Printf("cycles      useful-tx %d, wasted-tx %d (W/U %.2f)\n",
		s.UsefulTxCycles, s.WastedTxCycles, s.WastedOverUseful())
	fmt.Printf("waiting     lock %d, backoff %d, global %d, fault %d\n",
		s.WaitCycles[htm.WaitLock], s.WaitCycles[htm.WaitBackoff],
		s.WaitCycles[htm.WaitGlobal], s.WaitCycles[htm.WaitFault])
	if r.Faults.Total() > 0 {
		fmt.Printf("chaos       injected: aborts %d, nt-delays %d, lock-drops %d, jitters %d\n",
			r.Faults.Aborts, r.Faults.NTDelays, r.Faults.LockDrops, r.Faults.Jitters)
		fmt.Printf("recovery    locks reclaimed %d, lock timeouts %d, livelock escapes %d\n",
			r.Metrics.LocksReclaimed, r.Metrics.LockTimeouts, r.Metrics.LivelockEscapes)
	}
	fmt.Printf("tm fraction %.1f%% of cycles, %.0f tx-uops per txn\n",
		100*r.TMFraction(), r.UopsPerTxn())
	fmt.Printf("memory      L1 %d, L2 %d, L3/transfer %d, DRAM %d\n",
		s.L1Hits, s.L2Hits, s.L3Hits, s.MemAccesses)
	if r.Config.Mode.Instrumented() {
		mt := &r.Metrics
		fmt.Printf("compiler    %d/%d loads+stores instrumented as anchors\n",
			r.StaticAnchors, r.StaticAccesses)
		fmt.Printf("alps        %d visits (%.1f per txn), %d locks acquired, %d timeouts\n",
			mt.ALPVisits, r.AnchorsPerTxn(), mt.LocksAcquired, mt.LockTimeouts)
		fmt.Printf("policy      precise %d, coarse %d, promote %d, training %d\n",
			mt.ActPrecise, mt.ActCoarse, mt.ActPromote, mt.ActTraining)
		fmt.Printf("accuracy    %.1f%% (%d/%d), sw-misses %d\n",
			100*mt.Accuracy(), mt.AccHits, mt.AccTotal, mt.SWMisses)
	}
	fmt.Printf("locality    LA=%v LP=%v\n", r.LA, r.LP)
	ids := make([]int, 0, len(r.PerAB))
	for id := range r.PerAB {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		m := r.PerAB[id]
		fmt.Printf("  ab %-18s commits %5d, conf %5d, deep %4d | precise %4d coarse %4d promote %4d training %4d\n",
			m.Name, m.Commits, m.ConfAborts, m.Deep, m.Precise, m.Coarse, m.Promote, m.Training)
	}
	if r.VerifyErr == nil {
		fmt.Println("verify      OK")
	}
	if r.Config.Oracle && r.OracleErr == nil {
		fmt.Printf("oracle      OK (%d commits serializable)\n", r.OracleCommits)
	}
}
