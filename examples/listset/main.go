// Listset: the full staggered-transactions pipeline on a sorted list.
//
// The example declares the list's static program in the IR, runs the
// compiler pass (DSA + anchor selection + ALP insertion), then executes
// the same contended workload twice — once on the plain HTM baseline and
// once with staggered transactions — and prints the abort reduction the
// advisory locks achieve.
//
//	go run ./examples/listset
package main

import (
	"fmt"
	"math/rand"

	"repro/internal/anchor"
	"repro/internal/htm"
	"repro/internal/prog"
	"repro/internal/simds"
	"repro/internal/stagger"
)

const (
	threads = 16
	opsEach = 200
	nodes   = 128
)

func run(mode stagger.Mode) (htm.Stats, stagger.Metrics) {
	// Static program: the list's shared code plus one atomic block per
	// operation type.
	mod := prog.NewModule("listset")
	list := simds.DeclareSortedList(mod)
	wrap := func(name string, fn *prog.Func) *prog.AtomicBlock {
		root := mod.NewFunc("ab_"+name, "list", "node")
		args := make([]*prog.Value, len(fn.Params))
		for i := range args {
			args[i] = root.Param(i % 2)
		}
		root.Entry().Call(fn, args...)
		return mod.Atomic(name, root)
	}
	abLookup := wrap("lookup", list.FnLookup)
	abInsert := wrap("insert", list.FnInsert)
	abDelete := wrap("delete", list.FnDelete)
	mod.MustFinalize()

	// Compile: Data Structure Analysis, Algorithm 1, unified tables.
	comp := anchor.Compile(mod, anchor.DefaultOptions())

	// Machine + runtime.
	cfg := htm.DefaultConfig()
	cfg.Cores = threads
	cfg.HardwareCPC = mode == stagger.ModeStaggeredHW
	m := htm.New(cfg)
	rt := stagger.New(m, comp, stagger.DefaultConfig(mode))

	// Seed the shared list.
	la := simds.NewList(m.Alloc)
	keys := make([]uint64, nodes)
	for i := range keys {
		keys[i] = uint64(i*4 + 2)
	}
	simds.SeedList(m, la, keys)

	bodies := make([]func(*htm.Core), threads)
	for i := range bodies {
		tid := i
		bodies[i] = func(c *htm.Core) {
			th := rt.Thread(c.ID())
			rng := rand.New(rand.NewSource(int64(tid)*7919 + 5))
			for k := 0; k < opsEach; k++ {
				key := uint64(rng.Intn(2*nodes))*2 + 2
				switch r := rng.Intn(100); {
				case r < 60:
					th.Atomic(c, abLookup, func(tc simds.Ctx) {
						list.Lookup(tc, la, key)
					})
				case r < 80:
					node := c.Machine().Alloc.AllocObject(2)
					th.Atomic(c, abInsert, func(tc simds.Ctx) {
						list.Insert(tc, la, key, node)
					})
				default:
					th.Atomic(c, abDelete, func(tc simds.Ctx) {
						list.Delete(tc, la, key)
					})
				}
				c.Compute(10)
			}
		}
	}
	m.Run(bodies)
	return m.Stats(), rt.Metrics
}

func main() {
	base, _ := run(stagger.ModeHTM)
	stag, met := run(stagger.ModeStaggeredHW)
	fmt.Printf("%-12s %10s %12s %10s\n", "system", "makespan", "aborts/commit", "locks")
	fmt.Printf("%-12s %10d %12.2f %10s\n", "HTM", base.Makespan, base.AbortsPerCommit(), "-")
	fmt.Printf("%-12s %10d %12.2f %10d\n", "Staggered", stag.Makespan, stag.AbortsPerCommit(), met.LocksAcquired)
	fmt.Printf("\nabort reduction: %.0f%%   speedup over baseline: %.2fx\n",
		100*(1-stag.AbortsPerCommit()/base.AbortsPerCommit()),
		float64(base.Makespan)/float64(stag.Makespan))
	fmt.Printf("policy: precise=%d coarse=%d promote=%d (training=%d)\n",
		met.ActPrecise, met.ActCoarse, met.ActPromote, met.ActTraining)
}
