// Taskqueue: a parallel branch-and-bound skeleton over the B+ tree
// priority queue, the pattern behind the paper's tsp benchmark.
//
// Workers repeatedly pop the lowest-bound task, expand it, and push
// children. The queue head (the tree's left-most leaf) is the contended
// object; with staggered transactions the runtime discovers it and
// serializes just the leaf manipulation while descents and expansions
// stay parallel.
//
//	go run ./examples/taskqueue
package main

import (
	"fmt"

	"repro/internal/anchor"
	"repro/internal/htm"
	"repro/internal/mem"
	"repro/internal/prog"
	"repro/internal/simds"
	"repro/internal/stagger"
)

const (
	threads  = 16
	seeds    = 24
	maxDepth = 4
)

func run(mode stagger.Mode) (htm.Stats, int) {
	mod := prog.NewModule("taskqueue")
	bt := simds.DeclareBPTree(mod)
	popRoot := mod.NewFunc("ab_pop", "pq")
	popRoot.Entry().Call(bt.FnPop, popRoot.Param(0))
	abPop := mod.Atomic("pop", popRoot)
	pushRoot := mod.NewFunc("ab_push", "pq")
	pushRoot.Entry().Call(bt.FnInsert, pushRoot.Param(0))
	abPush := mod.Atomic("push", pushRoot)
	mod.MustFinalize()

	comp := anchor.Compile(mod, anchor.DefaultOptions())
	cfg := htm.DefaultConfig()
	cfg.Cores = threads
	cfg.HardwareCPC = mode == stagger.ModeStaggeredHW
	m := htm.New(cfg)
	rt := stagger.New(m, comp, stagger.DefaultConfig(mode))

	pq := simds.NewBPTree(m)
	// Seed tasks: key = bound<<16 | depth. Untimed direct inserts would
	// need a mirror of the split logic, so seed through a 1-op warmup on
	// core 0 instead — cheap and exercises the public API.
	processed := make([]int, threads)
	bodies := make([]func(*htm.Core), threads)
	for i := range bodies {
		tid := i
		bodies[i] = func(c *htm.Core) {
			th := rt.Thread(c.ID())
			al := func(lines int) mem.Addr { return c.Machine().Alloc.AllocLines(lines) }
			if tid == 0 {
				for s := 0; s < seeds; s++ {
					bound := uint64((s*37 + 11) % 1024)
					th.Atomic(c, abPush, func(tc simds.Ctx) {
						bt.Insert(tc, pq, bound<<16, al)
					})
				}
			}
			idle := 0
			for idle < 30 {
				var task uint64
				var ok bool
				th.Atomic(c, abPop, func(tc simds.Ctx) {
					task, ok = bt.PopMin(tc, pq)
				})
				if !ok {
					idle++
					c.Compute(400)
					continue
				}
				idle = 0
				processed[tid]++
				depth := task & 0xFFFF
				bound := task >> 16
				c.Compute(600) // bound refinement
				if depth < maxDepth {
					for ch := uint64(1); ch <= 2; ch++ {
						child := (bound+ch*13)<<16 | (depth + 1)
						th.Atomic(c, abPush, func(tc simds.Ctx) {
							bt.Insert(tc, pq, child, al)
						})
					}
				}
			}
		}
	}
	m.Run(bodies)
	total := 0
	for _, p := range processed {
		total += p
	}
	return m.Stats(), total
}

func main() {
	want := seeds * (1<<(maxDepth+1) - 1) // full binary expansion
	base, nb := run(stagger.ModeHTM)
	stag, ns := run(stagger.ModeStaggeredHW)
	fmt.Printf("tasks processed: baseline %d, staggered %d (expansion %d)\n", nb, ns, want)
	fmt.Printf("%-12s %10s %14s %8s\n", "system", "makespan", "aborts/commit", "W/U")
	fmt.Printf("%-12s %10d %14.2f %8.2f\n", "HTM", base.Makespan, base.AbortsPerCommit(), base.WastedOverUseful())
	fmt.Printf("%-12s %10d %14.2f %8.2f\n", "Staggered", stag.Makespan, stag.AbortsPerCommit(), stag.WastedOverUseful())
	if nb != want || ns != want {
		panic("lost or duplicated tasks")
	}
}
