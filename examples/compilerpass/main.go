// Compilerpass: using the staggered-transactions compiler as a library.
//
// The example reconstructs the genome atomic block of Figure 3 in the
// paper — a loop that fetches segments from a vector and inserts them
// into a chained hash table — runs Data Structure Analysis and the
// anchor-selection pass over it, and prints the resulting unified anchor
// table, whose parent/pioneer links match the figure exactly:
//
//	A 51: Parent 0     (vectorPtr->size)
//	  53: Pioneer 51   (vectorPtr->elements)
//	A 42: Parent 0     (hashtablePtr->numBucket)
//	  46: Pioneer 42   (hashtablePtr->buckets)
//	A 35: Parent 42    (prevPtr->nextPtr — the list anchor; its parent
//	                    is the TABLE anchor, the locking-promotion path)
//	  38: Pioneer 35   (nodePtr->nextPtr)
//
//	go run ./examples/compilerpass
package main

import (
	"fmt"

	"repro/internal/anchor"
	"repro/internal/dsa"
	"repro/internal/prog"
)

func main() {
	m := prog.NewModule("genome_fig3")

	// void* vector_at(vector_t *vectorPtr, long i)
	vectorAt := m.NewFunc("vector_at", "vectorPtr")
	vectorAt.Entry().Load(vectorAt.Param(0), "size")
	elem, _ := vectorAt.Entry().LoadPtr("elem", vectorAt.Param(0), "elements")
	vectorAt.SetReturn(elem)

	// void* TMlist_find(list_t *listPtr, ...)
	listFind := m.NewFunc("TMlist_find", "listPtr")
	{
		entry, loop, exit := listFind.Entry(), listFind.NewBlock("loop"), listFind.NewBlock("exit")
		entry.To(loop)
		loop.To(loop, exit)
		prev0 := entry.Field("prevPtr0", listFind.Param(0), "head")
		n0, _ := entry.LoadPtr("nodePtr0", prev0, "nextPtr")
		cur := listFind.Phi("nodePtr")
		prev := listFind.Phi("prevPtr")
		listFind.Bind(cur, n0)
		listFind.Bind(prev, prev0)
		listFind.Bind(prev, cur) // prevPtr = nodePtr each iteration
		n1, _ := loop.LoadPtr("nodePtr1", cur, "nextPtr")
		listFind.Bind(cur, n1)
	}

	// bool_t TMhashtable_insert(hashtable_t *hashtablePtr, void *data)
	htInsert := m.NewFunc("TMhashtable_insert", "hashtablePtr", "data")
	htInsert.Entry().Load(htInsert.Param(0), "numBucket")
	bucket, _ := htInsert.Entry().LoadPtr("bucket", htInsert.Param(0), "buckets")
	htInsert.Entry().Call(listFind, bucket)

	// The atomic block of genome/sequencer.c:292.
	root := m.NewFunc("sequencer_step", "uniqueSegmentsPtr", "segmentsContentsPtr")
	{
		entry, loop, exit := root.Entry(), root.NewBlock("loop"), root.NewBlock("exit")
		entry.To(loop)
		loop.To(loop, exit)
		seg, _ := loop.CallPtr("segment", vectorAt, root.Param(1))
		loop.Call(htInsert, root.Param(0), seg)
	}
	ab := m.Atomic("insert_segments", root)
	m.MustFinalize()

	// Stage 1: Data Structure Analysis of the whole atomic block.
	g := dsa.AnalyzeAtomic(ab)
	fmt.Println("DSNodes accessed in the atomic block:")
	for _, n := range g.Nodes() {
		fmt.Printf("  %s\n", n.Label())
	}

	// Stage 2+3: anchor selection, unified table, ALP insertion.
	comp := anchor.Compile(m, anchor.DefaultOptions())
	fmt.Printf("\n%d of %d loads/stores instrumented as advisory locking points\n\n",
		comp.StaticAnchors, comp.StaticAccesses)
	fmt.Print(comp.Dump(ab))
}
