// Quickstart: run hardware transactions on the simulated machine.
//
// Four simulated threads transfer money between two accounts atomically.
// The example uses the raw HTM layer only — no compiler pass, no advisory
// locks — and shows the simulator's determinism: run it twice and every
// cycle count matches.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/internal/htm"
)

func main() {
	cfg := htm.DefaultConfig()
	cfg.Cores = 4
	m := htm.New(cfg)

	// Two accounts on separate cache lines, 1000 units each.
	alice := m.Alloc.AllocLines(1)
	bob := m.Alloc.AllocLines(1)
	m.Mem.Store(alice, 1000)
	m.Mem.Store(bob, 1000)

	const transfersPerThread = 50
	bodies := make([]func(*htm.Core), cfg.Cores)
	for i := range bodies {
		tid := i
		bodies[i] = func(c *htm.Core) {
			for k := 0; k < transfersPerThread; k++ {
				// Alternate direction per thread so the accounts stay
				// contended in both directions.
				from, to := alice, bob
				if (tid+k)%2 == 0 {
					from, to = bob, alice
				}
				c.Atomic(htm.DefaultAtomicOpts(), htm.TxHooks{}, func(c *htm.Core) {
					// Sites 1 and 2 at synthetic PCs: the raw layer just
					// needs a PC and site ID per static access.
					bal := c.Load(0x100, 1, from)
					c.Compute(50) // fee computation
					c.Store(0x104, 2, from, bal-10)
					bal = c.Load(0x108, 3, to)
					c.Store(0x10C, 4, to, bal+10)
				})
				c.Compute(200) // think time between transfers
			}
		}
	}
	m.Run(bodies)

	s := m.Stats()
	total := m.Mem.Load(alice) + m.Mem.Load(bob)
	fmt.Printf("alice=%d bob=%d (total %d, must be 2000)\n",
		m.Mem.Load(alice), m.Mem.Load(bob), total)
	fmt.Printf("commits=%d aborts=%d (%.2f per commit) irrevocable=%d\n",
		s.Commits, s.TotalAborts(), s.AbortsPerCommit(), s.IrrevocableCommits)
	fmt.Printf("makespan=%d cycles, wasted/useful = %.2f\n",
		s.Makespan, s.WastedOverUseful())
	if total != 2000 {
		panic("atomicity violated")
	}
}
