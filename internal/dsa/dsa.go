// Package dsa implements the Data Structure Analysis that the
// staggered-transactions compiler pass relies on, after Lattner's DSA
// (used as a black box in the paper).
//
// The analysis is a field-sensitive unification-based points-to analysis:
// every pointer value has a target DSNode; loading or storing a pointer
// field unifies the field's target across all pointers into the node, so
// all nodes of a recursive structure (a list's cells, a tree's internal
// nodes) collapse into one DSNode, while structurally distinct objects
// stay apart.
//
// Two entry points mirror the stages the paper uses:
//
//   - AnalyzeFunc performs the local + bottom-up analysis of a single
//     function (callee graphs are cloned into the caller at call sites),
//     which is what the local anchor tables of Algorithm 1 consume.
//   - AnalyzeAtomic analyzes the whole call tree of one atomic block in a
//     single universe, which is what the per-atomic-block unified anchor
//     tables consume. Unified results are context-sensitive across atomic
//     blocks (each gets its own universe) exactly as in Section 3.3.
package dsa

import (
	"fmt"
	"sort"
)

// Node is a data structure node: an equivalence class of pointer targets.
type Node struct {
	id     int
	parent *Node
	// fields maps field names to target nodes (possibly stale; always
	// canonicalize through find).
	fields map[string]*Node
	labels map[string]struct{}
}

// find returns the canonical representative of n's class.
func (n *Node) find() *Node {
	for n.parent != nil {
		if n.parent.parent != nil {
			n.parent = n.parent.parent // path halving
		}
		n = n.parent
	}
	return n
}

// ID returns a stable identifier for the canonical node.
func (n *Node) ID() int { return n.find().id }

// Label returns a deterministic human-readable description built from the
// value names that target this node.
func (n *Node) Label() string {
	n = n.find()
	names := make([]string, 0, len(n.labels))
	//staggervet:allow determinism key collection; sorted before use
	for s := range n.labels {
		names = append(names, s)
	}
	sort.Strings(names)
	if len(names) > 3 {
		names = names[:3]
	}
	return fmt.Sprintf("DS%d{%s}", n.id, join(names))
}

func join(ss []string) string {
	out := ""
	for i, s := range ss {
		if i > 0 {
			out += ","
		}
		out += s
	}
	return out
}

// Same reports whether two nodes are in the same class.
func (n *Node) Same(m *Node) bool { return n.find() == m.find() }

// FieldTarget returns the canonical target of the named field edge, or
// nil if the node has no such edge.
func (n *Node) FieldTarget(field string) *Node {
	n = n.find()
	t, ok := n.fields[field]
	if !ok {
		return nil
	}
	t = t.find()
	n.fields[field] = t
	return t
}

// Fields returns the node's outgoing field-edge names in sorted order,
// so cross-universe analyses (the global conflict-class closure of
// package staticcheck) can walk matching field paths deterministically.
func (n *Node) Fields() []string {
	return sortedFields(n.find().fields)
}

// Edges returns the canonical outgoing targets of n, deduplicated, in
// deterministic (id) order.
func (n *Node) Edges() []*Node {
	n = n.find()
	seen := make(map[*Node]bool)
	var out []*Node
	//staggervet:allow determinism dedup collection; sorted by id before use
	for _, t := range n.fields {
		t = t.find()
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// PointsTo reports whether n has any field edge to m.
func (n *Node) PointsTo(m *Node) bool {
	m = m.find()
	for _, t := range n.Edges() {
		if t == m {
			return true
		}
	}
	return false
}

// universe allocates nodes and performs unification.
type universe struct {
	nextID int
}

func (u *universe) newNode(label string) *Node {
	n := &Node{id: u.nextID, fields: make(map[string]*Node), labels: make(map[string]struct{})}
	u.nextID++
	if label != "" {
		n.labels[label] = struct{}{}
	}
	return n
}

// unify merges the classes of a and b, recursively unifying same-named
// field targets (the classic DSA collapse that folds recursive structures
// into one node).
func (u *universe) unify(a, b *Node) *Node {
	a, b = a.find(), b.find()
	if a == b {
		return a
	}
	// Keep the smaller id as representative for determinism.
	if b.id < a.id {
		a, b = b, a
	}
	b.parent = a
	//staggervet:allow determinism set union; insertion order cannot matter
	for l := range b.labels {
		a.labels[l] = struct{}{}
	}
	// Merge field maps; colliding fields unify recursively. Collect the
	// collisions first: unify may re-enter and rewrite the maps. Field
	// names are sorted so the recursive unification order — and with it
	// the id every merged class ends up with — is reproducible.
	type pair struct{ x, y *Node }
	var todo []pair
	for _, f := range sortedFields(b.fields) {
		t := b.fields[f]
		if cur, ok := a.fields[f]; ok {
			todo = append(todo, pair{cur, t})
		} else {
			a.fields[f] = t
		}
	}
	b.fields = nil
	for _, p := range todo {
		u.unify(p.x, p.y)
	}
	return a.find()
}

// sortedFields returns a field map's keys in sorted order, so callers
// can visit entries deterministically.
func sortedFields(m map[string]*Node) []string {
	names := make([]string, 0, len(m))
	//staggervet:allow determinism key collection; sorted before use
	for f := range m {
		names = append(names, f)
	}
	sort.Strings(names)
	return names
}

// fieldNode returns (creating if needed) the target node of n.field.
func (u *universe) fieldNode(n *Node, field string) *Node {
	n = n.find()
	t, ok := n.fields[field]
	if !ok {
		t = u.newNode("")
		n.fields[field] = t
		return t
	}
	return t.find()
}
