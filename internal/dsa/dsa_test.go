package dsa

import (
	"math/rand"
	"testing"

	"repro/internal/prog"
)

// buildListTraversal models the paper's TMlist_find (Figure 3): a cursor
// and a trailing prev pointer walk a list reached via &listPtr->head. The
// prev/cursor unification must collapse header and cells into ONE DSNode.
func buildListTraversal(t *testing.T) (*prog.Module, *prog.Site, *prog.Site) {
	t.Helper()
	m := prog.NewModule("list")
	f := m.NewFunc("TMlist_find", "listPtr")
	entry := f.Entry()
	loop := f.NewBlock("loop")
	exit := f.NewBlock("exit")
	entry.To(loop)
	loop.To(loop, exit)

	prevInit := entry.Field("prevPtr0", f.Param(0), "head")
	n0, s35 := entry.LoadPtr("nodePtr0", prevInit, "nextPtr")
	cur := f.Phi("nodePtr")
	prev := f.Phi("prevPtr")
	f.Bind(cur, n0)
	f.Bind(prev, prevInit)
	f.Bind(prev, cur) // prevPtr = nodePtr in the loop body
	n1, s38 := loop.LoadPtr("nodePtr1", cur, "nextPtr")
	f.Bind(cur, n1)
	m.MustFinalize()
	return m, s35, s38
}

func TestListCollapsesToOneNode(t *testing.T) {
	m, s35, s38 := buildListTraversal(t)
	g := AnalyzeFunc(m.FuncByName("TMlist_find"))
	if !g.NodeOf(s35).Same(g.NodeOf(s38)) {
		t.Fatalf("list header and cells should share a DSNode: %s vs %s",
			g.NodeOf(s35).Label(), g.NodeOf(s38).Label())
	}
	n := g.NodeOf(s35)
	if !n.PointsTo(n) {
		t.Fatal("recursive structure should have a self edge")
	}
}

func TestDistinctStructuresStayApart(t *testing.T) {
	m := prog.NewModule("two")
	f := m.NewFunc("f", "a", "b")
	sa := f.Entry().Load(f.Param(0), "x")
	sb := f.Entry().Load(f.Param(1), "y")
	m.MustFinalize()
	g := AnalyzeFunc(f)
	if g.NodeOf(sa).Same(g.NodeOf(sb)) {
		t.Fatal("unrelated parameters merged")
	}
}

func TestFieldEdgeEstablished(t *testing.T) {
	m := prog.NewModule("edge")
	f := m.NewFunc("f", "q")
	head, sHead := f.Entry().LoadPtr("head", f.Param(0), "head")
	sVal := f.Entry().Load(head, "value")
	m.MustFinalize()
	g := AnalyzeFunc(f)
	qNode := g.NodeOf(sHead)
	hNode := g.NodeOf(sVal)
	if qNode.Same(hNode) {
		t.Fatal("queue and head element should be distinct nodes")
	}
	if !qNode.PointsTo(hNode) {
		t.Fatal("queue node should point to head node")
	}
	if ft := qNode.FieldTarget("head"); ft == nil || !ft.Same(hNode) {
		t.Fatal("field-sensitive edge missing")
	}
}

func TestPointerStoreUnifies(t *testing.T) {
	m := prog.NewModule("store")
	f := m.NewFunc("f", "a", "b")
	// a->next = b, then c = a->next: c must alias b.
	f.Entry().StorePtr(f.Param(0), "next", f.Param(1))
	c, _ := f.Entry().LoadPtr("c", f.Param(0), "next")
	sc := f.Entry().Load(c, "v")
	sb := f.Entry().Load(f.Param(1), "v")
	m.MustFinalize()
	g := AnalyzeFunc(f)
	if !g.NodeOf(sc).Same(g.NodeOf(sb)) {
		t.Fatal("store/load through same field must unify targets")
	}
}

func TestGlobalsShareOneNode(t *testing.T) {
	m := prog.NewModule("glob")
	gv := m.Global("stats")
	f1 := m.NewFunc("f1")
	f2 := m.NewFunc("f2")
	s1 := f1.Entry().Load(gv, "hits")
	s2 := f2.Entry().Load(gv, "misses")
	root := m.NewFunc("root")
	root.Entry().Call(f1)
	root.Entry().Call(f2)
	ab := m.Atomic("stats", root)
	m.MustFinalize()
	g := AnalyzeAtomic(ab)
	if !g.NodeOf(s1).Same(g.NodeOf(s2)) {
		t.Fatal("same global accessed in two callees must share a node")
	}
}

// TestBottomUpContextSensitivity: AnalyzeFunc clones callee graphs per
// call site, so two distinct structures passed to the same callee stay
// apart in the caller's graph; AnalyzeAtomic (single universe per atomic
// block) deliberately merges them.
func TestBottomUpContextSensitivity(t *testing.T) {
	m := prog.NewModule("ctx")
	get := m.NewFunc("get", "p")
	h, _ := get.Entry().LoadPtr("h", get.Param(0), "head")
	get.SetReturn(h)
	root := m.NewFunc("root", "a", "b")
	ra, _ := root.Entry().CallPtr("ra", get, root.Param(0))
	rb, _ := root.Entry().CallPtr("rb", get, root.Param(1))
	sa := root.Entry().Load(ra, "v")
	sb := root.Entry().Load(rb, "v")
	saP := root.Entry().Load(root.Param(0), "tag")
	sbP := root.Entry().Load(root.Param(1), "tag")
	ab := m.Atomic("ab", root)
	m.MustFinalize()

	bu := AnalyzeFunc(root)
	if bu.NodeOf(saP).Same(bu.NodeOf(sbP)) {
		t.Fatal("bottom-up: distinct actual structures merged")
	}
	if bu.NodeOf(sa).Same(bu.NodeOf(sb)) {
		t.Fatal("bottom-up: results of distinct call sites merged")
	}
	// The call-site clone must still connect a's node to its head target.
	if !bu.NodeOf(saP).PointsTo(bu.NodeOf(sa)) {
		t.Fatal("bottom-up: cloned field edge missing")
	}

	un := AnalyzeAtomic(ab)
	if !un.NodeOf(saP).Same(un.NodeOf(sbP)) {
		t.Fatal("atomic universe: params of shared callee should merge")
	}
}

func TestCalleeSitesCoveredOnlyInAtomic(t *testing.T) {
	m := prog.NewModule("cov")
	leaf := m.NewFunc("leaf", "p")
	sLeaf := leaf.Entry().Load(leaf.Param(0), "x")
	root := m.NewFunc("root", "p")
	sRoot := root.Entry().Load(root.Param(0), "y")
	root.Entry().Call(leaf, root.Param(0))
	ab := m.Atomic("ab", root)
	m.MustFinalize()

	bu := AnalyzeFunc(root)
	if !bu.Covers(sRoot) || bu.Covers(sLeaf) {
		t.Fatal("AnalyzeFunc must cover own sites only")
	}
	un := AnalyzeAtomic(ab)
	if !un.Covers(sRoot) || !un.Covers(sLeaf) {
		t.Fatal("AnalyzeAtomic must cover the whole call tree")
	}
	// Here root passes p to leaf, so both sites hit the same node.
	if !un.NodeOf(sRoot).Same(un.NodeOf(sLeaf)) {
		t.Fatal("param binding missing in atomic analysis")
	}
}

func TestUnifyIdempotentAndCommutative(t *testing.T) {
	u := &universe{}
	a, b, c := u.newNode("a"), u.newNode("b"), u.newNode("c")
	u.unify(a, b)
	u.unify(b, a)
	if !a.Same(b) {
		t.Fatal("unify failed")
	}
	if a.Same(c) {
		t.Fatal("untouched node merged")
	}
	u.unify(a, c)
	if !b.Same(c) {
		t.Fatal("transitivity broken")
	}
}

func TestUnifyMergesFieldsRecursively(t *testing.T) {
	u := &universe{}
	a, b := u.newNode("a"), u.newNode("b")
	at := u.fieldNode(a, "next")
	bt := u.fieldNode(b, "next")
	u.unify(a, b)
	if !at.Same(bt) {
		t.Fatal("same-named field targets must unify when owners merge")
	}
}

func TestUnifyHandlesCyclicFields(t *testing.T) {
	u := &universe{}
	a, b := u.newNode("a"), u.newNode("b")
	// a.next = a; b.next = b. Unifying a and b must terminate and keep
	// the self edge.
	u.unify(u.fieldNode(a, "next"), a)
	u.unify(u.fieldNode(b, "next"), b)
	u.unify(a, b)
	if !a.Same(b) || !a.PointsTo(a) {
		t.Fatal("cyclic unify broken")
	}
}

func TestNodeLabelsDeterministic(t *testing.T) {
	m, s35, _ := buildListTraversal(t)
	g1 := AnalyzeFunc(m.FuncByName("TMlist_find"))
	l1 := g1.NodeOf(s35).Label()
	g2 := AnalyzeFunc(m.FuncByName("TMlist_find"))
	l2 := g2.NodeOf(s35).Label()
	if l1 != l2 {
		t.Fatalf("labels differ across runs: %q vs %q", l1, l2)
	}
}

func TestEdgesDeterministicOrder(t *testing.T) {
	u := &universe{}
	n := u.newNode("n")
	u.fieldNode(n, "a")
	u.fieldNode(n, "b")
	u.fieldNode(n, "c")
	e1 := n.Edges()
	e2 := n.Edges()
	if len(e1) != 3 {
		t.Fatalf("edges = %d, want 3", len(e1))
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatal("edge order unstable")
		}
	}
}

// TestUnifyRandomSequenceProperty: arbitrary unify/fieldNode sequences
// must preserve union-find sanity: find is idempotent, Same is an
// equivalence relation, and field targets are congruent (same class +
// same field -> same target class).
func TestUnifyRandomSequenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	fields := []string{"f", "g", "h"}
	for trial := 0; trial < 100; trial++ {
		u := &universe{}
		nodes := make([]*Node, 12)
		for i := range nodes {
			nodes[i] = u.newNode("n")
		}
		for op := 0; op < 40; op++ {
			a := nodes[rng.Intn(len(nodes))]
			b := nodes[rng.Intn(len(nodes))]
			switch rng.Intn(3) {
			case 0:
				u.unify(a, b)
			case 1:
				u.fieldNode(a, fields[rng.Intn(len(fields))])
			default:
				u.unify(u.fieldNode(a, fields[rng.Intn(len(fields))]), b)
			}
		}
		for _, a := range nodes {
			if a.find() != a.find().find() {
				t.Fatal("find not idempotent")
			}
			for _, b := range nodes {
				if a.Same(b) != b.Same(a) {
					t.Fatal("Same not symmetric")
				}
				if a.Same(b) {
					for _, f := range fields {
						ta, tb := a.FieldTarget(f), b.FieldTarget(f)
						if ta != nil && tb != nil && !ta.Same(tb) {
							t.Fatal("field targets not congruent after unification")
						}
					}
				}
			}
		}
	}
}

// TestAnalyzeAtomicIdempotent: analyzing the same atomic block twice
// yields graphs with identical node partitions over the sites.
func TestAnalyzeAtomicIdempotent(t *testing.T) {
	m, s35, s38 := buildListTraversal(t)
	root := m.FuncByName("TMlist_find")
	_ = root
	// Reuse the traversal module with a fresh atomic wrapper is not
	// possible post-finalize; instead compare two fresh analyses.
	g1 := AnalyzeFunc(m.FuncByName("TMlist_find"))
	g2 := AnalyzeFunc(m.FuncByName("TMlist_find"))
	if g1.NodeOf(s35).Same(g1.NodeOf(s38)) != g2.NodeOf(s35).Same(g2.NodeOf(s38)) {
		t.Fatal("partition differs across analyses")
	}
}
