package dsa

import (
	"fmt"

	"repro/internal/prog"
)

// Graph is the result of analyzing a function or an atomic block: a
// mapping from pointer values and access sites to their DSNodes.
type Graph struct {
	// Root is the analyzed function (for AnalyzeAtomic, the atomic
	// block's root function).
	Root *Func

	a *analysis
}

// Func aliases prog.Func for doc clarity in this package's API.
type Func = prog.Func

// analysis carries the mutable state of one analysis run.
type analysis struct {
	u       *universe
	val     map[*prog.Value]*Node
	globals map[*prog.Value]*Node
	sites   map[*prog.Site]*Node
	visited map[*prog.Func]bool
}

func newAnalysis() *analysis {
	return &analysis{
		u:       &universe{},
		val:     make(map[*prog.Value]*Node),
		globals: make(map[*prog.Value]*Node),
		sites:   make(map[*prog.Site]*Node),
		visited: make(map[*prog.Func]bool),
	}
}

// nodeOf returns (creating if needed) the target node of a pointer value.
func (a *analysis) nodeOf(v *prog.Value) *Node {
	if v == nil {
		panic("dsa: nil value")
	}
	if v.Kind == prog.ValGlobal {
		n, ok := a.globals[v]
		if !ok {
			n = a.u.newNode(v.Name)
			a.globals[v] = n
		}
		return n.find()
	}
	n, ok := a.val[v]
	if !ok {
		n = a.u.newNode(v.Name)
		a.val[v] = n
	}
	return n.find()
}

// localConstraints applies the intraprocedural DSA constraints of f.
func (a *analysis) localConstraints(f *prog.Func) {
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Kind != prog.InstrAccess {
				continue
			}
			s := in.Site
			base := a.nodeOf(s.Ptr)
			a.sites[s] = base
			if s.Def != nil {
				// v = load p->f : target(p).f ~ target(v)
				a.u.unify(a.u.fieldNode(base, s.Field), a.nodeOf(s.Def))
			}
			if s.StoredVal != nil {
				// store p->f = w : target(p).f ~ target(w)
				a.u.unify(a.u.fieldNode(base, s.Field), a.nodeOf(s.StoredVal))
			}
		}
	}
	// Derived values: &p->f aliases p's node; phis merge their inputs.
	for _, v := range f.Values {
		if v.Kind == prog.ValField {
			a.u.unify(a.nodeOf(v), a.nodeOf(v.Base))
		}
	}
	for _, pb := range f.PhiBinds {
		a.u.unify(a.nodeOf(pb.Phi), a.nodeOf(pb.Val))
	}
}

// AnalyzeAtomic runs DSA over the whole call tree of an atomic block in a
// single universe: constraints of every reachable function are applied,
// and each call edge unifies actuals with formals and the result with the
// callee's return value. The resulting graph maps every site of every
// reachable function to its node in the atomic block's context.
func AnalyzeAtomic(ab *prog.AtomicBlock) *Graph {
	if !ab.Root.Mod.Finalized() {
		panic("dsa: module not finalized")
	}
	a := newAnalysis()
	for _, f := range prog.ReachableFuncs(ab.Root) {
		a.localConstraints(f)
	}
	for _, f := range prog.ReachableFuncs(ab.Root) {
		for _, call := range f.Calls {
			a.bindCall(call)
		}
	}
	return &Graph{Root: ab.Root, a: a}
}

// bindCall unifies a call's actuals with the callee's formals (shared
// universe — the context-collapsing variant used inside one atomic block).
func (a *analysis) bindCall(call *prog.Instr) {
	g := call.Callee
	for i, arg := range call.Args {
		a.u.unify(a.nodeOf(arg), a.nodeOf(g.Params[i]))
	}
	if call.Result != nil {
		if g.Ret == nil {
			panic(fmt.Sprintf("dsa: call to %s uses a result but callee returns none", g.Name))
		}
		a.u.unify(a.nodeOf(call.Result), a.nodeOf(g.Ret))
	}
}

// AnalyzeFunc runs the local + bottom-up stages for one function: callee
// graphs are cloned into the caller at each call site, so distinct call
// sites keep distinct structures (context sensitivity across sites).
// Sites of the function itself are mapped; callee sites are not (they
// belong to the callees' own local tables).
func AnalyzeFunc(f *prog.Func) *Graph {
	if !f.Mod.Finalized() {
		panic("dsa: module not finalized")
	}
	a := newAnalysis()
	a.analyzeBottomUp(f)
	return &Graph{Root: f, a: a}
}

// analyzeBottomUp applies f's local constraints, then inlines a clone of
// each callee's (recursively analyzed) graph at each call site.
func (a *analysis) analyzeBottomUp(f *prog.Func) {
	a.localConstraints(f)
	for _, call := range f.Calls {
		sub := newAnalysis()
		sub.u = a.u             // one ID space for determinism
		sub.globals = a.globals // globals are one node per analysis
		sub.analyzeBottomUp(call.Callee)
		clones := make(map[*Node]*Node)
		var cloneNode func(n *Node) *Node
		cloneNode = func(n *Node) *Node {
			n = n.find()
			if c, ok := clones[n]; ok {
				return c
			}
			// Globals are shared, not cloned.
			//staggervet:allow determinism membership test; every match returns the same n
			for _, gn := range a.globals {
				if gn.find() == n {
					return n
				}
			}
			c := a.u.newNode("")
			//staggervet:allow determinism set copy; insertion order cannot matter
			for l := range n.labels {
				c.labels[l] = struct{}{}
			}
			clones[n] = c
			// Clone fields in sorted order: each recursive cloneNode call
			// allocates fresh ids, so visiting the map directly would
			// number the cloned subgraph differently from run to run.
			for _, fld := range sortedFields(n.fields) {
				c.fields[fld] = cloneNode(n.fields[fld])
			}
			return c
		}
		g := call.Callee
		for i, arg := range call.Args {
			a.u.unify(a.nodeOf(arg), cloneNode(sub.nodeOf(g.Params[i])))
		}
		if call.Result != nil && g.Ret != nil {
			a.u.unify(a.nodeOf(call.Result), cloneNode(sub.nodeOf(g.Ret)))
		}
	}
}

// NodeOf returns the DSNode accessed by site s (its pointer operand's
// target). It panics if s was not part of the analyzed region.
func (g *Graph) NodeOf(s *prog.Site) *Node {
	n, ok := g.a.sites[s]
	if !ok {
		panic(fmt.Sprintf("dsa: site %v not in analyzed region", s))
	}
	return n.find()
}

// Covers reports whether site s was part of the analyzed region.
func (g *Graph) Covers(s *prog.Site) bool {
	_, ok := g.a.sites[s]
	return ok
}

// ValueNode returns the target node of a pointer value.
func (g *Graph) ValueNode(v *prog.Value) *Node { return g.a.nodeOf(v) }

// Nodes returns the canonical nodes of all analyzed sites, deduplicated,
// in deterministic order.
func (g *Graph) Nodes() []*Node {
	seen := make(map[*Node]bool)
	var out []*Node
	//staggervet:allow determinism dedup collection; sorted by id before use
	for _, n := range g.a.sites {
		n = n.find()
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	sortNodes(out)
	return out
}

func sortNodes(ns []*Node) {
	for i := 1; i < len(ns); i++ {
		for j := i; j > 0 && ns[j].id < ns[j-1].id; j-- {
			ns[j], ns[j-1] = ns[j-1], ns[j]
		}
	}
}
