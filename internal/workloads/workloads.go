// Package workloads ports the paper's ten benchmarks to the simulated
// machine: genome, intruder, kmeans, labyrinth, ssca2, vacation (STAMP),
// list-lo and list-hi (RSTM IntSet), tsp (branch-and-bound over a B+ tree
// priority queue), and memcached (key-value store with global statistics).
//
// Each port reproduces the benchmark's *contention pattern* as itemized
// in Table 1 of the paper (linked lists, priority queue head, statistics
// line, task queues, accumulator arrays, red-black trees) on real shared
// data structures in simulated memory, with synthetic inputs drawn from
// seeded PRNGs. Work is fixed in total and split across threads, so
// speedup is sequential-cycles over parallel-makespan.
package workloads

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/backend"
	"repro/internal/htm"
	"repro/internal/oracle"
	"repro/internal/prog"
)

// Workload is one runnable benchmark. Build-returned instances are
// single-use: Setup allocates state inside one machine, Body closures
// reference it, Verify checks it after the run.
type Workload struct {
	// Name is the benchmark's identifier (e.g. "list-hi").
	Name string
	// Description summarizes source and input, as in Table 4.
	Description string
	// Contention is the paper's qualitative rating: low / med / high.
	Contention string
	// Mod is the finalized static program of the benchmark.
	Mod *prog.Module

	// TotalOps is the default total transactional operation count.
	TotalOps int

	// Setup seeds the shared data (untimed, direct memory writes).
	Setup func(m *htm.Machine, seed int64)
	// Body returns the thread body for thread tid of threads, performing
	// ops operations.
	Body func(rt backend.Runtime, tid, threads, ops int, seed int64) func(*htm.Core)
	// Verify checks post-run invariants against the expected totals.
	Verify func(m *htm.Machine, threads, totalOps int) error

	// RefModel builds the benchmark's sequential reference model for the
	// serializability oracle (nil = read-validation and final-state checks
	// only). It is called after Setup, with the same machine and seed, so
	// closures may capture post-setup addresses; the returned model is
	// stepped once per committed operation tag, in commit order. Bodies
	// declare their tags with TxCtx.Op; when no oracle is installed the
	// tags cost one nil check each.
	RefModel func(m *htm.Machine, seed int64) oracle.RefModel
}

// Builder constructs a fresh workload instance (fresh module and state).
type Builder func() *Workload

var registry = map[string]Builder{}

// register adds a builder; called from each workload's init.
func register(name string, b Builder) {
	if _, dup := registry[name]; dup {
		panic("workloads: duplicate " + name)
	}
	registry[name] = b
}

// Get builds a fresh instance of the named workload.
func Get(name string) (*Workload, error) {
	b, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("workloads: unknown benchmark %q", name)
	}
	return b(), nil
}

// Names lists registered benchmarks in the paper's Table 4 order where
// applicable, alphabetically otherwise.
func Names() []string {
	order := []string{"genome", "intruder", "kmeans", "labyrinth", "ssca2",
		"vacation", "list-lo", "list-hi", "tsp", "memcached"}
	var out []string
	seen := map[string]bool{}
	for _, n := range order {
		if _, ok := registry[n]; ok {
			out = append(out, n)
			seen[n] = true
		}
	}
	var rest []string
	for n := range registry {
		if !seen[n] {
			rest = append(rest, n)
		}
	}
	sort.Strings(rest)
	return append(out, rest...)
}

// split gives thread tid its share of total operations.
func split(total, threads, tid int) int {
	n := total / threads
	if tid < total%threads {
		n++
	}
	return n
}

// threadRNG derives a deterministic per-thread generator.
func threadRNG(seed int64, tid int) *rand.Rand {
	return rand.New(rand.NewSource(seed*1000003 + int64(tid)*7919 + 17))
}
