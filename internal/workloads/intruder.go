package workloads

import (
	"fmt"
	"sort"

	"repro/internal/backend"
	"repro/internal/htm"
	"repro/internal/mem"
	"repro/internal/oracle"
	"repro/internal/prog"
	"repro/internal/simds"
)

// intruder: STAMP's network intrusion detector. Threads pop packet
// fragments from a shared task queue, reassemble flows in a shared
// fragment map, and — at the end of the long decoder transaction — push
// completed flows onto the result queue. Table 1 names the task queue as
// the contention source; the enqueue near the end of TMdecoder_process
// is what staggered transactions serialize for the paper's biggest abort
// reduction (89%).

const (
	intrFlows    = 128
	intrFragsPer = 2
	intrBuckets  = 64
)

func init() { register("intruder", buildIntruder) }

func buildIntruder() *Workload {
	mod := prog.NewModule("intruder")
	q := simds.DeclareQueue(mod)
	ht := simds.DeclareHashTable(mod)

	// The three shared structures are module globals bound into the
	// blocks' root calls: the producer's queue-push classes and the
	// consumer's queue-pop classes unify through gResultQ exactly as the
	// runtime aliases them through resultQ.
	gPacketQ := mod.Global("packetQ")
	gResultQ := mod.Global("resultQ")
	gFragMap := mod.Global("fragMap")

	// AB 1: fetch a fragment from the packet queue.
	popRoot := mod.NewFunc("get_packet", "qPtr")
	popRoot.Entry().Call(q.FnPop, gPacketQ)
	abPop := mod.Atomic("get_packet", popRoot)

	// AB 2: the decoder: look up the flow's fragment count, update the
	// fragment map, and when the flow is complete, enqueue it on the
	// result queue at the END of the transaction. The lookup call was
	// missing from the IR until the static/dynamic conformance checker
	// flagged the body's ht.Lookup sites as absent from this block's
	// unified table.
	decRoot := mod.NewFunc("decoder_process", "mapPtr", "resultQ", "frag")
	decRoot.Entry().Call(ht.FnLookup, gFragMap)
	decRoot.Entry().Call(ht.FnInsert, gFragMap, decRoot.Param(2))
	decRoot.Entry().Call(q.FnPush, gResultQ, decRoot.Param(2))
	abDec := mod.Atomic("decoder_process", decRoot)

	// AB 3: the detector pops completed flows and scans them.
	detRoot := mod.NewFunc("detector", "resultQ")
	detRoot.Entry().Call(q.FnPop, gResultQ)
	abDet := mod.Atomic("detector", detRoot)
	mod.MustFinalize()

	var packetQ, resultQ, fragMap mem.Addr
	return &Workload{
		Name:        "intruder",
		Description: "packet reassembly: shared task queue + fragment map",
		Contention:  "high",
		Mod:         mod,
		TotalOps:    intrFlows * intrFragsPer, // one op = one fragment
		Setup: func(m *htm.Machine, seed int64) {
			packetQ = simds.NewQueue(m.Alloc)
			resultQ = simds.NewQueue(m.Alloc)
			fragMap = simds.NewHashTable(m, intrBuckets)
			// Fragments interleaved across flows: flowID<<8 | fragIdx.
			rng := threadRNG(seed, 888)
			frags := make([]uint64, 0, intrFlows*intrFragsPer)
			for f := 0; f < intrFragsPer; f++ {
				for fl := 0; fl < intrFlows; fl++ {
					frags = append(frags, uint64(fl)<<8|uint64(f))
				}
			}
			rng.Shuffle(len(frags), func(i, j int) { frags[i], frags[j] = frags[j], frags[i] })
			simds.SeedQueue(m, packetQ, frags)
		},
		Body: func(rt backend.Runtime, tid, threads, ops int, seed int64) func(*htm.Core) {
			return func(c *htm.Core) {
				th := rt.Thread(c.ID())
				al := c.Machine().Alloc
				// Hoisted body closures: see kmeans for why in-loop
				// literals cost one heap allocation per op.
				var frag, flow uint64
				var ok bool
				var mapNode, resNode mem.Addr
				popBody := func(tc simds.Ctx) {
					frag, ok = q.Pop(tc, packetQ)
					tc.Op(itPop{frag: frag, ok: ok})
				}
				decBody := func(tc simds.Ctx) {
					tc.Compute(450) // decode fragment payload
					// Count this flow's fragments in the shared map.
					cnt, _ := ht.Lookup(tc, fragMap, flow+1)
					ht.Insert(tc, fragMap, flow+1, cnt+1, mapNode)
					tc.Compute(450) // checksum / reassembly work
					// Hand the decoded fragment to the detector: the
					// enqueue near the end of the long decoder
					// transaction is intruder's dominant conflict
					// (Section 6.2 of the paper).
					q.Push(tc, resultQ, frag, resNode)
					tc.Op(itDec{flow: flow, cnt: cnt, frag: frag})
				}
				detBody := func(tc simds.Ctx) {
					f2, ok2 := q.Pop(tc, resultQ)
					if ok2 {
						tc.Compute(200) // signature scan
					}
					tc.Op(itDet{frag: f2, ok: ok2})
				}
				for {
					th.Atomic(c, abPop, popBody)
					if !ok {
						break
					}
					flow = frag >> 8
					mapNode = al.AllocLines(1)
					resNode = al.AllocLines(1)
					th.Atomic(c, abDec, decBody)
					th.Atomic(c, abDet, detBody)
					c.Compute(50)
				}
			}
		},
		Verify: func(m *htm.Machine, threads, totalOps int) error {
			if n := simds.QueueLen(m, packetQ); n != 0 {
				return fmt.Errorf("%d fragments left in packet queue", n)
			}
			// All flows fully assembled in the map.
			for fl := 0; fl < intrFlows; fl++ {
				cur := chainFind(m, fragMap, uint64(fl)+1)
				if cur != intrFragsPer {
					return fmt.Errorf("flow %d assembled %d/%d fragments", fl, cur, intrFragsPer)
				}
			}
			return nil
		},
		RefModel: func(m *htm.Machine, seed int64) oracle.RefModel {
			// Rebuild the shuffled packet queue exactly as Setup did.
			rng := threadRNG(seed, 888)
			frags := make([]uint64, 0, intrFlows*intrFragsPer)
			for f := 0; f < intrFragsPer; f++ {
				for fl := 0; fl < intrFlows; fl++ {
					frags = append(frags, uint64(fl)<<8|uint64(f))
				}
			}
			rng.Shuffle(len(frags), func(i, j int) { frags[i], frags[j] = frags[j], frags[i] })
			return &itModel{
				m: m, fragMap: fragMap, resultQ: resultQ,
				packets: frags,
				counts:  make(map[uint64]uint64, intrFlows),
			}
		},
	}
}

// Tags for the three intruder atomic blocks.
type itPop struct { // packet-queue pop
	frag uint64
	ok   bool
}
type itDec struct { // decoder: cnt is the fragment count the tx observed
	flow uint64
	cnt  uint64
	frag uint64
}
type itDet struct { // detector: result-queue pop
	frag uint64
	ok   bool
}

// itModel is the sequential pipeline: a FIFO packet queue (rebuilt from
// the setup seed), the fragment-count map, and a FIFO result queue.
// Duplicate pops of one fragment, lost map updates, or reordered result
// queues all diverge from it.
type itModel struct {
	m                *htm.Machine
	fragMap, resultQ mem.Addr
	packets          []uint64
	counts           map[uint64]uint64
	results          []uint64
}

func (md *itModel) Step(tag any) error {
	switch op := tag.(type) {
	case itPop:
		if !op.ok {
			if len(md.packets) != 0 {
				return fmt.Errorf("packet pop returned empty with %d fragments queued", len(md.packets))
			}
			return nil
		}
		if len(md.packets) == 0 {
			return fmt.Errorf("packet pop returned %#x from an empty queue", op.frag)
		}
		if md.packets[0] != op.frag {
			return fmt.Errorf("packet pop = %#x, sequential queue head is %#x", op.frag, md.packets[0])
		}
		md.packets = md.packets[1:]
	case itDec:
		if got := md.counts[op.flow+1]; got != op.cnt {
			return fmt.Errorf("decoder observed flow %d count %d, sequential map says %d",
				op.flow, op.cnt, got)
		}
		md.counts[op.flow+1] = op.cnt + 1
		md.results = append(md.results, op.frag)
	case itDet:
		if !op.ok {
			if len(md.results) != 0 {
				return fmt.Errorf("detector pop returned empty with %d flows queued", len(md.results))
			}
			return nil
		}
		if len(md.results) == 0 {
			return fmt.Errorf("detector pop returned %#x from an empty queue", op.frag)
		}
		if md.results[0] != op.frag {
			return fmt.Errorf("detector pop = %#x, sequential queue head is %#x", op.frag, md.results[0])
		}
		md.results = md.results[1:]
	default:
		return fmt.Errorf("intruder: unexpected tag %T", tag)
	}
	return nil
}

func (md *itModel) Finish() error {
	if n := simds.QueueLen(md.m, md.resultQ); n != len(md.results) {
		return fmt.Errorf("final result queue has %d entries, model has %d", n, len(md.results))
	}
	// Visit flows in sorted order so a multi-flow divergence always
	// reports the same flow (map iteration would pick one at random).
	flows := make([]uint64, 0, len(md.counts))
	for flow := range md.counts {
		flows = append(flows, flow)
	}
	sort.Slice(flows, func(i, j int) bool { return flows[i] < flows[j] })
	for _, flow := range flows {
		if got, want := chainFind(md.m, md.fragMap, flow), md.counts[flow]; got != want {
			return fmt.Errorf("final fragment count[%d] = %d, model has %d", flow, got, want)
		}
	}
	return nil
}

// chainFind reads a hash-table value directly from memory.
func chainFind(m *htm.Machine, ht mem.Addr, key uint64) uint64 {
	nb := m.Mem.Load(ht)
	bi := seedHTHash(key, nb)
	chain := mem.Addr(m.Mem.Load(ht + mem.Addr(8*(1+bi))))
	cur := mem.Addr(m.Mem.Load(chain))
	for cur != 0 {
		if m.Mem.Load(cur) == key {
			return m.Mem.Load(cur + 8)
		}
		cur = mem.Addr(m.Mem.Load(cur + 16))
	}
	return 0
}
