package workloads_test

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/anchor"
	"repro/internal/harness"
	"repro/internal/prog"
	"repro/internal/stagger"
	"repro/internal/workloads"
)

// dumpAll concatenates the Figure-3 dump of every atomic block.
func dumpAll(mod *prog.Module) string {
	c := anchor.Compile(mod, anchor.DefaultOptions())
	var sb strings.Builder
	for _, ab := range mod.Atomics {
		sb.WriteString(c.Dump(ab))
	}
	return sb.String()
}

// TestReplayBitIdentical is the replay regression for the engine-seeded
// randomness rule the staggervet determinism analyzer enforces: running
// any workload twice under the same (config, seed) must reproduce the
// run bit-for-bit — statistics, runtime metrics, and the transaction
// trace. A single wall-clock read or global-rand draw anywhere in the
// simulated path would break this immediately.
func TestReplayBitIdentical(t *testing.T) {
	for _, name := range workloads.Names() {
		rc := harness.RunConfig{
			Benchmark: name,
			Mode:      stagger.ModeStaggeredHW,
			Threads:   4,
			Seed:      99,
			TotalOps:  160,
			TraceN:    4096,
		}
		a, err := harness.Run(rc)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b, err := harness.Run(rc)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(a.Stats, b.Stats) {
			t.Errorf("%s: stats differ across identical runs:\n%+v\n%+v", name, a.Stats, b.Stats)
		}
		if !reflect.DeepEqual(a.Metrics, b.Metrics) {
			t.Errorf("%s: runtime metrics differ across identical runs", name)
		}
		if !reflect.DeepEqual(a.Trace, b.Trace) {
			t.Errorf("%s: transaction traces differ across identical runs", name)
		}
	}
}

// TestAnchorDumpRebuildStable locks the emission order of the anchor
// tables within one process: building a workload's IR from scratch twice
// and compiling both must print byte-identical Figure-3 dumps. Together
// with the golden files (which pin the dump across processes and so
// across map seeds), this is the regression net for map-iteration-order
// leaks in DSA node numbering and table emission.
func TestAnchorDumpRebuildStable(t *testing.T) {
	for _, name := range workloads.Names() {
		w1, err := workloads.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		w2, err := workloads.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		d1 := dumpAll(w1.Mod)
		d2 := dumpAll(w2.Mod)
		if d1 != d2 {
			t.Errorf("%s: rebuilt anchor tables dump differently:\n--- first ---\n%s\n--- second ---\n%s",
				name, d1, d2)
		}
	}
}
