package workloads

// ConflictWaivers returns the per-benchmark precision-waiver table for
// the lock-precision check (staticcheck.CheckPrecision): site ID ->
// reason, for advisory-lock points that serialize read-only conflict
// classes ON PURPOSE. A waiver is not a suppression of unknown noise —
// the check reports stale waivers, so every entry here matches a live
// finding or fails `staggersim -verify-conflicts`.
//
// The table is data, not policy: workloads declares which of its own
// locks are intentionally coarse, and the checker (which this package
// must not import) consumes the map through the harness.
func ConflictWaivers(bench string) map[uint32]string {
	return conflictWaivers[bench]
}

// Every live waiver below is the same intentional pattern: a structure
// HEADER (hash-table bucket directory, grid dimension block) that no
// transaction ever stores to, whose pioneer load still carries an ALP.
// The header pioneer is the parent anchor the written cell/chain-class
// anchors promote through (anchor.LocalTable parent edges), so dropping
// the instrumentation would orphan the locks that do prevent conflicts.
// The lock itself serializes nothing the HTM would abort on — precisely
// what the precision check says — and that cost is accepted.
var conflictWaivers = map[string]map[uint32]string{
	"genome": {
		7: "read-only hash-table header: ht_insert's numBucket pioneer is the parent anchor of the written chain-class locks",
	},
	"intruder": {
		12: "read-only hash-table header: ht_lookup's numBucket pioneer is the parent anchor of the written chain-class locks",
		18: "read-only hash-table header: ht_insert's numBucket pioneer is the parent anchor of the written chain-class locks",
	},
	"labyrinth": {
		1: "read-only grid header: claim's xdim pioneer is the parent anchor of the written cell-class locks",
		5: "read-only grid header: release's points pioneer is the parent anchor of the written cell-class locks",
	},
	"memcached": {
		1: "read-only hash-table header: ht_lookup's numBucket pioneer is the parent anchor of the written chain-class locks",
		7: "read-only hash-table header: ht_insert's numBucket pioneer is the parent anchor of the written chain-class locks",
	},
}
