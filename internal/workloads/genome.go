package workloads

import (
	"fmt"

	"repro/internal/backend"
	"repro/internal/htm"
	"repro/internal/mem"
	"repro/internal/oracle"
	"repro/internal/prog"
	"repro/internal/simds"
)

// genome: STAMP's gene sequencer, phase 1 — deduplicating DNA segments
// into a fixed-size hash table whose overloaded buckets are linked lists
// (the atomic block of Figure 3 in the paper). Conflict chains form when
// several transactions insert into overlapping bucket sets; staggered
// transactions break them by locking promotion up to the whole table.

const (
	genSegments = 2048
	genDistinct = 512
	genBuckets  = 256 // lightly loaded: ~2 entries per chain
	genChunk    = 4   // segments inserted per transaction (Figure 3 loop)
)

func init() { register("genome", buildGenome) }

func buildGenome() *Workload {
	mod := prog.NewModule("genome")
	ht := simds.DeclareHashTable(mod)

	// The Figure 3 atomic block: a loop inserting a chunk of segments.
	root := mod.NewFunc("insert_segments", "uniqueSegmentsPtr", "segment")
	entry, loop, exit := root.Entry(), root.NewBlock("loop"), root.NewBlock("exit")
	entry.To(loop)
	loop.To(loop, exit)
	loop.Call(ht.FnInsert, root.Param(0), root.Param(1))
	ab := mod.Atomic("insert_segments", root)
	mod.MustFinalize()

	var table mem.Addr
	return &Workload{
		Name:        "genome",
		Description: fmt.Sprintf("segment dedup: %d segments, %d buckets", genSegments, genBuckets),
		Contention:  "low",
		Mod:         mod,
		TotalOps:    genSegments / genChunk, // one op = one chunk insert
		Setup: func(m *htm.Machine, seed int64) {
			table = simds.NewHashTable(m, genBuckets)
		},
		Body: func(rt backend.Runtime, tid, threads, ops int, seed int64) func(*htm.Core) {
			rng := threadRNG(seed, tid)
			return func(c *htm.Core) {
				th := rt.Thread(c.ID())
				al := c.Machine().Alloc
				// Hoisted body closure: see kmeans for why in-loop
				// literals cost one heap allocation per op.
				var segs []uint64
				var nodes []mem.Addr
				var inserted []bool
				body := func(tc simds.Ctx) {
					for j, s := range segs {
						inserted[j] = ht.Insert(tc, table, s, s, nodes[j])
						tc.Compute(30)
					}
					tc.Op(genOp{segs: segs, inserted: inserted})
				}
				for i := 0; i < ops; i++ {
					segs = make([]uint64, genChunk)
					nodes = make([]mem.Addr, genChunk)
					for j := range segs {
						segs[j] = uint64(rng.Intn(genDistinct) + 1)
						nodes[j] = al.AllocLines(1)
					}
					inserted = make([]bool, genChunk)
					th.Atomic(c, ab, body)
					c.Compute(1200) // segment extraction outside the tx
				}
			}
		},
		Verify: func(m *htm.Machine, threads, totalOps int) error {
			n := simds.HTCount(m, table)
			if n == 0 || n > genDistinct {
				return fmt.Errorf("table has %d entries, want 1..%d distinct", n, genDistinct)
			}
			return nil
		},
		RefModel: func(m *htm.Machine, seed int64) oracle.RefModel {
			return &genModel{m: m, table: table, set: make(map[uint64]bool, genDistinct)}
		},
	}
}

// genOp tags one committed chunk insert: inserted[j] reports whether
// segs[j] was new to the table at this transaction's serialization point.
// A duplicate segment *within* one chunk must report inserted=false for
// its second occurrence — the sequential model checks per element.
type genOp struct {
	segs     []uint64
	inserted []bool
}

// genModel is the sequential dedup set.
type genModel struct {
	m     *htm.Machine
	table mem.Addr
	set   map[uint64]bool
}

func (md *genModel) Step(tag any) error {
	op, ok := tag.(genOp)
	if !ok {
		return fmt.Errorf("genome: unexpected tag %T", tag)
	}
	if len(op.segs) != len(op.inserted) {
		return fmt.Errorf("genome: malformed tag: %d segments, %d results", len(op.segs), len(op.inserted))
	}
	for j, s := range op.segs {
		if present := md.set[s]; op.inserted[j] != !present {
			return fmt.Errorf("insert(%d) = %v, sequential set says %v", s, op.inserted[j], !present)
		}
		md.set[s] = true
	}
	return nil
}

func (md *genModel) Finish() error {
	if n := simds.HTCount(md.m, md.table); n != len(md.set) {
		return fmt.Errorf("final table has %d segments, model has %d", n, len(md.set))
	}
	for s := range md.set {
		if got := chainFind(md.m, md.table, s); got != s {
			return fmt.Errorf("final table[%d] = %d, model expects the key itself", s, got)
		}
	}
	return nil
}
