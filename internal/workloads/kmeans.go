package workloads

import (
	"fmt"

	"repro/internal/htm"
	"repro/internal/mem"
	"repro/internal/prog"
	"repro/internal/simds"
	"repro/internal/stagger"
)

// kmeans: STAMP's clustering kernel. Threads assign points to their
// nearest center (compute outside the transaction, as STAMP does — the
// centers are read-only within an iteration) and transactionally fold
// the point into the chosen cluster's accumulator array. Conflicting
// addresses and PCs both have good locality (Table 1), so precise-mode
// advisory locks give near-fine-grain per-cluster serialization
// (Section 6.2's kmeans discussion).

const (
	kmClusters = 8
	kmDims     = 14
	kmPoints   = 2048
)

func init() { register("kmeans", buildKmeans) }

func buildKmeans() *Workload {
	mod := prog.NewModule("kmeans")
	cs := simds.DeclareCenters(mod, kmClusters, kmDims)
	root := mod.NewFunc("assign_point", "centerPtr")
	root.Entry().Call(cs.FnUpdate, root.Param(0))
	ab := mod.Atomic("assign_point", root)
	mod.MustFinalize()

	var base mem.Addr
	return &Workload{
		Name:        "kmeans",
		Description: fmt.Sprintf("n=%d d=%d c=%d accumulator updates", kmPoints, kmDims, kmClusters),
		Contention:  "high",
		Mod:         mod,
		TotalOps:    kmPoints,
		Setup: func(m *htm.Machine, seed int64) {
			base = simds.NewCenters(m, cs)
		},
		Body: func(rt *stagger.Runtime, tid, threads, ops int, seed int64) func(*htm.Core) {
			rng := threadRNG(seed, tid)
			return func(c *htm.Core) {
				th := rt.Thread(c.ID())
				point := make([]uint64, kmDims)
				for i := 0; i < ops; i++ {
					for d := range point {
						point[d] = uint64(rng.Intn(100))
					}
					// Nearest-center search: reads of stable centers,
					// modeled as compute (STAMP keeps it outside the tx).
					c.Compute(60 * kmDims)
					// Real cluster sizes are skewed; popular clusters are
					// where the paper's kmeans contention comes from.
					k := skewedCluster(rng.Intn(100))
					th.Atomic(c, ab, func(tc *stagger.TxCtx) {
						cs.Update(tc, base, k, point)
					})
				}
			}
		},
		Verify: func(m *htm.Machine, threads, totalOps int) error {
			var total uint64
			for k := 0; k < kmClusters; k++ {
				total += cs.Count(m, base, k)
			}
			if total != uint64(totalOps) {
				return fmt.Errorf("membership total = %d, want %d", total, totalOps)
			}
			return nil
		},
	}
}

// skewedCluster maps a uniform percentile to a cluster with a skewed
// (roughly geometric) popularity distribution.
func skewedCluster(p int) int {
	cut := [kmClusters]int{40, 65, 80, 88, 93, 96, 98, 100}
	for k, c := range cut {
		if p < c {
			return k
		}
	}
	return kmClusters - 1
}
