package workloads

import (
	"fmt"

	"repro/internal/backend"
	"repro/internal/htm"
	"repro/internal/mem"
	"repro/internal/oracle"
	"repro/internal/prog"
	"repro/internal/simds"
)

// kmeans: STAMP's clustering kernel. Threads assign points to their
// nearest center (compute outside the transaction, as STAMP does — the
// centers are read-only within an iteration) and transactionally fold
// the point into the chosen cluster's accumulator array. Conflicting
// addresses and PCs both have good locality (Table 1), so precise-mode
// advisory locks give near-fine-grain per-cluster serialization
// (Section 6.2's kmeans discussion).

const (
	kmClusters = 8
	kmDims     = 14
	kmPoints   = 2048
)

func init() { register("kmeans", buildKmeans) }

func buildKmeans() *Workload {
	mod := prog.NewModule("kmeans")
	cs := simds.DeclareCenters(mod, kmClusters, kmDims)
	root := mod.NewFunc("assign_point", "centerPtr")
	root.Entry().Call(cs.FnUpdate, root.Param(0))
	ab := mod.Atomic("assign_point", root)
	mod.MustFinalize()

	var base mem.Addr
	return &Workload{
		Name:        "kmeans",
		Description: fmt.Sprintf("n=%d d=%d c=%d accumulator updates", kmPoints, kmDims, kmClusters),
		Contention:  "high",
		Mod:         mod,
		TotalOps:    kmPoints,
		Setup: func(m *htm.Machine, seed int64) {
			base = simds.NewCenters(m, cs)
		},
		Body: func(rt backend.Runtime, tid, threads, ops int, seed int64) func(*htm.Core) {
			rng := threadRNG(seed, tid)
			return func(c *htm.Core) {
				th := rt.Thread(c.ID())
				point := make([]uint64, kmDims)
				// The body closure is hoisted out of the op loop and fed
				// per-iteration state through captured variables: calls
				// through the backend.Thread interface heap-allocate any
				// closure argument, so an in-loop literal would cost one
				// allocation per operation (same pattern in every workload).
				var k int
				var tagged []uint64
				body := func(tc simds.Ctx) {
					cs.Update(tc, base, k, point)
					tc.Op(kmOp{k: k, point: tagged})
				}
				for i := 0; i < ops; i++ {
					for d := range point {
						point[d] = uint64(rng.Intn(100))
					}
					// Nearest-center search: reads of stable centers,
					// modeled as compute (STAMP keeps it outside the tx).
					c.Compute(60 * kmDims)
					// Real cluster sizes are skewed; popular clusters are
					// where the paper's kmeans contention comes from.
					k = skewedCluster(rng.Intn(100))
					// The point slice is reused across iterations; the tag
					// must carry its own copy.
					tagged = append([]uint64(nil), point...)
					th.Atomic(c, ab, body)
				}
			}
		},
		Verify: func(m *htm.Machine, threads, totalOps int) error {
			var total uint64
			for k := 0; k < kmClusters; k++ {
				total += cs.Count(m, base, k)
			}
			if total != uint64(totalOps) {
				return fmt.Errorf("membership total = %d, want %d", total, totalOps)
			}
			return nil
		},
		RefModel: func(m *htm.Machine, seed int64) oracle.RefModel {
			return &kmModel{m: m, cs: cs, base: base}
		},
	}
}

// kmOp tags one committed accumulator update (point is a private copy).
type kmOp struct {
	k     int
	point []uint64
}

// kmModel re-accumulates the cluster sums sequentially in commit order;
// Finish demands the real accumulators match word for word, which a lost
// update (e.g. two transactions folding over the same count) would break.
type kmModel struct {
	m     *htm.Machine
	cs    *simds.Centers
	base  mem.Addr
	count [kmClusters]uint64
	sums  [kmClusters][kmDims]uint64
}

func (md *kmModel) Step(tag any) error {
	op, ok := tag.(kmOp)
	if !ok {
		return fmt.Errorf("kmeans: unexpected tag %T", tag)
	}
	if op.k < 0 || op.k >= kmClusters || len(op.point) != kmDims {
		return fmt.Errorf("kmeans: malformed update tag %+v", op)
	}
	md.count[op.k]++
	for d, v := range op.point {
		md.sums[op.k][d] += v
	}
	return nil
}

func (md *kmModel) Finish() error {
	for k := 0; k < kmClusters; k++ {
		if got := md.cs.Count(md.m, md.base, k); got != md.count[k] {
			return fmt.Errorf("cluster %d count = %d, sequential model says %d", k, got, md.count[k])
		}
		for d := 0; d < kmDims; d++ {
			if got := md.cs.Sum(md.m, md.base, k, d); got != md.sums[k][d] {
				return fmt.Errorf("cluster %d dim %d sum = %d, sequential model says %d",
					k, d, got, md.sums[k][d])
			}
		}
	}
	return nil
}

// skewedCluster maps a uniform percentile to a cluster with a skewed
// (roughly geometric) popularity distribution.
func skewedCluster(p int) int {
	cut := [kmClusters]int{40, 65, 80, 88, 93, 96, 98, 100}
	for k, c := range cut {
		if p < c {
			return k
		}
	}
	return kmClusters - 1
}
