package workloads

import (
	"fmt"

	"repro/internal/htm"
	"repro/internal/mem"
	"repro/internal/prog"
	"repro/internal/simds"
	"repro/internal/stagger"
)

// vacation: STAMP's travel reservation system. Each transaction makes a
// reservation: several red-black-tree lookups across the car/room/flight
// tables, one quantity update, and occasionally a customer-record
// insert. Trees are large and keys scatter, so contention is moderate
// (Table 1: wasted work exists but speedup is already 9.7); the paper
// uses vacation to show staggered transactions do not slow down what
// already scales.

const (
	vacRelations = 128 // entries per reservation table
	vacTables    = 3   // cars, rooms, flights
)

func init() { register("vacation", buildVacation) }

func buildVacation() *Workload {
	mod := prog.NewModule("vacation")
	rb := simds.DeclareRBTree(mod)

	resRoot := mod.NewFunc("make_reservation", "tablePtr", "customerPtr")
	resRoot.Entry().Call(rb.FnLookup, resRoot.Param(0))
	resRoot.Entry().Call(rb.FnLookup, resRoot.Param(0))
	resRoot.Entry().Call(rb.FnUpdate, resRoot.Param(0))
	abReserve := mod.Atomic("make_reservation", resRoot)

	custRoot := mod.NewFunc("add_customer", "customerPtr", "record")
	custRoot.Entry().Call(rb.FnInsert, custRoot.Param(0), custRoot.Param(1))
	abCustomer := mod.Atomic("add_customer", custRoot)

	qryRoot := mod.NewFunc("query_tables", "tablePtr")
	qryRoot.Entry().Call(rb.FnLookup, qryRoot.Param(0))
	abQuery := mod.Atomic("query_tables", qryRoot)
	mod.MustFinalize()

	var tables [vacTables]mem.Addr
	var customers mem.Addr
	return &Workload{
		Name:        "vacation",
		Description: fmt.Sprintf("reservations over %d-entry red-black trees", vacRelations),
		Contention:  "med",
		Mod:         mod,
		TotalOps:    2400,
		Setup: func(m *htm.Machine, seed int64) {
			keys := make([]uint64, vacRelations)
			for i := range keys {
				keys[i] = uint64(i*2 + 2)
			}
			for t := range tables {
				tables[t] = simds.NewRBTree(m.Alloc)
				simds.SeedRBTree(m, tables[t], keys, func(k uint64) uint64 { return 100 })
			}
			customers = simds.NewRBTree(m.Alloc)
			ckeys := make([]uint64, 256)
			for i := range ckeys {
				ckeys[i] = uint64(1000 + i*400)
			}
			simds.SeedRBTree(m, customers, ckeys, func(k uint64) uint64 { return 0 })
		},
		Body: func(rt *stagger.Runtime, tid, threads, ops int, seed int64) func(*htm.Core) {
			rng := threadRNG(seed, tid)
			return func(c *htm.Core) {
				th := rt.Thread(c.ID())
				al := c.Machine().Alloc
				for i := 0; i < ops; i++ {
					r := rng.Intn(100)
					switch {
					case r < 80: // make a reservation
						tb := tables[rng.Intn(vacTables)]
						k1 := uint64(rng.Intn(vacRelations))*2 + 2
						k2 := uint64(rng.Intn(vacRelations))*2 + 2
						th.Atomic(c, abReserve, func(tc *stagger.TxCtx) {
							rb.Lookup(tc, tb, k1)
							tc.Compute(120)
							rb.Lookup(tc, tb, k2)
							tc.Compute(120)
							rb.Update(tc, tb, k1, ^uint64(0)) // -1 seat/room
						})
					case r < 90: // register a customer
						node := al.AllocLines(1)
						key := uint64(1000 + rng.Intn(100000))
						th.Atomic(c, abCustomer, func(tc *stagger.TxCtx) {
							rb.Insert(tc, customers, key, uint64(tid), node)
						})
					default: // price queries
						tb := tables[rng.Intn(vacTables)]
						k := uint64(rng.Intn(vacRelations))*2 + 2
						th.Atomic(c, abQuery, func(tc *stagger.TxCtx) {
							rb.Lookup(tc, tb, k)
							tc.Compute(200)
						})
					}
					c.Compute(150)
				}
			}
		},
		Verify: func(m *htm.Machine, threads, totalOps int) error {
			for t := range tables {
				if !simds.RBDepthOK(m, tables[t]) {
					return fmt.Errorf("table %d violates red-black invariants", t)
				}
				if got := len(simds.RBKeys(m, tables[t])); got != vacRelations {
					return fmt.Errorf("table %d has %d keys, want %d", t, got, vacRelations)
				}
			}
			if !simds.RBDepthOK(m, customers) {
				return fmt.Errorf("customer tree violates red-black invariants")
			}
			return nil
		},
	}
}
