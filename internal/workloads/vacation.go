package workloads

import (
	"fmt"

	"repro/internal/backend"
	"repro/internal/htm"
	"repro/internal/mem"
	"repro/internal/oracle"
	"repro/internal/prog"
	"repro/internal/simds"
)

// vacation: STAMP's travel reservation system. Each transaction makes a
// reservation: several red-black-tree lookups across the car/room/flight
// tables, one quantity update, and occasionally a customer-record
// insert. Trees are large and keys scatter, so contention is moderate
// (Table 1: wasted work exists but speedup is already 9.7); the paper
// uses vacation to show staggered transactions do not slow down what
// already scales.

const (
	vacRelations = 128 // entries per reservation table
	vacTables    = 3   // cars, rooms, flights
)

// DriftVacationKind is a test-only switch (like stagger's
// UnsafeEarlyGlobalRelease) that seeds a deliberate IR-drift mutation:
// vacation's reservation body performs one dynamic LOAD attributed to a
// STORE site of the tree-update function. The static/dynamic conformance
// checker must catch exactly this kind mismatch; nothing else changes
// (the extra read touches the table header the block reads anyway).
var DriftVacationKind bool

func init() { register("vacation", buildVacation) }

func buildVacation() *Workload {
	mod := prog.NewModule("vacation")
	rb := simds.DeclareRBTree(mod)

	resRoot := mod.NewFunc("make_reservation", "tablePtr", "customerPtr")
	resRoot.Entry().Call(rb.FnLookup, resRoot.Param(0))
	resRoot.Entry().Call(rb.FnLookup, resRoot.Param(0))
	resRoot.Entry().Call(rb.FnUpdate, resRoot.Param(0))
	abReserve := mod.Atomic("make_reservation", resRoot)

	custRoot := mod.NewFunc("add_customer", "customerPtr", "record")
	custRoot.Entry().Call(rb.FnInsert, custRoot.Param(0), custRoot.Param(1))
	abCustomer := mod.Atomic("add_customer", custRoot)

	qryRoot := mod.NewFunc("query_tables", "tablePtr")
	qryRoot.Entry().Call(rb.FnLookup, qryRoot.Param(0))
	abQuery := mod.Atomic("query_tables", qryRoot)
	mod.MustFinalize()

	// The store site DriftVacationKind misattributes a load to.
	var driftSite *prog.Site
	for _, s := range rb.FnUpdate.Sites() {
		if s.IsStore {
			driftSite = s
			break
		}
	}

	var tables [vacTables]mem.Addr
	var customers mem.Addr
	return &Workload{
		Name:        "vacation",
		Description: fmt.Sprintf("reservations over %d-entry red-black trees", vacRelations),
		Contention:  "med",
		Mod:         mod,
		TotalOps:    2400,
		Setup: func(m *htm.Machine, seed int64) {
			keys := make([]uint64, vacRelations)
			for i := range keys {
				keys[i] = uint64(i*2 + 2)
			}
			for t := range tables {
				tables[t] = simds.NewRBTree(m.Alloc)
				simds.SeedRBTree(m, tables[t], keys, func(k uint64) uint64 { return 100 })
			}
			customers = simds.NewRBTree(m.Alloc)
			ckeys := make([]uint64, 256)
			for i := range ckeys {
				ckeys[i] = uint64(1000 + i*400)
			}
			simds.SeedRBTree(m, customers, ckeys, func(k uint64) uint64 { return 0 })
		},
		Body: func(rt backend.Runtime, tid, threads, ops int, seed int64) func(*htm.Core) {
			rng := threadRNG(seed, tid)
			return func(c *htm.Core) {
				th := rt.Thread(c.ID())
				al := c.Machine().Alloc
				// Hoisted body closures: see kmeans for why in-loop
				// literals cost one heap allocation per op.
				var ti int
				var tb, node mem.Addr
				var k1, k2, key, k uint64
				reserveBody := func(tc simds.Ctx) {
					v1, _ := rb.Lookup(tc, tb, k1)
					tc.Compute(120)
					rb.Lookup(tc, tb, k2)
					tc.Compute(120)
					rb.Update(tc, tb, k1, ^uint64(0)) // -1 seat/room
					if DriftVacationKind {
						tc.Load(driftSite, tb)
					}
					tc.Op(vacRes{table: ti, key: k1, before: v1})
				}
				customerBody := func(tc simds.Ctx) {
					ins := rb.Insert(tc, customers, key, uint64(tid), node)
					tc.Op(vacCust{key: key, tid: uint64(tid), inserted: ins})
				}
				queryBody := func(tc simds.Ctx) {
					v, found := rb.Lookup(tc, tb, k)
					tc.Compute(200)
					tc.Op(vacQry{table: ti, key: k, val: v, found: found})
				}
				for i := 0; i < ops; i++ {
					r := rng.Intn(100)
					switch {
					case r < 80: // make a reservation
						ti = rng.Intn(vacTables)
						tb = tables[ti]
						k1 = uint64(rng.Intn(vacRelations))*2 + 2
						k2 = uint64(rng.Intn(vacRelations))*2 + 2
						th.Atomic(c, abReserve, reserveBody)
					case r < 90: // register a customer
						node = al.AllocLines(1)
						key = uint64(1000 + rng.Intn(100000))
						th.Atomic(c, abCustomer, customerBody)
					default: // price queries
						ti = rng.Intn(vacTables)
						tb = tables[ti]
						k = uint64(rng.Intn(vacRelations))*2 + 2
						th.Atomic(c, abQuery, queryBody)
					}
					c.Compute(150)
				}
			}
		},
		Verify: func(m *htm.Machine, threads, totalOps int) error {
			for t := range tables {
				if !simds.RBDepthOK(m, tables[t]) {
					return fmt.Errorf("table %d violates red-black invariants", t)
				}
				if got := len(simds.RBKeys(m, tables[t])); got != vacRelations {
					return fmt.Errorf("table %d has %d keys, want %d", t, got, vacRelations)
				}
			}
			if !simds.RBDepthOK(m, customers) {
				return fmt.Errorf("customer tree violates red-black invariants")
			}
			return nil
		},
		RefModel: func(m *htm.Machine, seed int64) oracle.RefModel {
			md := &vacModel{m: m, rtables: tables, rcustomers: customers,
				customers: make(map[uint64]uint64, 512)}
			for t := range md.tables {
				md.tables[t] = make(map[uint64]uint64, vacRelations)
				for i := 0; i < vacRelations; i++ {
					md.tables[t][uint64(i*2+2)] = 100
				}
			}
			for i := 0; i < 256; i++ {
				md.customers[uint64(1000+i*400)] = 0
			}
			return md
		},
	}
}

// Tags for the three vacation atomic blocks. The reservation tag carries
// the quantity the transaction read before decrementing — lost updates
// between two reservations of the same slot surface as a skewed before.
type vacRes struct {
	table  int
	key    uint64
	before uint64
}
type vacCust struct {
	key      uint64
	tid      uint64
	inserted bool
}
type vacQry struct {
	table int
	key   uint64
	val   uint64
	found bool
}

// vacModel is the sequential reservation system: one Go map per
// reservation table plus the customer map.
type vacModel struct {
	m          *htm.Machine
	rtables    [vacTables]mem.Addr
	rcustomers mem.Addr
	tables     [vacTables]map[uint64]uint64
	customers  map[uint64]uint64
}

func (md *vacModel) Step(tag any) error {
	switch op := tag.(type) {
	case vacRes:
		want, present := md.tables[op.table][op.key]
		if !present {
			return fmt.Errorf("reservation touched key %d absent from table %d", op.key, op.table)
		}
		if op.before != want {
			return fmt.Errorf("reservation of table %d key %d read quantity %d, sequential model says %d",
				op.table, op.key, op.before, want)
		}
		md.tables[op.table][op.key] = want - 1
	case vacCust:
		_, present := md.customers[op.key]
		if op.inserted != !present {
			return fmt.Errorf("add_customer(%d) = %v, sequential model says %v", op.key, op.inserted, !present)
		}
		if op.inserted {
			md.customers[op.key] = op.tid
		}
	case vacQry:
		val, present := md.tables[op.table][op.key]
		if op.found != present {
			return fmt.Errorf("query of table %d key %d found = %v, sequential model says %v",
				op.table, op.key, op.found, present)
		}
		if present && op.val != val {
			return fmt.Errorf("query of table %d key %d = %d, sequential model says %d",
				op.table, op.key, op.val, val)
		}
	default:
		return fmt.Errorf("vacation: unexpected tag %T", tag)
	}
	return nil
}

func (md *vacModel) Finish() error {
	for t := range md.tables {
		if err := rbMatches(md.m, md.rtables[t], md.tables[t]); err != nil {
			return fmt.Errorf("table %d: %w", t, err)
		}
	}
	if err := rbMatches(md.m, md.rcustomers, md.customers); err != nil {
		return fmt.Errorf("customers: %w", err)
	}
	return nil
}

// rbMatches compares a real red-black tree against a model map.
func rbMatches(m *htm.Machine, tree mem.Addr, want map[uint64]uint64) error {
	keys := simds.RBKeys(m, tree)
	if len(keys) != len(want) {
		return fmt.Errorf("final tree has %d keys, model has %d", len(keys), len(want))
	}
	for _, k := range keys {
		wv, ok := want[k]
		if !ok {
			return fmt.Errorf("final tree holds key %d the model does not", k)
		}
		if gv, _ := simds.RBFind(m, tree, k); gv != wv {
			return fmt.Errorf("final tree[%d] = %d, model has %d", k, gv, wv)
		}
	}
	return nil
}
