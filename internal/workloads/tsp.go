package workloads

import (
	"fmt"

	"repro/internal/backend"
	"repro/internal/htm"
	"repro/internal/mem"
	"repro/internal/oracle"
	"repro/internal/prog"
	"repro/internal/simds"
)

// tsp: a branch-and-bound travelling-salesman solver (the paper's own
// C++ benchmark). Candidate tours live in a B+ tree priority queue keyed
// by lower bound; workers pop the most promising task, expand it, and
// push children. The queue head — the tree's left-most leaf — is the
// most contended object; staggered transactions discover it and also
// serialize same-leaf inserts when they repeatedly collide (Section 6.2).
//
// The search tree is synthetic but deterministic: each task spawns two
// children until a fixed depth, so the total expansion count is exact.

const (
	tspSeeds    = 32
	tspDepth    = 4 // each task below depth spawns 2 children
	tspBestSlot = 0
)

// tspTotalTasks is the exact number of pops a full run performs.
func tspTotalTasks() int {
	per := 0
	nodes := 1
	for d := 0; d <= tspDepth; d++ {
		per += nodes
		nodes *= 2
	}
	return tspSeeds * per
}

func init() { register("tsp", buildTsp) }

func buildTsp() *Workload {
	mod := prog.NewModule("tsp")
	bt := simds.DeclareBPTree(mod)

	// The task queue is a module global bound into both roots: pop's and
	// push's tree classes unify statically the way the runtime aliases
	// them through the one shared priority queue.
	gPQ := mod.Global("taskPQ")
	popRoot := mod.NewFunc("pop_task", "pqPtr")
	popRoot.Entry().Call(bt.FnPop, gPQ)
	abPop := mod.Atomic("pop_task", popRoot)

	pushRoot := mod.NewFunc("push_task", "pqPtr")
	pushRoot.Entry().Call(bt.FnInsert, gPQ)
	abPush := mod.Atomic("push_task", pushRoot)

	bestF := mod.NewFunc("update_best", "bestPtr")
	sBestLd := bestF.Entry().Load(bestF.Param(0), "best")
	sBestSt := bestF.Entry().Store(bestF.Param(0), "best")
	bestRoot := mod.NewFunc("ab_update_best", "bestPtr")
	bestRoot.Entry().Call(bestF, bestRoot.Param(0))
	abBest := mod.Atomic("update_best", bestRoot)
	// Declared last so the shape hint's sites number after every real
	// site (anchor tables and site IDs stay exactly as without it).
	bt.DeclareShape(mod, gPQ)
	mod.MustFinalize()

	var pq, best mem.Addr
	var popped []int // per-thread pop counters (Go-side, for Verify)
	return &Workload{
		Name:        "tsp",
		Description: "branch-and-bound TSP over a B+ tree priority queue",
		Contention:  "med",
		Mod:         mod,
		TotalOps:    tspTotalTasks(),
		Setup: func(m *htm.Machine, seed int64) {
			pq = simds.NewBPTree(m)
			best = m.Alloc.AllocLines(1)
			m.Mem.Store(best+mem.Addr(8*tspBestSlot), ^uint64(0))
			rng := threadRNG(seed, 777)
			// Seed tasks: key = bound<<16 | depth; bounds scattered.
			for i := 0; i < tspSeeds; i++ {
				bound := uint64(rng.Intn(1 << 12))
				key := bound<<16 | 0
				seedBPTInsert(m, pq, key)
			}
			popped = make([]int, m.Config().Cores)
		},
		Body: func(rt backend.Runtime, tid, threads, ops int, seed int64) func(*htm.Core) {
			rng := threadRNG(seed, tid)
			return func(c *htm.Core) {
				th := rt.Thread(c.ID())
				al := func(lines int) mem.Addr { return c.Machine().Alloc.AllocLines(lines) }
				idle := 0
				// Hoisted body closures: see kmeans for why in-loop
				// literals cost one heap allocation per op.
				var task, child, bound uint64
				var ok bool
				popBody := func(tc simds.Ctx) {
					task, ok = bt.PopMin(tc, pq)
					tc.Op(tspPop{task: task, ok: ok})
				}
				pushBody := func(tc simds.Ctx) {
					bt.Insert(tc, pq, child, al)
					tc.Op(tspPush{task: child})
				}
				bestBody := func(tc simds.Ctx) {
					cur := tc.Load(sBestLd, best)
					if bound < cur {
						tc.Store(sBestSt, best, bound)
					}
					tc.Op(tspBest{bound: bound, cur: cur})
				}
				for {
					th.Atomic(c, abPop, popBody)
					if !ok {
						// The queue may be momentarily empty while other
						// threads still expand; retry a few times.
						idle++
						if idle > 40 {
							break
						}
						c.Compute(500)
						continue
					}
					idle = 0
					popped[tid]++
					depth := task & 0xFFFF
					bound = task >> 16
					c.Compute(250) // tour bound computation
					if depth < tspDepth {
						for ch := 0; ch < 2; ch++ {
							delta := uint64(rng.Intn(64) + 1)
							child = (bound+delta)<<16 | (depth + 1)
							th.Atomic(c, abPush, pushBody)
						}
					} else {
						// Leaf: maybe improve the global best tour.
						th.Atomic(c, abBest, bestBody)
					}
				}
			}
		},
		Verify: func(m *htm.Machine, threads, totalOps int) error {
			total := 0
			for _, p := range popped {
				total += p
			}
			if rem := simds.BPTCount(m, pq); total+rem != tspTotalTasks() {
				return fmt.Errorf("popped %d + remaining %d != expanded %d",
					total, rem, tspTotalTasks())
			}
			if m.Mem.Load(best) == ^uint64(0) {
				return fmt.Errorf("no leaf ever improved the best bound")
			}
			return nil
		},
		RefModel: func(m *htm.Machine, seed int64) oracle.RefModel {
			md := &tspModel{m: m, pq: pq, bestAddr: best,
				queue: make(map[uint64]int, tspSeeds), best: ^uint64(0)}
			// Rebuild the seed tasks exactly as Setup did.
			rng := threadRNG(seed, 777)
			for i := 0; i < tspSeeds; i++ {
				bound := uint64(rng.Intn(1 << 12))
				md.queue[bound<<16]++
				md.size++
			}
			return md
		},
	}
}

// Tags for the three tsp atomic blocks. The best-update tag carries the
// bound the transaction read so a lost best-improvement is detectable.
type tspPop struct {
	task uint64
	ok   bool
}
type tspPush struct {
	task uint64
}
type tspBest struct {
	bound uint64
	cur   uint64
}

// tspModel is the sequential priority queue (a multiset — child keys can
// collide) plus the best-bound cell. Every committed pop must return the
// global minimum at its serialization point.
type tspModel struct {
	m        *htm.Machine
	pq       mem.Addr
	bestAddr mem.Addr
	queue    map[uint64]int
	size     int
	best     uint64
}

func (md *tspModel) Step(tag any) error {
	switch op := tag.(type) {
	case tspPop:
		if !op.ok {
			if md.size != 0 {
				return fmt.Errorf("pop returned empty with %d tasks queued", md.size)
			}
			return nil
		}
		if md.size == 0 {
			return fmt.Errorf("pop returned %#x from an empty queue", op.task)
		}
		min := ^uint64(0)
		for k := range md.queue {
			if k < min {
				min = k
			}
		}
		if op.task != min {
			return fmt.Errorf("pop = %#x, sequential queue minimum is %#x", op.task, min)
		}
		if md.queue[min]--; md.queue[min] == 0 {
			delete(md.queue, min)
		}
		md.size--
	case tspPush:
		md.queue[op.task]++
		md.size++
	case tspBest:
		if op.cur != md.best {
			return fmt.Errorf("best-update read %#x, sequential model says %#x", op.cur, md.best)
		}
		if op.bound < md.best {
			md.best = op.bound
		}
	default:
		return fmt.Errorf("tsp: unexpected tag %T", tag)
	}
	return nil
}

func (md *tspModel) Finish() error {
	if rem := simds.BPTCount(md.m, md.pq); rem != md.size {
		return fmt.Errorf("final queue has %d tasks, model has %d", rem, md.size)
	}
	if got := md.m.Mem.Load(md.bestAddr); got != md.best {
		return fmt.Errorf("final best = %#x, sequential model says %#x", got, md.best)
	}
	return nil
}

// seedBPTInsert inserts into the B+ tree directly (setup only): since the
// tree is empty except for seeds, inserting into the root leaf chain is
// enough as long as tspSeeds splits are honored — so just reuse the
// transactional insert under a throwaway machine-less context? Simpler:
// store seeds through leaf splits performed offline.
func seedBPTInsert(m *htm.Machine, tree mem.Addr, key uint64) {
	// Direct-memory B+ insert mirroring simds.BPTree.Insert (setup only).
	root := mem.Addr(m.Mem.Load(tree))
	height := int(m.Mem.Load(tree + 8))
	type frame struct {
		node mem.Addr
		idx  int
	}
	var path []frame
	node := root
	for lvl := height; lvl > 0; lvl-- {
		n := int(m.Mem.Load(node))
		i := 0
		for i < n && key >= m.Mem.Load(node+mem.Addr(8*(1+i))) {
			i++
		}
		path = append(path, frame{node, i})
		node = mem.Addr(m.Mem.Load(node + mem.Addr(8*(8+i))))
	}
	n := int(m.Mem.Load(node))
	keys := make([]uint64, 0, 8)
	for i := 0; i < n; i++ {
		keys = append(keys, m.Mem.Load(node+mem.Addr(8*(2+i))))
	}
	pos := 0
	for pos < n && keys[pos] <= key {
		pos++
	}
	keys = append(keys, 0)
	copy(keys[pos+1:], keys[pos:])
	keys[pos] = key
	if len(keys) <= 6 {
		for i, k := range keys {
			m.Mem.Store(node+mem.Addr(8*(2+i)), k)
		}
		m.Mem.Store(node, uint64(len(keys)))
		return
	}
	mid := 3
	right := m.Alloc.AllocLines(1)
	for i, k := range keys[:mid] {
		m.Mem.Store(node+mem.Addr(8*(2+i)), k)
	}
	m.Mem.Store(node, uint64(mid))
	for i, k := range keys[mid:] {
		m.Mem.Store(right+mem.Addr(8*(2+i)), k)
	}
	m.Mem.Store(right, uint64(len(keys)-mid))
	m.Mem.Store(right+8, m.Mem.Load(node+8))
	m.Mem.Store(node+8, uint64(right))
	// Propagate the separator up.
	sep := keys[mid]
	rightChild := right
	for lvl := len(path) - 1; lvl >= 0; lvl-- {
		p := path[lvl]
		pn := int(m.Mem.Load(p.node))
		pkeys := make([]uint64, pn, 8)
		pkids := make([]uint64, pn+1, 9)
		for i := 0; i < pn; i++ {
			pkeys[i] = m.Mem.Load(p.node + mem.Addr(8*(1+i)))
		}
		for i := 0; i <= pn; i++ {
			pkids[i] = m.Mem.Load(p.node + mem.Addr(8*(8+i)))
		}
		pkeys = append(pkeys, 0)
		copy(pkeys[p.idx+1:], pkeys[p.idx:])
		pkeys[p.idx] = sep
		pkids = append(pkids, 0)
		copy(pkids[p.idx+2:], pkids[p.idx+1:])
		pkids[p.idx+1] = uint64(rightChild)
		if len(pkeys) <= 6 {
			writeIntDirect(m, p.node, pkeys, pkids)
			return
		}
		midI := len(pkeys) / 2
		sep = pkeys[midI]
		r2 := m.Alloc.AllocLines(2)
		writeIntDirect(m, p.node, pkeys[:midI], pkids[:midI+1])
		writeIntDirect(m, r2, pkeys[midI+1:], pkids[midI+1:])
		rightChild = r2
	}
	oldRoot := mem.Addr(m.Mem.Load(tree))
	newRoot := m.Alloc.AllocLines(2)
	writeIntDirect(m, newRoot, []uint64{sep}, []uint64{uint64(oldRoot), uint64(rightChild)})
	m.Mem.Store(tree, uint64(newRoot))
	m.Mem.Store(tree+8, uint64(height+1))
}

func writeIntDirect(m *htm.Machine, node mem.Addr, keys, kids []uint64) {
	for i, k := range keys {
		m.Mem.Store(node+mem.Addr(8*(1+i)), k)
	}
	for i, c := range kids {
		m.Mem.Store(node+mem.Addr(8*(8+i)), c)
	}
	m.Mem.Store(node, uint64(len(keys)))
}
