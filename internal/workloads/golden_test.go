package workloads_test

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/anchor"
	"repro/internal/workloads"
)

var updateGolden = flag.Bool("update", false, "rewrite golden anchor-table dumps")

// TestAnchorTablesGolden locks down the compiler pass's output for every
// benchmark: the complete unified anchor tables (anchor classification,
// parents, pioneers, ALP insertion). Any change to DSA, Algorithm 1, or
// table construction that alters a real program's compilation shows up
// here as a diff. Regenerate intentionally with:
//
//	go test ./internal/workloads -run Golden -update
func TestAnchorTablesGolden(t *testing.T) {
	for _, name := range workloads.Names() {
		t.Run(name, func(t *testing.T) {
			w, err := workloads.Get(name)
			if err != nil {
				t.Fatal(err)
			}
			c := anchor.Compile(w.Mod, anchor.DefaultOptions())
			out := ""
			for _, ab := range w.Mod.Atomics {
				out += c.Dump(ab) + "\n"
			}
			path := filepath.Join("testdata", name+".anchors.golden")
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if string(want) != out {
				t.Errorf("anchor tables changed; run with -update if intended.\n--- got ---\n%s\n--- want ---\n%s", out, want)
			}
		})
	}
}
