package workloads

import (
	"fmt"

	"repro/internal/backend"
	"repro/internal/htm"
	"repro/internal/mem"
	"repro/internal/oracle"
	"repro/internal/prog"
	"repro/internal/simds"
)

// list-lo and list-hi: the RSTM IntSet microbenchmark. A set of threads
// search and update one shared sorted list of ~64 nodes. list-lo runs
// 90/5/5 lookup/insert/delete; list-hi runs 60/20/20 and is the paper's
// worst scaler (S = 1.0 at 16 threads). Conflicting addresses vary from
// instance to instance (cells all over the heap) while the conflicting
// PCs are stable — the pattern that needs coarse-grain locking and
// promotion rather than address-based prediction.

const listNodes = 128

func init() {
	register("list-lo", func() *Workload { return buildList("list-lo", 90, 5, 3200) })
	register("list-hi", func() *Workload { return buildList("list-hi", 60, 20, 3200) })
}

func buildList(name string, lookupPct, insertPct, totalOps int) *Workload {
	mod := prog.NewModule(name)
	l := simds.DeclareSortedList(mod)
	// The shared list is a module global bound into every atomic block's
	// root call: the static conflict classes of the four blocks unify
	// through it exactly as the runtime aliases them through `list`.
	gList := mod.Global("list")
	abLookup := atomicWrap(mod, "lookup", l.FnLookup, gList)
	abInsert := atomicWrap(mod, "insert", l.FnInsert, gList)
	abDelete := atomicWrap(mod, "delete", l.FnDelete, gList)
	abSize := atomicWrap(mod, "contains_all", l.FnLookup, gList)
	mod.MustFinalize()

	var list mem.Addr
	return &Workload{
		Name: name,
		Description: fmt.Sprintf("%d nodes, %d%%/%d%%/%d%% lookup/insert/delete",
			listNodes, lookupPct, insertPct, 100-lookupPct-insertPct),
		Contention: map[string]string{"list-lo": "med", "list-hi": "high"}[name],
		Mod:        mod,
		TotalOps:   totalOps,
		Setup: func(m *htm.Machine, seed int64) {
			list = simds.NewList(m.Alloc)
			keys := make([]uint64, 0, listNodes)
			for k := uint64(2); len(keys) < listNodes; k += 4 {
				keys = append(keys, k)
			}
			simds.SeedList(m, list, keys)
		},
		Body: func(rt backend.Runtime, tid, threads, ops int, seed int64) func(*htm.Core) {
			rng := threadRNG(seed, tid)
			return func(c *htm.Core) {
				th := rt.Thread(c.ID())
				// Per-thread node pool (Lockless-allocator stand-in):
				// nodes pack four to a line within one thread's pool.
				pool := mem.NewAllocator(c.Machine().Alloc.AllocLines(ops/2+2), uint64(ops/2+2)*64)
				// Hoisted body closures: see kmeans for why in-loop
				// literals cost one heap allocation per op.
				var k uint64
				var node mem.Addr
				lookupBody := func(tc simds.Ctx) {
					found := l.Lookup(tc, list, k)
					tc.Op(listOp{kind: listLookup, key: k, result: found})
				}
				insertBody := func(tc simds.Ctx) {
					ins := l.Insert(tc, list, k, node)
					tc.Op(listOp{kind: listInsert, key: k, result: ins})
				}
				deleteBody := func(tc simds.Ctx) {
					del := l.Delete(tc, list, k)
					tc.Op(listOp{kind: listDelete, key: k, result: del})
				}
				scanBody := func(tc simds.Ctx) {
					found := l.Lookup(tc, list, uint64(4*listNodes))
					tc.Op(listOp{kind: listLookup, key: uint64(4 * listNodes), result: found})
				}
				for i := 0; i < ops; i++ {
					k = uint64(rng.Intn(2*listNodes))*2 + 2
					r := rng.Intn(100)
					switch {
					case r < lookupPct:
						th.Atomic(c, abLookup, lookupBody)
					case r < lookupPct+insertPct:
						node = pool.AllocObject(2)
						th.Atomic(c, abInsert, insertBody)
					default:
						th.Atomic(c, abDelete, deleteBody)
					}
					c.Compute(10) // non-transactional think time
					if i%64 == 63 {
						// Occasional longer read-only scan (4th atomic block).
						th.Atomic(c, abSize, scanBody)
					}
				}
			}
		},
		Verify: func(m *htm.Machine, threads, totalOps int) error {
			keys := simds.Keys(m, list)
			for i := 1; i < len(keys); i++ {
				if keys[i-1] >= keys[i] {
					return fmt.Errorf("list unsorted at %d: %d >= %d", i, keys[i-1], keys[i])
				}
			}
			for _, k := range keys {
				if k%2 != 0 {
					return fmt.Errorf("odd key %d leaked into list", k)
				}
			}
			return nil
		},
		RefModel: func(m *htm.Machine, seed int64) oracle.RefModel {
			set := make(map[uint64]bool, listNodes)
			for k := uint64(2); len(set) < listNodes; k += 4 {
				set[k] = true
			}
			return &listModel{m: m, list: list, set: set}
		},
	}
}

// listOp tags one committed IntSet operation with its observed result.
type listOp struct {
	kind   uint8
	key    uint64
	result bool
}

const (
	listLookup uint8 = iota
	listInsert
	listDelete
)

// listModel is the sequential IntSet: a plain Go set stepped in commit
// order; every committed result must match what the sequential set says.
type listModel struct {
	m    *htm.Machine
	list mem.Addr
	set  map[uint64]bool
}

func (md *listModel) Step(tag any) error {
	op, ok := tag.(listOp)
	if !ok {
		return fmt.Errorf("list: unexpected tag %T", tag)
	}
	present := md.set[op.key]
	switch op.kind {
	case listLookup:
		if op.result != present {
			return fmt.Errorf("lookup(%d) = %v, sequential set says %v", op.key, op.result, present)
		}
	case listInsert:
		if op.result != !present {
			return fmt.Errorf("insert(%d) = %v, sequential set says %v", op.key, op.result, !present)
		}
		md.set[op.key] = true
	case listDelete:
		if op.result != present {
			return fmt.Errorf("delete(%d) = %v, sequential set says %v", op.key, op.result, present)
		}
		delete(md.set, op.key)
	}
	return nil
}

// Finish compares the final list contents against the model set.
func (md *listModel) Finish() error {
	keys := simds.Keys(md.m, md.list)
	if len(keys) != len(md.set) {
		return fmt.Errorf("final list has %d keys, model has %d", len(keys), len(md.set))
	}
	for _, k := range keys {
		if !md.set[k] {
			return fmt.Errorf("final list holds key %d the model does not", k)
		}
	}
	return nil
}

// atomicWrap declares an atomic block that calls fn (the usual
// "TM_BEGIN; call; TM_END" shape). fn's first parameter — the shared
// structure pointer — binds to the module global the runtime passes;
// remaining parameters bind to the root's own (thread-private) params.
func atomicWrap(mod *prog.Module, name string, fn *prog.Func, structPtr *prog.Value) *prog.AtomicBlock {
	root := mod.NewFunc("ab_"+name, "a0", "a1")
	args := make([]*prog.Value, len(fn.Params))
	for i := range args {
		if i == 0 {
			args[i] = structPtr
		} else {
			args[i] = root.Param(i % 2)
		}
	}
	root.Entry().Call(fn, args...)
	return mod.Atomic(name, root)
}
