package workloads

import (
	"fmt"

	"repro/internal/backend"
	"repro/internal/htm"
	"repro/internal/mem"
	"repro/internal/oracle"
	"repro/internal/prog"
	"repro/internal/simds"
)

// labyrinth: STAMP's maze router (Lee's algorithm). Each transaction
// routes one wire: it privatizes the grid with nontransactional reads
// (standing in for STAMP's early release), computes a shortest path on
// the snapshot, then transactionally validates and claims the path's
// cells. Transactions are long and write-heavy, so aborts are expensive
// (Table 4: 3.47 aborts/commit, S = 1.9 at 16 threads).

const (
	labX, labY, labZ = 16, 16, 2
	labRoutes        = 96
)

func init() { register("labyrinth", buildLabyrinth) }

func buildLabyrinth() *Workload {
	mod := prog.NewModule("labyrinth")
	g := simds.DeclareGrid(mod, labX, labY, labZ)
	// The grid is a module global bound into both blocks' root calls, so
	// claim's and release's cell classes unify statically the way the
	// runtime aliases them through the one shared grid.
	gGrid := mod.Global("grid")
	root := mod.NewFunc("route_path", "gridPtr")
	root.Entry().Call(g.FnClaim, gGrid)
	ab := mod.Atomic("route_path", root)
	relRoot := mod.NewFunc("ripup_path", "gridPtr")
	relRoot.Entry().Call(g.FnRelease, gGrid)
	abRel := mod.Atomic("ripup_path", relRoot)
	mod.MustFinalize()

	var base, cells mem.Addr
	var routed, failed []int
	return &Workload{
		Name:        "labyrinth",
		Description: fmt.Sprintf("maze routing on a %dx%dx%d grid", labX, labY, labZ),
		Contention:  "high",
		Mod:         mod,
		TotalOps:    labRoutes,
		Setup: func(m *htm.Machine, seed int64) {
			base = simds.NewGrid(m, g)
			cells = simds.Cells(m, base)
			routed = make([]int, m.Config().Cores)
			failed = make([]int, m.Config().Cores)
		},
		Body: func(rt backend.Runtime, tid, threads, ops int, seed int64) func(*htm.Core) {
			rng := threadRNG(seed, tid)
			return func(c *htm.Core) {
				th := rt.Thread(c.ID())
				buf := make([]uint64, labX*labY*labZ)
				owner := uint64(tid + 1)
				var held []mem.Addr
				// Hoisted body closures: see kmeans for why in-loop
				// literals cost one heap allocation per op.
				var prev, path []mem.Addr
				var sy, dy, z int
				ok := false
				relBody := func(tc simds.Ctx) {
					g.ReleasePath(tc, base, prev)
					tc.Op(labRel{path: prev, owner: owner})
				}
				routeBody := func(tc simds.Ctx) {
					ok = false
					g.Snapshot(tc, cells, buf)
					path = bfsPath(g, cells, buf, 0, sy, labX-1, dy, z)
					tc.Compute(800) // wavefront expansion
					if path == nil {
						tc.Op(labClaim{owner: owner})
						return
					}
					// Validation holds the path in the read set
					// through the traceback (the conflict window).
					ok = g.ClaimPath(tc, base, path, owner, 2500)
					tc.Op(labClaim{path: path, owner: owner, ok: ok})
				}
				for i := 0; i < ops; i++ {
					// Rip up the previous wire first (rip-up and re-route),
					// so free space stays available and contention comes
					// from concurrent routing, not from a full maze.
					if held != nil {
						prev = held
						th.Atomic(c, abRel, relBody)
						held = nil
					}
					// Wires run edge to edge, so concurrent paths cross in
					// the middle of the maze and contend there.
					sy, dy = rng.Intn(labY), rng.Intn(labY)
					z = rng.Intn(labZ)
					ok = false
					for attempt := 0; attempt < 6 && !ok; attempt++ {
						th.Atomic(c, ab, routeBody)
						if !ok {
							c.Compute(300)
						}
					}
					if ok {
						routed[tid]++
						held = path
					} else {
						failed[tid]++
					}
				}
			}
		},
		Verify: func(m *htm.Machine, threads, totalOps int) error {
			r, f := 0, 0
			for i := range routed {
				r += routed[i]
				f += failed[i]
			}
			if r+f != totalOps {
				return fmt.Errorf("routed %d + failed %d != %d attempts", r, f, totalOps)
			}
			if r == 0 {
				return fmt.Errorf("no wire ever routed")
			}
			// Claimed cells must carry valid owner ids.
			for z := 0; z < labZ; z++ {
				for y := 0; y < labY; y++ {
					for x := 0; x < labX; x++ {
						o := g.CellOwner(m, base, x, y, z)
						if o > uint64(threads) {
							return fmt.Errorf("cell (%d,%d,%d) has bogus owner %d", x, y, z, o)
						}
					}
				}
			}
			return nil
		},
		RefModel: func(m *htm.Machine, seed int64) oracle.RefModel {
			return &labModel{m: m, g: g, base: base, owners: make(map[mem.Addr]uint64)}
		},
	}
}

// Tags for the two labyrinth atomic blocks. A nil path with ok=false
// means the BFS found no route on the (nontransactional) snapshot — the
// snapshot may be stale, so the model does not second-guess it.
type labClaim struct {
	path  []mem.Addr
	owner uint64
	ok    bool
}
type labRel struct {
	path  []mem.Addr
	owner uint64
}

// labModel tracks sequential grid ownership. A successful claim must have
// found every path cell free at its serialization point; a failed claim
// with a path must have hit at least one occupied cell; a release must
// free only cells the releasing wire owns.
type labModel struct {
	m      *htm.Machine
	g      *simds.Grid
	base   mem.Addr
	owners map[mem.Addr]uint64
}

func (md *labModel) Step(tag any) error {
	switch op := tag.(type) {
	case labClaim:
		if op.ok {
			for _, cell := range op.path {
				if o := md.owners[cell]; o != 0 {
					return fmt.Errorf("claim by %d succeeded over cell %#x owned by %d",
						op.owner, uint64(cell), o)
				}
			}
			for _, cell := range op.path {
				md.owners[cell] = op.owner
			}
			return nil
		}
		if op.path != nil {
			for _, cell := range op.path {
				if md.owners[cell] != 0 {
					return nil
				}
			}
			return fmt.Errorf("claim by %d failed though every path cell is free", op.owner)
		}
	case labRel:
		for _, cell := range op.path {
			if o := md.owners[cell]; o != op.owner {
				return fmt.Errorf("release by %d of cell %#x owned by %d", op.owner, uint64(cell), o)
			}
		}
		for _, cell := range op.path {
			md.owners[cell] = 0
		}
	default:
		return fmt.Errorf("labyrinth: unexpected tag %T", tag)
	}
	return nil
}

func (md *labModel) Finish() error {
	for z := 0; z < labZ; z++ {
		for y := 0; y < labY; y++ {
			for x := 0; x < labX; x++ {
				got := md.g.CellOwner(md.m, md.base, x, y, z)
				want := md.owners[md.g.CellAddr(simds.Cells(md.m, md.base), x, y, z)]
				if got != want {
					return fmt.Errorf("final cell (%d,%d,%d) owner = %d, sequential model says %d",
						x, y, z, got, want)
				}
			}
		}
	}
	return nil
}

// bfsPath finds a free path from (sx,sy) to (dx,dy) on layer z of the
// snapshot, returning cell addresses or nil. It is intentionally a plain
// Go BFS: the real work is modeled by the Compute call at the call site,
// while the snapshot reads already paid their nontransactional latency.
func bfsPath(g *simds.Grid, base mem.Addr, snap []uint64, sx, sy, dx, dy, z int) []mem.Addr {
	idx := func(x, y int) int { return (z*g.Y+y)*g.X + x }
	if snap[idx(sx, sy)] != 0 || snap[idx(dx, dy)] != 0 {
		return nil
	}
	prev := make([]int, len(snap))
	for i := range prev {
		prev[i] = -1
	}
	queue := []int{idx(sx, sy)}
	prev[idx(sx, sy)] = idx(sx, sy)
	found := false
	for len(queue) > 0 && !found {
		cur := queue[0]
		queue = queue[1:]
		cx := cur % g.X
		cy := (cur / g.X) % g.Y
		for _, d := range [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
			nx, ny := cx+d[0], cy+d[1]
			if nx < 0 || ny < 0 || nx >= g.X || ny >= g.Y {
				continue
			}
			ni := idx(nx, ny)
			if prev[ni] != -1 || snap[ni] != 0 {
				continue
			}
			prev[ni] = cur
			if nx == dx && ny == dy {
				found = true
				break
			}
			queue = append(queue, ni)
		}
	}
	if !found {
		return nil
	}
	var path []mem.Addr
	for cur := idx(dx, dy); ; cur = prev[cur] {
		x := cur % g.X
		y := (cur / g.X) % g.Y
		path = append(path, g.CellAddr(base, x, y, z))
		if prev[cur] == cur {
			break
		}
	}
	return path
}
