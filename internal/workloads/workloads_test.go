package workloads_test

import (
	"testing"

	"repro/internal/harness"
	"repro/internal/stagger"
	"repro/internal/workloads"
)

// TestAllBenchmarksAllModes smoke-tests every benchmark under every
// system at small scale: runs must complete, verify, and commit work.
func TestAllBenchmarksAllModes(t *testing.T) {
	modes := []stagger.Mode{stagger.ModeHTM, stagger.ModeAddrOnly,
		stagger.ModeStaggeredSW, stagger.ModeStaggeredHW}
	for _, name := range workloads.Names() {
		for _, mode := range modes {
			t.Run(name+"/"+mode.String(), func(t *testing.T) {
				res, err := harness.Run(harness.RunConfig{
					Benchmark: name,
					Mode:      mode,
					Threads:   4,
					Seed:      7,
					TotalOps:  smallOps(name),
				})
				if err != nil {
					t.Fatal(err)
				}
				if res.VerifyErr != nil {
					t.Fatalf("verify: %v", res.VerifyErr)
				}
				if res.Stats.Commits == 0 {
					t.Fatal("no transactions committed")
				}
				if res.Makespan() == 0 {
					t.Fatal("zero makespan")
				}
			})
		}
	}
}

// smallOps shrinks fixed-shape workloads enough for fast CI runs.
func smallOps(name string) int {
	switch name {
	case "intruder", "tsp":
		return 0 // queue-driven: use the workload default
	case "labyrinth":
		return 24
	default:
		return 240
	}
}

func TestSingleThreadMatchesSequential(t *testing.T) {
	for _, name := range workloads.Names() {
		res, err := harness.Run(harness.RunConfig{
			Benchmark: name,
			Mode:      stagger.ModeHTM,
			Threads:   1,
			Seed:      3,
			TotalOps:  smallOps(name),
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.VerifyErr != nil {
			t.Fatalf("%s: verify: %v", name, res.VerifyErr)
		}
		if got := res.Stats.TotalAborts(); got != 0 {
			t.Errorf("%s: single-thread run aborted %d times", name, got)
		}
	}
}

func TestDeterministicResults(t *testing.T) {
	for _, name := range []string{"list-hi", "memcached", "tsp"} {
		run := func() *harness.Result {
			res, err := harness.Run(harness.RunConfig{
				Benchmark: name,
				Mode:      stagger.ModeStaggeredHW,
				Threads:   4,
				Seed:      11,
				TotalOps:  smallOps(name),
			})
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		a, b := run(), run()
		if a.Makespan() != b.Makespan() || a.Stats.Commits != b.Stats.Commits ||
			a.Stats.TotalAborts() != b.Stats.TotalAborts() || a.Metrics != b.Metrics {
			t.Errorf("%s: nondeterministic across runs", name)
		}
	}
}

func TestWorkloadMetadata(t *testing.T) {
	names := workloads.Names()
	if len(names) != 10 {
		t.Fatalf("registered %d benchmarks, want 10: %v", len(names), names)
	}
	for _, n := range names {
		w, err := workloads.Get(n)
		if err != nil {
			t.Fatal(err)
		}
		if w.Description == "" || w.Contention == "" {
			t.Errorf("%s: missing metadata", n)
		}
		if !w.Mod.Finalized() {
			t.Errorf("%s: module not finalized", n)
		}
		if len(w.Mod.Atomics) == 0 {
			t.Errorf("%s: no atomic blocks", n)
		}
		if w.TotalOps <= 0 {
			t.Errorf("%s: bad TotalOps %d", n, w.TotalOps)
		}
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := workloads.Get("nope"); err == nil {
		t.Fatal("expected error for unknown benchmark")
	}
}

// TestThreadSweep: every benchmark verifies at 1, 2, 8, and 16 threads
// under the staggered system — the invariants must hold at any width.
func TestThreadSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep in -short mode")
	}
	for _, name := range workloads.Names() {
		for _, threads := range []int{1, 2, 8, 16} {
			res, err := harness.Run(harness.RunConfig{
				Benchmark: name,
				Mode:      stagger.ModeStaggeredHW,
				Threads:   threads,
				Seed:      13,
				TotalOps:  smallOps(name),
			})
			if err != nil {
				t.Fatalf("%s/%d: %v", name, threads, err)
			}
			if res.VerifyErr != nil {
				t.Fatalf("%s/%d: verify: %v", name, threads, res.VerifyErr)
			}
		}
	}
}

// TestSeedSweep: correctness must not depend on the seed.
func TestSeedSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep in -short mode")
	}
	for _, name := range []string{"list-hi", "tsp", "memcached", "labyrinth", "genome"} {
		for _, seed := range []int64{1, 99, 12345} {
			res, err := harness.Run(harness.RunConfig{
				Benchmark: name,
				Mode:      stagger.ModeStaggeredHW,
				Threads:   8,
				Seed:      seed,
				TotalOps:  smallOps(name),
			})
			if err != nil {
				t.Fatalf("%s/seed%d: %v", name, seed, err)
			}
			if res.VerifyErr != nil {
				t.Fatalf("%s/seed%d: verify: %v", name, seed, res.VerifyErr)
			}
		}
	}
}

// TestLazyModeAllBenchmarks: the lazy-TM extension must preserve every
// workload invariant.
func TestLazyModeAllBenchmarks(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep in -short mode")
	}
	for _, name := range workloads.Names() {
		for _, mode := range []stagger.Mode{stagger.ModeHTM, stagger.ModeStaggeredHW} {
			res, err := harness.Run(harness.RunConfig{
				Benchmark: name,
				Mode:      mode,
				Threads:   8,
				Seed:      7,
				TotalOps:  smallOps(name),
				Lazy:      true,
			})
			if err != nil {
				t.Fatalf("%s/%v lazy: %v", name, mode, err)
			}
			if res.VerifyErr != nil {
				t.Fatalf("%s/%v lazy: verify: %v", name, mode, res.VerifyErr)
			}
		}
	}
}

// TestInstrumentationAccuracyFloor: anchor identification accuracy stays
// high across all benchmarks at full contention.
func TestInstrumentationAccuracyFloor(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep in -short mode")
	}
	for _, name := range workloads.Names() {
		res, err := harness.Run(harness.RunConfig{
			Benchmark: name,
			Mode:      stagger.ModeStaggeredHW,
			Threads:   16,
			Seed:      42,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Metrics.AccTotal > 20 && res.Metrics.Accuracy() < 0.8 {
			t.Errorf("%s: accuracy %.2f below floor (%d/%d)",
				name, res.Metrics.Accuracy(), res.Metrics.AccHits, res.Metrics.AccTotal)
		}
	}
}
