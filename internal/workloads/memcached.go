package workloads

import (
	"fmt"
	"sort"

	"repro/internal/backend"
	"repro/internal/htm"
	"repro/internal/mem"
	"repro/internal/oracle"
	"repro/internal/prog"
	"repro/internal/simds"
)

// memcached: an in-memory key-value store (modeled on memcached 1.4.9
// with the network code elided, fed synthetic memslap-style traffic).
// Every GET and SET transaction updates the global statistics block in
// the middle of the transaction — the paper's Table 1 identifies
// "statistics information" as the contention source, with stable
// conflicting addresses and PCs (precise-mode territory).

const (
	mcBuckets  = 128
	mcInitKeys = 256
	mcKeySpace = 512

	statGets   = 0
	statSets   = 1
	statHits   = 2
	statMisses = 3
)

func init() { register("memcached", buildMemcached) }

func buildMemcached() *Workload {
	mod := prog.NewModule("memcached")
	ht := simds.DeclareHashTable(mod)
	sb := simds.DeclareStats(mod)

	// The item table and stats block are module globals bound into both
	// roots: GET's and SET's chain classes unify statically the way the
	// runtime aliases them through the one shared table.
	gHT := mod.Global("itemTable")
	gStats := mod.Global("stats")

	// GET: lookup, then bump gets + hits/misses mid-transaction.
	getRoot := mod.NewFunc("process_get", "htPtr", "statsPtr")
	getRoot.Entry().Call(ht.FnLookup, gHT)
	getRoot.Entry().Call(sb.FnBump, gStats)
	getRoot.Entry().Call(sb.FnBump, gStats)
	abGet := mod.Atomic("get", getRoot)

	// SET: insert/update, then bump sets.
	setRoot := mod.NewFunc("process_set", "htPtr", "statsPtr", "item")
	setRoot.Entry().Call(ht.FnInsert, gHT, setRoot.Param(2))
	setRoot.Entry().Call(sb.FnBump, gStats)
	abSet := mod.Atomic("set", setRoot)
	mod.MustFinalize()

	var table, stats mem.Addr
	return &Workload{
		Name:        "memcached",
		Description: "in-memory key-value storage, 90% GET / 10% SET",
		Contention:  "high",
		Mod:         mod,
		TotalOps:    3200,
		Setup: func(m *htm.Machine, seed int64) {
			table = simds.NewHashTable(m, mcBuckets)
			stats = simds.NewStats(m.Alloc)
			rng := threadRNG(seed, 999)
			for i := 0; i < mcInitKeys; i++ {
				k := uint64(rng.Intn(mcKeySpace) + 1)
				node := m.Alloc.AllocLines(1)
				seedHTInsert(m, table, k, k*3, node)
			}
		},
		Body: func(rt backend.Runtime, tid, threads, ops int, seed int64) func(*htm.Core) {
			rng := threadRNG(seed, tid)
			return func(c *htm.Core) {
				th := rt.Thread(c.ID())
				// Hoisted body closures: see kmeans for why in-loop
				// literals cost one heap allocation per op.
				var k uint64
				var node mem.Addr
				getBody := func(tc simds.Ctx) {
					tc.Compute(60) // request parsing
					val, hit := ht.Lookup(tc, table, k)
					tc.Compute(40)
					sb.Bump(tc, stats, statGets, 1)
					if hit {
						sb.Bump(tc, stats, statHits, 1)
					} else {
						sb.Bump(tc, stats, statMisses, 1)
					}
					tc.Compute(40) // response formatting
					tc.Op(mcOp{key: k, val: val, hit: hit})
				}
				setBody := func(tc simds.Ctx) {
					tc.Compute(200)
					isNew := ht.Insert(tc, table, k, k*7, node)
					sb.Bump(tc, stats, statSets, 1)
					tc.Compute(100)
					tc.Op(mcOp{set: true, key: k, val: k * 7, hit: !isNew})
				}
				for i := 0; i < ops; i++ {
					k = uint64(rng.Intn(mcKeySpace) + 1)
					if rng.Intn(100) < 90 {
						th.Atomic(c, abGet, getBody)
					} else {
						node = c.Machine().Alloc.AllocLines(1)
						th.Atomic(c, abSet, setBody)
					}
					c.Compute(500)
				}
			}
		},
		Verify: func(m *htm.Machine, threads, totalOps int) error {
			gets := simds.Counter(m.Mem, stats, statGets)
			sets := simds.Counter(m.Mem, stats, statSets)
			hits := simds.Counter(m.Mem, stats, statHits)
			misses := simds.Counter(m.Mem, stats, statMisses)
			if gets+sets != uint64(totalOps) {
				return fmt.Errorf("gets+sets = %d, want %d", gets+sets, totalOps)
			}
			if hits+misses != gets {
				return fmt.Errorf("hits+misses = %d, gets = %d", hits+misses, gets)
			}
			if n := simds.HTCount(m, table); n < mcInitKeys/2 || n > mcKeySpace {
				return fmt.Errorf("implausible table size %d", n)
			}
			return nil
		},
		RefModel: func(m *htm.Machine, seed int64) oracle.RefModel {
			// Re-derive the seeded contents exactly as Setup did.
			kv := make(map[uint64]uint64, mcInitKeys)
			rng := threadRNG(seed, 999)
			for i := 0; i < mcInitKeys; i++ {
				k := uint64(rng.Intn(mcKeySpace) + 1)
				kv[k] = k * 3
			}
			return &mcModel{m: m, table: table, stats: stats, kv: kv}
		},
	}
}

// mcOp tags one committed cache request with its observed result. For a
// GET, hit/val are the lookup's outcome; for a SET, hit records whether
// the key already existed (in-place update) and val the stored value.
type mcOp struct {
	set bool
	key uint64
	val uint64
	hit bool
}

// mcModel is the sequential cache: a Go map plus the four statistics
// counters, stepped in commit order.
type mcModel struct {
	m            *htm.Machine
	table, stats mem.Addr
	kv           map[uint64]uint64

	gets, sets, hits, misses uint64
}

func (md *mcModel) Step(tag any) error {
	op, ok := tag.(mcOp)
	if !ok {
		return fmt.Errorf("memcached: unexpected tag %T", tag)
	}
	val, present := md.kv[op.key]
	if op.set {
		md.sets++
		if op.hit != present {
			return fmt.Errorf("set(%d) existing = %v, sequential cache says %v", op.key, op.hit, present)
		}
		md.kv[op.key] = op.val
		return nil
	}
	md.gets++
	if op.hit != present {
		return fmt.Errorf("get(%d) hit = %v, sequential cache says %v", op.key, op.hit, present)
	}
	if present {
		md.hits++
		if op.val != val {
			return fmt.Errorf("get(%d) = %d, sequential cache says %d", op.key, op.val, val)
		}
	} else {
		md.misses++
	}
	return nil
}

func (md *mcModel) Finish() error {
	// Fixed check order: map iteration would report a random stat (or
	// key) when several diverge at once.
	stats := []struct {
		name      string
		got, want uint64
	}{
		{"gets", simds.Counter(md.m.Mem, md.stats, statGets), md.gets},
		{"sets", simds.Counter(md.m.Mem, md.stats, statSets), md.sets},
		{"hits", simds.Counter(md.m.Mem, md.stats, statHits), md.hits},
		{"misses", simds.Counter(md.m.Mem, md.stats, statMisses), md.misses},
	}
	for _, s := range stats {
		if s.got != s.want {
			return fmt.Errorf("stat %s = %d, sequential model says %d", s.name, s.got, s.want)
		}
	}
	if n := simds.HTCount(md.m, md.table); n != len(md.kv) {
		return fmt.Errorf("final table has %d keys, model has %d", n, len(md.kv))
	}
	keys := make([]uint64, 0, len(md.kv))
	for k := range md.kv {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		if got := chainFind(md.m, md.table, k); got != md.kv[k] {
			return fmt.Errorf("final table[%d] = %d, model has %d", k, got, md.kv[k])
		}
	}
	return nil
}

// seedHTInsert populates the hash table directly in memory (setup only).
func seedHTInsert(m *htm.Machine, ht mem.Addr, key, val uint64, node mem.Addr) {
	nb := m.Mem.Load(ht)
	bi := seedHTHash(key, nb)
	chain := mem.Addr(m.Mem.Load(ht + mem.Addr(8*(1+bi))))
	// Walk for duplicates.
	cur := mem.Addr(m.Mem.Load(chain))
	for cur != 0 {
		if m.Mem.Load(cur) == key {
			m.Mem.Store(cur+8, val)
			return
		}
		cur = mem.Addr(m.Mem.Load(cur + 16))
	}
	m.Mem.Store(node, key)
	m.Mem.Store(node+8, val)
	m.Mem.Store(node+16, m.Mem.Load(chain))
	m.Mem.Store(chain, uint64(node))
}

func seedHTHash(key, numBucket uint64) uint64 {
	return (key * 0x9E3779B97F4A7C15 >> 33) % numBucket
}
