package workloads

import (
	"fmt"

	"repro/internal/backend"
	"repro/internal/htm"
	"repro/internal/mem"
	"repro/internal/oracle"
	"repro/internal/prog"
	"repro/internal/simds"
)

// ssca2: the SSCA2 graph kernel — concurrent construction of adjacency
// arrays. Each transaction appends one directed edge to a node's bounded
// adjacency record. With thousands of nodes and tiny transactions,
// conflicts are rare (Table 4: 0.02 aborts/commit, "low") and most time
// is spent outside transactions (%TM = 16%): ssca2 is the paper's
// guard benchmark showing staggered transactions add no overhead when
// there is nothing to fix.

const (
	ssNodes   = 2048
	ssEdgeCap = 6 // per-node adjacency capacity (1 line per node)
)

func init() { register("ssca2", buildSSCA2) }

func buildSSCA2() *Workload {
	mod := prog.NewModule("ssca2")
	f := mod.NewFunc("add_edge", "nodePtr")
	sCnt := f.Entry().Load(f.Param(0), "count")
	sEdge := f.Entry().Store(f.Param(0), "edge")
	sStore := f.Entry().Store(f.Param(0), "count")
	root := mod.NewFunc("ab_add_edge", "graphPtr")
	root.Entry().Call(f, root.Param(0))
	ab := mod.Atomic("add_edge", root)
	mod.MustFinalize()

	var base mem.Addr
	nodeAddr := func(i int) mem.Addr { return base + mem.Addr(i*64) }
	return &Workload{
		Name:        "ssca2",
		Description: fmt.Sprintf("graph construction: %d nodes, bounded adjacency", ssNodes),
		Contention:  "low",
		Mod:         mod,
		TotalOps:    4096,
		Setup: func(m *htm.Machine, seed int64) {
			base = m.Alloc.AllocLines(ssNodes)
		},
		Body: func(rt backend.Runtime, tid, threads, ops int, seed int64) func(*htm.Core) {
			rng := threadRNG(seed, tid)
			return func(c *htm.Core) {
				th := rt.Thread(c.ID())
				// Hoisted body closure: see kmeans for why in-loop
				// literals cost one heap allocation per op.
				var u int
				var v uint64
				var na mem.Addr
				body := func(tc simds.Ctx) {
					cnt := tc.Load(sCnt, na)
					if cnt < ssEdgeCap {
						tc.Store(sEdge, na+mem.Addr(8*(1+cnt)), v)
						tc.Store(sStore, na, cnt+1)
					}
					tc.Op(ssOp{node: u, val: v, cnt: cnt})
				}
				for i := 0; i < ops; i++ {
					u = rng.Intn(ssNodes)
					v = uint64(rng.Intn(ssNodes))
					// Edge generation and permutation work happen outside
					// the transaction (%TM stays low).
					c.Compute(1500)
					na = nodeAddr(u)
					th.Atomic(c, ab, body)
				}
			}
		},
		Verify: func(m *htm.Machine, threads, totalOps int) error {
			var total uint64
			for i := 0; i < ssNodes; i++ {
				cnt := m.Mem.Load(nodeAddr(i))
				if cnt > ssEdgeCap {
					return fmt.Errorf("node %d overflowed: %d", i, cnt)
				}
				total += cnt
			}
			if total == 0 {
				return fmt.Errorf("no edges added")
			}
			return nil
		},
		RefModel: func(m *htm.Machine, seed int64) oracle.RefModel {
			return &ssModel{m: m, nodeAddr: nodeAddr, edges: make([][]uint64, ssNodes)}
		},
	}
}

// ssOp tags one committed add_edge attempt: cnt is the adjacency count
// the transaction observed (cnt >= ssEdgeCap means it dropped the edge).
type ssOp struct {
	node int
	val  uint64
	cnt  uint64
}

// ssModel replays edge appends sequentially; each committed transaction
// must have observed exactly the count the commit-order prefix produced.
type ssModel struct {
	m        *htm.Machine
	nodeAddr func(int) mem.Addr
	edges    [][]uint64
}

func (md *ssModel) Step(tag any) error {
	op, ok := tag.(ssOp)
	if !ok {
		return fmt.Errorf("ssca2: unexpected tag %T", tag)
	}
	if op.node < 0 || op.node >= ssNodes {
		return fmt.Errorf("ssca2: node %d out of range", op.node)
	}
	if got := uint64(len(md.edges[op.node])); got != op.cnt {
		return fmt.Errorf("add_edge(%d) observed count %d, sequential model says %d",
			op.node, op.cnt, got)
	}
	if op.cnt < ssEdgeCap {
		md.edges[op.node] = append(md.edges[op.node], op.val)
	}
	return nil
}

func (md *ssModel) Finish() error {
	for i := 0; i < ssNodes; i++ {
		na := md.nodeAddr(i)
		if got, want := md.m.Mem.Load(na), uint64(len(md.edges[i])); got != want {
			return fmt.Errorf("node %d final count = %d, sequential model says %d", i, got, want)
		}
		for j, v := range md.edges[i] {
			if got := md.m.Mem.Load(na + mem.Addr(8*(1+j))); got != v {
				return fmt.Errorf("node %d edge %d = %d, sequential model says %d", i, j, got, v)
			}
		}
	}
	return nil
}
