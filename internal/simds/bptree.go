package simds

import (
	"repro/internal/htm"
	"repro/internal/mem"
	"repro/internal/prog"
)

// BPTree is a B+ tree used as a priority queue (tsp's task queue: the
// paper's port of the STX B+ tree with the contended size field removed).
// PopMin always lands on the left-most leaf — the "most contended object"
// the staggered runtime discovers — while inserts scatter across leaves.
//
// Layout:
//
//	header:   1 line:  [root, height]
//	leaf:     1 line:  [n, next, key0..key5]
//	internal: 2 lines: [n, key0..key5, _, child0..child6]
//
// Keys are uint64; values are encoded in the keys (priority<<32|payload),
// so the queue pops in ascending priority order. Duplicate keys allowed.
type BPTree struct {
	FnInsert *prog.Func
	FnPop    *prog.Func

	// Insert sites.
	sInRoot, sInHeight, sInN, sInKey, sInChild            *prog.Site
	sInLeafN, sInLeafKey, sInStoreKey, sInStoreN          *prog.Site
	sInLeafNext, sInStoreNext, sInStoreChild, sInSetRootH *prog.Site
	sInSetRoot                                            *prog.Site
	sInLeafPtr                                            *prog.Site
	sInStoreIntKey, sInStoreIntN                          *prog.Site
	// Pop sites.
	sPpRoot, sPpN, sPpNext         *prog.Site
	sPpKey, sPpStoreKey, sPpStoreN *prog.Site
}

const (
	bptCap = 6 // max keys per node

	bptRootOff     = 0
	bptHeightOff   = 1
	bptHeadLeafOff = 2

	leafNOff    = 0
	leafNextOff = 1
	leafKeyOff  = 2 // keys 2..7

	intNOff     = 0
	intKeyOff   = 1 // keys 1..6
	intChildOff = 8 // children 8..14
)

// DeclareBPTree registers the tree's static code in m.
func DeclareBPTree(m *prog.Module) *BPTree {
	t := &BPTree{}

	// The STX B+ tree has distinct inner_node and leaf_node types, so DSA
	// keeps inner nodes and leaves in separate DSNodes: the descent loop
	// walks inner nodes via "child" edges (a recursive self-node), and
	// the last level loads a leaf pointer via the distinct "leafchild"
	// field. The first leaf access is therefore its own anchor — exactly
	// the advisory locking point that serializes only the contended leaf
	// (the queue head) while descents proceed in parallel.
	t.FnInsert = m.NewFunc("bpt_insert", "treePtr")
	{
		f := t.FnInsert
		entry, loop, exit := f.Entry(), f.NewBlock("loop"), f.NewBlock("exit")
		entry.To(loop, exit) // height may be 0: root is the leaf
		loop.To(loop, exit)
		root, sRoot := entry.LoadPtr("root", f.Param(0), "root")
		t.sInRoot = sRoot
		t.sInHeight = entry.Load(f.Param(0), "height")
		cur := f.Phi("inner")
		f.Bind(cur, root)
		t.sInN = loop.Load(cur, "n")
		t.sInKey = loop.Load(cur, "key")
		child, sChild := loop.LoadPtr("child", cur, "child")
		t.sInChild = sChild
		f.Bind(cur, child)
		leaf, sLeaf := loop.LoadPtr("leaf", cur, "leafchild")
		t.sInLeafPtr = sLeaf
		lv := f.Phi("leafv")
		f.Bind(lv, leaf)
		t.sInLeafN = exit.Load(lv, "n")
		t.sInLeafKey = exit.Load(lv, "key")
		t.sInStoreKey = exit.Store(lv, "key")
		t.sInStoreN = exit.Store(lv, "n")
		t.sInLeafNext = exit.Load(lv, "next")
		t.sInStoreNext = exit.Store(lv, "next")
		// Split propagation writes internal nodes through their own
		// sites: reusing the leaf-store sites for writeInternal would
		// attribute inner-node stores to the leaf DSNode — the
		// conflict-containment check caught exactly that mismatch.
		t.sInStoreIntKey = exit.Store(cur, "key")
		t.sInStoreChild = exit.Store(cur, "child")
		t.sInStoreIntN = exit.Store(cur, "n")
		t.sInSetRoot = exit.StorePtr(f.Param(0), "root", cur)
		t.sInSetRootH = exit.Store(f.Param(0), "height")
	}

	// PopMin is O(1), as the paper notes for its tsp queue: the header
	// keeps a pointer to the permanent left-most leaf (splits keep the
	// lower half in place, so it never changes), and pop walks the leaf
	// chain past emptied leaves. The first leaf access in the loop is the
	// leaf DSNode's anchor — the ALP that serializes the queue head.
	t.FnPop = m.NewFunc("bpt_pop", "treePtr")
	{
		f := t.FnPop
		entry, loop, exit := f.Entry(), f.NewBlock("loop"), f.NewBlock("exit")
		entry.To(loop)
		loop.To(loop, exit)
		head, sHead := entry.LoadPtr("headleaf", f.Param(0), "headleaf")
		t.sPpRoot = sHead
		lv := f.Phi("leafv")
		f.Bind(lv, head)
		t.sPpN = loop.Load(lv, "n")
		next, sNext := loop.LoadPtr("next", lv, "next")
		t.sPpNext = sNext
		f.Bind(lv, next)
		t.sPpKey = exit.Load(lv, "key")
		t.sPpStoreKey = exit.Store(lv, "key")
		t.sPpStoreN = exit.Store(lv, "n")
	}
	return t
}

// DeclareShape registers the tree's steady-state linkage invariants as a
// shape hint for the may-conflict matrix. tree is the module global
// holding the tree. The atomic-block IR above deliberately keeps inner
// nodes and leaves as distinct DSNodes (the leaf anchor depends on it),
// but the runtime links one leaf population into BOTH the inner nodes'
// leafchild slots and the headleaf/next chain — facts induced by
// NewBPTree and the split re-linking, which live outside the blocks.
// Whole-program DSA would recover them from the constructor's stores;
// the hint states them directly:
//
//	tree.root      -> inner   (steady state: the tree is seeded before
//	                           threads run, so height >= 1 whenever a
//	                           transaction executes)
//	inner.child    -> inner
//	inner.leafchild-> leaf
//	tree.headleaf  -> leaf    (the chain head is one of those leaves)
//	leaf.next      -> leaf
func (t *BPTree) DeclareShape(m *prog.Module, tree *prog.Value) {
	f := m.NewFunc("bpt_shape")
	b := f.Entry()
	inner := b.Alloc("inner")
	leaf := b.Alloc("leaf")
	b.StorePtr(tree, "root", inner)
	b.StorePtr(inner, "child", inner)
	b.StorePtr(inner, "leafchild", leaf)
	b.StorePtr(tree, "headleaf", leaf)
	b.StorePtr(leaf, "next", leaf)
	m.MarkShape(f)
}

// NewBPTree allocates an empty tree: header plus one empty root leaf.
func NewBPTree(m *htm.Machine) mem.Addr {
	h := m.Alloc.AllocLines(1)
	leaf := m.Alloc.AllocLines(1)
	m.Mem.Store(h+w(bptRootOff), uint64(leaf))
	m.Mem.Store(h+w(bptHeightOff), 0)
	m.Mem.Store(h+w(bptHeadLeafOff), uint64(leaf))
	return h
}

// Alloc2Lines is the node allocator signature insert needs: it must hand
// back thread-private line-aligned space (1 line for leaves, 2 for
// internal nodes).
type Alloc2Lines func(lines int) mem.Addr

// Insert adds key to the tree. alloc provides fresh node space; nodes are
// written transactionally before becoming reachable.
func (t *BPTree) Insert(tc Ctx, tree mem.Addr, key uint64, alloc Alloc2Lines) {
	root := mem.Addr(tc.Load(t.sInRoot, tree+w(bptRootOff)))
	height := int(tc.Load(t.sInHeight, tree+w(bptHeightOff)))

	// Descend, remembering the path for split propagation.
	path := make([]bptFrame, 0, 8)
	node := root
	for lvl := height; lvl > 0; lvl-- {
		n := int(tc.Load(t.sInN, node+w(intNOff)))
		i := 0
		for i < n {
			k := tc.Load(t.sInKey, node+w(intKeyOff+i))
			tc.Compute(2)
			if key < k {
				break
			}
			i++
		}
		path = append(path, bptFrame{node, i})
		site := t.sInChild
		if lvl == 1 {
			site = t.sInLeafPtr // typed leaf pointer: the leaf anchor's parent edge
		}
		node = mem.Addr(tc.Load(site, node+w(intChildOff+i)))
	}

	// Insert into the leaf, keeping keys sorted.
	n := int(tc.Load(t.sInLeafN, node+w(leafNOff)))
	keys := make([]uint64, 0, bptCap+1)
	for i := 0; i < n; i++ {
		keys = append(keys, tc.Load(t.sInLeafKey, node+w(leafKeyOff+i)))
	}
	pos := 0
	for pos < n && keys[pos] <= key {
		pos++
	}
	keys = append(keys, 0)
	copy(keys[pos+1:], keys[pos:])
	keys[pos] = key
	tc.Compute(8)

	if len(keys) <= bptCap {
		for i := pos; i < len(keys); i++ {
			tc.Store(t.sInStoreKey, node+w(leafKeyOff+i), keys[i])
		}
		tc.Store(t.sInStoreN, node+w(leafNOff), uint64(len(keys)))
		return
	}

	// Leaf split: right sibling takes the upper half.
	mid := (bptCap + 1) / 2
	right := alloc(1)
	for i, k := range keys[:mid] {
		tc.Store(t.sInStoreKey, node+w(leafKeyOff+i), k)
	}
	tc.Store(t.sInStoreN, node+w(leafNOff), uint64(mid))
	for i, k := range keys[mid:] {
		tc.Store(t.sInStoreKey, right+w(leafKeyOff+i), k)
	}
	tc.Store(t.sInStoreN, right+w(leafNOff), uint64(len(keys)-mid))
	oldNext := tc.Load(t.sInLeafNext, node+w(leafNextOff))
	tc.Store(t.sInStoreNext, right+w(leafNextOff), oldNext)
	tc.Store(t.sInStoreNext, node+w(leafNextOff), uint64(right))
	t.propagate(tc, tree, path, keys[mid], right, height, alloc)
}

// bptFrame records one step of an insert descent.
type bptFrame struct {
	node mem.Addr
	idx  int
}

// propagate inserts (sep, rightChild) into the parent frames, splitting
// internal nodes as needed and growing the root when the path runs out.
func (t *BPTree) propagate(tc Ctx, tree mem.Addr, path []bptFrame,
	sep uint64, rightChild mem.Addr, height int, alloc Alloc2Lines) {
	for lvl := len(path) - 1; lvl >= 0; lvl-- {
		p := path[lvl]
		n := int(tc.Load(t.sInN, p.node+w(intNOff)))
		keys := make([]uint64, n, bptCap+1)
		kids := make([]uint64, n+1, bptCap+2)
		for i := 0; i < n; i++ {
			keys[i] = tc.Load(t.sInKey, p.node+w(intKeyOff+i))
		}
		for i := 0; i <= n; i++ {
			kids[i] = tc.Load(t.sInChild, p.node+w(intChildOff+i))
		}
		keys = append(keys, 0)
		copy(keys[p.idx+1:], keys[p.idx:])
		keys[p.idx] = sep
		kids = append(kids, 0)
		copy(kids[p.idx+2:], kids[p.idx+1:])
		kids[p.idx+1] = uint64(rightChild)
		tc.Compute(8)

		if len(keys) <= bptCap {
			writeInternal(tc, t, p.node, keys, kids)
			return
		}
		// Internal split: median key moves up.
		mid := len(keys) / 2
		sep = keys[mid]
		right := alloc(2)
		writeInternal(tc, t, p.node, keys[:mid], kids[:mid+1])
		writeInternal(tc, t, right, keys[mid+1:], kids[mid+1:])
		rightChild = right
	}
	// Root split: a new root with one key and two children.
	oldRoot := mem.Addr(tc.Load(t.sInRoot, tree+w(bptRootOff)))
	newRoot := alloc(2)
	writeInternal(tc, t, newRoot, []uint64{sep}, []uint64{uint64(oldRoot), uint64(rightChild)})
	tc.Store(t.sInSetRoot, tree+w(bptRootOff), uint64(newRoot))
	tc.Store(t.sInSetRootH, tree+w(bptHeightOff), uint64(height+1))
}

func writeInternal(tc Ctx, t *BPTree, node mem.Addr, keys, kids []uint64) {
	for i, k := range keys {
		tc.Store(t.sInStoreIntKey, node+w(intKeyOff+i), k)
	}
	for i, c := range kids {
		tc.Store(t.sInStoreChild, node+w(intChildOff+i), c)
	}
	tc.Store(t.sInStoreIntN, node+w(intNOff), uint64(len(keys)))
}

// PopMin removes and returns the smallest key; ok is false when empty.
// Emptied leaves stay linked (lazy deletion, as in the paper's tsp port
// which dropped the contended size field rather than rebalancing).
func (t *BPTree) PopMin(tc Ctx, tree mem.Addr) (uint64, bool) {
	node := mem.Addr(tc.Load(t.sPpRoot, tree+w(bptHeadLeafOff)))
	// Walk the leaf chain past emptied leaves.
	for node != nilPtr {
		n := int(tc.Load(t.sPpN, node+w(leafNOff)))
		if n > 0 {
			min := tc.Load(t.sPpKey, node+w(leafKeyOff))
			for i := 1; i < n; i++ {
				k := tc.Load(t.sPpKey, node+w(leafKeyOff+i))
				tc.Store(t.sPpStoreKey, node+w(leafKeyOff+i-1), k)
			}
			tc.Store(t.sPpStoreN, node+w(leafNOff), uint64(n-1))
			return min, true
		}
		node = mem.Addr(tc.Load(t.sPpNext, node+w(leafNextOff)))
		tc.Compute(2)
	}
	return 0, false
}

// BPTCount counts keys directly from memory (untimed verification).
func BPTCount(m *htm.Machine, tree mem.Addr) int {
	node := mem.Addr(m.Mem.Load(tree + w(bptRootOff)))
	height := int(m.Mem.Load(tree + w(bptHeightOff)))
	for lvl := height; lvl > 0; lvl-- {
		node = mem.Addr(m.Mem.Load(node + w(intChildOff)))
	}
	total := 0
	for node != nilPtr {
		total += int(m.Mem.Load(node + w(leafNOff)))
		node = mem.Addr(m.Mem.Load(node + w(leafNextOff)))
	}
	return total
}
