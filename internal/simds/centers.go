package simds

import (
	"repro/internal/htm"
	"repro/internal/mem"
	"repro/internal/prog"
)

// Centers is kmeans' shared accumulator array: K cluster centers, each
// exactly one cache line holding a membership count and D coordinate
// sums packed two 32-bit fixed-point values per word (as STAMP's float
// arrays pack). One line per cluster means conflicts are per-cluster —
// the locality that lets precise-mode advisory locks approach fine-grain
// locking (the paper's kmeans analysis in Section 6.2).
type Centers struct {
	FnUpdate *prog.Func

	sCntLoad, sCntStore, sSumLoad, sSumStore *prog.Site

	K, D     int
	wordsPer int // words per center (one line)
	linesPer int
}

// DeclareCenters registers the center-update code in m.
func DeclareCenters(m *prog.Module, k, d int) *Centers {
	if d > 14 {
		panic("simds: Centers supports at most 14 dimensions per line")
	}
	c := &Centers{K: k, D: d}
	c.linesPer = 1
	c.wordsPer = 8
	c.FnUpdate = m.NewFunc("centers_update", "centerPtr")
	f := c.FnUpdate
	entry, loop, exit := f.Entry(), f.NewBlock("loop"), f.NewBlock("exit")
	entry.To(loop)
	loop.To(loop, exit)
	c.sCntLoad = entry.Load(f.Param(0), "count")
	c.sCntStore = entry.Store(f.Param(0), "count")
	c.sSumLoad = loop.Load(f.Param(0), "sum")
	c.sSumStore = loop.Store(f.Param(0), "sum")
	return c
}

// NewCenters allocates the accumulator array.
func NewCenters(m *htm.Machine, c *Centers) mem.Addr {
	return m.Alloc.AllocLines(c.K * c.linesPer)
}

// CenterAddr returns the base address of center k.
func (c *Centers) CenterAddr(base mem.Addr, k int) mem.Addr {
	return base + mem.Addr(k*c.wordsPer*mem.WordSize)
}

// Update folds one point (D fixed-point coordinates, each < 2^31) into
// center k. Two dimensions pack into each sum word.
func (c *Centers) Update(tc Ctx, base mem.Addr, k int, point []uint64) {
	ca := c.CenterAddr(base, k)
	cnt := tc.Load(c.sCntLoad, ca)
	tc.Store(c.sCntStore, ca, cnt+1)
	for d := 0; d < c.D; d += 2 {
		a := ca + w(1+d/2)
		v := tc.Load(c.sSumLoad, a)
		v += point[d]
		if d+1 < c.D {
			v += point[d+1] << 32
		}
		tc.Store(c.sSumStore, a, v)
		tc.Compute(4)
	}
}

// Count reads center k's membership count directly (untimed).
func (c *Centers) Count(m *htm.Machine, base mem.Addr, k int) uint64 {
	return m.Mem.Load(c.CenterAddr(base, k))
}

// Sum reads center k's dimension-d sum directly (untimed).
func (c *Centers) Sum(m *htm.Machine, base mem.Addr, k, d int) uint64 {
	v := m.Mem.Load(c.CenterAddr(base, k) + w(1+d/2))
	if d%2 == 1 {
		return v >> 32
	}
	return v & 0xFFFFFFFF
}
