// Package simds provides the shared data structures the benchmarks run
// on: sorted linked lists, chained hash tables, a B+ tree priority queue,
// a red-black tree, a FIFO task queue, accumulator arrays, and a routing
// grid — all laid out in the simulator's memory so that cache-line-level
// conflicts are real, and all declared in the prog IR so that the
// compiler pass can select anchors in their code.
//
// Each structure follows the same pattern: a Declare* function registers
// the structure's static functions (once per module — they model a shared
// library like STAMP's lib/list.c), and the returned ops value carries
// both the IR handles and the execution methods, which take a
// backend.Ctx so each concurrency-control backend can layer its own
// instrumentation (ALPoints, OCC read-set logging) over the accesses.
package simds

import (
	"repro/internal/backend"
	"repro/internal/mem"
)

// Ctx is the access context data structure operations run against: the
// arena-wide backend.Ctx interface (stagger's *TxCtx and the OCC
// context both implement it).
type Ctx = backend.Ctx

// nilPtr is the simulated null pointer.
const nilPtr = 0

// w converts a word offset to a byte offset.
func w(i int) mem.Addr { return mem.Addr(i * mem.WordSize) }
