// Package simds provides the shared data structures the benchmarks run
// on: sorted linked lists, chained hash tables, a B+ tree priority queue,
// a red-black tree, a FIFO task queue, accumulator arrays, and a routing
// grid — all laid out in the simulator's memory so that cache-line-level
// conflicts are real, and all declared in the prog IR so that the
// compiler pass can select anchors in their code.
//
// Each structure follows the same pattern: a Declare* function registers
// the structure's static functions (once per module — they model a shared
// library like STAMP's lib/list.c), and the returned ops value carries
// both the IR handles and the execution methods, which take a
// *stagger.TxCtx so instrumentation fires at the compiler-chosen anchors.
package simds

import (
	"repro/internal/mem"
	"repro/internal/stagger"
)

// Ctx is the access context data structure operations run against.
// *stagger.TxCtx implements it; tests may substitute their own.
type Ctx = *stagger.TxCtx

// nilPtr is the simulated null pointer.
const nilPtr = 0

// w converts a word offset to a byte offset.
func w(i int) mem.Addr { return mem.Addr(i * mem.WordSize) }
