package simds

import (
	"repro/internal/htm"
	"repro/internal/mem"
	"repro/internal/prog"
)

// Queue is a FIFO task queue (intruder's work queue): a header line with
// head and tail pointers, and one line per element node {val, next}.
// Pops hit the head pointer and the head node; pushes hit the tail — the
// paper's intruder contention source ("task queue").
type Queue struct {
	FnPop  *prog.Func
	FnPush *prog.Func

	sPopHead, sPopVal, sPopNext, sPopSetHead, sPopClearTail *prog.Site
	sPushTail, sPushVal, sPushNext, sPushLink, sPushSetTail *prog.Site
	sPushSetHead                                            *prog.Site
}

const (
	qHeadOff = 0
	qTailOff = 1
	qValOff  = 0
	qNextOff = 1
)

// DeclareQueue registers the queue's static code in m.
func DeclareQueue(m *prog.Module) *Queue {
	q := &Queue{}

	q.FnPop = m.NewFunc("queue_pop", "qPtr")
	{
		f := q.FnPop
		b := f.Entry()
		node, sHead := b.LoadPtr("node", f.Param(0), "head")
		sVal := b.Load(node, "val")
		next, sNext := b.LoadPtr("next", node, "next")
		sSetHead := b.StorePtr(f.Param(0), "head", next)
		sClearTail := b.StorePtr(f.Param(0), "tail", next)
		q.sPopHead, q.sPopVal, q.sPopNext = sHead, sVal, sNext
		q.sPopSetHead, q.sPopClearTail = sSetHead, sClearTail
	}

	q.FnPush = m.NewFunc("queue_push", "qPtr", "node")
	{
		f := q.FnPush
		b := f.Entry()
		tail, sTail := b.LoadPtr("tail", f.Param(0), "tail")
		sVal := b.Store(f.Param(1), "val")
		sNext := b.Store(f.Param(1), "next")
		sLink := b.StorePtr(tail, "next", f.Param(1))
		sSetTail := b.StorePtr(f.Param(0), "tail", f.Param(1))
		sSetHead := b.StorePtr(f.Param(0), "head", f.Param(1))
		q.sPushTail, q.sPushVal, q.sPushNext = sTail, sVal, sNext
		q.sPushLink, q.sPushSetTail, q.sPushSetHead = sLink, sSetTail, sSetHead
	}
	return q
}

// NewQueue allocates an empty queue header.
func NewQueue(al *mem.Allocator) mem.Addr { return al.AllocLines(1) }

// SeedQueue fills the queue directly in memory (setup, untimed).
func SeedQueue(m *htm.Machine, q mem.Addr, vals []uint64) {
	var prev mem.Addr
	for _, v := range vals {
		n := m.Alloc.AllocLines(1)
		m.Mem.Store(n+w(qValOff), v)
		m.Mem.Store(n+w(qNextOff), nilPtr)
		if prev == 0 {
			m.Mem.Store(q+w(qHeadOff), uint64(n))
		} else {
			m.Mem.Store(prev+w(qNextOff), uint64(n))
		}
		m.Mem.Store(q+w(qTailOff), uint64(n))
		prev = n
	}
}

// Pop removes and returns the head value; ok is false on empty.
func (q *Queue) Pop(tc Ctx, qa mem.Addr) (val uint64, ok bool) {
	node := mem.Addr(tc.Load(q.sPopHead, qa+w(qHeadOff)))
	if node == nilPtr {
		return 0, false
	}
	val = tc.Load(q.sPopVal, node+w(qValOff))
	next := tc.Load(q.sPopNext, node+w(qNextOff))
	tc.Store(q.sPopSetHead, qa+w(qHeadOff), next)
	if next == nilPtr {
		tc.Store(q.sPopClearTail, qa+w(qTailOff), nilPtr)
	}
	return val, true
}

// Push appends a fresh node (thread-private line) carrying val.
func (q *Queue) Push(tc Ctx, qa mem.Addr, val uint64, node mem.Addr) {
	tail := mem.Addr(tc.Load(q.sPushTail, qa+w(qTailOff)))
	tc.Store(q.sPushVal, node+w(qValOff), val)
	tc.Store(q.sPushNext, node+w(qNextOff), nilPtr)
	if tail == nilPtr {
		tc.Store(q.sPushSetHead, qa+w(qHeadOff), uint64(node))
	} else {
		tc.Store(q.sPushLink, tail+w(qNextOff), uint64(node))
	}
	tc.Store(q.sPushSetTail, qa+w(qTailOff), uint64(node))
}

// QueueLen counts elements directly from memory (untimed).
func QueueLen(m *htm.Machine, qa mem.Addr) int {
	n := 0
	cur := mem.Addr(m.Mem.Load(qa + w(qHeadOff)))
	for cur != nilPtr {
		n++
		cur = mem.Addr(m.Mem.Load(cur + w(qNextOff)))
	}
	return n
}
