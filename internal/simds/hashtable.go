package simds

import (
	"repro/internal/htm"
	"repro/internal/mem"
	"repro/internal/prog"
)

// HashTable is a fixed-size chained hash table (genome's
// uniqueSegmentsPtr and memcached's item table): a header object holding
// numBucket and an inline array of bucket pointers, each pointing to a
// separately allocated chain list. Chain nodes are {key, val, next}, one
// line each.
//
// The chain-traversal code follows genome's TMlist_find shape (Figure 3
// of the paper): a prev/cur pointer pair collapses header and cells into
// one DSNode, so the first chain load is the anchor (A 35) and its parent
// in the unified table is the hash-table anchor (A 42) — the chain the
// locking-promotion path climbs to lock the whole table.
type HashTable struct {
	FnLookup *prog.Func
	FnInsert *prog.Func

	sLkNum, sLkBucket, sLkFirst, sLkKey, sLkNext *prog.Site
	sLkVal                                       *prog.Site
	sInNum, sInBucket, sInFirst, sInKey, sInNext *prog.Site
	sInNewKey, sInNewVal, sInNewNext, sInLink    *prog.Site
	sUpVal                                       *prog.Site
}

const (
	htNumOff    = 0 // header word 0: numBucket
	htBucketOff = 1 // header words 1..numBucket: chain list pointers

	chainHeadOff = 0 // chain header word 0: first node
	cnKeyOff     = 0
	cnValOff     = 1
	cnNextOff    = 2
)

// DeclareHashTable registers the table's static code in m.
func DeclareHashTable(m *prog.Module) *HashTable {
	h := &HashTable{}

	// chainFind(listPtr): genome-style traversal with prev/cur merging.
	declChain := func(f *prog.Func, withVal bool) (sFirst, sKey, sNext, sVal *prog.Site) {
		entry, loop, exit := f.Entry(), f.NewBlock("loop"), f.NewBlock("exit")
		entry.To(loop)
		loop.To(loop, exit)
		prev0 := entry.Field("prevPtr0", f.Param(0), "head")
		n0, s35 := entry.LoadPtr("node0", prev0, "next")
		cur := f.Phi("node")
		prev := f.Phi("prev")
		f.Bind(cur, n0)
		f.Bind(prev, prev0)
		f.Bind(prev, cur)
		sKey = loop.Load(cur, "key")
		n1, s38 := loop.LoadPtr("node1", cur, "next")
		f.Bind(cur, n1)
		if withVal {
			sVal = exit.Load(cur, "val")
		}
		return s35, sKey, s38, sVal
	}

	h.FnLookup = m.NewFunc("ht_lookup", "htPtr")
	{
		f := h.FnLookup
		b := f.Entry()
		h.sLkNum = b.Load(f.Param(0), "numBucket")
		bucket, sBucket := b.LoadPtr("bucket", f.Param(0), "buckets")
		h.sLkBucket = sBucket
		chain := m.NewFunc("chain_find", "listPtr")
		h.sLkFirst, h.sLkKey, h.sLkNext, h.sLkVal = declChain(chain, true)
		b.Call(chain, bucket)
	}

	h.FnInsert = m.NewFunc("ht_insert", "htPtr", "node")
	{
		f := h.FnInsert
		b := f.Entry()
		h.sInNum = b.Load(f.Param(0), "numBucket")
		bucket, sBucket := b.LoadPtr("bucket", f.Param(0), "buckets")
		h.sInBucket = sBucket
		chain := m.NewFunc("chain_insert", "listPtr", "node")
		h.sInFirst, h.sInKey, h.sInNext, _ = declChain(chain, false)
		exit := chain.Blocks[2]
		h.sInNewKey = exit.Store(chain.Param(1), "key")
		h.sInNewVal = exit.Store(chain.Param(1), "val")
		h.sInNewNext = exit.Store(chain.Param(1), "next")
		// Linking through the prev phi: its node is the collapsed chain.
		h.sInLink = exit.StorePtr(chain.Param(0), "next", chain.Param(1))
		h.sUpVal = exit.Store(chain.Param(1), "val")
		b.Call(chain, bucket, f.Param(1))
	}
	return h
}

// NewHashTable allocates a table with numBucket chains, all empty.
func NewHashTable(m *htm.Machine, numBucket int) mem.Addr {
	lines := (1 + numBucket + 7) / 8
	ht := m.Alloc.AllocLines(lines)
	m.Mem.Store(ht+w(htNumOff), uint64(numBucket))
	for i := 0; i < numBucket; i++ {
		chain := m.Alloc.AllocLines(1)
		m.Mem.Store(ht+w(htBucketOff+i), uint64(chain))
	}
	return ht
}

// htHash picks a bucket for a key.
func htHash(key, numBucket uint64) uint64 {
	return (key * 0x9E3779B97F4A7C15 >> 33) % numBucket
}

// Lookup returns the value stored under key.
func (h *HashTable) Lookup(tc Ctx, ht mem.Addr, key uint64) (uint64, bool) {
	nb := tc.Load(h.sLkNum, ht+w(htNumOff))
	bi := htHash(key, nb)
	chain := mem.Addr(tc.Load(h.sLkBucket, ht+w(htBucketOff+int(bi))))
	cur := mem.Addr(tc.Load(h.sLkFirst, chain+w(chainHeadOff)))
	for cur != nilPtr {
		k := tc.Load(h.sLkKey, cur+w(cnKeyOff))
		if k == key {
			return tc.Load(h.sLkVal, cur+w(cnValOff)), true
		}
		cur = mem.Addr(tc.Load(h.sLkNext, cur+w(cnNextOff)))
		tc.Compute(4)
	}
	return 0, false
}

// Insert adds key→val using the caller-provided fresh node; when the key
// already exists it updates the value in place and the node is unused.
// Returns true when a new key was inserted.
func (h *HashTable) Insert(tc Ctx, ht mem.Addr, key, val uint64, node mem.Addr) bool {
	nb := tc.Load(h.sInNum, ht+w(htNumOff))
	bi := htHash(key, nb)
	chain := mem.Addr(tc.Load(h.sInBucket, ht+w(htBucketOff+int(bi))))
	prev, prevOff := chain, w(chainHeadOff)
	cur := mem.Addr(tc.Load(h.sInFirst, chain+w(chainHeadOff)))
	for cur != nilPtr {
		k := tc.Load(h.sInKey, cur+w(cnKeyOff))
		if k == key {
			tc.Store(h.sUpVal, cur+w(cnValOff), val)
			return false
		}
		prev, prevOff = cur, w(cnNextOff)
		cur = mem.Addr(tc.Load(h.sInNext, cur+w(cnNextOff)))
		tc.Compute(4)
	}
	tc.Store(h.sInNewKey, node+w(cnKeyOff), key)
	tc.Store(h.sInNewVal, node+w(cnValOff), val)
	tc.Store(h.sInNewNext, node+w(cnNextOff), nilPtr)
	tc.Store(h.sInLink, prev+prevOff, uint64(node))
	return true
}

// HTCount counts entries directly from memory (untimed verification).
func HTCount(m *htm.Machine, ht mem.Addr) int {
	nb := int(m.Mem.Load(ht + w(htNumOff)))
	n := 0
	for i := 0; i < nb; i++ {
		chain := mem.Addr(m.Mem.Load(ht + w(htBucketOff+i)))
		cur := mem.Addr(m.Mem.Load(chain + w(chainHeadOff)))
		for cur != nilPtr {
			n++
			cur = mem.Addr(m.Mem.Load(cur + w(cnNextOff)))
		}
	}
	return n
}
