package simds

import (
	"container/heap"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/anchor"
	"repro/internal/htm"
	"repro/internal/mem"
	"repro/internal/prog"
	"repro/internal/stagger"
)

// sim builds a machine plus runtime over a declared module.
func sim(t testing.TB, m *prog.Module, mode stagger.Mode, threads int) (*htm.Machine, *stagger.Runtime) {
	t.Helper()
	m.MustFinalize()
	cfg := htm.DefaultConfig()
	cfg.Cores = threads
	cfg.HardwareCPC = mode != stagger.ModeStaggeredSW
	mach := htm.New(cfg)
	comp := anchor.Compile(m, anchor.DefaultOptions())
	rt := stagger.New(mach, comp, stagger.DefaultConfig(mode))
	return mach, rt
}

// single runs body once on a one-core machine inside the atomic block.
func single(t testing.TB, m *prog.Module, ab *prog.AtomicBlock,
	setup func(mach *htm.Machine) interface{},
	body func(tc Ctx, mach *htm.Machine, env interface{})) *htm.Machine {
	t.Helper()
	mach, rt := sim(t, m, stagger.ModeHTM, 1)
	env := setup(mach)
	mach.Run([]func(*htm.Core){func(c *htm.Core) {
		th := rt.Thread(0)
		th.Atomic(c, ab, func(tc Ctx) {
			body(tc, mach, env)
		})
	}})
	return mach
}

func abFor(m *prog.Module, fn *prog.Func, name string) *prog.AtomicBlock {
	root := m.NewFunc("ab_"+name, "p", "q")
	root.Entry().Call(fn, rootArgs(root, fn)...)
	return m.Atomic(name, root)
}

func rootArgs(root *prog.Func, fn *prog.Func) []*prog.Value {
	args := make([]*prog.Value, len(fn.Params))
	for i := range args {
		args[i] = root.Param(i % 2)
	}
	return args
}

// --- SortedList ---

func TestListSeedAndLookup(t *testing.T) {
	m := prog.NewModule("t")
	l := DeclareSortedList(m)
	ab := abFor(m, l.FnLookup, "lookup")
	single(t, m, ab,
		func(mach *htm.Machine) interface{} {
			list := NewList(mach.Alloc)
			SeedList(mach, list, []uint64{2, 4, 6, 8})
			return list
		},
		func(tc Ctx, mach *htm.Machine, env interface{}) {
			list := env.(mem.Addr)
			for _, k := range []uint64{2, 4, 6, 8} {
				if !l.Lookup(tc, list, k) {
					t.Errorf("key %d missing", k)
				}
			}
			for _, k := range []uint64{1, 3, 9} {
				if l.Lookup(tc, list, k) {
					t.Errorf("phantom key %d", k)
				}
			}
		})
}

func TestListInsertDeleteModel(t *testing.T) {
	m := prog.NewModule("t")
	l := DeclareSortedList(m)
	ab := abFor(m, l.FnInsert, "ops")
	mach, rt := sim(t, m, stagger.ModeHTM, 1)
	list := NewList(mach.Alloc)
	SeedList(mach, list, []uint64{50})
	model := map[uint64]bool{50: true}
	rng := rand.New(rand.NewSource(7))
	mach.Run([]func(*htm.Core){func(c *htm.Core) {
		th := rt.Thread(0)
		for i := 0; i < 300; i++ {
			k := uint64(rng.Intn(40))*2 + 2
			op := rng.Intn(3)
			th.Atomic(c, ab, func(tc Ctx) {
				switch op {
				case 0:
					node := mach.Alloc.AllocLines(1)
					if l.Insert(tc, list, k, node) != !model[k] {
						t.Errorf("insert(%d) disagreed with model", k)
					}
				case 1:
					if l.Delete(tc, list, k) != model[k] {
						t.Errorf("delete(%d) disagreed with model", k)
					}
				case 2:
					if l.Lookup(tc, list, k) != model[k] {
						t.Errorf("lookup(%d) disagreed with model", k)
					}
				}
			})
			switch op {
			case 0:
				model[k] = true
			case 1:
				delete(model, k)
			}
		}
	}})
	got := Keys(mach, list)
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatalf("list not sorted: %v", got)
	}
	if len(got) != len(model) {
		t.Fatalf("list has %d keys, model has %d", len(got), len(model))
	}
}

func TestListConcurrentInserts(t *testing.T) {
	const threads = 8
	m := prog.NewModule("t")
	l := DeclareSortedList(m)
	ab := abFor(m, l.FnInsert, "ins")
	mach, rt := sim(t, m, stagger.ModeStaggeredHW, threads)
	list := NewList(mach.Alloc)
	SeedList(mach, list, []uint64{0})
	// Pre-allocate private nodes per thread (allocation is setup, the
	// linking is the measured transaction).
	nodes := make([][]mem.Addr, threads)
	for i := range nodes {
		nodes[i] = make([]mem.Addr, 20)
		for j := range nodes[i] {
			nodes[i][j] = mach.Alloc.AllocLines(1)
		}
	}
	bodies := make([]func(*htm.Core), threads)
	for i := range bodies {
		tid := i
		bodies[i] = func(c *htm.Core) {
			th := rt.Thread(c.ID())
			for j := 0; j < 20; j++ {
				key := uint64(1 + tid*20 + j)
				node := nodes[tid][j]
				th.Atomic(c, ab, func(tc Ctx) {
					l.Insert(tc, list, key, node)
				})
			}
		}
	}
	mach.Run(bodies)
	got := Keys(mach, list)
	if len(got) != threads*20+1 {
		t.Fatalf("len = %d, want %d", len(got), threads*20+1)
	}
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Fatalf("not sorted at %d: %v", i, got[i-3:i+1])
		}
	}
}

// --- Queue ---

func TestQueueFIFO(t *testing.T) {
	m := prog.NewModule("t")
	q := DeclareQueue(m)
	ab := abFor(m, q.FnPop, "q")
	mach, rt := sim(t, m, stagger.ModeHTM, 1)
	qa := NewQueue(mach.Alloc)
	SeedQueue(mach, qa, []uint64{1, 2, 3})
	mach.Run([]func(*htm.Core){func(c *htm.Core) {
		th := rt.Thread(0)
		var got []uint64
		for i := 0; i < 3; i++ {
			th.Atomic(c, ab, func(tc Ctx) {
				v, ok := q.Pop(tc, qa)
				if !ok {
					t.Error("unexpected empty")
				}
				got = append(got, v)
			})
		}
		th.Atomic(c, ab, func(tc Ctx) {
			if _, ok := q.Pop(tc, qa); ok {
				t.Error("pop from empty succeeded")
			}
		})
		for i, v := range got {
			if v != uint64(i+1) {
				t.Errorf("pop order %v", got)
			}
		}
		// Refill through Push, then drain again.
		for i := 10; i < 13; i++ {
			node := mach.Alloc.AllocLines(1)
			v := uint64(i)
			th.Atomic(c, ab, func(tc Ctx) {
				q.Push(tc, qa, v, node)
			})
		}
		if n := QueueLen(mach, qa); n != 3 {
			t.Errorf("len = %d, want 3", n)
		}
		th.Atomic(c, ab, func(tc Ctx) {
			if v, ok := q.Pop(tc, qa); !ok || v != 10 {
				t.Errorf("pop = %d,%v; want 10", v, ok)
			}
		})
	}})
}

func TestQueueConcurrentConservation(t *testing.T) {
	const threads = 6
	m := prog.NewModule("t")
	q := DeclareQueue(m)
	ab := abFor(m, q.FnPop, "q")
	mach, rt := sim(t, m, stagger.ModeStaggeredHW, threads)
	src := NewQueue(mach.Alloc)
	dst := NewQueue(mach.Alloc)
	vals := make([]uint64, 60)
	for i := range vals {
		vals[i] = uint64(i + 1)
	}
	SeedQueue(mach, src, vals)
	nodes := make([][]mem.Addr, threads)
	for i := range nodes {
		for j := 0; j < len(vals); j++ {
			nodes[i] = append(nodes[i], mach.Alloc.AllocLines(1))
		}
	}
	bodies := make([]func(*htm.Core), threads)
	for i := range bodies {
		tid := i
		bodies[i] = func(c *htm.Core) {
			th := rt.Thread(c.ID())
			for j := 0; ; j++ {
				done := false
				th.Atomic(c, ab, func(tc Ctx) {
					v, ok := q.Pop(tc, src)
					if !ok {
						done = true
						return
					}
					tc.Compute(200)
					q.Push(tc, dst, v, nodes[tid][j])
				})
				if done {
					break
				}
			}
		}
	}
	mach.Run(bodies)
	if n := QueueLen(mach, dst); n != len(vals) {
		t.Fatalf("transferred %d, want %d", n, len(vals))
	}
	if n := QueueLen(mach, src); n != 0 {
		t.Fatalf("source still has %d", n)
	}
	// Every value must appear exactly once in dst.
	seen := make(map[uint64]bool)
	cur := mem.Addr(mach.Mem.Load(dst + w(qHeadOff)))
	for cur != nilPtr {
		v := mach.Mem.Load(cur + w(qValOff))
		if seen[v] {
			t.Fatalf("duplicate value %d", v)
		}
		seen[v] = true
		cur = mem.Addr(mach.Mem.Load(cur + w(qNextOff)))
	}
	if len(seen) != len(vals) {
		t.Fatalf("distinct = %d, want %d", len(seen), len(vals))
	}
}

// --- HashTable ---

func TestHashTableModel(t *testing.T) {
	m := prog.NewModule("t")
	h := DeclareHashTable(m)
	ab := abFor(m, h.FnInsert, "ht")
	mach, rt := sim(t, m, stagger.ModeHTM, 1)
	ht := NewHashTable(mach, 8)
	model := map[uint64]uint64{}
	rng := rand.New(rand.NewSource(11))
	mach.Run([]func(*htm.Core){func(c *htm.Core) {
		th := rt.Thread(0)
		for i := 0; i < 400; i++ {
			k := uint64(rng.Intn(50) + 1)
			v := uint64(rng.Intn(1000))
			if rng.Intn(2) == 0 {
				node := mach.Alloc.AllocLines(1)
				th.Atomic(c, ab, func(tc Ctx) {
					_, existed := model[k]
					if h.Insert(tc, ht, k, v, node) != !existed {
						t.Errorf("insert(%d) vs model", k)
					}
				})
				model[k] = v
			} else {
				th.Atomic(c, ab, func(tc Ctx) {
					got, ok := h.Lookup(tc, ht, k)
					want, wok := model[k]
					if ok != wok || (ok && got != want) {
						t.Errorf("lookup(%d) = %d,%v; want %d,%v", k, got, ok, want, wok)
					}
				})
			}
		}
	}})
	if n := HTCount(mach, ht); n != len(model) {
		t.Fatalf("count = %d, want %d", n, len(model))
	}
}

// --- BPTree ---

type intHeap []uint64

func (h intHeap) Len() int            { return len(h) }
func (h intHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h intHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *intHeap) Push(x interface{}) { *h = append(*h, x.(uint64)) }
func (h *intHeap) Pop() interface{} {
	old := *h
	x := old[len(old)-1]
	*h = old[:len(old)-1]
	return x
}

func TestBPTreeSortsRandomKeys(t *testing.T) {
	m := prog.NewModule("t")
	bt := DeclareBPTree(m)
	ab := abFor(m, bt.FnInsert, "pq")
	mach, rt := sim(t, m, stagger.ModeHTM, 1)
	tree := NewBPTree(mach)
	rng := rand.New(rand.NewSource(3))
	const n = 200
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(rng.Intn(10000))
	}
	alloc := func(lines int) mem.Addr { return mach.Alloc.AllocLines(lines) }
	mach.Run([]func(*htm.Core){func(c *htm.Core) {
		th := rt.Thread(0)
		for _, k := range keys {
			key := k
			th.Atomic(c, ab, func(tc Ctx) {
				bt.Insert(tc, tree, key, alloc)
			})
		}
		if cnt := BPTCount(mach, tree); cnt != n {
			t.Fatalf("count = %d, want %d", cnt, n)
		}
		var got []uint64
		for {
			var v uint64
			var ok bool
			th.Atomic(c, ab, func(tc Ctx) {
				v, ok = bt.PopMin(tc, tree)
			})
			if !ok {
				break
			}
			got = append(got, v)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		if len(got) != n {
			t.Fatalf("popped %d, want %d", len(got), n)
		}
		for i := range got {
			if got[i] != keys[i] {
				t.Fatalf("pop order differs at %d: got %d want %d", i, got[i], keys[i])
			}
		}
	}})
}

func TestBPTreeInterleavedHeapModel(t *testing.T) {
	m := prog.NewModule("t")
	bt := DeclareBPTree(m)
	ab := abFor(m, bt.FnInsert, "pq")
	mach, rt := sim(t, m, stagger.ModeHTM, 1)
	tree := NewBPTree(mach)
	rng := rand.New(rand.NewSource(5))
	model := &intHeap{}
	heap.Init(model)
	alloc := func(lines int) mem.Addr { return mach.Alloc.AllocLines(lines) }
	mach.Run([]func(*htm.Core){func(c *htm.Core) {
		th := rt.Thread(0)
		for i := 0; i < 500; i++ {
			if rng.Intn(3) != 0 || model.Len() == 0 {
				k := uint64(rng.Intn(1000))
				th.Atomic(c, ab, func(tc Ctx) {
					bt.Insert(tc, tree, k, alloc)
				})
				heap.Push(model, k)
			} else {
				want := heap.Pop(model).(uint64)
				th.Atomic(c, ab, func(tc Ctx) {
					got, ok := bt.PopMin(tc, tree)
					if !ok || got != want {
						t.Errorf("op %d: pop = %d,%v; want %d", i, got, ok, want)
					}
				})
			}
		}
	}})
	if cnt := BPTCount(mach, tree); cnt != model.Len() {
		t.Fatalf("count = %d, model = %d", cnt, model.Len())
	}
}

func TestBPTreeConcurrentPQ(t *testing.T) {
	const threads = 8
	m := prog.NewModule("t")
	bt := DeclareBPTree(m)
	ab := abFor(m, bt.FnInsert, "pq")
	mach, rt := sim(t, m, stagger.ModeStaggeredHW, threads)
	tree := NewBPTree(mach)
	// Seed with initial tasks through direct inserts before timing.
	popped := make([]int, threads)
	bodies := make([]func(*htm.Core), threads)
	for i := range bodies {
		tid := i
		bodies[i] = func(c *htm.Core) {
			th := rt.Thread(c.ID())
			al := func(lines int) mem.Addr { return mach.Alloc.AllocLines(lines) }
			for j := 0; j < 15; j++ {
				k := uint64(tid*100 + j)
				th.Atomic(c, ab, func(tc Ctx) {
					bt.Insert(tc, tree, k, al)
				})
			}
			for {
				var ok bool
				th.Atomic(c, ab, func(tc Ctx) {
					_, ok = bt.PopMin(tc, tree)
				})
				if !ok {
					break
				}
				popped[tid]++
			}
		}
	}
	mach.Run(bodies)
	total := 0
	for _, p := range popped {
		total += p
	}
	if rem := BPTCount(mach, tree); total+rem != threads*15 {
		t.Fatalf("popped %d + remaining %d != inserted %d", total, rem, threads*15)
	}
}

// --- RBTree ---

func TestRBTreeInsertLookup(t *testing.T) {
	m := prog.NewModule("t")
	rb := DeclareRBTree(m)
	ab := abFor(m, rb.FnInsert, "rb")
	mach, rt := sim(t, m, stagger.ModeHTM, 1)
	tree := NewRBTree(mach.Alloc)
	rng := rand.New(rand.NewSource(9))
	model := map[uint64]uint64{}
	mach.Run([]func(*htm.Core){func(c *htm.Core) {
		th := rt.Thread(0)
		for i := 0; i < 300; i++ {
			k := uint64(rng.Intn(200) + 1)
			node := mach.Alloc.AllocLines(1)
			th.Atomic(c, ab, func(tc Ctx) {
				_, existed := model[k]
				if rb.Insert(tc, tree, k, k*10, node) != !existed {
					t.Errorf("insert(%d) vs model", k)
				}
			})
			if _, ok := model[k]; !ok {
				model[k] = k * 10
			}
		}
		for k, v := range model {
			key, want := k, v
			th.Atomic(c, ab, func(tc Ctx) {
				got, ok := rb.Lookup(tc, tree, key)
				if !ok || got != want {
					t.Errorf("lookup(%d) = %d,%v; want %d", key, got, ok, want)
				}
			})
		}
	}})
	keys := RBKeys(mach, tree)
	if len(keys) != len(model) {
		t.Fatalf("tree has %d keys, model %d", len(keys), len(model))
	}
	if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
		t.Fatal("in-order walk not sorted: BST invariant broken")
	}
	if !RBDepthOK(mach, tree) {
		t.Fatal("red-black invariants violated")
	}
}

func TestRBTreeUpdate(t *testing.T) {
	m := prog.NewModule("t")
	rb := DeclareRBTree(m)
	ab := abFor(m, rb.FnUpdate, "rb")
	mach, rt := sim(t, m, stagger.ModeHTM, 1)
	tree := NewRBTree(mach.Alloc)
	SeedRBTree(mach, tree, []uint64{1, 2, 3, 4, 5}, func(k uint64) uint64 { return 100 })
	mach.Run([]func(*htm.Core){func(c *htm.Core) {
		th := rt.Thread(0)
		th.Atomic(c, ab, func(tc Ctx) {
			if !rb.Update(tc, tree, 3, 5) {
				t.Error("update of existing key failed")
			}
			if rb.Update(tc, tree, 99, 1) {
				t.Error("update of missing key succeeded")
			}
			if v, _ := rb.Lookup(tc, tree, 3); v != 105 {
				t.Errorf("value = %d, want 105", v)
			}
		})
	}})
}

func TestSeedRBTreeBalanced(t *testing.T) {
	mach := htm.New(htm.DefaultConfig())
	tree := NewRBTree(mach.Alloc)
	keys := make([]uint64, 63)
	for i := range keys {
		keys[i] = uint64(i + 1)
	}
	SeedRBTree(mach, tree, keys, func(k uint64) uint64 { return k })
	got := RBKeys(mach, tree)
	if len(got) != 63 {
		t.Fatalf("len = %d", len(got))
	}
	if !RBDepthOK(mach, tree) {
		t.Fatal("seeded tree violates invariants")
	}
}

// --- Centers ---

func TestCentersAccumulate(t *testing.T) {
	m := prog.NewModule("t")
	cs := DeclareCenters(m, 4, 3)
	ab := abFor(m, cs.FnUpdate, "km")
	mach, rt := sim(t, m, stagger.ModeHTM, 1)
	base := NewCenters(mach, cs)
	mach.Run([]func(*htm.Core){func(c *htm.Core) {
		th := rt.Thread(0)
		for i := 0; i < 10; i++ {
			k := i % 4
			th.Atomic(c, ab, func(tc Ctx) {
				cs.Update(tc, base, k, []uint64{1, 2, 3})
			})
		}
	}})
	for k := 0; k < 4; k++ {
		wantCnt := uint64(2)
		if k < 2 {
			wantCnt = 3
		}
		if got := cs.Count(mach, base, k); got != wantCnt {
			t.Errorf("center %d count = %d, want %d", k, got, wantCnt)
		}
		if got := cs.Sum(mach, base, k, 1); got != wantCnt*2 {
			t.Errorf("center %d sum[1] = %d, want %d", k, got, wantCnt*2)
		}
	}
}

// --- Grid ---

func TestGridClaimAndConflictCheck(t *testing.T) {
	m := prog.NewModule("t")
	g := DeclareGrid(m, 8, 8, 2)
	ab := abFor(m, g.FnClaim, "route")
	mach, rt := sim(t, m, stagger.ModeHTM, 1)
	base := NewGrid(mach, g)
	cells := Cells(mach, base)
	mach.Run([]func(*htm.Core){func(c *htm.Core) {
		th := rt.Thread(0)
		path1 := []mem.Addr{g.CellAddr(cells, 0, 0, 0), g.CellAddr(cells, 1, 0, 0)}
		path2 := []mem.Addr{g.CellAddr(cells, 1, 0, 0), g.CellAddr(cells, 2, 0, 0)}
		th.Atomic(c, ab, func(tc Ctx) {
			if !g.ClaimPath(tc, base, path1, 7, 50) {
				t.Error("claim of free path failed")
			}
		})
		th.Atomic(c, ab, func(tc Ctx) {
			if g.ClaimPath(tc, base, path2, 8, 50) {
				t.Error("claim over occupied cell succeeded")
			}
		})
	}})
	if g.CellOwner(mach, base, 0, 0, 0) != 7 || g.CellOwner(mach, base, 1, 0, 0) != 7 {
		t.Fatal("claimed cells not owned")
	}
	if g.CellOwner(mach, base, 2, 0, 0) != 0 {
		t.Fatal("failed claim leaked a write")
	}
}

func TestGridSnapshot(t *testing.T) {
	m := prog.NewModule("t")
	g := DeclareGrid(m, 4, 4, 1)
	ab := abFor(m, g.FnClaim, "route")
	mach, rt := sim(t, m, stagger.ModeHTM, 1)
	base := NewGrid(mach, g)
	cells := Cells(mach, base)
	mach.Mem.Store(g.CellAddr(cells, 2, 1, 0), 42)
	buf := make([]uint64, 16)
	mach.Run([]func(*htm.Core){func(c *htm.Core) {
		th := rt.Thread(0)
		th.Atomic(c, ab, func(tc Ctx) {
			g.Snapshot(tc, cells, buf)
		})
	}})
	if buf[1*4+2] != 42 {
		t.Fatalf("snapshot missed cell: %v", buf)
	}
}

// --- Stats ---

func TestStatsBump(t *testing.T) {
	m := prog.NewModule("t")
	sb := DeclareStats(m)
	ab := abFor(m, sb.FnBump, "stats")
	mach, rt := sim(t, m, stagger.ModeHTM, 1)
	stats := NewStats(mach.Alloc)
	mach.Run([]func(*htm.Core){func(c *htm.Core) {
		th := rt.Thread(0)
		for i := 0; i < 5; i++ {
			th.Atomic(c, ab, func(tc Ctx) {
				sb.Bump(tc, stats, 2, 3)
			})
		}
	}})
	if got := Counter(mach.Mem, stats, 2); got != 15 {
		t.Fatalf("counter = %d, want 15", got)
	}
}
