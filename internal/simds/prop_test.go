package simds

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/htm"
	"repro/internal/mem"
	"repro/internal/prog"
	"repro/internal/stagger"
)

// TestBPTreeLargeRandomProperty: thousands of interleaved inserts and
// pops against a sorted-multiset model, across several seeds, checking
// pop order, counts, and structural sanity.
func TestBPTreeLargeRandomProperty(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		seed := seed
		t.Run("", func(t *testing.T) {
			m := prog.NewModule("t")
			bt := DeclareBPTree(m)
			ab := abFor(m, bt.FnInsert, "pq")
			mach, rt := sim(t, m, stagger.ModeHTM, 1)
			tree := NewBPTree(mach)
			rng := rand.New(rand.NewSource(seed))
			var model []uint64 // kept sorted
			alloc := func(lines int) mem.Addr { return mach.Alloc.AllocLines(lines) }
			mach.Run([]func(*htm.Core){func(c *htm.Core) {
				th := rt.Thread(0)
				for i := 0; i < 3000; i++ {
					if rng.Intn(5) < 3 || len(model) == 0 {
						k := uint64(rng.Intn(1 << 20))
						th.Atomic(c, ab, func(tc Ctx) {
							bt.Insert(tc, tree, k, alloc)
						})
						pos := sort.Search(len(model), func(j int) bool { return model[j] > k })
						model = append(model, 0)
						copy(model[pos+1:], model[pos:])
						model[pos] = k
					} else {
						want := model[0]
						model = model[1:]
						th.Atomic(c, ab, func(tc Ctx) {
							got, ok := bt.PopMin(tc, tree)
							if !ok || got != want {
								t.Fatalf("op %d: pop = %d,%v; want %d", i, got, ok, want)
							}
						})
					}
				}
			}})
			if got := BPTCount(mach, tree); got != len(model) {
				t.Fatalf("count = %d, model = %d", got, len(model))
			}
		})
	}
}

// TestRBTreeLargeRandomProperty: thousands of inserts/updates/lookups
// with invariant checks at the end.
func TestRBTreeLargeRandomProperty(t *testing.T) {
	m := prog.NewModule("t")
	rb := DeclareRBTree(m)
	ab := abFor(m, rb.FnInsert, "rb")
	mach, rt := sim(t, m, stagger.ModeHTM, 1)
	tree := NewRBTree(mach.Alloc)
	rng := rand.New(rand.NewSource(17))
	model := map[uint64]uint64{}
	mach.Run([]func(*htm.Core){func(c *htm.Core) {
		th := rt.Thread(0)
		for i := 0; i < 4000; i++ {
			k := uint64(rng.Intn(1500) + 1)
			switch rng.Intn(3) {
			case 0:
				node := mach.Alloc.AllocLines(1)
				th.Atomic(c, ab, func(tc Ctx) {
					rb.Insert(tc, tree, k, k, node)
				})
				if _, ok := model[k]; !ok {
					model[k] = k
				}
			case 1:
				th.Atomic(c, ab, func(tc Ctx) {
					_, existed := model[k]
					if rb.Update(tc, tree, k, 1) != existed {
						t.Fatalf("update(%d) vs model", k)
					}
				})
				if _, ok := model[k]; ok {
					model[k]++
				}
			default:
				th.Atomic(c, ab, func(tc Ctx) {
					got, ok := rb.Lookup(tc, tree, k)
					want, wok := model[k]
					if ok != wok || got != want {
						t.Fatalf("lookup(%d) = %d,%v; want %d,%v", k, got, ok, want, wok)
					}
				})
			}
		}
	}})
	keys := RBKeys(mach, tree)
	if len(keys) != len(model) {
		t.Fatalf("size %d vs model %d", len(keys), len(model))
	}
	if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
		t.Fatal("BST order violated")
	}
	if !RBDepthOK(mach, tree) {
		t.Fatal("red-black invariants violated")
	}
	// A valid red-black tree of n nodes has height <= 2*log2(n+1); probe
	// via the deepest path.
	depth := rbMaxDepth(mach, tree)
	n := len(keys)
	bound := 2
	for m := 1; m < n+1; m *= 2 {
		bound += 2
	}
	if depth > bound {
		t.Fatalf("depth %d exceeds red-black bound %d for %d nodes", depth, bound, n)
	}
}

func rbMaxDepth(m *htm.Machine, tree mem.Addr) int {
	var walk func(n mem.Addr) int
	walk = func(n mem.Addr) int {
		if n == nilPtr {
			return 0
		}
		l := walk(mem.Addr(m.Mem.Load(n + w(rbLeftOff))))
		r := walk(mem.Addr(m.Mem.Load(n + w(rbRightOff))))
		if r > l {
			l = r
		}
		return l + 1
	}
	return walk(mem.Addr(m.Mem.Load(tree + w(rbRootOff))))
}

// TestHashTableManyKeysProperty: a few thousand operations against a map
// model, exercising long chains.
func TestHashTableManyKeysProperty(t *testing.T) {
	m := prog.NewModule("t")
	h := DeclareHashTable(m)
	ab := abFor(m, h.FnInsert, "ht")
	mach, rt := sim(t, m, stagger.ModeHTM, 1)
	ht := NewHashTable(mach, 16) // overloaded: long chains
	model := map[uint64]uint64{}
	rng := rand.New(rand.NewSource(23))
	mach.Run([]func(*htm.Core){func(c *htm.Core) {
		th := rt.Thread(0)
		for i := 0; i < 2500; i++ {
			k := uint64(rng.Intn(400) + 1)
			v := uint64(rng.Intn(1 << 30))
			if rng.Intn(3) > 0 {
				node := mach.Alloc.AllocLines(1)
				th.Atomic(c, ab, func(tc Ctx) {
					h.Insert(tc, ht, k, v, node)
				})
				model[k] = v
			} else {
				th.Atomic(c, ab, func(tc Ctx) {
					got, ok := h.Lookup(tc, ht, k)
					want, wok := model[k]
					if ok != wok || (ok && got != want) {
						t.Fatalf("lookup(%d) mismatch", k)
					}
				})
			}
		}
	}})
	if got := HTCount(mach, ht); got != len(model) {
		t.Fatalf("count %d vs model %d", got, len(model))
	}
}

// TestListConcurrentMixedWorkloadLinearizable: under heavy concurrent
// insert/delete churn, the final list must be sorted, duplicate-free and
// contain exactly the keys that a per-key quiescent analysis allows.
func TestListConcurrentMixedWorkloadLinearizable(t *testing.T) {
	const threads = 8
	m := prog.NewModule("t")
	l := DeclareSortedList(m)
	abI := abFor(m, l.FnInsert, "ins")
	abD := abFor(m, l.FnDelete, "del")
	mach, rt := sim(t, m, stagger.ModeStaggeredHW, threads)
	list := NewList(mach.Alloc)
	SeedList(mach, list, []uint64{1})
	// Each thread owns a disjoint key range and performs insert/delete
	// pairs; at the end each key's presence is determined by its op count
	// parity, giving an exact expected set despite concurrency.
	const perThread = 30
	bodies := make([]func(*htm.Core), threads)
	for i := range bodies {
		tid := i
		bodies[i] = func(c *htm.Core) {
			th := rt.Thread(c.ID())
			for k := 0; k < perThread; k++ {
				key := uint64(100 + tid*100 + k)
				node := mach.Alloc.AllocObject(2)
				th.Atomic(c, abI, func(tc Ctx) {
					l.Insert(tc, list, key, node)
				})
				if k%3 == 0 {
					th.Atomic(c, abD, func(tc Ctx) {
						l.Delete(tc, list, key)
					})
				}
			}
		}
	}
	mach.Run(bodies)
	got := Keys(mach, list)
	want := map[uint64]bool{1: true}
	for tid := 0; tid < threads; tid++ {
		for k := 0; k < perThread; k++ {
			key := uint64(100 + tid*100 + k)
			want[key] = k%3 != 0
		}
	}
	present := map[uint64]bool{}
	for i, k := range got {
		if i > 0 && got[i-1] >= k {
			t.Fatalf("unsorted/duplicate at %d: %v", i, got[max(0, i-2):i+1])
		}
		present[k] = true
	}
	for k, w := range want {
		if present[k] != w {
			t.Fatalf("key %d: present=%v want %v", k, present[k], w)
		}
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// TestQueuePushPopPairsConcurrent: producer/consumer pairs across
// threads conserve every element exactly once.
func TestQueuePushPopPairsConcurrent(t *testing.T) {
	const threads = 8
	m := prog.NewModule("t")
	q := DeclareQueue(m)
	ab := abFor(m, q.FnPush, "q")
	mach, rt := sim(t, m, stagger.ModeStaggeredHW, threads)
	qa := NewQueue(mach.Alloc)
	consumed := make([]map[uint64]int, threads)
	bodies := make([]func(*htm.Core), threads)
	for i := range bodies {
		tid := i
		consumed[tid] = map[uint64]int{}
		bodies[i] = func(c *htm.Core) {
			th := rt.Thread(c.ID())
			for k := 0; k < 25; k++ {
				node := mach.Alloc.AllocLines(1)
				v := uint64(tid*1000 + k)
				th.Atomic(c, ab, func(tc Ctx) {
					q.Push(tc, qa, v, node)
				})
				// The body may re-execute on abort, so record the popped
				// value only after the transaction has committed.
				var got uint64
				var ok bool
				th.Atomic(c, ab, func(tc Ctx) {
					got, ok = q.Pop(tc, qa)
				})
				if ok {
					consumed[tid][got]++
				}
				c.Compute(100)
			}
		}
	}
	mach.Run(bodies)
	total := map[uint64]int{}
	for _, mcons := range consumed {
		for v, n := range mcons {
			total[v] += n
		}
	}
	// Drain the rest.
	cur := mem.Addr(mach.Mem.Load(qa + w(qHeadOff)))
	for cur != nilPtr {
		total[mach.Mem.Load(cur+w(qValOff))]++
		cur = mem.Addr(mach.Mem.Load(cur + w(qNextOff)))
	}
	if len(total) != threads*25 {
		t.Fatalf("distinct values = %d, want %d", len(total), threads*25)
	}
	for v, n := range total {
		if n != 1 {
			t.Fatalf("value %d seen %d times", v, n)
		}
	}
}
