package simds

import (
	"repro/internal/htm"
	"repro/internal/mem"
	"repro/internal/prog"
)

// SortedList is an IntSet-style sorted singly linked list (the list-lo /
// list-hi microbenchmark of the paper, drawn from the RSTM test suite).
//
// Layout: the header is one line holding the head pointer at word 0.
// Each node is two words {key, next}; nodes pack four to a cache line.
// The traversal code loads node->key then node->next, so the key load is
// the initial access to the cell DSNode — an anchor *inside* the loop,
// matching the paper's observation that list anchors sit in tight loops
// (Table 3: ~33 anchors per transaction on a 64-node list).
type SortedList struct {
	FnLookup *prog.Func
	FnInsert *prog.Func
	FnDelete *prog.Func

	// Lookup sites.
	sLkHead, sLkKey, sLkNext *prog.Site
	// Insert sites.
	sInHead, sInKey, sInNext, sInNewKey, sInNewNext, sInLink *prog.Site
	// Delete sites.
	sDlHead, sDlKey, sDlNext, sDlUnlink *prog.Site
}

const (
	listHeadOff = 0 // header word: head pointer
	nodeKeyOff  = 0
	nodeNextOff = 1
)

// DeclareSortedList registers the list's static code in m.
func DeclareSortedList(m *prog.Module) *SortedList {
	l := &SortedList{}

	// lookup(listPtr, key): cur = listPtr->head; while cur and
	// cur->key < key: cur = cur->next.
	l.FnLookup = m.NewFunc("list_lookup", "listPtr")
	{
		f := l.FnLookup
		entry, loop, exit := f.Entry(), f.NewBlock("loop"), f.NewBlock("exit")
		entry.To(loop)
		loop.To(loop, exit)
		head, sHead := entry.LoadPtr("cur0", f.Param(0), "head")
		cur := f.Phi("cur")
		f.Bind(cur, head)
		sKey := loop.Load(cur, "key")
		next, sNext := loop.LoadPtr("next", cur, "next")
		f.Bind(cur, next)
		l.sLkHead, l.sLkKey, l.sLkNext = sHead, sKey, sNext
	}

	// insert(listPtr, node): find position, init node, link prev->next.
	l.FnInsert = m.NewFunc("list_insert", "listPtr", "node")
	{
		f := l.FnInsert
		entry, loop, exit := f.Entry(), f.NewBlock("loop"), f.NewBlock("exit")
		entry.To(loop)
		loop.To(loop, exit)
		head, sHead := entry.LoadPtr("cur0", f.Param(0), "head")
		cur := f.Phi("cur")
		f.Bind(cur, head)
		sKey := loop.Load(cur, "key")
		next, sNext := loop.LoadPtr("next", cur, "next")
		f.Bind(cur, next)
		sNewKey := exit.Store(f.Param(1), "key")
		sNewNext := exit.StorePtr(f.Param(1), "next", cur)
		// Linking writes the predecessor cell (or the header).
		sLink := exit.StorePtr(cur, "next", f.Param(1))
		l.sInHead, l.sInKey, l.sInNext = sHead, sKey, sNext
		l.sInNewKey, l.sInNewNext, l.sInLink = sNewKey, sNewNext, sLink
	}

	// delete(listPtr, key): find node, unlink prev->next = cur->next.
	l.FnDelete = m.NewFunc("list_delete", "listPtr")
	{
		f := l.FnDelete
		entry, loop, exit := f.Entry(), f.NewBlock("loop"), f.NewBlock("exit")
		entry.To(loop)
		loop.To(loop, exit)
		head, sHead := entry.LoadPtr("cur0", f.Param(0), "head")
		cur := f.Phi("cur")
		f.Bind(cur, head)
		sKey := loop.Load(cur, "key")
		next, sNext := loop.LoadPtr("next", cur, "next")
		f.Bind(cur, next)
		sUnlink := exit.StorePtr(cur, "next", next)
		l.sDlHead, l.sDlKey, l.sDlNext, l.sDlUnlink = sHead, sKey, sNext, sUnlink
	}
	return l
}

// NewList allocates an empty list header.
func NewList(al *mem.Allocator) mem.Addr { return al.AllocLines(1) }

// SeedList populates the list directly in memory (setup, untimed): keys
// must be strictly ascending. Nodes get one line each. Returns the node
// addresses.
func SeedList(m *htm.Machine, list mem.Addr, keys []uint64) []mem.Addr {
	nodes := make([]mem.Addr, len(keys))
	prev := list // header: head pointer at word 0
	prevOff := w(listHeadOff)
	for i, k := range keys {
		// 16-byte nodes pack four to a cache line, as a real allocator
		// would place them; the false sharing this induces is part of
		// the benchmark's contention profile.
		n := m.Alloc.AllocObject(2)
		m.Mem.Store(n+w(nodeKeyOff), k)
		m.Mem.Store(n+w(nodeNextOff), nilPtr)
		m.Mem.Store(prev+prevOff, uint64(n))
		prev, prevOff = n, w(nodeNextOff)
		nodes[i] = n
	}
	return nodes
}

// Lookup returns whether key is present.
func (l *SortedList) Lookup(tc Ctx, list mem.Addr, key uint64) bool {
	cur := mem.Addr(tc.Load(l.sLkHead, list+w(listHeadOff)))
	for cur != nilPtr {
		k := tc.Load(l.sLkKey, cur+w(nodeKeyOff))
		if k >= key {
			return k == key
		}
		cur = mem.Addr(tc.Load(l.sLkNext, cur+w(nodeNextOff)))
		tc.Compute(20)
	}
	return false
}

// Insert links node (a fresh, thread-private line) carrying key into
// sorted position. Duplicate keys are allowed (multiset semantics keep
// the workload driver simple). Returns false if key was already present
// and nothing was inserted.
func (l *SortedList) Insert(tc Ctx, list mem.Addr, key uint64, node mem.Addr) bool {
	prev, prevOff := list, w(listHeadOff)
	prevSite := l.sInLink // linking store targets prev's next field
	cur := mem.Addr(tc.Load(l.sInHead, list+w(listHeadOff)))
	for cur != nilPtr {
		k := tc.Load(l.sInKey, cur+w(nodeKeyOff))
		if k == key {
			return false
		}
		if k > key {
			break
		}
		prev, prevOff = cur, w(nodeNextOff)
		cur = mem.Addr(tc.Load(l.sInNext, cur+w(nodeNextOff)))
		tc.Compute(20)
	}
	tc.Store(l.sInNewKey, node+w(nodeKeyOff), key)
	tc.Store(l.sInNewNext, node+w(nodeNextOff), uint64(cur))
	tc.Store(prevSite, prev+prevOff, uint64(node))
	return true
}

// Delete unlinks the node with the given key; returns whether it existed.
func (l *SortedList) Delete(tc Ctx, list mem.Addr, key uint64) bool {
	prev, prevOff := list, w(listHeadOff)
	cur := mem.Addr(tc.Load(l.sDlHead, list+w(listHeadOff)))
	for cur != nilPtr {
		k := tc.Load(l.sDlKey, cur+w(nodeKeyOff))
		if k == key {
			next := tc.Load(l.sDlNext, cur+w(nodeNextOff))
			tc.Store(l.sDlUnlink, prev+prevOff, next)
			return true
		}
		if k > key {
			return false
		}
		prev, prevOff = cur, w(nodeNextOff)
		cur = mem.Addr(tc.Load(l.sDlNext, cur+w(nodeNextOff)))
		tc.Compute(20)
	}
	return false
}

// Keys reads the list contents directly from memory (untimed, for
// verification).
func Keys(m *htm.Machine, list mem.Addr) []uint64 {
	var out []uint64
	cur := mem.Addr(m.Mem.Load(list + w(listHeadOff)))
	for cur != nilPtr {
		out = append(out, m.Mem.Load(cur+w(nodeKeyOff)))
		cur = mem.Addr(m.Mem.Load(cur + w(nodeNextOff)))
	}
	return out
}
