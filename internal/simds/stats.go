package simds

import (
	"repro/internal/mem"
	"repro/internal/prog"
)

// StatsBlock is a block of global shared counters (memcached's statistics
// information — the paper's Table 1 names it as memcached's contention
// source). All counters live on one cache line, so any two updates
// conflict; updates happen in the middle of longer transactions, which is
// exactly the pattern precise-mode advisory locks serialize.
type StatsBlock struct {
	FnBump *prog.Func

	sLoad, sStore *prog.Site
}

// DeclareStats registers the counter-update code in m.
func DeclareStats(m *prog.Module) *StatsBlock {
	s := &StatsBlock{}
	s.FnBump = m.NewFunc("stats_bump", "statsPtr")
	b := s.FnBump.Entry()
	s.sLoad = b.Load(s.FnBump.Param(0), "counter")
	s.sStore = b.Store(s.FnBump.Param(0), "counter")
	return s
}

// NewStats allocates a stats block of n counters (n <= 8: one line).
func NewStats(al *mem.Allocator) mem.Addr { return al.AllocLines(1) }

// Bump adds delta to counter idx (0..7).
func (s *StatsBlock) Bump(tc Ctx, stats mem.Addr, idx int, delta uint64) {
	a := stats + w(idx)
	v := tc.Load(s.sLoad, a)
	tc.Store(s.sStore, a, v+delta)
}

// Counter reads counter idx directly (untimed verification).
func Counter(m memReader, stats mem.Addr, idx int) uint64 {
	return m.Load(stats + w(idx))
}

// memReader is the subset of *mem.Memory used by untimed readers.
type memReader interface {
	Load(mem.Addr) uint64
}
