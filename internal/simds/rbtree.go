package simds

import (
	"repro/internal/htm"
	"repro/internal/mem"
	"repro/internal/prog"
)

// RBTree is a red-black tree mapping uint64 keys to uint64 values —
// vacation's reservation tables. Each node occupies one cache line:
// [key, val, left, right, parent, color]. Vacation's transactions are
// dominated by lookups and in-place value updates with occasional
// inserts, so contention is low (the paper's Table 4 rates vacation
// "med" with 0.49 aborts/commit); deletions are not needed by the
// workload and are not implemented.
type RBTree struct {
	FnLookup *prog.Func
	FnInsert *prog.Func
	FnUpdate *prog.Func

	sLkRoot, sLkKey, sLkChild, sLkVal *prog.Site

	sInRoot, sInKey, sInChild                       *prog.Site
	sInNewInit, sInLinkChild, sInSetRoot            *prog.Site
	sInColorLoad, sInColorStore, sInParentLoad      *prog.Site
	sInChildLoad, sInChildStore, sInParentStore     *prog.Site
	sInKeyLoad                                      *prog.Site
	sUpRoot, sUpKey, sUpChild, sUpValLoad, sUpValSt *prog.Site
}

const (
	rbRootOff = 0 // header word 0: root pointer

	rbKeyOff    = 0
	rbValOff    = 1
	rbLeftOff   = 2
	rbRightOff  = 3
	rbParentOff = 4
	rbColorOff  = 5 // 0 = black, 1 = red

	rbBlack = 0
	rbRed   = 1
)

// DeclareRBTree registers the tree's static code in m.
func DeclareRBTree(m *prog.Module) *RBTree {
	t := &RBTree{}

	declDescend := func(f *prog.Func) (sRoot, sKey, sChild *prog.Site, cur *prog.Value) {
		entry, loop, exit := f.Entry(), f.NewBlock("loop"), f.NewBlock("exit")
		entry.To(loop)
		loop.To(loop, exit)
		root, sR := entry.LoadPtr("root", f.Param(0), "root")
		c := f.Phi("cur")
		f.Bind(c, root)
		sK := loop.Load(c, "key")
		child, sC := loop.LoadPtr("child", c, "child")
		f.Bind(c, child)
		return sR, sK, sC, c
	}

	t.FnLookup = m.NewFunc("rb_lookup", "treePtr")
	{
		f := t.FnLookup
		var cur *prog.Value
		t.sLkRoot, t.sLkKey, t.sLkChild, cur = declDescend(f)
		t.sLkVal = f.Blocks[2].Load(cur, "val")
	}

	t.FnUpdate = m.NewFunc("rb_update", "treePtr")
	{
		f := t.FnUpdate
		var cur *prog.Value
		t.sUpRoot, t.sUpKey, t.sUpChild, cur = declDescend(f)
		t.sUpValLoad = f.Blocks[2].Load(cur, "val")
		t.sUpValSt = f.Blocks[2].Store(cur, "val")
	}

	t.FnInsert = m.NewFunc("rb_insert", "treePtr", "node")
	{
		f := t.FnInsert
		var cur *prog.Value
		t.sInRoot, t.sInKey, t.sInChild, cur = declDescend(f)
		exit := f.Blocks[2]
		t.sInNewInit = exit.Store(f.Param(1), "fields")
		t.sInLinkChild = exit.StorePtr(cur, "child", f.Param(1))
		t.sInSetRoot = exit.StorePtr(f.Param(0), "root", f.Param(1))
		// Rebalancing accesses (rotations and recoloring) on tree nodes.
		t.sInColorLoad = exit.Load(cur, "color")
		t.sInColorStore = exit.Store(cur, "color")
		parent, sPL := exit.LoadPtr("parent", cur, "parent")
		t.sInParentLoad = sPL
		t.sInParentStore = exit.StorePtr(cur, "parent", parent)
		child2, sCL := exit.LoadPtr("child2", cur, "child")
		t.sInChildLoad = sCL
		t.sInChildStore = exit.StorePtr(cur, "child", child2)
		t.sInKeyLoad = exit.Load(cur, "key")
	}
	return t
}

// NewRBTree allocates an empty tree header.
func NewRBTree(al *mem.Allocator) mem.Addr { return al.AllocLines(1) }

// Lookup returns the value under key.
func (t *RBTree) Lookup(tc Ctx, tree mem.Addr, key uint64) (uint64, bool) {
	cur := mem.Addr(tc.Load(t.sLkRoot, tree+w(rbRootOff)))
	for cur != nilPtr {
		k := tc.Load(t.sLkKey, cur+w(rbKeyOff))
		tc.Compute(3)
		if k == key {
			return tc.Load(t.sLkVal, cur+w(rbValOff)), true
		}
		off := rbLeftOff
		if key > k {
			off = rbRightOff
		}
		cur = mem.Addr(tc.Load(t.sLkChild, cur+w(off)))
	}
	return 0, false
}

// Update adds delta to the value under key; reports whether key existed.
func (t *RBTree) Update(tc Ctx, tree mem.Addr, key, delta uint64) bool {
	cur := mem.Addr(tc.Load(t.sUpRoot, tree+w(rbRootOff)))
	for cur != nilPtr {
		k := tc.Load(t.sUpKey, cur+w(rbKeyOff))
		tc.Compute(3)
		if k == key {
			v := tc.Load(t.sUpValLoad, cur+w(rbValOff))
			tc.Store(t.sUpValSt, cur+w(rbValOff), v+delta)
			return true
		}
		off := rbLeftOff
		if key > k {
			off = rbRightOff
		}
		cur = mem.Addr(tc.Load(t.sUpChild, cur+w(off)))
	}
	return false
}

// Insert adds key→val using the caller-provided fresh node line, then
// restores the red-black invariants. Returns false if key existed (value
// left unchanged, node unused).
func (t *RBTree) Insert(tc Ctx, tree mem.Addr, key, val uint64, node mem.Addr) bool {
	parent := mem.Addr(nilPtr)
	cur := mem.Addr(tc.Load(t.sInRoot, tree+w(rbRootOff)))
	off := rbRootOff
	parentIsHeader := true
	for cur != nilPtr {
		k := tc.Load(t.sInKey, cur+w(rbKeyOff))
		tc.Compute(3)
		if k == key {
			return false
		}
		parent = cur
		parentIsHeader = false
		if key < k {
			off = rbLeftOff
		} else {
			off = rbRightOff
		}
		cur = mem.Addr(tc.Load(t.sInChild, cur+w(off)))
	}
	// Initialize the new node (red, leaf).
	tc.Store(t.sInNewInit, node+w(rbKeyOff), key)
	tc.Store(t.sInNewInit, node+w(rbValOff), val)
	tc.Store(t.sInNewInit, node+w(rbLeftOff), nilPtr)
	tc.Store(t.sInNewInit, node+w(rbRightOff), nilPtr)
	tc.Store(t.sInNewInit, node+w(rbParentOff), uint64(parent))
	tc.Store(t.sInNewInit, node+w(rbColorOff), rbRed)
	if parentIsHeader {
		tc.Store(t.sInSetRoot, tree+w(rbRootOff), uint64(node))
	} else {
		tc.Store(t.sInLinkChild, parent+w(off), uint64(node))
	}
	t.fixup(tc, tree, node)
	return true
}

// rbNode accessors used by fixup, all transactional.
func (t *RBTree) color(tc Ctx, n mem.Addr) uint64 {
	if n == nilPtr {
		return rbBlack
	}
	return tc.Load(t.sInColorLoad, n+w(rbColorOff))
}

func (t *RBTree) setColor(tc Ctx, n mem.Addr, c uint64) {
	tc.Store(t.sInColorStore, n+w(rbColorOff), c)
}

func (t *RBTree) parentOf(tc Ctx, n mem.Addr) mem.Addr {
	return mem.Addr(tc.Load(t.sInParentLoad, n+w(rbParentOff)))
}

func (t *RBTree) childOf(tc Ctx, n mem.Addr, off int) mem.Addr {
	return mem.Addr(tc.Load(t.sInChildLoad, n+w(off)))
}

// rotate performs a left (dir=rbLeftOff) or right rotation around x.
func (t *RBTree) rotate(tc Ctx, tree, x mem.Addr, dir int) {
	other := rbLeftOff + rbRightOff - dir
	y := t.childOf(tc, x, other)
	yc := t.childOf(tc, y, dir)
	tc.Store(t.sInChildStore, x+w(other), uint64(yc))
	if yc != nilPtr {
		tc.Store(t.sInParentStore, yc+w(rbParentOff), uint64(x))
	}
	xp := t.parentOf(tc, x)
	tc.Store(t.sInParentStore, y+w(rbParentOff), uint64(xp))
	if xp == nilPtr {
		tc.Store(t.sInSetRoot, tree+w(rbRootOff), uint64(y))
	} else if t.childOf(tc, xp, rbLeftOff) == x {
		tc.Store(t.sInChildStore, xp+w(rbLeftOff), uint64(y))
	} else {
		tc.Store(t.sInChildStore, xp+w(rbRightOff), uint64(y))
	}
	tc.Store(t.sInChildStore, y+w(dir), uint64(x))
	tc.Store(t.sInParentStore, x+w(rbParentOff), uint64(y))
	tc.Compute(10)
}

// fixup restores red-black invariants after inserting the red node z.
func (t *RBTree) fixup(tc Ctx, tree, z mem.Addr) {
	for {
		p := t.parentOf(tc, z)
		if p == nilPtr || t.color(tc, p) == rbBlack {
			break
		}
		g := t.parentOf(tc, p)
		if g == nilPtr {
			break
		}
		var uncleOff, dir int
		if t.childOf(tc, g, rbLeftOff) == p {
			uncleOff, dir = rbRightOff, rbLeftOff
		} else {
			uncleOff, dir = rbLeftOff, rbRightOff
		}
		u := t.childOf(tc, g, uncleOff)
		if t.color(tc, u) == rbRed {
			t.setColor(tc, p, rbBlack)
			t.setColor(tc, u, rbBlack)
			t.setColor(tc, g, rbRed)
			z = g
			continue
		}
		if t.childOf(tc, p, uncleOff) == z {
			z = p
			t.rotate(tc, tree, z, dir)
			p = t.parentOf(tc, z)
		}
		t.setColor(tc, p, rbBlack)
		t.setColor(tc, g, rbRed)
		t.rotate(tc, tree, g, uncleOff)
	}
	root := mem.Addr(tc.Load(t.sInRoot, tree+w(rbRootOff)))
	if root != nilPtr && t.color(tc, root) == rbRed {
		// Only write when actually red: an unconditional store here would
		// put the root's line in every insert's write set and abort every
		// concurrent traversal.
		t.setColor(tc, root, rbBlack)
	}
}

// SeedRBTree inserts keys directly in memory (setup, untimed) as a
// balanced BST built from the sorted keys, colored black.
func SeedRBTree(m *htm.Machine, tree mem.Addr, keys []uint64, val func(k uint64) uint64) {
	var build func(lo, hi int, parent mem.Addr) mem.Addr
	build = func(lo, hi int, parent mem.Addr) mem.Addr {
		if lo > hi {
			return nilPtr
		}
		mid := (lo + hi) / 2
		n := m.Alloc.AllocLines(1)
		m.Mem.Store(n+w(rbKeyOff), keys[mid])
		m.Mem.Store(n+w(rbValOff), val(keys[mid]))
		m.Mem.Store(n+w(rbParentOff), uint64(parent))
		m.Mem.Store(n+w(rbColorOff), rbBlack)
		m.Mem.Store(n+w(rbLeftOff), uint64(build(lo, mid-1, n)))
		m.Mem.Store(n+w(rbRightOff), uint64(build(mid+1, hi, n)))
		return n
	}
	m.Mem.Store(tree+w(rbRootOff), uint64(build(0, len(keys)-1, nilPtr)))
}

// RBKeys walks the tree directly from memory in key order (untimed).
func RBKeys(m *htm.Machine, tree mem.Addr) []uint64 {
	var out []uint64
	var walk func(n mem.Addr)
	walk = func(n mem.Addr) {
		if n == nilPtr {
			return
		}
		walk(mem.Addr(m.Mem.Load(n + w(rbLeftOff))))
		out = append(out, m.Mem.Load(n+w(rbKeyOff)))
		walk(mem.Addr(m.Mem.Load(n + w(rbRightOff))))
	}
	walk(mem.Addr(m.Mem.Load(tree + w(rbRootOff))))
	return out
}

// RBFind reads the value under key directly from memory (untimed).
func RBFind(m *htm.Machine, tree mem.Addr, key uint64) (uint64, bool) {
	cur := mem.Addr(m.Mem.Load(tree + w(rbRootOff)))
	for cur != nilPtr {
		k := m.Mem.Load(cur + w(rbKeyOff))
		if k == key {
			return m.Mem.Load(cur + w(rbValOff)), true
		}
		off := rbLeftOff
		if key > k {
			off = rbRightOff
		}
		cur = mem.Addr(m.Mem.Load(cur + w(off)))
	}
	return 0, false
}

// RBDepthOK verifies no red-red parent/child pairs exist and the tree is
// a valid BST (untimed invariant check for property tests).
func RBDepthOK(m *htm.Machine, tree mem.Addr) bool {
	ok := true
	var walk func(n mem.Addr, lo, hi uint64)
	walk = func(n mem.Addr, lo, hi uint64) {
		if n == nilPtr || !ok {
			return
		}
		k := m.Mem.Load(n + w(rbKeyOff))
		if k < lo || k > hi {
			ok = false
			return
		}
		if m.Mem.Load(n+w(rbColorOff)) == rbRed {
			l := mem.Addr(m.Mem.Load(n + w(rbLeftOff)))
			r := mem.Addr(m.Mem.Load(n + w(rbRightOff)))
			if (l != nilPtr && m.Mem.Load(l+w(rbColorOff)) == rbRed) ||
				(r != nilPtr && m.Mem.Load(r+w(rbColorOff)) == rbRed) {
				ok = false
				return
			}
		}
		if k > 0 {
			walk(mem.Addr(m.Mem.Load(n+w(rbLeftOff))), lo, k-1)
		}
		walk(mem.Addr(m.Mem.Load(n+w(rbRightOff))), k+1, hi)
	}
	walk(mem.Addr(m.Mem.Load(tree+w(rbRootOff))), 0, ^uint64(0))
	return ok
}
