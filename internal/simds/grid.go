package simds

import (
	"repro/internal/htm"
	"repro/internal/mem"
	"repro/internal/prog"
)

// Grid is labyrinth's 3-D routing grid: one word per cell, row-major.
// A routing transaction privatizes the grid with nontransactional reads
// (standing in for STAMP's early release, which keeps the huge read set
// out of the speculative state), computes a path on the snapshot, then
// transactionally re-validates and claims the path's cells. Conflicts
// arise when concurrently routed paths overlap.
type Grid struct {
	FnClaim   *prog.Func
	FnRelease *prog.Func

	sDims, sPoints, sCheck, sClaim *prog.Site
	sRelPoints, sRelease           *prog.Site

	X, Y, Z int
}

// Grid header layout (one line): [xdim, ydim, zdim, points]. The cells
// array is a separate allocation reached through the points field — the
// same shape as STAMP's grid_t. That structure matters to the compiler
// pass: the cell anchor's PARENT is the header anchor, so locking
// promotion can escalate from individual cells to the whole grid.
const (
	gridXOff      = 0
	gridPointsOff = 3
)

// DeclareGrid registers the path-claim code in m.
func DeclareGrid(m *prog.Module, x, y, z int) *Grid {
	g := &Grid{X: x, Y: y, Z: z}
	g.FnClaim = m.NewFunc("grid_claim_path", "gridPtr")
	{
		f := g.FnClaim
		entry, loop, exit := f.Entry(), f.NewBlock("loop"), f.NewBlock("exit")
		entry.To(loop)
		loop.To(loop, exit)
		g.sDims = entry.Load(f.Param(0), "xdim")
		pts, sPts := entry.LoadPtr("points", f.Param(0), "points")
		g.sPoints = sPts
		g.sCheck = loop.Load(pts, "cell")
		g.sClaim = loop.Store(pts, "cell")
	}
	g.FnRelease = m.NewFunc("grid_release_path", "gridPtr")
	{
		f := g.FnRelease
		entry, loop, exit := f.Entry(), f.NewBlock("loop"), f.NewBlock("exit")
		entry.To(loop)
		loop.To(loop, exit)
		pts, sPts := entry.LoadPtr("points", f.Param(0), "points")
		g.sRelPoints = sPts
		g.sRelease = loop.Store(pts, "cell")
	}
	return g
}

// ReleasePath transactionally frees previously claimed cells (rip-up, so
// the maze does not fill up over a long run).
func (g *Grid) ReleasePath(tc Ctx, header mem.Addr, path []mem.Addr) {
	tc.Load(g.sRelPoints, header+w(gridPointsOff))
	for _, a := range path {
		tc.Store(g.sRelease, a, 0)
		tc.Compute(2)
	}
}

// NewGrid allocates the grid header and cells array, all cells free (0).
// It returns the header; Cells resolves the array base.
func NewGrid(m *htm.Machine, g *Grid) mem.Addr {
	h := m.Alloc.AllocLines(1)
	words := g.X * g.Y * g.Z
	cells := m.Alloc.AllocLines((words + 7) / 8)
	m.Mem.Store(h+w(gridXOff), uint64(g.X))
	m.Mem.Store(h+w(gridXOff+1), uint64(g.Y))
	m.Mem.Store(h+w(gridXOff+2), uint64(g.Z))
	m.Mem.Store(h+w(gridPointsOff), uint64(cells))
	return h
}

// Cells reads the cell-array base from the header (untimed).
func Cells(m *htm.Machine, header mem.Addr) mem.Addr {
	return mem.Addr(m.Mem.Load(header + w(gridPointsOff)))
}

// CellAddr returns the address of cell (x,y,z) given the cells base.
func (g *Grid) CellAddr(cells mem.Addr, x, y, z int) mem.Addr {
	return cells + w((z*g.Y+y)*g.X+x)
}

// Snapshot reads the whole grid nontransactionally into a Go slice
// (early-release stand-in: the reads join no speculative set).
func (g *Grid) Snapshot(tc Ctx, cells mem.Addr, buf []uint64) {
	n := g.X * g.Y * g.Z
	// Reading word-by-word would be needlessly slow in simulated time
	// too; real code streams line-by-line, so sample one word per line
	// for latency and fill the snapshot from memory directly.
	m := tc.Core().Machine().Mem
	for i := 0; i < n; i += 8 {
		tc.Core().NTLoad(cells + w(i))
	}
	for i := 0; i < n; i++ {
		buf[i] = m.Load(cells + w(i))
	}
}

// ClaimPath transactionally claims the path cell by cell (validate, then
// write — eager HTM marks the route as it goes, exactly like STAMP's
// labyrinth), then performs the traceback/bookkeeping work (thinkUops)
// with the freshly written cells still speculative. That window is where
// overlapping routes conflict. It returns false when some cell is
// already taken; the router then recomputes from a fresh snapshot.
func (g *Grid) ClaimPath(tc Ctx, header mem.Addr, path []mem.Addr, owner uint64, thinkUops int) bool {
	// Touch the grid header first (dimension check + points load), the
	// accesses whose anchor is every cell anchor's parent.
	tc.Load(g.sDims, header+w(gridXOff))
	tc.Load(g.sPoints, header+w(gridPointsOff))
	for i, a := range path {
		if tc.Load(g.sCheck, a) != 0 {
			// Occupied: undo our own (still speculative) markings so the
			// transaction can commit cleanly with no effect — this also
			// keeps the claim correct when running irrevocably.
			for j := 0; j < i; j++ {
				tc.Store(g.sClaim, path[j], 0)
			}
			return false
		}
		tc.Store(g.sClaim, a, owner)
		tc.Compute(4)
	}
	tc.Compute(thinkUops)
	return true
}

// CellOwner reads a cell directly from memory (untimed verification).
func (g *Grid) CellOwner(m *htm.Machine, header mem.Addr, x, y, z int) uint64 {
	return m.Mem.Load(g.CellAddr(Cells(m, header), x, y, z))
}
