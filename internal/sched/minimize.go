package sched

// Minimize shrinks a failing decision sequence while preserving the
// failure, in two phases:
//
//  1. Prefix binary search: replay falls back to the deterministic
//     minimum-time rule once the recorded picks run out, so every prefix
//     of the sequence is itself a complete schedule. A binary search finds
//     a short failing prefix in O(log n) probes. (Failure need not be
//     monotone in prefix length, so this is a heuristic — but the search
//     only ever commits to prefixes that verifiably fail.)
//  2. Bounded ddmin: repeatedly try deleting chunks from the surviving
//     prefix, halving the chunk size when a whole pass removes nothing,
//     until single-decision granularity is reached or the probe budget is
//     exhausted.
//
// fail must re-run the system under Replay(picks) and report whether the
// original failure reproduces; it is the expensive part, so budget caps
// the total number of fail calls. The input sequence must itself fail.
func Minimize(picks []uint32, fail func([]uint32) bool, budget int) []uint32 {
	probes := 0
	try := func(c []uint32) bool {
		if probes >= budget {
			return false
		}
		probes++
		return fail(c)
	}

	// Phase 1: smallest failing prefix by binary search. Invariant:
	// picks[:hi] fails; picks[:lo] is not known to fail.
	lo, hi := 0, len(picks)
	for lo < hi && probes < budget {
		mid := lo + (hi-lo)/2
		if try(picks[:mid]) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	// Always non-nil, even for an empty prefix: callers distinguish "the
	// minimum is the empty schedule" from "minimization never ran".
	cur := make([]uint32, hi)
	copy(cur, picks[:hi])

	// Phase 2: ddmin-style chunk deletion.
	chunk := len(cur) / 2
	for chunk >= 1 && probes < budget {
		removed := false
		for start := 0; start+chunk <= len(cur) && probes < budget; {
			cand := make([]uint32, 0, len(cur)-chunk)
			cand = append(cand, cur[:start]...)
			cand = append(cand, cur[start+chunk:]...)
			if try(cand) {
				cur = cand
				removed = true
				// Do not advance: the next chunk has shifted into place.
			} else {
				start += chunk
			}
		}
		if !removed {
			chunk /= 2
		}
	}
	return cur
}
