package sched

import (
	"bytes"
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
)

// TraceVersion is the current trace format version.
const TraceVersion = 1

// Trace is a recorded schedule plus enough run metadata to reproduce the
// run exactly on any machine: the workload identity and seed pin down
// every per-core PRNG and data-structure layout, the window pins down the
// candidate sets, and Picks pins down every scheduling decision.
//
// On disk a trace is two lines: a JSON header (everything but Picks) and
// a base64(varint) encoding of the decision sequence. The header stays
// human-greppable; the picks stay compact (a 100k-decision trace of a
// 16-core run is ~130 KB).
type Trace struct {
	Version int    `json:"version"`
	Spec    string `json:"spec"` // scheduler spec that generated the run
	Seed    int64  `json:"seed"` // scheduler seed (not the workload seed)
	Bench   string `json:"bench"`
	Mode    string `json:"mode"`
	Threads int    `json:"threads"`
	WlSeed  int64  `json:"wl_seed"`       // workload/machine seed
	Ops     int    `json:"ops,omitempty"` // total operations (0 = workload default)
	Window  uint64 `json:"window"`

	Picks []uint32 `json:"-"`
}

// Encode renders the trace in the two-line on-disk format.
func (t *Trace) Encode() []byte {
	var buf bytes.Buffer
	hdr, err := json.Marshal(t)
	if err != nil {
		panic(err) // no unmarshalable fields by construction
	}
	buf.Write(hdr)
	buf.WriteByte('\n')
	var raw []byte
	var tmp [binary.MaxVarintLen32]byte
	for _, p := range t.Picks {
		raw = append(raw, tmp[:binary.PutUvarint(tmp[:], uint64(p))]...)
	}
	buf.WriteString(base64.StdEncoding.EncodeToString(raw))
	buf.WriteByte('\n')
	return buf.Bytes()
}

// Decode parses the two-line on-disk format.
func Decode(data []byte) (*Trace, error) {
	lines := bytes.SplitN(data, []byte("\n"), 3)
	if len(lines) < 2 {
		return nil, fmt.Errorf("sched: trace truncated (want header and picks lines)")
	}
	t := &Trace{}
	if err := json.Unmarshal(lines[0], t); err != nil {
		return nil, fmt.Errorf("sched: bad trace header: %v", err)
	}
	if t.Version != TraceVersion {
		return nil, fmt.Errorf("sched: trace version %d, want %d", t.Version, TraceVersion)
	}
	raw, err := base64.StdEncoding.DecodeString(string(bytes.TrimSpace(lines[1])))
	if err != nil {
		return nil, fmt.Errorf("sched: bad picks encoding: %v", err)
	}
	for len(raw) > 0 {
		v, n := binary.Uvarint(raw)
		if n <= 0 || v > 1<<32-1 {
			return nil, fmt.Errorf("sched: corrupt varint in picks")
		}
		t.Picks = append(t.Picks, uint32(v))
		raw = raw[n:]
	}
	return t, nil
}

// WriteFile writes the trace to path.
func (t *Trace) WriteFile(path string) error {
	return os.WriteFile(path, t.Encode(), 0o644)
}

// ReadTraceFile reads a trace from path.
func ReadTraceFile(path string) (*Trace, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(data)
}
