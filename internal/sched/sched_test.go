package sched

import (
	"path/filepath"
	"reflect"
	"testing"
)

func TestParseSpec(t *testing.T) {
	cases := []struct {
		in   string
		want Spec
		err  bool
	}{
		{in: "random", want: Spec{Kind: "random", Window: DefaultWindow}},
		{in: "pct:3", want: Spec{Kind: "pct", Depth: 3, Window: DefaultWindow}},
		{in: "pct:1@0", want: Spec{Kind: "pct", Depth: 1, Window: 0}},
		{in: "random@8192", want: Spec{Kind: "random", Window: 8192}},
		{in: "replay:a/b.trace", want: Spec{Kind: "replay", File: "a/b.trace", Window: DefaultWindow}},
		{in: "pct:0", err: true},
		{in: "pct:x", err: true},
		{in: "replay:", err: true},
		{in: "fifo", err: true},
		{in: "random@-1", err: true},
	}
	for _, c := range cases {
		got, err := Parse(c.in)
		if c.err {
			if err == nil {
				t.Errorf("Parse(%q): want error, got %+v", c.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("Parse(%q) = %+v, want %+v", c.in, got, c.want)
		}
		back, err := Parse(got.String())
		if err != nil || back != got {
			t.Errorf("Parse(String(%q)) = %+v, %v; not a round trip", c.in, back, err)
		}
	}
}

func TestRandomDeterministic(t *testing.T) {
	a, b := NewRandom(7, DefaultWindow), NewRandom(7, DefaultWindow)
	runnable := []int{0, 1, 2, 3}
	times := []uint64{5, 5, 9, 2}
	for i := 0; i < 100; i++ {
		if x, y := a.Pick(runnable, times), b.Pick(runnable, times); x != y {
			t.Fatalf("same-seed Random diverged at call %d: %d vs %d", i, x, y)
		}
	}
}

func TestPCTPrioritiesDistinctAndDemotion(t *testing.T) {
	const cores, depth = 8, 4
	p := NewPCT(11, cores, depth, DefaultWindow)
	seen := make(map[int]bool)
	for _, pr := range p.prio {
		if pr < depth || pr >= depth+cores {
			t.Fatalf("initial priority %d outside [d, d+cores)", pr)
		}
		if seen[pr] {
			t.Fatalf("duplicate priority %d", pr)
		}
		seen[pr] = true
	}
	if len(p.change) != depth-1 {
		t.Fatalf("got %d change points, want %d", len(p.change), depth-1)
	}
	// Drive past every change point; priorities must stay distinct and the
	// demoted ones must be below all initial priorities.
	runnable := []int{0, 1, 2, 3, 4, 5, 6, 7}
	times := make([]uint64, cores)
	for i := uint64(0); i <= PCTHorizon; i++ {
		p.Pick(runnable, times)
	}
	if len(p.change) != 0 {
		t.Fatalf("%d change points unconsumed", len(p.change))
	}
	seen = make(map[int]bool)
	below := 0
	for _, pr := range p.prio {
		if seen[pr] {
			t.Fatalf("duplicate priority %d after demotions", pr)
		}
		seen[pr] = true
		if pr < depth {
			below++
		}
	}
	if below != depth-1 {
		t.Fatalf("%d demoted cores, want %d", below, depth-1)
	}
}

func TestPCTPicksHighestPriority(t *testing.T) {
	p := NewPCT(3, 4, 1, DefaultWindow) // depth 1: no change points
	runnable := []int{1, 3}
	times := []uint64{0, 0}
	want := 0
	if p.prio[3] > p.prio[1] {
		want = 1
	}
	if got := p.Pick(runnable, times); got != want {
		t.Fatalf("Pick = %d, want %d (prio[1]=%d prio[3]=%d)", got, want, p.prio[1], p.prio[3])
	}
}

func TestReplayConsumesThenFallsBack(t *testing.T) {
	r := NewReplay([]uint32{2, 0}, DefaultWindow)
	runnable := []int{0, 1, 2}
	times := []uint64{9, 4, 7}
	if got := r.Pick(runnable, times); got != 2 {
		t.Fatalf("first pick = %d, want recorded 2", got)
	}
	if got := r.Pick(runnable, times); got != 0 {
		t.Fatalf("second pick = %d, want recorded 0", got)
	}
	// Exhausted: minimum-time fallback picks index 1 (time 4).
	if got := r.Pick(runnable, times); got != 1 {
		t.Fatalf("fallback pick = %d, want 1", got)
	}
	if r.Consumed() != 2 {
		t.Fatalf("Consumed = %d, want 2", r.Consumed())
	}
}

func TestRecorderNormalizesAndReplays(t *testing.T) {
	inner := NewRandom(42, DefaultWindow)
	rec := NewRecorder(inner)
	runnable := []int{0, 1, 2, 3, 4}
	times := make([]uint64, 5)
	var live []int
	for i := 0; i < 50; i++ {
		live = append(live[:0:0], runnable[:2+i%4]...)
		rec.Pick(live, times[:len(live)])
	}
	rep := NewReplay(rec.Picks(), DefaultWindow)
	inner2 := NewRandom(42, DefaultWindow)
	for i := 0; i < 50; i++ {
		live = append(live[:0:0], runnable[:2+i%4]...)
		want := inner2.Pick(live, times[:len(live)])
		if got := rep.Pick(live, times[:len(live)]); got != want {
			t.Fatalf("replayed pick %d = %d, want %d", i, got, want)
		}
	}
}

func TestTraceRoundTrip(t *testing.T) {
	tr := &Trace{
		Version: TraceVersion,
		Spec:    "pct:3",
		Seed:    99,
		Bench:   "list",
		Mode:    "staggered",
		Threads: 8,
		WlSeed:  1,
		Window:  DefaultWindow,
		Picks:   []uint32{0, 1, 2, 3, 300, 0, 7, 1 << 20},
	}
	back, err := Decode(tr.Encode())
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(tr, back) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", back, tr)
	}

	path := filepath.Join(t.TempDir(), "x.trace")
	if err := tr.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	back, err = ReadTraceFile(path)
	if err != nil {
		t.Fatalf("ReadTraceFile: %v", err)
	}
	if !reflect.DeepEqual(tr, back) {
		t.Fatalf("file round trip mismatch")
	}
}

func TestTraceEmptyPicks(t *testing.T) {
	tr := &Trace{Version: TraceVersion, Spec: "random", Bench: "queue", Threads: 2, Window: 1}
	back, err := Decode(tr.Encode())
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if len(back.Picks) != 0 {
		t.Fatalf("got %d picks, want 0", len(back.Picks))
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	for _, in := range []string{"", "{}\n!!!notbase64!!!\n", "notjson\nAA==\n"} {
		if _, err := Decode([]byte(in)); err == nil {
			t.Errorf("Decode(%q): want error", in)
		}
	}
	// Wrong version.
	if _, err := Decode([]byte(`{"version":999}` + "\n\n")); err == nil {
		t.Errorf("Decode with version 999: want error")
	}
}

// TestMinimizePrefix checks that a failure depending only on an early
// decision minimizes to (near) nothing beyond it.
func TestMinimizePrefix(t *testing.T) {
	picks := make([]uint32, 400)
	picks[5] = 7 // the single decision that matters
	fail := func(p []uint32) bool { return len(p) > 5 && p[5] == 7 }
	got := Minimize(picks, fail, 10_000)
	if !fail(got) {
		t.Fatalf("minimized sequence no longer fails")
	}
	if len(got) > 10 {
		t.Fatalf("minimized to %d decisions, want <= 10", len(got))
	}
}

// TestMinimizeSubsequence checks ddmin removes interior decisions the
// failure does not depend on.
func TestMinimizeSubsequence(t *testing.T) {
	// Failure: the subsequence must contain at least three 9s.
	picks := make([]uint32, 200)
	picks[10], picks[90], picks[170] = 9, 9, 9
	count := func(p []uint32) int {
		n := 0
		for _, v := range p {
			if v == 9 {
				n++
			}
		}
		return n
	}
	fail := func(p []uint32) bool { return count(p) >= 3 }
	got := Minimize(picks, fail, 10_000)
	if !fail(got) {
		t.Fatalf("minimized sequence no longer fails")
	}
	if len(got) > 20 {
		t.Fatalf("minimized to %d decisions, want <= 20", len(got))
	}
}

func TestMinimizeRespectsBudget(t *testing.T) {
	calls := 0
	fail := func(p []uint32) bool { calls++; return true }
	Minimize(make([]uint32, 1<<12), fail, 25)
	if calls > 25 {
		t.Fatalf("fail called %d times, budget 25", calls)
	}
}
