// Package sched provides adversarial schedulers for the htm engine, plus
// recording, replay, and minimization of the schedules they produce.
//
// The htm engine's baseline rule — always run the runnable core with the
// smallest virtual clock — yields exactly one interleaving per (program,
// seed). The schedulers here widen that to a searchable space: at every
// globally visible event the engine offers the set of candidate cores
// (those within the scheduler's virtual-time window of the minimum clock)
// and the scheduler picks one. Each such pick is a decision; the sequence
// of decisions is a complete, portable description of the schedule, which
// is what makes record/replay and delta-debugging minimization possible.
//
// Three strategies are provided:
//
//   - Random: uniform choice among candidates, seeded. The cheap baseline
//     explorer; good at shallow races.
//   - PCT: the priority-based probabilistic concurrency testing algorithm
//     (Burckhardt et al., ASPLOS 2010) adapted to virtual-time candidates.
//     Cores get random distinct priorities; the highest-priority candidate
//     always runs; at d-1 pre-sampled decision indices the running core's
//     priority is demoted below everyone else's. For a bug of depth d
//     (one needing d ordering constraints), PCT finds it with probability
//     >= 1/(n * k^(d-1)) per run — far better than uniform random for
//     small d.
//   - Replay: consumes a recorded decision sequence verbatim, then falls
//     back to the deterministic minimum-time rule. Truncated sequences
//     (the minimizer's output) therefore still define complete schedules.
package sched

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"repro/internal/htm"
)

// DefaultWindow is the default virtual-time candidate window in cycles.
// It must be comfortably larger than one spin-poll iteration (~50 cycles
// plus a memory access) so adversarial choices exist at lock handoffs, and
// small enough that a spinning core soon drifts out of the candidate set,
// which is what guarantees liveness under adversarial priorities.
const DefaultWindow = 4096

// PCTHorizon is the decision-count horizon from which PCT's priority
// change points are sampled. Runs longer than the horizon keep their final
// priority assignment; runs shorter simply never reach the later change
// points. 100k decisions covers every workload in this repo at the default
// exploration op counts.
const PCTHorizon = 100_000

// Spec is a parsed scheduler specification string. The accepted grammar:
//
//	random            seeded uniform choice
//	pct:<d>           PCT with depth d (d >= 1)
//	replay:<file>     replay a recorded trace file
//	<any>@<window>    override the candidate window in cycles (0 = unbounded)
//
// e.g. "pct:3", "random@8192", "replay:fail.trace".
type Spec struct {
	Kind   string // "random", "pct", or "replay"
	Depth  int    // PCT depth (Kind == "pct")
	File   string // trace path (Kind == "replay")
	Window uint64
}

// Parse parses a scheduler specification string.
func Parse(s string) (Spec, error) {
	spec := Spec{Window: DefaultWindow}
	if i := strings.LastIndex(s, "@"); i >= 0 {
		w, err := strconv.ParseUint(s[i+1:], 10, 64)
		if err != nil {
			return Spec{}, fmt.Errorf("sched: bad window in %q: %v", s, err)
		}
		spec.Window = w
		s = s[:i]
	}
	switch {
	case s == "random":
		spec.Kind = "random"
	case strings.HasPrefix(s, "pct:"):
		d, err := strconv.Atoi(s[len("pct:"):])
		if err != nil || d < 1 {
			return Spec{}, fmt.Errorf("sched: bad pct depth in %q", s)
		}
		spec.Kind, spec.Depth = "pct", d
	case strings.HasPrefix(s, "replay:"):
		f := s[len("replay:"):]
		if f == "" {
			return Spec{}, fmt.Errorf("sched: empty replay file in %q", s)
		}
		spec.Kind, spec.File = "replay", f
	default:
		return Spec{}, fmt.Errorf("sched: unknown scheduler %q (want random, pct:<d>, or replay:<file>)", s)
	}
	return spec, nil
}

// String renders the spec back into the grammar Parse accepts.
func (s Spec) String() string {
	var b strings.Builder
	switch s.Kind {
	case "pct":
		fmt.Fprintf(&b, "pct:%d", s.Depth)
	case "replay":
		fmt.Fprintf(&b, "replay:%s", s.File)
	default:
		b.WriteString(s.Kind)
	}
	if s.Window != DefaultWindow {
		fmt.Fprintf(&b, "@%d", s.Window)
	}
	return b.String()
}

// New instantiates the specified scheduler. seed drives the random and PCT
// strategies; cores is the thread count (PCT needs it for its priority
// range). Replay specs read their trace file here.
func (s Spec) New(seed int64, cores int) (htm.Scheduler, error) {
	switch s.Kind {
	case "random":
		return NewRandom(seed, s.Window), nil
	case "pct":
		return NewPCT(seed, cores, s.Depth, s.Window), nil
	case "replay":
		t, err := ReadTraceFile(s.File)
		if err != nil {
			return nil, err
		}
		w := s.Window
		if w == DefaultWindow && t.Window != 0 {
			// Fidelity: unless the spec overrides it, replay under the
			// window the schedule was recorded with.
			w = t.Window
		}
		return NewReplay(t.Picks, w), nil
	default:
		return nil, fmt.Errorf("sched: unknown kind %q", s.Kind)
	}
}

// Random picks uniformly among the candidate cores.
type Random struct {
	rng    *rand.Rand
	window uint64
}

// NewRandom returns a seeded uniform scheduler.
func NewRandom(seed int64, window uint64) *Random {
	return &Random{rng: rand.New(rand.NewSource(seed)), window: window}
}

func (r *Random) Pick(runnable []int, times []uint64) int { return r.rng.Intn(len(runnable)) }

func (r *Random) Window() uint64 { return r.window }

// PCT is a probabilistic concurrency testing scheduler: random distinct
// per-core priorities, highest-priority candidate wins, and d-1 priority
// change points sampled over PCTHorizon decisions at which the chosen
// core's priority is demoted below all initial priorities.
type PCT struct {
	window    uint64
	prio      []int    // per-core priority, all distinct
	change    []uint64 // ascending decision indices of the change points
	nextDemot int      // next demotion priority to hand out (d-2 .. 0)
	decisions uint64
}

// NewPCT returns a PCT scheduler of depth d for the given core count.
func NewPCT(seed int64, cores, d int, window uint64) *PCT {
	rng := rand.New(rand.NewSource(seed))
	p := &PCT{window: window, prio: make([]int, cores), nextDemot: d - 2}
	// Initial priorities: a random permutation of [d, d+cores).
	for i, v := range rng.Perm(cores) {
		p.prio[i] = d + v
	}
	// d-1 distinct change points in [1, PCTHorizon].
	seen := make(map[uint64]bool, d-1)
	for len(p.change) < d-1 {
		k := uint64(rng.Int63n(PCTHorizon)) + 1
		if !seen[k] {
			seen[k] = true
			p.change = append(p.change, k)
		}
	}
	for i := 1; i < len(p.change); i++ { // insertion sort; d is tiny
		for j := i; j > 0 && p.change[j] < p.change[j-1]; j-- {
			p.change[j], p.change[j-1] = p.change[j-1], p.change[j]
		}
	}
	return p
}

func (p *PCT) Pick(runnable []int, times []uint64) int {
	p.decisions++
	best := 0
	for i := 1; i < len(runnable); i++ {
		if p.prio[runnable[i]] > p.prio[runnable[best]] {
			best = i
		}
	}
	if len(p.change) > 0 && p.decisions >= p.change[0] {
		p.change = p.change[1:]
		// Demote the core that just ran below every initial priority.
		// Demotion priorities are distinct (d-2 down to 0), keeping the
		// whole priority vector collision-free.
		p.prio[runnable[best]] = p.nextDemot
		p.nextDemot--
	}
	return best
}

func (p *PCT) Window() uint64 { return p.window }

// Replay feeds back a recorded decision sequence. When the sequence is
// exhausted it falls back to the minimum-time candidate (the engine's
// baseline rule), so a truncated prefix still defines a complete,
// deterministic schedule — the property the minimizer relies on.
type Replay struct {
	picks  []uint32
	pos    int
	window uint64
}

// NewReplay returns a scheduler that replays picks.
func NewReplay(picks []uint32, window uint64) *Replay {
	return &Replay{picks: picks, window: window}
}

func (r *Replay) Pick(runnable []int, times []uint64) int {
	if r.pos < len(r.picks) {
		k := int(r.picks[r.pos])
		r.pos++
		return k // engine reduces out-of-range picks modulo len(runnable)
	}
	best := 0
	for i := 1; i < len(runnable); i++ {
		if times[i] < times[best] {
			best = i
		}
	}
	return best
}

func (r *Replay) Window() uint64 { return r.window }

// Consumed reports how many recorded decisions have been replayed.
func (r *Replay) Consumed() int { return r.pos }

// Recorder wraps a scheduler and records every decision it makes, already
// normalized to a valid candidate index, so the recorded sequence replays
// the run bit-identically through Replay.
type Recorder struct {
	inner htm.Scheduler
	picks []uint32
}

// NewRecorder wraps inner with decision recording.
func NewRecorder(inner htm.Scheduler) *Recorder {
	return &Recorder{inner: inner}
}

func (r *Recorder) Pick(runnable []int, times []uint64) int {
	k := r.inner.Pick(runnable, times)
	if k < 0 || k >= len(runnable) {
		k = ((k % len(runnable)) + len(runnable)) % len(runnable)
	}
	r.picks = append(r.picks, uint32(k))
	return k
}

func (r *Recorder) Window() uint64 { return r.inner.Window() }

// Picks returns the recorded decision sequence (owned by the recorder).
func (r *Recorder) Picks() []uint32 { return r.picks }
