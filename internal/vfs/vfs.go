// Package vfs is the pluggable filesystem seam under the durable layers
// (internal/store, internal/journal): a small interface over exactly the
// operations crash safety depends on — create, write, fsync, atomic
// rename, truncate — with two implementations. OS passes straight
// through to the real filesystem; FaultFS wraps any FS and injects
// deterministic disk faults (short writes, fsync errors, ENOSPC,
// post-write crashes) from a chaos.Failpoints registry, so the recovery
// paths above it can be exercised byte-for-byte reproducibly.
package vfs

import (
	"io"
	"io/fs"
	"os"
)

// File is the handle surface the durable layers use: sequential reads
// and writes, durability via Sync, and the name for error reports.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	Name() string
	Sync() error
}

// FS is the filesystem surface the durable layers use. Implementations
// must give Rename the same same-directory atomicity the OS provides:
// after a crash, the destination holds either the old or the new
// content, never a mix.
type FS interface {
	MkdirAll(path string) error
	// Create opens name for writing, truncating it if it exists.
	Create(name string) (File, error)
	// CreateTemp creates a new temp file in dir; pattern as os.CreateTemp.
	CreateTemp(dir, pattern string) (File, error)
	// Open opens name read-only.
	Open(name string) (File, error)
	// OpenAppend opens name for appending, creating it if needed.
	OpenAppend(name string) (File, error)
	ReadFile(name string) ([]byte, error)
	WriteFile(name string, data []byte) error
	Rename(oldpath, newpath string) error
	Remove(name string) error
	Truncate(name string, size int64) error
	Stat(name string) (fs.FileInfo, error)
	ReadDir(name string) ([]fs.DirEntry, error)
}

// OS is the real filesystem.
var OS FS = osFS{}

type osFS struct{}

func (osFS) MkdirAll(path string) error { return os.MkdirAll(path, 0o755) }

func (osFS) Create(name string) (File, error) { return os.Create(name) }

func (osFS) CreateTemp(dir, pattern string) (File, error) { return os.CreateTemp(dir, pattern) }

func (osFS) Open(name string) (File, error) { return os.Open(name) }

func (osFS) OpenAppend(name string) (File, error) {
	return os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
}

func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (osFS) WriteFile(name string, data []byte) error { return os.WriteFile(name, data, 0o644) }

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

func (osFS) Stat(name string) (fs.FileInfo, error) { return os.Stat(name) }

func (osFS) ReadDir(name string) ([]fs.DirEntry, error) { return os.ReadDir(name) }
