package vfs

import (
	"errors"
	"fmt"
	"io/fs"
	"sync/atomic"

	"repro/internal/chaos"
)

// ErrInjected is the failure FaultFS injects for FPError: an I/O error
// whose aftermath is unknown to the caller, like a real EIO from fsync.
var ErrInjected = errors.New("vfs: injected I/O error")

// ErrNoSpace is the failure FaultFS injects for FPENOSPC.
var ErrNoSpace = errors.New("vfs: injected ENOSPC: no space left on device")

// ErrCrashed is returned by every operation after a crash failpoint
// fired with no OnCrash hook: the filesystem is wedged, modeling the
// process having died. Whatever bytes reached the underlying FS before
// the crash point stay there — exactly what a restart would find.
var ErrCrashed = errors.New("vfs: simulated crash: filesystem wedged")

// FaultFS injects deterministic disk faults into a base FS, driven by a
// chaos.Failpoints registry. Operation classes evaluated against the
// registry: "create", "open", "write", "sync", "rename", "remove",
// "truncate" (ReadFile/WriteFile evaluate "open"/"write" with the full
// path). A crash failpoint completes the operation first — the
// post-write crash window — then calls OnCrash; if OnCrash is nil or
// returns, the FaultFS wedges and every later operation fails with
// ErrCrashed, so in-process tests get powercut semantics while the
// daemon can pass an OnCrash that hard-exits the process.
type FaultFS struct {
	Base    FS
	FP      *chaos.Failpoints
	OnCrash func()

	crashed atomic.Bool
}

// Crashed reports whether a crash failpoint has wedged the filesystem.
func (f *FaultFS) Crashed() bool { return f.crashed.Load() }

// crash completes the simulated death. It never returns a usable
// filesystem: either OnCrash exits the process or the FS stays wedged.
func (f *FaultFS) crash() error {
	f.crashed.Store(true)
	if f.OnCrash != nil {
		f.OnCrash()
	}
	return ErrCrashed
}

// eval maps one operation through the registry to an error (nil = let it
// proceed), for the non-mutating ops (open, create): a crash here fires
// before the operation, which reaches the same on-disk states as a crash
// an instant earlier. FPShort is meaningful only for writes and degrades
// to FPError elsewhere.
func (f *FaultFS) eval(op, path string) error {
	if f.crashed.Load() {
		return ErrCrashed
	}
	switch f.FP.Eval(op, path) {
	case chaos.FPNone:
		return nil
	case chaos.FPENOSPC:
		return fmt.Errorf("%s %s: %w", op, path, ErrNoSpace)
	case chaos.FPCrash:
		return f.crash()
	default:
		return fmt.Errorf("%s %s: %w", op, path, ErrInjected)
	}
}

// do wraps a mutating operation: a crash failpoint completes the
// operation first — the post-op crash window, the interesting instant
// for rename-based atomicity and fsync durability arguments — and then
// kills the process or wedges the filesystem.
func (f *FaultFS) do(op, path string, fn func() error) error {
	if f.crashed.Load() {
		return ErrCrashed
	}
	switch f.FP.Eval(op, path) {
	case chaos.FPNone:
		return fn()
	case chaos.FPENOSPC:
		return fmt.Errorf("%s %s: %w", op, path, ErrNoSpace)
	case chaos.FPCrash:
		fn() // the operation lands, then the process dies
		return f.crash()
	default:
		return fmt.Errorf("%s %s: %w", op, path, ErrInjected)
	}
}

func (f *FaultFS) MkdirAll(path string) error {
	if f.crashed.Load() {
		return ErrCrashed
	}
	return f.Base.MkdirAll(path)
}

func (f *FaultFS) Create(name string) (File, error) {
	if err := f.eval("create", name); err != nil {
		return nil, err
	}
	file, err := f.Base.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, fs: f}, nil
}

func (f *FaultFS) CreateTemp(dir, pattern string) (File, error) {
	if err := f.eval("create", dir); err != nil {
		return nil, err
	}
	file, err := f.Base.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, fs: f}, nil
}

func (f *FaultFS) Open(name string) (File, error) {
	if err := f.eval("open", name); err != nil {
		return nil, err
	}
	file, err := f.Base.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, fs: f}, nil
}

func (f *FaultFS) OpenAppend(name string) (File, error) {
	if err := f.eval("open", name); err != nil {
		return nil, err
	}
	file, err := f.Base.OpenAppend(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, fs: f}, nil
}

func (f *FaultFS) ReadFile(name string) ([]byte, error) {
	if err := f.eval("open", name); err != nil {
		return nil, err
	}
	return f.Base.ReadFile(name)
}

func (f *FaultFS) WriteFile(name string, data []byte) error {
	if f.crashed.Load() {
		return ErrCrashed
	}
	switch f.FP.Eval("write", name) {
	case chaos.FPNone:
		return f.Base.WriteFile(name, data)
	case chaos.FPENOSPC:
		return fmt.Errorf("write %s: %w", name, ErrNoSpace)
	case chaos.FPShort:
		f.Base.WriteFile(name, data[:len(data)/2]) // the torn half lands
		return fmt.Errorf("write %s: %w", name, ErrInjected)
	case chaos.FPCrash:
		f.Base.WriteFile(name, data) // the write lands, then the process dies
		return f.crash()
	default:
		return fmt.Errorf("write %s: %w", name, ErrInjected)
	}
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	return f.do("rename", newpath, func() error { return f.Base.Rename(oldpath, newpath) })
}

func (f *FaultFS) Remove(name string) error {
	return f.do("remove", name, func() error { return f.Base.Remove(name) })
}

func (f *FaultFS) Truncate(name string, size int64) error {
	return f.do("truncate", name, func() error { return f.Base.Truncate(name, size) })
}

func (f *FaultFS) Stat(name string) (fs.FileInfo, error) {
	if f.crashed.Load() {
		return nil, ErrCrashed
	}
	return f.Base.Stat(name)
}

func (f *FaultFS) ReadDir(name string) ([]fs.DirEntry, error) {
	if f.crashed.Load() {
		return nil, ErrCrashed
	}
	return f.Base.ReadDir(name)
}

// faultFile threads the registry through a file handle's writes and
// syncs, keyed by the file's own name.
type faultFile struct {
	File
	fs *FaultFS
}

func (ff *faultFile) Write(p []byte) (int, error) {
	if ff.fs.crashed.Load() {
		return 0, ErrCrashed
	}
	switch ff.fs.FP.Eval("write", ff.Name()) {
	case chaos.FPNone:
		return ff.File.Write(p)
	case chaos.FPENOSPC:
		return 0, fmt.Errorf("write %s: %w", ff.Name(), ErrNoSpace)
	case chaos.FPShort:
		n, _ := ff.File.Write(p[:len(p)/2]) // the torn half lands
		return n, fmt.Errorf("write %s: %w", ff.Name(), ErrInjected)
	case chaos.FPCrash:
		ff.File.Write(p) // the write lands, then the process dies
		return len(p), ff.fs.crash()
	default:
		return 0, fmt.Errorf("write %s: %w", ff.Name(), ErrInjected)
	}
}

func (ff *faultFile) Sync() error {
	return ff.fs.do("sync", ff.Name(), ff.File.Sync)
}

func (ff *faultFile) Close() error {
	// Close always reaches the base handle: a wedged FS must not leak
	// file descriptors out of the test process.
	return ff.File.Close()
}

var _ FS = (*FaultFS)(nil)
