package vfs

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/chaos"
)

func TestOSRoundTrip(t *testing.T) {
	dir := t.TempDir()
	sub := filepath.Join(dir, "a", "b")
	if err := OS.MkdirAll(sub); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(sub, "f.txt")
	if err := OS.WriteFile(path, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	b, err := OS.ReadFile(path)
	if err != nil || string(b) != "hello" {
		t.Fatalf("ReadFile = %q, %v", b, err)
	}

	f, err := OS.OpenAppend(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte(" world")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if b, _ = OS.ReadFile(path); string(b) != "hello world" {
		t.Fatalf("after append: %q", b)
	}

	if err := OS.Truncate(path, 5); err != nil {
		t.Fatal(err)
	}
	if b, _ = OS.ReadFile(path); string(b) != "hello" {
		t.Fatalf("after truncate: %q", b)
	}

	tmp, err := OS.CreateTemp(dir, "t-*.tmp")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tmp.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	tmp.Close()
	dst := filepath.Join(dir, "renamed")
	if err := OS.Rename(tmp.Name(), dst); err != nil {
		t.Fatal(err)
	}
	if _, err := OS.Stat(dst); err != nil {
		t.Fatal(err)
	}
	ents, err := OS.ReadDir(dir)
	if err != nil || len(ents) == 0 {
		t.Fatalf("ReadDir = %d entries, %v", len(ents), err)
	}
	if err := OS.Remove(dst); err != nil {
		t.Fatal(err)
	}
	if _, err := OS.Stat(dst); err == nil {
		t.Fatal("Stat after Remove succeeded")
	}

	rf, err := OS.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(rf)
	rf.Close()
	if err != nil || string(got) != "hello" {
		t.Fatalf("Open+ReadAll = %q, %v", got, err)
	}
}

func mustFP(t *testing.T, spec string) *chaos.Failpoints {
	t.Helper()
	fp, err := chaos.ParseFailpoints(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	return fp
}

func TestFaultFSInjectsErrors(t *testing.T) {
	dir := t.TempDir()
	ffs := &FaultFS{Base: OS, FP: mustFP(t, "write=enospc@1;sync=error@1")}
	path := filepath.Join(dir, "f")
	if err := ffs.WriteFile(path, []byte("x")); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("WriteFile = %v, want ErrNoSpace", err)
	}
	if _, err := os.Stat(path); err == nil {
		t.Fatal("ENOSPC write still created the file")
	}
	f, err := ffs.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("Sync = %v, want ErrInjected", err)
	}
	f.Close()
}

func TestFaultFSShortWriteLeavesTornHalf(t *testing.T) {
	dir := t.TempDir()
	ffs := &FaultFS{Base: OS, FP: mustFP(t, "write=short@1")}
	path := filepath.Join(dir, "f")
	err := ffs.WriteFile(path, []byte("0123456789"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("WriteFile = %v, want ErrInjected", err)
	}
	b, rerr := os.ReadFile(path)
	if rerr != nil {
		t.Fatalf("torn file missing: %v", rerr)
	}
	if string(b) != "01234" {
		t.Fatalf("torn content = %q, want the first half", b)
	}
}

func TestFaultFSCrashWedgesAfterWriteLands(t *testing.T) {
	dir := t.TempDir()
	ffs := &FaultFS{Base: OS, FP: mustFP(t, "write=crash@2")}
	a, b := filepath.Join(dir, "a"), filepath.Join(dir, "b")
	if err := ffs.WriteFile(a, []byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := ffs.WriteFile(b, []byte("second")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("crash write = %v, want ErrCrashed", err)
	}
	if !ffs.Crashed() {
		t.Fatal("Crashed() = false after a crash failpoint")
	}
	// Post-write crash window: the triggering write itself is durable.
	if got, _ := os.ReadFile(b); string(got) != "second" {
		t.Fatalf("crash write did not land: %q", got)
	}
	// Everything after the crash is wedged — powercut semantics.
	if err := ffs.WriteFile(a, []byte("later")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash WriteFile = %v, want ErrCrashed", err)
	}
	if _, err := ffs.ReadFile(a); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash ReadFile = %v, want ErrCrashed", err)
	}
	if _, err := ffs.Open(a); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash Open = %v, want ErrCrashed", err)
	}
	if err := ffs.MkdirAll(filepath.Join(dir, "x")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash MkdirAll = %v, want ErrCrashed", err)
	}
	// But the bytes written before the crash survive on the base FS.
	if got, _ := os.ReadFile(a); string(got) != "first" {
		t.Fatalf("pre-crash bytes lost: %q", got)
	}
}

func TestFaultFSOnCrashHook(t *testing.T) {
	dir := t.TempDir()
	called := 0
	ffs := &FaultFS{Base: OS, FP: mustFP(t, "sync:wal=crash@1"), OnCrash: func() { called++ }}
	f, err := ffs.Create(filepath.Join(dir, "wal"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("rec")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("Sync = %v, want ErrCrashed", err)
	}
	f.Close()
	if called != 1 {
		t.Fatalf("OnCrash called %d times, want 1", called)
	}
}

func TestFaultFSFileWritesKeyedByName(t *testing.T) {
	dir := t.TempDir()
	ffs := &FaultFS{Base: OS, FP: mustFP(t, "write:target=short@1")}
	other, err := ffs.Create(filepath.Join(dir, "other"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := other.Write([]byte("unfiltered")); err != nil {
		t.Fatalf("non-matching file write = %v", err)
	}
	other.Close()
	tgt, err := ffs.Create(filepath.Join(dir, "target"))
	if err != nil {
		t.Fatal(err)
	}
	n, err := tgt.Write([]byte("0123456789"))
	if !errors.Is(err, ErrInjected) || n != 5 {
		t.Fatalf("filtered write = (%d, %v), want (5, ErrInjected)", n, err)
	}
	tgt.Close()
}
