package staticcheck

import (
	"fmt"

	"repro/internal/anchor"
	"repro/internal/prog"
)

// checkCoverage is check (c): total coverage of the atomic blocks'
// access sites. Every load/store site of every function reachable from
// an atomic block's root must (1) have a row in the block's unified
// table, (2) be covered by the block's DSA universe, and (3) resolve to
// an anchor — either itself or its pioneer. A site whose DSNode has
// zero anchors would execute with no advisory lock ever staggering its
// structure's conflicts, silently losing the mechanism of the paper.
func checkCoverage(c *anchor.Compiled) []Violation {
	var out []Violation
	for _, ab := range c.Mod.Atomics {
		u := c.Unified[ab]
		if u == nil {
			continue // already reported by checkScope
		}
		for _, f := range prog.ReachableFuncs(ab.Root) {
			for _, s := range f.Sites() {
				e := u.EntryForSite(s.ID)
				if e == nil {
					out = append(out, Violation{Check: CheckCoverage, AB: ab.ID, Site: s.ID,
						Msg: fmt.Sprintf("site (%s) reachable from atomic block %q has no unified-table row", s, ab.Name)})
					continue
				}
				if !u.Graph.Covers(s) {
					out = append(out, Violation{Check: CheckCoverage, AB: ab.ID, Site: s.ID,
						Msg: fmt.Sprintf("site (%s) is outside the DSA universe of atomic block %q", s, ab.Name)})
				}
				if u.AnchorFor(e) == nil {
					out = append(out, Violation{Check: CheckCoverage, AB: ab.ID, Site: s.ID,
						Msg: fmt.Sprintf("site (%s) maps to DSNode %s with zero anchors: no advisory lock covers it", s, e.Node.Label())})
				}
			}
		}
	}
	return out
}
