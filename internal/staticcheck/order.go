package staticcheck

import (
	"fmt"
	"sort"

	"repro/internal/anchor"
	"repro/internal/prog"
)

// checkLockOrder is check (b): a consistent global advisory-lock
// acquisition order must exist across all atomic blocks. Lock classes
// are DSNodes in each atomic block's unified universe, identified
// across blocks through shared sites (two blocks that reach the same
// static load/store necessarily lock the same structure there).
//
// The runtime holds advisory locks until commit/abort and re-acquiring
// a held lock is a no-op, so the deadlock-relevant relation is the
// FIRST-acquisition order: class A is acquired-before class B in a
// block when an execution still holds A's lock at the point it first
// locks B. Statically, an edge A -> B needs a B occurrence oB that (1)
// no other B occurrence is forced before on all paths — oB can be B's
// first acquisition — and (2) some A occurrence must-precede, so A is
// provably held there. Must-precede is dominance through the inlined
// call chains; path-correlated orderings below dominance granularity
// are deliberately not edges, because the path-insensitive IR would
// turn impossible paths (e.g. a B+ tree whose height-0 bypass never
// touches inner nodes) into false cycles. If the resulting directed
// graph over lock classes has a cycle, two transactions can wait on
// each other's advisory locks; acyclicity means a topological order
// exists and the locks are deadlock-free by construction, independent
// of the runtime's LockTimeout escape hatch (Section 3.4 of the paper).
func checkLockOrder(c *anchor.Compiled) []Violation {
	// Global lock classes: union-find over (atomic block, DSNode id)
	// pairs, unified whenever the same site appears in two blocks.
	uf := newUnionFind()
	siteClass := make(map[uint32]string) // site ID -> class key of first AB seen
	classLabel := make(map[string]string)
	for _, ab := range c.Mod.Atomics {
		u := c.Unified[ab]
		if u == nil {
			continue
		}
		for _, e := range u.Entries {
			key := fmt.Sprintf("ab%d/ds%d", ab.ID, e.Node.ID())
			if _, ok := classLabel[key]; !ok {
				classLabel[key] = e.Node.Label()
			}
			if prev, ok := siteClass[e.Site.ID]; ok {
				uf.union(prev, key)
			} else {
				siteClass[e.Site.ID] = key
			}
		}
	}

	// Build the acquired-before edge set with one witness per edge.
	edges := make(map[[2]string]edgeT)
	for _, ab := range c.Mod.Atomics {
		u := c.Unified[ab]
		if u == nil {
			continue
		}
		occs := alpOccurrences(c, ab, u)
		class := make([]string, len(occs))
		for i, o := range occs {
			class[i] = uf.find(fmt.Sprintf("ab%d/ds%d", ab.ID, nodeOf(u, o.site).ID()))
		}
		for j, oB := range occs {
			kB := class[j]
			// If another occurrence of the same class is forced before
			// oB, the class's lock is already held here and oB acquires
			// nothing — it cannot witness an ordering.
			held := false
			for m, om := range occs {
				if m != j && class[m] == kB && mustPrecede(om, oB) {
					held = true
					break
				}
			}
			if held {
				continue
			}
			for i, oA := range occs {
				if class[i] == kB || !mustPrecede(oA, oB) {
					continue
				}
				ek := [2]string{class[i], kB}
				if _, dup := edges[ek]; !dup {
					edges[ek] = edgeT{from: class[i], to: kB, ab: ab.ID,
						sa: oA.site.ID, sb: oB.site.ID}
				}
			}
		}
	}

	// Cycle detection: BFS from every class along the edge relation
	// looking for the shortest path back to itself.
	adj := make(map[string][]edgeT)
	keys := make([]string, 0, len(edges))
	for k := range edges {
		keys = append(keys, fmt.Sprintf("%s\x00%s", k[0], k[1]))
	}
	sort.Strings(keys)
	for _, flat := range keys {
		var a, b string
		for i := 0; i < len(flat); i++ {
			if flat[i] == 0 {
				a, b = flat[:i], flat[i+1:]
				break
			}
		}
		e := edges[[2]string{a, b}]
		adj[e.from] = append(adj[e.from], e)
	}
	starts := make([]string, 0, len(adj))
	for k := range adj {
		starts = append(starts, k)
	}
	sort.Strings(starts)
	var best []edgeT
	for _, start := range starts {
		if cyc := shortestCycle(start, adj); cyc != nil && (best == nil || len(cyc) < len(best)) {
			best = cyc
		}
	}
	if best == nil {
		return nil
	}
	v := Violation{Check: CheckLockOrder, AB: best[0].ab, Site: best[0].sa,
		Msg: fmt.Sprintf("no global advisory-lock acquisition order exists: %d lock classes form a cycle", len(best))}
	for _, e := range best {
		v.Path = append(v.Path, fmt.Sprintf("%s before %s (ab %d: anchor %d then %d)",
			classDesc(classLabel, e.from), classDesc(classLabel, e.to), e.ab, e.sa, e.sb))
	}
	return []Violation{v}
}

func classDesc(labels map[string]string, key string) string {
	if l, ok := labels[key]; ok {
		return l
	}
	return key
}

func nodeOf(u *anchor.Unified, s *prog.Site) interface{ ID() int } {
	return u.EntryForSite(s.ID).Node
}

// edgeT is one acquired-before edge between lock classes, with its
// witnessing atomic block and anchor pair.
type edgeT struct {
	from, to string
	ab       int
	sa, sb   uint32
}

// occurrence is one inlined appearance of a site in an atomic block's
// call tree: the chain of call instructions leading to its function.
type occurrence struct {
	chain []*prog.Instr
	site  *prog.Site
}

// alpOccurrences enumerates the inlined occurrences of every
// ALP-instrumented anchor of the block.
func alpOccurrences(c *anchor.Compiled, ab *prog.AtomicBlock, u *anchor.Unified) []occurrence {
	var out []occurrence
	var walk func(f *prog.Func, chain []*prog.Instr)
	walk = func(f *prog.Func, chain []*prog.Instr) {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				switch in.Kind {
				case prog.InstrAccess:
					s := in.Site
					e := u.EntryForSite(s.ID)
					if e != nil && int(s.ID) < len(c.IsALP) && c.IsALP[s.ID] {
						out = append(out, occurrence{chain: append([]*prog.Instr(nil), chain...), site: s})
					}
				case prog.InstrCall:
					walk(in.Callee, append(chain, in))
				}
			}
		}
	}
	walk(ab.Root, nil)
	return out
}

// mustPrecede reports whether occurrence o1 executes before o2 on EVERY
// path that reaches o2. At the first differing call-chain frame, o1's
// instruction must dominate o2's (both frames belong to the same
// function because the shared prefix pins the same inlined context);
// deeper frames of o1's chain must be unavoidable within their callee,
// else entering the call does not imply reaching o1.
func mustPrecede(o1, o2 occurrence) bool {
	s1 := append(append([]*prog.Instr(nil), o1.chain...), o1.site.Instr)
	s2 := append(append([]*prog.Instr(nil), o2.chain...), o2.site.Instr)
	i := 0
	for i < len(s1) && i < len(s2) && s1[i] == s2[i] {
		i++
	}
	if i >= len(s1) || i >= len(s2) {
		return false
	}
	x, y := s1[i], s2[i]
	if x.Block.Fn != y.Block.Fn {
		return false
	}
	if !prog.InstrDominates(x, y) {
		return false
	}
	for k := i + 1; k < len(s1); k++ {
		if !alwaysExecutes(s1[k]) {
			return false
		}
	}
	return true
}

// alwaysExecutes reports whether in runs on every invocation of its
// function: its block dominates every sink (no-successor) block, so all
// terminating paths pass through it.
func alwaysExecutes(in *prog.Instr) bool {
	f := in.Block.Fn
	sinks := 0
	for _, b := range f.Blocks {
		if len(b.Succs) != 0 {
			continue
		}
		sinks++
		if !in.Block.Dominates(b) {
			return false
		}
	}
	// A function with no sink block never returns; only its entry block
	// is certain to run.
	return sinks > 0 || in.Block == f.Entry()
}

// unionFind over string keys.
type unionFind struct{ parent map[string]string }

func newUnionFind() *unionFind { return &unionFind{parent: make(map[string]string)} }

func (u *unionFind) find(k string) string {
	p, ok := u.parent[k]
	if !ok || p == k {
		return k
	}
	root := u.find(p)
	u.parent[k] = root
	return root
}

// union merges two classes; the lexicographically smaller root wins so
// class identity is deterministic.
func (u *unionFind) union(a, b string) {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return
	}
	if rb < ra {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
}

// shortestCycle returns the shortest edge path from start back to
// start, or nil.
func shortestCycle(start string, adj map[string][]edgeT) []edgeT {
	type state struct {
		node string
		path []edgeT
	}
	queue := []state{{node: start}}
	visited := map[string]bool{}
	for len(queue) > 0 {
		st := queue[0]
		queue = queue[1:]
		for _, e := range adj[st.node] {
			path := append(append([]edgeT(nil), st.path...), e)
			if e.to == start {
				return path
			}
			if !visited[e.to] {
				visited[e.to] = true
				queue = append(queue, state{node: e.to, path: path})
			}
		}
	}
	return nil
}
