package staticcheck

import (
	"sort"

	"repro/internal/anchor"
)

// Seeded mutations behind `staggersim -inject-underlock` and
// `-inject-overlock`: each plants exactly the defect its check exists to
// catch, so CI can prove the checks fail loudly instead of merely never
// firing (the same demo pattern as workloads.DriftVacationKind for the
// conformance check and -unsafe-early-release for the oracle).
//
// Both search candidates in site-ID order and keep the first mutation
// the corresponding check actually reports — a mutation that happens to
// stay covered (another ALP dominates the site) is rolled back and the
// search continues, so a successful return guarantees a violation.

// InjectUnderLock clears the ALP flag of one advisory-lock site whose
// conflict class is written by some atomic block, leaving at least one
// access path with no armable locking point. Returns the mutated site ID
// and whether an effective candidate existed.
func InjectUnderLock(c *anchor.Compiled) (uint32, bool) {
	mc := BuildMayConflict(c)
	for _, site := range alpSitesByID(c) {
		c.IsALP[site] = false
		if len(checkSufficiency(c, mc)) > 0 {
			return site, true
		}
		c.IsALP[site] = true
	}
	return 0, false
}

// InjectOverLock sets the ALP flag on one access site whose conflict
// class no atomic block ever stores to — a spurious advisory lock that
// serializes provably conflict-free accesses. Returns the mutated site
// ID and whether an effective candidate existed.
func InjectOverLock(c *anchor.Compiled) (uint32, bool) {
	mc := BuildMayConflict(c)
	var candidates []uint32
	for _, root := range mc.Classes() {
		if mc.WrittenByAny(root) {
			continue
		}
		for _, abID := range mc.touchingABs(root) {
			candidates = append(candidates, mc.Sites(root, abID)...)
		}
	}
	sort.Slice(candidates, func(i, j int) bool { return candidates[i] < candidates[j] })
	for _, site := range candidates {
		if int(site) >= len(c.IsALP) || c.IsALP[site] {
			continue
		}
		c.IsALP[site] = true
		if len(checkPrecision(c, mc, nil)) > 0 {
			return site, true
		}
		c.IsALP[site] = false
	}
	return 0, false
}

// alpSitesByID returns the module's ALP-instrumented site IDs in order.
func alpSitesByID(c *anchor.Compiled) []uint32 {
	var out []uint32
	for site, isALP := range c.IsALP {
		if isALP {
			out = append(out, uint32(site))
		}
	}
	return out
}
