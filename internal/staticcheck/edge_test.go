package staticcheck_test

import (
	"testing"

	"repro/internal/anchor"
	"repro/internal/prog"
	"repro/internal/staticcheck"
)

// Edge-case shapes the IR verifier must get right: loop-phi cursor
// anchors (the cursor's pioneer lives outside the loop but dominates
// every iteration) and nested-call cloning (the same callee inlined at
// two depths of one atomic block's call tree).

// loopPhiFixture is the canonical list-walk shape: entry loads the head
// pointer, the loop body loads key/next through a phi-merged cursor.
func loopPhiFixture(t *testing.T) *anchor.Compiled {
	t.Helper()
	mod := prog.NewModule("loopphi")
	f := mod.NewFunc("walk", "listPtr")
	entry, loop, exit := f.Entry(), f.NewBlock("loop"), f.NewBlock("exit")
	entry.To(loop)
	loop.To(loop, exit)
	head, _ := entry.LoadPtr("cur0", f.Param(0), "head")
	cur := f.Phi("cur")
	f.Bind(cur, head)
	loop.Load(cur, "key")
	next, _ := loop.LoadPtr("next", cur, "next")
	f.Bind(cur, next)
	exit.Store(cur, "val")
	mod.Atomic("walk", f)
	mod.MustFinalize()
	return anchor.Compile(mod, anchor.DefaultOptions())
}

// TestLoopPhiCursorAnchors: the loop-body sites all alias the list-cell
// node through the phi; their pioneer must sit in a dominating block
// (entry or the loop header itself), so every check passes and the
// in-loop sites are not themselves all anchors.
func TestLoopPhiCursorAnchors(t *testing.T) {
	c := loopPhiFixture(t)
	if vs := staticcheck.Verify(c); len(vs) != 0 {
		for _, v := range vs {
			t.Errorf("unexpected violation: %s", v)
		}
	}
	ab := c.Mod.Atomics[0]
	u := c.Unified[ab]
	anchors := 0
	for _, e := range u.Entries {
		if e.IsAnchor {
			anchors++
		}
	}
	if anchors == 0 || anchors == len(u.Entries) {
		t.Fatalf("loop-phi table should mix anchors and followers, got %d/%d anchors",
			anchors, len(u.Entries))
	}
}

// nestedCallFixture builds an atomic block whose root calls leaf both
// directly and through a middle function — the callee's sites must be
// present (cloned into one unified universe) either way, with anchors
// whose pioneers dominate through the inlined call chains.
func nestedCallFixture(t *testing.T) *anchor.Compiled {
	t.Helper()
	mod := prog.NewModule("nested")
	leaf := mod.NewFunc("leaf", "p")
	leaf.Entry().Load(leaf.Param(0), "x")
	leaf.Entry().Store(leaf.Param(0), "x")

	mid := mod.NewFunc("mid", "q")
	mid.Entry().Load(mid.Param(0), "hdr")
	mid.Entry().Call(leaf, mid.Param(0))

	root := mod.NewFunc("root", "ptr")
	root.Entry().Call(leaf, root.Param(0))
	root.Entry().Call(mid, root.Param(0))
	mod.Atomic("root", root)
	mod.MustFinalize()
	return anchor.Compile(mod, anchor.DefaultOptions())
}

func TestNestedCallCloningVerifies(t *testing.T) {
	c := nestedCallFixture(t)
	if vs := staticcheck.Verify(c); len(vs) != 0 {
		for _, v := range vs {
			t.Errorf("unexpected violation: %s", v)
		}
	}
	// Every site of every reachable function must have a unified entry —
	// the coverage check asserts this too, but spell it out so a cloning
	// regression points here first.
	ab := c.Mod.Atomics[0]
	u := c.Unified[ab]
	for _, f := range prog.ReachableFuncs(ab.Root) {
		for _, s := range f.Sites() {
			e := u.EntryForSite(s.ID)
			if e == nil {
				t.Fatalf("site %v of %s missing from unified table", s, f.Name)
			}
			if u.AnchorFor(e) == nil {
				t.Fatalf("site %v of %s has no anchor", s, f.Name)
			}
		}
	}
}

// TestNestedCallCloningNaive: the same shapes under naive
// instrumentation (every access an ALP) must also verify — this is the
// configuration where the lock-order check has the most occurrences to
// get wrong.
func TestNestedCallCloningNaive(t *testing.T) {
	for _, build := range []func(*testing.T) *anchor.Compiled{loopPhiFixture, nestedCallFixture} {
		c := build(t)
		opts := anchor.Options{PCBits: 12, Naive: true}
		cn := anchor.Compile(c.Mod, opts)
		if vs := staticcheck.Verify(cn); len(vs) != 0 {
			for _, v := range vs {
				t.Errorf("naive: unexpected violation: %s", v)
			}
		}
	}
}
