package staticcheck_test

import (
	"strings"
	"testing"

	"repro/internal/anchor"
	"repro/internal/prog"
	"repro/internal/staticcheck"
	"repro/internal/workloads"
)

// TestVerifyCleanOnAllWorkloads proves the compiler pass's real output
// upholds invariants (a)-(c) on every benchmark: the verifier is not
// vacuous (it inspects hundreds of table rows) and raises nothing.
func TestVerifyCleanOnAllWorkloads(t *testing.T) {
	for _, name := range workloads.Names() {
		w, err := workloads.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		c := anchor.Compile(w.Mod, anchor.DefaultOptions())
		if vs := staticcheck.Verify(c); len(vs) != 0 {
			for _, v := range vs {
				t.Errorf("%s: %s", name, v)
			}
		}
	}
}

func TestVerifyCleanNaive(t *testing.T) {
	// Naive mode instruments every site; the invariants must still hold.
	for _, name := range workloads.Names() {
		w, err := workloads.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		opts := anchor.DefaultOptions()
		opts.Naive = true
		c := anchor.Compile(w.Mod, opts)
		if vs := staticcheck.Verify(c); len(vs) != 0 {
			t.Errorf("%s (naive): %v", name, vs)
		}
	}
}

// diamond builds a module whose atomic block has a branch: the site in
// the "right" arm and the site in the join block touch the same node.
// The natural compile makes both anchors (neither dominates the other),
// which is valid; tests tamper the exported table rows to fabricate the
// defects the verifier must reject.
func diamond(t *testing.T) (*anchor.Compiled, *prog.AtomicBlock, *prog.Site, *prog.Site) {
	t.Helper()
	m := prog.NewModule("diamond")
	f := m.NewFunc("f", "p")
	entry := f.Entry()
	left := f.NewBlock("left")
	right := f.NewBlock("right")
	join := f.NewBlock("join")
	entry.To(left, right)
	left.To(join)
	right.To(join)
	sR := right.Load(f.Param(0), "x")
	sJ := join.Load(f.Param(0), "x")
	ab := m.Atomic("ab", f)
	m.MustFinalize()
	c := anchor.Compile(m, anchor.DefaultOptions())
	if vs := staticcheck.Verify(c); len(vs) != 0 {
		t.Fatalf("untampered diamond must verify: %v", vs)
	}
	return c, ab, sR, sJ
}

// TestConditionallySkippedAnchorRejected is the satellite fixture: an
// atomic block whose only anchor for a structure sits in one arm of a
// branch, so a path reaches the join-block access with no advisory lock
// acquired. Check (a) must reject it with the skipping path as the
// counterexample.
func TestConditionallySkippedAnchorRejected(t *testing.T) {
	c, ab, sR, sJ := diamond(t)
	u := c.Unified[ab]
	e := u.EntryForSite(sJ.ID)
	e.IsAnchor = false
	e.PioneerID = sR.ID

	vs := staticcheck.Verify(c)
	if len(vs) == 0 {
		t.Fatal("conditionally skipped anchor not rejected")
	}
	v := vs[0]
	if v.Check != staticcheck.CheckScope || v.AB != ab.ID || v.Site != sJ.ID {
		t.Fatalf("wrong diagnostic identity: %s", v)
	}
	// The minimal counterexample must route through the other arm.
	path := strings.Join(v.Path, " -> ")
	if path != "entry -> left -> join" {
		t.Fatalf("counterexample path = %q, want entry -> left -> join", path)
	}
}

func TestPioneerAfterSiteInSameBlock(t *testing.T) {
	m := prog.NewModule("order")
	f := m.NewFunc("f", "p")
	s1 := f.Entry().Load(f.Param(0), "a")
	s2 := f.Entry().Load(f.Param(0), "b")
	ab := m.Atomic("ab", f)
	m.MustFinalize()
	c := anchor.Compile(m, anchor.DefaultOptions())
	u := c.Unified[ab]
	// Invert the legitimate pioneer relation: s1 now claims the LATER
	// site as its pioneer.
	e1 := u.EntryForSite(s1.ID)
	e2 := u.EntryForSite(s2.ID)
	e1.IsAnchor, e1.PioneerID = false, s2.ID
	e2.IsAnchor, e2.PioneerID = true, 0
	found := false
	for _, v := range staticcheck.Verify(c) {
		if v.Check == staticcheck.CheckScope && v.Site == s1.ID &&
			len(v.Path) == 1 && strings.Contains(v.Path[0], "pioneer follows the site") {
			found = true
		}
	}
	if !found {
		t.Fatal("same-block pioneer-after-site not rejected")
	}
	_ = ab
}

func TestMissingPioneerRejected(t *testing.T) {
	c, ab, _, sJ := diamond(t)
	e := c.Unified[ab].EntryForSite(sJ.ID)
	e.IsAnchor = false
	e.PioneerID = 0
	var checks []string
	for _, v := range staticcheck.Verify(c) {
		checks = append(checks, v.Check)
	}
	if !contains(checks, staticcheck.CheckScope) {
		t.Fatalf("missing pioneer must fail anchor-scope, got %v", checks)
	}
	if !contains(checks, staticcheck.CheckCoverage) {
		t.Fatalf("anchor-less site must fail coverage, got %v", checks)
	}
}

func TestSelfParentRejected(t *testing.T) {
	c, ab, sR, _ := diamond(t)
	e := c.Unified[ab].EntryForSite(sR.ID)
	e.ParentID = sR.ID
	vs := staticcheck.Verify(c)
	if len(vs) != 1 || vs[0].Check != staticcheck.CheckScope ||
		!strings.Contains(vs[0].Msg, "own parent") {
		t.Fatalf("self-parent not rejected: %v", vs)
	}
}

// TestLockOrderCycleRejected builds two atomic blocks that acquire two
// advisory locks in opposite orders through shared callees — the classic
// deadlock shape check (b) exists for.
func TestLockOrderCycleRejected(t *testing.T) {
	m := prog.NewModule("cycle")
	fa := m.NewFunc("touch_a", "p")
	fa.Entry().Load(fa.Param(0), "x")
	fb := m.NewFunc("touch_b", "q")
	fb.Entry().Load(fb.Param(0), "y")

	r1 := m.NewFunc("ab1_root", "a", "b")
	r1.Entry().Call(fa, r1.Param(0))
	r1.Entry().Call(fb, r1.Param(1))
	r2 := m.NewFunc("ab2_root", "a", "b")
	r2.Entry().Call(fb, r2.Param(1))
	r2.Entry().Call(fa, r2.Param(0))
	m.Atomic("ab1", r1)
	m.Atomic("ab2", r2)
	m.MustFinalize()

	c := anchor.Compile(m, anchor.DefaultOptions())
	vs := staticcheck.Verify(c)
	var cyc *staticcheck.Violation
	for i := range vs {
		if vs[i].Check == staticcheck.CheckLockOrder {
			cyc = &vs[i]
		}
	}
	if cyc == nil {
		t.Fatalf("opposite acquisition orders not rejected: %v", vs)
	}
	if len(cyc.Path) != 2 {
		t.Fatalf("want a 2-edge cycle counterexample, got %v", cyc.Path)
	}
}

// TestLockOrderConsistentAccepted is the positive twin: both blocks
// acquire in the same order, so a topological order exists.
func TestLockOrderConsistentAccepted(t *testing.T) {
	m := prog.NewModule("consistent")
	fa := m.NewFunc("touch_a", "p")
	fa.Entry().Load(fa.Param(0), "x")
	fb := m.NewFunc("touch_b", "q")
	fb.Entry().Load(fb.Param(0), "y")
	r1 := m.NewFunc("ab1_root", "a", "b")
	r1.Entry().Call(fa, r1.Param(0))
	r1.Entry().Call(fb, r1.Param(1))
	r2 := m.NewFunc("ab2_root", "a", "b")
	r2.Entry().Call(fa, r2.Param(0))
	r2.Entry().Call(fb, r2.Param(1))
	m.Atomic("ab1", r1)
	m.Atomic("ab2", r2)
	m.MustFinalize()
	c := anchor.Compile(m, anchor.DefaultOptions())
	if vs := staticcheck.Verify(c); len(vs) != 0 {
		t.Fatalf("consistent order wrongly rejected: %v", vs)
	}
}

func TestViolationString(t *testing.T) {
	v := staticcheck.Violation{Check: staticcheck.CheckScope, AB: 2, Site: 7,
		Msg: "boom", Path: []string{"entry", "left"}}
	got := v.String()
	want := "[anchor-scope] ab=2 site=7: boom [counterexample: entry -> left]"
	if got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

func contains(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}
