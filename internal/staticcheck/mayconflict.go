package staticcheck

import (
	"fmt"
	"sort"

	"repro/internal/anchor"
	"repro/internal/dsa"
	"repro/internal/prog"
)

// This file is the static conflict-prediction layer: checks (e) and (f).
//
//	(e) lock-sufficiency — every pair of atomic blocks that MAY conflict
//	    (both reach the same global conflict class, at least one through
//	    a store) must be coverable by a shared advisory lock: on every
//	    path of each block that reaches a conflicting site, an
//	    ALP-instrumented anchor on that class executes first. A failure
//	    means the staggering mechanism has no locking point to arm for
//	    that conflict — its aborts are unpreventable — and is reported
//	    with a minimal counterexample path like the anchor-scope check.
//	(f) lock-precision — an ALP whose conflict class is never stored to
//	    by any atomic block can only serialize provably conflict-free
//	    (read-only) accesses: the advisory lock costs concurrency and
//	    prevents nothing. Flagged unless waived (intentional coarsening).
//
// Both checks consume the may-conflict matrix (BuildMayConflict). The
// matrix is also the static half of the conflict-containment check:
// every dynamically observed conflicting site pair must fall inside it
// (CheckConflictPairs), which is what `staggersim -verify-conflicts`
// proves over all workloads and seeds.
//
// Soundness caveats, also documented in DESIGN.md:
//
//   - Sufficiency is about the INSTRUMENTATION, not the policy: it
//     proves an armable locking point exists on every conflicting path,
//     not that the runtime's activation policy arms it.
//   - Conflict classes are per-atomic-block DSA nodes identified across
//     blocks through shared sites, shared globals, and a field-path
//     closure. Accesses the IR does not model (runtime lock words, NT
//     stores, site-0 accesses) are outside the matrix; the dynamic
//     containment check skips pairs where either side is unattributed.
//   - The matrix is a may-analysis: unification makes it safely coarse
//     (extra pairs), never unsafely narrow — the property the dynamic
//     cross-validation tests empirically.

// Check names for the conflict-prediction layer (see staticcheck.go for
// checks (a)-(d)).
const (
	CheckSufficiency = "lock-sufficiency"
	CheckPrecision   = "lock-precision"
	CheckContainment = "conflict-containment"
)

// MayConflict is the static may-conflict matrix of one compiled module:
// global conflict classes (DSA nodes unified across atomic blocks) with
// per-block access and write sets.
type MayConflict struct {
	mod *prog.Module

	// siteClass maps (atomic block ID, site ID) to the global class root.
	siteClass map[int]map[uint32]string
	// siteExtra maps (atomic block ID, site ID) to secondary class
	// memberships: the degenerate-predecessor rule lets a linking store
	// also hit the owner object its traversal started from.
	siteExtra map[int]map[uint32][]string
	// classSites maps class root -> atomic block ID -> sorted site IDs.
	classSites map[string]map[int][]uint32
	// classWrites maps class root -> atomic block ID -> has a store site.
	classWrites map[string]map[int]bool
	// labels maps class roots to a human-readable description.
	labels map[string]string
	// roots lists every class root in sorted order.
	roots []string
}

// abNode is one per-atomic-block DSA node enrolled in the global class
// union-find.
type abNode struct {
	ab int
	n  *dsa.Node
}

func classKey(ab int, n *dsa.Node) string {
	return fmt.Sprintf("ab%d/ds%d", ab, n.ID())
}

// BuildMayConflict computes the global conflict classes and the per-pair
// may-conflict matrix of a compiled module.
//
// Classes start as (atomic block, DSNode) pairs and are unified four
// ways: two blocks reaching the same static site lock the same structure
// there (shared sites, as the lock-order check already does); each
// module global is one object in every block's universe (shared roots);
// shape hints (prog.Module.Shapes) contribute linkage facts from outside
// the atomic blocks; and a fixpoint closure merges the same-named field
// targets of merged classes, so a structure two blocks reach through
// disjoint code but identical field paths from a shared root still lands
// in one class.
func BuildMayConflict(c *anchor.Compiled) *MayConflict {
	uf := newUnionFind()
	members := make(map[string][]abNode) // find(key) -> enrolled nodes
	nodeLabel := make(map[string]string)

	enroll := func(ab int, n *dsa.Node) string {
		key := classKey(ab, n)
		if _, ok := nodeLabel[key]; !ok {
			nodeLabel[key] = n.Label()
			root := uf.find(key)
			members[root] = append(members[root], abNode{ab: ab, n: n})
		}
		return key
	}
	union := func(a, b string) {
		ra, rb := uf.find(a), uf.find(b)
		if ra == rb {
			return
		}
		uf.union(ra, rb)
		root := uf.find(ra)
		var merged []abNode
		merged = append(merged, members[ra]...)
		merged = append(merged, members[rb]...)
		delete(members, ra)
		delete(members, rb)
		members[root] = merged
	}

	// Seed 1: per-block site nodes, unified across blocks via shared
	// sites (same rule as the lock-order classes).
	siteKey := make(map[uint32]string)
	for _, ab := range c.Mod.Atomics {
		u := c.Unified[ab]
		if u == nil {
			continue
		}
		for _, e := range u.Entries {
			key := enroll(ab.ID, e.Node)
			if prev, ok := siteKey[e.Site.ID]; ok {
				union(prev, key)
			} else {
				siteKey[e.Site.ID] = key
			}
		}
	}
	// Seed 2: module globals are the shared roots — the same global names
	// one object in every atomic block's universe.
	globalKey := make(map[*prog.Value]string)
	for _, g := range c.Mod.Globals {
		prev := ""
		for _, ab := range c.Mod.Atomics {
			u := c.Unified[ab]
			if u == nil {
				continue
			}
			key := enroll(ab.ID, u.Graph.ValueNode(g))
			if prev != "" {
				union(prev, key)
			}
			prev = key
		}
		globalKey[g] = prev
	}
	// Seed 3: shape hints. A shape function's pointer stores declare the
	// steady-state linkage of a structure (tree.headleaf and
	// inner.leafchild hold the same leaves, for example) — facts induced
	// by constructor and re-linking code outside the atomic blocks, which
	// per-block DSA therefore cannot see. Each hint is analyzed in its
	// own universe, anchored to the shared globals, and its nodes join
	// the closure below like any block's; negative pseudo-block IDs keep
	// their keys disjoint from real atomic blocks, and since no site maps
	// to them they never appear in the projected access sets.
	for i, sf := range c.Mod.Shapes {
		sg := dsa.AnalyzeFunc(sf)
		sid := -(i + 1)
		for _, g := range c.Mod.Globals {
			gk := globalKey[g]
			if gk == "" {
				continue
			}
			union(gk, enroll(sid, sg.ValueNode(g)))
		}
	}

	// Closure: members of one class expose field edges in their own
	// universes; same-named targets of class-mates must unify too, or a
	// list reached as root.head in one block and root.head.next in
	// another would split. Iterate to fixpoint; every visit order is
	// sorted so class identity is reproducible.
	for changed := true; changed; {
		changed = false
		rootOrder := make([]string, 0, len(members))
		for r := range members {
			rootOrder = append(rootOrder, r)
		}
		sort.Strings(rootOrder)
		for _, root := range rootOrder {
			ms := members[root]
			if len(ms) < 2 {
				continue
			}
			sort.Slice(ms, func(i, j int) bool {
				if ms[i].ab != ms[j].ab {
					return ms[i].ab < ms[j].ab
				}
				return ms[i].n.ID() < ms[j].n.ID()
			})
			// Pairwise against the first member is enough: unioning
			// a~b and a~c puts b and c in one class, and the fixpoint
			// loop revisits until nothing merges.
			base := ms[0]
			for _, m := range ms[1:] {
				for _, f := range base.n.Fields() {
					tb, tm := base.n.FieldTarget(f), m.n.FieldTarget(f)
					if tb == nil || tm == nil {
						continue
					}
					ka, kb := enroll(base.ab, tb), enroll(m.ab, tm)
					if uf.find(ka) != uf.find(kb) {
						union(ka, kb)
						changed = true
					}
				}
			}
		}
	}

	// Project the classes onto sites: per-class access and write sets.
	mc := &MayConflict{
		mod:         c.Mod,
		siteClass:   make(map[int]map[uint32]string),
		siteExtra:   make(map[int]map[uint32][]string),
		classSites:  make(map[string]map[int][]uint32),
		classWrites: make(map[string]map[int]bool),
		labels:      make(map[string]string),
	}
	addMember := func(ab int, site uint32, root string, isStore bool) {
		if mc.classSites[root] == nil {
			mc.classSites[root] = make(map[int][]uint32)
			mc.classWrites[root] = make(map[int]bool)
		}
		mc.classSites[root][ab] = append(mc.classSites[root][ab], site)
		if isStore {
			mc.classWrites[root][ab] = true
		}
	}
	for _, ab := range c.Mod.Atomics {
		u := c.Unified[ab]
		if u == nil {
			continue
		}
		bySite := make(map[uint32]string)
		mc.siteClass[ab.ID] = bySite
		for _, e := range u.Entries {
			root := uf.find(classKey(ab.ID, e.Node))
			bySite[e.Site.ID] = root
			addMember(ab.ID, e.Site.ID, root, e.Site.IsStore)
			if _, ok := mc.labels[root]; !ok {
				mc.labels[root] = nodeLabel[classKey(ab.ID, e.Node)]
			}
		}
		// Degenerate-predecessor rule: a store through a SELF-ADVANCING
		// cursor (a phi that re-binds a load of its own field, like a
		// list's cur = cur->next) may also write the object the traversal
		// started from — the list header is the "predecessor cell" when
		// inserting or deleting at the head. The IR keeps owner and cells
		// as distinct DSNodes (the in-loop anchor placement depends on
		// it), so the matrix adds a secondary write membership instead of
		// merging the classes. Provenance gates the rule twice over: a
		// store through a fresh-node parameter never hits the structure
		// the node is later linked into, and a pointer loaded exactly
		// once from an owner's field (a B+ tree leaf from
		// inner.leafchild, say) names a genuine child object, never the
		// owner — only a cursor that walks a chain can degenerate to the
		// chain's origin.
		extra := make(map[uint32][]string)
		for _, e := range u.Entries {
			if !e.Site.IsStore || !selfAdvances(e.Site.Ptr) {
				continue
			}
			for _, o := range ownerOrigins(u.Graph, e.Site.Ptr) {
				if o.Same(e.Node) {
					continue
				}
				root := uf.find(classKey(ab.ID, o))
				if root == bySite[e.Site.ID] || hasString(extra[e.Site.ID], root) {
					continue
				}
				extra[e.Site.ID] = append(extra[e.Site.ID], root)
				addMember(ab.ID, e.Site.ID, root, true)
				if _, ok := mc.labels[root]; !ok {
					mc.labels[root] = o.Label()
				}
			}
		}
		for _, roots := range extra {
			sort.Strings(roots)
		}
		mc.siteExtra[ab.ID] = extra
	}
	for root, perAB := range mc.classSites {
		for ab, sites := range perAB {
			sort.Slice(sites, func(i, j int) bool { return sites[i] < sites[j] })
			perAB[ab] = dedupSites(sites)
		}
		mc.roots = append(mc.roots, root)
	}
	sort.Strings(mc.roots)
	return mc
}

// ownerOrigins returns the objects a pointer may have been obtained
// from: for every field load that can produce the value (transitively
// through phis and &p->f derivations), the object the load read. A
// store through such a pointer can target that object itself — the
// degenerate first cell of an intrusive traversal, where "previous
// node" is really the structure header.
func ownerOrigins(g *dsa.Graph, v *prog.Value) []*dsa.Node {
	var out []*dsa.Node
	seen := make(map[*prog.Value]bool)
	var walk func(v *prog.Value)
	walk = func(v *prog.Value) {
		if v == nil || seen[v] {
			return
		}
		seen[v] = true
		switch v.Kind {
		case prog.ValPhi:
			for _, pb := range v.Fn.PhiBinds {
				if pb.Phi == v {
					walk(pb.Val)
				}
			}
		case prog.ValLoad:
			// v = load base->f: the owner is base's target object.
			out = append(out, g.ValueNode(v.Base))
		case prog.ValField:
			walk(v.Base)
		}
	}
	walk(v)
	return out
}

// selfAdvances reports whether v is a self-advancing cursor: its phi
// closure contains a field load whose base is inside the same closure
// (cur = cur->next). Only such a cursor can dynamically point at the
// object its first binding was loaded from — after zero advances, the
// runtime "previous cell" is the traversal's origin.
func selfAdvances(v *prog.Value) bool {
	closure := make(map[*prog.Value]bool)
	var collect func(v *prog.Value)
	collect = func(v *prog.Value) {
		if v == nil || closure[v] {
			return
		}
		closure[v] = true
		switch v.Kind {
		case prog.ValPhi:
			for _, pb := range v.Fn.PhiBinds {
				if pb.Phi == v {
					collect(pb.Val)
				}
			}
		case prog.ValField:
			collect(v.Base)
		}
	}
	collect(v)
	for m := range closure {
		if m.Kind == prog.ValLoad && closure[m.Base] {
			return true
		}
	}
	return false
}

func hasString(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}

func dedupSites(sites []uint32) []uint32 {
	out := sites[:0]
	for i, s := range sites {
		if i == 0 || s != sites[i-1] {
			out = append(out, s)
		}
	}
	return out
}

// Classes returns every global conflict class root, sorted.
func (mc *MayConflict) Classes() []string { return mc.roots }

// ClassLabel returns the human-readable description of a class root.
func (mc *MayConflict) ClassLabel(root string) string {
	if l, ok := mc.labels[root]; ok {
		return l
	}
	return root
}

// SiteClass returns the primary class root of a site within an atomic
// block, or "" when the block's table does not cover the site.
func (mc *MayConflict) SiteClass(abID int, site uint32) string {
	return mc.siteClass[abID][site]
}

// SiteClasses returns every class membership of a site within an atomic
// block: the primary class first, then any secondary memberships from
// the degenerate-predecessor rule.
func (mc *MayConflict) SiteClasses(abID int, site uint32) []string {
	primary, ok := mc.siteClass[abID][site]
	if !ok {
		return nil
	}
	return append([]string{primary}, mc.siteExtra[abID][site]...)
}

// Sites returns the sorted site IDs through which an atomic block
// accesses a class (empty when it does not touch the class).
func (mc *MayConflict) Sites(root string, abID int) []uint32 {
	return mc.classSites[root][abID]
}

// Writes reports whether the atomic block has a store site on the class.
func (mc *MayConflict) Writes(root string, abID int) bool {
	return mc.classWrites[root][abID]
}

// WrittenByAny reports whether any atomic block stores to the class.
func (mc *MayConflict) WrittenByAny(root string) bool {
	for _, w := range mc.classWrites[root] {
		if w {
			return true
		}
	}
	return false
}

// touchingABs returns the sorted atomic block IDs with sites on a class.
func (mc *MayConflict) touchingABs(root string) []int {
	out := make([]int, 0, len(mc.classSites[root]))
	for ab := range mc.classSites[root] {
		out = append(out, ab)
	}
	sort.Ints(out)
	return out
}

// MayConflictPair reports whether atomic blocks a and b (a == b models
// two threads in the same block) can conflict at all: they share a
// class one of them stores to.
func (mc *MayConflict) MayConflictPair(a, b int) bool {
	return len(mc.ConflictClasses(a, b)) > 0
}

// ConflictClasses returns the sorted class roots on which atomic blocks
// a and b may conflict: both access the class and at least one of them
// through a store.
func (mc *MayConflict) ConflictClasses(a, b int) []string {
	var out []string
	for _, root := range mc.roots {
		sa, sb := mc.classSites[root][a], mc.classSites[root][b]
		if len(sa) == 0 || len(sb) == 0 {
			continue
		}
		if mc.classWrites[root][a] || mc.classWrites[root][b] {
			out = append(out, root)
		}
	}
	return out
}

// Contains reports whether a dynamically observed conflicting site pair
// falls inside the matrix: the sites share a global class membership and
// at least one of the two blocks statically stores to that class. The
// second return value explains a false result.
func (mc *MayConflict) Contains(ab1 int, s1 uint32, ab2 int, s2 uint32) (bool, string) {
	cs1 := mc.SiteClasses(ab1, s1)
	if cs1 == nil {
		return false, fmt.Sprintf("site %d has no class in atomic block %d", s1, ab1)
	}
	cs2 := mc.SiteClasses(ab2, s2)
	if cs2 == nil {
		return false, fmt.Sprintf("site %d has no class in atomic block %d", s2, ab2)
	}
	shared := false
	for _, c1 := range cs1 {
		if !hasString(cs2, c1) {
			continue
		}
		shared = true
		if mc.classWrites[c1][ab1] || mc.classWrites[c1][ab2] {
			return true, ""
		}
	}
	if !shared {
		return false, fmt.Sprintf("sites resolve to distinct classes %s and %s — the class unification missed an alias",
			mc.ClassLabel(cs1[0]), mc.ClassLabel(cs2[0]))
	}
	return false, fmt.Sprintf("class %s is read-only in both blocks — the write-set inference missed a store",
		mc.ClassLabel(cs1[0]))
}

// checkSufficiency is check (e). For every atomic block and every class
// it touches that some block (possibly itself) stores to, every
// occurrence of every site on that class must execute an
// ALP-instrumented anchor of the same class first — the site itself, or
// an ALP occurrence that must-precede it on all paths. Violations carry
// the witnessing writer block and a minimal counterexample path.
func checkSufficiency(c *anchor.Compiled, mc *MayConflict) []Violation {
	var out []Violation
	for _, ab := range c.Mod.Atomics {
		u := c.Unified[ab]
		if u == nil {
			continue
		}
		occs := accessOccurrences(ab)
		// Group this block's ALP occurrences by class (every membership:
		// an advisory lock on a class staggers all of that class's
		// conflicts, whichever membership put the site there).
		alpByClass := make(map[string][]occurrence)
		for _, o := range occs {
			if int(o.site.ID) < len(c.IsALP) && c.IsALP[o.site.ID] {
				for _, root := range mc.SiteClasses(ab.ID, o.site.ID) {
					alpByClass[root] = append(alpByClass[root], o)
				}
			}
		}
		reported := make(map[uint32]bool) // one violation per site
		for _, o := range occs {
			for _, root := range mc.SiteClasses(ab.ID, o.site.ID) {
				if reported[o.site.ID] {
					break
				}
				writer := conflictWitness(mc, root, ab.ID)
				if writer == 0 {
					continue // class never stored to: no conflict to prevent
				}
				if int(o.site.ID) < len(c.IsALP) && c.IsALP[o.site.ID] {
					continue // the site's own ALP covers it
				}
				covered := false
				var nearest *occurrence
				for i, a := range alpByClass[root] {
					if mustPrecede(a, o) {
						covered = true
						break
					}
					if nearest == nil {
						nearest = &alpByClass[root][i]
					}
				}
				if covered {
					continue
				}
				reported[o.site.ID] = true
				v := Violation{Check: CheckSufficiency, AB: ab.ID, Site: o.site.ID,
					Msg: fmt.Sprintf("site (%s) may conflict on class %s (stored to by atomic block %d) but no ALP on that class is on all paths to it: the advisory lock cannot stagger this conflict",
						o.site, mc.ClassLabel(root), writer),
					Path: coverCounterexample(nearest, o)}
				out = append(out, v)
			}
		}
	}
	return out
}

// conflictWitness returns the lowest atomic block ID that stores to the
// class and pairs with abID (any writer conflicts with any toucher), or
// 0 when the class is never written.
func conflictWitness(mc *MayConflict, root string, abID int) int {
	if mc.classWrites[root][abID] {
		return abID
	}
	for _, ab := range mc.touchingABs(root) {
		if mc.classWrites[root][ab] {
			return ab
		}
	}
	return 0
}

// accessOccurrences enumerates every inlined occurrence of every access
// site in the atomic block's call tree (the ALP-only variant is
// alpOccurrences in order.go).
func accessOccurrences(ab *prog.AtomicBlock) []occurrence {
	var out []occurrence
	var walk func(f *prog.Func, chain []*prog.Instr)
	walk = func(f *prog.Func, chain []*prog.Instr) {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				switch in.Kind {
				case prog.InstrAccess:
					out = append(out, occurrence{chain: append([]*prog.Instr(nil), chain...), site: in.Site})
				case prog.InstrCall:
					walk(in.Callee, append(chain, in))
				}
			}
		}
	}
	walk(ab.Root, nil)
	return out
}

// coverCounterexample builds the minimal counterexample path for a
// sufficiency failure: an execution that reaches the site with no
// same-class ALP executed. With no candidate ALP at all, that is any
// shortest path to the site; with a candidate, it is a shortest path
// that avoids the candidate's block (the dominance-failure witness the
// anchor-scope check also produces).
func coverCounterexample(nearest *occurrence, o occurrence) []string {
	var path []string
	for _, call := range o.chain {
		path = append(path, fmt.Sprintf("%s: call %s", call.Block.Name, call.Callee.Name))
	}
	target := o.site.Instr.Block
	fn := o.site.Fn
	if nearest != nil && nearest.site.Fn == fn {
		if p := pathAvoiding(fn, nearest.site.Instr.Block, target); p != nil {
			return append(path, p...)
		}
	}
	return append(path, shortestPathTo(fn, target)...)
}

// shortestPathTo returns the block names of a shortest CFG path from
// f's entry to target.
func shortestPathTo(f *prog.Func, target *prog.Block) []string {
	prev := map[*prog.Block]*prog.Block{f.Entry(): nil}
	queue := []*prog.Block{f.Entry()}
	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		if b == target {
			var names []string
			for x := target; x != nil; x = prev[x] {
				names = append(names, x.Name)
			}
			for i, j := 0, len(names)-1; i < j; i, j = i+1, j-1 {
				names[i], names[j] = names[j], names[i]
			}
			return names
		}
		for _, s := range b.Succs {
			if _, seen := prev[s]; !seen {
				prev[s] = b
				queue = append(queue, s)
			}
		}
	}
	return nil
}

// checkPrecision is check (f): every ALP anchor whose class is never
// stored to by any atomic block is flagged — its advisory lock can only
// serialize read-only accesses, which HTM runs conflict-free anyway.
// Waivers (site ID -> reason) absorb intentional coarsening; a waiver
// matching no finding is itself reported so the waiver set cannot rot.
func checkPrecision(c *anchor.Compiled, mc *MayConflict, waivers map[uint32]string) []Violation {
	var out []Violation
	used := make(map[uint32]bool)
	for _, root := range mc.roots {
		if mc.WrittenByAny(root) {
			continue
		}
		for _, abID := range mc.touchingABs(root) {
			for _, site := range mc.classSites[root][abID] {
				if int(site) >= len(c.IsALP) || !c.IsALP[site] {
					continue
				}
				if _, ok := waivers[site]; ok {
					used[site] = true
					continue
				}
				sv := c.Mod.SiteByID[site]
				out = append(out, Violation{Check: CheckPrecision, AB: abID, Site: site,
					Msg: fmt.Sprintf("ALP at site (%s) locks class %s which no atomic block ever stores to: the lock serializes atomic blocks %v with provably conflict-free access sets",
						sv, mc.ClassLabel(root), mc.touchingABs(root))})
			}
		}
	}
	stale := make([]uint32, 0, len(waivers))
	for site := range waivers {
		if !used[site] {
			stale = append(stale, site)
		}
	}
	sort.Slice(stale, func(i, j int) bool { return stale[i] < stale[j] })
	for _, site := range stale {
		out = append(out, Violation{Check: CheckPrecision, Site: site,
			Msg: fmt.Sprintf("stale precision waiver (%q): site %d is not a spurious lock — remove the waiver", waivers[site], site)})
	}
	return out
}

// VerifyConflicts runs the conflict-prediction checks (e) and (f) over
// one compiled module: lock sufficiency for every may-conflicting pair,
// and lock precision against the waiver set (site ID -> reason).
// Violations come back in deterministic order; the matrix is returned
// for rendering and for the dynamic containment check.
func VerifyConflicts(c *anchor.Compiled, waivers map[uint32]string) (*MayConflict, []Violation) {
	mc := BuildMayConflict(c)
	var out []Violation
	out = append(out, checkSufficiency(c, mc)...)
	out = append(out, checkPrecision(c, mc, waivers)...)
	return mc, out
}

// DynPair is one dynamically observed conflicting site pair: the victim
// block and its first access to the conflicting line, and the killer
// block and the access that aborted it. It mirrors the runtime's
// conflict-pair histogram key without importing the runtime.
type DynPair struct {
	VictimAB   int
	VictimSite uint32
	KillerAB   int
	KillerSite uint32
}

// CheckConflictPairs is the static/dynamic containment check behind
// `staggersim -verify-conflicts`: every dynamically observed
// conflicting site pair must fall inside the static may-conflict
// matrix. A violation means the matrix is unsound for this module —
// the class unification or write-set inference missed something the
// hardware then observed for real.
func CheckConflictPairs(mc *MayConflict, pairs []DynPair) []Violation {
	sorted := append([]DynPair(nil), pairs...)
	sort.Slice(sorted, func(i, j int) bool {
		a, b := sorted[i], sorted[j]
		if a.VictimAB != b.VictimAB {
			return a.VictimAB < b.VictimAB
		}
		if a.VictimSite != b.VictimSite {
			return a.VictimSite < b.VictimSite
		}
		if a.KillerAB != b.KillerAB {
			return a.KillerAB < b.KillerAB
		}
		return a.KillerSite < b.KillerSite
	})
	var out []Violation
	seen := make(map[DynPair]bool)
	for _, p := range sorted {
		if seen[p] {
			continue
		}
		seen[p] = true
		ok, why := mc.Contains(p.VictimAB, p.VictimSite, p.KillerAB, p.KillerSite)
		if ok {
			continue
		}
		out = append(out, Violation{Check: CheckContainment, AB: p.VictimAB, Site: p.VictimSite,
			Msg: fmt.Sprintf("observed conflict (victim ab=%d site=%d, killer ab=%d site=%d) is outside the static may-conflict matrix: %s",
				p.VictimAB, p.VictimSite, p.KillerAB, p.KillerSite, why)})
	}
	return out
}
