package staticcheck_test

import (
	"strings"
	"testing"

	"repro/internal/anchor"
	"repro/internal/harness"
	"repro/internal/stagger"
	"repro/internal/staticcheck"
	"repro/internal/workloads"
)

func compileFor(t *testing.T, w *workloads.Workload) *anchor.Compiled {
	t.Helper()
	return anchor.Compile(w.Mod, anchor.DefaultOptions())
}

// run executes one small harness run with a conformance recorder
// installed and returns the recorder and compiled module.
func run(t *testing.T, bench string, ops int) (*staticcheck.Conformance, *harness.Result) {
	t.Helper()
	rec := staticcheck.NewConformance()
	res, err := harness.Run(harness.RunConfig{
		Benchmark:    bench,
		Mode:         stagger.ModeStaggeredHW,
		Threads:      2,
		Seed:         7,
		TotalOps:     ops,
		SiteRecorder: rec,
	})
	if err != nil {
		t.Fatalf("%s: %v", bench, err)
	}
	if res.VerifyErr != nil {
		t.Fatalf("%s: workload verify: %v", bench, res.VerifyErr)
	}
	return rec, res
}

// TestConformanceCleanOnAllWorkloads is the dynamic half of check (d):
// every benchmark's Go body attributes accesses only to sites the IR
// declares, with matching kinds and table coverage.
func TestConformanceCleanOnAllWorkloads(t *testing.T) {
	for _, name := range workloads.Names() {
		rec, res := run(t, name, 120)
		if rec.Observations() == 0 {
			t.Errorf("%s: conformance recorder saw no accesses", name)
			continue
		}
		if vs := rec.Check(res.Compiled); len(vs) != 0 {
			for _, v := range vs {
				t.Errorf("%s: %s", name, v)
			}
		}
	}
}

// TestConformanceCatchesDriftMutation flips the seeded IR-drift switch:
// vacation misattributes one load to a store site of the tree-update
// function, and the checker must report exactly that kind mismatch with
// block- and site-level identity.
func TestConformanceCatchesDriftMutation(t *testing.T) {
	workloads.DriftVacationKind = true
	defer func() { workloads.DriftVacationKind = false }()

	rec, res := run(t, "vacation", 120)
	vs := rec.Check(res.Compiled)
	if len(vs) == 0 {
		t.Fatal("conformance checker missed the seeded IR-drift mutation")
	}
	ab := res.Compiled.Mod.AtomicByName("make_reservation")
	for _, v := range vs {
		if v.Check != staticcheck.CheckConformance {
			t.Fatalf("unexpected check %q: %s", v.Check, v)
		}
		if v.AB != ab.ID {
			t.Fatalf("drift attributed to block %d, want %d (make_reservation): %s", v.AB, ab.ID, v)
		}
		if v.Site == 0 || !res.Compiled.Mod.SiteByID[v.Site].IsStore {
			t.Fatalf("drift must name the store site: %s", v)
		}
		if !strings.Contains(v.Msg, "dynamic load executed at a site the IR declares a store") {
			t.Fatalf("wrong diagnostic: %s", v)
		}
	}
}

// TestConformanceRejectsForeignSite feeds the recorder a site pointer
// the module does not own (simulating a stale pointer after an IR
// rebuild) and a nil site.
func TestConformanceRejectsForeignSite(t *testing.T) {
	w, err := workloads.Get("vacation")
	if err != nil {
		t.Fatal(err)
	}
	other, err := workloads.Get("vacation") // fresh module, disjoint sites
	if err != nil {
		t.Fatal(err)
	}
	comp := compileFor(t, w)
	rec := staticcheck.NewConformance()
	ab := w.Mod.Atomics[0]
	rec.RecordAccess(ab, other.Mod.SiteByID[1], false)
	rec.RecordAccess(ab, nil, true)
	vs := rec.Check(comp)
	if len(vs) != 2 {
		t.Fatalf("want 2 violations (foreign site, nil site), got %v", vs)
	}
	if !strings.Contains(vs[0].Msg, "nil site") && !strings.Contains(vs[1].Msg, "nil site") {
		t.Fatalf("nil-site diagnostic missing: %v", vs)
	}
	found := false
	for _, v := range vs {
		if strings.Contains(v.Msg, "IR does not contain") {
			found = true
		}
	}
	if !found {
		t.Fatalf("foreign-site diagnostic missing: %v", vs)
	}
}
