package staticcheck

import (
	"fmt"
	"sort"

	"repro/internal/anchor"
	"repro/internal/prog"
)

// Conformance is check (d): the static/dynamic bridge. Installed as the
// stagger runtime's SiteRecorder, it observes every transactional access
// a workload attributes to a static site, then Check proves each
// observation against the IR: the site must exist in the module (the
// exact *prog.Site the ID resolves to — a stale pointer is IR drift),
// the dynamic access kind must match the site's declared kind, and the
// executed atomic block's unified table and DSA universe must cover the
// site. Because the hand-written IR and the workload Go code are
// maintained separately, this is the check that fails loudly when they
// drift apart.
//
// Conformance is not safe for concurrent use; the simulator serializes
// all cores on one goroutine, so recording from workload bodies is fine.
type Conformance struct {
	seen map[obsKey]*obs
}

type obsKey struct {
	abID    int
	siteID  uint32
	isStore bool
}

type obs struct {
	ab    *prog.AtomicBlock
	site  *prog.Site
	count int
}

// NewConformance returns an empty recorder.
func NewConformance() *Conformance {
	return &Conformance{seen: make(map[obsKey]*obs)}
}

// RecordAccess implements stagger.SiteRecorder.
func (r *Conformance) RecordAccess(ab *prog.AtomicBlock, s *prog.Site, isStore bool) {
	key := obsKey{siteID: siteID(s), isStore: isStore}
	if ab != nil {
		key.abID = ab.ID
	}
	if o := r.seen[key]; o != nil {
		o.count++
		return
	}
	r.seen[key] = &obs{ab: ab, site: s, count: 1}
}

func siteID(s *prog.Site) uint32 {
	if s == nil {
		return 0
	}
	return s.ID
}

// Observations returns how many distinct (atomic block, site, kind)
// triples were recorded.
func (r *Conformance) Observations() int { return len(r.seen) }

// Check validates every recorded observation against the compiled
// module, returning violations in deterministic (block, site, kind)
// order.
func (r *Conformance) Check(c *anchor.Compiled) []Violation {
	keys := make([]obsKey, 0, len(r.seen))
	for k := range r.seen {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.abID != b.abID {
			return a.abID < b.abID
		}
		if a.siteID != b.siteID {
			return a.siteID < b.siteID
		}
		return !a.isStore && b.isStore
	})
	var out []Violation
	for _, k := range keys {
		out = append(out, r.checkObs(c, k, r.seen[k])...)
	}
	return out
}

func (r *Conformance) checkObs(c *anchor.Compiled, k obsKey, o *obs) []Violation {
	kind := "load"
	if k.isStore {
		kind = "store"
	}
	if o.site == nil {
		return []Violation{{Check: CheckConformance, AB: k.abID,
			Msg: fmt.Sprintf("dynamic %s attributed to a nil site (%d times)", kind, o.count)}}
	}
	id := o.site.ID
	if id == 0 || int(id) >= len(c.Mod.SiteByID) || c.Mod.SiteByID[id] != o.site {
		return []Violation{{Check: CheckConformance, AB: k.abID, Site: id,
			Msg: fmt.Sprintf("dynamic %s attributed to a site the IR does not contain (IR drift, %d times)",
				kind, o.count)}}
	}
	var out []Violation
	if o.site.IsStore != k.isStore {
		want := "load"
		if o.site.IsStore {
			want = "store"
		}
		out = append(out, Violation{Check: CheckConformance, AB: k.abID, Site: id,
			Msg: fmt.Sprintf("dynamic %s executed at a site the IR declares a %s (IR drift, %d times)",
				kind, want, o.count)})
	}
	if o.ab == nil {
		out = append(out, Violation{Check: CheckConformance, Site: id,
			Msg: fmt.Sprintf("dynamic %s outside any atomic block", kind)})
		return out
	}
	u := c.Unified[o.ab]
	if u == nil {
		out = append(out, Violation{Check: CheckConformance, AB: k.abID, Site: id,
			Msg: fmt.Sprintf("executed atomic block %q has no unified table", o.ab.Name)})
		return out
	}
	if u.EntryForSite(id) == nil {
		out = append(out, Violation{Check: CheckConformance, AB: k.abID, Site: id,
			Msg: fmt.Sprintf("site (%s) executed inside atomic block %q but absent from its unified table (IR call graph drift)",
				o.site, o.ab.Name)})
	} else if !u.Graph.Covers(o.site) {
		out = append(out, Violation{Check: CheckConformance, AB: k.abID, Site: id,
			Msg: fmt.Sprintf("site (%s) has no DSA node in atomic block %q's universe", o.site, o.ab.Name)})
	}
	return out
}
