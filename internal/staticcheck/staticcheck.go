// Package staticcheck is the IR verification layer in front of the
// dynamic machinery: it re-checks, on the compiler pass's own output,
// the invariants the staggered-transactions runtime silently relies on
// but never validates at run time.
//
// Four checks run per module (the first three are purely static, the
// fourth executes each workload once under the harness):
//
//	(a) anchor-scope   — every non-anchor's pioneer exists, is an anchor
//	                     on the same DSNode, and dominates the site on
//	                     all CFG paths; parents are well-formed; every
//	                     ALP site lies inside at least one atomic block,
//	                     so its advisory lock has a release scope (the
//	                     runtime releases unconditionally at the
//	                     commit/abort hooks of the enclosing block).
//	(b) lock-order     — a consistent global acquisition order exists
//	                     across the ALP anchors of all atomic blocks: the
//	                     may-precede relation over lock classes (DSNodes,
//	                     unified across blocks through shared sites) must
//	                     be acyclic. A topological order implies the
//	                     advisory locks are deadlock-free even without
//	                     the runtime's timeout (Section 3.4).
//	(c) coverage       — no load/store site reachable from an atomic
//	                     block maps to a DSNode with zero anchors, and
//	                     every such site has a row in the block's unified
//	                     table.
//	(d) conformance    — dynamic execution attributes only sites that
//	                     exist in the IR, with matching access kind, and
//	                     that the executed atomic block's table covers
//	                     (see Conformance).
//
// Violations carry block/site IDs and, where a path property failed, a
// minimal counterexample path through the CFG (or the offending lock-
// order cycle).
package staticcheck

import (
	"fmt"
	"strings"

	"repro/internal/anchor"
)

// Check names, used in Violation.Check.
const (
	CheckScope       = "anchor-scope"
	CheckLockOrder   = "lock-order"
	CheckCoverage    = "coverage"
	CheckConformance = "conformance"
)

// Violation is one verification failure, locatable by atomic block and
// site ID, with an optional minimal counterexample path.
type Violation struct {
	// Check is the failed check (CheckScope, CheckLockOrder,
	// CheckCoverage, CheckConformance).
	Check string
	// AB is the atomic block ID (1-based; 0 = module-level).
	AB int
	// Site is the offending static site ID (0 = none in particular).
	Site uint32
	// Msg states the broken invariant.
	Msg string
	// Path is the minimal counterexample: CFG block names for a
	// dominance failure, lock-class descriptions for an order cycle.
	Path []string
}

func (v Violation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "[%s]", v.Check)
	if v.AB != 0 {
		fmt.Fprintf(&b, " ab=%d", v.AB)
	}
	if v.Site != 0 {
		fmt.Fprintf(&b, " site=%d", v.Site)
	}
	b.WriteString(": ")
	b.WriteString(v.Msg)
	if len(v.Path) > 0 {
		fmt.Fprintf(&b, " [counterexample: %s]", strings.Join(v.Path, " -> "))
	}
	return b.String()
}

// Verify runs the three static checks (a)-(c) over one compiled module
// and returns every violation found, in deterministic order. An empty
// result means the anchor tables uphold all three invariants.
func Verify(c *anchor.Compiled) []Violation {
	var out []Violation
	out = append(out, checkScope(c)...)
	out = append(out, checkLockOrder(c)...)
	out = append(out, checkCoverage(c)...)
	return out
}
