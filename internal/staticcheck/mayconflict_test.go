package staticcheck_test

import (
	"strings"
	"testing"

	"repro/internal/anchor"
	"repro/internal/prog"
	"repro/internal/staticcheck"
)

// compileM finalizes the module and runs the anchor pass, the way
// staggersim -verify-conflicts does before building the matrix.
func compileM(t *testing.T, m *prog.Module) *anchor.Compiled {
	t.Helper()
	m.MustFinalize()
	return anchor.Compile(m, anchor.DefaultOptions())
}

// TestMatrixDisjointStructures: two atomic blocks writing two different
// globals through identical field paths must land in distinct classes —
// same-named fields alone (both store ->x) must not alias unrooted
// structures.
func TestMatrixDisjointStructures(t *testing.T) {
	m := prog.NewModule("disjoint")
	gA, gB := m.Global("tableA"), m.Global("tableB")
	f1 := m.NewFunc("wa", "p")
	s1 := f1.Entry().Store(f1.Param(0), "x")
	f2 := m.NewFunc("wb", "p")
	s2 := f2.Entry().Store(f2.Param(0), "x")
	r1 := m.NewFunc("r1")
	r1.Entry().Call(f1, gA)
	m.Atomic("ab1", r1)
	r2 := m.NewFunc("r2")
	r2.Entry().Call(f2, gB)
	m.Atomic("ab2", r2)
	mc := staticcheck.BuildMayConflict(compileM(t, m))

	if mc.MayConflictPair(1, 2) {
		t.Errorf("blocks on disjoint globals may-conflict: classes %v", mc.ConflictClasses(1, 2))
	}
	// Self-pairs still conflict: two threads in one block write one class.
	if !mc.MayConflictPair(1, 1) || !mc.MayConflictPair(2, 2) {
		t.Error("self-pairs of writing blocks must may-conflict")
	}
	if ok, why := mc.Contains(1, s1.ID, 2, s2.ID); ok || !strings.Contains(why, "distinct classes") {
		t.Errorf("Contains(disjoint) = %v, %q", ok, why)
	}
}

// TestMatrixSharedGlobalAliases: the same global bound into two blocks'
// roots is one object — a store in one block conflicts with a load in
// the other even though no static site is shared.
func TestMatrixSharedGlobalAliases(t *testing.T) {
	m := prog.NewModule("aliased")
	g := m.Global("table")
	fw := m.NewFunc("writer", "p")
	sw := fw.Entry().Store(fw.Param(0), "x")
	fr := m.NewFunc("reader", "p")
	sr := fr.Entry().Load(fr.Param(0), "x")
	r1 := m.NewFunc("r1")
	r1.Entry().Call(fw, g)
	m.Atomic("ab1", r1)
	r2 := m.NewFunc("r2")
	r2.Entry().Call(fr, g)
	m.Atomic("ab2", r2)
	mc := staticcheck.BuildMayConflict(compileM(t, m))

	if !mc.MayConflictPair(1, 2) {
		t.Fatal("blocks sharing a written global must may-conflict")
	}
	if ok, why := mc.Contains(2, sr.ID, 1, sw.ID); !ok {
		t.Errorf("Contains(load vs store on shared global) = false: %s", why)
	}
	// Read-only sharing is not a conflict: reader vs reader.
	if ok, why := mc.Contains(2, sr.ID, 2, sr.ID); ok || !strings.Contains(why, "read-only") {
		t.Errorf("Contains(load vs load) = %v, %q", ok, why)
	}
}

// listLike declares a list traversal with a loop-carried cursor
// (cur = cur->next) plus a link store through the cursor and a store to
// a fresh node parameter, mirroring simds.SortedList's insert.
func listLike(m *prog.Module, name string) (fn *prog.Func, link, fresh *prog.Site) {
	f := m.NewFunc(name, "listPtr", "node")
	entry, loop, exit := f.Entry(), f.NewBlock("loop"), f.NewBlock("exit")
	entry.To(loop)
	loop.To(loop, exit)
	head, _ := entry.LoadPtr("cur0", f.Param(0), "head")
	cur := f.Phi("cur")
	f.Bind(cur, head)
	loop.Load(cur, "key")
	next, _ := loop.LoadPtr("next", cur, "next")
	f.Bind(cur, next)
	fresh = exit.Store(f.Param(1), "key")
	link = exit.StorePtr(cur, "next", f.Param(1))
	return f, link, fresh
}

// TestMatrixLoopCarriedClosure: one block reaches the cells through the
// head load only, the other through the full loop-carried cursor. The
// field-path closure must put both cell populations in one class.
func TestMatrixLoopCarriedClosure(t *testing.T) {
	m := prog.NewModule("closure")
	g := m.Global("list")
	// Shallow reader: first cell only.
	fs := m.NewFunc("peek", "listPtr")
	c0, _ := fs.Entry().LoadPtr("c0", fs.Param(0), "head")
	sPeek := fs.Entry().Load(c0, "key")
	// Deep writer: loop-carried cursor.
	fd, link, _ := listLike(m, "list_insert")
	r1 := m.NewFunc("r1")
	r1.Entry().Call(fs, g)
	m.Atomic("ab1", r1)
	r2 := m.NewFunc("r2", "n")
	r2.Entry().Call(fd, g, r2.Param(0))
	m.Atomic("ab2", r2)
	mc := staticcheck.BuildMayConflict(compileM(t, m))

	if ok, why := mc.Contains(1, sPeek.ID, 2, link.ID); !ok {
		t.Errorf("Contains(head cell load vs cursor link store) = false: %s", why)
	}
}

// TestMatrixDegeneratePredecessor: a link store through a SELF-ADVANCING
// cursor gets a secondary write membership in the traversal's origin
// class (the header is the "previous cell" after zero advances), while
// a store to a fresh node parameter gets none, and a pointer loaded
// exactly once from an owner's field (no self-advance) gets none either.
func TestMatrixDegeneratePredecessor(t *testing.T) {
	m := prog.NewModule("degpred")
	g := m.Global("list")
	fd, link, fresh := listLike(m, "list_insert")
	// Tree-ish: leaf loaded once from the owner, stored through, never
	// advanced through itself.
	ft := m.NewFunc("leaf_store", "treePtr")
	lv, _ := ft.Entry().LoadPtr("leaf", ft.Param(0), "leafchild")
	sLeaf := ft.Entry().Store(lv, "key")
	r1 := m.NewFunc("r1", "n")
	r1.Entry().Call(fd, g, r1.Param(0))
	m.Atomic("ab1", r1)
	r2 := m.NewFunc("r2")
	r2.Entry().Call(ft, g)
	m.Atomic("ab2", r2)
	mc := staticcheck.BuildMayConflict(compileM(t, m))

	headerClass := mc.SiteClass(1, headSiteID(t, m, "list_insert"))
	if cs := mc.SiteClasses(1, link.ID); len(cs) != 2 || cs[1] != headerClass {
		t.Errorf("link store memberships = %v, want [cell %s]", cs, headerClass)
	}
	if cs := mc.SiteClasses(1, fresh.ID); len(cs) != 1 {
		t.Errorf("fresh-node store memberships = %v, want primary only", cs)
	}
	if cs := mc.SiteClasses(2, sLeaf.ID); len(cs) != 1 {
		t.Errorf("single-load leaf store memberships = %v, want primary only (no self-advance)", cs)
	}
	// The secondary membership is a WRITE: the header class must count as
	// written even though no site stores through the header pointer.
	if !mc.Writes(headerClass, 1) {
		t.Error("degenerate-predecessor membership did not mark the header class written")
	}
}

// headSiteID finds fn's entry-block head load (the site whose class is
// the traversal's origin object).
func headSiteID(t *testing.T, m *prog.Module, fn string) uint32 {
	t.Helper()
	for _, s := range m.FuncByName(fn).Sites() {
		if s.Field == "head" {
			return s.ID
		}
	}
	t.Fatalf("no head load in %s", fn)
	return 0
}

// TestMatrixShapeHint: without a shape hint, a block reaching leaves via
// tree.headleaf and a block reaching them via tree.root->leafchild stay
// in distinct classes (the aliasing lives in constructor code outside
// the blocks); with the hint, they unify — the tsp containment fix in
// miniature.
func TestMatrixShapeHint(t *testing.T) {
	build := func(hint bool) (*staticcheck.MayConflict, uint32, uint32) {
		m := prog.NewModule("shape")
		g := m.Global("tree")
		fp := m.NewFunc("pop", "treePtr")
		hl, _ := fp.Entry().LoadPtr("head", fp.Param(0), "headleaf")
		sPop := fp.Entry().Store(hl, "n")
		fi := m.NewFunc("push", "treePtr")
		rt, _ := fi.Entry().LoadPtr("root", fi.Param(0), "root")
		lf, _ := fi.Entry().LoadPtr("leaf", rt, "leafchild")
		sPush := fi.Entry().Store(lf, "n")
		r1 := m.NewFunc("r1")
		r1.Entry().Call(fp, g)
		m.Atomic("ab1", r1)
		r2 := m.NewFunc("r2")
		r2.Entry().Call(fi, g)
		m.Atomic("ab2", r2)
		if hint {
			sh := m.NewFunc("tree_shape")
			b := sh.Entry()
			inner := b.Alloc("inner")
			leaf := b.Alloc("leaf")
			b.StorePtr(g, "root", inner)
			b.StorePtr(inner, "leafchild", leaf)
			b.StorePtr(g, "headleaf", leaf)
			m.MarkShape(sh)
		}
		return staticcheck.BuildMayConflict(compileM(t, m)), sPop.ID, sPush.ID
	}

	mc, pop, push := build(false)
	if ok, _ := mc.Contains(1, pop, 2, push); ok {
		t.Fatal("without a shape hint the leaf populations must stay distinct (the hint must be doing the work)")
	}
	mc, pop, push = build(true)
	if ok, why := mc.Contains(1, pop, 2, push); !ok {
		t.Errorf("with the shape hint Contains(headleaf store vs leafchild store) = false: %s", why)
	}
}

// TestVerifyConflictsCleanAndUnderLock: the aliased-global module passes
// sufficiency and precision untouched; clearing one advisory lock via
// InjectUnderLock must produce a sufficiency violation that carries a
// counterexample path.
func TestVerifyConflictsCleanAndUnderLock(t *testing.T) {
	m := prog.NewModule("underlock")
	g := m.Global("list")
	fd, _, _ := listLike(m, "list_insert")
	r1 := m.NewFunc("r1", "n")
	r1.Entry().Call(fd, g, r1.Param(0))
	m.Atomic("ab1", r1)
	c := compileM(t, m)

	if _, vs := staticcheck.VerifyConflicts(c, nil); len(vs) != 0 {
		t.Fatalf("clean module reports violations: %v", vs)
	}
	site, ok := staticcheck.InjectUnderLock(c)
	if !ok {
		t.Fatal("InjectUnderLock found no effective mutation")
	}
	_, vs := staticcheck.VerifyConflicts(c, nil)
	if len(vs) == 0 {
		t.Fatalf("cleared ALP at site %d but sufficiency still passes", site)
	}
	for _, v := range vs {
		if v.Check != staticcheck.CheckSufficiency {
			t.Errorf("unexpected %s violation: %s", v.Check, v.Msg)
		}
		if len(v.Path) == 0 {
			t.Errorf("sufficiency violation without a counterexample path: %s", v.Msg)
		}
	}
}

// TestVerifyConflictsPrecisionAndWaivers: an ALP on a never-written
// class is flagged, a waiver absorbs it, and a waiver matching nothing
// is itself reported as stale.
func TestVerifyConflictsPrecisionAndWaivers(t *testing.T) {
	m := prog.NewModule("overlock")
	g := m.Global("config")
	fr := m.NewFunc("reader", "p")
	sCfg := fr.Entry().Load(fr.Param(0), "dim")
	fr.Entry().Load(fr.Param(0), "scale")
	r1 := m.NewFunc("r1")
	r1.Entry().Call(fr, g)
	m.Atomic("ab1", r1)
	c := compileM(t, m)

	_, vs := staticcheck.VerifyConflicts(c, nil)
	if len(vs) != 1 || vs[0].Check != staticcheck.CheckPrecision || vs[0].Site != sCfg.ID {
		t.Fatalf("want one precision violation at site %d, got %v", sCfg.ID, vs)
	}
	if _, vs := staticcheck.VerifyConflicts(c, map[uint32]string{sCfg.ID: "read-only config block"}); len(vs) != 0 {
		t.Errorf("waiver did not absorb the finding: %v", vs)
	}
	_, vs = staticcheck.VerifyConflicts(c, map[uint32]string{sCfg.ID: "ok", 99: "bogus"})
	if len(vs) != 1 || vs[0].Check != staticcheck.CheckPrecision || !strings.Contains(vs[0].Msg, "stale") {
		t.Errorf("stale waiver not reported: %v", vs)
	}
}

// TestInjectOverLock: the read-only-class module has an uninstrumented
// site for the mutation to promote; the all-written list module has
// none.
func TestInjectOverLock(t *testing.T) {
	m := prog.NewModule("overlock2")
	g := m.Global("config")
	fr := m.NewFunc("reader", "p")
	fr.Entry().Load(fr.Param(0), "dim")
	sNon := fr.Entry().Load(fr.Param(0), "scale") // covered by the dim pioneer: not an ALP
	r1 := m.NewFunc("r1")
	r1.Entry().Call(fr, g)
	m.Atomic("ab1", r1)
	c := compileM(t, m)
	if c.IsALP[sNon.ID] {
		t.Fatal("fixture assumption broken: second header load is already an ALP")
	}
	site, ok := staticcheck.InjectOverLock(c)
	if !ok || site != sNon.ID {
		t.Fatalf("InjectOverLock = (%d, %v), want (%d, true)", site, ok, sNon.ID)
	}
	if _, vs := staticcheck.VerifyConflicts(c, nil); len(vs) == 0 {
		t.Error("injected spurious lock not flagged by precision")
	}

	m2 := prog.NewModule("allwritten")
	g2 := m2.Global("list")
	fd, _, _ := listLike(m2, "list_insert")
	r2 := m2.NewFunc("r2", "n")
	r2.Entry().Call(fd, g2, r2.Param(0))
	m2.Atomic("ab1", r2)
	if site, ok := staticcheck.InjectOverLock(compileM(t, m2)); ok {
		t.Errorf("InjectOverLock found a candidate (site %d) in a module with no read-only class", site)
	}
}

// TestCheckConflictPairs: containment accepts in-matrix pairs, rejects
// unknown sites and distinct classes, and reports each distinct pair
// once regardless of duplicates.
func TestCheckConflictPairs(t *testing.T) {
	m := prog.NewModule("pairs")
	g := m.Global("table")
	fw := m.NewFunc("writer", "p")
	sw := fw.Entry().Store(fw.Param(0), "x")
	fr := m.NewFunc("reader", "p")
	sr := fr.Entry().Load(fr.Param(0), "x")
	r1 := m.NewFunc("r1")
	r1.Entry().Call(fw, g)
	m.Atomic("ab1", r1)
	r2 := m.NewFunc("r2")
	r2.Entry().Call(fr, g)
	m.Atomic("ab2", r2)
	mc := staticcheck.BuildMayConflict(compileM(t, m))

	good := staticcheck.DynPair{VictimAB: 2, VictimSite: sr.ID, KillerAB: 1, KillerSite: sw.ID}
	if vs := staticcheck.CheckConflictPairs(mc, []staticcheck.DynPair{good, good}); len(vs) != 0 {
		t.Errorf("in-matrix pair rejected: %v", vs)
	}
	bad := staticcheck.DynPair{VictimAB: 1, VictimSite: 999, KillerAB: 1, KillerSite: sw.ID}
	vs := staticcheck.CheckConflictPairs(mc, []staticcheck.DynPair{bad, bad, bad})
	if len(vs) != 1 || vs[0].Check != staticcheck.CheckContainment {
		t.Errorf("unknown-site pair: want one containment violation, got %v", vs)
	}
}
