package staticcheck

import (
	"fmt"

	"repro/internal/anchor"
	"repro/internal/prog"
)

// checkScope is check (a): anchor-scope well-formedness per atomic
// block. For every unified-table row it proves that a non-anchor's
// pioneer exists, is an anchor, covers the same DSNode, and dominates
// the site on all CFG paths (if the pioneer can be skipped, the ALP may
// never fire for the site's structure — the "conditionally skipped
// anchor" defect). Anchors' parent links must resolve to anchors in the
// same table. Finally, every ALP-instrumented site must lie inside at
// least one atomic block: the runtime releases advisory locks only at
// the commit/abort hooks of the enclosing block, so an ALP outside any
// block would acquire a lock with no static release point.
func checkScope(c *anchor.Compiled) []Violation {
	var out []Violation
	for _, ab := range c.Mod.Atomics {
		u := c.Unified[ab]
		if u == nil {
			out = append(out, Violation{Check: CheckScope, AB: ab.ID,
				Msg: fmt.Sprintf("atomic block %q has no unified anchor table", ab.Name)})
			continue
		}
		for _, e := range u.Entries {
			if e.IsAnchor {
				out = append(out, checkParent(u, ab.ID, e)...)
				continue
			}
			out = append(out, checkPioneer(u, ab.ID, e)...)
		}
	}
	out = append(out, checkALPScope(c)...)
	return out
}

// checkPioneer validates one non-anchor row: pioneer presence, anchor
// status, node agreement, and dominance with a counterexample path.
func checkPioneer(u *anchor.Unified, abID int, e *anchor.UEntry) []Violation {
	id := e.Site.ID
	if e.PioneerID == 0 {
		return []Violation{{Check: CheckScope, AB: abID, Site: id,
			Msg: "non-anchor site has no pioneer: its DSNode's initial access is unprotected"}}
	}
	p := u.EntryForSite(e.PioneerID)
	if p == nil {
		return []Violation{{Check: CheckScope, AB: abID, Site: id,
			Msg: fmt.Sprintf("pioneer %d is not in the unified table", e.PioneerID)}}
	}
	var out []Violation
	if !p.IsAnchor {
		out = append(out, Violation{Check: CheckScope, AB: abID, Site: id,
			Msg: fmt.Sprintf("pioneer %d is not an anchor", e.PioneerID)})
	}
	if !p.Node.Same(e.Node) {
		out = append(out, Violation{Check: CheckScope, AB: abID, Site: id,
			Msg: fmt.Sprintf("pioneer %d covers %s, not the site's %s",
				e.PioneerID, p.Node.Label(), e.Node.Label())})
	}
	if p.Site.Fn != e.Site.Fn {
		out = append(out, Violation{Check: CheckScope, AB: abID, Site: id,
			Msg: fmt.Sprintf("pioneer %d lives in function %q, site in %q: cross-function pioneers cannot dominate",
				e.PioneerID, p.Site.Fn.Name, e.Site.Fn.Name)})
		return out
	}
	if !prog.InstrDominates(p.Site.Instr, e.Site.Instr) {
		v := Violation{Check: CheckScope, AB: abID, Site: id,
			Msg: fmt.Sprintf("pioneer %d does not dominate the site: a path reaches site %d with its anchor skipped",
				e.PioneerID, id)}
		v.Path = pathAvoiding(e.Site.Fn, p.Site.Instr.Block, e.Site.Instr.Block)
		out = append(out, v)
	}
	return out
}

// checkParent validates one anchor row's parent link.
func checkParent(u *anchor.Unified, abID int, e *anchor.UEntry) []Violation {
	if e.ParentID == 0 {
		return nil
	}
	id := e.Site.ID
	if e.ParentID == id {
		return []Violation{{Check: CheckScope, AB: abID, Site: id,
			Msg: "anchor is its own parent"}}
	}
	p := u.EntryForSite(e.ParentID)
	if p == nil {
		return []Violation{{Check: CheckScope, AB: abID, Site: id,
			Msg: fmt.Sprintf("parent %d is not in the unified table", e.ParentID)}}
	}
	if !p.IsAnchor {
		return []Violation{{Check: CheckScope, AB: abID, Site: id,
			Msg: fmt.Sprintf("parent %d is not an anchor", e.ParentID)}}
	}
	return nil
}

// checkALPScope verifies that each ALP-instrumented site appears in the
// unified table of at least one atomic block (its lock's release scope).
func checkALPScope(c *anchor.Compiled) []Violation {
	var out []Violation
	for id := 1; id < len(c.IsALP); id++ {
		if !c.IsALP[id] {
			continue
		}
		covered := false
		for _, ab := range c.Mod.Atomics {
			if u := c.Unified[ab]; u != nil && u.EntryForSite(uint32(id)) != nil {
				covered = true
				break
			}
		}
		if !covered {
			out = append(out, Violation{Check: CheckScope, Site: uint32(id),
				Msg: "ALP site is outside every atomic block: its advisory lock has no release scope"})
		}
	}
	return out
}

// pathAvoiding returns the block names of a shortest CFG path from f's
// entry to target that never enters avoid — the witness that avoid does
// not dominate target. Empty when no such path exists (then avoid does
// dominate and the caller's dominance test was failed for another
// reason, e.g. same-block ordering).
func pathAvoiding(f *prog.Func, avoid, target *prog.Block) []string {
	if avoid == target {
		// Same-block failure: the pioneer sits after the site.
		return []string{target.Name + " (pioneer follows the site in its own block)"}
	}
	prev := map[*prog.Block]*prog.Block{f.Entry(): nil}
	queue := []*prog.Block{f.Entry()}
	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		if b == target {
			var names []string
			for x := target; x != nil; x = prev[x] {
				names = append(names, x.Name)
			}
			// Reverse into entry-to-target order.
			for i, j := 0, len(names)-1; i < j; i, j = i+1, j-1 {
				names[i], names[j] = names[j], names[i]
			}
			return names
		}
		for _, s := range b.Succs {
			if s == avoid {
				continue
			}
			if _, seen := prev[s]; !seen {
				prev[s] = b
				queue = append(queue, s)
			}
		}
	}
	return nil
}
