package journal

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/chaos"
	"repro/internal/vfs"
)

func openTmp(t *testing.T) (*Journal, *Replay, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "wal", "jobs.wal")
	j, rep, err := Open(vfs.OS, path)
	if err != nil {
		t.Fatal(err)
	}
	return j, rep, path
}

func mustAppend(t *testing.T, j *Journal, recs ...Record) {
	t.Helper()
	for _, r := range recs {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
}

func reopen(t *testing.T, path string) (*Journal, *Replay) {
	t.Helper()
	j, rep, err := Open(vfs.OS, path)
	if err != nil {
		t.Fatal(err)
	}
	return j, rep
}

func TestJournalRoundTrip(t *testing.T) {
	j, rep, path := openTmp(t)
	if len(rep.Records) != 0 || rep.QuarantinedBytes != 0 {
		t.Fatalf("fresh journal replayed %+v", rep)
	}
	spec := json.RawMessage(`{"kind":"run"}`)
	mustAppend(t, j,
		Record{Type: RecAccepted, Job: "job-000001", Idem: "k1", Spec: spec},
		Record{Type: RecRunning, Job: "job-000001"},
		Record{Type: RecDone, Job: "job-000001"},
	)
	j.Close()

	j2, rep2 := reopen(t, path)
	defer j2.Close()
	if len(rep2.Records) != 3 {
		t.Fatalf("replayed %d records, want 3", len(rep2.Records))
	}
	got := rep2.Records
	if got[0].Type != RecAccepted || got[0].Job != "job-000001" || got[0].Idem != "k1" ||
		string(got[0].Spec) != string(spec) {
		t.Fatalf("accepted record mangled: %+v", got[0])
	}
	if got[1].Type != RecRunning || got[2].Type != RecDone {
		t.Fatalf("transition order mangled: %+v", got)
	}
	for i, r := range got {
		if r.Seq != uint64(i+1) {
			t.Fatalf("record %d has seq %d", i, r.Seq)
		}
	}
	// Sequence numbering continues past the replayed tail.
	mustAppend(t, j2, Record{Type: RecAccepted, Job: "job-000002"})
	_, rep3 := reopen(t, path) // second open only to inspect; j2 still holds the append handle
	if n := len(rep3.Records); n != 4 {
		t.Fatalf("after continued append: %d records, want 4", n)
	}
	if rep3.Records[3].Seq != 4 {
		t.Fatalf("continued seq = %d, want 4", rep3.Records[3].Seq)
	}
}

func TestTerminal(t *testing.T) {
	for typ, want := range map[string]bool{
		RecAccepted: false, RecRunning: false,
		RecDone: true, RecFailed: true, RecCanceled: true,
	} {
		if Terminal(typ) != want {
			t.Errorf("Terminal(%q) = %v, want %v", typ, !want, want)
		}
	}
}

// A torn tail — any suffix of a valid journal — must replay the intact
// prefix, quarantine the damaged bytes, and truncate the file so the
// next append lands on a frame boundary.
func TestJournalTornTailQuarantinedAndTruncated(t *testing.T) {
	j, _, path := openTmp(t)
	mustAppend(t, j,
		Record{Type: RecAccepted, Job: "job-000001"},
		Record{Type: RecAccepted, Job: "job-000002"},
	)
	j.Close()
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Chop the file mid-way through the second record's frame.
	for cut := len(magic) + 1; cut < len(whole)-1; cut += 7 {
		if cut <= len(magic) {
			continue
		}
		dir := t.TempDir()
		p := filepath.Join(dir, "jobs.wal")
		if err := os.WriteFile(p, whole[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		j2, rep := reopen(t, p)
		// Every replayed record must be one of the two we wrote, in order.
		for i, r := range rep.Records {
			want := []string{"job-000001", "job-000002"}[i]
			if r.Job != want {
				t.Fatalf("cut %d: record %d = %q, want %q", cut, i, r.Job, want)
			}
		}
		onDisk, _ := os.ReadFile(p)
		wantQuarantined := cut - len(onDisk)
		if rep.QuarantinedBytes != wantQuarantined {
			t.Fatalf("cut %d: quarantined %d bytes, want %d", cut, rep.QuarantinedBytes, wantQuarantined)
		}
		if wantQuarantined > 0 {
			q, err := os.ReadFile(rep.QuarantinePath)
			if err != nil {
				t.Fatalf("cut %d: quarantine sidecar: %v", cut, err)
			}
			if string(q) != string(whole[cut-wantQuarantined:cut]) {
				t.Fatalf("cut %d: sidecar bytes differ from the damaged tail", cut)
			}
		}
		// The repaired journal must accept appends and replay cleanly.
		mustAppend(t, j2, Record{Type: RecAccepted, Job: "job-000003"})
		j2.Close()
		_, rep2 := reopen(t, p)
		last := rep2.Records[len(rep2.Records)-1]
		if last.Job != "job-000003" {
			t.Fatalf("cut %d: append after repair lost: %+v", cut, rep2.Records)
		}
	}
}

// A flipped bit inside a frame fails its CRC; the frame and everything
// after it is damage, never a half-trusted record.
func TestJournalCRCCorruptionStopsReplay(t *testing.T) {
	j, _, path := openTmp(t)
	mustAppend(t, j,
		Record{Type: RecAccepted, Job: "job-000001"},
		Record{Type: RecAccepted, Job: "job-000002"},
		Record{Type: RecAccepted, Job: "job-000003"},
	)
	j.Close()
	raw, _ := os.ReadFile(path)
	// Find the second record's payload and flip one bit in it.
	idx := strings.Index(string(raw), "job-000002")
	if idx < 0 {
		t.Fatal("payload not found")
	}
	raw[idx] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	j2, rep := reopen(t, path)
	defer j2.Close()
	if len(rep.Records) != 1 || rep.Records[0].Job != "job-000001" {
		t.Fatalf("replay past a bad CRC: %+v", rep.Records)
	}
	if rep.QuarantinedBytes == 0 {
		t.Fatal("corrupt frames not quarantined")
	}
}

// A file that is not a journal at all is quarantined whole and replaced.
func TestJournalForeignFileQuarantinedWhole(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "jobs.wal")
	if err := os.WriteFile(path, []byte("this is not a journal"), 0o644); err != nil {
		t.Fatal(err)
	}
	j, rep, err := Open(vfs.OS, path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if len(rep.Records) != 0 || rep.QuarantinedBytes != len("this is not a journal") {
		t.Fatalf("foreign file: %+v", rep)
	}
	if _, err := os.Stat(rep.QuarantinePath); err != nil {
		t.Fatalf("sidecar missing: %v", err)
	}
	raw, _ := os.ReadFile(path)
	if string(raw) != magic {
		t.Fatalf("journal not re-initialized: %q", raw)
	}
}

// A failed append wedges the journal until reopened: appending past a
// possibly-torn tail would orphan every later record.
func TestJournalWedgesAfterFailedAppend(t *testing.T) {
	fp, err := chaos.ParseFailpoints("sync:jobs.wal=error@2", 1)
	if err != nil {
		t.Fatal(err)
	}
	ffs := &vfs.FaultFS{Base: vfs.OS, FP: fp}
	path := filepath.Join(t.TempDir(), "jobs.wal")
	// sync hit 1 is the magic-header init; hit 2 is the first record.
	j, _, err := Open(ffs, path)
	if err != nil {
		t.Fatal(err)
	}
	err = j.Append(Record{Type: RecAccepted, Job: "job-000001"})
	if err == nil || errors.Is(err, ErrWedged) {
		t.Fatalf("first failed append = %v, want the injected error", err)
	}
	if err := j.Append(Record{Type: RecAccepted, Job: "job-000002"}); !errors.Is(err, ErrWedged) {
		t.Fatalf("append after failure = %v, want ErrWedged", err)
	}
	st := j.Stats()
	if st.Appends != 0 || st.AppendErrors != 2 {
		t.Fatalf("stats = %+v", st)
	}
	j.Close()
	// Reopen repairs: the torn record (fully written, possibly unsynced)
	// either replays or is quarantined — both are consistent states.
	j2, _ := reopen(t, path)
	defer j2.Close()
	if err := j2.Append(Record{Type: RecAccepted, Job: "job-000003"}); err != nil {
		t.Fatalf("append after reopen = %v", err)
	}
}

// Compact unwedges too: it rebuilds the file from scratch.
func TestJournalCompact(t *testing.T) {
	j, _, path := openTmp(t)
	spec := json.RawMessage(`{"kind":"sweep"}`)
	mustAppend(t, j,
		Record{Type: RecAccepted, Job: "job-000001", Spec: spec},
		Record{Type: RecRunning, Job: "job-000001"},
		Record{Type: RecDone, Job: "job-000001"},
		Record{Type: RecAccepted, Job: "job-000002", Idem: "k", Spec: spec},
	)
	live := []Record{{Type: RecAccepted, Job: "job-000002", Idem: "k", Spec: spec}}
	if err := j.Compact(live); err != nil {
		t.Fatal(err)
	}
	// The compacted journal still accepts appends with continued seqs.
	mustAppend(t, j, Record{Type: RecRunning, Job: "job-000002"})
	j.Close()
	_, rep := reopen(t, path)
	if len(rep.Records) != 2 {
		t.Fatalf("after compact: %d records, want 2: %+v", len(rep.Records), rep.Records)
	}
	if rep.Records[0].Job != "job-000002" || rep.Records[0].Seq != 1 || rep.Records[0].Idem != "k" {
		t.Fatalf("compacted record: %+v", rep.Records[0])
	}
	if rep.Records[1].Type != RecRunning || rep.Records[1].Seq != 2 {
		t.Fatalf("post-compact append: %+v", rep.Records[1])
	}
	// No temp debris left behind.
	ents, _ := os.ReadDir(filepath.Dir(path))
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Fatalf("compact left %s behind", e.Name())
		}
	}
}

// A crash during compaction (before the rename) leaves the old journal
// intact; a crash after the rename leaves the new one. Either way the
// next open sees a valid journal.
func TestJournalCompactCrashSafety(t *testing.T) {
	for _, tc := range []struct {
		name string
		spec string
		want int // records the reopened journal must hold
	}{
		// sync hits on any path under the dir: hit 1 = magic init, hits
		// 2-4 = the three appends, hit 5 = the compaction temp file.
		{"crash-before-rename", "sync=crash@5", 3},
		{"crash-at-rename", "rename:jobs.wal=crash@1", 1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			fp, err := chaos.ParseFailpoints(tc.spec, 1)
			if err != nil {
				t.Fatal(err)
			}
			ffs := &vfs.FaultFS{Base: vfs.OS, FP: fp}
			path := filepath.Join(t.TempDir(), "jobs.wal")
			j, _, err := Open(ffs, path)
			if err != nil {
				t.Fatal(err)
			}
			mustAppend(t, j,
				Record{Type: RecAccepted, Job: "job-000001"},
				Record{Type: RecDone, Job: "job-000001"},
				Record{Type: RecAccepted, Job: "job-000002"},
			)
			live := []Record{{Type: RecAccepted, Job: "job-000002"}}
			if err := j.Compact(live); err == nil {
				t.Fatal("compact survived its crash failpoint")
			}
			j.Close()
			// The restart opens the real filesystem — whatever the crash
			// left on disk.
			j2, rep := reopen(t, path)
			defer j2.Close()
			if len(rep.Records) != tc.want {
				t.Fatalf("reopened journal has %d records, want %d: %+v",
					len(rep.Records), tc.want, rep.Records)
			}
			if rep.QuarantinedBytes != 0 {
				t.Fatalf("compaction crash produced a damaged journal: %+v", rep)
			}
		})
	}
}

func TestJournalOversizedLengthIsDamage(t *testing.T) {
	j, _, path := openTmp(t)
	mustAppend(t, j, Record{Type: RecAccepted, Job: "job-000001"})
	j.Close()
	raw, _ := os.ReadFile(path)
	// Append a frame header claiming a gigantic payload.
	raw = append(raw, 0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0)
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	j2, rep := reopen(t, path)
	defer j2.Close()
	if len(rep.Records) != 1 || rep.QuarantinedBytes != 8 {
		t.Fatalf("oversized frame: %+v", rep)
	}
}

func TestJournalStats(t *testing.T) {
	j, _, _ := openTmp(t)
	defer j.Close()
	mustAppend(t, j,
		Record{Type: RecAccepted, Job: "job-000001"},
		Record{Type: RecDone, Job: "job-000001"},
	)
	if err := j.Compact(nil); err != nil {
		t.Fatal(err)
	}
	st := j.Stats()
	if st.Appends != 2 || st.Compactions != 1 || st.AppendErrors != 0 {
		t.Fatalf("stats = %+v", st)
	}
}
