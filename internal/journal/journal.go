// Package journal is the crash-safe write-ahead job journal behind
// staggerd: an append-only, fsync'd, CRC-framed record log of job
// submissions and state transitions, so that a daemon killed at any
// instant can replay its accepted work on boot. The design trades a
// cheap, bounded cost on the submit path (one buffered write plus one
// fsync per record) for a hard guarantee on the recovery path — the
// same fast-path/slow-path discipline the simulator's advisory locks
// apply to transactions.
//
// On-disk layout: a fixed magic header line, then records framed as
//
//	uint32 payload length | uint32 IEEE CRC of payload | payload (JSON)
//
// both integers little-endian. The CRC makes torn appends detectable:
// replay stops at the first frame that is short, oversized, or fails
// its checksum, quarantines the damaged tail bytes into a sidecar file
// for forensics, and truncates the journal back to its last valid
// frame. A record is durable — guaranteed to survive any crash — iff
// Append returned nil; a failed Append may leave a torn (never a
// corrupt-but-valid) tail, and the journal wedges until reopened so one
// bad write cannot scribble over later records.
//
// The journal stores facts, not obligations: because every simulation
// is a pure function of its configuration, replaying an "accepted" job
// twice, or re-running a job that already finished but whose terminal
// record was lost, can only waste compute, never corrupt results. All
// failure modes therefore degrade toward at-least-once execution.
package journal

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"path/filepath"
	"sync"

	"repro/internal/vfs"
)

// magic is the first line of every journal file; the trailing digit is
// the format version. A file with any other prefix is quarantined whole
// and the journal starts fresh.
const magic = "staggerwal 1\n"

// maxRecord bounds one frame's payload; a length field beyond it is
// treated as tail corruption, not an allocation request.
const maxRecord = 8 << 20

// Record types: one submission fact and its state transitions.
const (
	RecAccepted = "accepted"
	RecRunning  = "running"
	RecDone     = "done"
	RecFailed   = "failed"
	RecCanceled = "canceled"
)

// Terminal reports whether a record type ends a job's lifecycle. Jobs
// whose latest record is non-terminal are re-enqueued on replay.
func Terminal(t string) bool {
	return t == RecDone || t == RecFailed || t == RecCanceled
}

// Record is one journal entry. Accepted records carry the full job spec
// (the daemon re-plans it on replay) and the client's idempotency key;
// transition records carry just the job reference.
type Record struct {
	Seq   uint64          `json:"seq"`
	Type  string          `json:"type"`
	Job   string          `json:"job"`
	Idem  string          `json:"idem,omitempty"`
	Spec  json.RawMessage `json:"spec,omitempty"`
	Error string          `json:"error,omitempty"`
}

// ErrWedged is returned by Append after a previous Append failed: the
// file may end in a torn frame, and appending past it would orphan
// every later record. Reopening (normally: restarting the daemon)
// quarantines the tail and repairs the journal.
var ErrWedged = errors.New("journal: wedged after a failed append; reopen to repair")

// Replay is what Open found in an existing journal.
type Replay struct {
	// Records, in append order, up to the last valid frame.
	Records []Record
	// QuarantinedBytes counts damaged tail (or foreign-file) bytes moved
	// aside; zero means the journal was clean.
	QuarantinedBytes int
	// QuarantinePath is where the damaged bytes went ("" if none).
	QuarantinePath string
}

// Stats counts journal traffic since Open.
type Stats struct {
	Appends          uint64 `json:"appends"`
	AppendErrors     uint64 `json:"append_errors"`
	Compactions      uint64 `json:"compactions"`
	Replayed         uint64 `json:"replayed_records"`
	QuarantinedBytes uint64 `json:"quarantined_tail_bytes"`
}

// Journal is an open write-ahead log. All methods are safe for
// concurrent use; appends are serialized internally.
type Journal struct {
	fs   vfs.FS
	path string

	mu     sync.Mutex
	f      vfs.File
	seq    uint64
	wedged bool
	closed bool

	appends, appendErrs, compactions uint64
	replayed, quarantined            uint64
}

// Open opens (creating if needed) the journal at path, replays its
// valid prefix, quarantines and truncates any damaged tail, and leaves
// the file open for appending. The returned Replay is never nil.
func Open(fsys vfs.FS, path string) (*Journal, *Replay, error) {
	j := &Journal{fs: fsys, path: path}
	rep := &Replay{}
	if err := fsys.MkdirAll(filepath.Dir(path)); err != nil {
		return nil, nil, fmt.Errorf("journal: open %s: %w", path, err)
	}
	raw, err := fsys.ReadFile(path)
	switch {
	case err == nil && len(raw) > 0:
		if err := j.replay(raw, rep); err != nil {
			return nil, nil, err
		}
	case err == nil: // empty file: initialize below
	default:
		if _, statErr := fsys.Stat(path); statErr == nil {
			return nil, nil, fmt.Errorf("journal: open %s: %w", path, err)
		}
		// Missing file: initialize below.
	}
	if len(rep.Records) == 0 && rep.QuarantinedBytes == 0 {
		if err := j.initEmpty(); err != nil {
			return nil, nil, err
		}
	}
	f, err := fsys.OpenAppend(path)
	if err != nil {
		return nil, nil, fmt.Errorf("journal: open %s: %w", path, err)
	}
	j.f = f
	j.replayed = uint64(len(rep.Records))
	j.quarantined = uint64(rep.QuarantinedBytes)
	return j, rep, nil
}

// replay parses raw, fills rep, and repairs the on-disk file so it ends
// at its last valid frame.
func (j *Journal) replay(raw []byte, rep *Replay) error {
	if !bytes.HasPrefix(raw, []byte(magic)) {
		// Foreign or pre-magic file: quarantine it whole and start over.
		if err := j.quarantineTail(raw, rep); err != nil {
			return err
		}
		return j.initEmpty()
	}
	off := len(magic)
	for off < len(raw) {
		if len(raw)-off < 8 {
			break // torn frame header
		}
		n := binary.LittleEndian.Uint32(raw[off:])
		crc := binary.LittleEndian.Uint32(raw[off+4:])
		if n == 0 || n > maxRecord || int(n) > len(raw)-off-8 {
			break // absurd length or torn payload
		}
		payload := raw[off+8 : off+8+int(n)]
		if crc32.ChecksumIEEE(payload) != crc {
			break // bit rot or a torn rewrite
		}
		var r Record
		if err := json.Unmarshal(payload, &r); err != nil {
			break // valid frame, unintelligible payload: treat as damage
		}
		rep.Records = append(rep.Records, r)
		if r.Seq > j.seq {
			j.seq = r.Seq
		}
		off += 8 + int(n)
	}
	valid := off
	if valid < len(raw) {
		if err := j.quarantineTail(raw[valid:], rep); err != nil {
			return err
		}
		if err := j.fs.Truncate(j.path, int64(valid)); err != nil {
			return fmt.Errorf("journal: truncate damaged tail of %s: %w", j.path, err)
		}
	}
	return nil
}

// quarantineTail preserves damaged bytes in a numbered sidecar file.
func (j *Journal) quarantineTail(tail []byte, rep *Replay) error {
	var dst string
	for i := 0; ; i++ {
		dst = fmt.Sprintf("%s.quarantine.%d", j.path, i)
		if _, err := j.fs.Stat(dst); err != nil {
			break
		}
	}
	if err := j.fs.WriteFile(dst, tail); err != nil {
		return fmt.Errorf("journal: quarantine tail of %s: %w", j.path, err)
	}
	rep.QuarantinedBytes += len(tail)
	rep.QuarantinePath = dst
	return nil
}

// initEmpty writes a fresh journal containing only the magic header.
func (j *Journal) initEmpty() error {
	f, err := j.fs.Create(j.path)
	if err != nil {
		return fmt.Errorf("journal: init %s: %w", j.path, err)
	}
	_, err = f.Write([]byte(magic))
	if err == nil {
		err = f.Sync()
	}
	if err != nil {
		f.Close()
		return fmt.Errorf("journal: init %s: %w", j.path, err)
	}
	return f.Close()
}

// Append assigns the next sequence number to r, frames it, writes it,
// and fsyncs. When Append returns nil the record is durable; when it
// returns an error the record may be torn on disk and the journal
// wedges (ErrWedged thereafter) until reopened.
func (j *Journal) Append(r Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return errors.New("journal: closed")
	}
	if j.wedged {
		j.appendErrs++
		return ErrWedged
	}
	j.seq++
	r.Seq = j.seq
	payload, err := json.Marshal(&r)
	if err != nil {
		return fmt.Errorf("journal: encode record: %w", err)
	}
	frame := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(frame, uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(payload))
	copy(frame[8:], payload)
	_, err = j.f.Write(frame)
	if err == nil {
		err = j.f.Sync()
	}
	if err != nil {
		j.wedged = true
		j.appendErrs++
		return fmt.Errorf("journal: append: %w", err)
	}
	j.appends++
	return nil
}

// Compact atomically rewrites the journal to exactly live (renumbered
// from 1), dropping every other record — the boot- and drain-time
// truncation of terminal entries. It also unwedges a journal whose
// append handle died, since the rewrite starts from a fresh file.
func (j *Journal) Compact(live []Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return errors.New("journal: closed")
	}
	dir := filepath.Dir(j.path)
	tmp, err := j.fs.CreateTemp(dir, "wal-*.tmp")
	if err != nil {
		return fmt.Errorf("journal: compact: %w", err)
	}
	defer j.fs.Remove(tmp.Name()) // no-op after a successful rename
	var buf bytes.Buffer
	buf.WriteString(magic)
	for i, r := range live {
		r.Seq = uint64(i + 1)
		payload, err := json.Marshal(&r)
		if err != nil {
			tmp.Close()
			return fmt.Errorf("journal: compact encode: %w", err)
		}
		var hdr [8]byte
		binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
		binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
		buf.Write(hdr[:])
		buf.Write(payload)
	}
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		return fmt.Errorf("journal: compact write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("journal: compact sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("journal: compact close: %w", err)
	}
	if err := j.fs.Rename(tmp.Name(), j.path); err != nil {
		return fmt.Errorf("journal: compact rename: %w", err)
	}
	// Swap the append handle onto the fresh file.
	if j.f != nil {
		j.f.Close()
	}
	f, err := j.fs.OpenAppend(j.path)
	if err != nil {
		j.wedged = true
		return fmt.Errorf("journal: compact reopen: %w", err)
	}
	j.f = f
	j.seq = uint64(len(live))
	j.wedged = false
	j.compactions++
	return nil
}

// Close closes the append handle; further Appends fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	if j.f != nil {
		return j.f.Close()
	}
	return nil
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Stats snapshots the journal's counters.
func (j *Journal) Stats() Stats {
	j.mu.Lock()
	defer j.mu.Unlock()
	return Stats{
		Appends:          j.appends,
		AppendErrors:     j.appendErrs,
		Compactions:      j.compactions,
		Replayed:         j.replayed,
		QuarantinedBytes: j.quarantined,
	}
}
