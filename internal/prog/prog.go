// Package prog defines the small typed intermediate representation (IR)
// on which the staggered-transactions compiler pass operates.
//
// Each benchmark declares the static shape of its atomic blocks in this
// IR: functions, basic blocks with control flow, and load/store sites
// with pointer provenance (which value a pointer was loaded through).
// The IR plays the role LLVM bitcode plays in the paper: it is what Data
// Structure Analysis (package dsa) and the anchor-table construction
// (package anchor) consume. Dynamic execution does not interpret the IR;
// workload Go code performs real accesses against the HTM simulator,
// attributing each access to its static Site.
package prog

import "fmt"

// ValueKind classifies abstract pointer values.
type ValueKind uint8

const (
	// ValParam is a function formal parameter.
	ValParam ValueKind = iota
	// ValGlobal is a module-level global pointer.
	ValGlobal
	// ValLoad is the result of loading a pointer field.
	ValLoad
	// ValCall is the pointer returned by a call.
	ValCall
	// ValAlloc is a freshly allocated object.
	ValAlloc
	// ValField is a derived pointer into the same object (&p->f).
	ValField
	// ValPhi merges pointer values across control-flow joins (loop
	// induction pointers such as a list cursor).
	ValPhi
)

// Value is an abstract SSA-style pointer value. Values are what Data
// Structure Analysis reasons about: every load/store site names the Value
// its address is computed from.
type Value struct {
	ID   int
	Name string
	Kind ValueKind
	// Fn is the owning function; nil for globals.
	Fn *Func
	// Base is the value this one was derived from (ValLoad: the pointer
	// loaded through; ValField: the object pointer), nil otherwise.
	Base *Value
	// Field is the field name for ValLoad / ValField derivations.
	Field string
}

func (v *Value) String() string {
	if v == nil {
		return "<nil>"
	}
	return "%" + v.Name
}

// InstrKind classifies IR instructions.
type InstrKind uint8

const (
	// InstrAccess is a load or store (see Site).
	InstrAccess InstrKind = iota
	// InstrCall is a direct call to another function in the module.
	InstrCall
)

// Instr is one IR instruction.
type Instr struct {
	Kind   InstrKind
	PC     uint64 // assigned at Finalize
	Block  *Block
	Index  int // position within block
	Site   *Site
	Callee *Func
	Args   []*Value
	Result *Value // pointer returned by the call, if used
}

// Site is a static load or store instruction: the unit the compiler
// classifies as anchor or non-anchor and the unit the runtime attributes
// dynamic accesses to.
type Site struct {
	ID      uint32 // global static ID, 1-based; 0 means "no site"
	PC      uint64 // assigned at Finalize
	IsStore bool
	Fn      *Func
	Instr   *Instr

	// Ptr is the pointer operand: the value whose target object is
	// accessed. Field names the accessed field.
	Ptr   *Value
	Field string

	// Def is the pointer value produced, when this is a pointer load.
	Def *Value
	// StoredVal is the pointer value written, when this is a pointer
	// store.
	StoredVal *Value
}

func (s *Site) String() string {
	op := "load"
	if s.IsStore {
		op = "store"
	}
	return fmt.Sprintf("%s %s->%s @%s", op, s.Ptr, s.Field, s.Fn.Name)
}

// Block is a basic block.
type Block struct {
	Name   string
	Fn     *Func
	Index  int
	Instrs []*Instr
	Succs  []*Block
	Preds  []*Block

	// idom is the immediate dominator, computed at Finalize.
	idom *Block
	// rpo is the block's reverse-postorder number.
	rpo int
}

// Func is an IR function.
type Func struct {
	Name   string
	Mod    *Module
	Params []*Value
	Blocks []*Block
	Values []*Value
	Ret    *Value // pointer return value, if any

	// Calls lists this function's call instructions (filled as built).
	Calls []*Instr

	// PhiBinds records which values flow into each phi.
	PhiBinds []PhiBind

	entry *Block
}

// PhiBind states that value Val flows into phi value Phi.
type PhiBind struct {
	Phi *Value
	Val *Value
}

// Entry returns the function's entry block.
func (f *Func) Entry() *Block { return f.entry }

// Sites returns all load/store sites of the function in program order.
func (f *Func) Sites() []*Site {
	var out []*Site
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Kind == InstrAccess {
				out = append(out, in.Site)
			}
		}
	}
	return out
}

// AtomicBlock is a static transaction: a source-level atomic region,
// represented by a dedicated root function whose body (including all
// transitively called functions) executes transactionally.
type AtomicBlock struct {
	ID   int
	Name string
	Root *Func
}

// Module is a compilation unit: the static program of one benchmark.
type Module struct {
	Name    string
	Funcs   []*Func
	Globals []*Value
	Atomics []*AtomicBlock

	// Shapes lists shape-hint functions (see MarkShape). They are part of
	// the module but never called from an atomic block, so the anchor
	// pass ignores them; only the may-conflict matrix consumes them.
	Shapes []*Func

	// SiteByID maps static site IDs (1-based) to sites; filled by
	// Finalize. Index 0 is nil.
	SiteByID []*Site

	finalized bool
	nextValue int
}

// FuncByName returns the named function, or nil.
func (m *Module) FuncByName(name string) *Func {
	for _, f := range m.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// AtomicByName returns the named atomic block, or nil.
func (m *Module) AtomicByName(name string) *AtomicBlock {
	for _, ab := range m.Atomics {
		if ab.Name == name {
			return ab
		}
	}
	return nil
}

// NumSites returns the number of load/store sites in the module.
func (m *Module) NumSites() int {
	if len(m.SiteByID) == 0 {
		return 0
	}
	return len(m.SiteByID) - 1
}
