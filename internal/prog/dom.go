package prog

// Dominator computation: the Cooper-Harvey-Kennedy iterative algorithm
// over the reverse postorder of each function's CFG. Algorithm 1 of the
// paper classifies a load/store as a non-anchor when an earlier access to
// the same DSNode *dominates* it, so precise dominance is load-bearing
// for anchor counts.

// computeDominators fills in idom and rpo for every reachable block of f.
func computeDominators(f *Func) {
	// Postorder DFS from entry.
	var post []*Block
	seen := make(map[*Block]bool)
	var dfs func(b *Block)
	dfs = func(b *Block) {
		seen[b] = true
		for _, s := range b.Succs {
			if !seen[s] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	dfs(f.entry)

	// Reverse postorder numbering.
	for i := len(post) - 1; i >= 0; i-- {
		post[i].rpo = len(post) - 1 - i
	}
	rpoBlocks := make([]*Block, len(post))
	for _, b := range post {
		rpoBlocks[b.rpo] = b
	}

	for _, b := range f.Blocks {
		b.idom = nil
	}
	f.entry.idom = f.entry
	changed := true
	for changed {
		changed = false
		for _, b := range rpoBlocks[1:] {
			var newIdom *Block
			for _, p := range b.Preds {
				if p.idom == nil || !seen[p] {
					continue
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = intersect(p, newIdom)
				}
			}
			if newIdom != nil && b.idom != newIdom {
				b.idom = newIdom
				changed = true
			}
		}
	}
}

func intersect(a, b *Block) *Block {
	for a != b {
		for a.rpo > b.rpo {
			a = a.idom
		}
		for b.rpo > a.rpo {
			b = b.idom
		}
	}
	return a
}

// Idom returns the immediate dominator of b (entry dominates itself).
// It is nil for unreachable blocks.
func (b *Block) Idom() *Block { return b.idom }

// Dominates reports whether block a dominates block b (reflexive).
func (a *Block) Dominates(b *Block) bool {
	if a.Fn != b.Fn {
		return false
	}
	for {
		if b == a {
			return true
		}
		if b.idom == nil || b.idom == b {
			return false
		}
		b = b.idom
	}
}

// InstrDominates reports whether instruction x dominates instruction y:
// same block and earlier, or x's block strictly dominating y's.
func InstrDominates(x, y *Instr) bool {
	if x.Block == y.Block {
		return x.Index < y.Index
	}
	return x.Block.Dominates(y.Block)
}

// DomTreeChildren returns, for each block of f, its dominator-tree
// children in deterministic (block index) order.
func DomTreeChildren(f *Func) map[*Block][]*Block {
	kids := make(map[*Block][]*Block)
	for _, b := range f.Blocks {
		if b == f.entry || b.idom == nil {
			continue
		}
		kids[b.idom] = append(kids[b.idom], b)
	}
	return kids
}
