package prog

import (
	"math/rand"
	"testing"
)

// bruteDominates computes dominance by definition: a dominates b iff
// every path from entry to b passes through a — equivalently, b is
// unreachable from entry when a is removed (and a != b requires b
// reachable at all).
func bruteDominates(f *Func, a, b *Block) bool {
	if a == b {
		return true
	}
	// Reachability of b avoiding a.
	seen := map[*Block]bool{a: true}
	var stack []*Block
	if f.Entry() != a {
		stack = append(stack, f.Entry())
		seen[f.Entry()] = true
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n == b {
			return false // reached b without a
		}
		for _, s := range n.Succs {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return reachable(f, b)
}

func reachable(f *Func, b *Block) bool {
	seen := map[*Block]bool{}
	stack := []*Block{f.Entry()}
	seen[f.Entry()] = true
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n == b {
			return true
		}
		for _, s := range n.Succs {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return false
}

// TestDominatorsMatchBruteForce builds random CFGs and cross-checks the
// iterative dominator computation against the path-based definition.
func TestDominatorsMatchBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		m := NewModule("rand")
		f := m.NewFunc("f", "p")
		nBlocks := 2 + rng.Intn(9)
		blocks := []*Block{f.Entry()}
		for i := 1; i < nBlocks; i++ {
			blocks = append(blocks, f.NewBlock("b"))
		}
		// Random edges; ensure each non-entry block gets at least one
		// incoming edge from an earlier block (so most are reachable),
		// plus extra random edges including back edges.
		for i := 1; i < nBlocks; i++ {
			blocks[rng.Intn(i)].To(blocks[i])
		}
		extra := rng.Intn(nBlocks * 2)
		for e := 0; e < extra; e++ {
			from := blocks[rng.Intn(nBlocks)]
			to := blocks[rng.Intn(nBlocks)]
			if to != f.Entry() {
				from.To(to)
			}
		}
		m.MustFinalize()

		for _, a := range blocks {
			for _, b := range blocks {
				if !reachable(f, b) || !reachable(f, a) {
					continue
				}
				got := a.Dominates(b)
				want := bruteDominates(f, a, b)
				if got != want {
					t.Fatalf("trial %d: Dominates(%d,%d) = %v, brute force %v",
						trial, a.Index, b.Index, got, want)
				}
			}
		}
	}
}

// TestIdomIsStrictDominator: every reachable non-entry block's immediate
// dominator strictly dominates it and is the CLOSEST strict dominator.
func TestIdomIsStrictDominator(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		m := NewModule("rand")
		f := m.NewFunc("f", "p")
		nBlocks := 3 + rng.Intn(7)
		blocks := []*Block{f.Entry()}
		for i := 1; i < nBlocks; i++ {
			blocks = append(blocks, f.NewBlock("b"))
		}
		for i := 1; i < nBlocks; i++ {
			blocks[rng.Intn(i)].To(blocks[i])
			if rng.Intn(2) == 0 {
				blocks[i].To(blocks[rng.Intn(nBlocks-1)+1])
			}
		}
		m.MustFinalize()
		for _, b := range blocks[1:] {
			if !reachable(f, b) {
				continue
			}
			id := b.Idom()
			if id == nil {
				t.Fatalf("trial %d: reachable block %d has no idom", trial, b.Index)
			}
			if id == b || !id.Dominates(b) {
				t.Fatalf("trial %d: idom(%d)=%d does not strictly dominate",
					trial, b.Index, id.Index)
			}
			// Closest: every other strict dominator of b dominates idom.
			for _, a := range blocks {
				if a != b && a != id && reachable(f, a) && a.Dominates(b) && !a.Dominates(id) {
					t.Fatalf("trial %d: %d strictly dominates %d but not its idom %d",
						trial, a.Index, b.Index, id.Index)
				}
			}
		}
	}
}
