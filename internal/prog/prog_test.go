package prog

import (
	"strings"
	"testing"
)

func buildDiamond(t *testing.T) (*Module, *Func, [4]*Block) {
	t.Helper()
	m := NewModule("diamond")
	f := m.NewFunc("f", "p")
	entry := f.Entry()
	left := f.NewBlock("left")
	right := f.NewBlock("right")
	merge := f.NewBlock("merge")
	entry.To(left, right)
	left.To(merge)
	right.To(merge)
	return m, f, [4]*Block{entry, left, right, merge}
}

func TestBuilderBasics(t *testing.T) {
	m := NewModule("t")
	f := m.NewFunc("g", "a", "b")
	if len(f.Params) != 2 {
		t.Fatalf("params = %d, want 2", len(f.Params))
	}
	s := f.Entry().Load(f.Param(0), "x")
	if s.IsStore || s.Ptr != f.Param(0) || s.Field != "x" {
		t.Fatalf("bad site %+v", s)
	}
	if err := m.Finalize(); err != nil {
		t.Fatal(err)
	}
	if s.ID != 1 || s.PC != PCBase {
		t.Fatalf("site id=%d pc=%#x", s.ID, s.PC)
	}
	if m.NumSites() != 1 {
		t.Fatalf("NumSites = %d", m.NumSites())
	}
}

func TestDuplicateFuncPanics(t *testing.T) {
	m := NewModule("t")
	m.NewFunc("f")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.NewFunc("f")
}

func TestFinalizeAssignsDistinctPCs(t *testing.T) {
	m := NewModule("t")
	f := m.NewFunc("f", "p")
	var sites []*Site
	for i := 0; i < 10; i++ {
		sites = append(sites, f.Entry().Load(f.Param(0), "x"))
	}
	m.MustFinalize()
	seen := map[uint64]bool{}
	for _, s := range sites {
		if seen[s.PC] {
			t.Fatalf("duplicate PC %#x", s.PC)
		}
		seen[s.PC] = true
	}
}

func TestDominatorsDiamond(t *testing.T) {
	m, f, blocks := buildDiamond(t)
	entry, left, right, merge := blocks[0], blocks[1], blocks[2], blocks[3]
	merge.Load(f.Param(0), "x")
	m.MustFinalize()
	if !entry.Dominates(merge) {
		t.Error("entry must dominate merge")
	}
	if left.Dominates(merge) || right.Dominates(merge) {
		t.Error("branch arms must not dominate merge")
	}
	if merge.Idom() != entry {
		t.Errorf("idom(merge) = %v, want entry", merge.Idom().Name)
	}
	if !entry.Dominates(entry) {
		t.Error("dominance must be reflexive")
	}
}

func TestDominatorsLoop(t *testing.T) {
	m := NewModule("loop")
	f := m.NewFunc("f", "p")
	entry := f.Entry()
	head := f.NewBlock("head")
	body := f.NewBlock("body")
	exit := f.NewBlock("exit")
	entry.To(head)
	head.To(body, exit)
	body.To(head)
	m.MustFinalize()
	if !head.Dominates(body) || !head.Dominates(exit) {
		t.Error("loop head must dominate body and exit")
	}
	if body.Dominates(exit) {
		t.Error("body must not dominate exit")
	}
}

func TestInstrDominates(t *testing.T) {
	m, f, blocks := buildDiamond(t)
	entry, left, _, merge := blocks[0], blocks[1], blocks[2], blocks[3]
	s1 := entry.Load(f.Param(0), "a")
	s2 := entry.Load(f.Param(0), "b")
	s3 := left.Load(f.Param(0), "c")
	s4 := merge.Load(f.Param(0), "d")
	m.MustFinalize()
	if !InstrDominates(s1.Instr, s2.Instr) {
		t.Error("earlier instr in same block must dominate later")
	}
	if InstrDominates(s2.Instr, s1.Instr) {
		t.Error("dominance must not be symmetric within a block")
	}
	if !InstrDominates(s1.Instr, s4.Instr) {
		t.Error("entry instr must dominate merge instr")
	}
	if InstrDominates(s3.Instr, s4.Instr) {
		t.Error("branch-arm instr must not dominate merge instr")
	}
}

func TestRecursionRejected(t *testing.T) {
	m := NewModule("rec")
	f := m.NewFunc("f", "p")
	g := m.NewFunc("g", "p")
	f.Entry().Call(g, f.Param(0))
	g.Entry().Call(f, g.Param(0))
	if err := m.Finalize(); err == nil || !strings.Contains(err.Error(), "recursive") {
		t.Fatalf("err = %v, want recursion error", err)
	}
}

func TestFinalizeTwiceFails(t *testing.T) {
	m := NewModule("t")
	m.NewFunc("f")
	m.MustFinalize()
	if err := m.Finalize(); err == nil {
		t.Fatal("second Finalize must fail")
	}
}

func TestMutateAfterFinalizePanics(t *testing.T) {
	m := NewModule("t")
	f := m.NewFunc("f", "p")
	m.MustFinalize()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on post-finalize mutation")
		}
	}()
	f.Entry().Load(f.Param(0), "x")
}

func TestCallArityChecked(t *testing.T) {
	m := NewModule("t")
	f := m.NewFunc("f", "p")
	g := m.NewFunc("g", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("expected arity panic")
		}
	}()
	f.Entry().Call(g, f.Param(0))
}

func TestReachableFuncs(t *testing.T) {
	m := NewModule("t")
	a := m.NewFunc("a", "p")
	b := m.NewFunc("b", "p")
	c := m.NewFunc("c", "p")
	m.NewFunc("unrelated", "p")
	a.Entry().Call(b, a.Param(0))
	b.Entry().Call(c, b.Param(0))
	a.Entry().Call(c, a.Param(0))
	m.MustFinalize()
	got := ReachableFuncs(a)
	if len(got) != 3 || got[0] != a || got[1] != b || got[2] != c {
		names := make([]string, len(got))
		for i, f := range got {
			names[i] = f.Name
		}
		t.Fatalf("reachable = %v, want [a b c]", names)
	}
}

func TestAtomicLookup(t *testing.T) {
	m := NewModule("t")
	f := m.NewFunc("f", "p")
	ab := m.Atomic("insert", f)
	m.MustFinalize()
	if m.AtomicByName("insert") != ab || ab.ID != 1 {
		t.Fatal("atomic lookup broken")
	}
	if m.AtomicByName("nope") != nil {
		t.Fatal("phantom atomic")
	}
	if m.FuncByName("f") != f {
		t.Fatal("func lookup broken")
	}
}

func TestBindRequiresPhi(t *testing.T) {
	m := NewModule("t")
	f := m.NewFunc("f", "p")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f.Bind(f.Param(0), f.Param(0))
}

func TestDomTreeChildren(t *testing.T) {
	m, f, blocks := buildDiamond(t)
	_ = f
	m.MustFinalize()
	kids := DomTreeChildren(blocks[0].Fn)
	if len(kids[blocks[0]]) != 3 {
		t.Fatalf("entry children = %d, want 3 (left, right, merge)", len(kids[blocks[0]]))
	}
}
