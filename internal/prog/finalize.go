package prog

import "fmt"

// PCBase is the synthetic text-segment base address. Instructions are
// laid out 4 bytes apart in declaration order, so programs larger than
// 1024 instructions wrap the machine's 12-bit PC tag — the aliasing
// effect whose cost Table 3 of the paper quantifies as accuracy < 100%.
const PCBase uint64 = 0x400000

// InstrStride is the synthetic size of one instruction in bytes.
const InstrStride uint64 = 4

// Finalize freezes the module: it assigns program counters and site IDs,
// computes per-function dominator trees, and validates the call graph
// (direct recursion is rejected — the anchor pass inlines call trees).
// A module must be finalized before analyses run or sites are executed.
func (m *Module) Finalize() error {
	if m.finalized {
		return fmt.Errorf("prog: module %q finalized twice", m.Name)
	}
	pc := PCBase
	m.SiteByID = append(m.SiteByID, nil) // ID 0 = no site
	for _, f := range m.Funcs {
		if len(f.Blocks) == 0 {
			return fmt.Errorf("prog: function %q has no blocks", f.Name)
		}
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				in.PC = pc
				pc += InstrStride
				if in.Kind == InstrAccess {
					s := in.Site
					s.PC = in.PC
					s.ID = uint32(len(m.SiteByID))
					m.SiteByID = append(m.SiteByID, s)
				}
			}
		}
		computeDominators(f)
	}
	if err := m.checkAcyclic(); err != nil {
		return err
	}
	m.finalized = true
	return nil
}

// Finalized reports whether Finalize has run.
func (m *Module) Finalized() bool { return m.finalized }

// MustFinalize is Finalize for static program declarations that cannot
// legitimately fail at run time.
func (m *Module) MustFinalize() {
	if err := m.Finalize(); err != nil {
		panic(err)
	}
}

// checkAcyclic rejects recursive call graphs.
func (m *Module) checkAcyclic() error {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[*Func]int)
	var visit func(f *Func) error
	visit = func(f *Func) error {
		color[f] = gray
		for _, call := range f.Calls {
			switch color[call.Callee] {
			case gray:
				return fmt.Errorf("prog: recursive call cycle through %q", call.Callee.Name)
			case white:
				if err := visit(call.Callee); err != nil {
					return err
				}
			}
		}
		color[f] = black
		return nil
	}
	for _, f := range m.Funcs {
		if color[f] == white {
			if err := visit(f); err != nil {
				return err
			}
		}
	}
	return nil
}

// Callees returns the functions directly called by f, deduplicated, in
// first-call order.
func (f *Func) Callees() []*Func {
	var out []*Func
	seen := make(map[*Func]bool)
	for _, c := range f.Calls {
		if !seen[c.Callee] {
			seen[c.Callee] = true
			out = append(out, c.Callee)
		}
	}
	return out
}

// ReachableFuncs returns root plus every transitively called function in
// deterministic preorder.
func ReachableFuncs(root *Func) []*Func {
	var out []*Func
	seen := make(map[*Func]bool)
	var walk func(f *Func)
	walk = func(f *Func) {
		if seen[f] {
			return
		}
		seen[f] = true
		out = append(out, f)
		for _, c := range f.Calls {
			walk(c.Callee)
		}
	}
	walk(root)
	return out
}
