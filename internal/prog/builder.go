package prog

import "fmt"

// NewModule starts an empty module. Declare functions, blocks, and sites,
// then call Finalize before handing the module to analyses.
func NewModule(name string) *Module {
	return &Module{Name: name}
}

// Global declares a module-level global pointer (e.g. a shared table).
func (m *Module) Global(name string) *Value {
	m.checkOpen()
	v := &Value{ID: m.nextValue, Name: name, Kind: ValGlobal}
	m.nextValue++
	m.Globals = append(m.Globals, v)
	return v
}

// NewFunc declares a function with named pointer parameters. The entry
// block is created automatically.
func (m *Module) NewFunc(name string, params ...string) *Func {
	m.checkOpen()
	if m.FuncByName(name) != nil {
		panic(fmt.Sprintf("prog: duplicate function %q", name))
	}
	f := &Func{Name: name, Mod: m}
	for _, p := range params {
		f.Params = append(f.Params, f.newValue(p, ValParam, nil, ""))
	}
	f.entry = f.NewBlock("entry")
	m.Funcs = append(m.Funcs, f)
	return f
}

// MarkShape registers fn as a shape hint: a function that is never
// called from any atomic block and whose pointer stores spell out the
// steady-state linkage invariants of a data structure — the facts
// whole-program DSA would learn from the constructor and re-linking
// code that the per-block IR fragments do not model. The anchor pass
// never sees shape hints (they are unreachable from every atomic
// block), so declaring one cannot move an anchor or an ALP; only the
// may-conflict matrix folds their field edges into its class closure.
func (m *Module) MarkShape(f *Func) {
	m.checkOpen()
	m.Shapes = append(m.Shapes, f)
}

// Atomic declares an atomic block rooted at fn.
func (m *Module) Atomic(name string, fn *Func) *AtomicBlock {
	m.checkOpen()
	ab := &AtomicBlock{ID: len(m.Atomics) + 1, Name: name, Root: fn}
	m.Atomics = append(m.Atomics, ab)
	return ab
}

func (m *Module) checkOpen() {
	if m.finalized {
		panic("prog: module already finalized")
	}
}

func (f *Func) newValue(name string, kind ValueKind, base *Value, field string) *Value {
	v := &Value{ID: f.Mod.nextValue, Name: name, Kind: kind, Fn: f, Base: base, Field: field}
	f.Mod.nextValue++
	f.Values = append(f.Values, v)
	return v
}

// Param returns the i'th formal parameter.
func (f *Func) Param(i int) *Value { return f.Params[i] }

// NewBlock appends a basic block to the function.
func (f *Func) NewBlock(name string) *Block {
	f.Mod.checkOpen()
	b := &Block{Name: name, Fn: f, Index: len(f.Blocks)}
	f.Blocks = append(f.Blocks, b)
	return b
}

// SetReturn marks v as the function's pointer return value.
func (f *Func) SetReturn(v *Value) { f.Ret = v }

// To adds a control-flow edge from b to each successor.
func (b *Block) To(succs ...*Block) {
	b.Fn.Mod.checkOpen()
	for _, s := range succs {
		if s.Fn != b.Fn {
			panic("prog: cross-function CFG edge")
		}
		b.Succs = append(b.Succs, s)
		s.Preds = append(s.Preds, b)
	}
}

func (b *Block) addAccess(isStore bool, ptr *Value, field string, def, stored *Value) *Site {
	b.Fn.Mod.checkOpen()
	if ptr == nil {
		panic("prog: access with nil pointer operand")
	}
	s := &Site{
		IsStore:   isStore,
		Fn:        b.Fn,
		Ptr:       ptr,
		Field:     field,
		Def:       def,
		StoredVal: stored,
	}
	in := &Instr{Kind: InstrAccess, Block: b, Index: len(b.Instrs), Site: s}
	s.Instr = in
	b.Instrs = append(b.Instrs, in)
	return s
}

// Load appends a scalar load of ptr->field and returns its site.
func (b *Block) Load(ptr *Value, field string) *Site {
	return b.addAccess(false, ptr, field, nil, nil)
}

// LoadPtr appends a pointer load: name = ptr->field. It returns the
// loaded pointer value and the site.
func (b *Block) LoadPtr(name string, ptr *Value, field string) (*Value, *Site) {
	def := b.Fn.newValue(name, ValLoad, ptr, field)
	s := b.addAccess(false, ptr, field, def, nil)
	return def, s
}

// Store appends a scalar store to ptr->field and returns its site.
func (b *Block) Store(ptr *Value, field string) *Site {
	return b.addAccess(true, ptr, field, nil, nil)
}

// StorePtr appends a pointer store ptr->field = val and returns its site.
func (b *Block) StorePtr(ptr *Value, field string, val *Value) *Site {
	return b.addAccess(true, ptr, field, nil, val)
}

// Field derives a pointer into the same object (&ptr->field) without a
// memory access, e.g. prevPtr = &listPtr->head.
func (b *Block) Field(name string, ptr *Value, field string) *Value {
	return b.Fn.newValue(name, ValField, ptr, field)
}

// Alloc models allocation of a fresh object.
func (b *Block) Alloc(name string) *Value {
	return b.Fn.newValue(name, ValAlloc, nil, "")
}

// Call appends a call to callee with the given pointer arguments. If the
// callee returns a pointer that the caller uses, name it via CallPtr.
func (b *Block) Call(callee *Func, args ...*Value) *Instr {
	b.Fn.Mod.checkOpen()
	if len(args) != len(callee.Params) {
		panic(fmt.Sprintf("prog: call to %s with %d args, want %d",
			callee.Name, len(args), len(callee.Params)))
	}
	in := &Instr{Kind: InstrCall, Block: b, Index: len(b.Instrs), Callee: callee, Args: args}
	b.Instrs = append(b.Instrs, in)
	b.Fn.Calls = append(b.Fn.Calls, in)
	return in
}

// Phi declares a pointer value merged from several sources (a loop
// cursor, for example). Bind the incoming values with Bind.
func (f *Func) Phi(name string) *Value {
	f.Mod.checkOpen()
	return f.newValue(name, ValPhi, nil, "")
}

// Bind records that val flows into phi.
func (f *Func) Bind(phi, val *Value) {
	f.Mod.checkOpen()
	if phi.Kind != ValPhi {
		panic("prog: Bind target is not a phi")
	}
	f.PhiBinds = append(f.PhiBinds, PhiBind{Phi: phi, Val: val})
}

// CallPtr appends a call whose pointer result the caller uses.
func (b *Block) CallPtr(name string, callee *Func, args ...*Value) (*Value, *Instr) {
	in := b.Call(callee, args...)
	v := b.Fn.newValue(name, ValCall, nil, "")
	in.Result = v
	return v, in
}
