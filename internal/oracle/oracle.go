// Package oracle implements a per-run serializability checker for the htm
// simulator.
//
// The checker observes every committed effect of a run (via htm.TxObserver)
// and maintains a shadow copy of simulated memory to which effects are
// applied atomically, in commit order. Because the simulator serializes all
// globally visible events, commit order IS the claimed serialization order
// of the execution; the oracle verifies the claim:
//
//   - Read validation: each committed atomic section's logged first reads
//     must equal the shadow's values at its commit point. If the section
//     observed a value no prefix of the commit order explains — e.g. half
//     of another section's writes, which a broken fallback-lock protocol
//     permits — the read diverges from the shadow and is reported.
//   - Reference-model validation: each committed section carries an opaque
//     operation tag; the workload's sequential reference model re-executes
//     the tags in commit order and checks each observed result. This
//     catches semantic violations (lost updates, duplicated queue pops)
//     even when every individual read happens to validate.
//   - Final-state comparison: after the run, shadow and real memory must
//     be word-for-word identical; a divergence means some committed effect
//     was not serializable as claimed (or was never reported — a harness
//     bug either way).
//
// The key subtlety is the treatment of irrevocable sections: their plain
// stores reach real simulated memory one by one, but the shadow applies
// them as one atomic unit at the section's end. Under a correct protocol
// no transaction can commit between an irrevocable section's first store
// and its end (commit subscribes to the global lock), so the deferral is
// invisible; under a broken protocol a racing transaction commits a half
// view of the section and its reads fail validation against the shadow.
package oracle

import (
	"fmt"
	"sort"

	"repro/internal/mem"
)

// RefModel is a sequential reference model of one workload. Step applies
// one committed operation tag (the workload-defined value passed to
// TxCtx.Op) and returns an error if the operation's observed behaviour is
// inconsistent with the model's sequential execution of the commit order.
type RefModel interface {
	Step(tag any) error
}

// Finisher is an optional RefModel extension: models that can compare
// their final sequential state against the run's real final memory
// implement it, and the harness calls Finish once after the machine has
// run (and after FinalCheck).
type Finisher interface {
	Finish() error
}

// ViolationKind classifies an oracle finding.
type ViolationKind uint8

const (
	// ReadDivergence: a committed section read a value the commit-order
	// prefix cannot explain.
	ReadDivergence ViolationKind = iota
	// ModelDivergence: the reference model rejected a committed operation.
	ModelDivergence
	// FinalDivergence: shadow and real memory differ after the run.
	FinalDivergence
)

func (k ViolationKind) String() string {
	switch k {
	case ReadDivergence:
		return "read-divergence"
	case ModelDivergence:
		return "model-divergence"
	case FinalDivergence:
		return "final-divergence"
	default:
		return "violation(?)"
	}
}

// Violation is one serializability failure.
type Violation struct {
	Kind   ViolationKind
	Commit int      // 1-based commit index at which it was detected
	Core   int      // committing core (-1 for final-state checks)
	Word   mem.Addr // offending word (read/final divergence)
	Got    uint64   // value the section observed / real memory holds
	Want   uint64   // value the shadow holds
	Err    error    // model error (model divergence)
}

func (v Violation) Error() string {
	switch v.Kind {
	case ModelDivergence:
		return fmt.Sprintf("oracle: commit %d (core %d): model divergence: %v", v.Commit, v.Core, v.Err)
	case FinalDivergence:
		return fmt.Sprintf("oracle: final state: word %#x = %#x, shadow has %#x", uint64(v.Word), v.Got, v.Want)
	default:
		return fmt.Sprintf("oracle: commit %d (core %d): read of word %#x observed %#x, serialization order requires %#x",
			v.Commit, v.Core, uint64(v.Word), v.Got, v.Want)
	}
}

// maxViolations bounds how many violations one run retains; one is enough
// to fail a run, a handful is enough to debug it.
const maxViolations = 16

// Checker is the per-run serializability oracle. It implements
// htm.TxObserver; install it with Machine.SetObserver before Run, seeded
// with a snapshot of post-setup memory.
type Checker struct {
	shadow     *mem.Memory
	model      RefModel
	commits    int
	violations []Violation

	// readScratch reuses the sorted-words buffer across commits.
	readScratch []mem.Addr
}

// New returns a checker whose shadow starts from snapshot (which must be a
// private copy — use mem.Memory.Snapshot after workload setup). model may
// be nil to skip reference-model validation.
func New(snapshot *mem.Memory, model RefModel) *Checker {
	return &Checker{shadow: snapshot, model: model}
}

// OnStore applies an immediate nontransactional mutation to the shadow.
// Such stores are their own (single-word) atomic units in the commit
// order, so no validation applies.
func (k *Checker) OnStore(core int, addr mem.Addr, val uint64) {
	k.shadow.Store(addr, val)
}

// OnCommit validates one committed atomic section against the shadow,
// applies its writes, and steps the reference model.
func (k *Checker) OnCommit(core int, irrevocable bool, tag any, reads, writes map[mem.Addr]uint64) {
	k.commits++
	k.readScratch = k.readScratch[:0]
	//staggervet:allow determinism key collection; sorted before validation
	for w := range reads {
		k.readScratch = append(k.readScratch, w)
	}
	sort.Slice(k.readScratch, func(i, j int) bool { return k.readScratch[i] < k.readScratch[j] })
	for _, w := range k.readScratch {
		if got, want := reads[w], k.shadow.Load(w); got != want {
			k.report(Violation{Kind: ReadDivergence, Commit: k.commits, Core: core, Word: w, Got: got, Want: want})
		}
	}
	//staggervet:allow determinism distinct words; shadow state is order-independent
	for w, v := range writes {
		k.shadow.Store(w, v)
	}
	if k.model != nil && tag != nil {
		if err := k.model.Step(tag); err != nil {
			k.report(Violation{Kind: ModelDivergence, Commit: k.commits, Core: core, Err: err})
		}
	}
}

// FinalCheck compares the shadow against the run's real final memory and
// records any divergence. Call once, after the machine has run.
func (k *Checker) FinalCheck(real *mem.Memory) {
	for _, w := range real.Diff(k.shadow, 8) {
		k.report(Violation{Kind: FinalDivergence, Commit: k.commits, Core: -1,
			Word: w, Got: real.Load(w), Want: k.shadow.Load(w)})
	}
}

func (k *Checker) report(v Violation) {
	if len(k.violations) < maxViolations {
		k.violations = append(k.violations, v)
	}
}

// Commits returns how many atomic sections have committed.
func (k *Checker) Commits() int { return k.commits }

// Violations returns the retained findings (nil when the run validated).
func (k *Checker) Violations() []Violation { return k.violations }

// Err returns nil when the run validated, or the first violation.
func (k *Checker) Err() error {
	if len(k.violations) == 0 {
		return nil
	}
	v := k.violations[0]
	return fmt.Errorf("%d serializability violation(s); first: %w", len(k.violations), v)
}
