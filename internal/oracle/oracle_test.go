package oracle

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/htm"
	"repro/internal/mem"
)

// brokenRig runs a two-core machine in which core 0 executes one atomic
// section irrevocably (forced by an explicit first-attempt abort) writing
// two far-apart words, while core 1 commits many small transactions that
// read both words. With earlyRelease the irrevocable fallback releases the
// global lock before its body runs — the bug class the oracle exists to
// catch: core 1 can commit a half view (new first word, old second word).
func brokenRig(t *testing.T, earlyRelease bool) *Checker {
	t.Helper()
	cfg := htm.DefaultConfig()
	cfg.Cores = 2
	m := htm.New(cfg)
	a := m.Alloc.AllocLines(1)
	b := m.Alloc.AllocLines(1)
	sum := m.Alloc.AllocLines(1)

	chk := New(m.Mem.Snapshot(), nil)
	m.SetObserver(chk)

	writer := func(c *htm.Core) {
		opts := htm.DefaultAtomicOpts()
		opts.MaxRetries = 1
		opts.UnsafeEarlyRelease = earlyRelease
		c.Atomic(opts, htm.TxHooks{}, func(c *htm.Core) {
			if c.InTx() {
				c.TxAbortExplicit() // force the irrevocable fallback
			}
			c.Store(0x100, 1, a, 1)
			// A long pause between the two stores: readers run here.
			c.Compute(400_000)
			c.Store(0x104, 2, b, 1)
		})
	}
	reader := func(c *htm.Core) {
		for i := 0; i < 400; i++ {
			c.Atomic(htm.DefaultAtomicOpts(), htm.TxHooks{}, func(c *htm.Core) {
				x := c.Load(0x200, 3, a)
				y := c.Load(0x204, 4, b)
				c.Store(0x208, 5, sum, x+y)
			})
			c.Compute(50)
		}
	}
	m.Run([]func(*htm.Core){writer, reader})
	chk.FinalCheck(m.Mem)
	return chk
}

func TestCorrectIrrevocableValidates(t *testing.T) {
	chk := brokenRig(t, false)
	if err := chk.Err(); err != nil {
		t.Fatalf("correct protocol flagged: %v", err)
	}
	if chk.Commits() < 100 {
		t.Fatalf("only %d commits; rig not exercising the machine", chk.Commits())
	}
}

func TestEarlyReleaseCaught(t *testing.T) {
	chk := brokenRig(t, true)
	err := chk.Err()
	if err == nil {
		t.Fatal("early global-lock release produced no violation")
	}
	var v Violation
	if !errors.As(err, &v) {
		t.Fatalf("Err() = %v; want a wrapped Violation", err)
	}
	if v.Kind != ReadDivergence {
		t.Fatalf("first violation kind = %v, want %v (err: %v)", v.Kind, ReadDivergence, err)
	}
	if !strings.Contains(err.Error(), "read of word") {
		t.Fatalf("unexpected message: %v", err)
	}
}

type countModel struct{ n uint64 }

type incTag struct{ newVal uint64 }

func (m *countModel) Step(tag any) error {
	it, ok := tag.(incTag)
	if !ok {
		return errors.New("bad tag type")
	}
	m.n++
	if it.newVal != m.n {
		return errors.New("counter skew")
	}
	return nil
}

func TestModelValidatesCommitOrder(t *testing.T) {
	cfg := htm.DefaultConfig()
	cfg.Cores = 4
	m := htm.New(cfg)
	ctr := m.Alloc.AllocLines(1)

	model := &countModel{}
	chk := New(m.Mem.Snapshot(), model)
	m.SetObserver(chk)

	bodies := make([]func(*htm.Core), 4)
	for i := range bodies {
		bodies[i] = func(c *htm.Core) {
			for k := 0; k < 50; k++ {
				c.Atomic(htm.DefaultAtomicOpts(), htm.TxHooks{}, func(c *htm.Core) {
					v := c.Load(0x300, 6, ctr)
					c.Store(0x304, 7, ctr, v+1)
					c.SetOpTag(incTag{newVal: v + 1})
				})
			}
		}
	}
	m.Run(bodies)
	chk.FinalCheck(m.Mem)
	if err := chk.Err(); err != nil {
		t.Fatalf("shared counter flagged: %v", err)
	}
	if model.n != 200 {
		t.Fatalf("model saw %d increments, want 200", model.n)
	}
	if got := m.Mem.Load(ctr); got != 200 {
		t.Fatalf("counter = %d, want 200", got)
	}
}

func TestModelDivergenceReported(t *testing.T) {
	chk := New(mem.New(), &countModel{})
	chk.OnCommit(0, false, incTag{newVal: 2}, nil, nil) // model expects 1
	var v Violation
	if err := chk.Err(); err == nil || !errors.As(err, &v) || v.Kind != ModelDivergence {
		t.Fatalf("want model divergence, got %v", chk.Err())
	}
}

func TestFinalDivergenceReported(t *testing.T) {
	real := mem.New()
	real.Store(0x1000, 42)
	chk := New(mem.New(), nil)
	chk.FinalCheck(real)
	var v Violation
	if err := chk.Err(); err == nil || !errors.As(err, &v) || v.Kind != FinalDivergence {
		t.Fatalf("want final divergence, got %v", chk.Err())
	}
	if v.Word != 0x1000 || v.Got != 42 || v.Want != 0 {
		t.Fatalf("divergence detail wrong: %+v", v)
	}
}
