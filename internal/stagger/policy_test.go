package stagger

import (
	"testing"

	"repro/internal/anchor"
	"repro/internal/backend"
	"repro/internal/htm"
	"repro/internal/mem"
	"repro/internal/prog"
)

// chainProgram declares q -> head -> cell, giving the cell anchor a
// parent for promotion tests.
func chainProgram(t testing.TB) (*prog.Module, *prog.AtomicBlock, *prog.Site, *prog.Site) {
	t.Helper()
	m := prog.NewModule("chain")
	f := m.NewFunc("op", "q")
	head, sHead := f.Entry().LoadPtr("head", f.Param(0), "head")
	sCell := f.Entry().Load(head, "v")
	ab := m.Atomic("op", f)
	m.MustFinalize()
	return m, ab, sHead, sCell
}

// policyEnv builds a 1-core runtime plus a pre-gated ABContext so policy
// decisions can be driven directly.
func policyEnv(t testing.TB, m *prog.Module, ab *prog.AtomicBlock, cfg Config) (*Runtime, *ABContext, *TxCtx) {
	t.Helper()
	mcfg := htm.DefaultConfig()
	mcfg.Cores = 1
	mach := htm.New(mcfg)
	comp := anchor.Compile(m, anchor.DefaultOptions())
	rt := New(mach, comp, cfg)
	th := rt.Thread(0)
	abc := th.ctx(ab)
	abc.confAbortsW = 64 // pass decision (1)
	abc.deepW = 64       // pass the coarse-mode bar
	tc := &TxCtx{th: th, c: mach.Core(0), abc: abc}
	return rt, abc, tc
}

func conflictAt(s *prog.Site, addr mem.Addr) htm.AbortInfo {
	return htm.AbortInfo{
		Reason:   htm.AbortConflict,
		ConfAddr: addr,
		ConfPC:   s.PC & 0xFFF,
		HasPC:    true,
		TrueSite: s.ID,
	}
}

// TestPolicyTransitionTable drives the four Figure-6 behaviours through
// crafted abort sequences.
func TestPolicyTransitionTable(t *testing.T) {
	m, ab, sHead, sCell := chainProgram(t)

	t.Run("precise_on_recurrent_pc_and_addr", func(t *testing.T) {
		rt, abc, tc := policyEnv(t, m, ab, DefaultConfig(ModeStaggeredHW))
		for i := 0; i < 5; i++ {
			rt.activate(tc, abc, conflictAt(sCell, 0x40000), 0)
		}
		if abc.ActiveAnchor() != sCell.ID || abc.BlockAddr() != 0x40000 {
			t.Fatalf("anchor=%d addr=%#x, want precise on cell", abc.ActiveAnchor(), abc.BlockAddr())
		}
	})

	t.Run("coarse_on_recurrent_pc_varying_addr", func(t *testing.T) {
		rt, abc, tc := policyEnv(t, m, ab, DefaultConfig(ModeStaggeredHW))
		for i := 0; i < 5; i++ {
			rt.activate(tc, abc, conflictAt(sCell, mem.Addr(0x40000+i*128)), 0)
		}
		if abc.ActiveAnchor() != sCell.ID || abc.BlockAddr() != 0 {
			t.Fatalf("anchor=%d addr=%#x, want coarse on cell", abc.ActiveAnchor(), abc.BlockAddr())
		}
	})

	t.Run("promotion_on_deep_retry", func(t *testing.T) {
		cfg := DefaultConfig(ModeStaggeredHW)
		rt, abc, tc := policyEnv(t, m, ab, cfg)
		for i := 0; i < 5; i++ {
			rt.activate(tc, abc, conflictAt(sCell, mem.Addr(0x40000+i*128)), cfg.PromThr)
		}
		if abc.ActiveAnchor() != sHead.ID {
			t.Fatalf("anchor=%d, want promoted parent %d", abc.ActiveAnchor(), sHead.ID)
		}
	})

	t.Run("training_without_recurrence", func(t *testing.T) {
		// Four distinct anchors rotating through the 8-entry history:
		// each appears twice, never crossing PC_THR = 2.
		m4 := prog.NewModule("four")
		f := m4.NewFunc("op", "a", "b", "c", "d")
		sites := []*prog.Site{
			f.Entry().Load(f.Param(0), "x"),
			f.Entry().Load(f.Param(1), "x"),
			f.Entry().Load(f.Param(2), "x"),
			f.Entry().Load(f.Param(3), "x"),
		}
		ab4 := m4.Atomic("op", f)
		m4.MustFinalize()
		rt, abc, tc := policyEnv(t, m4, ab4, DefaultConfig(ModeStaggeredHW))
		for i := 0; i < 8; i++ {
			rt.activate(tc, abc, conflictAt(sites[i%4], mem.Addr(0x40000+i*128)), 0)
		}
		if abc.ActiveAnchor() != 0 {
			t.Fatalf("anchor=%d armed without a recurring pattern", abc.ActiveAnchor())
		}
	})

	t.Run("non_conflict_aborts_ignored", func(t *testing.T) {
		rt, abc, tc := policyEnv(t, m, ab, DefaultConfig(ModeStaggeredHW))
		for i := 0; i < 8; i++ {
			rt.activate(tc, abc, htm.AbortInfo{Reason: htm.AbortOverflow}, 0)
		}
		if abc.ActiveAnchor() != 0 || len(abc.history) != 0 {
			t.Fatal("overflow aborts fed the conflict policy")
		}
	})
}

// TestPolicyPioneerResolution: a conflicting PC on a non-anchor site must
// resolve to its pioneer anchor before arming.
func TestPolicyPioneerResolution(t *testing.T) {
	m := prog.NewModule("pio")
	f := m.NewFunc("op", "p")
	sFirst := f.Entry().Load(f.Param(0), "a")  // anchor
	sSecond := f.Entry().Load(f.Param(0), "b") // non-anchor, pioneer sFirst
	ab := m.Atomic("op", f)
	m.MustFinalize()
	rt, abc, tc := policyEnv(t, m, ab, DefaultConfig(ModeStaggeredHW))
	for i := 0; i < 5; i++ {
		rt.activate(tc, abc, conflictAt(sSecond, 0x40000), 0)
	}
	if abc.ActiveAnchor() != sFirst.ID {
		t.Fatalf("anchor=%d, want pioneer %d", abc.ActiveAnchor(), sFirst.ID)
	}
}

// TestDecisionOneGateBlocksQuietBlocks: without windowed contention the
// policy must stay in training no matter how recurrent the pattern looks.
func TestDecisionOneGateBlocksQuietBlocks(t *testing.T) {
	m, ab, _, sCell := chainProgram(t)
	rt, abc, tc := policyEnv(t, m, ab, DefaultConfig(ModeStaggeredHW))
	abc.confAbortsW = 0
	abc.deepW = 0
	abc.commitsW = 60 // lots of quiet commits
	for i := 0; i < 8; i++ {
		rt.activate(tc, abc, conflictAt(sCell, 0x40000), 0)
		abc.confAbortsW = 0 // keep the window quiet
	}
	if abc.ActiveAnchor() != 0 {
		t.Fatal("policy armed below the contention gate")
	}
}

// TestRateDisarmOnCommit: an armed context disarms once the windowed
// contention rate collapses.
func TestRateDisarmOnCommit(t *testing.T) {
	m, ab, _, sCell := chainProgram(t)
	mcfg := htm.DefaultConfig()
	mcfg.Cores = 1
	mach := htm.New(mcfg)
	comp := anchor.Compile(m, anchor.DefaultOptions())
	rt := New(mach, comp, DefaultConfig(ModeStaggeredHW))
	th := rt.Thread(0)
	abc := th.ctx(ab)
	abc.activeAnchor = sCell.ID
	abc.blockAddr = 0x40000
	abc.confAbortsW = 0
	abc.commitsW = 50
	addr := mach.Alloc.AllocLines(1)
	mach.Run([]func(*htm.Core){func(c *htm.Core) {
		th.Atomic(c, ab, func(tc backend.Ctx) {
			tc.Load(sCell, addr)
		})
	}})
	if abc.ActiveAnchor() != 0 {
		t.Fatal("quiet context did not disarm at commit")
	}
}

// TestLockHashingDeterministicAndBounded: lockFor maps any address into
// the configured table and does so deterministically.
func TestLockHashingDeterministicAndBounded(t *testing.T) {
	mach := htm.New(htm.DefaultConfig())
	cfg := DefaultConfig(ModeHTM)
	cfg.NumLocks = 16
	rt := New(mach, nil, cfg)
	seen := map[mem.Addr]bool{}
	for i := 0; i < 4096; i++ {
		a := mem.Addr(0x100000 + i*8)
		l1 := rt.lockFor(a)
		l2 := rt.lockFor(a)
		if l1 != l2 {
			t.Fatal("lockFor nondeterministic")
		}
		if (l1-rt.locksBase)%mem.LineSize != 0 || l1 < rt.locksBase ||
			l1 >= rt.locksBase+mem.Addr(cfg.NumLocks*mem.LineSize) {
			t.Fatalf("lock %#x outside table", l1)
		}
		seen[l1] = true
	}
	if len(seen) != cfg.NumLocks {
		t.Errorf("only %d of %d locks ever selected", len(seen), cfg.NumLocks)
	}
	// Same line -> same lock regardless of offset within the line.
	if rt.lockFor(0x100001) != rt.lockFor(0x100039) {
		t.Error("same-line addresses map to different locks")
	}
}

// TestSWMapSlotting: software anchor-map slots stay inside the thread's
// region and are line-deterministic.
func TestSWMapSlotting(t *testing.T) {
	mcfg := htm.DefaultConfig()
	mcfg.Cores = 2
	mcfg.HardwareCPC = false
	mach := htm.New(mcfg)
	m, ab, _, _ := chainProgram(t)
	comp := anchor.Compile(m, anchor.DefaultOptions())
	_ = ab
	cfg := DefaultConfig(ModeStaggeredSW)
	rt := New(mach, comp, cfg)
	th0, th1 := rt.Thread(0), rt.Thread(1)
	for i := 0; i < 1000; i++ {
		a := mem.Addr(0x200000 + i*64)
		s0 := th0.swSlot(a)
		if s0 < rt.swBase[0] || s0 >= rt.swBase[0]+mem.Addr(cfg.SWMapWords*8) {
			t.Fatalf("slot %#x outside thread 0 region", s0)
		}
		if th0.swSlot(a) != s0 {
			t.Fatal("slot nondeterministic")
		}
		// Distinct threads use distinct regions.
		if th1.swSlot(a) == s0 {
			t.Fatal("threads share a software-map slot")
		}
	}
}

// TestMultiLockBudget: with MaxLocksPerTx > 1, a coarse ALP may take
// several distinct locks in one transaction, and all are released.
func TestMultiLockBudget(t *testing.T) {
	m := prog.NewModule("multi")
	f := m.NewFunc("op", "p")
	sA := f.Entry().Load(f.Param(0), "a")
	ab := m.Atomic("op", f)
	m.MustFinalize()

	mcfg := htm.DefaultConfig()
	mcfg.Cores = 1
	mach := htm.New(mcfg)
	comp := anchor.Compile(m, anchor.DefaultOptions())
	cfg := DefaultConfig(ModeStaggeredHW)
	cfg.MaxLocksPerTx = 3
	rt := New(mach, comp, cfg)
	th := rt.Thread(0)
	abc := th.ctx(ab)
	abc.activeAnchor = sA.ID
	abc.blockAddr = 0 // coarse: lock whatever address arrives
	abc.confAbortsW = 64

	addrs := []mem.Addr{mach.Alloc.AllocLines(1), mach.Alloc.AllocLines(1),
		mach.Alloc.AllocLines(1), mach.Alloc.AllocLines(1)}
	mach.Run([]func(*htm.Core){func(c *htm.Core) {
		th.Atomic(c, ab, func(tc backend.Ctx) {
			for _, a := range addrs {
				tc.Load(sA, a)
			}
			if held := len(tc.(*TxCtx).locks); held != 3 {
				t.Errorf("held %d locks inside tx, want budget 3", held)
			}
		})
	}})
	if got := rt.Metrics.LocksAcquired; got != 3 {
		t.Fatalf("locks acquired = %d, want 3", got)
	}
	// All advisory locks must be free again after commit.
	for i := 0; i < rt.cfg.NumLocks; i++ {
		if mach.Mem.Load(rt.locksBase+mem.Addr(i*mem.LineSize)) != 0 {
			t.Fatalf("lock %d still held after commit", i)
		}
	}
}
