package stagger

import (
	"testing"

	"repro/internal/anchor"
	"repro/internal/backend"
	"repro/internal/chaos"
	"repro/internal/htm"
	"repro/internal/mem"
)

// dropFirst loses exactly one lock release (the first by core 0),
// simulating a holder that died while holding an advisory lock.
type dropFirst struct{ dropped bool }

func (d *dropFirst) DropLockRelease(core int) bool {
	if !d.dropped && core == 0 {
		d.dropped = true
		return true
	}
	return false
}

// runDeadHolder runs the 2-thread counter with pre-armed ALPs (every
// transaction acquires the hot advisory lock) and one lost release, under
// the given config. Returns the runtime for metric inspection.
func runDeadHolder(t *testing.T, cfg Config, incs int) (*htm.Machine, *Runtime) {
	t.Helper()
	m, ab, sLoad, sStore := counterProgram(t)
	cfgM := htm.DefaultConfig()
	cfgM.Cores = 2
	mach := htm.New(cfgM)
	comp := anchor.Compile(m, anchor.DefaultOptions())
	cfg.LockFaults = &dropFirst{}
	rt := New(mach, comp, cfg)
	addr := mach.Alloc.AllocLines(1)
	for tid := 0; tid < 2; tid++ {
		abc := rt.Thread(tid).ctx(ab)
		abc.activeAnchor = sLoad.ID
		abc.blockAddr = mem.LineOf(addr)
	}
	bodies := make([]func(*htm.Core), 2)
	for i := range bodies {
		bodies[i] = func(c *htm.Core) {
			th := rt.Thread(c.ID())
			for k := 0; k < incs; k++ {
				th.Atomic(c, ab, func(tc backend.Ctx) {
					v := tc.Load(sLoad, addr)
					tc.Compute(200)
					tc.Store(sStore, addr, v+1)
				})
			}
		}
	}
	mach.Run(bodies)
	if got := mach.Mem.Load(addr); got != uint64(2*incs) {
		t.Fatalf("counter = %d, want %d (lost release broke atomicity?)", got, 2*incs)
	}
	return mach, rt
}

// TestStaleLockReclaimed is the self-healing claim: with lease-stamped
// lock words, a lock orphaned by a dead holder is reclaimed after the
// lease expires, so the run finishes far faster than the legacy runtime,
// which serializes every later waiter behind a full LockTimeout spin.
func TestStaleLockReclaimed(t *testing.T) {
	const incs = 25

	legacy := DefaultConfig(ModeStaggeredHW)
	legacy.LockTimeout = 3000
	legacyMach, legacyRT := runDeadHolder(t, legacy, incs)

	leased := DefaultConfig(ModeStaggeredHW)
	leased.LockTimeout = 3000
	leased.LockLease = 600 // expire well before the waiter's deadline
	leasedMach, leasedRT := runDeadHolder(t, leased, incs)

	if legacyRT.Metrics.LockTimeouts == 0 {
		t.Fatal("legacy runtime never timed out behind the dead holder")
	}
	if legacyRT.Metrics.LocksReclaimed != 0 {
		t.Fatal("legacy runtime reclaimed a lock without leases")
	}
	if leasedRT.Metrics.LocksReclaimed == 0 {
		t.Fatal("leased runtime never reclaimed the stale lock")
	}
	lm := legacyMach.Stats().Makespan
	hm := leasedMach.Stats().Makespan
	if hm >= lm {
		t.Fatalf("leased makespan %d not below legacy %d (reclamation bought nothing)", hm, lm)
	}
}

// TestLeaseReleaseStillWorks: with leases on but no faults, locks hand
// over normally — the ownership-checked release must not strand words.
func TestLeaseReleaseStillWorks(t *testing.T) {
	cfg := DefaultConfig(ModeStaggeredHW)
	cfg.LockLease = cfg.LockTimeout
	m, ab, sLoad, sStore := counterProgram(t)
	cfgM := htm.DefaultConfig()
	cfgM.Cores = 4
	mach := htm.New(cfgM)
	comp := anchor.Compile(m, anchor.DefaultOptions())
	rt := New(mach, comp, cfg)
	addr := mach.Alloc.AllocLines(1)
	for tid := 0; tid < 4; tid++ {
		abc := rt.Thread(tid).ctx(ab)
		abc.activeAnchor = sLoad.ID
		abc.blockAddr = mem.LineOf(addr)
	}
	bodies := make([]func(*htm.Core), 4)
	for i := range bodies {
		bodies[i] = func(c *htm.Core) {
			th := rt.Thread(c.ID())
			for k := 0; k < 20; k++ {
				th.Atomic(c, ab, func(tc backend.Ctx) {
					v := tc.Load(sLoad, addr)
					tc.Compute(100)
					tc.Store(sStore, addr, v+1)
				})
			}
		}
	}
	mach.Run(bodies)
	if got := mach.Mem.Load(addr); got != 80 {
		t.Fatalf("counter = %d, want 80", got)
	}
	if rt.Metrics.LocksAcquired == 0 {
		t.Fatal("no locks acquired despite pre-armed ALPs")
	}
	if rt.Metrics.LockTimeouts != 0 {
		t.Fatalf("%d timeouts in a fault-free leased run (releases lost?)",
			rt.Metrics.LockTimeouts)
	}
}

// TestLivelockEscape: under total speculative poisoning (every
// transactional event spuriously aborts), the per-AB escape must engage
// and the run must still complete every operation.
func TestLivelockEscape(t *testing.T) {
	m, ab, sLoad, sStore := counterProgram(t)
	cfgM := htm.DefaultConfig()
	cfgM.Cores = 2
	mach := htm.New(cfgM)
	inj := chaos.NewInjector(chaos.Config{AbortRate: 1, Seed: 1}, cfgM.Cores)
	mach.SetFaultInjector(inj)
	comp := anchor.Compile(m, anchor.DefaultOptions())
	cfg := DefaultConfig(ModeStaggeredHW)
	cfg.MaxRetries = 3
	cfg.EscapeThreshold = 2
	cfg.EscapeCooldown = 8
	rt := New(mach, comp, cfg)
	addr := mach.Alloc.AllocLines(1)
	const incs = 15
	bodies := make([]func(*htm.Core), 2)
	for i := range bodies {
		bodies[i] = func(c *htm.Core) {
			th := rt.Thread(c.ID())
			for k := 0; k < incs; k++ {
				th.Atomic(c, ab, func(tc backend.Ctx) {
					v := tc.Load(sLoad, addr)
					tc.Store(sStore, addr, v+1)
				})
			}
		}
	}
	mach.Run(bodies)
	if got := mach.Mem.Load(addr); got != 2*incs {
		t.Fatalf("counter = %d, want %d", got, 2*incs)
	}
	if rt.Metrics.LivelockEscapes == 0 {
		t.Fatal("escape never engaged under AbortRate 1")
	}
	s := mach.Stats()
	if s.IrrevocableCommits != s.Commits {
		t.Fatalf("%d of %d commits irrevocable; expected all under total poisoning",
			s.IrrevocableCommits, s.Commits)
	}
	// The escape caps attempts at 1 during cooldown, so total aborts must
	// stay below the no-escape bound of MaxRetries per instance.
	if s.TotalAborts() >= uint64(2*incs*cfg.MaxRetries) {
		t.Fatalf("aborts = %d, escape never reduced retry burn (bound %d)",
			s.TotalAborts(), 2*incs*cfg.MaxRetries)
	}
}

// TestHardenedConfigCorrect: the full self-healing configuration must
// still run the contended counter to the right answer in every mode.
func TestHardenedConfigCorrect(t *testing.T) {
	for _, mode := range []Mode{ModeHTM, ModeAddrOnly, ModeStaggeredSW, ModeStaggeredHW} {
		m, ab, sLoad, sStore := counterProgram(t)
		cfgM := htm.DefaultConfig()
		cfgM.Cores = 4
		cfgM.HardwareCPC = mode != ModeStaggeredSW
		mach := htm.New(cfgM)
		comp := anchor.Compile(m, anchor.DefaultOptions())
		rt := New(mach, comp, HardenedConfig(mode))
		addr := mach.Alloc.AllocLines(1)
		bodies := make([]func(*htm.Core), 4)
		for i := range bodies {
			bodies[i] = func(c *htm.Core) {
				th := rt.Thread(c.ID())
				for k := 0; k < 30; k++ {
					th.Atomic(c, ab, func(tc backend.Ctx) {
						v := tc.Load(sLoad, addr)
						tc.Compute(300)
						tc.Store(sStore, addr, v+1)
					})
				}
			}
		}
		mach.Run(bodies)
		if got := mach.Mem.Load(addr); got != 120 {
			t.Fatalf("%v: counter = %d, want 120", mode, got)
		}
	}
}

// TestPollJitterDiffersFromFlatSpin: jittered polling must change the
// wait pattern (different poll cadence) while keeping the run correct.
func TestPollJitterDiffersFromFlatSpin(t *testing.T) {
	run := func(jitter bool) uint64 {
		cfg := DefaultConfig(ModeStaggeredHW)
		cfg.LockPollJitter = jitter
		m, ab, sLoad, sStore := counterProgram(t)
		cfgM := htm.DefaultConfig()
		cfgM.Cores = 4
		mach := htm.New(cfgM)
		comp := anchor.Compile(m, anchor.DefaultOptions())
		rt := New(mach, comp, cfg)
		addr := mach.Alloc.AllocLines(1)
		for tid := 0; tid < 4; tid++ {
			abc := rt.Thread(tid).ctx(ab)
			abc.activeAnchor = sLoad.ID
			abc.blockAddr = mem.LineOf(addr)
		}
		bodies := make([]func(*htm.Core), 4)
		for i := range bodies {
			bodies[i] = func(c *htm.Core) {
				th := rt.Thread(c.ID())
				for k := 0; k < 20; k++ {
					th.Atomic(c, ab, func(tc backend.Ctx) {
						v := tc.Load(sLoad, addr)
						tc.Compute(400)
						tc.Store(sStore, addr, v+1)
					})
				}
			}
		}
		mach.Run(bodies)
		if got := mach.Mem.Load(addr); got != 80 {
			t.Fatalf("jitter=%v: counter = %d, want 80", jitter, got)
		}
		return mach.Stats().Makespan
	}
	flat := run(false)
	jit := run(true)
	if flat == jit {
		t.Fatal("poll jitter produced an identical schedule to flat spin")
	}
}
