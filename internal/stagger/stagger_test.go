package stagger

import (
	"testing"

	"repro/internal/anchor"
	"repro/internal/backend"
	"repro/internal/htm"
	"repro/internal/mem"
	"repro/internal/prog"
)

// counterProgram builds a module with one atomic block that reads and
// writes a single shared word: load p->val, store p->val.
func counterProgram(t testing.TB) (*prog.Module, *prog.AtomicBlock, *prog.Site, *prog.Site) {
	t.Helper()
	m := prog.NewModule("counter")
	f := m.NewFunc("incr", "p")
	sLoad := f.Entry().Load(f.Param(0), "val")
	sStore := f.Entry().Store(f.Param(0), "val")
	ab := m.Atomic("incr", f)
	m.MustFinalize()
	return m, ab, sLoad, sStore
}

// arrayProgram builds an atomic block whose accesses hit varying slots of
// a shared array through a single static site (coarse-pattern source).
func arrayProgram(t testing.TB) (*prog.Module, *prog.AtomicBlock, *prog.Site, *prog.Site) {
	t.Helper()
	m := prog.NewModule("arr")
	f := m.NewFunc("update", "arr")
	sLoad := f.Entry().Load(f.Param(0), "slot")
	sStore := f.Entry().Store(f.Param(0), "slot")
	ab := m.Atomic("update", f)
	m.MustFinalize()
	return m, ab, sLoad, sStore
}

func newSim(t testing.TB, mode Mode, threads int, m *prog.Module) (*htm.Machine, *Runtime) {
	t.Helper()
	cfg := htm.DefaultConfig()
	cfg.Cores = threads
	cfg.HardwareCPC = mode != ModeStaggeredSW
	mach := htm.New(cfg)
	var comp *anchor.Compiled
	if m != nil {
		comp = anchor.Compile(m, anchor.DefaultOptions())
	}
	rt := New(mach, comp, DefaultConfig(mode))
	return mach, rt
}

func runCounter(t *testing.T, mode Mode, threads, incs int) (*htm.Machine, *Runtime, mem.Addr, *prog.AtomicBlock) {
	t.Helper()
	m, ab, sLoad, sStore := counterProgram(t)
	mach, rt := newSim(t, mode, threads, m)
	addr := mach.Alloc.AllocLines(1)
	bodies := make([]func(*htm.Core), threads)
	for i := range bodies {
		bodies[i] = func(c *htm.Core) {
			th := rt.Thread(c.ID())
			for k := 0; k < incs; k++ {
				th.Atomic(c, ab, func(tc backend.Ctx) {
					v := tc.Load(sLoad, addr)
					tc.Compute(300)
					tc.Store(sStore, addr, v+1)
				})
			}
		}
	}
	mach.Run(bodies)
	if got := mach.Mem.Load(addr); got != uint64(threads*incs) {
		t.Fatalf("%v: counter = %d, want %d", mode, got, threads*incs)
	}
	return mach, rt, addr, ab
}

func TestBaselineHTMCorrect(t *testing.T) {
	runCounter(t, ModeHTM, 4, 40)
}

func TestStaggeredHWCorrect(t *testing.T) {
	runCounter(t, ModeStaggeredHW, 4, 40)
}

func TestStaggeredSWCorrect(t *testing.T) {
	runCounter(t, ModeStaggeredSW, 4, 40)
}

func TestAddrOnlyCorrect(t *testing.T) {
	runCounter(t, ModeAddrOnly, 4, 40)
}

// TestPreciseModeActivates: a stable conflicting address plus stable PC
// must drive the policy into precise mode with the right anchor and line.
func TestPreciseModeActivates(t *testing.T) {
	mach, rt, addr, ab := runCounter(t, ModeStaggeredHW, 8, 50)
	_ = mach
	if rt.Metrics.ActPrecise == 0 {
		t.Fatalf("precise activations = 0; metrics: %+v", rt.Metrics)
	}
	// Armed ALPs must have fired: locks were taken on the hot line.
	// (Final ABContext state may be disarmed again — the policy
	// deliberately probes for restored concurrency once quiet.)
	if rt.Metrics.LocksAcquired == 0 {
		t.Fatal("precise ALPs armed but no advisory lock ever acquired")
	}
	_, _ = addr, ab
}

// TestStaggeredReducesAborts is the core claim: on the high-contention
// counter, staggered transactions must suffer fewer aborts per commit
// than the plain HTM baseline.
func TestStaggeredReducesAborts(t *testing.T) {
	base, _, _, _ := runCounter(t, ModeHTM, 8, 50)
	stag, rt, _, _ := runCounter(t, ModeStaggeredHW, 8, 50)
	baseStats, stagStats := base.Stats(), stag.Stats()
	b := baseStats.AbortsPerCommit()
	s := stagStats.AbortsPerCommit()
	if s >= b {
		t.Fatalf("aborts/commit: staggered %.2f !< baseline %.2f (locks=%d)",
			s, b, rt.Metrics.LocksAcquired)
	}
	if rt.Metrics.LocksAcquired == 0 {
		t.Fatal("staggered run never acquired an advisory lock")
	}
}

// TestAccuracyPerfectWithoutAliasing: the tiny program has 2 sites, so
// 12-bit PC truncation cannot alias them and every conflict abort must be
// traced to the true anchor.
func TestAccuracyPerfectWithoutAliasing(t *testing.T) {
	_, rt, _, _ := runCounter(t, ModeStaggeredHW, 8, 50)
	if rt.Metrics.AccTotal == 0 {
		t.Skip("no conflict aborts")
	}
	if acc := rt.Metrics.Accuracy(); acc != 1.0 {
		t.Fatalf("accuracy = %.3f, want 1.0 (hits=%d total=%d)",
			acc, rt.Metrics.AccHits, rt.Metrics.AccTotal)
	}
}

// TestSWModeResolvesAnchors: without hardware CPC the software map must
// still identify anchors for recurring conflicts.
func TestSWModeResolvesAnchors(t *testing.T) {
	_, rt, _, _ := runCounter(t, ModeStaggeredSW, 8, 50)
	if rt.Metrics.ActPrecise == 0 {
		t.Fatalf("SW mode never reached precise mode: %+v", rt.Metrics)
	}
}

// TestCoarseModeOnVaryingAddresses: conflicts through one PC across many
// lines must select coarse-grain mode (wild-card address), not precise.
func TestCoarseModeOnVaryingAddresses(t *testing.T) {
	m, ab, sLoad, sStore := arrayProgram(t)
	const threads = 8
	mach, rt := newSim(t, ModeStaggeredHW, threads, m)
	// 4 slots on distinct lines, visited round-robin with per-thread
	// offsets so conflicting addresses keep changing.
	slots := make([]mem.Addr, 4)
	for i := range slots {
		slots[i] = mach.Alloc.AllocLines(1)
	}
	bodies := make([]func(*htm.Core), threads)
	for i := range bodies {
		tid := i
		bodies[i] = func(c *htm.Core) {
			th := rt.Thread(c.ID())
			for k := 0; k < 60; k++ {
				a := slots[(k+tid)%len(slots)]
				th.Atomic(c, ab, func(tc backend.Ctx) {
					v := tc.Load(sLoad, a)
					tc.Compute(300)
					tc.Store(sStore, a, v+1)
				})
			}
		}
	}
	mach.Run(bodies)
	var sum uint64
	for _, s := range slots {
		sum += mach.Mem.Load(s)
	}
	if sum != threads*60 {
		t.Fatalf("total = %d, want %d", sum, threads*60)
	}
	if rt.Metrics.ActCoarse == 0 {
		t.Fatalf("coarse activations = 0; metrics %+v", rt.Metrics)
	}
}

// TestAdvisoryLockDoesNotAbortHolder: waiting on and releasing advisory
// locks must never abort the transactions involved (NT accesses only).
func TestAdvisoryLockDoesNotAbortHolder(t *testing.T) {
	m, ab, sLoad, sStore := counterProgram(t)
	mach, rt := newSim(t, ModeStaggeredHW, 2, m)
	addr := mach.Alloc.AllocLines(1)
	// Pre-arm both threads' contexts in precise mode (with enough
	// recorded history and contention pressure that the adaptive policy
	// keeps them armed for the short run).
	for tid := 0; tid < 2; tid++ {
		th := rt.Thread(tid)
		abc := th.ctx(ab)
		abc.activeAnchor = sLoad.ID
		abc.blockAddr = mem.LineOf(addr)
		abc.confAbortsW = 64
		for i := 0; i < 6; i++ {
			abc.appendHistory(rt.cfg.HistLen,
				abortRecord{anchorSite: sLoad.ID, addr: mem.LineOf(addr)})
		}
	}
	bodies := make([]func(*htm.Core), 2)
	for i := range bodies {
		bodies[i] = func(c *htm.Core) {
			th := rt.Thread(c.ID())
			for k := 0; k < 20; k++ {
				th.Atomic(c, ab, func(tc backend.Ctx) {
					v := tc.Load(sLoad, addr)
					tc.Compute(2000)
					tc.Store(sStore, addr, v+1)
				})
			}
		}
	}
	mach.Run(bodies)
	if got := mach.Mem.Load(addr); got != 40 {
		t.Fatalf("counter = %d, want 40", got)
	}
	s := mach.Stats()
	if rt.Metrics.LocksAcquired == 0 {
		t.Fatal("no advisory locks acquired despite pre-armed ALPs")
	}
	// With threads serializing on the advisory lock most of the time
	// (the test-and-set lock is unfair, so phases of monopolization and
	// adaptive disarm leave a residue), conflicts must stay well below
	// one per commit.
	if s.Aborts[htm.AbortConflict] >= s.Commits/2 {
		t.Fatalf("conflict aborts = %d of %d commits with advisory serialization",
			s.Aborts[htm.AbortConflict], s.Commits)
	}
	if s.WaitCycles[htm.WaitLock] == 0 {
		t.Fatal("no lock wait recorded; locks never contended")
	}
}

// TestLockTimeout: a very small timeout must let waiters proceed without
// the lock rather than blocking forever.
func TestLockTimeout(t *testing.T) {
	m, ab, sLoad, sStore := counterProgram(t)
	cfgM := htm.DefaultConfig()
	cfgM.Cores = 2
	mach := htm.New(cfgM)
	comp := anchor.Compile(m, anchor.DefaultOptions())
	cfg := DefaultConfig(ModeStaggeredHW)
	cfg.LockTimeout = 100 // tiny
	rt := New(mach, comp, cfg)
	addr := mach.Alloc.AllocLines(1)
	for tid := 0; tid < 2; tid++ {
		abc := rt.Thread(tid).ctx(ab)
		abc.activeAnchor = sLoad.ID
		abc.blockAddr = mem.LineOf(addr)
	}
	bodies := make([]func(*htm.Core), 2)
	for i := range bodies {
		bodies[i] = func(c *htm.Core) {
			th := rt.Thread(c.ID())
			for k := 0; k < 10; k++ {
				th.Atomic(c, ab, func(tc backend.Ctx) {
					v := tc.Load(sLoad, addr)
					tc.Compute(5000)
					tc.Store(sStore, addr, v+1)
				})
			}
		}
	}
	mach.Run(bodies)
	if got := mach.Mem.Load(addr); got != 20 {
		t.Fatalf("counter = %d, want 20 (timeout broke atomicity?)", got)
	}
	if rt.Metrics.LockTimeouts == 0 {
		t.Fatal("expected lock timeouts with a 100-cycle deadline")
	}
}

// TestALPOverheadCharged: instrumented modes must execute ALP visits and
// charge µ-ops for them; the baseline must not.
func TestALPOverheadCharged(t *testing.T) {
	_, rtBase, _, _ := runCounter(t, ModeHTM, 2, 20)
	_, rtStag, _, _ := runCounter(t, ModeStaggeredHW, 2, 20)
	if rtBase.Metrics.ALPVisits != 0 {
		t.Fatal("baseline executed ALPs")
	}
	if rtStag.Metrics.ALPVisits == 0 {
		t.Fatal("staggered mode executed no ALPs")
	}
}

// TestTrainingModeFirst: before thresholds are crossed the policy stays
// in training (no armed anchor).
func TestTrainingModeFirst(t *testing.T) {
	m, ab, sLoad, _ := counterProgram(t)
	mach, rt := newSim(t, ModeStaggeredHW, 1, m)
	_ = mach
	th := rt.Thread(0)
	abc := th.ctx(ab)
	info := htm.AbortInfo{
		Reason:   htm.AbortConflict,
		ConfAddr: 0x10000,
		ConfPC:   sLoad.PC & 0xFFF,
		HasPC:    true,
		TrueSite: sLoad.ID,
	}
	tc := &TxCtx{th: th, c: mach.Core(0), abc: abc}
	abc.confAbortsW = 8 // contention gate: frequent conflicts observed
	rt.activate(tc, abc, info, 0)
	if abc.ActiveAnchor() != 0 {
		t.Fatal("policy armed an ALP on the first abort (no history yet)")
	}
	if rt.Metrics.ActTraining != 1 {
		t.Fatalf("training activations = %d, want 1", rt.Metrics.ActTraining)
	}
	// After enough recurrences, precise mode kicks in.
	for i := 0; i < 4; i++ {
		rt.activate(tc, abc, info, 0)
	}
	if abc.ActiveAnchor() != sLoad.ID || abc.BlockAddr() != mem.Addr(0x10000) {
		t.Fatalf("expected precise mode on anchor %d, got anchor=%d addr=%#x",
			sLoad.ID, abc.ActiveAnchor(), abc.BlockAddr())
	}
}

// TestLockingPromotion drives the policy with a recurring PC but varying
// addresses until it promotes to the parent anchor.
func TestLockingPromotion(t *testing.T) {
	// Build a parent/child structure: root loads q->head (anchor A), then
	// head->next (anchor B, parent A by DS edge).
	m := prog.NewModule("promo")
	f := m.NewFunc("op", "q")
	head, sHead := f.Entry().LoadPtr("head", f.Param(0), "head")
	sNode := f.Entry().Load(head, "v")
	ab := m.Atomic("op", f)
	m.MustFinalize()

	cfgM := htm.DefaultConfig()
	cfgM.Cores = 1
	mach := htm.New(cfgM)
	comp := anchor.Compile(m, anchor.DefaultOptions())
	cfg := DefaultConfig(ModeStaggeredHW)
	cfg.PromThr = 2
	rt := New(mach, comp, cfg)
	th := rt.Thread(0)
	abc := th.ctx(ab)
	tc := &TxCtx{th: th, c: mach.Core(0), abc: abc}

	// Conflicts always resolve to anchor sNode but addresses vary, and
	// retry chains run deep (the wasted-work signal coarse mode needs).
	abc.confAbortsW = 16
	abc.deepW = 8
	for i := 0; i < 20; i++ {
		info := htm.AbortInfo{
			Reason:   htm.AbortConflict,
			ConfAddr: mem.Addr(0x10000 + i*64),
			ConfPC:   sNode.PC & 0xFFF,
			HasPC:    true,
			TrueSite: sNode.ID,
		}
		rt.activate(tc, abc, info, cfg.PromThr) // at the promotion threshold
	}
	if abc.ActiveAnchor() != sHead.ID {
		t.Fatalf("expected promotion to parent anchor %d, got %d (coarse=%d promote=%d)",
			sHead.ID, abc.ActiveAnchor(), rt.Metrics.ActCoarse, rt.Metrics.ActPromote)
	}
	if abc.BlockAddr() != 0 {
		t.Fatal("promoted ALP must be coarse (wild-card address)")
	}
	if rt.Metrics.ActPromote == 0 {
		t.Fatal("no promotion recorded")
	}
}

// TestDeterministicRuns: identical staggered runs produce identical
// statistics.
func TestDeterministicRuns(t *testing.T) {
	run := func() (htm.Stats, Metrics) {
		mach, rt, _, _ := runCounter(t, ModeStaggeredHW, 6, 30)
		return mach.Stats(), rt.Metrics
	}
	s1, m1 := run()
	s2, m2 := run()
	if s1.Makespan != s2.Makespan || s1.Commits != s2.Commits ||
		s1.TotalAborts() != s2.TotalAborts() || m1 != m2 {
		t.Fatalf("nondeterministic: %+v %+v vs %+v %+v", s1.CoreStats, m1, s2.CoreStats, m2)
	}
}

// TestAddrOnlyArmsAtBlockStart: after training, AddrOnly acquires the
// lock at transaction begin (no anchors involved).
func TestAddrOnlyArmsAtBlockStart(t *testing.T) {
	_, rt, _, _ := runCounter(t, ModeAddrOnly, 8, 50)
	if rt.Metrics.LocksAcquired == 0 {
		t.Fatalf("AddrOnly never locked: %+v", rt.Metrics)
	}
	if rt.Metrics.ALPVisits != 0 {
		t.Fatal("AddrOnly must not execute per-site ALPs")
	}
}

func TestModeString(t *testing.T) {
	names := map[Mode]string{
		ModeHTM:         "HTM",
		ModeAddrOnly:    "AddrOnly",
		ModeStaggeredSW: "Staggered+SW",
		ModeStaggeredHW: "Staggered",
	}
	for m, want := range names {
		if m.String() != want {
			t.Errorf("%d.String() = %q, want %q", m, m.String(), want)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	mach := htm.New(htm.DefaultConfig())
	bad := []func(*Config){
		func(c *Config) { c.HistLen = 0 },
		func(c *Config) { c.NumLocks = 3 },
		func(c *Config) { c.SWMapWords = 100 },
		func(c *Config) { c.MaxRetries = 0 },
	}
	for i, mut := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: want panic", i)
				}
			}()
			cfg := DefaultConfig(ModeHTM)
			mut(&cfg)
			New(mach, nil, cfg)
		}()
	}
}
