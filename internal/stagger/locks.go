package stagger

import (
	"repro/internal/htm"
	"repro/internal/mem"
)

// Advisory locks live in ordinary simulated memory but are only ever
// touched with nontransactional loads and stores, so acquiring, spinning
// on, or releasing one never joins any transaction's speculative set —
// the isolation escape the paper requires from the hardware. Each lock
// record occupies its own cache line: word 0 is the owner word, word 1 is
// a contention flag set by waiters.
//
// Two owner-word layouts exist. The paper-faithful default stores owner+1
// (or 0 when free). With Config.LockLease set, the word instead packs a
// lease: (expiry << lockOwnerBits) | owner+1, written by the acquiring
// CAS in one shot so a waiter never observes an owner without its lease.
// A waiter that finds the lease expired may reclaim the lock by CAS,
// so a lock word orphaned by a dead holder costs each waiter at most one
// lease period once — instead of serializing every later transaction
// behind a full LockTimeout spin. Because the locks are advisory, a
// reclamation that races a slow-but-alive holder is still correct: the
// old holder's release CAS fails harmlessly and both transactions fall
// back on the HTM's own conflict detection.

// lockOwnerBits is the width of the owner field in a leased lock word.
// Cores are capped at 32, so owner+1 fits with room to spare.
const lockOwnerBits = 6

// packLock builds a leased owner word.
func packLock(tid int, expiry uint64) uint64 {
	return expiry<<lockOwnerBits | uint64(tid) + 1
}

// lockExpiry extracts the lease expiry from a leased owner word.
func lockExpiry(w uint64) uint64 { return w >> lockOwnerBits }

// lockFor maps a data address to its advisory lock word (a static set of
// pre-allocated locks selected by address hash, as in AcquireLockFor).
func (rt *Runtime) lockFor(a mem.Addr) mem.Addr {
	line := uint64(mem.LineOf(a)) / mem.LineSize
	idx := hash64(line) & uint64(rt.cfg.NumLocks-1)
	return rt.locksBase + mem.Addr(idx)*mem.LineSize
}

// acquireLockFor blocks (with timeout) until the advisory lock chosen by
// addr is held by this transaction. Waiting advances only virtual time;
// the spin uses nontransactional loads so the eventual release by the
// owner cannot abort us.
func (t *TxCtx) acquireLockFor(addr mem.Addr) {
	rt := t.th.rt
	// Lock-acquire ordering is a pure scheduling decision point: under an
	// adversarial scheduler the engine may hand the token to a competing
	// core right here, exploring acquisition races the fixed
	// minimum-virtual-time order can never produce.
	t.c.SchedPoint()
	lock := rt.lockFor(addr)
	for _, held := range t.locks {
		if held == lock {
			return // hashing aliased onto a lock we already hold
		}
	}
	deadline := t.c.Now() + rt.cfg.LockTimeout
	announced := false
	polls := 0
	for {
		w := t.c.NTLoad(lock)
		switch {
		case w == 0:
			var stamp uint64
			if rt.cfg.LockLease != 0 {
				stamp = packLock(t.th.tid, t.c.Now()+rt.cfg.LockLease)
			} else {
				stamp = uint64(t.th.tid) + 1
			}
			if t.c.NTCas(lock, 0, stamp) {
				t.noteAcquired(lock, stamp)
				return
			}
		case rt.cfg.LockLease != 0 && t.c.Now() >= lockExpiry(w):
			// The holder's lease expired without a release: it is dead or
			// stalled past any useful holding period. Reclaim by CAS on
			// the exact stale word so concurrent reclaimers cannot both
			// win.
			stamp := packLock(t.th.tid, t.c.Now()+rt.cfg.LockLease)
			if t.c.NTCas(lock, w, stamp) {
				rt.Metrics.LocksReclaimed++
				t.noteAcquired(lock, stamp)
				return
			}
		}
		if !announced {
			// Tell the holder someone waited, so its commit knows the
			// lock was contended.
			t.c.NTStore(lock+mem.WordSize, 1)
			announced = true
		}
		if t.c.Now() >= deadline {
			rt.Metrics.LockTimeouts++
			return // proceed without the lock (purely advisory)
		}
		t.c.SpinWait(t.pollWait(lock, polls), htm.WaitLock)
		polls++
	}
}

// noteAcquired records a held lock and the exact word it was stamped
// with, so release can check ownership under the lease scheme.
func (t *TxCtx) noteAcquired(lock mem.Addr, stamp uint64) {
	t.locks = append(t.locks, lock)
	t.lockVals = append(t.lockVals, stamp)
	t.lockAt = append(t.lockAt, t.c.Now())
	t.th.rt.Metrics.LocksAcquired++
	t.th.rt.abMetrics(t.abc.ab).Locks++
	t.c.Annotate(htm.TraceLockAcquire, lock)
}

// pollWait returns the next poll interval: the fixed LockSpin of the
// paper's unfair flat spinlock by default, or LockSpin plus deterministic
// capped-exponential jitter when LockPollJitter is set, so a releasing
// thread cannot re-acquire ahead of every waiter's identical poll cadence
// indefinitely (the monopolization noted in DESIGN.md).
func (t *TxCtx) pollWait(lock mem.Addr, polls int) uint64 {
	spin := t.th.rt.cfg.LockSpin
	if !t.th.rt.cfg.LockPollJitter {
		return spin
	}
	window := spin << uint(min(polls, 4))
	j := hash64(uint64(lock) ^ uint64(t.th.tid)<<40 ^ uint64(polls)<<20)
	return spin + j%window
}

// lockContended reports whether any thread waited on a held lock.
func (t *TxCtx) lockContended() bool {
	for _, lock := range t.locks {
		if t.c.NTLoad(lock+mem.WordSize) != 0 {
			return true
		}
	}
	return false
}

// releaseLock frees all held advisory locks, clearing the contention
// flags for the next holding periods. Under an installed LockFaults hook
// a release may be lost ("the holder died"), leaving the stale word for
// lease reclamation — or, without leases, for every waiter to time out
// against.
func (t *TxCtx) releaseLock() {
	rt := t.th.rt
	if len(t.locks) != 0 {
		// Release ordering is a decision point too: who runs between a
		// release and the next acquisition decides which waiter wins.
		t.c.SchedPoint()
	}
	// Hold-time accounting uses the holding period's end as one instant
	// (the clock does advance between the release stores of multiple
	// locks, but attributing that drift would make the metric depend on
	// release order for no insight).
	now := t.c.Now()
	for i, lock := range t.locks {
		rt.Metrics.LockHoldCycles += now - t.lockAt[i]
		// The annotation marks the end of this core's holding period even
		// when the release itself is dropped by a fault or lost to lease
		// reclamation — the exporter needs every hold interval closed.
		t.c.Annotate(htm.TraceLockRelease, lock)
		if rt.cfg.LockFaults != nil && rt.cfg.LockFaults.DropLockRelease(t.th.tid) {
			continue
		}
		if rt.cfg.LockLease != 0 {
			// Ownership-checked release: free the word only if it still
			// carries our stamp. A failed CAS means a waiter reclaimed an
			// expired lease from us; the lock is theirs now.
			if t.c.NTCas(lock, t.lockVals[i], 0) {
				t.c.NTStore(lock+mem.WordSize, 0)
			}
			continue
		}
		t.c.NTStore(lock+mem.WordSize, 0)
		t.c.NTStore(lock, 0)
	}
	t.locks = t.locks[:0]
	t.lockVals = t.lockVals[:0]
	t.lockAt = t.lockAt[:0]
}
