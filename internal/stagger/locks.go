package stagger

import (
	"repro/internal/htm"
	"repro/internal/mem"
)

// Advisory locks live in ordinary simulated memory but are only ever
// touched with nontransactional loads and stores, so acquiring, spinning
// on, or releasing one never joins any transaction's speculative set —
// the isolation escape the paper requires from the hardware. Each lock
// record occupies its own cache line: word 0 is the owner (core+1, or 0
// when free), word 1 is a contention flag set by waiters.

// lockFor maps a data address to its advisory lock word (a static set of
// pre-allocated locks selected by address hash, as in AcquireLockFor).
func (rt *Runtime) lockFor(a mem.Addr) mem.Addr {
	line := uint64(mem.LineOf(a)) / mem.LineSize
	idx := hash64(line) & uint64(rt.cfg.NumLocks-1)
	return rt.locksBase + mem.Addr(idx)*mem.LineSize
}

// acquireLockFor blocks (with timeout) until the advisory lock chosen by
// addr is held by this transaction. Waiting advances only virtual time;
// the spin uses nontransactional loads so the eventual release by the
// owner cannot abort us.
func (t *TxCtx) acquireLockFor(addr mem.Addr) {
	rt := t.th.rt
	lock := rt.lockFor(addr)
	for _, held := range t.locks {
		if held == lock {
			return // hashing aliased onto a lock we already hold
		}
	}
	deadline := t.c.Now() + rt.cfg.LockTimeout
	announced := false
	for {
		if t.c.NTLoad(lock) == 0 && t.c.NTCas(lock, 0, uint64(t.th.tid)+1) {
			t.locks = append(t.locks, lock)
			rt.Metrics.LocksAcquired++
			return
		}
		if !announced {
			// Tell the holder someone waited, so its commit knows the
			// lock was contended.
			t.c.NTStore(lock+mem.WordSize, 1)
			announced = true
		}
		if t.c.Now() >= deadline {
			rt.Metrics.LockTimeouts++
			return // proceed without the lock (purely advisory)
		}
		t.c.SpinWait(rt.cfg.LockSpin, htm.WaitLock)
	}
}

// lockContended reports whether any thread waited on a held lock.
func (t *TxCtx) lockContended() bool {
	for _, lock := range t.locks {
		if t.c.NTLoad(lock+mem.WordSize) != 0 {
			return true
		}
	}
	return false
}

// releaseLock frees all held advisory locks, clearing the contention
// flags for the next holding periods.
func (t *TxCtx) releaseLock() {
	for _, lock := range t.locks {
		t.c.NTStore(lock+mem.WordSize, 0)
		t.c.NTStore(lock, 0)
	}
	t.locks = t.locks[:0]
}
