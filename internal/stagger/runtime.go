package stagger

import (
	"fmt"

	"repro/internal/anchor"
	"repro/internal/backend"
	"repro/internal/htm"
	"repro/internal/mem"
	"repro/internal/prog"
)

// Runtime is the per-machine staggered-transactions runtime: it owns the
// advisory lock table (in simulated memory), the per-thread software
// anchor maps, and all ABContexts. Create one per simulation with New.
type Runtime struct {
	cfg  Config
	m    *htm.Machine
	comp *anchor.Compiled

	// locksBase is the advisory lock table: NumLocks lock records, one
	// cache line each (word 0: owner+1 or 0; word 1: contended flag).
	locksBase mem.Addr

	// swBase holds per-thread direct-mapped line→anchor maps (SW mode).
	swBase []mem.Addr

	threads []*Thread

	// Metrics (aggregated across threads; the simulation is serialized by
	// the engine so plain counters are safe).
	Metrics Metrics

	// Conflict locality histograms (Table 1's LA/LP columns): counts per
	// conflicting line address and per resolved anchor.
	confAddrs map[mem.Addr]int
	confPCs   map[uint32]int

	// confPairs histograms fully attributed conflicts: which (block,
	// site) aborted which (block, site). Pairs with an unattributed side
	// (runtime lock words, NT stores) are not recorded; the static
	// containment check of -verify-conflicts consumes this histogram.
	confPairs map[ConflictPair]int

	// perAB aggregates policy behaviour per atomic block (diagnostics).
	perAB map[int]*ABMetrics

	// recorder observes every transactional site access (conformance
	// checking); nil costs one branch per access.
	recorder SiteRecorder
}

// ConflictPair identifies one fully attributed conflict abort: the
// victim atomic block with its first access to the conflicting line
// (the machine's TrueSite ground truth), and the killer atomic block
// with the access that performed the kill. It is the dynamic half of
// the static may-conflict matrix (staticcheck.BuildMayConflict): every
// observed pair must fall inside the matrix, which `staggersim
// -verify-conflicts` asserts per workload and seed.
type ConflictPair struct {
	VictimAB   int
	VictimSite uint32
	KillerAB   int
	KillerSite uint32
}

// SiteRecorder observes dynamic site attribution: every TxCtx.Load or
// TxCtx.Store reports the executing atomic block, the static site the
// workload attributed the access to, and the dynamic access kind. The
// static/dynamic conformance checker implements this to detect IR drift
// (package staticcheck). The interface now lives in package backend so
// every backend can honor the same recorder; the alias keeps this
// package's historical name valid.
type SiteRecorder = backend.SiteRecorder

// ABMetrics summarizes one atomic block's behaviour across all threads.
// The cycle fields attribute the core-level breakdown (useful, wasted,
// waiting) to the atomic block — the per-txSite view of the same totals
// htm.CoreStats aggregates per core, computed as stat deltas around each
// block instance so the two views always reconcile.
type ABMetrics struct {
	Name                               string
	Commits, ConfAborts, Deep          uint64
	Precise, Coarse, Promote, Training uint64
	Locks                              uint64

	// Aborts counts aborted attempts of this block by abort reason
	// (indexed by htm.AbortReason).
	Aborts [htm.NumAbortReasons]uint64

	// UsefulCycles and WastedCycles split in-attempt time by outcome;
	// LockWaitCycles, BackoffCycles, and GlobalWaitCycles are this block's
	// share of the corresponding stall categories; NTTxCycles is its
	// advisory-lock (NT access) overhead inside attempts.
	UsefulCycles, WastedCycles                      uint64
	LockWaitCycles, BackoffCycles, GlobalWaitCycles uint64
	NTTxCycles                                      uint64
}

// PerAB returns per-atomic-block aggregates keyed by block ID.
func (rt *Runtime) PerAB() map[int]*ABMetrics { return rt.perAB }

// abMetrics returns (creating) the aggregate for an atomic block.
func (rt *Runtime) abMetrics(ab *prog.AtomicBlock) *ABMetrics {
	m, ok := rt.perAB[ab.ID]
	if !ok {
		m = &ABMetrics{Name: ab.Name}
		rt.perAB[ab.ID] = m
	}
	return m
}

// Metrics counts runtime-level events for the experiment harness.
type Metrics struct {
	// ALPVisits counts dynamic executions of instrumented ALPoints
	// ("anchs per txn" in Table 3 divides this by commits).
	ALPVisits uint64
	// LocksAcquired counts successful advisory lock acquisitions.
	LocksAcquired uint64
	// LockTimeouts counts acquisitions abandoned after LockTimeout.
	LockTimeouts uint64
	// LocksReclaimed counts stale advisory locks taken over after their
	// holder's lease expired without a release (LockLease mode).
	LocksReclaimed uint64
	// LivelockEscapes counts per-atomic-block escapes to fast irrevocable
	// promotion after repeated retry-budget exhaustion.
	LivelockEscapes uint64
	// Activations counts policy decisions by Figure 6 case.
	ActPrecise, ActCoarse, ActPromote, ActTraining uint64
	// AccHits/AccTotal measure anchor identification accuracy: how often
	// the runtime-resolved anchor equals the true anchor of the initial
	// access to the conflicting line (Table 3 "Accuracy").
	AccHits, AccTotal uint64
	// LockHoldCycles sums virtual cycles advisory locks were held, from
	// the acquiring CAS to the release (or to the end of the instance for
	// a lock lost to lease reclamation); LocksAcquired is the divisor for
	// the mean hold time.
	LockHoldCycles uint64
	// ContendedCommits counts commits whose advisory lock had at least one
	// waiter during the holding period — the serialization the locks
	// actually imposed, as opposed to holds nobody contended.
	ContendedCommits uint64
	// SWMisses counts conflicts whose line had no software map entry
	// (SW mode only).
	SWMisses uint64
}

// Accuracy returns the anchor identification accuracy in [0,1], or 1 if
// no conflict aborts were observed.
func (mt *Metrics) Accuracy() float64 {
	if mt.AccTotal == 0 {
		return 1
	}
	return float64(mt.AccHits) / float64(mt.AccTotal)
}

// New builds a runtime for machine m running module programs compiled to
// comp. comp may be nil only for ModeHTM and ModeAddrOnly.
func New(m *htm.Machine, comp *anchor.Compiled, cfg Config) *Runtime {
	cfg.validate()
	if cfg.Mode.Instrumented() && comp == nil {
		panic("stagger: instrumented mode requires compiled anchor tables")
	}
	rt := &Runtime{
		cfg: cfg, m: m, comp: comp,
		confAddrs: make(map[mem.Addr]int),
		confPCs:   make(map[uint32]int),
		confPairs: make(map[ConflictPair]int),
		perAB:     make(map[int]*ABMetrics),
	}
	rt.locksBase = m.Alloc.AllocLines(cfg.NumLocks)
	cores := m.Config().Cores
	rt.threads = make([]*Thread, cores)
	if cfg.Mode == ModeStaggeredSW {
		rt.swBase = make([]mem.Addr, cores)
		for i := range rt.swBase {
			rt.swBase[i] = m.Alloc.AllocLines(cfg.SWMapWords * mem.WordSize / mem.LineSize)
		}
	}
	return rt
}

// Config returns the runtime configuration.
func (rt *Runtime) Config() Config { return rt.cfg }

// Compiled returns the compiler output backing this runtime (may be nil).
func (rt *Runtime) Compiled() *anchor.Compiled { return rt.comp }

// SetSiteRecorder installs a dynamic site-attribution observer. Must be
// set before the run starts; nil disables recording.
func (rt *Runtime) SetSiteRecorder(r SiteRecorder) { rt.recorder = r }

// Backend adapts the runtime to the backend.Runtime interface without
// giving up the concrete Thread API internal callers rely on. The
// harness recovers the concrete runtime (for stagger-specific metrics)
// through the adapter's Unwrap.
func (rt *Runtime) Backend() backend.Runtime { return backendRuntime{rt} }

type backendRuntime struct{ rt *Runtime }

func (b backendRuntime) Thread(tid int) backend.Thread { return b.rt.Thread(tid) }

// Unwrap exposes the concrete runtime behind the adapter.
func (b backendRuntime) Unwrap() *Runtime { return b.rt }

// Thread returns the runtime context for core tid, creating it on first
// use. Each thread body must use only its own Thread.
func (rt *Runtime) Thread(tid int) *Thread {
	if rt.threads[tid] == nil {
		rt.threads[tid] = &Thread{
			rt:   rt,
			tid:  tid,
			ctxs: make(map[int]*ABContext),
		}
	}
	return rt.threads[tid]
}

// ConflictAddrs returns a copy of the conflicting-line-address histogram
// (conflict aborts per line), the data behind Table 1's LA column and the
// per-line abort attribution in the observability report.
func (rt *Runtime) ConflictAddrs() map[mem.Addr]int {
	out := make(map[mem.Addr]int, len(rt.confAddrs))
	for a, n := range rt.confAddrs {
		out[a] = n
	}
	return out
}

// ConflictPCs returns a copy of the conflicting-anchor histogram (conflict
// aborts per true initial-access anchor site), the data behind Table 1's
// LP column and the per-PC abort attribution in the observability report.
func (rt *Runtime) ConflictPCs() map[uint32]int {
	out := make(map[uint32]int, len(rt.confPCs))
	for s, n := range rt.confPCs {
		out[s] = n
	}
	return out
}

// ConflictPairs returns a copy of the conflicting-pair histogram: fully
// attributed (victim block/site, killer block/site) conflict aborts.
func (rt *Runtime) ConflictPairs() map[ConflictPair]int {
	out := make(map[ConflictPair]int, len(rt.confPairs))
	for p, n := range rt.confPairs {
		out[p] = n
	}
	return out
}

// Locality summarizes conflict-pattern locality over the whole run: la
// (lp) is true when the most frequent conflicting address (anchor)
// accounts for a majority of conflict aborts — the LA/LP columns of the
// paper's Table 1.
func (rt *Runtime) Locality() (la, lp bool) {
	return majority(rt.confAddrs), majority(rt.confPCs)
}

func majority[K comparable](hist map[K]int) bool {
	total, max := 0, 0
	for _, n := range hist {
		total += n
		if n > max {
			max = n
		}
	}
	return total > 0 && max*2 > total
}

// Thread is the per-thread runtime state.
type Thread struct {
	rt   *Runtime
	tid  int
	ctxs map[int]*ABContext
}

// ABContext is the per-thread, per-atomic-block structure of Figure 4:
// the currently active anchor, the probable conflicting address, the
// abort history, and the anchor table.
type ABContext struct {
	ab *prog.AtomicBlock
	u  *anchor.Unified

	// activeAnchor is the site ID of the armed ALP (0 = none).
	activeAnchor uint32
	// blockAddr is the expected conflicting line (0 = wild card /
	// coarse-grain).
	blockAddr mem.Addr

	history []abortRecord // ring, newest last

	// deepW counts instances whose retry chain got deep (near the
	// irrevocable cliff) — the wasted-work signal that justifies
	// whole-structure (coarse) locking.
	deepW int

	// commitsW and confAbortsW are decaying windowed counters that
	// implement the paper's decision (1): whether this atomic block is
	// contended enough to lock at all ("based on the frequency of
	// contention aborts", Section 2). Both halve when commitsW reaches
	// the window size.
	commitsW, confAbortsW int

	// irrevW counts irrevocable fallbacks in the current window; when it
	// crosses Config.EscapeThreshold the block enters livelock escape.
	irrevW int
	// escapeLeft is the remaining instances to run in escape mode (a
	// single speculative attempt, then irrevocable promotion).
	escapeLeft int
}

// noteCommit updates the contention-rate window.
func (c *ABContext) noteCommit(window int) {
	c.commitsW++
	if c.commitsW >= window {
		c.commitsW /= 2
		c.confAbortsW /= 2
		c.deepW /= 2
		c.irrevW /= 2
	}
}

// contended reports whether recent conflict-abort frequency justifies
// arming advisory locks (decision 1). The threshold — roughly two
// conflict aborts for every three commits — keeps moderately contended
// structures (vacation's trees) running unlocked while catching the
// pathological ones.
func (c *ABContext) contended() bool {
	return 3*c.confAbortsW >= 2*c.commitsW+4
}

// contendedHeavily sets the (stricter) bar for coarse-grain locking and
// promotion: those modes serialize whole structures, so they only pay
// when transactions are burning long retry chains (heading for the
// irrevocable cliff), not merely aborting once in a while.
func (c *ABContext) contendedHeavily() bool {
	return 8*c.deepW >= c.commitsW+8
}

type abortRecord struct {
	anchorSite uint32 // resolved anchor site ID (0 = none/empty entry)
	addr       mem.Addr
}

// ctx returns (creating on demand) the ABContext for an atomic block.
func (th *Thread) ctx(ab *prog.AtomicBlock) *ABContext {
	c, ok := th.ctxs[ab.ID]
	if !ok {
		c = &ABContext{ab: ab}
		if th.rt.comp != nil {
			c.u = th.rt.comp.Unified[ab]
			if c.u == nil {
				panic(fmt.Sprintf("stagger: atomic block %q not compiled", ab.Name))
			}
		}
		th.ctxs[ab.ID] = c
	}
	return c
}

// ActiveAnchor exposes the armed anchor for tests and diagnostics.
func (c *ABContext) ActiveAnchor() uint32 { return c.activeAnchor }

// BlockAddr exposes the expected conflict address (0 = coarse).
func (c *ABContext) BlockAddr() mem.Addr { return c.blockAddr }

// Atomic executes body as one instance of atomic block ab on core c,
// applying the runtime's mode: baseline retry loop, AddrOnly's fixed
// head-of-block lock, or full staggered transactions with ALPs armed by
// the locking policy. The body receives this runtime's *TxCtx through
// the backend.Ctx interface (the arena contract all backends share).
func (th *Thread) Atomic(c *htm.Core, ab *prog.AtomicBlock, body func(backend.Ctx)) {
	if c.ID() != th.tid {
		panic("stagger: thread used on wrong core")
	}
	abc := th.ctx(ab)
	tc := &TxCtx{th: th, c: c, abc: abc}
	opts := htm.AtomicOpts{
		MaxRetries:         th.rt.cfg.MaxRetries,
		BackoffBase:        th.rt.cfg.BackoffBase,
		BackoffExp:         th.rt.cfg.BackoffExp,
		BackoffCap:         th.rt.cfg.BackoffCap,
		RuntimePC:          0xFFFF0,
		UnsafeEarlyRelease: th.rt.cfg.UnsafeEarlyGlobalRelease,
	}
	if abc.escapeLeft > 0 {
		// Livelock escape: this block has been exhausting its retry
		// budget (typically under injected faults); spend one speculative
		// attempt, then promote straight to irrevocable mode, whose
		// global-lock serialization guarantees progress.
		opts.MaxRetries = 1
		abc.escapeLeft--
	}
	hooks := htm.TxHooks{
		OnBegin: func(attempt int) {
			// Restore the armed anchor for this instance (the paper
			// clears activeAnchor inside the transaction after locking
			// and restores it at the next begin).
			tc.armedAnchor = abc.activeAnchor
			tc.locks = tc.locks[:0]
			tc.lockVals = tc.lockVals[:0]
			tc.lockAt = tc.lockAt[:0]
			if th.rt.cfg.Mode == ModeAddrOnly && abc.blockAddr != 0 {
				// AddrOnly: one fixed ALP at the start of the block,
				// precise mode only.
				tc.acquireLockFor(abc.blockAddr)
				tc.armedAnchor = 0
			}
		},
		OnAbort: func(info htm.AbortInfo, attempt int) {
			th.rt.abMetrics(ab).Aborts[info.Reason]++
			tc.releaseLock()
			th.rt.activate(tc, abc, info, attempt)
		},
		OnCommit: func(irrevocable bool) {
			th.rt.abMetrics(ab).Commits++
			abc.noteCommit(th.rt.cfg.RateWindow)
			contended := len(tc.locks) != 0 && tc.lockContended()
			if contended {
				th.rt.Metrics.ContendedCommits++
			}
			noContention := len(tc.locks) != 0 && !contended
			tc.releaseLock()
			if noContention {
				// Shift an empty record into the history to decay stale
				// conflict patterns and avoid over-locking (Section 5.2):
				// once the pattern has decayed below threshold, the ALP
				// deactivates and full concurrency resumes.
				abc.appendHistory(th.rt.cfg.HistLen, abortRecord{})
				if (abc.activeAnchor != 0 || abc.blockAddr != 0) &&
					abc.countAnchor(abc.activeAnchor) <= th.rt.cfg.PCThr &&
					abc.countAddr(abc.blockAddr) <= th.rt.cfg.AddrThr {
					abc.activeAnchor = 0
					abc.blockAddr = 0
				}
			}
			// Rate-based re-check of decision (1): if conflict aborts are
			// no longer frequent — typically BECAUSE the advisory lock is
			// working — disarm and probe whether full concurrency is safe
			// again. Re-arming is cheap if contention returns.
			if (abc.activeAnchor != 0 || abc.blockAddr != 0) &&
				!abc.contended() && !abc.contendedHeavily() {
				abc.activeAnchor = 0
				abc.blockAddr = 0
			}
		},
		OnIrrevocable: func() {
			// Irrevocable mode is already globally serialized; drop any
			// advisory lock state for this instance.
			tc.armedAnchor = 0
			abc.irrevW++
			if thr := th.rt.cfg.EscapeThreshold; thr > 0 &&
				abc.escapeLeft == 0 && abc.irrevW >= thr {
				abc.escapeLeft = th.rt.cfg.EscapeCooldown
				abc.irrevW = 0
				th.rt.Metrics.LivelockEscapes++
			}
		},
	}
	// Snapshot the core's cycle counters around the instance: the deltas
	// are this atomic block's share of the machine-wide breakdown (pure
	// accounting on already-maintained counters — no simulated events, so
	// the schedule and all virtual times are unchanged).
	st := c.Stats()
	useful0, wasted0 := st.UsefulTxCycles, st.WastedTxCycles
	lock0 := st.WaitCycles[htm.WaitLock]
	back0 := st.WaitCycles[htm.WaitBackoff]
	glob0 := st.WaitCycles[htm.WaitGlobal]
	nt0 := st.NTTxCycles
	// Tag the core with this block for the duration of the instance, so
	// conflicts it inflicts on others are attributed to the right block
	// (pure bookkeeping; no simulated events).
	c.SetABTag(ab.ID)
	c.Atomic(opts, hooks, func(core *htm.Core) {
		body(tc)
	})
	c.SetABTag(0)
	abm := th.rt.abMetrics(ab)
	abm.UsefulCycles += st.UsefulTxCycles - useful0
	abm.WastedCycles += st.WastedTxCycles - wasted0
	abm.LockWaitCycles += st.WaitCycles[htm.WaitLock] - lock0
	abm.BackoffCycles += st.WaitCycles[htm.WaitBackoff] - back0
	abm.GlobalWaitCycles += st.WaitCycles[htm.WaitGlobal] - glob0
	abm.NTTxCycles += st.NTTxCycles - nt0
}
