package stagger

import (
	"repro/internal/htm"
	"repro/internal/mem"
	"repro/internal/prog"
)

// TxCtx is the access context handed to the body of an atomic block. All
// transactional data accesses go through it so that ALPoint
// instrumentation fires at the compiler-selected anchors. One TxCtx
// serves all retry attempts of one atomic-block instance.
type TxCtx struct {
	th  *Thread
	c   *htm.Core
	abc *ABContext

	// armedAnchor is this instance's pending ALP (site ID); cleared once
	// the transaction's lock budget (MaxLocksPerTx) is spent.
	armedAnchor uint32
	// locks are the advisory lock words currently held; lockVals holds
	// the exact stamp each was acquired with (for ownership-checked
	// release under the lease scheme); lockAt holds each acquisition's
	// virtual time, for the hold-time metrics.
	locks    []mem.Addr
	lockVals []uint64
	lockAt   []uint64
}

// Core returns the simulated core, for nontransactional side channels
// (e.g. labyrinth's privatizing grid snapshot).
func (t *TxCtx) Core() *htm.Core { return t.c }

// Op attaches an opaque operation descriptor to the current atomic-block
// instance for the serializability oracle (see htm.Core.SetOpTag). A
// cheap no-op when no oracle is installed.
func (t *TxCtx) Op(tag any) { t.c.SetOpTag(tag) }

// Compute models n µ-ops of non-memory work inside the atomic block.
func (t *TxCtx) Compute(uops int) { t.c.Compute(uops) }

// Load performs the transactional load of site s at address a, running
// the site's ALPoint first when the compiler instrumented it.
func (t *TxCtx) Load(s *prog.Site, a mem.Addr) uint64 {
	if r := t.th.rt.recorder; r != nil {
		r.RecordAccess(t.abc.ab, s, false)
	}
	if t.th.rt.cfg.Mode.Instrumented() && t.th.rt.comp.IsALP[s.ID] {
		t.alpoint(s, a)
	}
	return t.c.Load(s.PC, s.ID, a)
}

// Store performs the transactional store of site s.
func (t *TxCtx) Store(s *prog.Site, a mem.Addr, v uint64) {
	if r := t.th.rt.recorder; r != nil {
		r.RecordAccess(t.abc.ab, s, true)
	}
	if t.th.rt.cfg.Mode.Instrumented() && t.th.rt.comp.IsALP[s.ID] {
		t.alpoint(s, a)
	}
	t.c.Store(s.PC, s.ID, a, v)
}

// alpoint is the runtime's ALPoint function (Figure 5): when the site is
// the armed anchor and the address matches (or the ALP is coarse-grain),
// acquire the advisory lock chosen by the data address.
func (t *TxCtx) alpoint(s *prog.Site, a mem.Addr) {
	rt := t.th.rt
	rt.Metrics.ALPVisits++
	// An inactive ALP costs one test and a non-taken branch.
	t.c.Compute(1)

	if rt.cfg.Mode == ModeStaggeredSW {
		t.swRecord(s, a)
	}

	if t.armedAnchor != s.ID {
		return
	}
	if t.abc.blockAddr != 0 && mem.LineOf(a) != t.abc.blockAddr {
		return // precise mode: address mismatch
	}
	t.acquireLockFor(a)
	if len(t.locks) >= rt.cfg.MaxLocksPerTx {
		t.armedAnchor = 0 // lock budget spent for this transaction
	}
}

// swRecord maintains the per-thread software line→anchor map of
// Section 4 ("Software Alternatives to Conflicting PC"): at every ALP the
// runtime sets M(line(a)) to the anchor ID using nontransactional
// accesses, if the slot does not already carry it.
func (t *TxCtx) swRecord(s *prog.Site, a mem.Addr) {
	slot := t.th.swSlot(a)
	if t.c.NTLoad(slot) != uint64(s.ID) {
		t.c.NTStore(slot, uint64(s.ID))
	}
}

// swSlot returns the software-map slot for a line address.
func (th *Thread) swSlot(a mem.Addr) mem.Addr {
	line := uint64(mem.LineOf(a)) / mem.LineSize
	idx := hash64(line) & uint64(th.rt.cfg.SWMapWords-1)
	return th.rt.swBase[th.tid] + mem.Addr(idx*mem.WordSize)
}

// swLookup resolves a conflicting line through the software map,
// nontransactionally (used by the abort handler in SW mode).
func (th *Thread) swLookup(c *htm.Core, a mem.Addr) uint32 {
	return uint32(c.NTLoad(th.swSlot(a)))
}

// hash64 is a 64-bit mix (splitmix64 finalizer) used for lock and map
// slot selection.
func hash64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
