package stagger

// This file registers the HTM-family backends in the concurrency-control
// arena (package backend): the plain best-effort HTM baseline, the full
// staggered-transactions runtime, and the capacity-limited HTM variant.
// All three are the same Runtime under different configurations; the
// software alternatives (e.g. internal/backend/occ) register separately.

import (
	"fmt"

	"repro/internal/anchor"
	"repro/internal/backend"
	"repro/internal/htm"
)

// DefaultLimitedCapacity is the speculative-line capacity the "limited"
// backend imposes when no explicit capacity is configured: 16 lines, a
// small dedicated transactional buffer in the spirit of early
// best-effort HTMs, far below the 1024-line L1 the paper models.
const DefaultLimitedCapacity = 16

func init() {
	backend.Register(backend.Info{
		Name:    "htm",
		Summary: "plain best-effort HTM: retry loop + irrevocable fallback, no advisory locks",
		New: func(m *htm.Machine, comp *anchor.Compiled, opts backend.Options) (backend.Runtime, error) {
			return newArenaRuntime("htm", m, comp, opts)
		},
	})
	backend.Register(backend.Info{
		Name:    "staggered",
		Summary: "staggered transactions: advisory locks armed at compiler-selected anchors",
		New: func(m *htm.Machine, comp *anchor.Compiled, opts backend.Options) (backend.Runtime, error) {
			return newArenaRuntime("staggered", m, comp, opts)
		},
	})
	backend.Register(backend.Info{
		Name:    "limited",
		Summary: "capacity-limited HTM: speculative set bounded to -capacity lines (default 16)",
		PrepareMachine: func(cfg *htm.Config, opts backend.Options) {
			cfg.MaxSpecLines = opts.Capacity
			if cfg.MaxSpecLines == 0 {
				cfg.MaxSpecLines = DefaultLimitedCapacity
			}
		},
		New: func(m *htm.Machine, comp *anchor.Compiled, opts backend.Options) (backend.Runtime, error) {
			return newArenaRuntime("limited", m, comp, opts)
		},
	})
}

// ResolveMode maps a backend name and a requested runtime mode to the
// mode the backend actually runs. "htm" always runs the uninstrumented
// baseline; "staggered" upgrades a plain-HTM request to full staggered
// transactions but honors an explicit variant (AddrOnly, Staggered+SW);
// "limited" runs whatever mode was requested on the capacity-limited
// machine, so staggering can be evaluated as capacity shrinks. The
// harness applies this before building the machine, because the
// machine's conflicting-PC hardware depends on the resolved mode.
func ResolveMode(backendName string, m Mode) Mode {
	switch backendName {
	case "htm":
		return ModeHTM
	case "staggered":
		if m == ModeHTM {
			return ModeStaggeredHW
		}
		return m
	default:
		return m
	}
}

// newArenaRuntime builds the staggered-transactions Runtime from arena
// options: the harness hands the full stagger Config (with the mode
// already resolved via ResolveMode) through Options.StaggerConfig.
func newArenaRuntime(name string, m *htm.Machine, comp *anchor.Compiled, opts backend.Options) (backend.Runtime, error) {
	cfg, ok := opts.StaggerConfig.(Config)
	if !ok {
		return nil, fmt.Errorf("stagger: backend %q needs a stagger.Config in Options.StaggerConfig, got %T",
			name, opts.StaggerConfig)
	}
	cfg.Mode = ResolveMode(name, cfg.Mode)
	rt := New(m, comp, cfg)
	if opts.SiteRecorder != nil {
		rt.SetSiteRecorder(opts.SiteRecorder)
	}
	return rt.Backend(), nil
}
