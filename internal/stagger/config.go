// Package stagger implements the staggered-transactions runtime of
// Xiang & Scott (SPAA 2015): per-thread, per-atomic-block contexts,
// ALPoint instrumentation, advisory locks built from nontransactional
// loads and stores, and the four-mode locking policy of Figure 6
// (precise, coarse-grain, locking promotion, training).
package stagger

import (
	"fmt"
	"strings"
)

// Mode selects which system runs — the four bars of Figure 7.
type Mode uint8

const (
	// ModeHTM is the baseline: plain best-effort HTM with retry and
	// irrevocable fallback, no instrumentation.
	ModeHTM Mode = iota
	// ModeAddrOnly places one fixed advisory locking point at the start
	// of each atomic block and uses only precise mode ("AddrOnly").
	ModeAddrOnly
	// ModeStaggeredSW is staggered transactions with software anchor
	// tracking: no hardware conflicting-PC; a per-thread map from cache
	// line to anchor is maintained with nontransactional stores
	// ("Staggered+SW" / "StaggerTM w/o CPC").
	ModeStaggeredSW
	// ModeStaggeredHW is full staggered transactions with the hardware
	// conflicting-PC tag ("Staggered").
	ModeStaggeredHW
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeHTM:
		return "HTM"
	case ModeAddrOnly:
		return "AddrOnly"
	case ModeStaggeredSW:
		return "Staggered+SW"
	case ModeStaggeredHW:
		return "Staggered"
	default:
		return "Mode(?)"
	}
}

// ParseMode parses the user-facing spelling of a mode, shared by the
// CLI flags and the service API: "htm", "addronly", "sw" (also
// "staggeredsw", "staggered+sw"), "staggered" (also "hw", "staggeredhw").
// Matching is case-insensitive.
func ParseMode(s string) (Mode, error) {
	switch strings.ToLower(s) {
	case "htm":
		return ModeHTM, nil
	case "addronly":
		return ModeAddrOnly, nil
	case "staggered+sw", "staggeredsw", "sw":
		return ModeStaggeredSW, nil
	case "staggered", "staggeredhw", "hw":
		return ModeStaggeredHW, nil
	default:
		return 0, fmt.Errorf("unknown mode %q (htm, addronly, sw, staggered)", s)
	}
}

// Instrumented reports whether the mode inserts ALPoint calls at anchors.
func (m Mode) Instrumented() bool {
	return m == ModeStaggeredSW || m == ModeStaggeredHW
}

// Config tunes the runtime. DefaultConfig matches the paper's Section 6.
type Config struct {
	Mode Mode

	// HistLen is the abort-history ring size per ABContext (paper: 8).
	HistLen int
	// PCThr and AddrThr are the recurrence thresholds of Figure 6
	// (paper: PC_THR = 2, ADDR_THR = 2).
	PCThr, AddrThr int
	// PromThr is the number of conflict aborts tolerated in coarse-grain
	// mode before the lock is promoted to the parent anchor.
	PromThr int
	// RateWindow sizes the decaying commit/abort counters behind
	// decision (1): advisory locks are armed only while conflict aborts
	// are frequent relative to commits.
	RateWindow int

	// NumLocks sizes the static advisory-lock table; locks are chosen by
	// hashing the conflicting data address.
	NumLocks int
	// MaxLocksPerTx bounds how many advisory locks one transaction may
	// hold. The paper acquires exactly one ("we acquire only one per
	// transaction in this paper"); higher values let a coarse-grain ALP
	// serialize several distinct objects per transaction. Lock waits are
	// bounded by LockTimeout, so multi-lock acquisition cannot deadlock —
	// at worst a waiter times out and proceeds speculatively.
	MaxLocksPerTx int
	// LockTimeout bounds, in cycles, how long an ALP waits for an
	// advisory lock before proceeding without it (Section 2).
	LockTimeout uint64
	// LockSpin is the pause between lock polls, in cycles.
	LockSpin uint64

	// SWMapWords sizes the per-thread software line-to-anchor map used by
	// ModeStaggeredSW (slots of one word each, direct-mapped).
	SWMapWords int

	// MaxRetries and BackoffBase configure the underlying HTM retry loop.
	MaxRetries  int
	BackoffBase uint64

	// The fields below are the self-healing extensions. All default to
	// off, in which case the runtime's memory traffic is bit-identical to
	// the paper-faithful baseline; HardenedConfig turns them all on.

	// LockLease, when nonzero, lease-stamps advisory lock words: the
	// acquiring CAS packs (expiry, owner) into the word, release checks
	// ownership, and a waiter that finds the lease expired reclaims the
	// lock instead of serializing behind a dead holder until LockTimeout
	// on every transaction. 0 disables (plain owner words, as in the
	// paper).
	LockLease uint64
	// LockPollJitter adds deterministic capped-exponential jitter to the
	// advisory-lock poll interval, breaking the monopolization pattern of
	// the unfair flat spinlock (DESIGN.md "advisory lock fairness"). The
	// default false keeps the paper's unfair polling.
	LockPollJitter bool
	// BackoffExp and BackoffCap select capped exponential retry backoff
	// in the HTM retry loop instead of the paper's linear Polite policy
	// (see htm.AtomicOpts).
	BackoffExp bool
	BackoffCap uint64
	// EscapeThreshold enables the per-atomic-block livelock escape: after
	// this many irrevocable fallbacks inside one rate window, the block's
	// next EscapeCooldown instances run with a single speculative attempt
	// before promoting to irrevocable mode, guaranteeing progress when
	// injected faults (or pathological contention) exhaust retry budgets.
	// 0 disables.
	EscapeThreshold int
	// EscapeCooldown is the number of fast-promoted instances per escape
	// (default 32 when EscapeThreshold > 0).
	EscapeCooldown int
	// LockFaults optionally injects advisory-lock faults (lost releases);
	// the chaos package's Injector implements it. Nil injects nothing.
	LockFaults LockFaults

	// UnsafeEarlyGlobalRelease, test-only, releases the irrevocable global
	// lock before the fallback body runs (see htm.AtomicOpts). It breaks
	// atomicity on purpose so the serializability oracle's detection can be
	// tested end to end. Never set outside a test.
	UnsafeEarlyGlobalRelease bool
}

// RetryLoop exposes the shared retry-loop parameters (budget and
// backoff policy). Software backends in the arena borrow exactly these
// fields from the config the harness hands them (see
// backend.Options.StaggerConfig), so retry tuning applies uniformly
// across backends without this package importing them.
func (c Config) RetryLoop() (maxRetries int, backoffBase uint64, backoffExp bool, backoffCap uint64) {
	return c.MaxRetries, c.BackoffBase, c.BackoffExp, c.BackoffCap
}

// LockFaults is the advisory-lock fault hook: DropLockRelease reports
// whether the release of one held lock should be lost, simulating a
// holder that died without releasing.
type LockFaults interface {
	DropLockRelease(core int) bool
}

// DefaultConfig returns the paper's runtime parameters.
func DefaultConfig(mode Mode) Config {
	return Config{
		Mode:          mode,
		HistLen:       8,
		PCThr:         2,
		AddrThr:       2,
		PromThr:       4,
		RateWindow:    64,
		NumLocks:      64,
		MaxLocksPerTx: 1,
		LockTimeout:   20000,
		LockSpin:      12,
		SWMapWords:    1024,
		MaxRetries:    10,
		BackoffBase:   64,
	}
}

// HardenedConfig is DefaultConfig with every self-healing feature on:
// lease-stamped advisory locks reclaimed after LockTimeout, jittered lock
// polling, capped exponential retry backoff, and the per-atomic-block
// livelock escape. This is the configuration the chaos campaigns run.
func HardenedConfig(mode Mode) Config {
	c := DefaultConfig(mode)
	c.LockLease = c.LockTimeout
	c.LockPollJitter = true
	c.BackoffExp = true
	c.BackoffCap = 4096
	c.EscapeThreshold = 8
	c.EscapeCooldown = 32
	return c
}

func (c *Config) validate() {
	if c.EscapeThreshold > 0 && c.EscapeCooldown <= 0 {
		c.EscapeCooldown = 32
	}
	switch {
	case c.HistLen <= 0:
		panic("stagger: HistLen must be positive")
	case c.RateWindow <= 0:
		panic("stagger: RateWindow must be positive")
	case c.NumLocks <= 0 || c.NumLocks&(c.NumLocks-1) != 0:
		panic("stagger: NumLocks must be a positive power of two")
	case c.MaxLocksPerTx <= 0:
		panic("stagger: MaxLocksPerTx must be positive")
	case c.SWMapWords <= 0 || c.SWMapWords&(c.SWMapWords-1) != 0:
		panic("stagger: SWMapWords must be a positive power of two")
	case c.MaxRetries <= 0:
		panic("stagger: MaxRetries must be positive")
	}
}
