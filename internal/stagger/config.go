// Package stagger implements the staggered-transactions runtime of
// Xiang & Scott (SPAA 2015): per-thread, per-atomic-block contexts,
// ALPoint instrumentation, advisory locks built from nontransactional
// loads and stores, and the four-mode locking policy of Figure 6
// (precise, coarse-grain, locking promotion, training).
package stagger

// Mode selects which system runs — the four bars of Figure 7.
type Mode uint8

const (
	// ModeHTM is the baseline: plain best-effort HTM with retry and
	// irrevocable fallback, no instrumentation.
	ModeHTM Mode = iota
	// ModeAddrOnly places one fixed advisory locking point at the start
	// of each atomic block and uses only precise mode ("AddrOnly").
	ModeAddrOnly
	// ModeStaggeredSW is staggered transactions with software anchor
	// tracking: no hardware conflicting-PC; a per-thread map from cache
	// line to anchor is maintained with nontransactional stores
	// ("Staggered+SW" / "StaggerTM w/o CPC").
	ModeStaggeredSW
	// ModeStaggeredHW is full staggered transactions with the hardware
	// conflicting-PC tag ("Staggered").
	ModeStaggeredHW
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeHTM:
		return "HTM"
	case ModeAddrOnly:
		return "AddrOnly"
	case ModeStaggeredSW:
		return "Staggered+SW"
	case ModeStaggeredHW:
		return "Staggered"
	default:
		return "Mode(?)"
	}
}

// Instrumented reports whether the mode inserts ALPoint calls at anchors.
func (m Mode) Instrumented() bool {
	return m == ModeStaggeredSW || m == ModeStaggeredHW
}

// Config tunes the runtime. DefaultConfig matches the paper's Section 6.
type Config struct {
	Mode Mode

	// HistLen is the abort-history ring size per ABContext (paper: 8).
	HistLen int
	// PCThr and AddrThr are the recurrence thresholds of Figure 6
	// (paper: PC_THR = 2, ADDR_THR = 2).
	PCThr, AddrThr int
	// PromThr is the number of conflict aborts tolerated in coarse-grain
	// mode before the lock is promoted to the parent anchor.
	PromThr int
	// RateWindow sizes the decaying commit/abort counters behind
	// decision (1): advisory locks are armed only while conflict aborts
	// are frequent relative to commits.
	RateWindow int

	// NumLocks sizes the static advisory-lock table; locks are chosen by
	// hashing the conflicting data address.
	NumLocks int
	// MaxLocksPerTx bounds how many advisory locks one transaction may
	// hold. The paper acquires exactly one ("we acquire only one per
	// transaction in this paper"); higher values let a coarse-grain ALP
	// serialize several distinct objects per transaction. Lock waits are
	// bounded by LockTimeout, so multi-lock acquisition cannot deadlock —
	// at worst a waiter times out and proceeds speculatively.
	MaxLocksPerTx int
	// LockTimeout bounds, in cycles, how long an ALP waits for an
	// advisory lock before proceeding without it (Section 2).
	LockTimeout uint64
	// LockSpin is the pause between lock polls, in cycles.
	LockSpin uint64

	// SWMapWords sizes the per-thread software line-to-anchor map used by
	// ModeStaggeredSW (slots of one word each, direct-mapped).
	SWMapWords int

	// MaxRetries and BackoffBase configure the underlying HTM retry loop.
	MaxRetries  int
	BackoffBase uint64
}

// DefaultConfig returns the paper's runtime parameters.
func DefaultConfig(mode Mode) Config {
	return Config{
		Mode:          mode,
		HistLen:       8,
		PCThr:         2,
		AddrThr:       2,
		PromThr:       4,
		RateWindow:    64,
		NumLocks:      64,
		MaxLocksPerTx: 1,
		LockTimeout:   20000,
		LockSpin:      12,
		SWMapWords:    1024,
		MaxRetries:    10,
		BackoffBase:   64,
	}
}

func (c *Config) validate() {
	switch {
	case c.HistLen <= 0:
		panic("stagger: HistLen must be positive")
	case c.RateWindow <= 0:
		panic("stagger: RateWindow must be positive")
	case c.NumLocks <= 0 || c.NumLocks&(c.NumLocks-1) != 0:
		panic("stagger: NumLocks must be a positive power of two")
	case c.MaxLocksPerTx <= 0:
		panic("stagger: MaxLocksPerTx must be positive")
	case c.SWMapWords <= 0 || c.SWMapWords&(c.SWMapWords-1) != 0:
		panic("stagger: SWMapWords must be a positive power of two")
	case c.MaxRetries <= 0:
		panic("stagger: MaxRetries must be positive")
	}
}
