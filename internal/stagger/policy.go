package stagger

import (
	"repro/internal/anchor"
	"repro/internal/htm"
	"repro/internal/mem"
)

// activate is the runtime's ActivateALPoint (Figure 6): called from the
// abort handler, it classifies the recent conflict pattern of the atomic
// block and arms an advisory locking point accordingly.
//
// Four behaviours, keyed on the recurrence of the conflicting PC (p) and
// conflicting data address (a) in the recent abort history:
//
//	p && a  → precise mode: arm the anchor, expect this exact address
//	p && !a → coarse-grain mode: arm the anchor with a wild-card address;
//	          after PromThr further failures, locking promotion walks up
//	          the anchor's parent chain (list node → whole table, etc.)
//	!p      → training mode: keep gathering statistics
func (rt *Runtime) activate(tc *TxCtx, abc *ABContext, info htm.AbortInfo, attempt int) {
	if info.Reason != htm.AbortConflict {
		return
	}
	// Conflict-pattern characterization (all modes, Table 1): histogram
	// conflicting line addresses and true initial-access anchors.
	rt.confAddrs[mem.LineOf(info.ConfAddr)]++
	if abc.u != nil && info.TrueSite != 0 {
		if truth := abc.u.AnchorFor(abc.u.EntryForSite(info.TrueSite)); truth != nil {
			rt.confPCs[truth.Site.ID]++
		}
	}
	// Fully attributed pairs only: a killer site or block of 0 means the
	// other side was a runtime access (advisory-lock word, NT store)
	// outside the IR, which the static matrix deliberately excludes.
	if info.TrueSite != 0 && info.KillerSite != 0 && info.KillerAB != 0 {
		rt.confPairs[ConflictPair{
			VictimAB:   abc.ab.ID,
			VictimSite: info.TrueSite,
			KillerAB:   info.KillerAB,
			KillerSite: info.KillerSite,
		}]++
	}
	if rt.cfg.Mode == ModeHTM {
		return
	}
	// Count troubled INSTANCES, not raw aborts: a retry burst within one
	// transaction instance is one data point for decision (1), or the
	// windowed rate would spike on every burst. Deep chains feed the
	// wasted-work signal behind coarse-grain locking.
	abm := rt.abMetrics(abc.ab)
	if attempt == 0 {
		abc.confAbortsW++
		abm.ConfAborts++
	}
	if attempt == 3 {
		abc.deepW++
		abm.Deep++
	}
	if rt.cfg.Mode == ModeAddrOnly {
		rt.activateAddrOnly(abc, info)
		return
	}
	// Decision (1): is this atomic block contended enough to pay for
	// advisory locking at all? Frequent conflicts or deep retry chains
	// both qualify; otherwise keep training.
	if !abc.contended() && !abc.contendedHeavily() {
		rt.Metrics.ActTraining++
		abm.Training++
		rec := abortRecord{addr: mem.LineOf(info.ConfAddr)}
		abc.appendHistory(rt.cfg.HistLen, rec)
		return
	}

	// Resolve the conflicting access back to an anchor.
	var en *anchor.UEntry
	switch rt.cfg.Mode {
	case ModeStaggeredHW:
		if info.HasPC {
			en = abc.u.SearchByPC(info.ConfPC)
		}
	case ModeStaggeredSW:
		if site := tc.th.swLookup(tc.c, info.ConfAddr); site != 0 {
			en = abc.u.EntryForSite(site)
		} else {
			rt.Metrics.SWMisses++
		}
	}
	en = abc.u.AnchorFor(en) // always begin with an anchor (line 3)

	// Ground-truth accuracy bookkeeping (simulator-only; Table 3).
	if info.TrueSite != 0 {
		rt.Metrics.AccTotal++
		if truth := abc.u.AnchorFor(abc.u.EntryForSite(info.TrueSite)); truth != nil && truth == en {
			rt.Metrics.AccHits++
		}
	}

	a := abc.countAddr(info.ConfAddr) > rt.cfg.AddrThr
	p := en != nil && abc.countAnchor(en.Site.ID) > rt.cfg.PCThr
	switch {
	case p && a: // case 1: precise mode
		abc.activeAnchor = en.Site.ID
		abc.blockAddr = mem.LineOf(info.ConfAddr)
		rt.Metrics.ActPrecise++
		abm.Precise++
	case p: // cases 2 and 3
		if !abc.contendedHeavily() {
			// Coarse-grain locking serializes a whole structure; below
			// the heavy-contention bar that costs more than the aborts.
			abc.activeAnchor = 0
			abc.blockAddr = 0
			rt.Metrics.ActTraining++
			abm.Training++
			break
		}
		target := en
		// Locking promotion (Figure 6 case 3): when THIS transaction
		// instance has already retried PromThr times and coarse-grain
		// locking still did not save it, climb to the parent anchor —
		// e.g. from a bucket's list to the whole hash table.
		if attempt >= rt.cfg.PromThr {
			if parent := abc.u.Parent(target); parent != nil {
				target = parent
			}
		}
		abc.activeAnchor = target.Site.ID
		abc.blockAddr = 0
		if target != en {
			rt.Metrics.ActPromote++
			abm.Promote++
		} else {
			rt.Metrics.ActCoarse++
			abm.Coarse++
		}
	default: // case 4: training mode
		abc.activeAnchor = 0
		abc.blockAddr = 0
		rt.Metrics.ActTraining++
		abm.Training++
	}

	rec := abortRecord{addr: mem.LineOf(info.ConfAddr)}
	if en != nil {
		rec.anchorSite = en.Site.ID
	}
	abc.appendHistory(rt.cfg.HistLen, rec)
}

// activateAddrOnly is the policy of the "AddrOnly" comparison system: a
// single fixed locking point at the start of the atomic block, precise
// mode only.
func (rt *Runtime) activateAddrOnly(abc *ABContext, info htm.AbortInfo) {
	if abc.countAddr(info.ConfAddr) > rt.cfg.AddrThr {
		abc.blockAddr = mem.LineOf(info.ConfAddr)
		rt.Metrics.ActPrecise++
	} else {
		abc.blockAddr = 0
		rt.Metrics.ActTraining++
	}
	abc.appendHistory(rt.cfg.HistLen, abortRecord{addr: mem.LineOf(info.ConfAddr)})
}

// appendHistory pushes a record into the bounded abort history.
func (c *ABContext) appendHistory(limit int, rec abortRecord) {
	c.history = append(c.history, rec)
	if len(c.history) > limit {
		c.history = c.history[len(c.history)-limit:]
	}
}

// countAddr counts history records with the given conflicting line.
func (c *ABContext) countAddr(a mem.Addr) int {
	line := mem.LineOf(a)
	n := 0
	for _, r := range c.history {
		if r.addr != 0 && r.addr == line {
			n++
		}
	}
	return n
}

// countAnchor counts history records resolved to the given anchor.
func (c *ABContext) countAnchor(site uint32) int {
	n := 0
	for _, r := range c.history {
		if r.anchorSite != 0 && r.anchorSite == site {
			n++
		}
	}
	return n
}
