package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/chaos"
	"repro/internal/vfs"
)

// TestCorruptionTable drives every header- and payload-level damage
// class through one Get and asserts the uniform contract: the entry is
// quarantined under its reason suffix, the Get is a recomputable miss,
// and a re-Put fully heals the key. This is the disk-side mirror of the
// journal's torn-tail discipline — nothing on disk is ever trusted past
// its checksums.
func TestCorruptionTable(t *testing.T) {
	cases := []struct {
		name   string
		reason string
		edit   func(raw []byte) []byte
	}{
		{"bad-magic", "magic", func(raw []byte) []byte {
			return bytes.Replace(raw, []byte(magic), []byte("notastorefile"), 1)
		}},
		{"bad-version", "version", func(raw []byte) []byte {
			old := []byte(fmt.Sprintf("%s %d\n", magic, FormatVersion))
			return bytes.Replace(raw, old, []byte(fmt.Sprintf("%s %d\n", magic, FormatVersion+7)), 1)
		}},
		{"nonnumeric-version", "version", func(raw []byte) []byte {
			old := []byte(fmt.Sprintf("%s %d\n", magic, FormatVersion))
			return bytes.Replace(raw, old, []byte(magic+" one\n"), 1)
		}},
		{"truncated-header", "header", func(raw []byte) []byte {
			// Cut inside the sha256 line: the header never completes.
			idx := bytes.Index(raw, []byte("sha256 "))
			return raw[:idx+10]
		}},
		{"mangled-header-field", "header", func(raw []byte) []byte {
			return bytes.Replace(raw, []byte("bytes "), []byte("bites "), 1)
		}},
		{"truncated-body", "length", func(raw []byte) []byte {
			return raw[:len(raw)-7]
		}},
		{"trailing-garbage", "length", func(raw []byte) []byte {
			return append(raw, []byte("extra bytes after the payload")...)
		}},
		{"sha256-mismatch", "checksum", func(raw []byte) []byte {
			// Flip one payload bit; lengths all still line up.
			out := append([]byte(nil), raw...)
			out[len(out)-3] ^= 0x01
			return out
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := openT(t)
			key := "corruption-" + tc.name
			payload := []byte("the one true payload for " + tc.name)
			if err := s.Put(key, payload); err != nil {
				t.Fatal(err)
			}
			corruptEntry(t, s, key, tc.edit)

			_, err := s.Get(key)
			if !errors.Is(err, ErrNotFound) {
				t.Fatalf("corrupt Get = %v, want wrapped ErrNotFound", err)
			}
			var ce *CorruptError
			if !errors.As(err, &ce) || ce.Reason != tc.reason {
				t.Fatalf("corrupt Get = %v, want CorruptError{%s}", err, tc.reason)
			}
			q, qerr := s.QuarantinedFiles()
			if qerr != nil || len(q) != 1 || !strings.HasSuffix(q[0], "."+tc.reason) {
				t.Fatalf("quarantine = %v (%v), want one .%s file", q, qerr, tc.reason)
			}
			// The damaged bytes are preserved for forensics, not destroyed.
			if _, err := os.Stat(filepath.Join(s.Root(), quarantineDir, q[0])); err != nil {
				t.Fatal(err)
			}
			// Recompute-and-heal: the caller re-Puts, the key serves again.
			if err := s.Put(key, payload); err != nil {
				t.Fatal(err)
			}
			got, err := s.Get(key)
			if err != nil || !bytes.Equal(got, payload) {
				t.Fatalf("healed Get = (%q, %v)", got, err)
			}
			if st := s.Stats(); st.Quarantined != 1 || st.Entries != 1 {
				t.Fatalf("stats %+v, want Quarantined=1 Entries=1", st)
			}
		})
	}
}

// GC must evict exactly the entries the keep predicate rejects — the
// old-CacheSchema eviction staggerd runs at boot — while live-schema
// entries keep serving byte-identically.
func TestGCEvictsOldSchemaEntries(t *testing.T) {
	s := openT(t)
	keep := []string{"v3|cell|a", "v3|cell|b"}
	evict := []string{"v1|cell|a", "v2|cell|a", "v2|explore|x"}
	for _, k := range append(append([]string(nil), keep...), evict...) {
		if err := s.Put(k, []byte("payload of "+k)); err != nil {
			t.Fatal(err)
		}
	}
	removed, err := s.GC(func(key string) bool { return strings.HasPrefix(key, "v3|") })
	if err != nil {
		t.Fatal(err)
	}
	if removed != len(evict) {
		t.Fatalf("GC removed %d, want %d", removed, len(evict))
	}
	for _, k := range evict {
		if _, err := s.Get(k); !errors.Is(err, ErrNotFound) {
			t.Fatalf("evicted key %q still present: %v", k, err)
		}
	}
	for _, k := range keep {
		if got, err := s.Get(k); err != nil || string(got) != "payload of "+k {
			t.Fatalf("kept key %q damaged: (%q, %v)", k, got, err)
		}
	}
	st := s.Stats()
	if st.GCRemoved != uint64(len(evict)) || st.Entries != len(keep) {
		t.Fatalf("stats %+v, want GCRemoved=%d Entries=%d", st, len(evict), len(keep))
	}
}

// An entry whose header does not even parse is quarantined by GC rather
// than silently skipped or trusted.
func TestGCQuarantinesUnparseableEntries(t *testing.T) {
	s := openT(t)
	if err := s.Put("good", []byte("x")); err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(s.Root(), objectsDir, strings.Repeat("ab", 32)+".entry")
	if err := os.WriteFile(bad, []byte("junk, not a header\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	removed, err := s.GC(func(string) bool { return true })
	if err != nil || removed != 0 {
		t.Fatalf("GC = (%d, %v), want (0, nil)", removed, err)
	}
	if q, _ := s.QuarantinedFiles(); len(q) != 1 || !strings.HasSuffix(q[0], ".magic") {
		t.Fatalf("quarantine = %v, want the junk entry", q)
	}
	if got, err := s.Get("good"); err != nil || string(got) != "x" {
		t.Fatalf("good key damaged by GC: (%q, %v)", got, err)
	}
}

// A crash between CreateTemp and Rename leaves put-*.tmp debris; the
// next Open must sweep it without touching live entries.
func TestOpenSweepsOrphanedTempFiles(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("live", []byte("kept")); err != nil {
		t.Fatal(err)
	}
	orphan := filepath.Join(dir, objectsDir, "put-123456.tmp")
	if err := os.WriteFile(orphan, []byte("torn half of an entry"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(orphan); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("orphan not swept: %v", err)
	}
	if got, err := s2.Get("live"); err != nil || string(got) != "kept" {
		t.Fatalf("live entry damaged by sweep: (%q, %v)", got, err)
	}
}

// A crash injected right after Put's temp-file write must never damage
// the live name: the key reads back either complete or absent.
func TestPutCrashLeavesLiveNameIntact(t *testing.T) {
	fp, err := chaos.ParseFailpoints("write:objects=crash@2", 1)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	ffs := &vfs.FaultFS{Base: vfs.OS, FP: fp}
	s, err := OpenFS(ffs, dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k", []byte("the original payload")); err != nil {
		t.Fatal(err)
	}
	// Write hit 2 is the second Put's temp file: bytes land, then "death".
	if err := s.Put("k", []byte("the original payload")); err == nil {
		t.Fatal("crashing Put returned nil")
	}
	// The "restart": a plain store over the same directory.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s2.Get("k")
	if err != nil || string(got) != "the original payload" {
		t.Fatalf("after crash: (%q, %v), want the original payload", got, err)
	}
	if st := s2.Stats(); st.Entries != 1 {
		t.Fatalf("stats %+v, want exactly the live entry (temp swept)", st)
	}
}

// ENOSPC during Put must fail the write without corrupting anything;
// the store keeps serving and a later Put (space freed) heals the key.
func TestPutENOSPCFailsCleanly(t *testing.T) {
	fp, err := chaos.ParseFailpoints("write:objects=enospc@1", 1)
	if err != nil {
		t.Fatal(err)
	}
	ffs := &vfs.FaultFS{Base: vfs.OS, FP: fp}
	s, err := OpenFS(ffs, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k", []byte("v")); !errors.Is(err, vfs.ErrNoSpace) {
		t.Fatalf("full-disk Put = %v, want ErrNoSpace", err)
	}
	if _, err := s.Get("k"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("failed Put left something servable: %v", err)
	}
	if err := s.Put("k", []byte("v")); err != nil {
		t.Fatalf("healing Put = %v", err)
	}
	if got, err := s.Get("k"); err != nil || string(got) != "v" {
		t.Fatalf("healed Get = (%q, %v)", got, err)
	}
}
