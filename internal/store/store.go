// Package store is a crash-safe, content-addressed result store: the
// durable generalization of the harness's in-process memoization cache.
// Entries are keyed by a canonical key string (the service layer builds
// it from the job's full configuration plus harness.CacheSchema), and
// because every simulation is a pure function of that configuration, a
// stored payload can be served byte-identically to any client, across
// daemon restarts, forever — or until the schema embedded in the key
// changes, at which point old entries are simply never found again and
// age out as misses.
//
// Crash safety is the whole point of the design:
//
//   - writes go to a temp file in the same directory and are fsynced
//     before an atomic rename, so a crash mid-Put leaves either the old
//     state or the new state, never a torn entry under the live name;
//   - reads verify a magic header, the format version, the stored key
//     (hash collisions or hand-misplaced files), the payload length,
//     and a SHA-256 checksum before returning a byte;
//   - an entry failing any of those checks is quarantined — moved aside
//     into quarantine/ with a reason suffix, preserved for forensics —
//     and reported as a miss, so the caller transparently recomputes
//     and rewrites it. Corruption costs one recompute, never a wrong
//     answer and never an unservable key.
package store

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/vfs"
)

// FormatVersion is the on-disk entry container version. Entries written
// under any other version are quarantined on read (reason "version") and
// recomputed; they are never decoded under the wrong layout.
const FormatVersion = 1

// magic is the first header token of every entry file.
const magic = "staggerstore"

// ErrNotFound is returned by Get when the key has no usable entry —
// including when an entry existed but failed verification and was
// quarantined (the *CorruptError is wrapped alongside it).
var ErrNotFound = errors.New("store: not found")

// CorruptError describes an entry that failed verification and was
// moved to quarantine.
type CorruptError struct {
	Key    string
	Path   string // quarantine location (empty if the move itself failed)
	Reason string // "magic", "version", "key", "length", "checksum", "header"
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("store: entry for %q corrupt (%s), quarantined to %s", e.Key, e.Reason, e.Path)
}

// Stats counts store traffic since Open.
type Stats struct {
	Hits        uint64 `json:"hits"`
	Misses      uint64 `json:"misses"`
	Puts        uint64 `json:"puts"`
	Quarantined uint64 `json:"quarantined"`
	GCRemoved   uint64 `json:"gc_removed"` // old-schema entries evicted by GC
	Entries     int    `json:"entries"`    // on disk right now
}

// Store is a durable key→payload map under one root directory. All
// methods are safe for concurrent use; cross-process writers are safe
// against each other thanks to the temp+rename protocol (last writer
// wins with a complete entry, which for deterministic payloads is the
// same bytes anyway).
type Store struct {
	root string
	fs   vfs.FS

	mu sync.Mutex // serializes multi-step filesystem transitions (quarantine moves)

	hits, misses, puts, quarantined, gcRemoved atomic.Uint64
}

// Open creates (if needed) and opens a store rooted at dir on the real
// filesystem.
func Open(dir string) (*Store, error) { return OpenFS(vfs.OS, dir) }

// OpenFS opens a store over an explicit filesystem — the seam the
// disk-fault harness injects through. It also sweeps crash debris:
// temp files a previous life created but never renamed into place.
func OpenFS(fsys vfs.FS, dir string) (*Store, error) {
	for _, sub := range []string{objectsDir, quarantineDir} {
		if err := fsys.MkdirAll(filepath.Join(dir, sub)); err != nil {
			return nil, fmt.Errorf("store: open %s: %w", dir, err)
		}
	}
	s := &Store{root: dir, fs: fsys}
	// A crash between CreateTemp and Rename leaves an orphaned put-*.tmp
	// holding at most a torn copy of something re-Put will rewrite; the
	// live names were never touched, so deleting the orphans is safe.
	if ents, err := fsys.ReadDir(filepath.Join(dir, objectsDir)); err == nil {
		for _, e := range ents {
			if strings.HasPrefix(e.Name(), "put-") && strings.HasSuffix(e.Name(), ".tmp") {
				fsys.Remove(filepath.Join(dir, objectsDir, e.Name()))
			}
		}
	}
	return s, nil
}

// Root returns the store's root directory.
func (s *Store) Root() string { return s.root }

const (
	objectsDir    = "objects"
	quarantineDir = "quarantine"
)

// entryPath maps a key to its object file: content-addressed by the
// SHA-256 of the key string, so arbitrary key text never meets the
// filesystem's name rules.
func (s *Store) entryPath(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(s.root, objectsDir, hex.EncodeToString(sum[:])+".entry")
}

// Put durably stores payload under key: write to a temp file in the
// objects directory, fsync, then atomically rename over the live name.
// Re-putting an existing key overwrites it whole (deterministic payloads
// make this a byte-level no-op; it also self-heals a quarantined key).
func (s *Store) Put(key string, payload []byte) error {
	dir := filepath.Join(s.root, objectsDir)
	tmp, err := s.fs.CreateTemp(dir, "put-*.tmp")
	if err != nil {
		return fmt.Errorf("store: put %q: %w", key, err)
	}
	defer s.fs.Remove(tmp.Name()) // no-op after a successful rename
	sum := sha256.Sum256(payload)
	w := bufio.NewWriter(tmp)
	fmt.Fprintf(w, "%s %d\n", magic, FormatVersion)
	fmt.Fprintf(w, "key %s\n", encodeKey(key))
	fmt.Fprintf(w, "sha256 %s\n", hex.EncodeToString(sum[:]))
	fmt.Fprintf(w, "bytes %d\n\n", len(payload))
	w.Write(payload)
	if err := w.Flush(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: put %q: %w", key, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: put %q: %w", key, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: put %q: %w", key, err)
	}
	if err := s.fs.Rename(tmp.Name(), s.entryPath(key)); err != nil {
		return fmt.Errorf("store: put %q: %w", key, err)
	}
	s.puts.Add(1)
	return nil
}

// Get returns the payload stored under key. A missing entry returns
// ErrNotFound; an entry that fails verification is quarantined and the
// error wraps both ErrNotFound and the *CorruptError, so callers can
// treat every non-nil error as "recompute" while still logging why.
func (s *Store) Get(key string) ([]byte, error) {
	path := s.entryPath(key)
	f, err := s.fs.Open(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			s.misses.Add(1)
			return nil, ErrNotFound
		}
		return nil, fmt.Errorf("store: get %q: %w", key, err)
	}
	payload, reason := readEntry(f, key)
	f.Close()
	if reason != "" {
		ce := &CorruptError{Key: key, Reason: reason}
		ce.Path = s.quarantine(path, reason)
		s.quarantined.Add(1)
		s.misses.Add(1)
		return nil, fmt.Errorf("%w: %w", ErrNotFound, ce)
	}
	s.hits.Add(1)
	return payload, nil
}

// entryHeader is the parsed, not-yet-verified header of one entry.
type entryHeader struct {
	key  string
	sum  string
	size int
}

// readHeader parses and validates one entry's header lines, returning
// the header or a non-empty corruption reason.
func readHeader(r *bufio.Reader) (entryHeader, string) {
	var h entryHeader
	line := func() (string, bool) {
		l, err := r.ReadString('\n')
		if err != nil {
			return "", false
		}
		return strings.TrimSuffix(l, "\n"), true
	}
	head, ok := line()
	if !ok {
		return h, "header"
	}
	gotMagic, gotVer, found := strings.Cut(head, " ")
	if !found || gotMagic != magic {
		return h, "magic"
	}
	if v, err := strconv.Atoi(gotVer); err != nil || v != FormatVersion {
		return h, "version"
	}
	keyLine, ok := line()
	if !ok || !strings.HasPrefix(keyLine, "key ") {
		return h, "header"
	}
	h.key = decodeKey(strings.TrimPrefix(keyLine, "key "))
	sumLine, ok := line()
	if !ok || !strings.HasPrefix(sumLine, "sha256 ") {
		return h, "header"
	}
	h.sum = strings.TrimPrefix(sumLine, "sha256 ")
	lenLine, ok := line()
	if !ok || !strings.HasPrefix(lenLine, "bytes ") {
		return h, "header"
	}
	n, err := strconv.Atoi(strings.TrimPrefix(lenLine, "bytes "))
	if err != nil || n < 0 {
		return h, "header"
	}
	h.size = n
	if blank, ok := line(); !ok || blank != "" {
		return h, "header"
	}
	return h, ""
}

// readEntry parses and verifies one entry stream. It returns the payload
// or a non-empty corruption reason.
func readEntry(f io.Reader, key string) ([]byte, string) {
	r := bufio.NewReader(f)
	h, reason := readHeader(r)
	if reason != "" {
		return nil, reason
	}
	if h.key != key {
		return nil, "key"
	}
	wantSum := h.sum
	payload := make([]byte, h.size)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, "length" // truncated: a torn write that escaped rename atomicity
	}
	// Exactly n payload bytes must remain; trailing bytes are damage.
	if _, err := r.ReadByte(); err != io.EOF {
		return nil, "length"
	}
	sum := sha256.Sum256(payload)
	if hex.EncodeToString(sum[:]) != wantSum {
		return nil, "checksum"
	}
	return payload, ""
}

// quarantine moves a bad entry aside, returning its new path ("" if even
// that failed, in which case the entry is removed so it cannot wedge the
// key forever).
func (s *Store) quarantine(path, reason string) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	base := filepath.Base(path) + "." + reason
	dst := filepath.Join(s.root, quarantineDir, base)
	for i := 1; ; i++ {
		if _, err := s.fs.Stat(dst); errors.Is(err, fs.ErrNotExist) {
			break
		}
		dst = filepath.Join(s.root, quarantineDir, fmt.Sprintf("%s.%d", base, i))
	}
	if err := s.fs.Rename(path, dst); err != nil {
		s.fs.Remove(path)
		return ""
	}
	return dst
}

// GC walks every entry and removes those whose header key fails keep —
// the eviction path for entries written under an old CacheSchema, which
// age out as misses (the schema is baked into the key) but would
// otherwise occupy disk forever. Entries whose header cannot even be
// parsed are quarantined. GC races safely with concurrent traffic: it
// only ever removes a live name, which a concurrent Put simply
// recreates whole.
func (s *Store) GC(keep func(key string) bool) (removed int, err error) {
	dir := filepath.Join(s.root, objectsDir)
	ents, err := s.fs.ReadDir(dir)
	if err != nil {
		return 0, fmt.Errorf("store: gc: %w", err)
	}
	for _, e := range ents {
		if !strings.HasSuffix(e.Name(), ".entry") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := s.fs.Open(path)
		if err != nil {
			continue // raced with quarantine or a concurrent GC
		}
		h, reason := readHeader(bufio.NewReader(f))
		f.Close()
		if reason != "" {
			s.quarantine(path, reason)
			s.quarantined.Add(1)
			continue
		}
		if !keep(h.key) {
			if s.fs.Remove(path) == nil {
				removed++
				s.gcRemoved.Add(1)
			}
		}
	}
	return removed, nil
}

// Stats snapshots traffic counters and the current entry count.
func (s *Store) Stats() Stats {
	st := Stats{
		Hits:        s.hits.Load(),
		Misses:      s.misses.Load(),
		Puts:        s.puts.Load(),
		Quarantined: s.quarantined.Load(),
		GCRemoved:   s.gcRemoved.Load(),
	}
	if ents, err := s.fs.ReadDir(filepath.Join(s.root, objectsDir)); err == nil {
		for _, e := range ents {
			if strings.HasSuffix(e.Name(), ".entry") {
				st.Entries++
			}
		}
	}
	return st
}

// QuarantinedFiles lists the quarantine directory (forensics, tests).
func (s *Store) QuarantinedFiles() ([]string, error) {
	ents, err := s.fs.ReadDir(filepath.Join(s.root, quarantineDir))
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		names = append(names, e.Name())
	}
	return names, nil
}

// encodeKey makes a key string newline-safe for the text header.
func encodeKey(key string) string {
	if strings.ContainsAny(key, "\n\r") {
		return "hex:" + hex.EncodeToString([]byte(key))
	}
	return key
}

func decodeKey(enc string) string {
	if rest, ok := strings.CutPrefix(enc, "hex:"); ok {
		if b, err := hex.DecodeString(rest); err == nil {
			return string(b)
		}
	}
	return enc
}
