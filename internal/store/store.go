// Package store is a crash-safe, content-addressed result store: the
// durable generalization of the harness's in-process memoization cache.
// Entries are keyed by a canonical key string (the service layer builds
// it from the job's full configuration plus harness.CacheSchema), and
// because every simulation is a pure function of that configuration, a
// stored payload can be served byte-identically to any client, across
// daemon restarts, forever — or until the schema embedded in the key
// changes, at which point old entries are simply never found again and
// age out as misses.
//
// Crash safety is the whole point of the design:
//
//   - writes go to a temp file in the same directory and are fsynced
//     before an atomic rename, so a crash mid-Put leaves either the old
//     state or the new state, never a torn entry under the live name;
//   - reads verify a magic header, the format version, the stored key
//     (hash collisions or hand-misplaced files), the payload length,
//     and a SHA-256 checksum before returning a byte;
//   - an entry failing any of those checks is quarantined — moved aside
//     into quarantine/ with a reason suffix, preserved for forensics —
//     and reported as a miss, so the caller transparently recomputes
//     and rewrites it. Corruption costs one recompute, never a wrong
//     answer and never an unservable key.
package store

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// FormatVersion is the on-disk entry container version. Entries written
// under any other version are quarantined on read (reason "version") and
// recomputed; they are never decoded under the wrong layout.
const FormatVersion = 1

// magic is the first header token of every entry file.
const magic = "staggerstore"

// ErrNotFound is returned by Get when the key has no usable entry —
// including when an entry existed but failed verification and was
// quarantined (the *CorruptError is wrapped alongside it).
var ErrNotFound = errors.New("store: not found")

// CorruptError describes an entry that failed verification and was
// moved to quarantine.
type CorruptError struct {
	Key    string
	Path   string // quarantine location (empty if the move itself failed)
	Reason string // "magic", "version", "key", "length", "checksum", "header"
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("store: entry for %q corrupt (%s), quarantined to %s", e.Key, e.Reason, e.Path)
}

// Stats counts store traffic since Open.
type Stats struct {
	Hits        uint64 `json:"hits"`
	Misses      uint64 `json:"misses"`
	Puts        uint64 `json:"puts"`
	Quarantined uint64 `json:"quarantined"`
	Entries     int    `json:"entries"` // on disk right now
}

// Store is a durable key→payload map under one root directory. All
// methods are safe for concurrent use; cross-process writers are safe
// against each other thanks to the temp+rename protocol (last writer
// wins with a complete entry, which for deterministic payloads is the
// same bytes anyway).
type Store struct {
	root string

	mu sync.Mutex // serializes multi-step filesystem transitions (quarantine moves)

	hits, misses, puts, quarantined atomic.Uint64
}

// Open creates (if needed) and opens a store rooted at dir.
func Open(dir string) (*Store, error) {
	for _, sub := range []string{objectsDir, quarantineDir} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("store: open %s: %w", dir, err)
		}
	}
	return &Store{root: dir}, nil
}

// Root returns the store's root directory.
func (s *Store) Root() string { return s.root }

const (
	objectsDir    = "objects"
	quarantineDir = "quarantine"
)

// entryPath maps a key to its object file: content-addressed by the
// SHA-256 of the key string, so arbitrary key text never meets the
// filesystem's name rules.
func (s *Store) entryPath(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(s.root, objectsDir, hex.EncodeToString(sum[:])+".entry")
}

// Put durably stores payload under key: write to a temp file in the
// objects directory, fsync, then atomically rename over the live name.
// Re-putting an existing key overwrites it whole (deterministic payloads
// make this a byte-level no-op; it also self-heals a quarantined key).
func (s *Store) Put(key string, payload []byte) error {
	dir := filepath.Join(s.root, objectsDir)
	tmp, err := os.CreateTemp(dir, "put-*.tmp")
	if err != nil {
		return fmt.Errorf("store: put %q: %w", key, err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	sum := sha256.Sum256(payload)
	w := bufio.NewWriter(tmp)
	fmt.Fprintf(w, "%s %d\n", magic, FormatVersion)
	fmt.Fprintf(w, "key %s\n", encodeKey(key))
	fmt.Fprintf(w, "sha256 %s\n", hex.EncodeToString(sum[:]))
	fmt.Fprintf(w, "bytes %d\n\n", len(payload))
	w.Write(payload)
	if err := w.Flush(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: put %q: %w", key, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: put %q: %w", key, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: put %q: %w", key, err)
	}
	if err := os.Rename(tmp.Name(), s.entryPath(key)); err != nil {
		return fmt.Errorf("store: put %q: %w", key, err)
	}
	s.puts.Add(1)
	return nil
}

// Get returns the payload stored under key. A missing entry returns
// ErrNotFound; an entry that fails verification is quarantined and the
// error wraps both ErrNotFound and the *CorruptError, so callers can
// treat every non-nil error as "recompute" while still logging why.
func (s *Store) Get(key string) ([]byte, error) {
	path := s.entryPath(key)
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			s.misses.Add(1)
			return nil, ErrNotFound
		}
		return nil, fmt.Errorf("store: get %q: %w", key, err)
	}
	payload, reason := readEntry(f, key)
	f.Close()
	if reason != "" {
		ce := &CorruptError{Key: key, Reason: reason}
		ce.Path = s.quarantine(path, reason)
		s.quarantined.Add(1)
		s.misses.Add(1)
		return nil, fmt.Errorf("%w: %w", ErrNotFound, ce)
	}
	s.hits.Add(1)
	return payload, nil
}

// readEntry parses and verifies one entry stream. It returns the payload
// or a non-empty corruption reason.
func readEntry(f io.Reader, key string) ([]byte, string) {
	r := bufio.NewReader(f)
	line := func() (string, bool) {
		l, err := r.ReadString('\n')
		if err != nil {
			return "", false
		}
		return strings.TrimSuffix(l, "\n"), true
	}
	head, ok := line()
	if !ok {
		return nil, "header"
	}
	gotMagic, gotVer, found := strings.Cut(head, " ")
	if !found || gotMagic != magic {
		return nil, "magic"
	}
	if v, err := strconv.Atoi(gotVer); err != nil || v != FormatVersion {
		return nil, "version"
	}
	keyLine, ok := line()
	if !ok || !strings.HasPrefix(keyLine, "key ") {
		return nil, "header"
	}
	if decodeKey(strings.TrimPrefix(keyLine, "key ")) != key {
		return nil, "key"
	}
	sumLine, ok := line()
	if !ok || !strings.HasPrefix(sumLine, "sha256 ") {
		return nil, "header"
	}
	wantSum := strings.TrimPrefix(sumLine, "sha256 ")
	lenLine, ok := line()
	if !ok || !strings.HasPrefix(lenLine, "bytes ") {
		return nil, "header"
	}
	n, err := strconv.Atoi(strings.TrimPrefix(lenLine, "bytes "))
	if err != nil || n < 0 {
		return nil, "header"
	}
	if blank, ok := line(); !ok || blank != "" {
		return nil, "header"
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, "length" // truncated: a torn write that escaped rename atomicity
	}
	// Exactly n payload bytes must remain; trailing bytes are damage.
	if _, err := r.ReadByte(); err != io.EOF {
		return nil, "length"
	}
	sum := sha256.Sum256(payload)
	if hex.EncodeToString(sum[:]) != wantSum {
		return nil, "checksum"
	}
	return payload, ""
}

// quarantine moves a bad entry aside, returning its new path ("" if even
// that failed, in which case the entry is removed so it cannot wedge the
// key forever).
func (s *Store) quarantine(path, reason string) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	base := filepath.Base(path) + "." + reason
	dst := filepath.Join(s.root, quarantineDir, base)
	for i := 1; ; i++ {
		if _, err := os.Stat(dst); os.IsNotExist(err) {
			break
		}
		dst = filepath.Join(s.root, quarantineDir, fmt.Sprintf("%s.%d", base, i))
	}
	if err := os.Rename(path, dst); err != nil {
		os.Remove(path)
		return ""
	}
	return dst
}

// Stats snapshots traffic counters and the current entry count.
func (s *Store) Stats() Stats {
	st := Stats{
		Hits:        s.hits.Load(),
		Misses:      s.misses.Load(),
		Puts:        s.puts.Load(),
		Quarantined: s.quarantined.Load(),
	}
	if ents, err := os.ReadDir(filepath.Join(s.root, objectsDir)); err == nil {
		for _, e := range ents {
			if strings.HasSuffix(e.Name(), ".entry") {
				st.Entries++
			}
		}
	}
	return st
}

// QuarantinedFiles lists the quarantine directory (forensics, tests).
func (s *Store) QuarantinedFiles() ([]string, error) {
	ents, err := os.ReadDir(filepath.Join(s.root, quarantineDir))
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		names = append(names, e.Name())
	}
	return names, nil
}

// encodeKey makes a key string newline-safe for the text header.
func encodeKey(key string) string {
	if strings.ContainsAny(key, "\n\r") {
		return "hex:" + hex.EncodeToString([]byte(key))
	}
	return key
}

func decodeKey(enc string) string {
	if rest, ok := strings.CutPrefix(enc, "hex:"); ok {
		if b, err := hex.DecodeString(rest); err == nil {
			return string(b)
		}
	}
	return enc
}
