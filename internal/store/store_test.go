package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func openT(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := openT(t)
	key := "v1|bench=list-hi|mode=staggered|threads=4|seed=42"
	payload := []byte(`{"makespan": 12345}`)
	if _, err := s.Get(key); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get before Put = %v, want ErrNotFound", err)
	}
	if err := s.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("round trip mismatch: %q != %q", got, payload)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 || st.Entries != 1 {
		t.Fatalf("stats %+v, want 1 hit / 1 miss / 1 put / 1 entry", st)
	}
}

func TestReopenServesIdenticalBytes(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("deterministic payload bytes")
	if err := s.Put("k", payload); err != nil {
		t.Fatal(err)
	}
	// "Restart": a fresh Store over the same directory.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s2.Get("k")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("restarted store served different bytes")
	}
}

// corruptEntry rewrites the raw entry file for key through edit.
func corruptEntry(t *testing.T, s *Store, key string, edit func([]byte) []byte) {
	t.Helper()
	path := s.entryPath(key)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, edit(raw), 0o644); err != nil {
		t.Fatal(err)
	}
}

// The satellite's acceptance case: a hand-corrupted payload must be
// detected by checksum, quarantined, and reported as a recomputable
// miss — and a re-Put must fully heal the key.
func TestHandCorruptedEntryQuarantinedAndHealed(t *testing.T) {
	s := openT(t)
	key, payload := "cell-key", []byte("the true result bytes")
	if err := s.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	corruptEntry(t, s, key, func(raw []byte) []byte {
		return bytes.Replace(raw, []byte("true"), []byte("tRue"), 1)
	})
	_, err := s.Get(key)
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("corrupt Get = %v, want wrapped ErrNotFound", err)
	}
	var ce *CorruptError
	if !errors.As(err, &ce) || ce.Reason != "checksum" {
		t.Fatalf("corrupt Get = %v, want CorruptError{checksum}", err)
	}
	q, err2 := s.QuarantinedFiles()
	if err2 != nil || len(q) != 1 || !strings.HasSuffix(q[0], ".checksum") {
		t.Fatalf("quarantine = %v (%v), want one .checksum file", q, err2)
	}
	// The caller's contract: recompute and re-Put; the key works again.
	if err := s.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	if got, err := s.Get(key); err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("healed Get = (%q, %v)", got, err)
	}
	if st := s.Stats(); st.Quarantined != 1 {
		t.Fatalf("stats %+v, want Quarantined=1", st)
	}
}

// The satellite's second acceptance case: an entry written under a
// different format version must be quarantined, never decoded.
func TestWrongVersionEntryQuarantined(t *testing.T) {
	s := openT(t)
	key, payload := "versioned-key", []byte("payload")
	if err := s.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	corruptEntry(t, s, key, func(raw []byte) []byte {
		old := []byte(fmt.Sprintf("%s %d\n", magic, FormatVersion))
		new := []byte(fmt.Sprintf("%s %d\n", magic, FormatVersion+1))
		return bytes.Replace(raw, old, new, 1)
	})
	_, err := s.Get(key)
	var ce *CorruptError
	if !errors.As(err, &ce) || ce.Reason != "version" {
		t.Fatalf("wrong-version Get = %v, want CorruptError{version}", err)
	}
	if q, _ := s.QuarantinedFiles(); len(q) != 1 || !strings.HasSuffix(q[0], ".version") {
		t.Fatalf("quarantine = %v, want one .version file", q)
	}
}

// TestHalfWrittenEntryQuarantined models the crash window: a truncated
// entry under the live name (torn write on a filesystem without atomic
// rename, say) must be quarantined as a length failure.
func TestHalfWrittenEntryQuarantined(t *testing.T) {
	s := openT(t)
	key, payload := "torn-key", []byte("a payload long enough to truncate meaningfully")
	if err := s.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	corruptEntry(t, s, key, func(raw []byte) []byte { return raw[:len(raw)-10] })
	_, err := s.Get(key)
	var ce *CorruptError
	if !errors.As(err, &ce) || ce.Reason != "length" {
		t.Fatalf("truncated Get = %v, want CorruptError{length}", err)
	}
}

// TestForeignFileQuarantined: garbage dropped at an entry path (wrong
// magic) is quarantined rather than parsed.
func TestForeignFileQuarantined(t *testing.T) {
	s := openT(t)
	key := "foreign"
	if err := os.WriteFile(s.entryPath(key), []byte("not an entry at all\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := s.Get(key)
	var ce *CorruptError
	if !errors.As(err, &ce) || ce.Reason != "magic" {
		t.Fatalf("foreign Get = %v, want CorruptError{magic}", err)
	}
}

// TestKeyMismatchQuarantined: an entry copied under the wrong name (its
// header key disagrees with the requested key) must not be served.
func TestKeyMismatchQuarantined(t *testing.T) {
	s := openT(t)
	if err := s.Put("key-a", []byte("payload-a")); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(s.entryPath("key-a"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.entryPath("key-b"), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = s.Get("key-b")
	var ce *CorruptError
	if !errors.As(err, &ce) || ce.Reason != "key" {
		t.Fatalf("mismatched Get = %v, want CorruptError{key}", err)
	}
	// key-a is untouched by key-b's quarantine.
	if got, err := s.Get("key-a"); err != nil || string(got) != "payload-a" {
		t.Fatalf("sibling key damaged: (%q, %v)", got, err)
	}
}

// TestNewlineKeysSafe: keys are arbitrary strings; header encoding must
// not let a newline forge header lines.
func TestNewlineKeysSafe(t *testing.T) {
	s := openT(t)
	key := "evil\nsha256 0000\nbytes 0"
	if err := s.Put(key, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if got, err := s.Get(key); err != nil || string(got) != "x" {
		t.Fatalf("newline key round trip = (%q, %v)", got, err)
	}
}

// TestNoTempLeakage: every Put leaves exactly its entry behind, no temp
// droppings (the smoke for the write-temp-rename protocol).
func TestNoTempLeakage(t *testing.T) {
	s := openT(t)
	for i := 0; i < 10; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	ents, err := os.ReadDir(filepath.Join(s.Root(), objectsDir))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if !strings.HasSuffix(e.Name(), ".entry") {
			t.Fatalf("foreign file in objects dir: %s", e.Name())
		}
	}
	if len(ents) != 10 {
		t.Fatalf("%d files, want 10", len(ents))
	}
}
