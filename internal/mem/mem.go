// Package mem provides the simulated word-addressable shared memory that
// the HTM simulator and all workload data structures are built on.
//
// Addresses are byte addresses, but all accesses are performed at 8-byte
// word granularity (the low three bits of an access address are ignored).
// The cache-line size is fixed at 64 bytes to match the simulated machine,
// so a line holds eight words.
package mem

// Addr is a byte address in simulated memory.
type Addr uint64

// LineSize is the cache-line size of the simulated machine in bytes.
const LineSize = 64

// WordSize is the access granularity in bytes.
const WordSize = 8

// LineOf returns the address of the cache line containing a.
func LineOf(a Addr) Addr { return a &^ (LineSize - 1) }

// WordOf returns the word-aligned address containing a.
func WordOf(a Addr) Addr { return a &^ (WordSize - 1) }

// pageBits selects the simulated page size (2^pageBits bytes). Pages keep
// the backing store compact without hashing every access.
const pageBits = 12

const pageWords = 1 << (pageBits - 3)

// Memory is a sparse simulated physical memory. It is not safe for
// concurrent use; the simulation engine serializes all accesses.
type Memory struct {
	pages map[Addr][]uint64
	// lastKey/lastPage cache the most recently touched page: simulated
	// accesses are strongly page-local, so most loads and stores skip the
	// page-map lookup entirely. lastPage is nil until the first access.
	lastKey  Addr
	lastPage []uint64
}

// New returns an empty memory.
func New() *Memory {
	return &Memory{pages: make(map[Addr][]uint64)}
}

func (m *Memory) page(a Addr) []uint64 {
	key := a >> pageBits
	if m.lastPage != nil && key == m.lastKey {
		return m.lastPage
	}
	p, ok := m.pages[key]
	if !ok {
		p = make([]uint64, pageWords)
		m.pages[key] = p
	}
	m.lastKey, m.lastPage = key, p
	return p
}

// Load returns the word stored at a (word-aligned).
func (m *Memory) Load(a Addr) uint64 {
	a = WordOf(a)
	return m.page(a)[(a>>3)&(pageWords-1)]
}

// Store writes the word v at a (word-aligned).
func (m *Memory) Store(a Addr, v uint64) {
	a = WordOf(a)
	m.page(a)[(a>>3)&(pageWords-1)] = v
}

// Footprint returns the number of simulated pages that have been touched.
func (m *Memory) Footprint() int { return len(m.pages) }

// Snapshot returns an independent deep copy of the memory's current
// contents. Oracles snapshot the post-setup state and replay committed
// effects against the copy.
func (m *Memory) Snapshot() *Memory {
	s := &Memory{pages: make(map[Addr][]uint64, len(m.pages))}
	for key, p := range m.pages {
		cp := make([]uint64, len(p))
		copy(cp, p)
		s.pages[key] = cp
	}
	return s
}

// Diff returns up to max word addresses at which m and o hold different
// values, in ascending order. Untouched pages compare as all-zero.
func (m *Memory) Diff(o *Memory, max int) []Addr {
	keys := make(map[Addr]bool, len(m.pages)+len(o.pages))
	for k := range m.pages {
		keys[k] = true
	}
	for k := range o.pages {
		keys[k] = true
	}
	ordered := make([]Addr, 0, len(keys))
	for k := range keys {
		ordered = append(ordered, k)
	}
	for i := 1; i < len(ordered); i++ {
		for j := i; j > 0 && ordered[j] < ordered[j-1]; j-- {
			ordered[j], ordered[j-1] = ordered[j-1], ordered[j]
		}
	}
	var zero [pageWords]uint64
	var out []Addr
	for _, k := range ordered {
		a, b := m.pages[k], o.pages[k]
		if a == nil {
			a = zero[:]
		}
		if b == nil {
			b = zero[:]
		}
		for w := 0; w < pageWords; w++ {
			if a[w] != b[w] {
				out = append(out, k<<pageBits|Addr(w*WordSize))
				if len(out) >= max {
					return out
				}
			}
		}
	}
	return out
}

// Allocator is a bump-pointer allocator over a region of simulated memory.
// Allocations never overlap and are never freed; workloads are sized so
// that this is not a limitation. The zero Addr is reserved as a nil
// pointer, so the allocator never returns it.
type Allocator struct {
	base Addr
	next Addr
	end  Addr
}

// NewAllocator returns an allocator handing out addresses in [base, base+size).
// base must be nonzero and line-aligned.
func NewAllocator(base Addr, size uint64) *Allocator {
	if base == 0 || base%LineSize != 0 {
		panic("mem: allocator base must be nonzero and line-aligned")
	}
	return &Allocator{base: base, next: base, end: base + Addr(size)}
}

// Alloc returns the address of a fresh region of at least size bytes with
// the given alignment (which must be a power of two, at least WordSize).
func (al *Allocator) Alloc(size uint64, align uint64) Addr {
	if align < WordSize || align&(align-1) != 0 {
		panic("mem: bad alignment")
	}
	a := (al.next + Addr(align) - 1) &^ Addr(align-1)
	if a+Addr(size) > al.end {
		panic("mem: allocator out of space")
	}
	al.next = a + Addr(size)
	return a
}

// AllocWords allocates n consecutive words, word-aligned.
func (al *Allocator) AllocWords(n int) Addr {
	return al.Alloc(uint64(n)*WordSize, WordSize)
}

// AllocLines allocates n consecutive cache lines, line-aligned. Use this
// for objects that must not falsely share a line with their neighbours.
func (al *Allocator) AllocLines(n int) Addr {
	return al.Alloc(uint64(n)*LineSize, LineSize)
}

// AllocObject allocates an object of n words, line-aligned if it would
// otherwise straddle a cache line that a sibling allocation shares. It
// mimics a real allocator's size-class behaviour: small objects pack,
// larger objects start on a fresh line.
func (al *Allocator) AllocObject(nWords int) Addr {
	size := uint64(nWords) * WordSize
	if size >= LineSize/2 {
		return al.Alloc(size, LineSize)
	}
	return al.Alloc(size, WordSize)
}

// Used reports the number of bytes handed out so far.
func (al *Allocator) Used() uint64 { return uint64(al.next - al.base) }

// Remaining reports the number of bytes still available.
func (al *Allocator) Remaining() uint64 { return uint64(al.end - al.next) }
