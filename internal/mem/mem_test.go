package mem

import (
	"testing"
	"testing/quick"
)

func TestLoadStoreRoundTrip(t *testing.T) {
	m := New()
	m.Store(0x1000, 42)
	if got := m.Load(0x1000); got != 42 {
		t.Fatalf("Load(0x1000) = %d, want 42", got)
	}
}

func TestLoadDefaultZero(t *testing.T) {
	m := New()
	if got := m.Load(0xDEADBEE8); got != 0 {
		t.Fatalf("fresh memory Load = %d, want 0", got)
	}
}

func TestWordAlignmentIgnoresLowBits(t *testing.T) {
	m := New()
	m.Store(0x2003, 7) // unaligned store hits word 0x2000
	if got := m.Load(0x2000); got != 7 {
		t.Fatalf("Load(0x2000) = %d, want 7", got)
	}
	if got := m.Load(0x2007); got != 7 {
		t.Fatalf("Load(0x2007) = %d, want 7 (same word)", got)
	}
}

func TestAdjacentWordsIndependent(t *testing.T) {
	m := New()
	m.Store(0x3000, 1)
	m.Store(0x3008, 2)
	if m.Load(0x3000) != 1 || m.Load(0x3008) != 2 {
		t.Fatalf("adjacent words interfere: %d %d", m.Load(0x3000), m.Load(0x3008))
	}
}

func TestCrossPageBoundary(t *testing.T) {
	m := New()
	// Words straddling a 4 KB page boundary land on different pages.
	m.Store(0xFF8, 10)
	m.Store(0x1000, 20)
	if m.Load(0xFF8) != 10 || m.Load(0x1000) != 20 {
		t.Fatal("page boundary handling broken")
	}
}

func TestLineOf(t *testing.T) {
	cases := []struct{ in, want Addr }{
		{0, 0},
		{63, 0},
		{64, 64},
		{0x12345, 0x12340},
	}
	for _, c := range cases {
		if got := LineOf(c.in); got != c.want {
			t.Errorf("LineOf(%#x) = %#x, want %#x", c.in, got, c.want)
		}
	}
}

func TestLineOfProperty(t *testing.T) {
	f := func(a uint64) bool {
		l := LineOf(Addr(a))
		return uint64(l)%LineSize == 0 && uint64(l) <= a && a-uint64(l) < LineSize
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMemoryStoreLoadProperty(t *testing.T) {
	m := New()
	f := func(a uint64, v uint64) bool {
		addr := Addr(a)
		m.Store(addr, v)
		return m.Load(addr) == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestAllocatorBasics(t *testing.T) {
	al := NewAllocator(0x10000, 1<<20)
	a := al.AllocWords(4)
	b := al.AllocWords(4)
	if a == 0 || b == 0 {
		t.Fatal("allocator returned nil address")
	}
	if b < a+4*WordSize {
		t.Fatalf("allocations overlap: a=%#x b=%#x", a, b)
	}
}

func TestAllocatorLineAlignment(t *testing.T) {
	al := NewAllocator(0x10000, 1<<20)
	al.AllocWords(3) // misalign the bump pointer
	l := al.AllocLines(2)
	if uint64(l)%LineSize != 0 {
		t.Fatalf("AllocLines not line-aligned: %#x", l)
	}
}

func TestAllocatorObjectPolicy(t *testing.T) {
	al := NewAllocator(0x10000, 1<<20)
	al.AllocWords(1)
	big := al.AllocObject(8) // 64 bytes: must start a fresh line
	if uint64(big)%LineSize != 0 {
		t.Fatalf("large object not line-aligned: %#x", big)
	}
	small1 := al.AllocObject(2)
	small2 := al.AllocObject(2)
	if LineOf(small1) != LineOf(small2) {
		t.Fatal("small objects should pack into a line")
	}
}

func TestAllocatorNoOverlapProperty(t *testing.T) {
	al := NewAllocator(0x10000, 1<<22)
	type span struct{ lo, hi uint64 }
	var spans []span
	f := func(nWords uint8) bool {
		n := int(nWords%32) + 1
		a := al.AllocObject(n)
		lo, hi := uint64(a), uint64(a)+uint64(n)*WordSize
		for _, s := range spans {
			if lo < s.hi && s.lo < hi {
				return false
			}
		}
		spans = append(spans, span{lo, hi})
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestAllocatorExhaustionPanics(t *testing.T) {
	al := NewAllocator(0x10000, 128)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on exhaustion")
		}
	}()
	al.AllocWords(1000)
}

func TestAllocatorUsedRemaining(t *testing.T) {
	al := NewAllocator(0x10000, 1<<12)
	al.AllocWords(8)
	if al.Used() != 64 {
		t.Fatalf("Used = %d, want 64", al.Used())
	}
	if al.Remaining() != (1<<12)-64 {
		t.Fatalf("Remaining = %d", al.Remaining())
	}
}

func TestNewAllocatorRejectsBadBase(t *testing.T) {
	for _, base := range []Addr{0, 7, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewAllocator(%#x) should panic", base)
				}
			}()
			NewAllocator(base, 1024)
		}()
	}
}
