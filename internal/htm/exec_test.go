package htm

import (
	"testing"
)

// TestHookSequence: OnBegin fires before every attempt, OnAbort after
// each failed one, OnCommit exactly once at the end.
func TestHookSequence(t *testing.T) {
	m := New(smallConfig(2))
	a := m.Alloc.AllocLines(1)
	var trace []string
	m.Run([]func(*Core){
		func(c *Core) {
			hooks := TxHooks{
				OnBegin:  func(att int) { trace = append(trace, "begin") },
				OnAbort:  func(info AbortInfo, att int) { trace = append(trace, "abort") },
				OnCommit: func(irr bool) { trace = append(trace, "commit") },
			}
			for i := 0; i < 10; i++ {
				c.Atomic(DefaultAtomicOpts(), hooks, func(c *Core) {
					v := c.Load(0x100, 1, a)
					c.Compute(400)
					c.Store(0x104, 2, a, v+1)
				})
			}
		},
		func(c *Core) {
			for i := 0; i < 10; i++ {
				c.Atomic(DefaultAtomicOpts(), TxHooks{}, func(c *Core) {
					v := c.Load(0x200, 3, a)
					c.Compute(400)
					c.Store(0x204, 4, a, v+1)
				})
			}
		},
	})
	begins, aborts, commits := 0, 0, 0
	pending := 0 // begins not yet resolved
	for _, e := range trace {
		switch e {
		case "begin":
			begins++
			if pending != 0 {
				t.Fatal("begin while an attempt is outstanding")
			}
			pending = 1
		case "abort":
			aborts++
			if pending != 1 {
				t.Fatal("abort without begin")
			}
			pending = 0
		case "commit":
			commits++
			pending = 0
		}
	}
	if commits != 10 {
		t.Fatalf("commits = %d, want 10", commits)
	}
	// Every begin resolves to an abort or a commit; irrevocable commits
	// have no speculative begin of their own, so begins may fall short by
	// at most the commit count.
	if begins > commits+aborts || begins < aborts {
		t.Fatalf("begins=%d aborts=%d commits=%d inconsistent", begins, aborts, commits)
	}
}

// TestIrrevocableHookFires: when retries are exhausted, OnIrrevocable
// runs before the body's irrevocable execution.
func TestIrrevocableHookFires(t *testing.T) {
	m := New(smallConfig(2))
	a := m.Alloc.AllocLines(1)
	sawIrrevocable := false
	opts := DefaultAtomicOpts()
	opts.MaxRetries = 1
	m.Run([]func(*Core){
		func(c *Core) {
			hooks := TxHooks{OnIrrevocable: func() { sawIrrevocable = true }}
			for i := 0; i < 15; i++ {
				c.Atomic(opts, hooks, func(c *Core) {
					v := c.Load(0x100, 1, a)
					c.Compute(1500)
					c.Store(0x104, 2, a, v+1)
				})
			}
		},
		func(c *Core) {
			for i := 0; i < 15; i++ {
				c.Atomic(opts, TxHooks{}, func(c *Core) {
					v := c.Load(0x200, 3, a)
					c.Compute(1500)
					c.Store(0x204, 4, a, v+1)
				})
			}
		},
	})
	if !sawIrrevocable {
		t.Fatal("no irrevocable execution despite MaxRetries=1 under contention")
	}
	if m.Mem.Load(a) != 30 {
		t.Fatalf("counter = %d, want 30", m.Mem.Load(a))
	}
}

// TestBackoffGrowsWithRetries: mean backoff must scale with the attempt
// number (Polite policy).
func TestBackoffGrowsWithRetries(t *testing.T) {
	m := New(smallConfig(1))
	c := m.Core(0)
	m.Run([]func(*Core){func(c *Core) {
		lowSum, highSum := uint64(0), uint64(0)
		for i := 0; i < 50; i++ {
			t0 := c.Now()
			c.politeBackoff(0, 64)
			lowSum += c.Now() - t0
			t0 = c.Now()
			c.politeBackoff(7, 64)
			highSum += c.Now() - t0
		}
		if highSum <= lowSum*3 {
			t.Errorf("backoff(7)=%d not much larger than backoff(0)=%d", highSum, lowSum)
		}
	}})
	_ = c
}

// TestGlobalLockBlocksNewTransactions: while one thread runs
// irrevocably, speculative commits must fail with AbortLockHeld or wait.
func TestGlobalLockBlocksNewTransactions(t *testing.T) {
	m := New(smallConfig(2))
	a := m.Alloc.AllocLines(1)
	b := m.Alloc.AllocLines(1)
	m.Run([]func(*Core){
		func(c *Core) {
			// Simulate an irrevocable section by taking the global lock.
			c.acquireGlobal()
			c.Store(0x10, 1, a, 1)
			c.SpinWait(5000, WaitGlobal)
			c.releaseGlobal()
		},
		func(c *Core) {
			c.SpinWait(200, WaitBackoff)
			c.Atomic(DefaultAtomicOpts(), TxHooks{}, func(c *Core) {
				c.Store(0x20, 2, b, 2)
			})
			// The transaction must have committed strictly after the
			// global section ended.
			if c.Now() < 5000 {
				t.Error("speculative tx committed during irrevocable section")
			}
		},
	})
	if m.Mem.Load(b) != 2 {
		t.Fatal("transaction lost")
	}
}

// TestAtomicOptsDefaults: zero-valued options get sane defaults.
func TestAtomicOptsDefaults(t *testing.T) {
	m := New(smallConfig(1))
	a := m.Alloc.AllocLines(1)
	m.Run([]func(*Core){func(c *Core) {
		c.Atomic(AtomicOpts{}, TxHooks{}, func(c *Core) {
			c.Store(0x10, 1, a, 9)
		})
	}})
	if m.Mem.Load(a) != 9 {
		t.Fatal("commit failed under default opts")
	}
}

// TestAbortInfoReasonStrings covers the Stringer.
func TestAbortInfoReasonStrings(t *testing.T) {
	want := map[AbortReason]string{
		AbortNone:      "none",
		AbortConflict:  "conflict",
		AbortOverflow:  "overflow",
		AbortExplicit:  "explicit",
		AbortLockHeld:  "lock-held",
		AbortReason(9): "AbortReason(9)",
	}
	for r, s := range want {
		if r.String() != s {
			t.Errorf("%d.String() = %q, want %q", r, r.String(), s)
		}
	}
}

// TestWastedPlusUsefulCoversTxTime: cycle accounting invariant — every
// transactional attempt lands in exactly one bucket.
func TestWastedPlusUsefulCoversTxTime(t *testing.T) {
	m := New(smallConfig(4))
	a := m.Alloc.AllocLines(1)
	bodies := make([]func(*Core), 4)
	for i := range bodies {
		bodies[i] = func(c *Core) {
			for k := 0; k < 30; k++ {
				c.Atomic(DefaultAtomicOpts(), TxHooks{}, func(c *Core) {
					v := c.Load(0x100, 1, a)
					c.Compute(200)
					c.Store(0x104, 2, a, v+1)
				})
			}
		}
	}
	m.Run(bodies)
	s := m.Stats()
	if s.UsefulTxCycles == 0 {
		t.Fatal("no useful cycles")
	}
	if s.TotalAborts() > 0 && s.WastedTxCycles == 0 {
		t.Fatal("aborts recorded but no wasted cycles")
	}
	var totalClock uint64
	for _, cs := range s.PerCore {
		totalClock += cs.FinalClock
	}
	if s.TxCycles() > totalClock {
		t.Fatalf("tx cycles %d exceed total %d", s.TxCycles(), totalClock)
	}
}

// TestNTCasContention: concurrent CAS loops behave like a working
// spinlock (exactly one owner at a time).
func TestNTCasContention(t *testing.T) {
	const threads = 6
	m := New(smallConfig(threads))
	lock := m.Alloc.AllocLines(1)
	shared := m.Alloc.AllocLines(1)
	bodies := make([]func(*Core), threads)
	for i := range bodies {
		bodies[i] = func(c *Core) {
			for k := 0; k < 20; k++ {
				for !c.NTCas(lock, 0, uint64(c.ID())+1) {
					c.SpinWait(20, WaitLock)
				}
				// Non-atomic increment protected by the CAS lock.
				v := c.NTLoad(shared)
				c.Compute(30)
				c.NTStore(shared, v+1)
				c.NTStore(lock, 0)
				c.Compute(40)
			}
		}
	}
	m.Run(bodies)
	if got := m.Mem.Load(shared); got != threads*20 {
		t.Fatalf("counter = %d, want %d (mutual exclusion broken)", got, threads*20)
	}
}

// TestLoadStoreSiteZeroAllowed: runtime-internal accesses use site 0.
func TestLoadStoreSiteZeroAllowed(t *testing.T) {
	m := New(smallConfig(1))
	a := m.Alloc.AllocLines(1)
	m.Run([]func(*Core){func(c *Core) {
		c.TxBegin()
		c.Store(0xFFF0, 0, a, 1)
		if c.Load(0xFFF4, 0, a) != 1 {
			t.Error("read own write failed")
		}
		c.TxCommit()
	}})
}
