package htm

// This file defines the pluggable scheduling hook of the engine. The
// baseline engine always runs the runnable core with the smallest virtual
// clock (ties by core ID) — one fixed interleaving per (program, seed).
// A Scheduler widens that to an adversarially chosen interleaving: at
// every globally visible event the engine collects the candidate cores
// and asks the scheduler which one runs next.
//
// Candidates are bounded by the scheduler's virtual-time window W: a core
// is eligible only while its clock is within W cycles of the minimum
// runnable clock. The window is what keeps every schedule live — a core
// spinning on a never-released lock advances its own clock with each
// poll, drifts past min+W, and drops out of the candidate set, forcing
// the engine to run the starved lock holder. With W = 0 (unbounded) a
// priority scheduler could starve a lock holder forever and turn a
// correct program into a spurious watchdog trip.
//
// Every Pick call is a decision point. Given the same decisions (and the
// same workload seed and configuration), the simulation replays
// bit-identically: candidate sets are a pure function of the decision
// prefix, so a recorded decision sequence is a complete, portable
// schedule (see internal/sched for recording, replay, and minimization).

// Scheduler chooses the next core to run at each engine decision point.
// Implementations must be deterministic functions of their own state and
// the Pick arguments; the engine serializes all calls.
type Scheduler interface {
	// Pick returns an index into runnable (candidate core IDs, ascending).
	// times[i] is the virtual clock of runnable[i]. Pick is only called
	// with len(runnable) >= 2; out-of-range returns are reduced modulo
	// len(runnable) (deliberately forgiving, so a minimized or truncated
	// replay still yields a valid schedule).
	Pick(runnable []int, times []uint64) int

	// Window is the maximum virtual-time skew, in cycles, a candidate may
	// have over the minimum runnable clock (0 = unbounded; see the
	// liveness note above before using it).
	Window() uint64
}

// SetScheduler installs a scheduler. Call before Run; nil (the default)
// keeps the baseline smallest-virtual-time order, bit-identical to
// machines that never heard of schedulers.
func (m *Machine) SetScheduler(s Scheduler) {
	if m.ran {
		panic("htm: SetScheduler after Run")
	}
	m.sched = s
}

// SchedPoint marks a pure scheduling decision point: with a scheduler
// installed it synchronizes with the engine (giving the scheduler a
// chance to preempt) without advancing the clock or touching memory.
// Without one it is a no-op, so baseline runs are unaffected. The
// staggered runtime calls it around advisory-lock acquisition and
// release, making lock-order races directly explorable.
func (c *Core) SchedPoint() {
	if c.m.sched != nil {
		c.event()
	}
}
