package htm

import "repro/internal/mem"

// TxObserver is the hook surface for correctness oracles (implemented by
// internal/oracle). A machine with no observer takes none of these calls
// and logs nothing, so the hooks are zero-impact by default.
//
// All calls happen under the engine's token discipline, so the call order
// is the global serialization order of the simulated execution:
//
//   - OnCommit fires once per atomic section, at its atomicity point — a
//     hardware transaction's commit instruction, or the end of an
//     irrevocable section's body. reads maps each word the section read
//     before writing it to the value observed (first read wins; later
//     reads cannot differ under eager conflict detection). writes maps
//     each word written to its committed value. Both maps are owned by
//     the observer after the call.
//   - OnStore fires for every other committed-memory mutation: a
//     nontransactional store or CAS (including those issued from inside a
//     transaction — they are immediate and survive aborts) and plain
//     stores outside any atomic section.
//
// Note that an irrevocable section's plain stores reach simulated memory
// immediately but are reported atomically at the section's end: a
// serializability checker that applies them to its shadow copy at the
// OnCommit point will observe exactly the divergence a broken fallback
// lock protocol creates, which is the point.
type TxObserver interface {
	OnCommit(core int, irrevocable bool, tag any, reads, writes map[mem.Addr]uint64)
	OnStore(core int, addr mem.Addr, val uint64)
}

// SetObserver installs a transaction observer. Call before Run; nil (the
// default) disables all logging.
func (m *Machine) SetObserver(o TxObserver) {
	if m.ran {
		panic("htm: SetObserver after Run")
	}
	m.observer = o
}

// Observed reports whether a TxObserver is installed. Software
// backends consult it to skip building per-commit report maps on
// unobserved runs.
func (c *Core) Observed() bool { return c.m.observer != nil }

// SetOpTag attaches an opaque operation descriptor to the core's current
// atomic section; it is handed to the observer's OnCommit and then
// cleared. Workload bodies use it to tell the serializability oracle
// which logical operation each commit performed. Setting a tag with no
// observer installed is a cheap no-op.
func (c *Core) SetOpTag(tag any) {
	if c.m.observer != nil {
		c.opTag = tag
	}
}

// obsRead logs the first external read of a word by the active atomic
// section (transactional or irrevocable). Words the section has already
// written are internal reads and never logged.
func (c *Core) obsRead(word mem.Addr, val uint64) {
	if _, wrote := c.obsWrites[word]; wrote {
		return
	}
	if _, seen := c.obsReads[word]; seen {
		return
	}
	c.obsReads[word] = val
}

// obsBeginSection resets the read/write logs for a new atomic section.
func (c *Core) obsBeginSection() {
	if c.m.observer == nil {
		return
	}
	c.obsReads = make(map[mem.Addr]uint64)
	c.obsWrites = make(map[mem.Addr]uint64)
}

// obsEndSection reports the section's atomicity point and clears the
// logs. For hardware transactions the write set is the commit-published
// write buffer; irrevocable sections accumulated obsWrites as their plain
// stores executed.
func (c *Core) obsEndSection(irrevocable bool, writes map[mem.Addr]uint64) {
	reads := c.obsReads
	tag := c.opTag
	c.obsReads, c.obsWrites, c.opTag = nil, nil, nil
	c.m.observer.OnCommit(c.id, irrevocable, tag, reads, writes)
}

// obsAbortSection discards the logs of an aborted attempt. The op tag
// survives: the retry re-runs the same logical operation (and overwrites
// the tag anyway when the body re-declares it).
func (c *Core) obsAbortSection() {
	c.obsReads, c.obsWrites = nil, nil
}
