package htm

// The engine serializes all globally visible events of the simulated
// cores by virtual time. Exactly one core goroutine runs at any moment:
// a single logical token is handed from core to core, always to the
// runnable core with the smallest virtual clock (ties broken by core ID).
// Compute-only work advances a core's local clock without involving the
// engine, so the handshake cost is paid only on memory events.
//
// The token discipline means engine state needs no mutex: every field is
// only touched by the token holder, and the wake channels provide the
// happens-before edges between consecutive holders.

type engine struct {
	time    []uint64
	done    []bool
	wake    []chan struct{}
	pending int
	allDone chan struct{}

	// sched, when non-nil, replaces the smallest-virtual-time rule with an
	// adversarial choice among the runnable cores inside the scheduler's
	// virtual-time window (see sched.go). cand/candT are reused scratch.
	sched Scheduler
	cand  []int
	candT []uint64
}

func newEngine(n int, sched Scheduler) *engine {
	e := &engine{
		time:    make([]uint64, n),
		done:    make([]bool, n),
		wake:    make([]chan struct{}, n),
		pending: n,
		allDone: make(chan struct{}),
		sched:   sched,
	}
	for i := range e.wake {
		e.wake[i] = make(chan struct{}, 1)
	}
	return e
}

// min returns the non-done core with the smallest virtual time, or -1.
func (e *engine) min() int {
	best := -1
	for i := range e.time {
		if e.done[i] {
			continue
		}
		if best == -1 || e.time[i] < e.time[best] {
			best = i
		}
	}
	return best
}

// next returns the core to hand the token to: the minimum-time runnable
// core by default, or the installed scheduler's choice among the cores
// within its virtual-time window of the minimum.
func (e *engine) next() int {
	best := e.min()
	if e.sched == nil || best == -1 {
		return best
	}
	e.cand, e.candT = e.cand[:0], e.candT[:0]
	window := e.sched.Window()
	for i := range e.time {
		if e.done[i] {
			continue
		}
		if window == 0 || e.time[i] <= e.time[best]+window {
			e.cand = append(e.cand, i)
			e.candT = append(e.candT, e.time[i])
		}
	}
	if len(e.cand) == 1 {
		return e.cand[0]
	}
	k := e.sched.Pick(e.cand, e.candT)
	if k < 0 || k >= len(e.cand) {
		k = ((k % len(e.cand)) + len(e.cand)) % len(e.cand)
	}
	return e.cand[k]
}

// sync is called by core id (the token holder) when its clock has reached
// t and it is about to perform a globally visible event. It returns when
// the core is again the chosen runnable core, possibly after handing the
// token around; on return the caller may perform its event atomically.
func (e *engine) sync(id int, t uint64) {
	e.time[id] = t
	next := e.next()
	if next == id {
		return
	}
	e.wake[next] <- struct{}{}
	<-e.wake[id]
}

// finish is called by core id when its thread body has returned. The token
// passes to the next runnable core, or the simulation completes.
func (e *engine) finish(id int, t uint64) {
	e.time[id] = t
	e.done[id] = true
	e.pending--
	if e.pending == 0 {
		close(e.allDone)
		return
	}
	e.wake[e.next()] <- struct{}{}
}

// start launches the simulation by granting the token to the chosen
// core. Call after every core goroutine is blocked on its wake channel.
func (e *engine) start() {
	e.wake[e.next()] <- struct{}{}
}

// waitAll blocks until every registered core has finished.
func (e *engine) waitAll() { <-e.allDone }
