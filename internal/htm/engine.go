package htm

// The engine serializes all globally visible events of the simulated
// cores by virtual time. Exactly one core runs at any moment: a single
// logical token is handed from core to core, always to the runnable core
// with the smallest virtual clock (ties broken by core ID), or — with a
// Scheduler installed — to an adversarially chosen core inside the
// scheduler's virtual-time window. Compute-only work advances a core's
// local clock without involving the engine, so the handoff cost is paid
// only on memory events.
//
// Two implementations exist behind the newEngine factory:
//
//   - coopEngine (the default): a single-goroutine cooperative scheduler.
//     Each core is a resumable coroutine; one engine loop on the caller's
//     goroutine resumes the token holder and regains control when the
//     holder yields. No channels and no goroutine wakeups anywhere on the
//     hot path — a handoff is a direct coroutine switch.
//   - refEngine (Config.RefEngine): the original goroutine-per-core
//     channel lock-step engine with a full minimum scan at every sync,
//     retained verbatim as the differential oracle. The equivalence suite
//     (internal/htm/equivalence, FuzzEngineHandoff) proves the two agree
//     cycle-for-cycle on traces, statistics, and final memory.
//
// The token discipline means engine state needs no mutex in either
// implementation: every field is only touched by the token holder (or the
// engine loop between holders), and the resume/park points provide the
// happens-before edges between consecutive holders.

// engine is the token-handoff contract shared by both implementations.
type engine interface {
	// run executes one body per core to completion. panics[i] receives the
	// panic value raised by body i, if any; run itself only panics on
	// engine bugs. On return every core has finished and its FinalClock is
	// recorded.
	run(m *Machine, bodies []func(*Core), panics []any)
	// sync is called by core id (the token holder) when its clock has
	// reached t and it is about to perform a globally visible event. It
	// returns when the core is again the chosen runnable core, possibly
	// after handing the token around; on return the caller may perform its
	// event atomically.
	sync(id int, t uint64)
}

// newEngine is the single factory for token engines. All engine
// construction MUST go through it so the Config.RefEngine differential
// oracle can never be silently bypassed; staggervet's refengine analyzer
// enforces this statically.
func newEngine(n int, sched Scheduler, ref bool) engine {
	if ref {
		return newRefEngine(n, sched)
	}
	return newCoopEngine(n, sched)
}
