package htm

// The engine serializes all globally visible events of the simulated
// cores by virtual time. Exactly one core goroutine runs at any moment:
// a single logical token is handed from core to core, always to the
// runnable core with the smallest virtual clock (ties broken by core ID).
// Compute-only work advances a core's local clock without involving the
// engine, so the handshake cost is paid only on memory events.
//
// The token discipline means engine state needs no mutex: every field is
// only touched by the token holder, and the wake channels provide the
// happens-before edges between consecutive holders.

type engine struct {
	time    []uint64
	done    []bool
	wake    []chan struct{}
	pending int
	allDone chan struct{}
}

func newEngine(n int) *engine {
	e := &engine{
		time:    make([]uint64, n),
		done:    make([]bool, n),
		wake:    make([]chan struct{}, n),
		pending: n,
		allDone: make(chan struct{}),
	}
	for i := range e.wake {
		e.wake[i] = make(chan struct{}, 1)
	}
	return e
}

// min returns the non-done core with the smallest virtual time, or -1.
func (e *engine) min() int {
	best := -1
	for i := range e.time {
		if e.done[i] {
			continue
		}
		if best == -1 || e.time[i] < e.time[best] {
			best = i
		}
	}
	return best
}

// sync is called by core id (the token holder) when its clock has reached
// t and it is about to perform a globally visible event. It returns when
// the core is again the minimum-time runnable core, possibly after handing
// the token around; on return the caller may perform its event atomically.
func (e *engine) sync(id int, t uint64) {
	e.time[id] = t
	next := e.min()
	if next == id {
		return
	}
	e.wake[next] <- struct{}{}
	<-e.wake[id]
}

// finish is called by core id when its thread body has returned. The token
// passes to the next runnable core, or the simulation completes.
func (e *engine) finish(id int, t uint64) {
	e.time[id] = t
	e.done[id] = true
	e.pending--
	if e.pending == 0 {
		close(e.allDone)
		return
	}
	e.wake[e.min()] <- struct{}{}
}

// start launches the simulation by granting the token to the minimum-time
// core. Call after every core goroutine is blocked on its wake channel.
func (e *engine) start() {
	e.wake[e.min()] <- struct{}{}
}

// waitAll blocks until every registered core has finished.
func (e *engine) waitAll() { <-e.allDone }
