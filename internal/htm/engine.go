package htm

// The engine serializes all globally visible events of the simulated
// cores by virtual time. Exactly one core goroutine runs at any moment:
// a single logical token is handed from core to core, always to the
// runnable core with the smallest virtual clock (ties broken by core ID).
// Compute-only work advances a core's local clock without involving the
// engine, so the handshake cost is paid only on memory events.
//
// The token discipline means engine state needs no mutex: every field is
// only touched by the token holder, and the wake channels provide the
// happens-before edges between consecutive holders.
//
// Hot path. While one core holds the token, every other core's clock is
// frozen — other cores only advance their clocks while *they* hold the
// token. The minimum clock among the other runnable cores is therefore a
// constant for the duration of a tenure, so it is computed once per
// handoff (grant) and every subsequent sync by the holder is a single
// comparison: the holder keeps the token, without any channel operation
// or O(cores) scan, unless its new time actually loses the virtual-time
// race. A core only parks when it genuinely must yield. The slow-path-only
// variant (reference=true, every sync runs the full scan) is retained as
// the oracle for the equivalence fuzz test; both must agree pick-for-pick
// by construction, and FuzzEngineHandoff checks they do cycle-for-cycle.

type engine struct {
	time    []uint64
	done    []bool
	wake    []chan struct{}
	pending int
	allDone chan struct{}

	// Fast-path state (valid while sched == nil && !reference): holder is
	// the core that currently owns the token; othersMin/othersID are the
	// smallest clock among the other non-done cores and the smallest core
	// ID achieving it (othersID == -1 when no other core is runnable).
	// Recomputed once per grant, read on every sync.
	holder    int
	othersMin uint64
	othersID  int
	// reference disables the O(1) fast path so every sync runs the full
	// minimum scan — the pre-optimization engine, kept for differential
	// testing (Config.RefEngine).
	reference bool

	// sched, when non-nil, replaces the smallest-virtual-time rule with an
	// adversarial choice among the runnable cores inside the scheduler's
	// virtual-time window (see sched.go). cand/candT are reused scratch.
	sched Scheduler
	cand  []int
	candT []uint64
}

func newEngine(n int, sched Scheduler, reference bool) *engine {
	e := &engine{
		time:      make([]uint64, n),
		done:      make([]bool, n),
		wake:      make([]chan struct{}, n),
		pending:   n,
		allDone:   make(chan struct{}),
		holder:    -1,
		othersID:  -1,
		reference: reference,
		sched:     sched,
	}
	for i := range e.wake {
		e.wake[i] = make(chan struct{}, 1)
	}
	return e
}

// min returns the non-done core with the smallest virtual time, or -1.
func (e *engine) min() int {
	best := -1
	for i := range e.time {
		if e.done[i] {
			continue
		}
		if best == -1 || e.time[i] < e.time[best] {
			best = i
		}
	}
	return best
}

// next returns the core to hand the token to: the minimum-time runnable
// core by default, or the installed scheduler's choice among the cores
// within its virtual-time window of the minimum.
func (e *engine) next() int {
	best := e.min()
	if e.sched == nil || best == -1 {
		return best
	}
	e.cand, e.candT = e.cand[:0], e.candT[:0]
	window := e.sched.Window()
	for i := range e.time {
		if e.done[i] {
			continue
		}
		if window == 0 || e.time[i] <= e.time[best]+window {
			e.cand = append(e.cand, i)
			e.candT = append(e.candT, e.time[i])
		}
	}
	if len(e.cand) == 1 {
		return e.cand[0]
	}
	k := e.sched.Pick(e.cand, e.candT)
	if k < 0 || k >= len(e.cand) {
		k = ((k % len(e.cand)) + len(e.cand)) % len(e.cand)
	}
	return e.cand[k]
}

// grant hands the token to core id: it becomes the holder, the frozen
// minimum over the other runnable cores is recomputed for the fast path,
// and the core is woken. Callers must have chosen id via next().
func (e *engine) grant(id int) {
	e.holder = id
	e.othersID = -1
	for i := range e.time {
		if i == id || e.done[i] {
			continue
		}
		if e.othersID == -1 || e.time[i] < e.othersMin {
			e.othersMin, e.othersID = e.time[i], i
		}
	}
	e.wake[id] <- struct{}{}
}

// keepsToken reports whether the holder, now at time t, still wins the
// virtual-time race against the frozen minimum of the other runnable
// cores (ties go to the smallest core ID, matching min()'s ascending
// scan). With no other runnable core the holder trivially keeps running.
func (e *engine) keepsToken(id int, t uint64) bool {
	return e.othersID == -1 || t < e.othersMin || (t == e.othersMin && id < e.othersID)
}

// sync is called by core id (the token holder) when its clock has reached
// t and it is about to perform a globally visible event. It returns when
// the core is again the chosen runnable core, possibly after handing the
// token around; on return the caller may perform its event atomically.
func (e *engine) sync(id int, t uint64) {
	e.time[id] = t
	if e.sched == nil && !e.reference {
		// Fast path: a single comparison against the per-tenure constant.
		if e.keepsToken(id, t) {
			return
		}
	} else {
		next := e.next()
		if next == id {
			return
		}
		e.grant(next)
		<-e.wake[id]
		return
	}
	// Fast path lost the race: the winner is, by the tie-break, exactly
	// the recorded other-minimum core.
	e.grant(e.othersID)
	<-e.wake[id]
}

// finish is called by core id when its thread body has returned. The token
// passes to the next runnable core, or the simulation completes.
func (e *engine) finish(id int, t uint64) {
	e.time[id] = t
	e.done[id] = true
	e.pending--
	if e.pending == 0 {
		close(e.allDone)
		return
	}
	e.grant(e.next())
}

// start launches the simulation by granting the token to the chosen
// core. Call after every core goroutine is blocked on its wake channel.
func (e *engine) start() {
	e.grant(e.next())
}

// waitAll blocks until every registered core has finished.
func (e *engine) waitAll() { <-e.allDone }
