package htm

import (
	"errors"
	"reflect"
	"strings"
	"testing"
)

// fakeInjector fires a spurious abort on every Nth transactional event,
// plus fixed NT delays and stall jitter. (The real deterministic injector
// lives in internal/chaos; htm's own tests use a local fake to keep the
// package dependency-free.)
type fakeInjector struct {
	abortEvery int
	reason     AbortReason
	delay      uint64
	jitter     uint64
	events     int
}

func (f *fakeInjector) SpuriousAbort(core int, now uint64) (AbortReason, bool) {
	f.events++
	if f.abortEvery > 0 && f.events%f.abortEvery == 0 {
		r := f.reason
		if r == AbortNone {
			r = AbortSpurious
		}
		return r, true
	}
	return AbortNone, false
}

func (f *fakeInjector) NTDelay(core int, now uint64) uint64     { return f.delay }
func (f *fakeInjector) StallJitter(core int, now uint64) uint64 { return f.jitter }

// TestSpuriousAbortDeliveredAndRetried: an injected abort must unwind the
// attempt like a real conflict, count under AbortSpurious, and leave the
// retry loop to finish the block correctly (speculatively or irrevocably).
func TestSpuriousAbortDeliveredAndRetried(t *testing.T) {
	m := New(smallConfig(1))
	fi := &fakeInjector{abortEvery: 3}
	m.SetFaultInjector(fi)
	a := m.Alloc.AllocLines(1)
	m.Run([]func(*Core){func(c *Core) {
		for k := 0; k < 10; k++ {
			c.Atomic(DefaultAtomicOpts(), TxHooks{}, func(c *Core) {
				v := c.Load(0x100, 1, a)
				c.Store(0x104, 2, a, v+1)
			})
		}
	}})
	if got := m.Mem.Load(a); got != 10 {
		t.Fatalf("counter = %d, want 10 (spurious aborts broke atomicity)", got)
	}
	s := m.Stats()
	if s.Commits != 10 {
		t.Fatalf("commits = %d, want 10", s.Commits)
	}
	if s.Aborts[AbortSpurious] == 0 {
		t.Fatal("no spurious aborts recorded despite abortEvery=3")
	}
	if s.Aborts[AbortConflict] != 0 {
		t.Fatalf("single core recorded %d conflict aborts", s.Aborts[AbortConflict])
	}
}

// TestSpuriousAbortCustomReason: the injector's reason code is the one
// that lands in the stats (chaos campaigns use AbortConflict to stress
// the locking policy with causeless conflicts).
func TestSpuriousAbortCustomReason(t *testing.T) {
	m := New(smallConfig(1))
	m.SetFaultInjector(&fakeInjector{abortEvery: 2, reason: AbortExplicit})
	a := m.Alloc.AllocLines(1)
	m.Run([]func(*Core){func(c *Core) {
		c.Atomic(DefaultAtomicOpts(), TxHooks{}, func(c *Core) {
			c.Store(0x100, 1, a, 1)
		})
	}})
	s := m.Stats()
	if s.Aborts[AbortExplicit] == 0 {
		t.Fatalf("no aborts under the injected reason; stats %+v", s.Aborts)
	}
}

// TestIrrevocableImmuneToSpuriousAborts: the irrevocable fallback runs
// non-speculatively, so even an injector that aborts every transactional
// event cannot starve it — the guaranteed-progress path of the chaos
// campaigns.
func TestIrrevocableImmuneToSpuriousAborts(t *testing.T) {
	m := New(smallConfig(1))
	m.SetFaultInjector(&fakeInjector{abortEvery: 1}) // every event aborts
	a := m.Alloc.AllocLines(1)
	m.Run([]func(*Core){func(c *Core) {
		opts := DefaultAtomicOpts()
		opts.MaxRetries = 2
		for k := 0; k < 5; k++ {
			c.Atomic(opts, TxHooks{}, func(c *Core) {
				v := c.Load(0x100, 1, a)
				c.Store(0x104, 2, a, v+1)
			})
		}
	}})
	if got := m.Mem.Load(a); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	s := m.Stats()
	if s.IrrevocableCommits != 5 {
		t.Fatalf("irrevocable commits = %d, want 5 (all speculation poisoned)", s.IrrevocableCommits)
	}
}

// TestNTDelayCharged: injected NT-store delays must advance the core's
// clock and be charged to the fault wait bucket.
func TestNTDelayCharged(t *testing.T) {
	run := func(delay uint64) Stats {
		m := New(smallConfig(1))
		m.SetFaultInjector(&fakeInjector{delay: delay})
		a := m.Alloc.AllocLines(1)
		m.Run([]func(*Core){func(c *Core) {
			for k := 0; k < 8; k++ {
				c.NTStore(a, uint64(k))
			}
		}})
		return m.Stats()
	}
	base := run(0)
	slow := run(200)
	if slow.WaitCycles[WaitFault] != 8*200 {
		t.Fatalf("fault wait = %d, want %d", slow.WaitCycles[WaitFault], 8*200)
	}
	if slow.Makespan != base.Makespan+8*200 {
		t.Fatalf("makespan %d, want base %d + %d", slow.Makespan, base.Makespan, 8*200)
	}
}

// TestWatchdogTripsOnComputeLoop: a core that only computes (no memory
// events) must still trip the watchdog instead of hanging.
func TestWatchdogTripsOnComputeLoop(t *testing.T) {
	cfg := smallConfig(1)
	cfg.WatchdogCycles = 50_000
	m := New(cfg)
	err := m.RunChecked([]func(*Core){func(c *Core) {
		for {
			c.Compute(1000)
		}
	}})
	var we *WatchdogError
	if !errors.As(err, &we) {
		t.Fatalf("err = %v, want *WatchdogError", err)
	}
	if we.Cycles <= we.Limit || we.Limit != 50_000 {
		t.Fatalf("trip point %d not past limit %d", we.Cycles, we.Limit)
	}
	if !strings.Contains(we.Error(), "watchdog") {
		t.Fatalf("error text %q lacks 'watchdog'", we.Error())
	}
}

// TestWatchdogCarriesTrace: when transactions ran before the trip, the
// error must carry the trailing events for diagnosis.
func TestWatchdogCarriesTrace(t *testing.T) {
	cfg := smallConfig(1)
	cfg.WatchdogCycles = 100_000
	m := New(cfg)
	a := m.Alloc.AllocLines(1)
	err := m.RunChecked([]func(*Core){func(c *Core) {
		for {
			c.Atomic(DefaultAtomicOpts(), TxHooks{}, func(c *Core) {
				c.Store(0x100, 1, a, 1)
			})
		}
	}})
	var we *WatchdogError
	if !errors.As(err, &we) {
		t.Fatalf("err = %v, want *WatchdogError", err)
	}
	if len(we.Trace) == 0 {
		t.Fatal("watchdog error carries no trace events")
	}
	if len(we.Trace) > watchdogTraceN {
		t.Fatalf("trace holds %d events, ring is %d", len(we.Trace), watchdogTraceN)
	}
	if !strings.Contains(we.Error(), "last") {
		t.Fatalf("error text %q does not mention the trace", we.Error())
	}
}

// TestWatchdogQuietWhenUnderLimit: a bounded run with a generous watchdog
// must behave exactly like an unbounded one.
func TestWatchdogQuietWhenUnderLimit(t *testing.T) {
	run := func(wd uint64) Stats {
		cfg := smallConfig(2)
		cfg.WatchdogCycles = wd
		m := New(cfg)
		a := m.Alloc.AllocLines(1)
		m.Run([]func(*Core){
			func(c *Core) {
				for k := 0; k < 20; k++ {
					c.Atomic(DefaultAtomicOpts(), TxHooks{}, func(c *Core) {
						v := c.Load(0x100, 1, a)
						c.Store(0x104, 2, a, v+1)
					})
				}
			},
			func(c *Core) {
				for k := 0; k < 20; k++ {
					c.Atomic(DefaultAtomicOpts(), TxHooks{}, func(c *Core) {
						v := c.Load(0x200, 3, a)
						c.Store(0x204, 4, a, v+1)
					})
				}
			},
		})
		return m.Stats()
	}
	base := run(0)
	bounded := run(1 << 40)
	if !reflect.DeepEqual(base, bounded) {
		t.Fatalf("watchdog changed execution:\nbase    %+v\nbounded %+v", base, bounded)
	}
}

// TestRunCheckedRethrowsWorkloadPanics: only watchdog trips become
// errors; genuine workload bugs must still surface as panics.
func TestRunCheckedRethrowsWorkloadPanics(t *testing.T) {
	m := New(smallConfig(1))
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("workload panic swallowed by RunChecked")
		}
	}()
	m.RunChecked([]func(*Core){func(c *Core) {
		panic("workload bug")
	}})
}

// TestExpBackoffBounded: exponential backoff waits must stay under
// (1.5 × cap) per retry and still advance the clock.
func TestExpBackoffBounded(t *testing.T) {
	m := New(smallConfig(1))
	m.Run([]func(*Core){func(c *Core) {
		for attempt := 0; attempt < 40; attempt++ {
			before := c.Now()
			c.expBackoff(attempt, 64, 1024)
			d := c.Now() - before
			if d == 0 {
				t.Fatalf("attempt %d: backoff waited 0 cycles", attempt)
			}
			if d > 1024+1024/2+1024 { // mean/2 + jitter < 1.5*cap, plus slack
				t.Fatalf("attempt %d: backoff waited %d cycles, cap 1024", attempt, d)
			}
		}
	}})
}
