package htm

import "repro/internal/mem"

// This file holds the flat, open-addressed hot-path tables that replace
// the Go maps the simulator used per memory event. Every structure here
// is engine-private, single-threaded under the token discipline, and
// sized in powers of two so a lookup is a multiply, a shift, and a short
// linear probe over one contiguous allocation — no hashing interface, no
// per-entry boxing, no map iteration order anywhere near simulated
// semantics.

// lineHash spreads cache-line addresses over a power-of-two table
// (Fibonacci hashing on the line number).
func lineHash(line mem.Addr, mask uint64) uint64 {
	return (uint64(line>>6) * 0x9E3779B97F4A7C15 >> 17) & mask
}

// lineEntry is the unified per-line coherence record: the transactional
// directory bits (readers/writers masks), each core's private-L2
// presence bit, and the shared-L3 presence bit. Folding all four maps
// the simulator previously kept per line (dir, per-core l2 ×N, l3) into
// one entry means a memory event resolves conflict detection and the
// whole cache hierarchy with a single lookup.
type lineEntry struct {
	line    mem.Addr // key; 0 = empty slot (line 0 is never allocated)
	readers uint32   // cores with the line in their tx read set
	writers uint32   // cores with the line in their tx write set
	l2mask  uint32   // cores with the line present in their private L2
	inL3    bool     // line present in the shared L3
}

// lineTable is an insert-only open-addressed table of lineEntry keyed by
// line address. Entries are never deleted (presence bits are cleared in
// place instead), so probing needs no tombstones. Pointers returned by
// get/lookup are invalidated by the next get — callers fetch the entry
// once per event and pass it down.
type lineTable struct {
	slots []lineEntry
	mask  uint64
	n     int
}

const lineTableMinSize = 1024

func (t *lineTable) init() {
	t.slots = make([]lineEntry, lineTableMinSize)
	t.mask = lineTableMinSize - 1
	t.n = 0
}

// lookup returns the entry for line, or nil if the line has never been
// seen.
func (t *lineTable) lookup(line mem.Addr) *lineEntry {
	for i := lineHash(line, t.mask); ; i = (i + 1) & t.mask {
		s := &t.slots[i]
		if s.line == line {
			return s
		}
		if s.line == 0 {
			return nil
		}
	}
}

// get returns the entry for line, inserting a zero entry on first use.
func (t *lineTable) get(line mem.Addr) *lineEntry {
	for i := lineHash(line, t.mask); ; i = (i + 1) & t.mask {
		s := &t.slots[i]
		if s.line == line {
			return s
		}
		if s.line == 0 {
			if t.n >= len(t.slots)*3/4 {
				t.grow()
				return t.get(line)
			}
			t.n++
			s.line = line
			return s
		}
	}
}

func (t *lineTable) grow() {
	old := t.slots
	t.slots = make([]lineEntry, len(old)*2)
	t.mask = uint64(len(t.slots) - 1)
	for i := range old {
		if old[i].line == 0 {
			continue
		}
		j := lineHash(old[i].line, t.mask)
		for t.slots[j].line != 0 {
			j = (j + 1) & t.mask
		}
		t.slots[j] = old[i]
	}
}

// txEnt is one line in a core's speculative set: the first transactional
// access's full PC and static site, plus whether the line has been
// written (the per-line tx bits and 12-bit PC tag of paper Section 4).
type txEnt struct {
	line  mem.Addr
	pc    uint64
	site  uint32
	wrote bool
}

// txTable is the core's speculative-set index: a dense insertion-ordered
// entry list (iterated by clearTx/stripDir/lazyResolve, so iteration
// order is deterministic by construction) plus an open-addressed index
// of int32 slot values (entry index + 1; 0 = empty). It is cleared per
// transaction with one memclr of the index and a truncation of the list.
type txTable struct {
	ents  []txEnt
	slots []int32
	mask  uint64
}

const txTableMinSize = 64

func (t *txTable) init() {
	t.ents = make([]txEnt, 0, txTableMinSize/2)
	t.slots = make([]int32, txTableMinSize)
	t.mask = txTableMinSize - 1
}

// lookup returns the entry for line, or nil. The pointer is invalidated
// by the next add.
func (t *txTable) lookup(line mem.Addr) *txEnt {
	for i := lineHash(line, t.mask); ; i = (i + 1) & t.mask {
		k := t.slots[i]
		if k == 0 {
			return nil
		}
		if e := &t.ents[k-1]; e.line == line {
			return e
		}
	}
}

// add inserts a new entry; the caller has checked the line is absent.
func (t *txTable) add(line mem.Addr, pc uint64, site uint32, wrote bool) {
	if len(t.ents) >= len(t.slots)*3/4 {
		t.grow()
	}
	t.ents = append(t.ents, txEnt{line: line, pc: pc, site: site, wrote: wrote})
	i := lineHash(line, t.mask)
	for t.slots[i] != 0 {
		i = (i + 1) & t.mask
	}
	t.slots[i] = int32(len(t.ents))
}

func (t *txTable) grow() {
	t.slots = make([]int32, len(t.slots)*2)
	t.mask = uint64(len(t.slots) - 1)
	for k := range t.ents {
		i := lineHash(t.ents[k].line, t.mask)
		for t.slots[i] != 0 {
			i = (i + 1) & t.mask
		}
		t.slots[i] = int32(k + 1)
	}
}

// clear resets the table for the next transaction.
func (t *txTable) clear() {
	t.ents = t.ents[:0]
	clear(t.slots)
}

// wordEnt is one word in a core's transactional write buffer.
type wordEnt struct {
	addr mem.Addr
	val  uint64
}

// wordTable is the core's write buffer: dense insertion-ordered entries
// plus an open-addressed index, same layout as txTable. Commit publishes
// the dense list in insertion order; the buffered words are distinct, so
// the published memory state is order-independent.
type wordTable struct {
	ents  []wordEnt
	slots []int32
	mask  uint64
}

func (t *wordTable) init() {
	t.ents = make([]wordEnt, 0, txTableMinSize/2)
	t.slots = make([]int32, txTableMinSize)
	t.mask = txTableMinSize - 1
}

func wordHash(a mem.Addr, mask uint64) uint64 {
	return (uint64(a>>3) * 0x9E3779B97F4A7C15 >> 17) & mask
}

// get returns the buffered value for word a, if any.
func (t *wordTable) get(a mem.Addr) (uint64, bool) {
	for i := wordHash(a, t.mask); ; i = (i + 1) & t.mask {
		k := t.slots[i]
		if k == 0 {
			return 0, false
		}
		if e := &t.ents[k-1]; e.addr == a {
			return e.val, true
		}
	}
}

// put buffers v for word a, overwriting any earlier buffered value.
func (t *wordTable) put(a mem.Addr, v uint64) {
	for i := wordHash(a, t.mask); ; i = (i + 1) & t.mask {
		k := t.slots[i]
		if k == 0 {
			if len(t.ents) >= len(t.slots)*3/4 {
				t.grow()
				t.put(a, v)
				return
			}
			t.ents = append(t.ents, wordEnt{addr: a, val: v})
			t.slots[i] = int32(len(t.ents))
			return
		}
		if e := &t.ents[k-1]; e.addr == a {
			e.val = v
			return
		}
	}
}

func (t *wordTable) grow() {
	t.slots = make([]int32, len(t.slots)*2)
	t.mask = uint64(len(t.slots) - 1)
	for k := range t.ents {
		i := wordHash(t.ents[k].addr, t.mask)
		for t.slots[i] != 0 {
			i = (i + 1) & t.mask
		}
		t.slots[i] = int32(k + 1)
	}
}

// clear resets the buffer for the next transaction.
func (t *wordTable) clear() {
	t.ents = t.ents[:0]
	clear(t.slots)
}
