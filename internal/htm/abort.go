package htm

import (
	"fmt"

	"repro/internal/mem"
)

// AbortReason classifies why a hardware transaction aborted.
type AbortReason uint8

const (
	// AbortNone means the transaction has not aborted.
	AbortNone AbortReason = iota
	// AbortConflict is a data conflict with another core (or with a
	// nontransactional store). Requester wins: the victim aborts.
	AbortConflict
	// AbortOverflow means the speculative working set exceeded L1
	// capacity or associativity.
	AbortOverflow
	// AbortExplicit is a software-requested abort (xabort).
	AbortExplicit
	// AbortLockHeld means the transaction found the irrevocable global
	// lock held when it tried to commit (or subscribe), and self-aborted.
	AbortLockHeld
	// AbortSpurious is a best-effort-HTM abort with no architectural
	// cause visible to software: interrupts, capacity aliasing, TLB
	// shootdowns. The simulator is fault-free by default; these are
	// produced only by an installed FaultInjector.
	AbortSpurious
	numAbortReasons
)

// NumAbortReasons is the number of distinct abort reasons, for sizing
// per-reason counter arrays outside this package.
const NumAbortReasons = int(numAbortReasons)

// String implements fmt.Stringer.
func (r AbortReason) String() string {
	switch r {
	case AbortNone:
		return "none"
	case AbortConflict:
		return "conflict"
	case AbortOverflow:
		return "overflow"
	case AbortExplicit:
		return "explicit"
	case AbortLockHeld:
		return "lock-held"
	case AbortSpurious:
		return "spurious"
	default:
		return fmt.Sprintf("AbortReason(%d)", uint8(r))
	}
}

// AbortInfo is the architectural abort status delivered to the runtime's
// abort handler. On the simulated machine it corresponds to the contents
// of %rbx after a contention abort: the low bits of the conflicting data
// address and, when the machine supports it, the low PCTagBits bits of the
// PC at which the conflicting line was first accessed in the transaction.
type AbortInfo struct {
	Reason AbortReason

	// ConfAddr is the line address of the conflicting datum (conflict
	// aborts only).
	ConfAddr mem.Addr

	// ConfPC holds the truncated conflicting PC; valid only when HasPC is
	// true (requires Config.HardwareCPC).
	ConfPC uint64
	HasPC  bool

	// ByCore is the core whose access caused this abort, or -1.
	ByCore int

	// TrueSite is simulator ground truth: the static site ID of this
	// core's first transactional access to the conflicting line. It is
	// NOT architecturally visible; it exists only so experiments can
	// measure anchor-identification accuracy (Table 3 of the paper).
	TrueSite uint32

	// KillerSite and KillerAB are simulator ground truth about the other
	// side of the conflict, captured at kill time (the requester may have
	// moved on by the time the victim observes the abort): the static
	// site of the killing access (for a lazy commit, the killer's first
	// access to the line) and the killer core's atomic-block tag
	// (SetABTag; 0 = outside any tagged block, e.g. runtime NT stores).
	// Like TrueSite they are not architecturally visible; they feed the
	// conflicting-pair histogram the static/dynamic containment check
	// of `staggersim -verify-conflicts` consumes.
	KillerSite uint32
	KillerAB   int
}

// txAbort is the panic sentinel used to unwind a core out of an aborted
// transaction back to its retry loop.
type txAbort struct {
	info AbortInfo
}
