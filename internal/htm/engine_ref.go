package htm

// refEngine is the original goroutine-per-core channel lock-step engine,
// retained as the differential oracle behind Config.RefEngine. Every core
// runs on its own goroutine and parks on a wake channel whenever it is
// not the token holder; every sync runs the full minimum scan (the
// pre-optimization reference semantics). It is deliberately the simplest
// possible implementation of the token discipline: the equivalence suite
// trusts it precisely because it shares no handoff machinery with the
// cooperative engine.
type refEngine struct {
	time    []uint64
	done    []bool
	wake    []chan struct{}
	pending int
	allDone chan struct{}

	// sched, when non-nil, replaces the smallest-virtual-time rule with an
	// adversarial choice among the runnable cores inside the scheduler's
	// virtual-time window (see sched.go). cand/candT are reused scratch.
	sched Scheduler
	cand  []int
	candT []uint64
}

func newRefEngine(n int, sched Scheduler) *refEngine {
	e := &refEngine{
		time:    make([]uint64, n),
		done:    make([]bool, n),
		wake:    make([]chan struct{}, n),
		pending: n,
		allDone: make(chan struct{}),
		sched:   sched,
	}
	for i := range e.wake {
		e.wake[i] = make(chan struct{}, 1)
	}
	return e
}

// min returns the non-done core with the smallest virtual time, or -1.
func (e *refEngine) min() int {
	best := -1
	for i := range e.time {
		if e.done[i] {
			continue
		}
		if best == -1 || e.time[i] < e.time[best] {
			best = i
		}
	}
	return best
}

// next returns the core to hand the token to: the minimum-time runnable
// core by default, or the installed scheduler's choice among the cores
// within its virtual-time window of the minimum.
func (e *refEngine) next() int {
	best := e.min()
	if e.sched == nil || best == -1 {
		return best
	}
	e.cand, e.candT = e.cand[:0], e.candT[:0]
	window := e.sched.Window()
	for i := range e.time {
		if e.done[i] {
			continue
		}
		if window == 0 || e.time[i] <= e.time[best]+window {
			e.cand = append(e.cand, i)
			e.candT = append(e.candT, e.time[i])
		}
	}
	if len(e.cand) == 1 {
		return e.cand[0]
	}
	k := e.sched.Pick(e.cand, e.candT)
	if k < 0 || k >= len(e.cand) {
		k = ((k % len(e.cand)) + len(e.cand)) % len(e.cand)
	}
	return e.cand[k]
}

// grant hands the token to core id by waking its goroutine. Callers must
// have chosen id via next().
func (e *refEngine) grant(id int) {
	e.wake[id] <- struct{}{}
}

// sync implements engine: the full scan runs at every globally visible
// event, and losing the virtual-time race parks the caller on its wake
// channel until the token comes back.
func (e *refEngine) sync(id int, t uint64) {
	e.time[id] = t
	next := e.next()
	if next == id {
		return
	}
	e.grant(next)
	<-e.wake[id]
}

// finish is called by core id when its thread body has returned. The token
// passes to the next runnable core, or the simulation completes.
func (e *refEngine) finish(id int, t uint64) {
	e.time[id] = t
	e.done[id] = true
	e.pending--
	if e.pending == 0 {
		close(e.allDone)
		return
	}
	e.grant(e.next())
}

// run implements engine: one goroutine per core, lock-step via the wake
// channels, exactly the original execution model.
func (e *refEngine) run(m *Machine, bodies []func(*Core), panics []any) {
	for i, body := range bodies {
		c := m.cores[i]
		go func(c *Core, body func(*Core)) {
			// A panicking body must still hand back the token, or the
			// other cores (and Run's caller) would hang; the panic value
			// is re-raised in the caller's goroutine by RunChecked.
			defer func() {
				if r := recover(); r != nil {
					panics[c.id] = r
					if c.inTx {
						c.clearTx()
					}
				}
				c.stats.FinalClock = c.clock
				e.finish(c.id, c.clock)
			}()
			<-e.wake[c.id] // wait for the engine to grant the first turn
			body(c)
			if c.inTx {
				panic("htm: thread body returned inside a transaction")
			}
		}(c, body)
	}
	e.grant(e.next()) // start: hand the token to the first chosen core
	<-e.allDone
}
