package htm

import "repro/internal/mem"

// This file is the accounting and publication surface for SOFTWARE
// transaction runtimes (e.g. the OCC backend): concurrency-control
// schemes that never enter a hardware transaction but still want their
// attempts, commits, aborts, and cycle attribution to land in the same
// CoreStats schema — and their serialization points in the same
// observer stream — as hardware transactions, so reports and oracles
// read every backend uniformly.
//
// A software attempt brackets its execution with SWTxBegin and exactly
// one of SWTxCommit or SWTxAbort. Inside the bracket the runtime issues
// ordinary nontransactional accesses (NTLoad/NTStore/NTCas); the
// bracket only attributes the elapsed cycles, it creates no speculative
// state and cannot be aborted remotely.

// SWTxBegin opens a software-transaction attempt: subsequent cycles are
// attributed to the attempt (useful on commit, wasted on abort, stall
// categories excluded) exactly as for a hardware attempt.
func (c *Core) SWTxBegin() {
	if c.inTx || c.inAttempt {
		panic("htm: SWTxBegin inside an active attempt")
	}
	c.inAttempt = true
	c.attemptStart = c.clock
	c.attemptWait = 0
	c.recordBegin()
}

// SWTxCommit closes a committed software attempt, accounting its
// in-attempt time as useful. irrevocable marks attempts that ran under
// a fallback lock without optimistic validation (counted like the HTM
// runtime's irrevocable fallbacks). Reporting the serialization point
// to an installed observer is the caller's job (ReportAtomic), because
// only the runtime knows its read and write sets.
func (c *Core) SWTxCommit(irrevocable bool) {
	if !c.inAttempt || c.inTx {
		panic("htm: SWTxCommit outside a software attempt")
	}
	c.stats.Commits++
	if irrevocable {
		c.stats.IrrevocableCommits++
	}
	c.stats.UsefulTxCycles += c.clock - c.attemptStart - c.attemptWait
	c.recordCommit()
	c.inAttempt = false
}

// SWTxAbort closes a failed software attempt (e.g. OCC validation
// failure), accounting its in-attempt time as wasted under the given
// reason. Unlike a hardware abort it does not unwind: the caller's
// control flow decides whether to retry.
func (c *Core) SWTxAbort(reason AbortReason) {
	if !c.inAttempt || c.inTx {
		panic("htm: SWTxAbort outside a software attempt")
	}
	c.stats.Aborts[reason]++
	c.stats.WastedTxCycles += c.clock - c.attemptStart - c.attemptWait
	c.recordAbort(AbortInfo{Reason: reason, ByCore: c.id})
	c.inAttempt = false
}

// ReportAtomic reports a software transaction's serialization point to
// the installed observer: reads maps each word first-read by the
// attempt to the value observed, writes maps each word written to its
// committed value (both owned by the observer afterwards). Call it at
// the attempt's atomicity point — after validation succeeds and before
// the write set is published — so the observer's shadow state matches
// what validation checked. A cheap no-op without an observer.
func (c *Core) ReportAtomic(irrevocable bool, tag any, reads, writes map[mem.Addr]uint64) {
	if c.m.observer == nil {
		return
	}
	c.m.observer.OnCommit(c.id, irrevocable, tag, reads, writes)
}

// NTStoreBatch publishes a write set as one atomic batch: a single
// synchronization event covers every word, so no other core can observe
// a partially published state — the software analogue of TxCommit's
// atomic publication of the hardware write buffer. Coherence still acts
// per line (remote speculative holders abort, remote copies
// invalidate, each line's lookup latency is charged), and each word
// counts as a nontransactional store. The batch is NOT routed to the
// observer: callers report it atomically via ReportAtomic instead, so
// the commit appears exactly once in the observer stream.
func (c *Core) NTStoreBatch(addrs []mem.Addr, vals []uint64) {
	if len(addrs) != len(vals) {
		panic("htm: NTStoreBatch length mismatch")
	}
	c.event()
	c.ntFaultDelay()
	for i, a := range addrs {
		c.countUop()
		c.stats.NTStores++
		line := mem.LineOf(a)
		e := c.m.entry(line)
		c.abortMask(e.writers|e.readers, line, 0)
		c.m.invalidateOthers(e, line, c.id)
		c.ntCharge(c.m.lookupLatency(c, line, e))
		c.m.Mem.Store(a, vals[i])
	}
}
