// Package htm implements a deterministic cycle-level simulator of a
// multicore machine with best-effort hardware transactional memory.
//
// The simulated HTM follows the ASF-variant machine of Xiang & Scott
// (SPAA 2015), Table 2: an eager requester-wins conflict resolution
// policy over cache-line-granularity read/write sets kept in the L1,
// plus two extensions the paper requires:
//
//   - nontransactional loads and immediate nontransactional stores that
//     may be issued from inside an active transaction without joining
//     its speculative sets, and
//   - a 12-bit PC tag per L1 line recording the program counter of the
//     first transactional access to the line, reported on conflict
//     aborts ("conflicting PC").
//
// Simulated cores are goroutines, but all globally visible events are
// serialized by a virtual-time token engine, so simulations are fully
// deterministic: the same program and seed produce the same interleaving,
// the same aborts, and the same cycle counts on every run.
package htm

// Config describes the simulated machine. The zero value is not useful;
// start from DefaultConfig.
type Config struct {
	// Cores is the number of simulated cores (the paper models 16).
	Cores int

	// L1Lines and L1Ways size the per-core L1 data cache in cache lines.
	// 1024 lines of 64 bytes at 8 ways matches the paper's 64 KB L1.
	L1Lines int
	L1Ways  int

	// Latencies, in cycles, for a load or store that hits at each level.
	L1Lat  uint64 // L1 hit (paper: 2)
	L2Lat  uint64 // private L2 hit (paper: 10)
	L3Lat  uint64 // shared L3 hit or cache-to-cache transfer (paper: 30)
	MemLat uint64 // DRAM (paper: 50 ns at 2.5 GHz = 125 cycles)

	// MemChannels and MemOccupancy model DRAM bandwidth: each memory
	// access occupies one of MemChannels channels for MemOccupancy
	// cycles, and concurrent accesses to a busy channel queue behind it
	// (paper: 2 memory channels). Without this, memory-bound kernels
	// like ssca2 would scale implausibly.
	MemChannels  int
	MemOccupancy uint64

	// TxBeginCost and TxCommitCost are the fixed costs, in cycles, of the
	// speculate and commit instructions.
	TxBeginCost  uint64
	TxCommitCost uint64

	// IssueWidth converts compute µ-ops to cycles (paper: 4-wide).
	IssueWidth int

	// PCTagBits is the width of the per-line conflicting-PC tag
	// (paper: 12). Truncation can alias distinct instructions, which is
	// exactly the accuracy effect Table 3 measures.
	PCTagBits int

	// MaxSpecLines bounds the speculative read/write set to that many
	// distinct cache lines per transaction, independent of L1 geometry:
	// the first access that would add a line beyond the bound aborts the
	// attempt with AbortOverflow. This is the capacity knob of the
	// limited read/write-set HTM variant (Kafousis-style best-effort
	// HTM with small dedicated transactional buffers); 0 (the default)
	// imposes no bound beyond L1 associativity, leaving the baseline
	// machine bit-identical.
	MaxSpecLines int

	// HardwareCPC enables the conflicting-PC tag. When false, conflict
	// aborts report only the conflicting data address, and a runtime must
	// fall back to software anchor tracking (Section 4 of the paper).
	HardwareCPC bool

	// Lazy switches conflict detection from eager requester-wins to lazy
	// committer-wins: speculative accesses proceed without aborting
	// anyone, and at commit time the committer aborts every transaction
	// whose speculative sets intersect its write set (Figure 1(b) of the
	// paper; the lazy-TM extension its conclusion proposes). Staggered
	// transactions run unchanged on top — their contention reduction is
	// designed to be independent of the resolution policy.
	Lazy bool

	// WatchdogCycles bounds each core's virtual clock: a core whose clock
	// exceeds the bound before its thread body returns trips a progress
	// watchdog that fails the run loudly (with the last transaction
	// events) instead of letting a livelocked simulation spin forever.
	// 0 (the default) disables the watchdog.
	WatchdogCycles uint64

	// WatchdogTrace sizes the trailing-event ring attached to watchdog
	// failure reports (0 = the built-in default of 32). Exploration
	// campaigns raise it so minimized repros carry enough context.
	WatchdogTrace int

	// RefEngine forces the engine's reference token handoff: every sync
	// runs the full minimum scan instead of the O(1) per-tenure fast path.
	// Results are bit-identical either way (FuzzEngineHandoff proves it);
	// the flag exists only so differential tests can retain the
	// pre-optimization engine as an oracle. Leave false outside tests.
	RefEngine bool

	// Seed feeds the per-core PRNGs used for backoff jitter.
	Seed int64

	// HeapBase and HeapSize bound the simulated heap.
	HeapBase uint64
	HeapSize uint64
}

// DefaultConfig returns the machine of Table 2 in the paper.
func DefaultConfig() Config {
	return Config{
		Cores:        16,
		L1Lines:      1024,
		L1Ways:       8,
		L1Lat:        2,
		L2Lat:        10,
		L3Lat:        30,
		MemLat:       125,
		MemChannels:  2,
		MemOccupancy: 24,
		TxBeginCost:  8,
		TxCommitCost: 16,
		IssueWidth:   4,
		PCTagBits:    12,
		HardwareCPC:  true,
		Seed:         1,
		HeapBase:     1 << 20,
		HeapSize:     1 << 28,
	}
}

func (c *Config) validate() {
	switch {
	case c.Cores <= 0 || c.Cores > 32:
		panic("htm: Cores must be in 1..32")
	case c.L1Lines <= 0 || c.L1Ways <= 0 || c.L1Lines%c.L1Ways != 0:
		panic("htm: L1Lines must be a positive multiple of L1Ways")
	case c.IssueWidth <= 0:
		panic("htm: IssueWidth must be positive")
	case c.PCTagBits <= 0 || c.PCTagBits > 16:
		panic("htm: PCTagBits must be in 1..16")
	case c.MemChannels <= 0:
		panic("htm: MemChannels must be positive")
	case c.MaxSpecLines < 0:
		panic("htm: MaxSpecLines must be nonnegative")
	case c.HeapBase == 0 || c.HeapBase%64 != 0:
		panic("htm: HeapBase must be nonzero and line-aligned")
	}
}

// pcMask returns the mask selecting the architecturally visible PC bits.
func (c *Config) pcMask() uint64 { return (1 << c.PCTagBits) - 1 }
