package equivalence

import (
	"fmt"
	"testing"

	"repro/internal/workloads"
)

// FuzzEngineEquivalence is FuzzEngineHandoff lifted from synthetic op
// strings to whole experiment cells: the fuzzer picks a workload, seed,
// variant, and thread count, and the cell must be byte-identical across
// the two engines. The seed corpus enumerates the configurations the
// paper table generators sweep (Table 1's benchmarks at one and many
// threads, each suite variant), so minimized counterexamples land in
// the same cell space the experiments use.
func FuzzEngineEquivalence(f *testing.F) {
	// Table 1's row order (the paper's six representative benchmarks),
	// at sequential and contended thread counts — the exact cells the
	// table generators warm first.
	names := workloads.Names()
	idx := make(map[string]uint8, len(names))
	for i, n := range names {
		idx[n] = uint8(i)
	}
	for _, bench := range []string{"list-hi", "tsp", "memcached", "intruder", "kmeans", "vacation"} {
		f.Add(idx[bench], int64(42), uint8(0), uint8(0))
		f.Add(idx[bench], int64(42), uint8(0), uint8(3))
	}
	// Each variant once on the highest-contention benchmark.
	for v := range Variants() {
		f.Add(uint8(0), int64(1), uint8(v), uint8(4))
	}
	f.Fuzz(func(t *testing.T, benchRaw uint8, seed int64, variantRaw uint8, threadsRaw uint8) {
		names := workloads.Names()
		bench := names[int(benchRaw)%len(names)]
		vs := Variants()
		v := vs[int(variantRaw)%len(vs)]
		threads := 1 + int(threadsRaw)%4
		if seed == 0 {
			seed = 42
		}
		ops := suiteOps(bench)
		if ops > 64 {
			ops = 64 // fuzz iterations stay fast; the suite covers depth
		}
		name := fmt.Sprintf("fuzz-%s-seed%d-%s-t%d", bench, seed, v.Name, threads)
		if err := Check(name, Cell(bench, seed, threads, ops, v)); err != nil {
			t.Fatal(err)
		}
	})
}
