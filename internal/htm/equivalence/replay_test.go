package equivalence

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/harness"
	"repro/internal/htm"
)

// TestReplayDeterminism is the record/replay regression of ISSUE 9: an
// adversarial schedule is recorded on the cooperative engine, replayed
// on the cooperative engine, and replayed again on the reference engine.
// All three runs must agree byte for byte. The cooperative engine's
// decision points (start, every losing sync, every finish) must line up
// exactly with the reference engine's for this to hold, so any drift in
// the step order — the kind that would silently break `staggersim
// -verify-conflicts` sweeps or archived schedule files — fails here, in
// CI, instead of in a campaign.
func TestReplayDeterminism(t *testing.T) {
	for _, strategy := range []string{"random", "pct:3"} {
		for _, bench := range []string{"list-hi", "kmeans", "intruder"} {
			t.Run(fmt.Sprintf("%s/%s", strategy, bench), func(t *testing.T) {
				rec := harness.RunConfig{
					Benchmark: bench,
					Threads:   suiteThreads,
					Seed:      42,
					TotalOps:  suiteOps(bench),
					TraceN:    -1,
					Sched:     strategy,
					SchedSeed: 7,
					Record:    true,
				}
				recorded, err := harness.Run(rec)
				if err != nil {
					t.Fatal(err)
				}
				if len(recorded.SchedPicks) == 0 {
					t.Fatalf("recorded run produced no scheduler decisions")
				}

				replay := rec
				replay.Record = false
				replay.ReplayPicks = recorded.SchedPicks
				onCoop, err := harness.Run(replay)
				if err != nil {
					t.Fatal(err)
				}

				refReplay := replay
				mc := htm.DefaultConfig()
				mc.RefEngine = true
				refReplay.Machine = &mc
				onRef, err := harness.Run(refReplay)
				if err != nil {
					t.Fatal(err)
				}

				recTrace := htm.FormatTrace(recorded.Trace)
				if got := htm.FormatTrace(onCoop.Trace); got != recTrace {
					t.Fatalf("replay on cooperative engine diverges from its own recording")
				}
				if got := htm.FormatTrace(onRef.Trace); got != recTrace {
					t.Fatalf("replay on reference engine diverges from cooperative recording")
				}
				if !reflect.DeepEqual(onCoop.Stats, recorded.Stats) ||
					!reflect.DeepEqual(onRef.Stats, recorded.Stats) {
					t.Fatalf("replayed statistics diverge from the recording")
				}
				if d := onRef.Stats.Makespan; d != recorded.Stats.Makespan {
					t.Fatalf("makespan drift: recorded %d, ref replay %d", recorded.Stats.Makespan, d)
				}
			})
		}
	}
}

// TestRecordedPicksEngineIndependent pins the recorded decision sequence
// itself: recording the same adversarial run on both engines must yield
// the same pick sequence, event for event — the strongest form of "the
// two engines consult the scheduler at identical decision points".
func TestRecordedPicksEngineIndependent(t *testing.T) {
	rec := harness.RunConfig{
		Benchmark: "list-hi",
		Threads:   suiteThreads,
		Seed:      42,
		TotalOps:  suiteOps("list-hi"),
		Sched:     "random",
		SchedSeed: 11,
		Record:    true,
	}
	onCoop, err := harness.Run(rec)
	if err != nil {
		t.Fatal(err)
	}
	refRec := rec
	mc := htm.DefaultConfig()
	mc.RefEngine = true
	refRec.Machine = &mc
	onRef, err := harness.Run(refRec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(picksBytes(onCoop.SchedPicks), picksBytes(onRef.SchedPicks)) {
		t.Fatalf("recorded pick sequences diverge: coop %d picks, ref %d picks",
			len(onCoop.SchedPicks), len(onRef.SchedPicks))
	}
}

func picksBytes(picks []uint32) []byte {
	out := make([]byte, 0, len(picks)*4)
	for _, p := range picks {
		out = append(out, byte(p), byte(p>>8), byte(p>>16), byte(p>>24))
	}
	return out
}
