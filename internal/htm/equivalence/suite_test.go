package equivalence

import (
	"fmt"
	"testing"

	"repro/internal/workloads"
)

// suiteSeeds are the three workload seeds every cell is swept over.
var suiteSeeds = []int64{1, 42, 1337}

// suiteOps keeps each differential cell small enough that the full
// 10 workloads × 3 seeds × 5 variants × 2 engines sweep stays in test
// budget; contention still happens because the thread count does not
// shrink with the op count.
func suiteOps(bench string) int {
	switch bench {
	case "memcached":
		return 0 // queue-driven: use the workload default
	case "labyrinth":
		return 16
	case "genome", "ssca2":
		return 96
	default:
		return 120
	}
}

const suiteThreads = 4

// TestEngineEquivalenceSuite is the differential suite of ISSUE 9: every
// workload × seed × variant must produce byte-identical traces, metrics
// report JSON, statistics, oracle verdicts, and workload verification on
// the cooperative engine and the reference engine. In -short mode one
// seed is swept; the full matrix runs in CI via `make equivalence`.
func TestEngineEquivalenceSuite(t *testing.T) {
	seeds := suiteSeeds
	if testing.Short() {
		seeds = suiteSeeds[:1]
	}
	for _, bench := range workloads.Names() {
		for _, seed := range seeds {
			for _, v := range Variants() {
				name := fmt.Sprintf("%s/seed%d/%s", bench, seed, v.Name)
				t.Run(name, func(t *testing.T) {
					rc := Cell(bench, seed, suiteThreads, suiteOps(bench), v)
					if err := Check(name, rc); err != nil {
						t.Fatal(err)
					}
				})
			}
		}
	}
}
