// Package equivalence is the differential test harness proving the
// cooperative single-goroutine engine bit-identical to the reference
// engine. The oracle is the original goroutine-per-core channel
// lock-step engine with a full minimum scan at every sync, retained
// behind htm.Config.RefEngine.
//
// Every check in this package runs one experiment cell twice, identical
// in everything except the engine, and compares serialized observables
// byte for byte: the full transaction event trace, the obs metrics
// report JSON, the complete statistics block, the serializability-oracle
// verdict, and the workload's own invariant check. The suite sweeps all
// workloads × seeds × {plain, staggered, hardened, chaos, PCT}; the fuzz
// target (FuzzEngineEquivalence) explores the same cell space from a
// corpus seeded with the paper table generators' configurations.
//
// On a mismatch the suite writes an artifact directory with both traces
// and the first-divergence event index (see WriteArtifacts), which CI
// uploads so a failing pair can be diffed without reproducing locally.
package equivalence

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/chaos"
	"repro/internal/harness"
	"repro/internal/htm"
	"repro/internal/obs"
	"repro/internal/stagger"
)

// Variant is one system configuration layered onto a workload cell.
type Variant struct {
	Name  string
	Apply func(*harness.RunConfig)
}

// Variants returns the configuration axis of the differential suite:
// baseline HTM, the full staggered system, the hardened runtime
// profile, deterministic fault injection, and an adversarial PCT
// schedule. Record/replay and the random scheduler are covered
// separately by the replay-determinism tests.
func Variants() []Variant {
	return []Variant{
		{Name: "plain", Apply: func(rc *harness.RunConfig) {
			rc.Mode = stagger.ModeHTM
		}},
		{Name: "staggered", Apply: func(rc *harness.RunConfig) {
			rc.Mode = stagger.ModeStaggeredHW
		}},
		{Name: "hardened", Apply: func(rc *harness.RunConfig) {
			rc.Mode = stagger.ModeStaggeredHW
			scfg := stagger.HardenedConfig(stagger.ModeStaggeredHW)
			rc.Stagger = &scfg
		}},
		{Name: "chaos", Apply: func(rc *harness.RunConfig) {
			rc.Mode = stagger.ModeStaggeredHW
			ccfg := chaos.Scaled(0.01, rc.Seed)
			rc.Chaos = &ccfg
			rc.Watchdog = 500_000_000
		}},
		{Name: "pct", Apply: func(rc *harness.RunConfig) {
			rc.Mode = stagger.ModeHTM
			rc.Sched = "pct:3"
			rc.SchedSeed = rc.Seed + 1
		}},
	}
}

// Cell builds the canonical cell config for one (benchmark, seed,
// variant) triple: full tracing on (extended events included, so the
// advisory-lock and irrevocable annotations are compared too) and the
// serializability oracle installed.
func Cell(bench string, seed int64, threads, ops int, v Variant) harness.RunConfig {
	rc := harness.RunConfig{
		Benchmark: bench,
		Threads:   threads,
		Seed:      seed,
		TotalOps:  ops,
		TraceN:    -1,
		ExtTrace:  true,
		Oracle:    true,
	}
	v.Apply(&rc)
	return rc
}

// RunPair executes rc on the cooperative engine and again on the
// reference engine (all else identical) and returns both results.
func RunPair(rc harness.RunConfig) (coop, ref *harness.Result, err error) {
	coop, err = harness.Run(rc)
	if err != nil {
		return nil, nil, fmt.Errorf("cooperative engine: %w", err)
	}
	refCfg := rc
	mc := htm.DefaultConfig()
	if rc.Machine != nil {
		mc = *rc.Machine
	}
	mc.RefEngine = true
	refCfg.Machine = &mc
	ref, err = harness.Run(refCfg)
	if err != nil {
		return nil, nil, fmt.Errorf("reference engine: %w", err)
	}
	return coop, ref, nil
}

// Observables is everything the suite compares byte for byte.
type Observables struct {
	// Trace is the formatted transaction event trace (htm.FormatTrace).
	Trace []byte
	// Events is the raw recorded event sequence behind Trace.
	Events []htm.TraceEvent
	// Metrics is the obs metrics report JSON.
	Metrics []byte
	// Stats is the full statistics block (every per-core counter) as JSON.
	Stats []byte
	// Oracle is the serializability verdict ("ok <n> commits" or the
	// violation text); Verify is the workload invariant verdict.
	Oracle string
	Verify string
}

// Observe serializes a run's compared observables.
func Observe(r *harness.Result) (*Observables, error) {
	o := &Observables{
		Trace:  []byte(htm.FormatTrace(r.Trace)),
		Events: r.Trace,
		Oracle: fmt.Sprintf("ok %d commits", r.OracleCommits),
		Verify: "ok",
	}
	if r.OracleErr != nil {
		o.Oracle = r.OracleErr.Error()
	}
	if r.VerifyErr != nil {
		o.Verify = r.VerifyErr.Error()
	}
	var err error
	if o.Metrics, err = json.MarshalIndent(obs.Snapshot(r), "", "  "); err != nil {
		return nil, err
	}
	if o.Stats, err = json.MarshalIndent(r.Stats, "", "  "); err != nil {
		return nil, err
	}
	return o, nil
}

// Mismatch describes the first observed divergence between the two
// engines' observables for one cell.
type Mismatch struct {
	// Field names the diverging observable ("trace", "metrics", "stats",
	// "oracle", "verify").
	Field string
	// EventIndex is the first diverging trace event's index (trace
	// mismatches only; -1 otherwise).
	EventIndex int
	// Coop and Ref are the two serialized observables.
	Coop, Ref []byte
}

// Diff compares two observable sets and returns the first mismatch, or
// nil when they are byte-identical. Trace divergence is located at event
// granularity so the artifact names the exact first diverging event.
func Diff(coop, ref *Observables) *Mismatch {
	if !bytes.Equal(coop.Trace, ref.Trace) {
		idx := len(coop.Events)
		if len(ref.Events) < idx {
			idx = len(ref.Events)
		}
		for i := 0; i < idx; i++ {
			if coop.Events[i] != ref.Events[i] {
				idx = i
				break
			}
		}
		return &Mismatch{Field: "trace", EventIndex: idx, Coop: coop.Trace, Ref: ref.Trace}
	}
	if !bytes.Equal(coop.Metrics, ref.Metrics) {
		return &Mismatch{Field: "metrics", EventIndex: -1, Coop: coop.Metrics, Ref: ref.Metrics}
	}
	if !bytes.Equal(coop.Stats, ref.Stats) {
		return &Mismatch{Field: "stats", EventIndex: -1, Coop: coop.Stats, Ref: ref.Stats}
	}
	if coop.Oracle != ref.Oracle {
		return &Mismatch{Field: "oracle", EventIndex: -1, Coop: []byte(coop.Oracle), Ref: []byte(ref.Oracle)}
	}
	if coop.Verify != ref.Verify {
		return &Mismatch{Field: "verify", EventIndex: -1, Coop: []byte(coop.Verify), Ref: []byte(ref.Verify)}
	}
	return nil
}

// ArtifactDirEnv names the environment variable CI sets to collect
// mismatch artifacts for upload; unset, artifacts go under the default
// relative directory.
const ArtifactDirEnv = "EQUIVALENCE_ARTIFACTS"

// WriteArtifacts dumps a mismatching pair for one named cell: the
// cooperative and reference serializations side by side plus a DIVERGE
// file with the field and first-divergence event index. It returns the
// cell's artifact directory.
func WriteArtifacts(cell string, m *Mismatch) (string, error) {
	root := os.Getenv(ArtifactDirEnv)
	if root == "" {
		root = "equivalence-artifacts"
	}
	dir := filepath.Join(root, cell)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	summary := fmt.Sprintf("field: %s\nfirst-divergence-event-index: %d\n", m.Field, m.EventIndex)
	files := []struct {
		name string
		data []byte
	}{
		{"DIVERGE", []byte(summary)},
		{"coop." + m.Field, m.Coop},
		{"ref." + m.Field, m.Ref},
	}
	for _, f := range files {
		if err := os.WriteFile(filepath.Join(dir, f.name), f.data, 0o644); err != nil {
			return "", err
		}
	}
	return dir, nil
}

// Check runs one cell on both engines, compares every observable, and
// on divergence writes the artifact pair and returns a descriptive
// error. A nil return certifies the cell byte-identical.
func Check(cellName string, rc harness.RunConfig) error {
	coop, ref, err := RunPair(rc)
	if err != nil {
		return err
	}
	co, err := Observe(coop)
	if err != nil {
		return err
	}
	ro, err := Observe(ref)
	if err != nil {
		return err
	}
	m := Diff(co, ro)
	if m == nil {
		return nil
	}
	dir, werr := WriteArtifacts(cellName, m)
	if werr != nil {
		return fmt.Errorf("%s: engines diverge in %s (first event index %d); artifact dump failed: %v",
			cellName, m.Field, m.EventIndex, werr)
	}
	return fmt.Errorf("%s: engines diverge in %s (first event index %d); artifacts in %s",
		cellName, m.Field, m.EventIndex, dir)
}
