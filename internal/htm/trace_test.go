package htm

import (
	"strings"
	"testing"
)

func TestTraceRecordsLifecycle(t *testing.T) {
	m := New(smallConfig(2))
	m.EnableTrace(0)
	a := m.Alloc.AllocLines(1)
	bodies := make([]func(*Core), 2)
	for i := range bodies {
		bodies[i] = func(c *Core) {
			for k := 0; k < 10; k++ {
				c.Atomic(DefaultAtomicOpts(), TxHooks{}, func(c *Core) {
					v := c.Load(0x100, 1, a)
					c.Compute(300)
					c.Store(0x104, 2, a, v+1)
				})
			}
		}
	}
	m.Run(bodies)
	evs := m.Trace()
	if len(evs) == 0 {
		t.Fatal("no events recorded")
	}
	s := m.Stats()
	var begins, commits, aborts int
	for i, e := range evs {
		switch e.Kind {
		case TraceBegin:
			begins++
		case TraceCommit:
			commits++
		case TraceAbort:
			aborts++
			if e.Reason == AbortConflict && e.ByCore == e.Core {
				t.Errorf("event %d: conflict abort attributed to the victim itself", i)
			}
		}
		// Times are per-core local clocks recorded in token-execution
		// order, so they need not be globally monotone — but they must
		// be monotone per core.
		for j := i - 1; j >= 0; j-- {
			if evs[j].Core == e.Core {
				if evs[j].Time > e.Time {
					t.Fatalf("core %d trace not monotone at %d", e.Core, i)
				}
				break
			}
		}
	}
	if uint64(commits) != s.Commits {
		t.Errorf("trace commits %d != stats %d", commits, s.Commits)
	}
	if uint64(aborts) != s.TotalAborts() {
		t.Errorf("trace aborts %d != stats %d", aborts, s.TotalAborts())
	}
	if begins != commits+aborts {
		// Irrevocable commits have no begin; allow that slack.
		if begins > commits+aborts || commits+aborts-begins > int(s.IrrevocableCommits) {
			t.Errorf("begins=%d commits=%d aborts=%d irr=%d inconsistent",
				begins, commits, aborts, s.IrrevocableCommits)
		}
	}
	out := FormatTrace(evs[:5])
	if !strings.Contains(out, "begin") {
		t.Fatalf("format missing begin:\n%s", out)
	}
}

func TestTraceLimit(t *testing.T) {
	m := New(smallConfig(1))
	m.EnableTrace(3)
	a := m.Alloc.AllocLines(1)
	m.Run([]func(*Core){func(c *Core) {
		for k := 0; k < 10; k++ {
			c.Atomic(DefaultAtomicOpts(), TxHooks{}, func(c *Core) {
				c.Store(0x100, 1, a, uint64(k))
			})
		}
	}})
	if got := len(m.Trace()); got != 3 {
		t.Fatalf("events = %d, want limit 3", got)
	}
}

func TestTraceDisabledByDefault(t *testing.T) {
	m := New(smallConfig(1))
	a := m.Alloc.AllocLines(1)
	m.Run([]func(*Core){func(c *Core) {
		c.Atomic(DefaultAtomicOpts(), TxHooks{}, func(c *Core) {
			c.Store(0x100, 1, a, 1)
		})
	}})
	if m.Trace() != nil {
		t.Fatal("trace recorded without EnableTrace")
	}
}
