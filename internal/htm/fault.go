package htm

import (
	"fmt"
	"strings"
)

// FaultInjector is the hook surface for deterministic fault injection
// (implemented by internal/chaos). A machine with no injector takes none
// of these calls, so the hooks are zero-impact when chaos is disabled.
//
// All methods are consulted at globally ordered simulation points (memory
// events, nontransactional stores), under the engine's token discipline:
// exactly one core queries the injector at a time, and the query order is
// a pure function of the simulated execution. An injector that answers
// deterministically — e.g. from per-core seeded streams — therefore
// yields a fault schedule that is exactly reproducible from
// (seed, config).
type FaultInjector interface {
	// SpuriousAbort is consulted at each transactional memory event; when
	// it fires, the active transaction aborts with the returned
	// architectural reason (modeling interrupts, capacity aliasing, and
	// other best-effort-HTM sources of non-conflict aborts).
	SpuriousAbort(core int, now uint64) (AbortReason, bool)
	// NTDelay returns extra stall cycles for a nontransactional store or
	// CAS (a transient slow path in the store buffer / memory system).
	NTDelay(core int, now uint64) uint64
	// StallJitter returns extra stall cycles charged at a memory event
	// (per-core scheduling noise).
	StallJitter(core int, now uint64) uint64
}

// SetFaultInjector installs a fault injector. Call before Run; a nil
// injector (the default) disables all fault hooks.
func (m *Machine) SetFaultInjector(fi FaultInjector) {
	if m.ran {
		panic("htm: SetFaultInjector after Run")
	}
	m.chaos = fi
}

// watchdogTraceN is how many trailing transaction events a machine with a
// watchdog retains for the failure report.
const watchdogTraceN = 32

// WatchdogError reports a run whose virtual time exceeded
// Config.WatchdogCycles — the simulator's stand-in for a hung or
// livelocked execution. It carries the last recorded transaction events
// so the failure is diagnosable instead of a silent hang.
type WatchdogError struct {
	// Core is the core whose clock first crossed the bound.
	Core int
	// Cycles is that core's virtual clock at the trip point.
	Cycles uint64
	// Limit is the configured bound.
	Limit uint64
	// Trace holds the last transaction events before the trip (oldest
	// first; empty if no transactions ran).
	Trace []TraceEvent
}

// Error implements error, including the trailing trace events.
func (e *WatchdogError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "htm: watchdog: core %d reached %d cycles (limit %d) without finishing",
		e.Core, e.Cycles, e.Limit)
	if len(e.Trace) > 0 {
		fmt.Fprintf(&b, "; last %d events:\n%s", len(e.Trace), FormatTrace(e.Trace))
	}
	return b.String()
}

// checkWatchdog trips the progress watchdog once the core's clock passes
// the configured bound. It runs at every memory event and after compute
// bursts, so even a core that never performs another memory access cannot
// spin forever.
func (c *Core) checkWatchdog() {
	c.checkCancel()
	wd := c.m.cfg.WatchdogCycles
	if wd == 0 || c.clock <= wd {
		return
	}
	panic(&WatchdogError{
		Core:   c.id,
		Cycles: c.clock,
		Limit:  wd,
		Trace:  c.m.lastEvents.events(),
	})
}
