package htm

import (
	"math/rand"

	"repro/internal/mem"
)

// Core is one simulated hardware thread. A Core must only be used by the
// thread body it was handed to by Machine.Run; the engine guarantees that
// only one core executes between synchronization points, so no locking is
// needed anywhere in the access paths.
type Core struct {
	m     *Machine
	id    int
	clock uint64
	stats CoreStats
	l1    *l1cache
	// rng backs the randomized backoff policies; it is built lazily on
	// first draw so contention-free runs never pay the seeding cost.
	rng *rand.Rand

	inTx      bool
	inAttempt bool
	inIrrev   bool
	// hasPending gates pendingAbort; the info is stored inline so a remote
	// abort costs no allocation on the requester's critical path.
	hasPending   bool
	pendingAbort AbortInfo
	// abortBox is the reusable panic payload for transaction aborts:
	// panicking with a pre-boxed pointer keeps the abort unwind path
	// allocation-free. Safe to reuse because tryTx copies the info out
	// before the core can abort again.
	abortBox txAbort
	// wbuf is the transactional write buffer; txs is the speculative-set
	// index (first-access PC/site and written flag per line — the per-line
	// tx bits and 12-bit PC tag the paper adds to the L1, Section 4). Both
	// are flat open-addressed tables cleared per transaction.
	wbuf         wordTable
	txs          txTable
	attemptStart uint64
	attemptWait  uint64

	// abTag is the opaque atomic-block tag the runtime sets around each
	// atomic instance; it is stamped into AbortInfo.KillerAB when this
	// core aborts somebody (pure bookkeeping, no simulated events).
	abTag int

	// traceOn caches "some trace sink is installed" so the per-event
	// record calls cost one boolean test on untraced machines.
	traceOn bool
	// addrScratch is reused by lazyResolve's commit-time address sort.
	addrScratch []mem.Addr

	// Observer state (nil unless a TxObserver is installed and an atomic
	// section is active): first-external-read and write logs per word,
	// plus the workload's opaque operation tag for the current section.
	obsReads  map[mem.Addr]uint64
	obsWrites map[mem.Addr]uint64
	opTag     any
}

func newCore(m *Machine, id int) *Core {
	c := &Core{
		m:  m,
		id: id,
		l1: newL1(m.cfg.L1Lines, m.cfg.L1Ways),
	}
	c.wbuf.init()
	c.txs.init()
	return c
}

// rand returns the core's backoff PRNG, seeding it deterministically from
// the machine seed and core ID on first use. Lazy construction draws the
// same sequence as the former eager one, so schedules are unchanged.
func (c *Core) rand() *rand.Rand {
	if c.rng == nil {
		c.rng = rand.New(rand.NewSource(c.m.cfg.Seed*2654435761 + int64(c.id)*40503 + 7))
	}
	return c.rng
}

// ID returns the core's index.
func (c *Core) ID() int { return c.id }

// SetABTag tags this core with the atomic block it is executing (0 =
// none). The tag is ground-truth bookkeeping only: it is copied into
// AbortInfo.KillerAB when this core's accesses abort another core, and
// touches no simulated state, so setting it never perturbs the run.
func (c *Core) SetABTag(tag int) { c.abTag = tag }

// Now returns the core's virtual clock in cycles.
func (c *Core) Now() uint64 { return c.clock }

// Machine returns the owning machine.
func (c *Core) Machine() *Machine { return c.m }

// InTx reports whether a hardware transaction is active.
func (c *Core) InTx() bool { return c.inTx }

// Stats exposes the core's counters (read-only use expected).
func (c *Core) Stats() *CoreStats { return &c.stats }

// event serializes a globally visible action at the core's current clock
// and delivers any pending remote abort before the action executes. With
// a fault injector installed it is also where injected stall jitter and
// spurious aborts land, so every fault occupies a definite slot in the
// global virtual-time order and the schedule replays exactly.
func (c *Core) event() {
	if c.m.chaos != nil {
		if j := c.m.chaos.StallJitter(c.id, c.clock); j != 0 {
			c.stats.WaitCycles[WaitFault] += j
			if c.inAttempt {
				c.attemptWait += j
			}
			c.clock += j
		}
	}
	c.m.eng.sync(c.id, c.clock)
	if c.hasPending {
		info := c.pendingAbort
		c.hasPending = false
		if c.inTx {
			c.finishAbort(info)
			c.abortBox.info = info
			panic(&c.abortBox)
		}
	}
	if c.inTx && c.m.chaos != nil {
		if reason, ok := c.m.chaos.SpuriousAbort(c.id, c.clock); ok {
			c.abortSelf(AbortInfo{Reason: reason, ByCore: -1})
		}
	}
	c.checkWatchdog()
}

func (c *Core) countUop() {
	c.stats.Uops++
	if c.inTx {
		c.stats.TxUops++
	}
}

// Compute models n µ-ops of non-memory work. It advances the local clock
// only; it never synchronizes, so a conflicting abort is delivered at the
// next memory event.
func (c *Core) Compute(uops int) {
	if uops <= 0 {
		return
	}
	c.stats.Uops += uint64(uops)
	if c.inTx {
		c.stats.TxUops += uint64(uops)
	}
	w := uint64(c.m.cfg.IssueWidth)
	c.clock += (uint64(uops) + w - 1) / w
	// A compute-only loop never reaches event(); check the watchdog here
	// too so such a livelock still fails loudly.
	c.checkWatchdog()
}

// SpinWait models stalled cycles of the given kind, then yields to the
// engine so lower-timestamp cores can make progress.
func (c *Core) SpinWait(cycles uint64, kind WaitKind) {
	c.stats.WaitCycles[kind] += cycles
	if c.inAttempt {
		c.attemptWait += cycles
	}
	c.clock += cycles
	c.event()
}

// TxBegin starts a hardware transaction (speculate). Transactions do not
// nest.
func (c *Core) TxBegin() {
	if c.inTx {
		panic("htm: nested TxBegin")
	}
	c.hasPending = false
	c.inTx = true
	c.inAttempt = true
	c.attemptStart = c.clock
	c.attemptWait = 0
	c.obsBeginSection()
	c.recordBegin()
	c.clock += c.m.cfg.TxBeginCost
}

// TxCommit commits the active transaction, making its speculative writes
// visible atomically. The caller (runtime) is responsible for subscribing
// to the global lock beforehand if it uses a lock-based fallback.
func (c *Core) TxCommit() {
	if !c.inTx {
		panic("htm: TxCommit outside transaction")
	}
	c.event()
	if c.m.cfg.Lazy {
		c.lazyResolve()
	}
	// Publish in insertion order; the buffered words are distinct, so the
	// resulting memory state is order-independent.
	for i := range c.wbuf.ents {
		c.m.Mem.Store(c.wbuf.ents[i].addr, c.wbuf.ents[i].val)
	}
	c.clock += c.m.cfg.TxCommitCost
	c.stats.Commits++
	c.stats.UsefulTxCycles += c.clock - c.attemptStart - c.attemptWait
	c.recordCommit()
	if c.m.observer != nil {
		writes := make(map[mem.Addr]uint64, len(c.wbuf.ents))
		for _, w := range c.wbuf.ents {
			writes[w.addr] = w.val
		}
		c.obsEndSection(false, writes)
	}
	c.clearTx()
}

// TxAbortExplicit aborts the active transaction from software (xabort).
func (c *Core) TxAbortExplicit() {
	if !c.inTx {
		panic("htm: TxAbortExplicit outside transaction")
	}
	c.abortSelf(AbortInfo{Reason: AbortExplicit, ByCore: c.id})
}

// abortSelf finalizes an abort initiated by this core's own execution
// (overflow, explicit, lock-held) and unwinds to the retry loop.
func (c *Core) abortSelf(info AbortInfo) {
	c.finishAbort(info)
	c.abortBox.info = info
	panic(&c.abortBox)
}

// finishAbort accounts an aborted attempt and discards speculative state.
func (c *Core) finishAbort(info AbortInfo) {
	c.stats.Aborts[info.Reason]++
	c.stats.WastedTxCycles += c.clock - c.attemptStart - c.attemptWait
	c.recordAbort(info)
	c.obsAbortSection()
	c.clearTx()
}

// clearTx discards speculative state and releases directory presence.
func (c *Core) clearTx() {
	mask := ^(uint32(1) << uint(c.id))
	for i := range c.txs.ents {
		if e := c.m.lines.lookup(c.txs.ents[i].line); e != nil {
			e.readers &= mask
			e.writers &= mask
		}
	}
	c.txs.clear()
	c.wbuf.clear()
	c.inTx = false
	c.inAttempt = false
}

// abortRemote kills the transaction of core v because of a conflicting
// access to line by core c (site is the killing access's static site, 0
// when unattributed). Requester wins: v's directory presence is removed
// immediately; v observes the abort at its next event.
func (c *Core) abortRemote(v *Core, line mem.Addr, site uint32) {
	if !v.inTx || v.hasPending {
		// Already doomed; just make sure its presence is gone.
		c.stripDir(v)
		return
	}
	info := AbortInfo{
		Reason:     AbortConflict,
		ConfAddr:   line,
		ByCore:     c.id,
		KillerSite: site,
		KillerAB:   c.abTag,
	}
	if tl := v.txs.lookup(line); tl != nil {
		info.TrueSite = tl.site
		if c.m.cfg.HardwareCPC {
			info.ConfPC = tl.pc & c.m.cfg.pcMask()
			info.HasPC = true
		}
	}
	v.pendingAbort = info
	v.hasPending = true
	c.stripDir(v)
}

// stripDir removes core v's speculative presence from the directory.
func (c *Core) stripDir(v *Core) {
	mask := ^(uint32(1) << uint(v.id))
	for i := range v.txs.ents {
		if e := c.m.lines.lookup(v.txs.ents[i].line); e != nil {
			e.readers &= mask
			e.writers &= mask
		}
	}
}

// abortMask aborts every core named in mask other than c itself; site
// is the killing access's static site (0 when unattributed). It is
// inlinable: the empty-mask case (no foreign speculative presence — the
// overwhelmingly common one) costs a masked compare, and the slow loop
// lives in abortMaskSlow.
func (c *Core) abortMask(mask uint32, line mem.Addr, site uint32) {
	if mask &^= 1 << uint(c.id); mask != 0 {
		c.abortMaskSlow(mask, line, site)
	}
}

func (c *Core) abortMaskSlow(mask uint32, line mem.Addr, site uint32) {
	for id := 0; mask != 0; id++ {
		if mask&(1<<uint(id)) != 0 {
			mask &^= 1 << uint(id)
			c.abortRemote(c.m.cores[id], line, site)
		}
	}
}

// record notes the first transactional access to a line. Entries are
// stored by value in the flat table: the common first-access path is one
// probe and one append, with no per-line heap allocation.
func (c *Core) record(line mem.Addr, pc uint64, site uint32, wrote bool) {
	tl := c.txs.lookup(line)
	if tl == nil {
		c.txs.add(line, pc, site, wrote)
		if max := c.m.cfg.MaxSpecLines; max > 0 && len(c.txs.ents) > max {
			// Speculative-set capacity exhausted (the limited-HTM
			// variant's dedicated transactional buffer is full). The
			// line joins the set first so clearTx strips its directory
			// presence, then the attempt aborts as an overflow.
			c.abortSelf(AbortInfo{Reason: AbortOverflow, ByCore: c.id})
		}
		return
	}
	if wrote && !tl.wrote {
		tl.wrote = true
	}
}

// Load performs a load at program counter pc from static site, reading
// the word at address a. Inside a transaction the access is speculative;
// outside it is an ordinary coherent load.
func (c *Core) Load(pc uint64, site uint32, a mem.Addr) uint64 {
	c.countUop()
	c.stats.Loads++
	line := mem.LineOf(a)
	c.event()
	e := c.m.entry(line)
	if !c.m.cfg.Lazy || !c.inTx {
		// Eager requester-wins (and any non-speculative read): reading a
		// line another core has speculatively written aborts the writer.
		c.abortMask(e.writers, line, site)
	}
	if c.inTx {
		e.readers |= 1 << uint(c.id)
		c.record(line, pc, site, false)
	}
	c.clock += c.m.lookupLatency(c, line, e)
	word := mem.WordOf(a)
	if c.inTx {
		if v, ok := c.wbuf.get(word); ok {
			return v
		}
	}
	v := c.m.Mem.Load(a)
	if c.obsReads != nil {
		c.obsRead(word, v)
	}
	return v
}

// Store performs a store at program counter pc from static site, writing
// v to the word at address a. Inside a transaction the write is buffered
// until commit; outside it updates memory immediately.
func (c *Core) Store(pc uint64, site uint32, a mem.Addr, v uint64) {
	c.countUop()
	c.stats.Stores++
	line := mem.LineOf(a)
	c.event()
	e := c.m.entry(line)
	if !c.m.cfg.Lazy || !c.inTx {
		// Eager mode (and any non-speculative store): a store conflicts
		// with every other speculative reader or writer, requester wins.
		c.abortMask(e.writers|e.readers, line, site)
	}
	if !c.inTx || !c.m.cfg.Lazy {
		// Lazy speculative stores stay private until commit: no RFO yet.
		c.m.invalidateOthers(e, line, c.id)
	}
	c.clock += c.m.lookupLatency(c, line, e)
	if c.inTx {
		e.readers |= 1 << uint(c.id)
		e.writers |= 1 << uint(c.id)
		c.record(line, pc, site, true)
		c.wbuf.put(mem.WordOf(a), v)
		return
	}
	c.m.Mem.Store(a, v)
	c.obsStore(mem.WordOf(a), v)
}

// obsStore routes a committed (non-speculative) store to the observer:
// inside an irrevocable section the write joins the section's deferred
// write set; otherwise it is reported immediately.
func (c *Core) obsStore(word mem.Addr, v uint64) {
	if c.m.observer == nil {
		return
	}
	if c.inIrrev {
		c.obsWrites[word] = v
		return
	}
	c.m.observer.OnStore(c.id, word, v)
}

// NTLoad performs a nontransactional load: it reads committed memory and
// joins no speculative set, so remote stores to the location cannot abort
// this core. Speculative writes by other cores are buffered until their
// commit and thus invisible; the load is serviced from the committed copy
// without disturbing the writer (lazy versioning, eager conflict
// detection — the combination our ASF variant models).
func (c *Core) NTLoad(a mem.Addr) uint64 {
	c.countUop()
	c.stats.NTLoads++
	line := mem.LineOf(a)
	c.event()
	c.ntCharge(c.m.lookupLatency(c, line, c.m.entry(line)))
	return c.m.Mem.Load(a)
}

// ntCharge advances the clock by an NT access latency, attributing it to
// the NT-overhead counter when issued inside an atomic attempt (the cost
// of advisory-lock traffic from transactional code).
func (c *Core) ntCharge(lat uint64) {
	if c.inAttempt {
		c.stats.NTTxCycles += lat
	}
	c.clock += lat
}

// NTStore performs an immediate nontransactional store (ASF-style): the
// write is globally visible at once, survives an abort of the enclosing
// transaction, and joins no speculative set. If other cores hold the line
// transactionally, they abort (their speculation has read or written data
// this store invalidates).
func (c *Core) NTStore(a mem.Addr, v uint64) {
	c.countUop()
	c.stats.NTStores++
	line := mem.LineOf(a)
	e := c.ntStoreConflicts(line)
	c.ntFaultDelay()
	c.m.invalidateOthers(e, line, c.id)
	c.ntCharge(c.m.lookupLatency(c, line, e))
	c.m.Mem.Store(a, v)
	c.obsStore(mem.WordOf(a), v)
}

// NTCas performs a nontransactional compare-and-swap as a single memory
// event, returning whether the swap happened. It is the primitive used to
// build advisory locks and the irrevocable global lock.
func (c *Core) NTCas(a mem.Addr, old, new uint64) bool {
	c.countUop()
	c.stats.NTLoads++
	c.stats.NTStores++
	line := mem.LineOf(a)
	e := c.ntStoreConflicts(line)
	c.ntFaultDelay()
	c.m.invalidateOthers(e, line, c.id)
	c.ntCharge(c.m.lookupLatency(c, line, e))
	if c.m.Mem.Load(a) != old {
		return false
	}
	c.m.Mem.Store(a, new)
	c.obsStore(mem.WordOf(a), new)
	return true
}

// ntFaultDelay charges an injected transient delay against this
// nontransactional store, if a fault injector is installed.
func (c *Core) ntFaultDelay() {
	if c.m.chaos == nil {
		return
	}
	if d := c.m.chaos.NTDelay(c.id, c.clock); d != 0 {
		c.stats.WaitCycles[WaitFault] += d
		if c.inAttempt {
			c.attemptWait += d
		}
		c.clock += d
	}
}

// ntStoreConflicts synchronizes, aborts every remote transaction that
// holds the target line speculatively, and returns the line's coherence
// entry for the caller's invalidation and latency steps.
func (c *Core) ntStoreConflicts(line mem.Addr) *lineEntry {
	c.event()
	e := c.m.entry(line)
	// NT stores carry no static site: the advisory-lock words they hit
	// live outside the IR, so the conflict pair stays unattributed.
	c.abortMask(e.writers|e.readers, line, 0)
	return e
}

// lazyResolve implements commit-time committer-wins conflict resolution:
// the committing transaction aborts every other transaction whose
// speculative sets intersect its write set, then publishes. Lines are
// visited in address order so victim selection — and therefore the whole
// simulation — stays deterministic.
func (c *Core) lazyResolve() {
	written := c.addrScratch[:0]
	for i := range c.txs.ents {
		if c.txs.ents[i].wrote {
			written = append(written, c.txs.ents[i].line)
		}
	}
	c.addrScratch = written // keep the grown buffer for the next commit
	sortAddrs(written)
	for _, line := range written {
		// Every recorded line has a coherence entry (Load/Store created it).
		e := c.m.lines.lookup(line)
		// The committer's first access to the line stands in for the
		// killing site (the publish is line-, not site-granular).
		c.abortMask(e.writers|e.readers, line, c.txs.lookup(line).site)
		// Publishing takes ownership: remote caches lose the line.
		c.m.invalidateOthers(e, line, c.id)
	}
}

func sortAddrs(a []mem.Addr) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
