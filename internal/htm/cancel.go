package htm

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Run cancellation. A simulation is normally abandoned only by finishing
// or by the virtual-time watchdog; a long-running service additionally
// needs to abandon a run because the client hung up or a wall-clock
// deadline passed. CancelOn arms a flag that every core consults at its
// globally ordered events (the same points the watchdog checks), so a
// cancelled machine unwinds within one event per core instead of
// draining the whole workload. The flag is advisory and asynchronous —
// WHERE in virtual time the run stops depends on wall-clock timing — but
// that is safe because a cancelled run yields no Result at all: callers
// get a *CancelError and nothing of the partial simulation escapes.
//
// Cost when unarmed: a single always-false branch on a bool the machine
// owns, at watchdog-check sites only. No allocation, no atomics.

// CancelError reports a run abandoned because CancelOn's done channel
// closed mid-simulation.
type CancelError struct {
	// Core is the core that first observed the cancellation.
	Core int
	// Cycles is that core's virtual clock at the abandon point.
	Cycles uint64
}

func (e *CancelError) Error() string {
	return fmt.Sprintf("htm: run cancelled (core %d at cycle %d)", e.Core, e.Cycles)
}

// CancelOn arms run cancellation: once done is closed, every core
// abandons the simulation at its next globally ordered event and
// RunChecked returns a *CancelError. Call before Run; call the returned
// stop function once Run has returned to release the watcher goroutine
// (it is idempotent). A machine that never arms cancellation takes no
// atomic operation on the hot path.
func (m *Machine) CancelOn(done <-chan struct{}) (stop func()) {
	if m.ran {
		panic("htm: CancelOn after Run")
	}
	m.cancelArmed = true
	quit := make(chan struct{})
	go func() {
		select {
		case <-done:
			m.cancelled.Store(true)
		case <-quit:
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(quit) }) }
}

// cancelState is embedded in Machine: armed is written before Run and
// only read afterwards; cancelled crosses goroutines and is atomic.
type cancelState struct {
	cancelArmed bool
	cancelled   atomic.Bool
}

// checkCancel abandons the run once the armed flag fires. It runs at the
// watchdog's check sites (every memory event and compute burst), so even
// a compute-only livelock is cancellable.
func (c *Core) checkCancel() {
	if c.m.cancelArmed && c.m.cancelled.Load() {
		panic(&CancelError{Core: c.id, Cycles: c.clock})
	}
}
