package htm

import (
	"testing"

	"repro/internal/mem"
)

// TestEngineGlobalOrderByVirtualTime: across many cores with staggered
// start offsets, globally visible events must occur in nondecreasing
// virtual-time order (ties broken by core ID).
func TestEngineGlobalOrderByVirtualTime(t *testing.T) {
	const cores = 8
	m := New(smallConfig(cores))
	type ev struct {
		time uint64
		core int
	}
	var log []ev
	addrs := make([]mem.Addr, cores)
	for i := range addrs {
		addrs[i] = m.Alloc.AllocLines(1)
	}
	bodies := make([]func(*Core), cores)
	for i := range bodies {
		tid := i
		bodies[i] = func(c *Core) {
			c.SpinWait(uint64(tid*7), WaitBackoff) // desynchronize
			for k := 0; k < 20; k++ {
				// A zero-length wait is a pure synchronization point; the
				// engine only lets the minimum-time core proceed, so times
				// observed here must be globally nondecreasing.
				c.SpinWait(0, WaitBackoff)
				log = append(log, ev{c.Now(), c.ID()})
				c.Store(0x10, 1, addrs[tid], uint64(k))
				c.Compute(10 + tid)
			}
		}
	}
	m.Run(bodies)
	for i := 1; i < len(log); i++ {
		a, b := log[i-1], log[i]
		if a.time > b.time {
			t.Fatalf("event %d out of order: core %d @%d then core %d @%d",
				i, a.core, a.time, b.core, b.time)
		}
		if a.time == b.time && a.core > b.core {
			t.Fatalf("tie at %d broken against core order: %d before %d",
				a.time, a.core, b.core)
		}
	}
}

// TestEngineSingleCoreNoHandoff: one core never blocks on the engine.
func TestEngineSingleCoreNoHandoff(t *testing.T) {
	m := New(smallConfig(1))
	a := m.Alloc.AllocLines(1)
	m.Run([]func(*Core){func(c *Core) {
		for i := 0; i < 1000; i++ {
			c.Store(0x10, 1, a, uint64(i))
		}
	}})
	if got := m.Mem.Load(a); got != 999 {
		t.Fatalf("final = %d", got)
	}
}

// TestEngineEarlyFinishers: cores finishing at wildly different times
// must not wedge the remaining ones.
func TestEngineEarlyFinishers(t *testing.T) {
	const cores = 6
	m := New(smallConfig(cores))
	a := m.Alloc.AllocLines(1)
	done := make([]bool, cores)
	bodies := make([]func(*Core), cores)
	for i := range bodies {
		tid := i
		bodies[i] = func(c *Core) {
			for k := 0; k < (tid+1)*10; k++ {
				c.NTLoad(a)
				c.Compute(5)
			}
			done[tid] = true
		}
	}
	m.Run(bodies)
	for i, d := range done {
		if !d {
			t.Fatalf("core %d never finished", i)
		}
	}
	s := m.Stats()
	if s.PerCore[0].FinalClock >= s.PerCore[cores-1].FinalClock {
		t.Fatal("shortest thread should finish earliest in virtual time")
	}
}

// TestEngineIdleCoreDoesNotGateOthers: a core that stops issuing events
// (finished) must not delay the others' progress at all.
func TestEngineIdleCoreDoesNotGateOthers(t *testing.T) {
	m := New(smallConfig(2))
	a := m.Alloc.AllocLines(1)
	b := m.Alloc.AllocLines(1)
	m.Run([]func(*Core){
		func(c *Core) { c.Store(0x1, 1, a, 1) }, // finishes immediately
		func(c *Core) {
			for i := 0; i < 500; i++ {
				c.Store(0x2, 2, b, uint64(i))
				c.Compute(20)
			}
		},
	})
	if m.Mem.Load(a) != 1 || m.Mem.Load(b) != 499 {
		t.Fatal("state wrong after early finisher")
	}
}

// TestFewerBodiesThanCores: Run with a subset of cores works and only
// those cores accumulate stats.
func TestFewerBodiesThanCores(t *testing.T) {
	m := New(smallConfig(8))
	a := m.Alloc.AllocLines(1)
	m.Run([]func(*Core){
		func(c *Core) { c.Store(0x1, 1, a, 5) },
		func(c *Core) { c.NTLoad(a) },
	})
	s := m.Stats()
	for i := 2; i < 8; i++ {
		if s.PerCore[i].Uops != 0 {
			t.Fatalf("unused core %d executed work", i)
		}
	}
}

// TestTooManyBodiesPanics guards the thread/core contract.
func TestTooManyBodiesPanics(t *testing.T) {
	m := New(smallConfig(2))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Run(make([]func(*Core), 3))
}

// TestRunEmptyBodies: zero threads is a no-op.
func TestRunEmptyBodies(t *testing.T) {
	m := New(smallConfig(2))
	m.Run(nil)
	if m.Stats().Makespan != 0 {
		t.Fatal("empty run advanced time")
	}
}
