package htm

import (
	"reflect"
	"testing"

	"repro/internal/mem"
)

// handoffRun executes a synthetic program decoded from ops on a fresh
// machine: cores (2..4) interleave nontransactional loads/stores, compute
// bursts, spin waits, and full retrying hardware transactions over two
// shared lines. Every byte drives one step of one core (round-robin), so
// the fuzzer controls the exact mix and phase of memory events without
// being able to make a run diverge between engines. The full transaction
// event trace is recorded for cycle-for-cycle comparison.
func handoffRun(cores int, ops []byte, refEngine bool) (Stats, []TraceEvent, *mem.Memory) {
	cfg := smallConfig(cores)
	cfg.RefEngine = refEngine
	m := New(cfg)
	m.EnableTrace(0)
	sharedA := m.Alloc.AllocLines(1)
	sharedB := m.Alloc.AllocLines(1)
	private := make([]mem.Addr, cores)
	for i := range private {
		private[i] = m.Alloc.AllocLines(1)
	}
	bodies := make([]func(*Core), cores)
	for i := range bodies {
		tid := i
		bodies[i] = func(c *Core) {
			for k := tid; k < len(ops); k += cores {
				b := ops[k]
				switch b % 6 {
				case 0:
					c.NTStore(sharedA, uint64(b))
				case 1:
					c.NTLoad(sharedB)
				case 2:
					c.Compute(int(b%32) + 1)
				case 3:
					c.Atomic(DefaultAtomicOpts(), TxHooks{}, func(c *Core) {
						v := c.Load(0x100+uint64(tid), 1, sharedA)
						c.Compute(int(b % 8))
						c.Store(0x110+uint64(tid), 2, sharedA, v+1)
					})
				case 4:
					c.Atomic(DefaultAtomicOpts(), TxHooks{}, func(c *Core) {
						v := c.Load(0x120+uint64(tid), 3, sharedB)
						c.Store(0x130+uint64(tid), 4, sharedB, v+uint64(b))
						c.Store(0x140+uint64(tid), 5, private[tid], v)
					})
				default:
					c.SpinWait(uint64(b%64), WaitBackoff)
				}
			}
		}
	}
	m.Run(bodies)
	return m.Stats(), m.Trace(), m.Mem
}

// FuzzEngineHandoff drives arbitrary NT/tx interleavings across 2-4 cores
// through both the optimized engine (per-tenure fast-path handoff) and the
// retained reference engine (full minimum scan at every sync) and requires
// them to agree cycle-for-cycle: identical statistics (every clock, abort,
// and cache counter), an identical transaction event trace, and identical
// final memory.
func FuzzEngineHandoff(f *testing.F) {
	f.Add(uint8(2), []byte{3, 3, 3, 3, 0, 1, 4, 4})
	f.Add(uint8(3), []byte{3, 4, 3, 4, 3, 4, 2, 5, 0, 0, 1, 3, 4, 3})
	f.Add(uint8(4), []byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 250, 251, 252, 253, 254, 255})
	f.Add(uint8(4), []byte{3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3})
	f.Fuzz(func(t *testing.T, coresRaw uint8, ops []byte) {
		cores := 2 + int(coresRaw)%3
		if len(ops) > 512 {
			ops = ops[:512]
		}
		fastStats, fastTrace, fastMem := handoffRun(cores, ops, false)
		refStats, refTrace, refMem := handoffRun(cores, ops, true)
		if !reflect.DeepEqual(fastStats, refStats) {
			t.Fatalf("stats diverge between engines:\nfast: %+v\nref:  %+v", fastStats, refStats)
		}
		if !reflect.DeepEqual(fastTrace, refTrace) {
			t.Fatalf("event traces diverge (fast %d events, ref %d):\nfast:\n%s\nref:\n%s",
				len(fastTrace), len(refTrace), FormatTrace(fastTrace), FormatTrace(refTrace))
		}
		if d := fastMem.Diff(refMem, 4); len(d) != 0 {
			t.Fatalf("final memory diverges at %v", d)
		}
	})
}

// TestEngineHandoffEquivalenceSweep runs the differential check over a
// deterministic family of op mixes so the equivalence holds in plain
// `go test` runs too, not only under the fuzzer.
func TestEngineHandoffEquivalenceSweep(t *testing.T) {
	for cores := 2; cores <= 4; cores++ {
		for variant := 0; variant < 8; variant++ {
			ops := make([]byte, 96)
			for i := range ops {
				ops[i] = byte((i*7 + variant*13 + i*i*variant) % 256)
			}
			fastStats, fastTrace, _ := handoffRun(cores, ops, false)
			refStats, refTrace, _ := handoffRun(cores, ops, true)
			if !reflect.DeepEqual(fastStats, refStats) {
				t.Fatalf("cores=%d variant=%d: stats diverge", cores, variant)
			}
			if !reflect.DeepEqual(fastTrace, refTrace) {
				t.Fatalf("cores=%d variant=%d: traces diverge", cores, variant)
			}
		}
	}
}
