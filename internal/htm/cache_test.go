package htm

import (
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

func line(i int) mem.Addr { return mem.Addr(0x100000 + i*64) }

func TestL1HitAfterInsert(t *testing.T) {
	c := newL1(16, 4)
	if c.hit(line(1)) {
		t.Fatal("phantom hit")
	}
	if !c.insert(line(1), func(mem.Addr) bool { return false }) {
		t.Fatal("insert failed")
	}
	if !c.hit(line(1)) {
		t.Fatal("miss after insert")
	}
}

func TestL1LRUEviction(t *testing.T) {
	c := newL1(16, 4) // 4 sets x 4 ways
	nopin := func(mem.Addr) bool { return false }
	// Four lines mapping to the same set (stride = nsets*64).
	for i := 0; i < 4; i++ {
		c.insert(line(i*4), nopin)
	}
	// Touch line 0 to make it MRU, then insert a fifth: line(4) (the LRU)
	// must be the victim, line 0 must survive.
	if !c.hit(line(0)) {
		t.Fatal("expected hit")
	}
	c.insert(line(16), nopin)
	if !c.hit(line(0)) {
		t.Fatal("MRU line evicted")
	}
	if c.hit(line(4)) {
		t.Fatal("LRU line survived")
	}
}

func TestL1PinnedLinesSurvive(t *testing.T) {
	c := newL1(16, 4)
	pinned := map[mem.Addr]bool{line(0): true, line(4): true}
	pin := func(l mem.Addr) bool { return pinned[l] }
	for i := 0; i < 4; i++ {
		c.insert(line(i*4), pin)
	}
	// Insert two more: evictions must skip the pinned lines.
	c.insert(line(16), pin)
	c.insert(line(20), pin)
	if !c.hit(line(0)) || !c.hit(line(4)) {
		t.Fatal("pinned line evicted")
	}
}

func TestL1InsertFailsWhenAllPinned(t *testing.T) {
	c := newL1(16, 4)
	pin := func(mem.Addr) bool { return true }
	for i := 0; i < 4; i++ {
		if !c.insert(line(i*4), pin) {
			t.Fatal("insert into non-full set failed")
		}
	}
	if c.insert(line(16), pin) {
		t.Fatal("insert succeeded with all ways pinned")
	}
}

func TestL1Invalidate(t *testing.T) {
	c := newL1(16, 4)
	nopin := func(mem.Addr) bool { return false }
	c.insert(line(3), nopin)
	c.invalidate(line(3))
	if c.hit(line(3)) {
		t.Fatal("hit after invalidate")
	}
	c.invalidate(line(99)) // absent: must be a no-op
}

func TestL1Reset(t *testing.T) {
	c := newL1(16, 4)
	nopin := func(mem.Addr) bool { return false }
	for i := 0; i < 8; i++ {
		c.insert(line(i), nopin)
	}
	c.reset()
	for i := 0; i < 8; i++ {
		if c.hit(line(i)) {
			t.Fatal("hit after reset")
		}
	}
}

// TestL1CapacityProperty: a set never exceeds its way count, whatever the
// insertion sequence.
func TestL1CapacityProperty(t *testing.T) {
	f := func(seq []uint16) bool {
		c := newL1(64, 8)
		nopin := func(mem.Addr) bool { return false }
		for _, v := range seq {
			// Mirror the access path's contract: probe before insert.
			if l := mem.LineOf(mem.Addr(v) * 64); !c.hit(l) {
				c.insert(l, nopin)
			}
		}
		for _, s := range c.sets {
			if len(s) > 8 {
				return false
			}
			seen := map[mem.Addr]bool{}
			for _, l := range s {
				if seen[l] {
					return false // duplicate entries
				}
				seen[l] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNewL1RejectsNonPowerOfTwoSets(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	newL1(24, 4) // 6 sets
}

// TestDRAMChannelQueueing: back-to-back cold misses on the same channel
// must queue, making the second slower than an uncontended miss.
func TestDRAMChannelQueueing(t *testing.T) {
	cfg := smallConfig(2)
	m := New(cfg)
	// Two lines on the same channel: channel = (line/64) % 2, so lines
	// with even line-index share channel 0.
	a := mem.Addr(0x200000) // line index even
	b := mem.Addr(0x200080) // +2 lines: same channel
	var lat1, lat0 uint64
	m.Run([]func(*Core){
		func(c *Core) {
			t0 := c.Now()
			c.NTLoad(a)
			lat0 = c.Now() - t0
		},
		func(c *Core) {
			// Arrive just after core 0's miss begins.
			c.SpinWait(1, WaitBackoff)
			t0 := c.Now()
			c.NTLoad(b)
			lat1 = c.Now() - t0
		},
	})
	if lat0 != m.Config().MemLat {
		t.Fatalf("first miss latency = %d, want %d", lat0, m.Config().MemLat)
	}
	if lat1 <= lat0 {
		t.Fatalf("queued miss latency %d not above uncontended %d", lat1, lat0)
	}
}

// TestStoreInvalidatesRemoteCaches: after a remote store, re-reading the
// line costs more than an L1 hit.
func TestStoreInvalidatesRemoteCaches(t *testing.T) {
	m := New(smallConfig(2))
	a := m.Alloc.AllocLines(1)
	var warm, afterInval uint64
	m.Run([]func(*Core){
		func(c *Core) {
			c.NTLoad(a) // warm the line
			t0 := c.Now()
			c.NTLoad(a)
			warm = c.Now() - t0
			c.SpinWait(1000, WaitBackoff) // let core 1 store
			t0 = c.Now()
			c.NTLoad(a)
			afterInval = c.Now() - t0
		},
		func(c *Core) {
			c.SpinWait(500, WaitBackoff)
			c.Store(0x10, 1, a, 42)
		},
	})
	if warm != m.Config().L1Lat {
		t.Fatalf("warm hit latency = %d, want %d", warm, m.Config().L1Lat)
	}
	if afterInval <= warm {
		t.Fatalf("post-invalidation latency %d not above L1 hit %d", afterInval, warm)
	}
}
