package htm

import (
	"fmt"
	"strings"

	"repro/internal/mem"
)

// TraceEvent is one recorded simulation event. Tracing is optional (off
// by default); when enabled via Machine.EnableTrace, the machine records
// transaction begins, commits, and aborts with their virtual times,
// giving a complete, deterministic timeline for debugging contention
// pathologies (which transaction killed which, where, and when).
type TraceEvent struct {
	Time uint64
	Core int
	Kind TraceKind

	// Abort events carry the abort details.
	Reason   AbortReason
	ConfAddr mem.Addr
	ConfPC   uint64
	ByCore   int
}

// TraceKind classifies trace events.
type TraceKind uint8

const (
	// TraceBegin marks a transaction attempt starting.
	TraceBegin TraceKind = iota
	// TraceCommit marks a successful commit.
	TraceCommit
	// TraceAbort marks an aborted attempt.
	TraceAbort

	// The kinds below are extended (observability) events. They are
	// recorded only on machines with EnableTraceExt, so the default trace
	// stream — and everything pinned to it, like the golden engine trace —
	// is unchanged by their existence.

	// TraceLockAcquire marks an advisory-lock acquisition; ConfAddr is the
	// lock word's address.
	TraceLockAcquire
	// TraceLockRelease marks an advisory-lock release; ConfAddr is the
	// lock word's address.
	TraceLockRelease
	// TraceIrrevBegin marks entry to an irrevocable (global-lock) section.
	TraceIrrevBegin
	// TraceIrrevEnd marks the end of an irrevocable section.
	TraceIrrevEnd
)

// String implements fmt.Stringer.
func (k TraceKind) String() string {
	switch k {
	case TraceBegin:
		return "begin"
	case TraceCommit:
		return "commit"
	case TraceAbort:
		return "abort"
	case TraceLockAcquire:
		return "ab-acq"
	case TraceLockRelease:
		return "ab-rel"
	case TraceIrrevBegin:
		return "irrev"
	case TraceIrrevEnd:
		return "irrev-end"
	default:
		return fmt.Sprintf("TraceKind(%d)", uint8(k))
	}
}

// EnableTrace turns on event recording, bounded to at most limit events
// (0 = unlimited). Call before Run. A bounded buffer is pre-sized to its
// limit so recording never reallocates mid-run.
func (m *Machine) EnableTrace(limit int) {
	m.trace = &traceBuf{limit: limit}
	if limit > 0 {
		m.trace.events = make([]TraceEvent, 0, limit)
	}
}

// EnableTraceExt is EnableTrace plus the extended observability events:
// advisory-lock acquire/release annotations (Core.Annotate) and
// irrevocable section boundaries. Extended events exist for trace export
// (internal/obs); machines without this call never record them, so the
// baseline event stream is bit-identical whether the kinds exist or not.
func (m *Machine) EnableTraceExt(limit int) {
	m.EnableTrace(limit)
	m.extTrace = true
}

// ExtTraceOn reports whether extended trace events are being recorded.
func (m *Machine) ExtTraceOn() bool { return m.extTrace }

// Annotate records an extended trace event at the core's current virtual
// time. It is the hook higher-level runtimes (advisory locks in
// internal/stagger) use to land their own lifecycle events in the same
// deterministic stream as the hardware's begin/commit/abort. Without
// EnableTraceExt it costs one cached-boolean test and no allocation, so
// hot paths may call it unconditionally.
func (c *Core) Annotate(kind TraceKind, addr mem.Addr) {
	if c.traceOn && c.m.extTrace {
		c.m.record(TraceEvent{Time: c.clock, Core: c.id, Kind: kind, ConfAddr: addr})
	}
}

// Trace returns the recorded events in execution order — the order the
// engine's token visited them, which is monotone per core but not
// globally sorted by virtual time (a begin records mid-segment). Empty
// when tracing was not enabled.
func (m *Machine) Trace() []TraceEvent {
	if m.trace == nil {
		return nil
	}
	return m.trace.events
}

// FormatTrace renders events as one line each, for dumps and tests.
func FormatTrace(events []TraceEvent) string {
	var b strings.Builder
	for _, e := range events {
		switch e.Kind {
		case TraceAbort:
			fmt.Fprintf(&b, "%10d core%-2d %-6s %-9s addr=%#x pc=%#x by=core%d\n",
				e.Time, e.Core, e.Kind, e.Reason, uint64(e.ConfAddr), e.ConfPC, e.ByCore)
		case TraceLockAcquire, TraceLockRelease:
			fmt.Fprintf(&b, "%10d core%-2d %-6s lock=%#x\n",
				e.Time, e.Core, e.Kind, uint64(e.ConfAddr))
		default:
			fmt.Fprintf(&b, "%10d core%-2d %-6s\n", e.Time, e.Core, e.Kind)
		}
	}
	return b.String()
}

type traceBuf struct {
	events []TraceEvent
	limit  int
}

// traceRing keeps the LAST n events (the watchdog's failure report),
// unlike traceBuf which keeps the first ones. It exists only on machines
// with a watchdog configured, so the default hot path pays nothing.
type traceRing struct {
	buf  []TraceEvent
	n    int // events ever added
	next int
}

func newTraceRing(n int) *traceRing { return &traceRing{buf: make([]TraceEvent, n)} }

func (r *traceRing) add(e TraceEvent) {
	if r == nil {
		return
	}
	r.buf[r.next] = e
	r.next = (r.next + 1) % len(r.buf)
	r.n++
}

// events returns the retained events, oldest first.
func (r *traceRing) events() []TraceEvent {
	if r == nil {
		return nil
	}
	if r.n <= len(r.buf) {
		return append([]TraceEvent(nil), r.buf[:r.n]...)
	}
	out := make([]TraceEvent, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	return append(out, r.buf[:r.next]...)
}

func (t *traceBuf) add(e TraceEvent) {
	if t == nil {
		return
	}
	if t.limit > 0 && len(t.events) >= t.limit {
		return
	}
	t.events = append(t.events, e)
}

// recordBegin/recordCommit/recordAbort are called from the transaction
// paths; they are no-ops unless tracing is enabled. Core.traceOn caches
// "some sink exists" (set once at Run), so the untraced hot path pays a
// single predictable branch, and a traced machine dispatches both sinks
// from one constructed event.
func (c *Core) recordBegin() {
	if c.traceOn {
		c.m.record(TraceEvent{Time: c.clock, Core: c.id, Kind: TraceBegin})
	}
}

func (c *Core) recordCommit() {
	if c.traceOn {
		c.m.record(TraceEvent{Time: c.clock, Core: c.id, Kind: TraceCommit})
	}
}

func (c *Core) recordAbort(info AbortInfo) {
	if c.traceOn {
		c.m.record(TraceEvent{
			Time: c.clock, Core: c.id, Kind: TraceAbort,
			Reason: info.Reason, ConfAddr: info.ConfAddr,
			ConfPC: info.ConfPC, ByCore: info.ByCore,
		})
	}
}

// record fans one event out to every installed sink.
func (m *Machine) record(e TraceEvent) {
	m.trace.add(e)
	m.lastEvents.add(e)
}
