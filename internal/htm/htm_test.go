package htm

import (
	"testing"

	"repro/internal/mem"
)

func smallConfig(cores int) Config {
	cfg := DefaultConfig()
	cfg.Cores = cores
	return cfg
}

func TestSingleThreadCommit(t *testing.T) {
	m := New(smallConfig(1))
	a := m.Alloc.AllocLines(1)
	m.Run([]func(*Core){func(c *Core) {
		c.Atomic(DefaultAtomicOpts(), TxHooks{}, func(c *Core) {
			c.Store(0x100, 1, a, 7)
		})
	}})
	if got := m.Mem.Load(a); got != 7 {
		t.Fatalf("committed value = %d, want 7", got)
	}
	s := m.Stats()
	if s.Commits != 1 || s.TotalAborts() != 0 {
		t.Fatalf("commits=%d aborts=%d", s.Commits, s.TotalAborts())
	}
}

func TestSpeculativeWritesInvisibleUntilCommit(t *testing.T) {
	m := New(smallConfig(1))
	a := m.Alloc.AllocLines(1)
	m.Run([]func(*Core){func(c *Core) {
		c.TxBegin()
		c.Store(0x100, 1, a, 42)
		if m.Mem.Load(a) != 0 {
			t.Error("speculative store visible in memory before commit")
		}
		if c.Load(0x104, 2, a) != 42 {
			t.Error("transaction cannot read its own write")
		}
		c.TxCommit()
		if m.Mem.Load(a) != 42 {
			t.Error("commit did not publish write")
		}
	}})
}

func TestExplicitAbortDiscardsWrites(t *testing.T) {
	m := New(smallConfig(1))
	a := m.Alloc.AllocLines(1)
	m.Run([]func(*Core){func(c *Core) {
		func() {
			defer func() {
				if _, ok := recover().(*txAbort); !ok {
					t.Error("expected txAbort panic")
				}
			}()
			c.TxBegin()
			c.Store(0x100, 1, a, 99)
			c.TxAbortExplicit()
		}()
		if m.Mem.Load(a) != 0 {
			t.Error("aborted store leaked to memory")
		}
		if c.InTx() {
			t.Error("still in tx after abort")
		}
	}})
}

// TestWriteWriteConflictRequesterWins checks the eager requester-wins
// policy: when core 1 stores to a line core 0 has speculatively written,
// core 0 aborts with the conflicting address and PC.
func TestWriteWriteConflictRequesterWins(t *testing.T) {
	m := New(smallConfig(2))
	a := m.Alloc.AllocLines(1)
	var victimInfo AbortInfo
	gotAbort := false
	m.Run([]func(*Core){
		func(c *Core) {
			func() {
				defer func() {
					if ta, ok := recover().(*txAbort); ok {
						victimInfo = ta.info
						gotAbort = true
					}
				}()
				c.TxBegin()
				c.Store(0x111, 5, a, 1)
				// Spin far into the future so core 1 acts while we are
				// speculative; the abort is delivered at the next event.
				for i := 0; i < 100; i++ {
					c.SpinWait(100, WaitBackoff)
				}
				c.TxCommit()
			}()
		},
		func(c *Core) {
			c.SpinWait(500, WaitBackoff) // let core 0 write first
			c.TxBegin()
			c.Store(0x222, 6, a, 2)
			c.TxCommit()
		},
	})
	if !gotAbort {
		t.Fatal("victim did not abort")
	}
	if victimInfo.Reason != AbortConflict {
		t.Fatalf("reason = %v, want conflict", victimInfo.Reason)
	}
	if victimInfo.ConfAddr != mem.LineOf(a) {
		t.Fatalf("ConfAddr = %#x, want %#x", victimInfo.ConfAddr, mem.LineOf(a))
	}
	if !victimInfo.HasPC || victimInfo.ConfPC != 0x111 {
		t.Fatalf("ConfPC = %#x (has=%v), want 0x111", victimInfo.ConfPC, victimInfo.HasPC)
	}
	if victimInfo.TrueSite != 5 {
		t.Fatalf("TrueSite = %d, want 5", victimInfo.TrueSite)
	}
	if got := m.Mem.Load(a); got != 2 {
		t.Fatalf("memory = %d, want winner's 2", got)
	}
}

// TestReadersAbortOnRemoteStore checks W/R conflicts: a store by one core
// aborts all speculative readers of the line.
func TestReadersAbortOnRemoteStore(t *testing.T) {
	m := New(smallConfig(3))
	a := m.Alloc.AllocLines(1)
	aborted := make([]bool, 3)
	reader := func(c *Core) {
		func() {
			defer func() {
				if _, ok := recover().(*txAbort); ok {
					aborted[c.ID()] = true
				}
			}()
			c.TxBegin()
			c.Load(0x100, 1, a)
			for i := 0; i < 50; i++ {
				c.SpinWait(100, WaitBackoff)
			}
			c.TxCommit()
		}()
	}
	m.Run([]func(*Core){
		reader,
		reader,
		func(c *Core) {
			c.SpinWait(400, WaitBackoff)
			c.Store(0x300, 9, a, 1) // plain store, outside tx
		},
	})
	if !aborted[0] || !aborted[1] {
		t.Fatalf("readers not aborted: %v", aborted)
	}
}

// TestReadSharingNoConflict checks that concurrent speculative readers do
// not abort one another.
func TestReadSharingNoConflict(t *testing.T) {
	m := New(smallConfig(4))
	a := m.Alloc.AllocLines(1)
	m.Mem.Store(a, 5)
	m.Run([]func(*Core){
		func(c *Core) { readTx(t, c, a) },
		func(c *Core) { readTx(t, c, a) },
		func(c *Core) { readTx(t, c, a) },
		func(c *Core) { readTx(t, c, a) },
	})
	s := m.Stats()
	if s.TotalAborts() != 0 {
		t.Fatalf("aborts = %d, want 0", s.TotalAborts())
	}
	if s.Commits != 4 {
		t.Fatalf("commits = %d, want 4", s.Commits)
	}
}

func readTx(t *testing.T, c *Core, a mem.Addr) {
	t.Helper()
	c.Atomic(DefaultAtomicOpts(), TxHooks{}, func(c *Core) {
		if c.Load(0x100, 1, a) != 5 {
			t.Error("wrong value read")
		}
		c.Compute(50)
	})
}

// TestNTLoadDoesNotJoinReadSet: a remote store to a nontransactionally
// read location must not abort the transaction.
func TestNTLoadDoesNotJoinReadSet(t *testing.T) {
	m := New(smallConfig(2))
	lockw := m.Alloc.AllocLines(1)
	data := m.Alloc.AllocLines(1)
	committed := false
	m.Run([]func(*Core){
		func(c *Core) {
			c.TxBegin()
			c.Load(0x100, 1, data)
			c.NTLoad(lockw) // observe the "lock" nontransactionally
			for i := 0; i < 50; i++ {
				c.SpinWait(100, WaitBackoff)
			}
			c.TxCommit()
			committed = true
		},
		func(c *Core) {
			c.SpinWait(600, WaitBackoff)
			c.NTStore(lockw, 1) // write the lock word
		},
	})
	if !committed {
		t.Fatal("NT-read location caused an abort")
	}
}

// TestNTStoreAbortsTransactionalReaders: an NT store to a location that a
// transaction HAS read transactionally must abort it (correctness).
func TestNTStoreAbortsTransactionalReaders(t *testing.T) {
	m := New(smallConfig(2))
	data := m.Alloc.AllocLines(1)
	aborted := false
	m.Run([]func(*Core){
		func(c *Core) {
			func() {
				defer func() {
					if _, ok := recover().(*txAbort); ok {
						aborted = true
					}
				}()
				c.TxBegin()
				c.Load(0x100, 1, data)
				for i := 0; i < 50; i++ {
					c.SpinWait(100, WaitBackoff)
				}
				c.TxCommit()
			}()
		},
		func(c *Core) {
			c.SpinWait(600, WaitBackoff)
			c.NTStore(data, 1)
		},
	})
	if !aborted {
		t.Fatal("NT store to transactionally-read line did not abort reader")
	}
}

// TestNTStoreImmediateAndSurvivesAbort: ASF-style NT stores are visible at
// once and persist across an abort of the enclosing transaction.
func TestNTStoreImmediateAndSurvivesAbort(t *testing.T) {
	m := New(smallConfig(1))
	nt := m.Alloc.AllocLines(1)
	txd := m.Alloc.AllocLines(1)
	m.Run([]func(*Core){func(c *Core) {
		func() {
			defer func() { recover() }()
			c.TxBegin()
			c.NTStore(nt, 77)
			if m.Mem.Load(nt) != 77 {
				t.Error("NT store not immediately visible")
			}
			c.Store(0x100, 1, txd, 88)
			c.TxAbortExplicit()
		}()
		if m.Mem.Load(nt) != 77 {
			t.Error("NT store did not survive abort")
		}
		if m.Mem.Load(txd) != 0 {
			t.Error("transactional store leaked past abort")
		}
	}})
}

func TestNTCas(t *testing.T) {
	m := New(smallConfig(1))
	a := m.Alloc.AllocLines(1)
	m.Run([]func(*Core){func(c *Core) {
		if !c.NTCas(a, 0, 5) {
			t.Error("CAS on expected value failed")
		}
		if c.NTCas(a, 0, 6) {
			t.Error("CAS on stale value succeeded")
		}
		if c.NTLoad(a) != 5 {
			t.Error("CAS result wrong")
		}
	}})
}

// TestOverflowAbort fills one L1 set beyond associativity with speculative
// lines and expects a capacity abort.
func TestOverflowAbort(t *testing.T) {
	cfg := smallConfig(1)
	cfg.L1Lines = 16
	cfg.L1Ways = 4 // 4 sets x 4 ways
	m := New(cfg)
	var reason AbortReason
	m.Run([]func(*Core){func(c *Core) {
		func() {
			defer func() {
				if ta, ok := recover().(*txAbort); ok {
					reason = ta.info.Reason
				}
			}()
			c.TxBegin()
			// Lines mapping to the same set: stride = nsets * linesize.
			for i := 0; i < 8; i++ {
				c.Load(0x100+uint64(i), 1, mem.Addr(0x100000+i*4*64))
			}
			c.TxCommit()
		}()
	}})
	if reason != AbortOverflow {
		t.Fatalf("reason = %v, want overflow", reason)
	}
}

// TestIrrevocableFallback forces repeated conflicts so one thread gives up
// and runs under the global lock, and checks both threads' effects land.
func TestIrrevocableFallback(t *testing.T) {
	m := New(smallConfig(2))
	a := m.Alloc.AllocLines(1)
	opts := DefaultAtomicOpts()
	opts.MaxRetries = 1 // first abort forces irrevocability
	body := func(c *Core) {
		v := c.Load(0x100, 1, a)
		c.Compute(2000)
		c.Store(0x104, 2, a, v+1)
	}
	m.Run([]func(*Core){
		func(c *Core) {
			for i := 0; i < 20; i++ {
				c.Atomic(opts, TxHooks{}, body)
			}
		},
		func(c *Core) {
			for i := 0; i < 20; i++ {
				c.Atomic(opts, TxHooks{}, body)
			}
		},
	})
	if got := m.Mem.Load(a); got != 40 {
		t.Fatalf("counter = %d, want 40 (atomicity violated)", got)
	}
	s := m.Stats()
	if s.Commits != 40 {
		t.Fatalf("commits = %d, want 40", s.Commits)
	}
}

// TestAtomicCounterManyThreads is the classic atomicity stress: N threads
// increment a shared counter; the result must be exact.
func TestAtomicCounterManyThreads(t *testing.T) {
	const threads, incs = 8, 50
	m := New(smallConfig(threads))
	a := m.Alloc.AllocLines(1)
	bodies := make([]func(*Core), threads)
	for i := range bodies {
		bodies[i] = func(c *Core) {
			for k := 0; k < incs; k++ {
				c.Atomic(DefaultAtomicOpts(), TxHooks{}, func(c *Core) {
					v := c.Load(0x100, 1, a)
					c.Store(0x104, 2, a, v+1)
				})
			}
		}
	}
	m.Run(bodies)
	if got := m.Mem.Load(a); got != threads*incs {
		t.Fatalf("counter = %d, want %d", got, threads*incs)
	}
	s := m.Stats()
	if s.Commits != threads*incs {
		t.Fatalf("commits = %d, want %d", s.Commits, threads*incs)
	}
}

// TestDeterminism runs the same contended workload twice and requires
// bit-identical statistics.
func TestDeterminism(t *testing.T) {
	run := func() Stats {
		m := New(smallConfig(4))
		a := m.Alloc.AllocLines(1)
		bodies := make([]func(*Core), 4)
		for i := range bodies {
			bodies[i] = func(c *Core) {
				for k := 0; k < 30; k++ {
					c.Atomic(DefaultAtomicOpts(), TxHooks{}, func(c *Core) {
						v := c.Load(0x100, 1, a)
						c.Compute(200)
						c.Store(0x104, 2, a, v+1)
					})
				}
			}
		}
		m.Run(bodies)
		return m.Stats()
	}
	s1, s2 := run(), run()
	if s1.Makespan != s2.Makespan || s1.Commits != s2.Commits ||
		s1.TotalAborts() != s2.TotalAborts() ||
		s1.UsefulTxCycles != s2.UsefulTxCycles ||
		s1.WastedTxCycles != s2.WastedTxCycles {
		t.Fatalf("nondeterministic: %+v vs %+v", s1.CoreStats, s2.CoreStats)
	}
}

// TestNoCPCWhenDisabled: with HardwareCPC off, conflict aborts must not
// report a conflicting PC.
func TestNoCPCWhenDisabled(t *testing.T) {
	cfg := smallConfig(2)
	cfg.HardwareCPC = false
	m := New(cfg)
	a := m.Alloc.AllocLines(1)
	sawPC := false
	sawAbort := false
	m.Run([]func(*Core){
		func(c *Core) {
			hooks := TxHooks{OnAbort: func(info AbortInfo, _ int) {
				sawAbort = true
				if info.HasPC {
					sawPC = true
				}
			}}
			for i := 0; i < 30; i++ {
				c.Atomic(DefaultAtomicOpts(), hooks, func(c *Core) {
					v := c.Load(0x100, 1, a)
					c.Compute(500)
					c.Store(0x104, 2, a, v+1)
				})
			}
		},
		func(c *Core) {
			for i := 0; i < 30; i++ {
				c.Atomic(DefaultAtomicOpts(), TxHooks{}, func(c *Core) {
					v := c.Load(0x200, 3, a)
					c.Compute(500)
					c.Store(0x204, 4, a, v+1)
				})
			}
		},
	})
	if sawAbort && sawPC {
		t.Fatal("conflicting PC reported despite HardwareCPC=false")
	}
	if m.Mem.Load(a) != 60 {
		t.Fatalf("counter = %d, want 60", m.Mem.Load(a))
	}
}

// TestPCTagTruncation: recorded conflicting PCs carry only the low
// PCTagBits bits.
func TestPCTagTruncation(t *testing.T) {
	m := New(smallConfig(2))
	a := m.Alloc.AllocLines(1)
	var pcs []uint64
	m.Run([]func(*Core){
		func(c *Core) {
			hooks := TxHooks{OnAbort: func(info AbortInfo, _ int) {
				if info.HasPC {
					pcs = append(pcs, info.ConfPC)
				}
			}}
			for i := 0; i < 30; i++ {
				c.Atomic(DefaultAtomicOpts(), hooks, func(c *Core) {
					v := c.Load(0xABC123, 1, a) // full PC wider than 12 bits
					c.Compute(500)
					c.Store(0xABC127, 2, a, v+1)
				})
			}
		},
		func(c *Core) {
			for i := 0; i < 30; i++ {
				c.Atomic(DefaultAtomicOpts(), TxHooks{}, func(c *Core) {
					v := c.Load(0xDEF987, 3, a)
					c.Compute(500)
					c.Store(0xDEF98B, 4, a, v+1)
				})
			}
		},
	})
	for _, pc := range pcs {
		if pc != 0x123 && pc != 0x127 {
			t.Fatalf("truncated PC = %#x, want 0x123 or 0x127", pc)
		}
	}
	if len(pcs) == 0 {
		t.Skip("no conflict aborts observed; contention too low")
	}
}

// TestEngineVirtualTimeOrdering: cores' events interleave by virtual time,
// so a core that stalls lets others run far ahead.
func TestEngineVirtualTimeOrdering(t *testing.T) {
	m := New(smallConfig(2))
	a := m.Alloc.AllocLines(1)
	b := m.Alloc.AllocLines(1)
	var order []int
	m.Run([]func(*Core){
		func(c *Core) {
			c.SpinWait(10000, WaitBackoff)
			c.Store(0x1, 1, a, 1)
			order = append(order, 0)
		},
		func(c *Core) {
			c.Store(0x2, 2, b, 1)
			order = append(order, 1)
		},
	})
	if len(order) != 2 || order[0] != 1 || order[1] != 0 {
		t.Fatalf("order = %v, want [1 0]", order)
	}
}

func TestStatsCycleAccounting(t *testing.T) {
	m := New(smallConfig(1))
	a := m.Alloc.AllocLines(1)
	m.Run([]func(*Core){func(c *Core) {
		c.Atomic(DefaultAtomicOpts(), TxHooks{}, func(c *Core) {
			c.Store(0x100, 1, a, 1)
			c.Compute(400)
		})
	}})
	s := m.Stats()
	if s.UsefulTxCycles == 0 {
		t.Fatal("no useful cycles recorded")
	}
	if s.WastedTxCycles != 0 {
		t.Fatal("wasted cycles recorded without aborts")
	}
	if s.Uops < 401 {
		t.Fatalf("uops = %d, want >= 401", s.Uops)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Cores = 0 },
		func(c *Config) { c.Cores = 64 },
		func(c *Config) { c.L1Lines = 10; c.L1Ways = 4 },
		func(c *Config) { c.IssueWidth = 0 },
		func(c *Config) { c.PCTagBits = 0 },
		func(c *Config) { c.HeapBase = 3 },
	}
	for i, mutate := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected validation panic", i)
				}
			}()
			cfg := DefaultConfig()
			mutate(&cfg)
			New(cfg)
		}()
	}
}

func TestRunTwicePanics(t *testing.T) {
	m := New(smallConfig(1))
	m.Run([]func(*Core){func(c *Core) {}})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on second Run")
		}
	}()
	m.Run([]func(*Core){func(c *Core) {}})
}

func TestWorkloadPanicPropagates(t *testing.T) {
	m := New(smallConfig(1))
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("workload panic swallowed")
		}
	}()
	m.Run([]func(*Core){func(c *Core) {
		c.Atomic(DefaultAtomicOpts(), TxHooks{}, func(c *Core) {
			panic("workload bug")
		})
	}})
}
