package htm

// This file implements the base HTM runtime loop used by every system in
// the evaluation: try a hardware transaction up to MaxRetries times with
// polite backoff between attempts, then fall back to irrevocable mode
// under a global lock. Hardware transactions subscribe to the global lock
// immediately before committing, exactly as in Section 6 of the paper.

// AtomicOpts configures the software retry loop around a transaction.
type AtomicOpts struct {
	// MaxRetries is the number of hardware attempts before irrevocable
	// fallback (paper: 10).
	MaxRetries int
	// BackoffBase is the base backoff quantum in cycles; the mean backoff
	// before retry k is proportional to k ("Polite" policy).
	BackoffBase uint64
	// BackoffExp switches the inter-retry wait from the paper's linear
	// Polite policy to capped exponential backoff with randomized jitter:
	// the mean doubles per retry up to BackoffCap. Under injected spurious
	// aborts the linear policy lets deep retry chains synchronize and
	// livelock; the exponential cap bounds both the livelock window and
	// the worst-case idle time.
	BackoffExp bool
	// BackoffCap bounds the exponential mean, in cycles (0 with
	// BackoffExp: 64 * BackoffBase).
	BackoffCap uint64
	// RuntimePC is the synthetic PC attributed to the runtime's own
	// transactional accesses (the global-lock subscription).
	RuntimePC uint64
	// UnsafeEarlyRelease, test-only, releases the irrevocable global lock
	// BEFORE the body runs instead of after. This deliberately breaks the
	// fallback protocol — racing hardware transactions can commit having
	// observed half of the irrevocable section's writes — and exists so
	// tests can prove the serializability oracle catches real atomicity
	// violations. Never set it outside a test.
	UnsafeEarlyRelease bool
}

// DefaultAtomicOpts matches the paper's runtime parameters.
func DefaultAtomicOpts() AtomicOpts {
	return AtomicOpts{MaxRetries: 10, BackoffBase: 64, RuntimePC: 0xFFF0}
}

// TxHooks let a higher-level runtime (e.g. the staggered-transactions
// runtime) observe and steer the retry loop. Any hook may be nil.
type TxHooks struct {
	// OnBegin runs before each hardware attempt (attempt counts from 0).
	OnBegin func(attempt int)
	// OnAbort runs after an aborted attempt with the architectural abort
	// status.
	OnAbort func(info AbortInfo, attempt int)
	// OnCommit runs after the transaction has committed; irrevocable
	// reports whether it ran under the global lock.
	OnCommit func(irrevocable bool)
	// OnIrrevocable runs just before the body executes irrevocably.
	OnIrrevocable func()
}

// Atomic runs body atomically: speculatively when possible, irrevocably
// under the global lock after MaxRetries failed attempts. The body may be
// re-executed many times and must therefore be idempotent apart from its
// transactional effects (the usual TM contract).
func (c *Core) Atomic(opts AtomicOpts, hooks TxHooks, body func(*Core)) {
	if opts.MaxRetries <= 0 {
		opts.MaxRetries = 10
	}
	if opts.BackoffBase == 0 {
		opts.BackoffBase = 64
	}
	for attempt := 0; attempt < opts.MaxRetries; attempt++ {
		c.waitGlobalFree()
		if hooks.OnBegin != nil {
			hooks.OnBegin(attempt)
		}
		info, ok := c.tryTx(opts.RuntimePC, body)
		if ok {
			if hooks.OnCommit != nil {
				hooks.OnCommit(false)
			}
			return
		}
		if hooks.OnAbort != nil {
			hooks.OnAbort(info, attempt)
		}
		if opts.BackoffExp {
			c.expBackoff(attempt, opts.BackoffBase, opts.BackoffCap)
		} else {
			c.politeBackoff(attempt, opts.BackoffBase)
		}
	}
	// Irrevocable fallback: acquire the global lock nontransactionally
	// and run the body in place. Hardware transactions racing with us
	// either see the lock held when they subscribe (AbortLockHeld) or are
	// aborted by our CAS on the lock line / our plain stores.
	c.acquireGlobal()
	if hooks.OnIrrevocable != nil {
		hooks.OnIrrevocable()
	}
	if opts.UnsafeEarlyRelease {
		c.releaseGlobal()
	}
	c.inAttempt = true
	c.inIrrev = true
	c.obsBeginSection()
	c.Annotate(TraceIrrevBegin, 0)
	start := c.clock
	c.attemptWait = 0
	body(c)
	c.stats.Commits++
	c.stats.IrrevocableCommits++
	c.stats.UsefulTxCycles += c.clock - start - c.attemptWait
	if c.m.observer != nil {
		c.obsEndSection(true, c.obsWrites)
	}
	c.Annotate(TraceIrrevEnd, 0)
	c.inIrrev = false
	c.inAttempt = false
	if !opts.UnsafeEarlyRelease {
		c.releaseGlobal()
	}
	if hooks.OnCommit != nil {
		hooks.OnCommit(true)
	}
}

// tryTx runs one hardware attempt, converting the abort unwind into a
// normal return.
func (c *Core) tryTx(runtimePC uint64, body func(*Core)) (info AbortInfo, ok bool) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		ta, isAbort := r.(*txAbort)
		if !isAbort {
			// A real workload bug: clean the machine state so the panic
			// surfaces intelligibly, then rethrow.
			if c.inTx {
				c.clearTx()
			}
			panic(r)
		}
		info = ta.info
		ok = false
	}()
	c.TxBegin()
	body(c)
	// Subscribe to the global lock: add it to the read set and verify it
	// is free, so an irrevocable writer serializes against our commit.
	if c.Load(runtimePC, 0, c.m.GlobalLock) != 0 {
		c.abortSelf(AbortInfo{Reason: AbortLockHeld, ByCore: c.id})
	}
	c.TxCommit()
	return AbortInfo{}, true
}

// politeBackoff stalls for a randomized interval whose mean grows
// linearly with the retry count (Scherer & Scott's Polite policy, as used
// in the paper's runtime).
func (c *Core) politeBackoff(attempt int, base uint64) {
	mean := base * uint64(attempt+1)
	jitter := uint64(c.rand().Int63n(int64(mean))) // in [0, mean)
	c.SpinWait(mean/2+jitter, WaitBackoff)
}

// expBackoff stalls for a randomized interval whose mean doubles with
// each retry up to cap (truncated binary exponential backoff). The jitter
// draw comes from the core's deterministic PRNG, so the schedule is
// reproducible from the machine seed.
func (c *Core) expBackoff(attempt int, base, cap uint64) {
	if cap == 0 {
		cap = 64 * base
	}
	mean := base
	if attempt < 63 {
		mean = base << uint(attempt)
	}
	if mean > cap || mean == 0 {
		mean = cap
	}
	jitter := uint64(c.rand().Int63n(int64(mean))) // in [0, mean)
	c.SpinWait(mean/2+jitter, WaitBackoff)
}

// waitGlobalFree spins (nontransactionally) until the global lock is free.
func (c *Core) waitGlobalFree() {
	for c.NTLoad(c.m.GlobalLock) != 0 {
		c.SpinWait(50, WaitGlobal)
	}
}

// acquireGlobal takes the irrevocable global lock.
func (c *Core) acquireGlobal() {
	for {
		if c.NTLoad(c.m.GlobalLock) == 0 && c.NTCas(c.m.GlobalLock, 0, uint64(c.id)+1) {
			return
		}
		c.SpinWait(50, WaitGlobal)
	}
}

// releaseGlobal drops the irrevocable global lock.
func (c *Core) releaseGlobal() {
	c.NTStore(c.m.GlobalLock, 0)
}
