package htm

// WaitKind categorizes cycles a core spends stalled rather than executing.
type WaitKind uint8

const (
	// WaitLock is time spent spinning on an advisory lock.
	WaitLock WaitKind = iota
	// WaitBackoff is time spent in inter-retry (polite) backoff.
	WaitBackoff
	// WaitGlobal is time spent waiting for the irrevocable global lock.
	WaitGlobal
	// WaitFault is stall time charged by an installed fault injector
	// (NT-store delays and per-core stall jitter); always zero on a
	// fault-free machine.
	WaitFault
	numWaitKinds
)

// NumWaitKinds is the number of wait categories, for sizing per-kind
// counter arrays outside this package.
const NumWaitKinds = int(numWaitKinds)

// String implements fmt.Stringer.
func (k WaitKind) String() string {
	switch k {
	case WaitLock:
		return "lock"
	case WaitBackoff:
		return "backoff"
	case WaitGlobal:
		return "global"
	case WaitFault:
		return "fault"
	default:
		return "wait(?)"
	}
}

// CoreStats accumulates per-core counters over a simulation. All cycle
// counts are in simulated cycles; µ-op counts follow the conventions of
// the paper's Table 3 (one µ-op per memory access plus whatever compute
// the workload models explicitly).
type CoreStats struct {
	// Commits counts committed transactions, including irrevocable ones.
	Commits uint64
	// IrrevocableCommits counts transactions that gave up on speculation
	// and ran under the global lock (column %I in Table 1 is
	// IrrevocableCommits/Commits).
	IrrevocableCommits uint64
	// Aborts counts aborted transaction attempts by reason.
	Aborts [numAbortReasons]uint64

	// UsefulTxCycles is time inside transaction attempts that committed,
	// excluding in-transaction lock waiting.
	UsefulTxCycles uint64
	// WastedTxCycles is time inside attempts that aborted, excluding
	// in-transaction lock waiting. W/U in Tables 1 and Figure 8(b) is
	// WastedTxCycles / UsefulTxCycles.
	WastedTxCycles uint64
	// WaitCycles is stall time by category (advisory-lock spins, retry
	// backoff, global-lock waits).
	WaitCycles [numWaitKinds]uint64

	// Uops counts executed µ-ops (memory accesses plus modeled compute).
	Uops uint64
	// TxUops counts the subset of Uops issued inside transactions.
	TxUops uint64
	// NTTxCycles is the access latency of nontransactional loads, stores,
	// and CASes issued inside atomic attempts — the cost of manipulating
	// advisory locks and other NT side channels from transactional code.
	// It is a sub-attribution of UsefulTxCycles/WastedTxCycles (those
	// windows include it), not an additional category.
	NTTxCycles uint64
	// Loads, Stores, NTLoads, NTStores count memory accesses by kind.
	Loads, Stores, NTLoads, NTStores uint64
	// L1Hits, L2Hits, L3Hits, MemAccesses classify access latencies.
	L1Hits, L2Hits, L3Hits, MemAccesses uint64

	// FinalClock is the core's virtual time when its thread finished.
	FinalClock uint64
}

// TotalAborts sums aborts across reasons.
func (s *CoreStats) TotalAborts() uint64 {
	var t uint64
	for _, v := range s.Aborts {
		t += v
	}
	return t
}

// Stats is the machine-wide aggregate of all core stats.
type Stats struct {
	CoreStats
	// Makespan is the maximum final clock across cores: the simulated
	// wall-clock duration of the run.
	Makespan uint64
	PerCore  []CoreStats
}

// add folds c into the aggregate.
func (s *Stats) add(c *CoreStats) {
	s.Commits += c.Commits
	s.IrrevocableCommits += c.IrrevocableCommits
	for i := range s.Aborts {
		s.Aborts[i] += c.Aborts[i]
	}
	s.UsefulTxCycles += c.UsefulTxCycles
	s.WastedTxCycles += c.WastedTxCycles
	for i := range s.WaitCycles {
		s.WaitCycles[i] += c.WaitCycles[i]
	}
	s.Uops += c.Uops
	s.TxUops += c.TxUops
	s.NTTxCycles += c.NTTxCycles
	s.Loads += c.Loads
	s.Stores += c.Stores
	s.NTLoads += c.NTLoads
	s.NTStores += c.NTStores
	s.L1Hits += c.L1Hits
	s.L2Hits += c.L2Hits
	s.L3Hits += c.L3Hits
	s.MemAccesses += c.MemAccesses
	if c.FinalClock > s.Makespan {
		s.Makespan = c.FinalClock
	}
}

// AbortsPerCommit returns the Abts/C metric of Table 4.
func (s *Stats) AbortsPerCommit() float64 {
	if s.Commits == 0 {
		return 0
	}
	return float64(s.TotalAborts()) / float64(s.Commits)
}

// WastedOverUseful returns the W/U metric of Table 1 and Figure 8(b).
func (s *Stats) WastedOverUseful() float64 {
	if s.UsefulTxCycles == 0 {
		return 0
	}
	return float64(s.WastedTxCycles) / float64(s.UsefulTxCycles)
}

// IrrevocableFraction returns the %I metric of Table 1.
func (s *Stats) IrrevocableFraction() float64 {
	if s.Commits == 0 {
		return 0
	}
	return float64(s.IrrevocableCommits) / float64(s.Commits)
}

// TxCycles returns all cycles attributable to transactional execution.
func (s *Stats) TxCycles() uint64 {
	return s.UsefulTxCycles + s.WastedTxCycles + s.WaitCycles[WaitLock] +
		s.WaitCycles[WaitBackoff] + s.WaitCycles[WaitGlobal]
}
