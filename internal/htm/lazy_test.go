package htm

import (
	"testing"

	"repro/internal/mem"
)

func lazyConfig(cores int) Config {
	cfg := DefaultConfig()
	cfg.Cores = cores
	cfg.Lazy = true
	return cfg
}

// TestLazyCommitterWins: with lazy detection, two overlapping writers
// both proceed; the first to COMMIT wins and the other aborts at its
// next event — the inverse of eager requester-wins victim selection.
func TestLazyCommitterWins(t *testing.T) {
	m := New(lazyConfig(2))
	a := m.Alloc.AllocLines(1)
	var victim AbortInfo
	aborted := -1
	m.Run([]func(*Core){
		func(c *Core) { // writes first, commits LAST -> loses
			func() {
				defer func() {
					if ta, ok := recover().(*txAbort); ok {
						victim = ta.info
						aborted = 0
					}
				}()
				c.TxBegin()
				c.Store(0x111, 5, a, 1)
				for i := 0; i < 60; i++ {
					c.SpinWait(100, WaitBackoff)
				}
				c.TxCommit()
			}()
		},
		func(c *Core) { // writes second, commits FIRST -> wins
			c.SpinWait(500, WaitBackoff)
			c.TxBegin()
			c.Store(0x222, 6, a, 2)
			c.TxCommit()
		},
	})
	if aborted != 0 {
		t.Fatalf("late committer should have aborted core 0 (aborted=%d)", aborted)
	}
	if victim.Reason != AbortConflict || victim.ConfAddr != mem.LineOf(a) {
		t.Fatalf("victim info %+v", victim)
	}
	if got := m.Mem.Load(a); got != 2 {
		t.Fatalf("memory = %d, want committer's 2", got)
	}
}

// TestLazyNoAbortBeforeCommit: speculative access overlap alone must not
// abort anyone under lazy detection.
func TestLazyNoAbortBeforeCommit(t *testing.T) {
	m := New(lazyConfig(2))
	a := m.Alloc.AllocLines(1)
	sawEarlyAbort := false
	m.Run([]func(*Core){
		func(c *Core) {
			c.TxBegin()
			c.Store(0x100, 1, a, 1)
			// Give core 1 time to write the same line speculatively.
			for i := 0; i < 10; i++ {
				c.SpinWait(50, WaitBackoff)
				if c.hasPending {
					sawEarlyAbort = true
				}
			}
			c.TxCommit() // first commit: wins
		},
		func(c *Core) {
			c.SpinWait(120, WaitBackoff)
			func() {
				defer func() { recover() }()
				c.TxBegin()
				c.Store(0x200, 2, a, 2)
				for i := 0; i < 30; i++ {
					c.SpinWait(50, WaitBackoff)
				}
				c.TxCommit()
			}()
		},
	})
	if sawEarlyAbort {
		t.Fatal("lazy mode aborted a transaction before any commit")
	}
	s := m.Stats()
	if s.Aborts[AbortConflict] != 1 {
		t.Fatalf("conflict aborts = %d, want exactly 1 (at commit)", s.Aborts[AbortConflict])
	}
}

// TestLazyAtomicCounter: atomicity holds under lazy resolution with the
// full retry loop.
func TestLazyAtomicCounter(t *testing.T) {
	const threads, incs = 8, 40
	m := New(lazyConfig(threads))
	a := m.Alloc.AllocLines(1)
	bodies := make([]func(*Core), threads)
	for i := range bodies {
		bodies[i] = func(c *Core) {
			for k := 0; k < incs; k++ {
				c.Atomic(DefaultAtomicOpts(), TxHooks{}, func(c *Core) {
					v := c.Load(0x100, 1, a)
					c.Compute(150)
					c.Store(0x104, 2, a, v+1)
				})
			}
		}
	}
	m.Run(bodies)
	if got := m.Mem.Load(a); got != threads*incs {
		t.Fatalf("counter = %d, want %d", got, threads*incs)
	}
}

// TestLazyReadersSurviveUncommittedWriter: a speculative writer that
// eventually ABORTS must never disturb concurrent readers.
func TestLazyReadersSurviveUncommittedWriter(t *testing.T) {
	m := New(lazyConfig(2))
	a := m.Alloc.AllocLines(1)
	m.Mem.Store(a, 7)
	readerOK := false
	m.Run([]func(*Core){
		func(c *Core) {
			c.TxBegin()
			if c.Load(0x100, 1, a) != 7 {
				t.Error("reader saw speculative value")
			}
			for i := 0; i < 20; i++ {
				c.SpinWait(50, WaitBackoff)
			}
			c.TxCommit()
			readerOK = true
		},
		func(c *Core) {
			c.SpinWait(100, WaitBackoff)
			func() {
				defer func() { recover() }()
				c.TxBegin()
				c.Store(0x200, 2, a, 99)
				c.TxAbortExplicit()
			}()
		},
	})
	if !readerOK {
		t.Fatal("reader aborted despite writer never committing")
	}
	if m.Mem.Load(a) != 7 {
		t.Fatal("aborted writer leaked")
	}
}

// TestLazyDeterminism: lazy-mode simulations repeat bit-identically.
func TestLazyDeterminism(t *testing.T) {
	run := func() Stats {
		m := New(lazyConfig(4))
		a := m.Alloc.AllocLines(1)
		bodies := make([]func(*Core), 4)
		for i := range bodies {
			bodies[i] = func(c *Core) {
				for k := 0; k < 25; k++ {
					c.Atomic(DefaultAtomicOpts(), TxHooks{}, func(c *Core) {
						v := c.Load(0x100, 1, a)
						c.Compute(200)
						c.Store(0x104, 2, a, v+1)
					})
				}
			}
		}
		m.Run(bodies)
		return m.Stats()
	}
	s1, s2 := run(), run()
	if s1.Makespan != s2.Makespan || s1.TotalAborts() != s2.TotalAborts() {
		t.Fatalf("lazy mode nondeterministic: %d/%d vs %d/%d",
			s1.Makespan, s1.TotalAborts(), s2.Makespan, s2.TotalAborts())
	}
}

// TestLazyMultipleSpeculativeWriters: several cores may hold the same
// line in their write sets simultaneously; exactly one survives.
func TestLazyMultipleSpeculativeWriters(t *testing.T) {
	const threads = 4
	m := New(lazyConfig(threads))
	a := m.Alloc.AllocLines(1)
	committed := 0
	bodies := make([]func(*Core), threads)
	for i := range bodies {
		tid := i
		bodies[i] = func(c *Core) {
			func() {
				defer func() { recover() }()
				c.TxBegin()
				c.Store(0x100+uint64(tid), uint32(tid+1), a, uint64(tid+100))
				for k := 0; k < 10+tid*3; k++ {
					c.SpinWait(40, WaitBackoff)
				}
				c.TxCommit()
				committed++
			}()
		}
	}
	m.Run(bodies)
	if committed == 0 {
		t.Fatal("nobody committed")
	}
	v := m.Mem.Load(a)
	if v < 100 || v >= 100+threads {
		t.Fatalf("memory = %d, want one writer's value", v)
	}
}
