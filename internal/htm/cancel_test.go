package htm

import (
	"errors"
	"testing"
)

// TestCancelOnAbandonsLivelock: a compute-only infinite loop can only be
// ended by cancellation, so this test is deterministic proof that the
// cancel flag is honored mid-run (it hangs forever on regression).
func TestCancelOnAbandonsLivelock(t *testing.T) {
	m := New(smallConfig(2))
	done := make(chan struct{})
	stop := m.CancelOn(done)
	defer stop()
	started := make(chan struct{})
	go func() {
		<-started
		close(done)
	}()
	err := m.RunChecked([]func(*Core){
		func(c *Core) {
			close(started)
			for {
				c.Compute(64) // never yields an event; checkCancel runs here
			}
		},
		func(c *Core) { c.Compute(8) },
	})
	var ce *CancelError
	if !errors.As(err, &ce) {
		t.Fatalf("RunChecked = %v, want *CancelError", err)
	}
}

// TestCancelOnUnfiredIsInvisible: arming cancellation without firing it
// must not change the simulation in any way.
func TestCancelOnUnfiredIsInvisible(t *testing.T) {
	run := func(armed bool) Stats {
		m := New(smallConfig(2))
		if armed {
			done := make(chan struct{})
			stop := m.CancelOn(done)
			defer stop()
		}
		a := m.Alloc.AllocLines(1)
		body := func(c *Core) {
			for i := 0; i < 50; i++ {
				c.Atomic(DefaultAtomicOpts(), TxHooks{}, func(c *Core) {
					v := c.Load(0x100, 1, a)
					c.Compute(10)
					c.Store(0x101, 2, a, v+1)
				})
			}
		}
		m.Run([]func(*Core){body, body})
		return m.Stats()
	}
	plain, armed := run(false), run(true)
	if plain.Makespan != armed.Makespan || plain.Commits != armed.Commits ||
		plain.TotalAborts() != armed.TotalAborts() {
		t.Fatalf("armed-but-unfired cancellation perturbed the run: %+v vs %+v", plain, armed)
	}
}
