package htm

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/mem"
)

var updateEngineGolden = flag.Bool("update-engine-golden", false,
	"rewrite the golden engine trace")

// goldenWorkload is a small fixed contended workload: four cores hammer a
// shared counter line transactionally while also issuing NT stores to
// private lines and periodic compute, producing a trace with begins,
// commits, and conflict aborts at exactly reproducible virtual times. It
// exists so the engine's event ordering can be pinned byte-for-byte
// across refactors of the token handoff.
func goldenWorkload(cfg Config) *Machine {
	m := New(cfg)
	m.EnableTrace(0)
	shared := m.Alloc.AllocLines(1)
	private := make([]mem.Addr, cfg.Cores)
	for i := range private {
		private[i] = m.Alloc.AllocLines(1)
	}
	bodies := make([]func(*Core), 4)
	for i := range bodies {
		tid := i
		bodies[i] = func(c *Core) {
			for k := 0; k < 12; k++ {
				c.Atomic(DefaultAtomicOpts(), TxHooks{}, func(c *Core) {
					v := c.Load(0x100+uint64(tid), 1, shared)
					c.Compute(5 + tid)
					c.Store(0x200+uint64(tid), 2, shared, v+1)
				})
				c.NTStore(private[tid], uint64(k))
				c.Compute(3 * (tid + 1))
			}
		}
	}
	m.Run(bodies)
	return m
}

// TestEngineGoldenTrace locks the full virtual-time event trace of the
// fixed workload against a committed golden file. Any change to the
// engine's handoff or tie-break rules, the cache model, or the abort
// delivery order shows up here as a diff.
func TestEngineGoldenTrace(t *testing.T) {
	m := goldenWorkload(smallConfig(4))
	got := FormatTrace(m.Trace())
	path := filepath.Join("testdata", "engine_golden_trace.txt")
	if *updateEngineGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update-engine-golden to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("engine trace deviates from golden (len got=%d want=%d); "+
			"rerun with -update-engine-golden only if the change is intended",
			len(got), len(want))
		// Show the first diverging line for diagnosis.
		gl, wl := splitLines(got), splitLines(string(want))
		for i := 0; i < len(gl) && i < len(wl); i++ {
			if gl[i] != wl[i] {
				t.Fatalf("first divergence at line %d:\n got: %s\nwant: %s", i+1, gl[i], wl[i])
			}
		}
	}
}

func splitLines(s string) []string {
	var out []string
	for len(s) > 0 {
		i := 0
		for i < len(s) && s[i] != '\n' {
			i++
		}
		out = append(out, s[:i])
		if i < len(s) {
			i++
		}
		s = s[i:]
	}
	return out
}
