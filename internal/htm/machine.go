package htm

import (
	"fmt"
	"math/bits"

	"repro/internal/mem"
)

// Machine is a simulated multicore with best-effort HTM.
//
// Construct one with New, allocate and initialize simulated data through
// Mem and Alloc, then call Run with one body per thread. Machines are
// single-use: after Run returns, read the statistics and discard.
type Machine struct {
	cfg   Config
	Mem   *mem.Memory
	Alloc *mem.Allocator

	eng   engine
	cores []*Core

	// lines is the unified per-line coherence table: the transactional
	// directory (reader/writer masks — eager mode keeps at most one
	// writer by construction; lazy mode allows several until commit
	// resolves them), every core's private-L2 presence bit, and the
	// shared-L3 presence bit, one flat entry per touched line.
	lines lineTable

	// memBusy models per-channel DRAM occupancy (cycle when each channel
	// becomes free again).
	memBusy []uint64

	// GlobalLock is the address of the irrevocable-mode global lock word.
	GlobalLock mem.Addr

	trace *traceBuf
	// extTrace additionally records extended observability events (lock
	// annotations, irrevocable boundaries); see EnableTraceExt.
	extTrace bool
	// lastEvents retains the trailing transaction events for the watchdog
	// failure report; nil unless WatchdogCycles is configured.
	lastEvents *traceRing
	// chaos is the installed fault injector (nil = fault-free).
	chaos FaultInjector
	// sched is the installed adversarial scheduler (nil = baseline
	// smallest-virtual-time order).
	sched Scheduler
	// observer is the installed correctness oracle (nil = no logging).
	observer TxObserver
	ran      bool

	// cancelState arms caller-driven run abandonment (see cancel.go).
	cancelState
}

// New builds a machine from cfg.
func New(cfg Config) *Machine {
	cfg.validate()
	m := &Machine{
		cfg: cfg,
		Mem: mem.New(),
	}
	m.lines.init()
	m.Alloc = mem.NewAllocator(mem.Addr(cfg.HeapBase), cfg.HeapSize)
	if cfg.WatchdogCycles != 0 {
		n := cfg.WatchdogTrace
		if n <= 0 {
			n = watchdogTraceN
		}
		m.lastEvents = newTraceRing(n)
	}
	m.memBusy = make([]uint64, cfg.MemChannels)
	// The global lock lives on its own line so subscribing to it never
	// falsely conflicts with application data.
	m.GlobalLock = m.Alloc.AllocLines(1)
	m.cores = make([]*Core, cfg.Cores)
	for i := range m.cores {
		m.cores[i] = newCore(m, i)
	}
	return m
}

// Config returns the machine's configuration.
func (m *Machine) Config() Config { return m.cfg }

// Core returns core i for inspection; during Run, each thread body
// receives its own core and must not touch others.
func (m *Machine) Core(i int) *Core { return m.cores[i] }

// entry returns the coherence entry for a line, creating it on demand.
// The pointer is invalidated by the next entry call: callers fetch it
// once per event and pass it down.
func (m *Machine) entry(line mem.Addr) *lineEntry {
	return m.lines.get(line)
}

// Run executes one body per simulated thread, thread i on core i, and
// blocks until all bodies return. It panics if more bodies than cores are
// supplied, if the machine has already run, or if the progress watchdog
// trips (use RunChecked to receive the watchdog failure as an error).
func (m *Machine) Run(bodies []func(c *Core)) {
	if err := m.RunChecked(bodies); err != nil {
		panic(err)
	}
}

// RunChecked is Run, but a tripped progress watchdog is returned as a
// *WatchdogError instead of panicking. Workload panics still propagate.
func (m *Machine) RunChecked(bodies []func(c *Core)) error {
	if m.ran {
		panic("htm: Machine.Run called twice")
	}
	m.ran = true
	if len(bodies) == 0 {
		return nil
	}
	if len(bodies) > len(m.cores) {
		panic(fmt.Sprintf("htm: %d thread bodies for %d cores", len(bodies), len(m.cores)))
	}
	m.eng = newEngine(len(bodies), m.sched, m.cfg.RefEngine)
	traceOn := m.trace != nil || m.lastEvents != nil
	panics := make([]any, len(bodies))
	for i := range bodies {
		m.cores[i].traceOn = traceOn
	}
	m.eng.run(m, bodies, panics)
	// Workload bugs outrank watchdog trips: once one core exceeds the
	// cycle bound, its peers usually trip too, but a genuine panic is the
	// root cause worth surfacing. Cancellation outranks the watchdog in
	// turn — a cancelled run's cores may blow the cycle bound while they
	// unwind, and the caller's hang-up is the root cause.
	var wd *WatchdogError
	var cancel *CancelError
	for _, p := range panics {
		switch v := p.(type) {
		case nil:
		case *WatchdogError:
			if wd == nil || v.Cycles < wd.Cycles {
				wd = v
			}
		case *CancelError:
			if cancel == nil || v.Cycles < cancel.Cycles {
				cancel = v
			}
		default:
			panic(p)
		}
	}
	if cancel != nil {
		return cancel
	}
	if wd != nil {
		return wd
	}
	return nil
}

// Stats aggregates per-core statistics after Run.
func (m *Machine) Stats() Stats {
	var s Stats
	s.PerCore = make([]CoreStats, len(m.cores))
	for i, c := range m.cores {
		s.PerCore[i] = c.stats
		s.add(&c.stats)
	}
	return s
}

// lookupLatency classifies a memory access by core c to the given line
// (whose coherence entry e the caller already fetched for this event) and
// returns its latency, updating the cache models. Speculative lines
// already in the core's read/write sets are pinned in L1; if an insertion
// would have to evict one, the core takes a capacity (overflow) abort.
func (m *Machine) lookupLatency(c *Core, line mem.Addr, e *lineEntry) uint64 {
	if c.l1.hit(line) {
		c.stats.L1Hits++
		return m.cfg.L1Lat
	}
	bit := uint32(1) << uint(c.id)
	var lat uint64
	switch {
	case e.writers&^bit != 0:
		// Another core holds the line dirty in its speculative write set:
		// a cache-to-cache transfer, L3-class latency.
		c.stats.L3Hits++
		lat = m.cfg.L3Lat
	case e.l2mask&bit != 0:
		c.stats.L2Hits++
		lat = m.cfg.L2Lat
	default:
		if e.inL3 {
			c.stats.L3Hits++
			lat = m.cfg.L3Lat
		} else {
			c.stats.MemAccesses++
			lat = m.dramLatency(c, line)
			e.inL3 = true
		}
	}
	e.l2mask |= bit
	if !c.l1.insert(line, func(l mem.Addr) bool {
		return c.txs.lookup(l) != nil
	}) {
		// Every way in the set already holds a speculative line: the new
		// line cannot be cached without losing transactional tracking.
		c.abortSelf(AbortInfo{Reason: AbortOverflow, ByCore: c.id})
	}
	return lat
}

// invalidateOthers models the coherence invalidation a store's
// read-for-ownership broadcasts: every other core loses its cached copy
// of the line, so its next access pays a transfer/L3-class latency. This
// is what makes writer-bounced lines (list cells, queue heads, statistics
// words) genuinely expensive to re-read.
// A core's L1 contents are a subset of its L2 presence bits (lines enter
// both together in lookupLatency and leave both together here), so only
// cores with the L2 bit set can hold the line in L1 — the invalidation
// walks that mask instead of every core.
func (m *Machine) invalidateOthers(e *lineEntry, line mem.Addr, except int) {
	others := e.l2mask &^ (1 << uint(except))
	e.l2mask &= 1 << uint(except)
	for others != 0 {
		id := bits.TrailingZeros32(others)
		others &^= 1 << uint(id)
		m.cores[id].l1.invalidate(line)
	}
}

// dramLatency queues the access behind the line's memory channel: the
// access starts when the channel frees up and occupies it for
// MemOccupancy cycles, so concurrent misses from many cores serialize on
// the two channels — the bandwidth wall that keeps memory-bound kernels
// from scaling linearly.
func (m *Machine) dramLatency(c *Core, line mem.Addr) uint64 {
	ch := int((uint64(line) / mem.LineSize) % uint64(len(m.memBusy)))
	start := c.clock
	if m.memBusy[ch] > start {
		start = m.memBusy[ch]
	}
	m.memBusy[ch] = start + m.cfg.MemOccupancy
	return (start - c.clock) + m.cfg.MemLat
}
