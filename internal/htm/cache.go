package htm

import "repro/internal/mem"

// l1cache models a set-associative L1 data cache with LRU replacement.
// Each set is a small slice kept in MRU-first order. Lines that belong to
// the owning core's speculative read/write set are pinned: evicting one
// would lose transactional tracking, so the insert fails and the core
// must take an overflow abort.
type l1cache struct {
	sets    [][]mem.Addr
	setMask mem.Addr
	ways    int
}

func newL1(lines, ways int) *l1cache {
	nsets := lines / ways
	if nsets&(nsets-1) != 0 {
		panic("htm: L1 set count must be a power of two")
	}
	c := &l1cache{
		sets:    make([][]mem.Addr, nsets),
		setMask: mem.Addr(nsets - 1),
		ways:    ways,
	}
	return c
}

func (c *l1cache) set(line mem.Addr) int {
	return int((line / mem.LineSize) & c.setMask)
}

// hit looks the line up and refreshes its LRU position.
func (c *l1cache) hit(line mem.Addr) bool {
	s := c.sets[c.set(line)]
	for i, l := range s {
		if l == line {
			copy(s[1:i+1], s[:i])
			s[0] = line
			return true
		}
	}
	return false
}

// insert places the line at MRU, evicting the least recently used
// non-pinned line if the set is full. It returns false when every way
// holds a pinned line and the insertion is impossible.
func (c *l1cache) insert(line mem.Addr, pinned func(mem.Addr) bool) bool {
	idx := c.set(line)
	s := c.sets[idx]
	if len(s) < c.ways {
		s = append(s, 0)
		copy(s[1:], s)
		s[0] = line
		c.sets[idx] = s
		return true
	}
	// Find the least recently used line that is not pinned.
	for i := len(s) - 1; i >= 0; i-- {
		if !pinned(s[i]) {
			copy(s[1:i+1], s[:i])
			s[0] = line
			return true
		}
	}
	return false
}

// invalidate drops the line if present (remote store took ownership).
func (c *l1cache) invalidate(line mem.Addr) {
	idx := c.set(line)
	s := c.sets[idx]
	for i, l := range s {
		if l == line {
			c.sets[idx] = append(s[:i], s[i+1:]...)
			return
		}
	}
}

// reset discards all cached lines (used between simulation phases).
func (c *l1cache) reset() {
	for i := range c.sets {
		c.sets[i] = c.sets[i][:0]
	}
}
