package htm

import "iter"

// coopEngine is the cooperative single-goroutine engine: every simulated
// core is a resumable coroutine (iter.Pull), and one scheduler loop on
// the caller's goroutine resumes whichever core holds the token. The Go
// scheduler is never involved between events — a token handoff is a
// direct coroutine switch, and the common case (the holder keeps the
// token) is a single comparison with no switch at all.
//
// Hot path. While one core holds the token, every other core's clock is
// frozen — other cores only advance their clocks while *they* hold the
// token. The minimum clock among the other runnable cores is therefore a
// constant for the duration of a tenure, so it is computed once per
// handoff (grant) and every subsequent sync by the holder is a single
// comparison: the holder keeps the token and its event batch continues,
// without any coroutine switch or O(cores) scan, unless its new time
// actually loses the virtual-time race. Events are thereby batched per
// token tenure: a tenure's whole run of events costs one switch in and
// one switch out, however long it is.
//
// Determinism. The pick rule is identical to refEngine's: smallest
// virtual time, ties to the smallest core ID, or the installed
// Scheduler's choice within its window. Decision points occur in the same
// order (start, every losing sync, every finish), so recorded schedules
// replay bit-identically across both engines.
type coopEngine struct {
	time    []uint64
	done    []bool
	pending int

	// Fast-path state (valid while sched == nil): holder is the core that
	// currently owns the token; othersMin/othersID are the smallest clock
	// among the other non-done cores and the smallest core ID achieving it
	// (othersID == -1 when no other core is runnable). Recomputed once per
	// grant, read on every sync.
	holder    int
	othersMin uint64
	othersID  int

	// sched, when non-nil, replaces the smallest-virtual-time rule with an
	// adversarial choice among the runnable cores inside the scheduler's
	// virtual-time window (see sched.go). cand/candT are reused scratch.
	sched Scheduler
	cand  []int
	candT []uint64

	// granted is the core that must run next; grant sets it before
	// control is transferred toward it (see dispatch).
	granted int
	// resume[i] switches into core i's coroutine until it yields or its
	// body returns; stop[i] releases the coroutine. park[i] is core i's
	// yield function, switching back to its resumer.
	resume []func() (struct{}, bool)
	stop   []func()
	park   []func(struct{}) bool
	// chained[i] marks core i as blocked inside a resume call (it handed
	// the token to a parked core by switching into it directly). The
	// suspended coroutines always form a single chain rooted at the run
	// loop; dispatch uses chained to tell whether the granted core can be
	// resumed directly (it is parked outside the chain) or control must
	// unwind to it (it is an ancestor in the chain).
	chained []bool
}

func newCoopEngine(n int, sched Scheduler) *coopEngine {
	return &coopEngine{
		time:     make([]uint64, n),
		done:     make([]bool, n),
		pending:  n,
		holder:   -1,
		othersID: -1,
		sched:    sched,
	}
}

// min returns the non-done core with the smallest virtual time, or -1.
func (e *coopEngine) min() int {
	best := -1
	for i := range e.time {
		if e.done[i] {
			continue
		}
		if best == -1 || e.time[i] < e.time[best] {
			best = i
		}
	}
	return best
}

// next returns the core to hand the token to: the minimum-time runnable
// core by default, or the installed scheduler's choice among the cores
// within its virtual-time window of the minimum.
func (e *coopEngine) next() int {
	best := e.min()
	if e.sched == nil || best == -1 {
		return best
	}
	e.cand, e.candT = e.cand[:0], e.candT[:0]
	window := e.sched.Window()
	for i := range e.time {
		if e.done[i] {
			continue
		}
		if window == 0 || e.time[i] <= e.time[best]+window {
			e.cand = append(e.cand, i)
			e.candT = append(e.candT, e.time[i])
		}
	}
	if len(e.cand) == 1 {
		return e.cand[0]
	}
	k := e.sched.Pick(e.cand, e.candT)
	if k < 0 || k >= len(e.cand) {
		k = ((k % len(e.cand)) + len(e.cand)) % len(e.cand)
	}
	return e.cand[k]
}

// grant hands the token to core id: it becomes the holder, the frozen
// minimum over the other runnable cores is recomputed for the fast path,
// and the engine loop is told to resume it. Callers must have chosen id
// via next() (or the fast path's recorded othersID, which is provably the
// same choice).
func (e *coopEngine) grant(id int) {
	e.holder = id
	e.othersID = -1
	for i := range e.time {
		if i == id || e.done[i] {
			continue
		}
		if e.othersID == -1 || e.time[i] < e.othersMin {
			e.othersMin, e.othersID = e.time[i], i
		}
	}
	e.granted = id
}

// keepsToken reports whether the holder, now at time t, still wins the
// virtual-time race against the frozen minimum of the other runnable
// cores (ties go to the smallest core ID, matching min()'s ascending
// scan). With no other runnable core the holder trivially keeps running.
func (e *coopEngine) keepsToken(id int, t uint64) bool {
	return e.othersID == -1 || t < e.othersMin || (t == e.othersMin && id < e.othersID)
}

// sync implements engine. The fast path is a single comparison against
// the per-tenure constant; losing the race selects the winner and
// transfers control toward it with as few coroutine switches as the
// chain permits.
func (e *coopEngine) sync(id int, t uint64) {
	e.time[id] = t
	if e.sched == nil {
		if e.keepsToken(id, t) {
			return
		}
		// Fast path lost the race: the winner is, by the tie-break,
		// exactly the recorded other-minimum core.
		e.grant(e.othersID)
	} else {
		next := e.next()
		if next == id {
			return
		}
		e.grant(next)
	}
	e.dispatch(id)
}

// dispatch transfers control from core id toward the granted core and
// returns when id is granted again. A parked winner is resumed by a
// single direct coroutine switch — the common ping-pong handoff costs
// one switch, not a bounce through a central loop. A winner that is an
// ancestor in the chain (blocked in the resume call that eventually led
// here) is reached by yielding, which unwinds one chain level; each
// unwound frame re-enters its own dispatch loop and repeats the choice.
func (e *coopEngine) dispatch(id int) {
	for {
		w := e.granted
		if w == id {
			return
		}
		if e.chained[w] {
			// The winner is an ancestor: park until the token comes back.
			// Cores are only ever resumed when they hold the grant, so on
			// return granted == id.
			e.park[id](struct{}{})
			return
		}
		// The winner is parked (or not yet started): switch into it
		// directly, becoming part of the chain until it returns control.
		e.chained[id] = true
		_, alive := e.resume[w]()
		e.chained[id] = false
		if !alive {
			e.coreDone(w)
		}
	}
}

// coreDone marks core w's body as returned and hands the token onward.
// When the last body returns there is no next holder: every other
// coroutine has already unwound, so control is in the run loop, which
// observes pending == 0 and completes the simulation.
func (e *coopEngine) coreDone(w int) {
	e.done[w] = true
	e.pending--
	if e.pending > 0 {
		e.grant(e.next())
	}
}

// run implements engine: it builds one coroutine per core and drives the
// whole simulation from this goroutine. A coroutine is resumed only when
// its core holds the token, so all simulation state keeps the exclusive-
// holder discipline without locks, channels, or extra goroutines.
func (e *coopEngine) run(m *Machine, bodies []func(*Core), panics []any) {
	n := len(bodies)
	e.resume = make([]func() (struct{}, bool), n)
	e.stop = make([]func(), n)
	e.park = make([]func(struct{}) bool, n)
	e.chained = make([]bool, n)
	for i, body := range bodies {
		c, body := m.cores[i], body
		next, stop := iter.Pull(func(yield func(struct{}) bool) {
			// The coroutine body runs lazily: the first resume — which is
			// the engine's first grant to this core — starts it, so no
			// initial park is needed.
			e.park[c.id] = yield
			// A panicking body must still hand back the token; the panic
			// value is re-raised in the caller's goroutine by RunChecked.
			defer func() {
				if r := recover(); r != nil {
					panics[c.id] = r
					if c.inTx {
						c.clearTx()
					}
				}
				c.stats.FinalClock = c.clock
				e.time[c.id] = c.clock
			}()
			body(c)
			if c.inTx {
				panic("htm: thread body returned inside a transaction")
			}
		})
		e.resume[i] = next
		e.stop[i] = stop
	}
	defer func() {
		for _, stop := range e.stop {
			stop()
		}
	}()
	e.grant(e.next()) // start: hand the token to the first chosen core
	for e.pending > 0 {
		// Resume the granted core. Control comes back here only when the
		// directly resumed core's body returns — cores hand the token
		// among themselves via dispatch without bouncing through this
		// loop — and a finished core necessarily still holds the grant.
		w := e.granted
		if _, alive := e.resume[w](); !alive {
			e.coreDone(w)
		}
	}
}
