package htm

// Benchmarks and allocation assertions for the simulator's hot paths:
// the engine token handoff (fast path vs the retained reference), the
// transactional access/commit path, the L1 model, and stats folding.
//
//	go test ./internal/htm -bench Hot -benchmem
//
// pairs each optimized path with its cost; TestHotPathSteadyStateAllocs
// turns "no per-event allocation" from a hope into a regression test.

import (
	"testing"

	"repro/internal/mem"
)

// handoffStorm runs a fixed contended simulation: cores alternate NT
// loads on a shared line (every event loses the virtual-time race and
// hands the token off) with short compute. Returns total memory events.
func handoffStorm(cores, eventsPerCore int, ref bool) uint64 {
	cfg := smallConfig(cores)
	cfg.RefEngine = ref
	m := New(cfg)
	shared := m.Alloc.AllocLines(1)
	bodies := make([]func(*Core), cores)
	for i := range bodies {
		bodies[i] = func(c *Core) {
			for k := 0; k < eventsPerCore; k++ {
				c.NTLoad(shared)
			}
		}
	}
	m.Run(bodies)
	s := m.Stats()
	return s.NTLoads
}

// keepTokenStorm runs events that almost always keep the token: one core
// issues every memory event while a peer has long since finished, so the
// engine's O(1) keep-token comparison is the entire handoff cost.
func keepTokenStorm(events int, ref bool) uint64 {
	cfg := smallConfig(2)
	cfg.RefEngine = ref
	m := New(cfg)
	a := m.Alloc.AllocLines(1)
	b := m.Alloc.AllocLines(1)
	m.Run([]func(*Core){
		func(c *Core) {
			for k := 0; k < events; k++ {
				c.NTLoad(a)
			}
		},
		func(c *Core) { c.NTStore(b, 1) },
	})
	return m.Stats().NTLoads
}

// txStorm runs contended transactional increments: the TxBegin / record /
// conflict-abort / commit paths all stay hot.
func txStorm(cores, txPerCore int) Stats {
	m := New(smallConfig(cores))
	shared := m.Alloc.AllocLines(1)
	bodies := make([]func(*Core), cores)
	for i := range bodies {
		tid := i
		bodies[i] = func(c *Core) {
			for k := 0; k < txPerCore; k++ {
				c.Atomic(DefaultAtomicOpts(), TxHooks{}, func(c *Core) {
					v := c.Load(0x100+uint64(tid), 1, shared)
					c.Store(0x110+uint64(tid), 2, shared, v+1)
				})
			}
		}
	}
	m.Run(bodies)
	return m.Stats()
}

func BenchmarkHotEngineHandoff(b *testing.B) {
	var events uint64
	for i := 0; i < b.N; i++ {
		events += handoffStorm(4, 2000, false)
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
}

func BenchmarkHotEngineHandoffRef(b *testing.B) {
	var events uint64
	for i := 0; i < b.N; i++ {
		events += handoffStorm(4, 2000, true)
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
}

func BenchmarkHotEngineKeepToken(b *testing.B) {
	var events uint64
	for i := 0; i < b.N; i++ {
		events += keepTokenStorm(8000, false)
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
}

func BenchmarkHotEngineKeepTokenRef(b *testing.B) {
	var events uint64
	for i := 0; i < b.N; i++ {
		events += keepTokenStorm(8000, true)
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
}

func BenchmarkHotTxContended(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := txStorm(4, 500)
		if s.Commits != 2000 {
			b.Fatalf("commits = %d", s.Commits)
		}
	}
}

func BenchmarkHotL1Cache(b *testing.B) {
	c := newL1(1024, 8)
	notPinned := func(mem.Addr) bool { return false }
	for i := 0; i < b.N; i++ {
		line := mem.Addr((i % 4096) * 64)
		if !c.hit(line) {
			c.insert(line, notPinned)
		}
	}
}

func BenchmarkHotStatsAdd(b *testing.B) {
	var agg Stats
	var cs CoreStats
	cs.Loads, cs.Stores, cs.Commits, cs.FinalClock = 10, 5, 2, 12345
	for i := 0; i < b.N; i++ {
		agg.add(&cs)
	}
	if agg.Makespan != 12345 {
		b.Fatal("unexpected makespan")
	}
}

// TestHotPathSteadyStateAllocs asserts the simulator allocates nothing
// per memory event in steady state. Comparing two run lengths cancels the
// fixed setup cost (machine, caches, goroutines): the delta is what the
// extra events allocate, and the budget allows under 2 allocations per
// hundred events (map growth amortization, nothing else).
func TestHotPathSteadyStateAllocs(t *testing.T) {
	measure := func(eventsPerCore int) float64 {
		return testing.AllocsPerRun(5, func() {
			handoffStorm(4, eventsPerCore, false)
		})
	}
	short, long := measure(500), measure(4000)
	// The cooperative engine's target is exactly zero steady-state
	// allocations: once the flat tables reach size, adding 14,000 more
	// events (handoffs included) must not allocate a single object.
	if long != short {
		t.Fatalf("steady-state allocations: %.0f extra over %d extra events (short=%.0f long=%.0f), want 0",
			long-short, 4*(4000-500), short, long)
	}

	measureTx := func(txPerCore int) float64 {
		return testing.AllocsPerRun(5, func() {
			txStorm(2, txPerCore)
		})
	}
	shortTx, longTx := measureTx(200), measureTx(1600)
	// A committed transaction re-walks its write set and clears its flat
	// tables, and an aborted one unwinds via the pre-boxed panic payload;
	// neither may allocate in steady state.
	if longTx != shortTx {
		t.Fatalf("steady-state allocations: %.0f extra over %d extra transactions (short=%.0f long=%.0f), want 0",
			longTx-shortTx, 2*(1600-200), shortTx, longTx)
	}
}

// annotateStorm is handoffStorm with an observability annotation per
// event — the shape the stagger lock paths produce. With no trace sink
// enabled the annotations must be free.
func annotateStorm(cores, eventsPerCore int) {
	m := New(smallConfig(cores))
	shared := m.Alloc.AllocLines(1)
	bodies := make([]func(*Core), cores)
	for i := range bodies {
		bodies[i] = func(c *Core) {
			for k := 0; k < eventsPerCore; k++ {
				c.NTLoad(shared)
				c.Annotate(TraceLockAcquire, shared)
				c.Annotate(TraceLockRelease, shared)
			}
		}
	}
	m.Run(bodies)
}

// TestAnnotateDisabledAllocs asserts the observability hooks keep the
// hot path's zero-allocation guarantee when tracing is off: runtimes
// call Core.Annotate unconditionally, so with no sink it must cost a
// cached-boolean test and nothing else.
func TestAnnotateDisabledAllocs(t *testing.T) {
	measure := func(eventsPerCore int) float64 {
		return testing.AllocsPerRun(5, func() {
			annotateStorm(4, eventsPerCore)
		})
	}
	short, long := measure(500), measure(4000)
	perEvent := (long - short) / float64(4*(4000-500))
	if perEvent > 0.02 {
		t.Fatalf("annotated steady-state allocations: %.4f per event (short=%.0f long=%.0f), want <= 0.02",
			perEvent, short, long)
	}
}
