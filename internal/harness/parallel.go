package harness

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Inter-run parallelism. Every simulation is deterministic in its
// RunConfig and shares no mutable state with any other run (each Run
// builds a fresh workload module, machine, runtime, and oracle; the only
// cross-run structure is the memoization cache, which is mutex-guarded
// and value-stable). Independent cells of a sweep can therefore execute
// on as many OS threads as the host offers without perturbing a single
// simulated cycle — the intra-run virtual-time engine stays strictly
// serial, parallelism exists only BETWEEN runs. Results are always
// delivered in input order, never completion order, so every consumer
// (table assembly, campaign reports, CSV writers) emits bytes identical
// to a sequential sweep.

// defaultWorkers is the package-wide worker bound used by the table and
// figure generators and the campaign runners; cmd/paper and
// cmd/staggersim expose it as -workers. 1 reproduces the historical
// strictly sequential execution exactly (no pool, no extra goroutines).
var defaultWorkers atomic.Int32

func init() { defaultWorkers.Store(int32(runtime.NumCPU())) }

// SetWorkers sets the default sweep parallelism (n <= 0 restores the
// NumCPU default). It returns the previous value so tests can restore it.
func SetWorkers(n int) int {
	if n <= 0 {
		n = runtime.NumCPU()
	}
	return int(defaultWorkers.Swap(int32(n)))
}

// Workers returns the current default sweep parallelism.
func Workers() int { return int(defaultWorkers.Load()) }

// RunOutcome is one cell's result in a parallel sweep.
type RunOutcome struct {
	Res *Result
	Err error
}

// RunAll executes every configuration with at most workers concurrent
// runs (workers <= 0 uses the package default) and returns the outcomes
// ordered by input index. Each cell goes through RunCached, so repeated
// cells across sweeps are still memoized. Cancelling ctx skips cells
// that have not started and abandons cells mid-simulation at their next
// globally ordered event (both outcomes carry ctx's error), so a
// cancelled sweep returns within roughly one simulated event, not after
// draining the queue.
func RunAll(ctx context.Context, cfgs []RunConfig, workers int) []RunOutcome {
	return runAllCollect(ctx, cfgs, workers, false)
}

// RunAllContained is RunAll with per-cell fault containment: a panic
// inside one cell's run (a poisoned config, a workload bug) becomes that
// cell's *PanicError outcome instead of crashing the process. The
// service layer runs client-supplied jobs through this entry point; the
// CLI generators keep RunAll's fail-fast behaviour, where a panic is a
// bug worth a stack trace.
func RunAllContained(ctx context.Context, cfgs []RunConfig, workers int) []RunOutcome {
	return runAllCollect(ctx, cfgs, workers, true)
}

func runAllCollect(ctx context.Context, cfgs []RunConfig, workers int, contain bool) []RunOutcome {
	out := make([]RunOutcome, len(cfgs))
	runAllOrderedOpt(ctx, cfgs, workers, contain, func(i int, o RunOutcome) error {
		out[i] = o
		return nil
	})
	return out
}

// PanicError is a panic captured from a contained run (RunAllContained).
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string { return fmt.Sprintf("harness: run panicked: %v", e.Value) }

// runOne executes one cell, optionally converting a panic into an error
// outcome. The recover sits here — around exactly one cell — so one
// poisoned cell cannot take its worker, its sweep, or the process down.
func runOne(ctx context.Context, rc RunConfig, contain bool) (o RunOutcome) {
	if contain {
		defer func() {
			if r := recover(); r != nil {
				o = RunOutcome{Err: &PanicError{Value: r, Stack: debug.Stack()}}
			}
		}()
	}
	o.Res, o.Err = RunCachedCtx(ctx, rc)
	return o
}

// runAllOrdered is RunAll with streaming delivery: deliver is called once
// per cell, in input order, from the calling goroutine's control flow. A
// non-nil error from deliver cancels the cells that have not started and
// returns after the in-flight ones drain. With workers == 1 the loop is
// exactly the historical sequential sweep — same goroutine, same order,
// no pool.
func runAllOrdered(ctx context.Context, cfgs []RunConfig, workers int, deliver func(int, RunOutcome) error) error {
	return runAllOrderedOpt(ctx, cfgs, workers, false, deliver)
}

func runAllOrderedOpt(ctx context.Context, cfgs []RunConfig, workers int, contain bool, deliver func(int, RunOutcome) error) error {
	n := len(cfgs)
	if n == 0 {
		return nil
	}
	if workers <= 0 {
		workers = Workers()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i, rc := range cfgs {
			var o RunOutcome
			if err := ctx.Err(); err != nil {
				o.Err = err
			} else {
				o = runOne(ctx, rc, contain)
			}
			if err := deliver(i, o); err != nil {
				return err
			}
		}
		return nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var next atomic.Int64
	type completion struct {
		i int
		o RunOutcome
	}
	ch := make(chan completion, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				var o RunOutcome
				if err := ctx.Err(); err != nil {
					o.Err = err
				} else {
					o = runOne(ctx, cfgs[i], contain)
				}
				ch <- completion{i, o}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(ch)
	}()

	// Reorder completions into input order; deliver as soon as the next
	// expected index lands, so consumers stream without a global barrier.
	buf := make([]RunOutcome, n)
	ready := make([]bool, n)
	delivered := 0
	var derr error
	for c := range ch {
		buf[c.i], ready[c.i] = c.o, true
		for derr == nil && delivered < n && ready[delivered] {
			if err := deliver(delivered, buf[delivered]); err != nil {
				derr = err
				cancel() // stop scheduling new cells; drain the rest
			}
			delivered++
		}
	}
	return derr
}

// warm primes the memoization cache for the given cells in parallel.
// Generators call it before their sequential assembly loop: with the
// cache hot, assembly is pure formatting, so output bytes are identical
// to a fully sequential run by construction. Cells the cache would
// bypass, duplicates, and already-cached cells are skipped; errors are
// ignored here because the assembly loop re-encounters them
// deterministically (Run is a pure function of its config) and reports
// them exactly as a sequential sweep would. With workers == 1 warm is a
// no-op: execution stays on the historical fully-sequential path.
func warm(cfgs []RunConfig) {
	workers := Workers()
	if workers <= 1 {
		return
	}
	seen := make(map[cacheKey]bool, len(cfgs))
	var todo []RunConfig
	for _, rc := range cfgs {
		key, ok := cacheableKey(rc)
		if !ok || seen[key] {
			continue
		}
		seen[key] = true
		cacheMu.Lock()
		_, hit := cache[key]
		cacheMu.Unlock()
		if !hit {
			todo = append(todo, rc)
		}
	}
	if len(todo) == 0 {
		return
	}
	RunAll(context.Background(), todo, workers)
}
