// Package harness runs the paper's experiments: one workload under one
// system configuration per Run call, and table/figure generators that
// sweep benchmarks and systems to regenerate every result in Section 6
// of the paper.
package harness

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/anchor"
	"repro/internal/backend"
	_ "repro/internal/backend/occ" // register the software OCC backend
	"repro/internal/chaos"
	"repro/internal/htm"
	"repro/internal/mem"
	"repro/internal/oracle"
	"repro/internal/sched"
	"repro/internal/stagger"
	"repro/internal/workloads"
)

// RunConfig selects a single experiment cell.
type RunConfig struct {
	// Benchmark is the workload name (see workloads.Names).
	Benchmark string
	// Mode is the system under test (HTM / AddrOnly / Staggered+SW /
	// Staggered).
	Mode stagger.Mode
	// Backend selects the concurrency-control backend by registry name
	// ("htm", "staggered", "limited", "occ"; see backend.Names). Empty
	// keeps the historical path: the stagger runtime under Mode,
	// bit-identical to runs before the arena existed. Non-empty resolves
	// Mode through the backend (e.g. "htm" forces the uninstrumented
	// baseline) before the machine is configured.
	Backend string
	// Capacity is the speculative line-capacity knob for the "limited"
	// backend (0 = that backend's default); other backends ignore it.
	Capacity int
	// Threads is the worker count (1..cores).
	Threads int
	// Seed drives all workload randomness.
	Seed int64
	// TotalOps overrides the workload's default operation count (0 =
	// default).
	TotalOps int
	// Naive instruments every load/store instead of anchors only
	// (Section 6.1's overhead comparison).
	Naive bool
	// Lazy switches the machine to lazy (commit-time, committer-wins)
	// conflict detection — the lazy-TM extension the paper's conclusion
	// proposes.
	Lazy bool
	// TraceN records the first N transaction events (begin/commit/abort)
	// for diagnostics; 0 disables tracing, negative records the whole run.
	TraceN int
	// ExtTrace additionally records extended observability events
	// (advisory-lock acquire/release, irrevocable section boundaries) for
	// timeline export (internal/obs). Requires TraceN != 0.
	ExtTrace bool
	// Machine optionally overrides the simulated machine configuration;
	// nil uses the paper's Table 2 machine.
	Machine *htm.Config
	// Stagger optionally overrides the runtime configuration; nil uses
	// the paper's parameters for the selected mode.
	Stagger *stagger.Config
	// Chaos enables deterministic fault injection (nil or all-zero rates:
	// fault-free, bit-identical to the baseline simulator).
	Chaos *chaos.Config
	// Watchdog bounds each core's virtual clock; a run exceeding it fails
	// loudly with the last trace events instead of hanging (0 = no
	// bound). Overrides Machine.WatchdogCycles when nonzero.
	Watchdog uint64
	// WatchdogTrace sizes the watchdog's last-events ring (0 = the htm
	// default). Exploration campaigns raise it so a timed-out adversarial
	// schedule leaves a useful tail.
	WatchdogTrace int

	// Sched selects an adversarial scheduler replacing the engine's
	// deterministic minimum-time tie-break ("" = baseline; see sched.Parse
	// for the grammar: "random", "pct:<d>", "replay:<file>", "...@<window>").
	Sched string
	// SchedSeed seeds the random and PCT schedulers (0 = use Seed). Each
	// exploration run varies SchedSeed while Seed keeps the workload fixed.
	SchedSeed int64
	// Record captures every scheduler decision; the sequence is returned in
	// Result.SchedPicks and replays the run bit-identically.
	Record bool
	// ReplayPicks, when non-nil (even empty), replays an in-memory decision
	// sequence, overriding Sched's strategy but keeping its window. The
	// trace minimizer probes candidate prefixes this way.
	ReplayPicks []uint32

	// Oracle installs the serializability checker: committed read sets are
	// validated against a shadow memory in commit order, operation tags are
	// re-executed on the workload's sequential reference model, and final
	// memory must match the shadow. Results land in Result.OracleErr.
	Oracle bool
	// UnsafeEarlyRelease enables the test-only broken irrevocable fallback
	// (global lock released before the body); it exists so tests can prove
	// the oracle catches a real atomicity violation end to end.
	UnsafeEarlyRelease bool

	// SiteRecorder observes every transactional site access (the
	// static/dynamic conformance checker of -verify-static); nil disables
	// recording.
	SiteRecorder stagger.SiteRecorder
}

// Result is everything one run produces.
type Result struct {
	Config   RunConfig
	Stats    htm.Stats
	Metrics  stagger.Metrics
	NumABs   int
	TotalOps int

	// Static instrumentation statistics from the compiler pass.
	StaticAccesses, StaticAnchors int

	// PerAB carries per-atomic-block policy aggregates (diagnostics).
	PerAB map[int]*stagger.ABMetrics

	// LA and LP report conflict locality: whether a single conflicting
	// address (resp. anchor PC) dominates the run's conflicts (Table 1).
	LA, LP bool

	// ConfAddrs and ConfPCs are the full conflict-attribution histograms
	// behind LA/LP: conflict aborts per conflicting line address and per
	// true initial-access anchor site (internal/obs renders the top
	// entries; LA/LP are their majority predicates).
	ConfAddrs map[mem.Addr]int
	ConfPCs   map[uint32]int

	// ConfPairs is the fully attributed conflict-pair histogram: which
	// (atomic block, site) aborted which. It is the dynamic evidence the
	// static may-conflict matrix is checked against (`staggersim
	// -verify-conflicts`); pairs with an unattributed side are excluded.
	ConfPairs map[stagger.ConflictPair]int

	// Trace holds recorded transaction events when TraceN > 0.
	Trace []htm.TraceEvent

	// VerifyErr is non-nil if the workload's invariants failed.
	VerifyErr error

	// Faults counts injected faults by class (all zero without chaos).
	Faults chaos.Counts

	// SchedPicks is the recorded scheduler decision sequence (Record).
	SchedPicks []uint32
	// OracleCommits is how many atomic sections the oracle validated.
	OracleCommits int
	// OracleErr is non-nil if the serializability oracle found a violation
	// (including a final reference-model mismatch).
	OracleErr error

	// Compiled is the compiler-pass output the run executed under, for
	// post-run static/dynamic conformance checking.
	Compiled *anchor.Compiled
}

// Makespan returns the simulated duration in cycles.
func (r *Result) Makespan() uint64 { return r.Stats.Makespan }

// AbortsPerCommit forwards the Table 4 metric.
func (r *Result) AbortsPerCommit() float64 { return r.Stats.AbortsPerCommit() }

// WastedOverUseful forwards the Table 1 metric.
func (r *Result) WastedOverUseful() float64 { return r.Stats.WastedOverUseful() }

// TMFraction returns the share of total cycles spent in transactional
// mode (%TM of Table 4).
func (r *Result) TMFraction() float64 {
	var total uint64
	for _, cs := range r.Stats.PerCore {
		total += cs.FinalClock
	}
	if total == 0 {
		return 0
	}
	return float64(r.Stats.TxCycles()) / float64(total)
}

// UopsPerTxn returns mean transactional µ-ops per committed transaction.
func (r *Result) UopsPerTxn() float64 {
	if r.Stats.Commits == 0 {
		return 0
	}
	return float64(r.Stats.TxUops) / float64(r.Stats.Commits)
}

// AnchorsPerTxn returns mean executed ALPs per committed transaction.
func (r *Result) AnchorsPerTxn() float64 {
	if r.Stats.Commits == 0 {
		return 0
	}
	return float64(r.Metrics.ALPVisits) / float64(r.Stats.Commits)
}

// Run executes one experiment cell.
func Run(rc RunConfig) (*Result, error) { return RunCtx(context.Background(), rc) }

// RunCtx is Run under a context. Cancelling ctx abandons the simulation
// at the cores' next globally ordered events — within one event per
// core, not after draining the workload — and returns an error wrapping
// ctx's error; no partial Result escapes a cancelled run. A background
// (never-cancelled) context takes the exact historical path: the
// machine's cancellation hook stays unarmed and costs nothing.
func RunCtx(ctx context.Context, rc RunConfig) (*Result, error) {
	w, err := workloads.Get(rc.Benchmark)
	if err != nil {
		return nil, err
	}
	if rc.Threads <= 0 {
		return nil, fmt.Errorf("harness: Threads must be positive")
	}
	if rc.TotalOps == 0 {
		rc.TotalOps = w.TotalOps
	}
	if rc.Seed == 0 {
		rc.Seed = 42
	}

	// Resolve the arena backend first: the effective mode decides the
	// machine's conflicting-PC hardware, and the backend may adjust the
	// machine config (the limited variant's capacity bound).
	var bk backend.Info
	useArena := rc.Backend != ""
	if useArena {
		bk, err = backend.Get(rc.Backend)
		if err != nil {
			return nil, err
		}
		if bk.Software {
			rc.Mode = stagger.ModeHTM
		} else {
			rc.Mode = stagger.ResolveMode(rc.Backend, rc.Mode)
		}
	}

	mcfg := htm.DefaultConfig()
	if rc.Machine != nil {
		mcfg = *rc.Machine
	}
	if rc.Threads > mcfg.Cores {
		return nil, fmt.Errorf("harness: %d threads exceed %d cores", rc.Threads, mcfg.Cores)
	}
	mcfg.HardwareCPC = rc.Mode == stagger.ModeStaggeredHW
	mcfg.Lazy = rc.Lazy
	mcfg.Seed = rc.Seed
	if rc.Watchdog != 0 {
		mcfg.WatchdogCycles = rc.Watchdog
	}
	if rc.WatchdogTrace != 0 {
		mcfg.WatchdogTrace = rc.WatchdogTrace
	}
	if useArena && bk.PrepareMachine != nil {
		bk.PrepareMachine(&mcfg, backend.Options{Capacity: rc.Capacity})
	}

	aopts := anchor.DefaultOptions()
	aopts.PCBits = mcfg.PCTagBits
	aopts.Naive = rc.Naive
	comp := anchor.Compile(w.Mod, aopts)

	mach := htm.New(mcfg)
	if rc.TraceN != 0 {
		limit := rc.TraceN
		if limit < 0 {
			limit = 0 // unlimited
		}
		if rc.ExtTrace {
			mach.EnableTraceExt(limit)
		} else {
			mach.EnableTrace(limit)
		}
	}

	var recorder *sched.Recorder
	scheduler, err := buildScheduler(rc, mcfg.Cores)
	if err != nil {
		return nil, err
	}
	if scheduler != nil {
		if rc.Record {
			recorder = sched.NewRecorder(scheduler)
			scheduler = recorder
		}
		mach.SetScheduler(scheduler)
	}

	scfg := stagger.DefaultConfig(rc.Mode)
	if rc.Stagger != nil {
		scfg = *rc.Stagger
		scfg.Mode = rc.Mode
	}
	scfg.UnsafeEarlyGlobalRelease = scfg.UnsafeEarlyGlobalRelease || rc.UnsafeEarlyRelease
	var inj *chaos.Injector
	if rc.Chaos != nil && rc.Chaos.Enabled() {
		inj = chaos.NewInjector(*rc.Chaos, mcfg.Cores)
		mach.SetFaultInjector(inj)
		scfg.LockFaults = inj
	}
	// Build the runtime: through the arena registry when a backend is
	// named, directly otherwise (the historical path). The concrete
	// stagger runtime, when the backend has one, is recovered for the
	// stagger-specific result fields below.
	var brt backend.Runtime
	var rt *stagger.Runtime
	if useArena {
		opts := backend.Options{
			Capacity:      rc.Capacity,
			StaggerConfig: scfg,
			SiteRecorder:  rc.SiteRecorder,
		}
		brt, err = bk.New(mach, comp, opts)
		if err != nil {
			return nil, err
		}
		if u, ok := brt.(interface{ Unwrap() *stagger.Runtime }); ok {
			rt = u.Unwrap()
		}
	} else {
		rt = stagger.New(mach, comp, scfg)
		if rc.SiteRecorder != nil {
			rt.SetSiteRecorder(rc.SiteRecorder)
		}
		brt = rt.Backend()
	}

	if done := ctx.Done(); done != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		stop := mach.CancelOn(done)
		defer stop()
	}

	w.Setup(mach, rc.Seed)

	// The oracle snapshots memory after setup so the shadow starts from the
	// seeded data, and builds the reference model afterwards so it can
	// capture post-setup addresses.
	var chk *oracle.Checker
	var model oracle.RefModel
	if rc.Oracle {
		if w.RefModel != nil {
			model = w.RefModel(mach, rc.Seed)
		}
		chk = oracle.New(mach.Mem.Snapshot(), model)
		mach.SetObserver(chk)
	}

	bodies := make([]func(*htm.Core), rc.Threads)
	for tid := 0; tid < rc.Threads; tid++ {
		n := splitOps(rc.TotalOps, rc.Threads, tid)
		bodies[tid] = w.Body(brt, tid, rc.Threads, n, rc.Seed)
	}
	if err := mach.RunChecked(bodies); err != nil {
		var ce *htm.CancelError
		if errors.As(err, &ce) {
			// Surface the context's error so callers can errors.Is it
			// against context.Canceled / DeadlineExceeded.
			cause := ctx.Err()
			if cause == nil {
				cause = err
			}
			return nil, fmt.Errorf("harness: %s (%s, %d threads): abandoned at cycle %d: %w",
				rc.Benchmark, rc.Mode, rc.Threads, ce.Cycles, cause)
		}
		return nil, fmt.Errorf("harness: %s (%s, %d threads): %w",
			rc.Benchmark, rc.Mode, rc.Threads, err)
	}

	res := &Result{
		Config:         rc,
		Stats:          mach.Stats(),
		NumABs:         len(w.Mod.Atomics),
		TotalOps:       rc.TotalOps,
		StaticAccesses: comp.StaticAccesses,
		StaticAnchors:  comp.StaticAnchors,
		VerifyErr:      w.Verify(mach, rc.Threads, rc.TotalOps),
		Compiled:       comp,
	}
	if rt != nil {
		// Stagger-specific attribution; software backends (no concrete
		// stagger runtime) report through htm.Stats alone.
		res.Metrics = rt.Metrics
		res.LA, res.LP = rt.Locality()
		res.ConfAddrs = rt.ConflictAddrs()
		res.ConfPCs = rt.ConflictPCs()
		res.ConfPairs = rt.ConflictPairs()
		res.PerAB = rt.PerAB()
	}
	res.Trace = mach.Trace()
	if inj != nil {
		res.Faults = inj.Counts()
	}
	if recorder != nil {
		res.SchedPicks = recorder.Picks()
	}
	if chk != nil {
		chk.FinalCheck(mach.Mem)
		res.OracleCommits = chk.Commits()
		res.OracleErr = chk.Err()
		if res.OracleErr == nil {
			if f, ok := model.(oracle.Finisher); ok {
				if ferr := f.Finish(); ferr != nil {
					res.OracleErr = fmt.Errorf("oracle: final model check: %w", ferr)
				}
			}
		}
	}
	return res, nil
}

// buildScheduler resolves the RunConfig's scheduling fields into an htm
// scheduler (nil = the engine's deterministic baseline).
func buildScheduler(rc RunConfig, cores int) (htm.Scheduler, error) {
	window := uint64(sched.DefaultWindow)
	var spec sched.Spec
	haveSpec := false
	if rc.Sched != "" {
		var err error
		spec, err = sched.Parse(rc.Sched)
		if err != nil {
			return nil, err
		}
		window = spec.Window
		haveSpec = true
	}
	if rc.ReplayPicks != nil {
		return sched.NewReplay(rc.ReplayPicks, window), nil
	}
	if !haveSpec {
		return nil, nil
	}
	seed := rc.SchedSeed
	if seed == 0 {
		seed = rc.Seed
	}
	return spec.New(seed, cores)
}

func splitOps(total, threads, tid int) int {
	n := total / threads
	if tid < total%threads {
		n++
	}
	return n
}

// Speedup runs the benchmark sequentially (1 thread, baseline HTM) and
// in parallel under rc, returning parallel speedup over sequential.
func Speedup(rc RunConfig) (float64, *Result, error) {
	seq := rc
	seq.Mode = stagger.ModeHTM
	seq.Threads = 1
	if seq.Backend != "" {
		// Every backend is measured against the same denominator: the
		// unlimited plain-HTM machine run sequentially.
		seq.Backend = "htm"
	}
	seqRes, err := Run(seq)
	if err != nil {
		return 0, nil, err
	}
	parRes, err := Run(rc)
	if err != nil {
		return 0, nil, err
	}
	if parRes.Makespan() == 0 {
		return 0, parRes, fmt.Errorf("harness: zero makespan")
	}
	return float64(seqRes.Makespan()) / float64(parRes.Makespan()), parRes, nil
}
