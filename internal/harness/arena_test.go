package harness

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/backend"
	"repro/internal/htm"
	"repro/internal/stagger"
	"repro/internal/workloads"
)

// TestArenaAllBackendsAllWorkloads is the arena's acceptance gate: every
// registered backend runs every workload under the serializability
// oracle, for two seeds, and must produce a clean verdict plus a sane
// result. A new backend registered without passing this table is broken
// by definition.
func TestArenaAllBackendsAllWorkloads(t *testing.T) {
	for _, bk := range backend.Names() {
		for _, wl := range workloads.Names() {
			for _, seed := range []int64{3, 17} {
				bk, wl, seed := bk, wl, seed
				t.Run(bk+"/"+wl+"/seed"+string(rune('0'+seed%10)), func(t *testing.T) {
					t.Parallel()
					res, err := Run(RunConfig{
						Benchmark: wl, Backend: bk, Threads: 4,
						Seed: seed, TotalOps: 120, Oracle: true,
					})
					if err != nil {
						t.Fatal(err)
					}
					if res.VerifyErr != nil {
						t.Fatalf("verify: %v", res.VerifyErr)
					}
					if res.OracleErr != nil {
						t.Fatalf("oracle: %v", res.OracleErr)
					}
					if res.OracleCommits == 0 || res.Stats.Commits == 0 {
						t.Fatal("no commits validated")
					}
					if res.Makespan() == 0 {
						t.Fatal("zero makespan")
					}
				})
			}
		}
	}
}

// TestArenaUnknownBackend pins the contract that a bad backend name
// fails fast with the list of registered names, so a typo at any layer
// (flag, job spec, config file) is self-diagnosing.
func TestArenaUnknownBackend(t *testing.T) {
	_, err := Run(RunConfig{Benchmark: "kmeans", Backend: "bogus", Threads: 1})
	if err == nil {
		t.Fatal("unknown backend accepted")
	}
	for _, want := range backend.Names() {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not list registered backend %q", err, want)
		}
	}
}

// TestLimitedCapacityKnob checks the limited backend's speculative
// line-capacity model: a tiny capacity must force capacity overflows
// (the paper's limited read/write-set HTM failure mode) while the runs
// stay serializable, and raising the capacity must make the pressure
// disappear.
func TestLimitedCapacityKnob(t *testing.T) {
	run := func(capacity int) *Result {
		t.Helper()
		res, err := Run(RunConfig{
			Benchmark: "vacation", Backend: "limited", Capacity: capacity,
			Threads: 4, Seed: 7, TotalOps: 120, Oracle: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.VerifyErr != nil {
			t.Fatalf("capacity %d: verify: %v", capacity, res.VerifyErr)
		}
		if res.OracleErr != nil {
			t.Fatalf("capacity %d: oracle: %v", capacity, res.OracleErr)
		}
		return res
	}
	tiny := run(2)
	if n := tiny.Stats.Aborts[htm.AbortOverflow]; n == 0 {
		t.Fatal("capacity 2 produced no overflow aborts")
	}
	big := run(4096)
	if n := big.Stats.Aborts[htm.AbortOverflow]; n != 0 {
		t.Fatalf("capacity 4096 still overflowed %d times", n)
	}
}

// TestArenaLegacyPathUnchanged proves Backend "" and Backend "htm"
// simulate the same machine: selecting the baseline through the arena
// must be bit-identical to the historical direct path.
func TestArenaLegacyPathUnchanged(t *testing.T) {
	legacy, err := Run(RunConfig{
		Benchmark: "ssca2", Mode: stagger.ModeHTM, Threads: 4, Seed: 5, TotalOps: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	arena, err := Run(RunConfig{
		Benchmark: "ssca2", Backend: "htm", Threads: 4, Seed: 5, TotalOps: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(legacy.Stats, arena.Stats) {
		t.Fatalf("backend=htm diverged from the legacy path:\nlegacy %+v\narena  %+v",
			legacy.Stats, arena.Stats)
	}
}

// TestArenaEngineEquivalence extends the coop-vs-reference engine proof
// to the new backends: the software OCC runtime and the limited HTM
// variant must be bit-identical under both token-handoff engines, like
// every other client of the simulator.
func TestArenaEngineEquivalence(t *testing.T) {
	for _, bk := range []string{"occ", "limited"} {
		run := func(ref bool) htm.Stats {
			t.Helper()
			mcfg := htm.DefaultConfig()
			mcfg.RefEngine = ref
			res, err := Run(RunConfig{
				Benchmark: "intruder", Backend: bk, Threads: 4,
				Seed: 11, TotalOps: 150, Machine: &mcfg,
			})
			if err != nil {
				t.Fatal(err)
			}
			return res.Stats
		}
		coop, refStats := run(false), run(true)
		if !reflect.DeepEqual(coop, refStats) {
			t.Fatalf("%s: engines diverged:\ncoop %+v\nref  %+v", bk, coop, refStats)
		}
	}
}

// TestArenaCacheSeparation pins backend and capacity into the memo key:
// cells that differ only in backend (or only in capacity) must never
// share a cached Result.
func TestArenaCacheSeparation(t *testing.T) {
	ClearCache()
	base := RunConfig{Benchmark: "kmeans", Threads: 2, Seed: 5, TotalOps: 100}
	legacy, err := RunCached(base)
	if err != nil {
		t.Fatal(err)
	}
	htmRC := base
	htmRC.Backend = "htm"
	viaArena, err := RunCached(htmRC)
	if err != nil {
		t.Fatal(err)
	}
	if viaArena == legacy {
		t.Fatal("backend=htm shared a cache entry with the legacy path")
	}
	occRC := base
	occRC.Backend = "occ"
	occ, err := RunCached(occRC)
	if err != nil {
		t.Fatal(err)
	}
	if occ == viaArena || occ == legacy {
		t.Fatal("backend=occ shared a cache entry")
	}
	limA := base
	limA.Backend = "limited"
	limA.Capacity = 8
	limB := limA
	limB.Capacity = 16
	a, err := RunCached(limA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCached(limB)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("distinct capacities shared a cache entry")
	}
}
