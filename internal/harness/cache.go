package harness

import (
	"context"
	"sync"
)

// Table and figure generators share experiment cells (Table 4's baseline
// runs are Figure 7's denominators, for example). Because every run is
// deterministic in its RunConfig, results can be memoized safely. Note
// that worker count is deliberately NOT part of the key: parallelism
// exists only between runs, never inside one, so a cell's Result is a
// pure function of its RunConfig regardless of how many sibling cells
// were simulating concurrently (TestCacheSharedAcrossWorkerCounts pins
// this down).

// CacheSchema versions the meaning of a cached result: bump it whenever
// the simulation's observable output for an unchanged RunConfig changes
// (new machine defaults, changed cycle accounting, new Result fields).
// It is part of every in-process cache key and embedded in every durable
// store key (internal/service), so entries written by an older schema
// are simply never found — they age out as misses and are recomputed,
// never deserialized under the wrong interpretation.
//
// Schema history: 2 added the conflicting-pair histogram
// (Result.ConfPairs and the report's conflicting_pairs section); 3
// added concurrency-control backend selection (RunConfig.Backend and
// Capacity join the key, and backend resolution can rewrite the
// effective mode).
const CacheSchema = 3

type cacheKey struct {
	schema    int
	bench     string
	mode      int
	backend   string
	capacity  int
	threads   int
	seed      int64
	totalOps  int
	naive     bool
	lazy      bool
	sched     string
	schedSeed int64
	oracle    bool
}

var (
	cacheMu sync.Mutex
	cache   = map[cacheKey]*Result{}
)

// cacheableKey reports whether rc is eligible for memoization and, if so,
// its canonical cache key. Configs with machine/runtime overrides or
// run-scoped side channels (trace capture, fault injection, watchdogs,
// pick recording/replay, site recording) must execute for real every time.
func cacheableKey(rc RunConfig) (cacheKey, bool) {
	if rc.Machine != nil || rc.Stagger != nil || rc.TraceN != 0 || rc.ExtTrace ||
		rc.Chaos != nil || rc.Watchdog != 0 || rc.WatchdogTrace != 0 ||
		rc.Record || rc.ReplayPicks != nil || rc.UnsafeEarlyRelease ||
		rc.SiteRecorder != nil {
		return cacheKey{}, false
	}
	if rc.Seed == 0 {
		rc.Seed = 42 // match Run's default so keys are canonical
	}
	return cacheKey{CacheSchema, rc.Benchmark, int(rc.Mode), rc.Backend, rc.Capacity,
		rc.Threads, rc.Seed, rc.TotalOps, rc.Naive, rc.Lazy,
		rc.Sched, rc.SchedSeed, rc.Oracle}, true
}

// RunCached is Run with memoization over the default machine and runtime
// configurations. Configs with overrides bypass the cache.
func RunCached(rc RunConfig) (*Result, error) {
	return RunCachedCtx(context.Background(), rc)
}

// RunCachedCtx is RunCached under a context: a cache hit returns
// immediately regardless of ctx, a miss computes through RunCtx, and a
// cancelled computation is never cached — the next caller recomputes, so
// cancellation can never leave a partial or poisoned entry behind.
func RunCachedCtx(ctx context.Context, rc RunConfig) (*Result, error) {
	key, ok := cacheableKey(rc)
	if !ok {
		return RunCtx(ctx, rc)
	}
	cacheMu.Lock()
	r, hit := cache[key]
	cacheMu.Unlock()
	if hit {
		return r, nil
	}
	r, err := RunCtx(ctx, rc)
	if err != nil {
		return nil, err
	}
	cacheMu.Lock()
	cache[key] = r
	cacheMu.Unlock()
	return r, nil
}

// ClearCache drops all memoized results (tests use it for isolation).
func ClearCache() {
	cacheMu.Lock()
	cache = map[cacheKey]*Result{}
	cacheMu.Unlock()
}
