package harness

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/prog"
	"repro/internal/stagger"
	"repro/internal/workloads"
)

// withWorkers runs f with the package worker default pinned to n and the
// result cache cleared before and after, so parallel-vs-sequential
// comparisons never observe each other's memoized cells.
func withWorkers(t *testing.T, n int, f func()) {
	t.Helper()
	prev := SetWorkers(n)
	ClearCache()
	defer func() {
		SetWorkers(prev)
		ClearCache()
	}()
	f()
}

// statsFingerprint is a stable, complete rendering of a run's observable
// results (every counter, per-core clocks, runtime metrics, and the final
// verification verdict).
func statsFingerprint(r *Result) string {
	return fmt.Sprintf("stats=%+v metrics=%+v makespan=%d verify=%v",
		r.Stats, r.Metrics, r.Makespan(), r.VerifyErr)
}

// TestDeterminismEquivalenceEveryWorkload runs every workload through the
// sweep runner at workers=1 and workers=4 (cold cache each time) and
// requires identical result fingerprints: inter-run parallelism must not
// perturb a single counter of a single simulated run. Under `go test
// -race` this doubles as a data-race check on the whole parallel path.
func TestDeterminismEquivalenceEveryWorkload(t *testing.T) {
	var cfgs []RunConfig
	for _, b := range workloads.Names() {
		cfgs = append(cfgs,
			RunConfig{Benchmark: b, Mode: stagger.ModeHTM, Threads: 4, Seed: 7, TotalOps: 240},
			RunConfig{Benchmark: b, Mode: stagger.ModeStaggeredHW, Threads: 4, Seed: 7, TotalOps: 240})
	}
	fingerprints := func(workers int) []string {
		var fps []string
		withWorkers(t, workers, func() {
			for i, o := range RunAll(context.Background(), cfgs, workers) {
				if o.Err != nil {
					t.Fatalf("workers=%d cell %d (%s): %v", workers, i, cfgs[i].Benchmark, o.Err)
				}
				fps = append(fps, statsFingerprint(o.Res))
			}
		})
		return fps
	}
	seq := fingerprints(1)
	par := fingerprints(4)
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("cell %d (%s %s): results diverge across worker counts\nworkers=1: %s\nworkers=4: %s",
				i, cfgs[i].Benchmark, cfgs[i].Mode, seq[i], par[i])
		}
	}
}

// TestTableOutputIdenticalAcrossWorkers regenerates a full table through
// the warm-then-assemble path at both worker counts and compares the
// rendered bytes, pinning the tentpole guarantee end to end: the text a
// user sees is identical however many workers simulated it.
func TestTableOutputIdenticalAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("full Table 1 regeneration in -short mode")
	}
	render := func(workers int) string {
		var s string
		withWorkers(t, workers, func() {
			rows, err := Table1(42)
			if err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			s = FormatTable1(rows)
		})
		return s
	}
	seq := render(1)
	par := render(4)
	if seq != par {
		t.Fatalf("Table 1 bytes diverge across worker counts\nworkers=1:\n%s\nworkers=4:\n%s", seq, par)
	}
}

// TestChaosSweepIdenticalAcrossWorkers pins the campaign runner: parallel
// cells, identical report bytes.
func TestChaosSweepIdenticalAcrossWorkers(t *testing.T) {
	sweep := ChaosSweep{
		Benchmarks: []string{"list-hi", "tsp"},
		Rates:      []float64{0, 0.01},
		Mode:       stagger.ModeStaggeredHW,
		Threads:    4,
		TotalOps:   240,
	}
	render := func(workers int) string {
		var s string
		withWorkers(t, workers, func() {
			cells, err := RunChaosSweep(sweep)
			if err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			s = FormatChaos(cells)
		})
		return s
	}
	seq := render(1)
	par := render(4)
	if seq != par {
		t.Fatalf("chaos report diverges across worker counts\nworkers=1:\n%s\nworkers=4:\n%s", seq, par)
	}
}

// TestExploreIdenticalAcrossWorkers pins the exploration campaign: run
// counts, commit totals, and the failure list (seeds and picks) must not
// depend on worker count, and Progress must fire in run order.
func TestExploreIdenticalAcrossWorkers(t *testing.T) {
	campaign := func(workers int) (string, []int) {
		var fp string
		var order []int
		withWorkers(t, workers, func() {
			ec := ExploreConfig{
				Benchmark: "list-hi", Mode: stagger.ModeStaggeredHW,
				Threads: 4, TotalOps: 120, Runs: 8,
				Progress: func(run int, failed bool) { order = append(order, run) },
			}
			rep, err := Explore(ec)
			if err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			fp = fmt.Sprintf("runs=%d commits=%d failures=%+v", rep.Runs, rep.Commits, rep.Failures)
		})
		return fp, order
	}
	seq, seqOrder := campaign(1)
	par, parOrder := campaign(4)
	if seq != par {
		t.Fatalf("explore report diverges across worker counts\nworkers=1: %s\nworkers=4: %s", seq, par)
	}
	for i, r := range parOrder {
		if r != i {
			t.Fatalf("Progress fired out of order at workers=4: %v", parOrder)
		}
	}
	if len(seqOrder) != len(parOrder) {
		t.Fatalf("Progress call counts differ: %d vs %d", len(seqOrder), len(parOrder))
	}
}

// TestCacheSharedAcrossWorkerCounts proves the memoization key is worker-
// independent: a cell simulated under a parallel sweep is a cache hit for
// a later sequential sweep (and vice versa), returning the same *Result.
func TestCacheSharedAcrossWorkerCounts(t *testing.T) {
	rc := RunConfig{Benchmark: "ssca2", Mode: stagger.ModeHTM, Threads: 2, Seed: 5, TotalOps: 100}
	prev := SetWorkers(4)
	ClearCache()
	defer func() {
		SetWorkers(prev)
		ClearCache()
	}()
	par := RunAll(context.Background(), []RunConfig{rc, rc}, 2)
	if par[0].Err != nil || par[1].Err != nil {
		t.Fatal(par[0].Err, par[1].Err)
	}
	SetWorkers(1)
	seq, err := RunCached(rc)
	if err != nil {
		t.Fatal(err)
	}
	if seq != par[0].Res && seq != par[1].Res {
		t.Fatal("sequential run missed the cache entry a parallel sweep populated")
	}
}

// recSink is a throwaway SiteRecorder: its presence must force a cache
// bypass (the recorder is a run-scoped side channel).
type recSink struct{}

func (recSink) RecordAccess(*prog.AtomicBlock, *prog.Site, bool) {}

// TestCacheableKeyBypasses pins which configs may never be memoized.
func TestCacheableKeyBypasses(t *testing.T) {
	base := RunConfig{Benchmark: "ssca2", Mode: stagger.ModeHTM, Threads: 2, Seed: 5, TotalOps: 100}
	if _, ok := cacheableKey(base); !ok {
		t.Fatal("plain config must be cacheable")
	}
	withRec := base
	withRec.SiteRecorder = recSink{}
	if _, ok := cacheableKey(withRec); ok {
		t.Fatal("SiteRecorder config must bypass the cache")
	}
	withWatchdog := base
	withWatchdog.Watchdog = 1 << 20
	if _, ok := cacheableKey(withWatchdog); ok {
		t.Fatal("watchdog config must bypass the cache")
	}
	// Seed 0 canonicalizes to Run's default, so the two configs are the
	// same cell and must share a key.
	zero, a := base, base
	zero.Seed = 0
	a.Seed = 42
	kz, _ := cacheableKey(zero)
	ka, _ := cacheableKey(a)
	if kz != ka {
		t.Fatal("seed 0 must canonicalize to the default seed's key")
	}
}

// TestRunAllOrderingAndErrors pins RunAll's contract: outcomes land at
// their input index whatever the completion order, per-cell errors stay
// per-cell, and a cancelled context marks unstarted cells.
func TestRunAllOrderingAndErrors(t *testing.T) {
	ClearCache()
	defer ClearCache()
	cfgs := []RunConfig{
		{Benchmark: "ssca2", Mode: stagger.ModeHTM, Threads: 2, Seed: 5, TotalOps: 100},
		{Benchmark: "no-such-benchmark", Mode: stagger.ModeHTM, Threads: 2, Seed: 5, TotalOps: 100},
		{Benchmark: "list-hi", Mode: stagger.ModeHTM, Threads: 2, Seed: 5, TotalOps: 100},
	}
	out := RunAll(context.Background(), cfgs, 3)
	if out[0].Err != nil || out[0].Res == nil || out[0].Res.Config.Benchmark != "ssca2" {
		t.Fatalf("cell 0: %+v", out[0])
	}
	if out[1].Err == nil {
		t.Fatal("unknown benchmark must surface its error at its own index")
	}
	if out[2].Err != nil || out[2].Res.Config.Benchmark != "list-hi" {
		t.Fatalf("cell 2: %+v", out[2])
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for i, o := range RunAll(ctx, cfgs, 2) {
		if !errors.Is(o.Err, context.Canceled) {
			t.Fatalf("cell %d after cancel: err=%v", i, o.Err)
		}
	}

	// A deliver error must stop the sweep and propagate.
	sentinel := errors.New("stop")
	err := runAllOrdered(context.Background(), cfgs, 2, func(i int, o RunOutcome) error {
		if i == 1 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("deliver error not propagated: %v", err)
	}
}

// TestSplitOps pins the per-thread operation split: remainders go to the
// lowest thread IDs, one each, and the shares always sum to the total.
func TestSplitOps(t *testing.T) {
	cases := []struct {
		total, threads int
		want           []int
	}{
		{total: 8, threads: 4, want: []int{2, 2, 2, 2}},
		{total: 10, threads: 4, want: []int{3, 3, 2, 2}},
		{total: 7, threads: 3, want: []int{3, 2, 2}},
		{total: 2, threads: 5, want: []int{1, 1, 0, 0, 0}},
		{total: 0, threads: 3, want: []int{0, 0, 0}},
		{total: 5, threads: 5, want: []int{1, 1, 1, 1, 1}},
		{total: 1, threads: 1, want: []int{1}},
	}
	for _, tc := range cases {
		sum := 0
		for tid := 0; tid < tc.threads; tid++ {
			got := splitOps(tc.total, tc.threads, tid)
			if got != tc.want[tid] {
				t.Errorf("splitOps(%d, %d, %d) = %d, want %d",
					tc.total, tc.threads, tid, got, tc.want[tid])
			}
			sum += got
		}
		if sum != tc.total {
			t.Errorf("splitOps(%d, %d, *) sums to %d", tc.total, tc.threads, sum)
		}
	}
	// Property sweep: shares sum to the total and differ by at most one.
	for total := 0; total <= 40; total++ {
		for threads := 1; threads <= 9; threads++ {
			sum, lo, hi := 0, int(^uint(0)>>1), 0
			for tid := 0; tid < threads; tid++ {
				n := splitOps(total, threads, tid)
				sum += n
				if n < lo {
					lo = n
				}
				if n > hi {
					hi = n
				}
			}
			if sum != total || hi-lo > 1 {
				t.Fatalf("splitOps(%d, %d): sum=%d spread=%d", total, threads, sum, hi-lo)
			}
		}
	}
}
