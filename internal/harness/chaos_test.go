package harness

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/chaos"
	"repro/internal/htm"
	"repro/internal/stagger"
	"repro/internal/workloads"
)

// smallOps shrinks fixed-shape workloads for fast chaos runs (mirrors the
// workloads package's CI sizing).
func smallOps(name string) int {
	switch name {
	case "intruder", "tsp":
		return 0 // queue-driven: use the workload default
	case "labyrinth":
		return 24
	default:
		return 240
	}
}

func hardenedRC(bench string, threads int, c *chaos.Config) RunConfig {
	scfg := stagger.HardenedConfig(stagger.ModeStaggeredHW)
	return RunConfig{
		Benchmark: bench,
		Mode:      stagger.ModeStaggeredHW,
		Threads:   threads,
		Seed:      42,
		TotalOps:  smallOps(bench),
		Stagger:   &scfg,
		Chaos:     c,
		Watchdog:  500_000_000,
	}
}

// TestChaosSmoke is the CI smoke: a representative chaos cell must finish
// under the watchdog, inject faults, and pass verification.
func TestChaosSmoke(t *testing.T) {
	ccfg := chaos.Scaled(0.01, 42)
	res, err := Run(hardenedRC("list-hi", 8, &ccfg))
	if err != nil {
		t.Fatal(err)
	}
	if res.VerifyErr != nil {
		t.Fatalf("verify: %v", res.VerifyErr)
	}
	if res.Faults.Total() == 0 {
		t.Fatal("chaos run injected no faults")
	}
	if res.Stats.Aborts[htm.AbortSpurious] == 0 {
		t.Fatal("no spurious aborts observed at rate 0.01")
	}
}

// TestChaosDeterminism is the reproducibility property: identical
// (seed, chaos config) must give bit-identical stats, fault counts, and
// transaction traces.
func TestChaosDeterminism(t *testing.T) {
	for _, bench := range []string{"list-hi", "kmeans"} {
		ccfg := chaos.Scaled(0.02, 7)
		rc := hardenedRC(bench, 8, &ccfg)
		rc.Seed = 7
		rc.TraceN = 4096
		a, err := Run(rc)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(rc)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a.Stats, b.Stats) {
			t.Fatalf("%s: stats differ across identical chaos runs:\n%+v\n%+v",
				bench, a.Stats, b.Stats)
		}
		if a.Faults != b.Faults {
			t.Fatalf("%s: fault counts differ: %+v vs %+v", bench, a.Faults, b.Faults)
		}
		if !reflect.DeepEqual(a.Trace, b.Trace) {
			t.Fatalf("%s: abort/commit traces differ across identical chaos runs", bench)
		}
		if a.Faults.Total() == 0 {
			t.Fatalf("%s: no faults injected at rate 0.02", bench)
		}
	}
}

// TestChaosSeedChangesSchedule: a different chaos seed must actually
// change the fault schedule (guards against a stuck stream).
func TestChaosSeedChangesSchedule(t *testing.T) {
	mk := func(seed int64) chaos.Counts {
		ccfg := chaos.Scaled(0.02, seed)
		res, err := Run(hardenedRC("list-hi", 8, &ccfg))
		if err != nil {
			t.Fatal(err)
		}
		return res.Faults
	}
	if mk(1) == mk(2) {
		t.Fatal("chaos seeds 1 and 2 delivered identical fault counts")
	}
}

// TestChaosAllWorkloadsVerify: each fault class alone must leave every
// workload's invariants intact at 16 threads — slower is acceptable,
// wrong is not.
func TestChaosAllWorkloadsVerify(t *testing.T) {
	classes := map[string]chaos.Config{
		"abort":    {AbortRate: 0.02, Seed: 42},
		"ntdelay":  {NTDelayRate: 0.05, NTDelayCycles: 300, Seed: 42},
		"lockdrop": {LockDropRate: 0.2, Seed: 42},
		"jitter":   {JitterRate: 0.02, JitterCycles: 60, Seed: 42},
	}
	for cls, ccfg := range classes {
		for _, bench := range workloads.Names() {
			ccfg := ccfg
			t.Run(cls+"/"+bench, func(t *testing.T) {
				res, err := Run(hardenedRC(bench, 16, &ccfg))
				if err != nil {
					t.Fatal(err)
				}
				if res.VerifyErr != nil {
					t.Fatalf("verify: %v (faults %+v)", res.VerifyErr, res.Faults)
				}
				if res.Stats.Commits == 0 {
					t.Fatal("no transactions committed")
				}
			})
		}
	}
}

// TestChaosZeroImpact: with chaos off, the hook plumbing (nil injector, a
// generous watchdog, a zero-rate config) must leave the baseline run
// bit-identical — the acceptance bar for zero-cost instrumentation.
func TestChaosZeroImpact(t *testing.T) {
	base := RunConfig{
		Benchmark: "list-hi", Mode: stagger.ModeStaggeredHW,
		Threads: 8, Seed: 42, TotalOps: 240,
	}
	ref, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}

	withWD := base
	withWD.Watchdog = 1 << 40
	zeroRate := base
	zeroRate.Chaos = &chaos.Config{} // Enabled() == false: no injector
	for name, rc := range map[string]RunConfig{"watchdog": withWD, "zero-rate": zeroRate} {
		got, err := Run(rc)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ref.Stats, got.Stats) {
			t.Fatalf("%s: stats differ from baseline:\nbase %+v\ngot  %+v",
				name, ref.Stats, got.Stats)
		}
		if got.Faults.Total() != 0 {
			t.Fatalf("%s: fault counts nonzero without chaos", name)
		}
	}
}

// TestWatchdogSurfacesThroughHarness: an absurdly tight bound must turn
// into a run error that names the watchdog, not a hang or a panic.
func TestWatchdogSurfacesThroughHarness(t *testing.T) {
	_, err := Run(RunConfig{
		Benchmark: "kmeans", Mode: stagger.ModeHTM,
		Threads: 4, Seed: 42, TotalOps: 240, Watchdog: 500,
	})
	if err == nil {
		t.Fatal("500-cycle watchdog did not trip")
	}
	var we *htm.WatchdogError
	if !errors.As(err, &we) {
		t.Fatalf("err = %v, want wrapped *htm.WatchdogError", err)
	}
	if !strings.Contains(err.Error(), "kmeans") {
		t.Fatalf("error %q lacks benchmark context", err)
	}
}

// TestChaosSweepRuns: a small campaign must produce one cell per
// (benchmark, rate) with sane degradation ratios and no failures.
func TestChaosSweepRuns(t *testing.T) {
	cells, err := RunChaosSweep(ChaosSweep{
		Benchmarks: []string{"list-hi", "kmeans"},
		Rates:      []float64{0, 0.01},
		Threads:    8,
		TotalOps:   240,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4 {
		t.Fatalf("cells = %d, want 4", len(cells))
	}
	for _, c := range cells {
		if c.VerifyErr != nil {
			t.Fatalf("%s@%g: verify: %v", c.Bench, c.Rate, c.VerifyErr)
		}
		if c.Rate == 0 && c.Degradation != 1.0 {
			t.Fatalf("%s: rate-0 degradation = %v, want 1.0", c.Bench, c.Degradation)
		}
		if c.Rate > 0 && c.Faults.Total() == 0 {
			t.Fatalf("%s@%g: no faults injected", c.Bench, c.Rate)
		}
	}
	out := FormatChaos(cells)
	if !strings.Contains(out, "list-hi") || !strings.Contains(out, "degradation") {
		t.Fatalf("FormatChaos output malformed:\n%s", out)
	}
}

// TestRunVerifiedRejectsInvariantFailure: the table/figure generators
// must refuse a result whose workload verification failed, instead of
// silently folding a corrupted run into the paper's numbers.
func TestRunVerifiedRejectsInvariantFailure(t *testing.T) {
	ClearCache()
	defer ClearCache()
	rc := RunConfig{Benchmark: "kmeans", Mode: stagger.ModeHTM, Threads: 2, Seed: 7, TotalOps: 100}
	key := cacheKey{schema: CacheSchema, bench: rc.Benchmark, mode: int(rc.Mode), threads: rc.Threads,
		seed: rc.Seed, totalOps: rc.TotalOps}
	cacheMu.Lock()
	cache[key] = &Result{Config: rc, VerifyErr: errors.New("poisoned invariant")}
	cacheMu.Unlock()
	_, err := runVerified(rc)
	if err == nil || !strings.Contains(err.Error(), "verify failed") {
		t.Fatalf("runVerified returned %v, want verify failure", err)
	}
}

// TestRunCachedBypassesChaos: chaos and watchdog runs must never be
// served from (or poison) the memoization cache.
func TestRunCachedBypassesChaos(t *testing.T) {
	ClearCache()
	defer ClearCache()
	ccfg := chaos.Scaled(0.01, 42)
	rc := RunConfig{
		Benchmark: "kmeans", Mode: stagger.ModeHTM,
		Threads: 2, Seed: 9, TotalOps: 100, Chaos: &ccfg,
	}
	a, err := RunCached(rc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCached(rc)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("chaos run was memoized")
	}
	wd := RunConfig{Benchmark: "kmeans", Mode: stagger.ModeHTM, Threads: 2, Seed: 9, TotalOps: 100, Watchdog: 1 << 40}
	c, err := RunCached(wd)
	if err != nil {
		t.Fatal(err)
	}
	d, err := RunCached(wd)
	if err != nil {
		t.Fatal(err)
	}
	if c == d {
		t.Fatal("watchdog run was memoized")
	}
}
